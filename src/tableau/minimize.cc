#include "tableau/minimize.h"

#include <numeric>
#include <vector>

#include "tableau/containment.h"

namespace gyo {

Tableau Minimize(const Tableau& t) {
  std::vector<int> rows(static_cast<size_t>(t.NumRows()));
  std::iota(rows.begin(), rows.end(), 0);
  Tableau current = t;
  bool changed = true;
  while (changed && current.NumRows() > 1) {
    changed = false;
    for (int r = 0; r < current.NumRows(); ++r) {
      std::vector<int> keep;
      keep.reserve(static_cast<size_t>(current.NumRows()) - 1);
      for (int i = 0; i < current.NumRows(); ++i) {
        if (i != r) keep.push_back(i);
      }
      Tableau candidate = current.SelectRows(keep);
      if (FindContainmentMapping(current, candidate).has_value()) {
        // candidate ⊆ current gives the reverse mapping for free, so the two
        // are equivalent; drop the row and rescan.
        current = std::move(candidate);
        changed = true;
        break;
      }
    }
  }
  return current;
}

}  // namespace gyo
