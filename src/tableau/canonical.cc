#include "tableau/canonical.h"

#include <vector>

#include "gyo/acyclic.h"
#include "gyo/gyo.h"
#include "tableau/minimize.h"
#include "util/check.h"

namespace gyo {

CanonicalResult CanonicalSchema(const Tableau& t) {
  const int rows = t.NumRows();
  const int cols = t.NumCols();
  // Count symbol occurrences per column to identify repeated variables.
  std::vector<RelationSchema> raw(static_cast<size_t>(rows));
  for (int c = 0; c < cols; ++c) {
    for (int r = 0; r < rows; ++r) {
      int sym = t.Cell(r, c);
      if (sym == Tableau::kDistinguished) {
        raw[static_cast<size_t>(r)].Insert(t.ColumnAttr(c));
        continue;
      }
      bool repeated = false;
      for (int r2 = 0; r2 < rows && !repeated; ++r2) {
        if (r2 != r && t.Cell(r2, c) == sym) repeated = true;
      }
      if (repeated) raw[static_cast<size_t>(r)].Insert(t.ColumnAttr(c));
    }
  }
  // Reduce (eliminate subsets and duplicates), keeping provenance.
  CanonicalResult out;
  for (int r = 0; r < rows; ++r) {
    const RelationSchema& cand = raw[static_cast<size_t>(r)];
    bool eliminated = false;
    for (int r2 = 0; r2 < rows && !eliminated; ++r2) {
      if (r2 == r) continue;
      const RelationSchema& other = raw[static_cast<size_t>(r2)];
      if (cand.IsProperSubsetOf(other)) eliminated = true;
      if (cand == other && r2 < r) eliminated = true;
    }
    if (!eliminated) {
      out.schema.Add(cand);
      out.sources.push_back(t.RowOrigin(r));
    }
  }
  return out;
}

CanonicalResult CanonicalConnectionExact(const DatabaseSchema& d,
                                         const AttrSet& x) {
  GYO_CHECK_MSG(x.IsSubsetOf(d.Universe()), "X must be a subset of U(D)");
  Tableau t = Tableau::Standard(d, x);
  Tableau minimal = Minimize(t);
  CanonicalResult out = CanonicalSchema(minimal);
  out.used_fast_path = false;
  return out;
}

CanonicalResult CanonicalConnection(const DatabaseSchema& d,
                                    const AttrSet& x) {
  GYO_CHECK_MSG(x.IsSubsetOf(d.Universe()), "X must be a subset of U(D)");
  // Theorem 3.3(ii): for tree schemas CC(D,X) = GR(D,X).
  // Theorem 3.3(iii): if U(GR(D,X)) ⊆ X then CC(D,X) = GR(D,X).
  GyoResult gr = GyoReduceFast(d, x);
  if (IsTreeSchema(d) || gr.reduced.Universe().IsSubsetOf(x)) {
    CanonicalResult out;
    out.schema = gr.reduced;
    out.sources = gr.survivors;
    out.used_fast_path = true;
    return out;
  }
  return CanonicalConnectionExact(d, x);
}

}  // namespace gyo
