#include "tableau/tableau.h"

#include <algorithm>

#include "util/check.h"

namespace gyo {

Tableau Tableau::Standard(const DatabaseSchema& d, const AttrSet& x) {
  AttrSet universe = d.Universe();
  GYO_CHECK_MSG(x.IsSubsetOf(universe),
                "query target X must be a subset of U(D)");
  Tableau t;
  t.columns_ = universe.ToVector();
  t.summary_ = x;
  const int n = d.NumRelations();
  t.cells_.resize(static_cast<size_t>(n));
  t.origins_.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    t.origins_[static_cast<size_t>(i)] = i;
    auto& row = t.cells_[static_cast<size_t>(i)];
    row.resize(t.columns_.size());
    for (size_t c = 0; c < t.columns_.size(); ++c) {
      AttrId a = t.columns_[c];
      if (d[i].Contains(a)) {
        row[c] = x.Contains(a) ? kDistinguished : kShared;
      } else {
        row[c] = 2 + i;  // unique nondistinguished variable
      }
    }
  }
  return t;
}

Tableau Tableau::SelectRows(const std::vector<int>& rows) const {
  Tableau t;
  t.columns_ = columns_;
  t.summary_ = summary_;
  for (int r : rows) {
    GYO_CHECK(r >= 0 && r < NumRows());
    t.cells_.push_back(cells_[static_cast<size_t>(r)]);
    t.origins_.push_back(origins_[static_cast<size_t>(r)]);
  }
  return t;
}

void Tableau::Align(Tableau& a, Tableau& b) {
  GYO_CHECK_MSG(a.summary_ == b.summary_,
                "aligned tableaux must share a summary");
  AttrSet cols;
  for (AttrId c : a.columns_) cols.Insert(c);
  for (AttrId c : b.columns_) cols.Insert(c);
  std::vector<AttrId> merged = cols.ToVector();

  auto extend = [&merged](Tableau& t) {
    std::vector<std::vector<int>> new_cells(t.cells_.size());
    for (size_t r = 0; r < t.cells_.size(); ++r) {
      new_cells[r].resize(merged.size());
      for (size_t c = 0; c < merged.size(); ++c) {
        // Find merged[c] among t's existing columns.
        auto it =
            std::lower_bound(t.columns_.begin(), t.columns_.end(), merged[c]);
        if (it != t.columns_.end() && *it == merged[c]) {
          size_t old = static_cast<size_t>(it - t.columns_.begin());
          new_cells[r][c] = t.cells_[r][old];
        } else {
          new_cells[r][c] = 2 + t.origins_[r];  // fresh unique symbol
        }
      }
    }
    t.cells_ = std::move(new_cells);
    t.columns_ = merged;
  };
  extend(a);
  extend(b);
}

std::string Tableau::Format(const Catalog& catalog) const {
  std::string out;
  // Header.
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) out += "\t";
    out += catalog.Format(AttrSet{columns_[c]});
  }
  out += "\n";
  for (int r = 0; r < NumRows(); ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out += "\t";
      std::string name = catalog.Format(AttrSet{columns_[c]});
      int sym = Cell(r, static_cast<int>(c));
      if (sym == kDistinguished) {
        out += name;
      } else if (sym == kShared) {
        out += name + "'";
      } else {
        out += name + "_" + std::to_string(sym - 2);
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace gyo
