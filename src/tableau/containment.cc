#include "tableau/containment.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace gyo {

namespace {

// Verifies that `row_map` (from-row → to-row) induces a well-defined symbol
// mapping that fixes distinguished variables.
bool VerifyRowMap(const Tableau& from, const Tableau& to,
                  const std::vector<int>& row_map) {
  const int cols = from.NumCols();
  // Per-column symbol image, keyed by symbol value.
  for (int c = 0; c < cols; ++c) {
    int max_sym = 0;
    for (int r = 0; r < from.NumRows(); ++r) {
      max_sym = std::max(max_sym, from.Cell(r, c));
    }
    std::vector<int> image(static_cast<size_t>(max_sym) + 1, -1);
    for (int r = 0; r < from.NumRows(); ++r) {
      int f = from.Cell(r, c);
      int t = to.Cell(row_map[static_cast<size_t>(r)], c);
      if (f == Tableau::kDistinguished && t != Tableau::kDistinguished) {
        return false;
      }
      if (image[static_cast<size_t>(f)] == -1) {
        image[static_cast<size_t>(f)] = t;
      } else if (image[static_cast<size_t>(f)] != t) {
        return false;
      }
    }
  }
  return true;
}

// Backtracking searcher for a containment mapping.
class Searcher {
 public:
  Searcher(const Tableau& from, const Tableau& to, bool injective)
      : from_(from), to_(to), injective_(injective) {
    cols_ = from.NumCols();
    // Symbol image tables, per column.
    int max_sym = 2;
    for (int r = 0; r < from.NumRows(); ++r) {
      for (int c = 0; c < cols_; ++c) {
        max_sym = std::max(max_sym, from.Cell(r, c));
      }
    }
    image_.assign(static_cast<size_t>(cols_),
                  std::vector<int>(static_cast<size_t>(max_sym) + 1, -1));
    used_.assign(static_cast<size_t>(to.NumRows()), false);

    // Candidate targets per from-row: distinguished cells must land on
    // distinguished cells.
    candidates_.resize(static_cast<size_t>(from.NumRows()));
    for (int r = 0; r < from.NumRows(); ++r) {
      for (int s = 0; s < to.NumRows(); ++s) {
        bool ok = true;
        for (int c = 0; c < cols_ && ok; ++c) {
          if (from.Cell(r, c) == Tableau::kDistinguished &&
              to.Cell(s, c) != Tableau::kDistinguished) {
            ok = false;
          }
        }
        if (ok) candidates_[static_cast<size_t>(r)].push_back(s);
      }
    }
    // Assign most-constrained rows first.
    order_.resize(static_cast<size_t>(from.NumRows()));
    std::iota(order_.begin(), order_.end(), 0);
    std::stable_sort(order_.begin(), order_.end(), [this](int a, int b) {
      return candidates_[static_cast<size_t>(a)].size() <
             candidates_[static_cast<size_t>(b)].size();
    });
    row_map_.assign(static_cast<size_t>(from.NumRows()), -1);
  }

  std::optional<std::vector<int>> Run() {
    if (Assign(0)) return row_map_;
    return std::nullopt;
  }

  /// Like Run but requires `verify(row_map)` to accept the mapping; continues
  /// searching otherwise.
  template <typename Verify>
  std::optional<std::vector<int>> RunVerified(Verify&& verify) {
    verify_ = std::forward<Verify>(verify);
    has_verify_ = true;
    if (Assign(0)) return row_map_;
    return std::nullopt;
  }

 private:
  bool Assign(size_t depth) {
    if (depth == order_.size()) {
      return !has_verify_ || verify_(row_map_);
    }
    int r = order_[depth];
    for (int s : candidates_[static_cast<size_t>(r)]) {
      if (injective_ && used_[static_cast<size_t>(s)]) continue;
      // Try r -> s, recording symbol-image extensions for undo.
      std::vector<std::pair<int, int>> trail;  // (col, symbol)
      bool ok = true;
      for (int c = 0; c < cols_ && ok; ++c) {
        int f = from_.Cell(r, c);
        int t = to_.Cell(s, c);
        int& img = image_[static_cast<size_t>(c)][static_cast<size_t>(f)];
        if (img == -1) {
          img = t;
          trail.emplace_back(c, f);
        } else if (img != t) {
          ok = false;
        }
      }
      if (ok) {
        row_map_[static_cast<size_t>(r)] = s;
        if (injective_) used_[static_cast<size_t>(s)] = true;
        if (Assign(depth + 1)) return true;
        if (injective_) used_[static_cast<size_t>(s)] = false;
        row_map_[static_cast<size_t>(r)] = -1;
      }
      for (auto [c, f] : trail) {
        image_[static_cast<size_t>(c)][static_cast<size_t>(f)] = -1;
      }
    }
    return false;
  }

  const Tableau& from_;
  const Tableau& to_;
  bool injective_;
  int cols_;
  std::vector<std::vector<int>> image_;
  std::vector<std::vector<int>> candidates_;
  std::vector<int> order_;
  std::vector<int> row_map_;
  std::vector<bool> used_;
  std::function<bool(const std::vector<int>&)> verify_;
  bool has_verify_ = false;
};

}  // namespace

std::optional<std::vector<int>> FindContainmentMapping(const Tableau& from,
                                                       const Tableau& to) {
  GYO_CHECK_MSG(from.Columns() == to.Columns(),
                "containment mapping requires aligned columns");
  GYO_CHECK_MSG(from.Summary() == to.Summary(),
                "containment mapping requires equal summaries");
  if (from.NumRows() == 0) return std::vector<int>{};
  if (to.NumRows() == 0) return std::nullopt;
  Searcher searcher(from, to, /*injective=*/false);
  return searcher.Run();
}

bool AreEquivalent(const Tableau& a, const Tableau& b) {
  Tableau x = a;
  Tableau y = b;
  Tableau::Align(x, y);
  return FindContainmentMapping(x, y).has_value() &&
         FindContainmentMapping(y, x).has_value();
}

bool AreIsomorphic(const Tableau& a, const Tableau& b) {
  if (a.NumRows() != b.NumRows()) return false;
  Tableau x = a;
  Tableau y = b;
  Tableau::Align(x, y);
  if (x.NumRows() == 0) return true;
  Searcher searcher(x, y, /*injective=*/true);
  auto found = searcher.RunVerified([&](const std::vector<int>& row_map) {
    // The inverse of the bijection must also be a containment mapping.
    std::vector<int> inverse(row_map.size(), -1);
    for (size_t r = 0; r < row_map.size(); ++r) {
      inverse[static_cast<size_t>(row_map[r])] = static_cast<int>(r);
    }
    return VerifyRowMap(y, x, inverse);
  });
  return found.has_value();
}

}  // namespace gyo
