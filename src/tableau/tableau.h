#ifndef GYO_TABLEAU_TABLEAU_H_
#define GYO_TABLEAU_TABLEAU_H_

#include <string>
#include <vector>

#include "schema/catalog.h"
#include "schema/schema.h"
#include "util/attr_set.h"

namespace gyo {

/// The "standard" tableau Tab(D, X) for the query (D, X) (paper §3.4).
///
/// A tableau is a matrix of symbols: one row per relation schema, one column
/// per attribute of U(D). Symbols are integers local to their column:
///   * kDistinguished (0): the distinguished variable `a` — appears in row i,
///     column A iff A ∈ Ri ∩ X;
///   * kShared (1): the single nondistinguished variable a'_A of column A —
///     appears in row i iff A ∈ Ri − X (shared by all such rows);
///   * unique symbols (2 + original row index): everywhere else.
/// Two cells in the same column denote the same variable iff their integers
/// are equal; cells in different columns never denote the same variable
/// (join-query tableaux are "typed").
///
/// Rows carry their origin (the index of the relation of D they came from),
/// which is preserved by SelectRows — both so that unique symbols remain
/// stable under row deletion and so canonical connections can report which
/// relations survive minimization.
class Tableau {
 public:
  static constexpr int kDistinguished = 0;
  static constexpr int kShared = 1;

  /// Builds Tab(D, X). Requires X ⊆ U(D).
  static Tableau Standard(const DatabaseSchema& d, const AttrSet& x);

  int NumRows() const { return static_cast<int>(cells_.size()); }
  int NumCols() const { return static_cast<int>(columns_.size()); }

  /// The attribute of column `col`.
  AttrId ColumnAttr(int col) const {
    return columns_[static_cast<size_t>(col)];
  }
  const std::vector<AttrId>& Columns() const { return columns_; }

  /// The symbol at (row, col).
  int Cell(int row, int col) const {
    return cells_[static_cast<size_t>(row)][static_cast<size_t>(col)];
  }

  bool IsDistinguished(int row, int col) const {
    return Cell(row, col) == kDistinguished;
  }

  /// The summary (target attribute set X).
  const AttrSet& Summary() const { return summary_; }

  /// The original relation index each row came from.
  int RowOrigin(int row) const { return origins_[static_cast<size_t>(row)]; }
  const std::vector<int>& RowOrigins() const { return origins_; }

  /// The subtableau with the given rows (in the given order); symbols and
  /// origins are preserved.
  Tableau SelectRows(const std::vector<int>& rows) const;

  /// Extends two tableaux (in place) to the union of their column sets; the
  /// added cells receive fresh unique symbols. Containment mappings between
  /// tableaux over different universes are defined on the aligned versions.
  /// Requires equal summaries.
  static void Align(Tableau& a, Tableau& b);

  /// Pretty-prints the tableau; distinguished variables render as the
  /// attribute name, shared ones as name', unique ones as name_i.
  std::string Format(const Catalog& catalog) const;

 private:
  std::vector<AttrId> columns_;            // sorted attribute ids
  AttrSet summary_;                        // X
  std::vector<std::vector<int>> cells_;    // [row][col] symbols
  std::vector<int> origins_;               // [row] original relation index
};

}  // namespace gyo

#endif  // GYO_TABLEAU_TABLEAU_H_
