#ifndef GYO_TABLEAU_MINIMIZE_H_
#define GYO_TABLEAU_MINIMIZE_H_

#include "tableau/tableau.h"

namespace gyo {

/// Minimizes a tableau: returns an equivalent subtableau with no equivalent
/// proper subtableau (a *minimal tableau*, unique up to isomorphism by
/// Lemma 3.4 — the core). Row origins are preserved.
///
/// Implementation: repeatedly drop a row r whenever a containment mapping
/// from T to T − {r} exists; a folding argument shows this greedy process
/// reaches the core. Exponential worst case (tableau minimization is
/// NP-hard); for queries over tree schemas prefer the GYO fast path in
/// canonical.h, which avoids tableaux entirely.
Tableau Minimize(const Tableau& t);

}  // namespace gyo

#endif  // GYO_TABLEAU_MINIMIZE_H_
