#ifndef GYO_TABLEAU_CONTAINMENT_H_
#define GYO_TABLEAU_CONTAINMENT_H_

#include <optional>
#include <vector>

#include "tableau/tableau.h"

namespace gyo {

/// Containment mappings between tableaux (paper §3.4, after Aho–Sagiv–Ullman).
///
/// A containment mapping from T to T' is a symbol-to-symbol mapping (per
/// column — join-query tableaux are typed) that fixes distinguished variables
/// and induces a row-to-row mapping from T into T'. We search for the row
/// mapping directly, threading per-column symbol images.

/// Finds a containment mapping from `from` to `to`, returned as a row map
/// (from-row → to-row), or nullopt if none exists. The tableaux must have
/// identical column lists and summaries (use Tableau::Align first if they
/// come from different universes). Backtracking search; exponential in the
/// worst case (the underlying problem is NP-complete).
std::optional<std::vector<int>> FindContainmentMapping(const Tableau& from,
                                                       const Tableau& to);

/// True iff T ≡ T': containment mappings exist in both directions. Aligns
/// copies of the inputs automatically.
bool AreEquivalent(const Tableau& a, const Tableau& b);

/// True iff T ≃ T': there is a row bijection that is a containment mapping
/// in both directions (paper §3.4). Aligns copies automatically.
bool AreIsomorphic(const Tableau& a, const Tableau& b);

}  // namespace gyo

#endif  // GYO_TABLEAU_CONTAINMENT_H_
