#ifndef GYO_TABLEAU_CANONICAL_H_
#define GYO_TABLEAU_CANONICAL_H_

#include <vector>

#include "schema/schema.h"
#include "tableau/tableau.h"
#include "util/attr_set.h"

namespace gyo {

/// A canonical connection CC(D, X) together with provenance.
struct CanonicalResult {
  /// The canonical connection: the canonical schema of a minimal tableau for
  /// (D, X) (§3.4). Unique by Lemmas 3.3–3.4.
  DatabaseSchema schema;

  /// For each relation of `schema`, the index of the relation of D whose
  /// tableau row produced it. (The CC relation is always a subset of that
  /// source relation — the §6 "useless columns" are exactly the dropped
  /// attributes.)
  std::vector<int> sources;

  /// True iff the GYO fast path of Theorem 3.3 was used (D was a tree schema
  /// or U(GR(D,X)) ⊆ X); false means full tableau minimization ran.
  bool used_fast_path = false;
};

/// The canonical schema CS of a tableau (§3.4): for each row, the attributes
/// whose cell is distinguished or holds a variable repeated in another row;
/// the resulting schema is reduced. Row origins become sources.
CanonicalResult CanonicalSchema(const Tableau& t);

/// Computes CC(D, X). Uses Theorem 3.3's fast paths — CC(D,X) = GR(D,X) when
/// D is a tree schema (ii) or when U(GR(D,X)) ⊆ X (iii) — and falls back to
/// tableau minimization otherwise. Requires X ⊆ U(D).
CanonicalResult CanonicalConnection(const DatabaseSchema& d, const AttrSet& x);

/// Computes CC(D, X) by tableau minimization unconditionally. Used to
/// cross-validate the fast paths and to benchmark them (P3).
CanonicalResult CanonicalConnectionExact(const DatabaseSchema& d,
                                         const AttrSet& x);

}  // namespace gyo

#endif  // GYO_TABLEAU_CANONICAL_H_
