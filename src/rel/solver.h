#ifndef GYO_REL_SOLVER_H_
#define GYO_REL_SOLVER_H_

#include <optional>

#include "rel/program.h"
#include "schema/schema.h"
#include "util/attr_set.h"

namespace gyo {

/// Program builders for solving Q = (D, X) over UR databases — the §4/§6
/// strategies compared in bench_join_strategies (P6).

/// The baseline of §4: join every relation of D left-deep, then project onto
/// X. Always solves (D, X); the intermediate join can be huge.
Program FullJoinProgram(const DatabaseSchema& d, const AttrSet& x);

/// The §6 optimization: restrict to the canonical connection CC(D, X) —
/// irrelevant relations are dropped and useless columns projected out — then
/// join and project. Solves (D, X) on all UR databases by Theorem 4.1.
Program CCPrunedProgram(const DatabaseSchema& d, const AttrSet& x);

struct YannakakisOptions {
  /// Run the 2(n−1)-semijoin full reducer before joining.
  bool full_reduce = true;
  /// Project intermediate join results onto X ∪ (attributes still needed).
  bool early_project = true;
};

/// Yannakakis' algorithm for tree schemas: full-reduce along a qual tree,
/// then join bottom-up with early projection. Returns nullopt for cyclic
/// schemas. With both options on, intermediate results never exceed
/// |output| · |largest relation| on fully-reduced inputs.
std::optional<Program> YannakakisProgram(const DatabaseSchema& d,
                                         const AttrSet& x,
                                         const YannakakisOptions& options =
                                             YannakakisOptions());

/// One synchronous round of the pairwise semijoin fixpoint, compiled as a
/// program: for every relation i, a chain Ri ⋉ Rj1 ⋉ Rj2 ⋉ ... over the
/// neighbors j whose schema intersects d[i] (in increasing j), every chain
/// reading the round-start states of its neighbors. Chains for different i
/// share no statements, so the exec dataflow DAG runs a whole round as one
/// task wave of width NumRelations(). chain_ids[i] is the id of Ri's state
/// after the round (i itself when Ri has no neighbor). SemijoinFixpoint
/// (rel/reducer.h) executes this program repeatedly until no chain shrinks
/// its relation.
struct SemijoinRound {
  Program program;
  std::vector<int> chain_ids;
};
SemijoinRound SemijoinRoundProgram(const DatabaseSchema& d);

/// The tree-schema full reducer compiled as a program: the upward
/// (children-before-parents) then downward 2(n−1) semijoin passes along a
/// qual tree of d. Each semijoin reads the *current* id of its nodes, so the
/// per-node chains carry the data dependencies and semijoins on disjoint
/// subtrees come out independent — the exec dataflow DAG runs those
/// concurrently. final_ids[i] is the id of node i's fully reduced state.
/// Returns nullopt for cyclic schemas. ApplyFullReducer (rel/reducer.h)
/// executes this plan with state retirement.
struct FullReducerPlan {
  Program program;
  std::vector<int> final_ids;
};
std::optional<FullReducerPlan> FullReducerProgram(const DatabaseSchema& d);

/// Evaluation through a tree projection (Theorems 6.1/6.2): given a tree
/// schema `bags` with D ∪ {X} ≤ bags ≤ unions-of-base-relations, builds for
/// each bag a host join of base relations covering it (each base relation is
/// folded into the host join of a bag that contains it), projects hosts onto
/// their bags, full-reduces along the bag tree with 2(|bags|−1) semijoins,
/// and joins with early projection. Returns nullopt if `bags` is cyclic or
/// does not cover D ∪ {X}. Solves (D, X) on all databases (UR or not).
std::optional<Program> TreeProjectionProgram(const DatabaseSchema& d,
                                             const AttrSet& x,
                                             const DatabaseSchema& bags);

}  // namespace gyo

#endif  // GYO_REL_SOLVER_H_
