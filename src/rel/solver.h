#ifndef GYO_REL_SOLVER_H_
#define GYO_REL_SOLVER_H_

#include <optional>

#include "rel/program.h"
#include "schema/schema.h"
#include "util/attr_set.h"

namespace gyo {

/// Program builders for solving Q = (D, X) over UR databases — the §4/§6
/// strategies compared in bench_join_strategies (P6).

/// The baseline of §4: join every relation of D left-deep, then project onto
/// X. Always solves (D, X); the intermediate join can be huge.
Program FullJoinProgram(const DatabaseSchema& d, const AttrSet& x);

/// The §6 optimization: restrict to the canonical connection CC(D, X) —
/// irrelevant relations are dropped and useless columns projected out — then
/// join and project. Solves (D, X) on all UR databases by Theorem 4.1.
Program CCPrunedProgram(const DatabaseSchema& d, const AttrSet& x);

struct YannakakisOptions {
  /// Run the 2(n−1)-semijoin full reducer before joining.
  bool full_reduce = true;
  /// Project intermediate join results onto X ∪ (attributes still needed).
  bool early_project = true;
};

/// Yannakakis' algorithm for tree schemas: full-reduce along a qual tree,
/// then join bottom-up with early projection. Returns nullopt for cyclic
/// schemas. With both options on, intermediate results never exceed
/// |output| · |largest relation| on fully-reduced inputs.
std::optional<Program> YannakakisProgram(const DatabaseSchema& d,
                                         const AttrSet& x,
                                         const YannakakisOptions& options =
                                             YannakakisOptions());

/// Evaluation through a tree projection (Theorems 6.1/6.2): given a tree
/// schema `bags` with D ∪ {X} ≤ bags ≤ unions-of-base-relations, builds for
/// each bag a host join of base relations covering it (each base relation is
/// folded into the host join of a bag that contains it), projects hosts onto
/// their bags, full-reduces along the bag tree with 2(|bags|−1) semijoins,
/// and joins with early projection. Returns nullopt if `bags` is cyclic or
/// does not cover D ∪ {X}. Solves (D, X) on all databases (UR or not).
std::optional<Program> TreeProjectionProgram(const DatabaseSchema& d,
                                             const AttrSet& x,
                                             const DatabaseSchema& bags);

}  // namespace gyo

#endif  // GYO_REL_SOLVER_H_
