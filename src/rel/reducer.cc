#include "rel/reducer.h"

#include <algorithm>
#include <utility>

#include "exec/physical_plan.h"
#include "rel/ops.h"
#include "rel/program.h"
#include "rel/solver.h"
#include "util/check.h"

namespace gyo {

bool IsGloballyConsistent(const DatabaseSchema& d,
                          const std::vector<Relation>& states) {
  GYO_CHECK(static_cast<int>(states.size()) == d.NumRelations());
  if (states.empty()) return true;
  Relation joined = JoinAll(states);
  for (int i = 0; i < d.NumRelations(); ++i) {
    Relation projected = Project(joined, d[i]);
    if (!projected.EqualsAsSet(states[static_cast<size_t>(i)])) return false;
  }
  return true;
}

std::optional<std::vector<Relation>> ApplyFullReducer(
    const DatabaseSchema& d, const std::vector<Relation>& states) {
  return ApplyFullReducer(d, states, exec::ExecContext());
}

std::optional<std::vector<Relation>> ApplyFullReducer(
    const DatabaseSchema& d, const std::vector<Relation>& states,
    const exec::ExecContext& ctx) {
  GYO_CHECK(static_cast<int>(states.size()) == d.NumRelations());
  // The two semijoin passes, compiled as a program (see FullReducerProgram
  // in rel/solver.h): per-node chains carry the data dependencies, so
  // semijoins on disjoint subtrees run concurrently on the exec DAG.
  std::optional<FullReducerPlan> plan = FullReducerProgram(d);
  if (!plan.has_value()) return std::nullopt;
  const int n = d.NumRelations();
  const std::vector<int>& ids = plan->final_ids;

  // State retirement: every base state and intermediate semijoin state is
  // consumed by a later chain statement, so with retire_consumed the exec
  // runtime frees each one as its final consumer task finishes — peak memory
  // stays near the serial reducer's n live states instead of holding all
  // 2(n−1) intermediates until the DAG drains. Each node's *final* state is
  // what we return, so retain the ones some statement still reads (e.g. the
  // root's upward-pass result, which every downward semijoin consumes).
  exec::ExecContext retire_ctx = ctx;
  retire_ctx.retire_consumed = true;
  retire_ctx.retain_states = &plan->final_ids;
  std::vector<Relation> all = exec::Execute(plan->program, states, retire_ctx);
  std::vector<Relation> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(std::move(all[static_cast<size_t>(ids[static_cast<size_t>(i)])]));
  }
  return out;
}

std::vector<Relation> SemijoinFixpoint(const DatabaseSchema& d,
                                       const std::vector<Relation>& states,
                                       int* steps) {
  return SemijoinFixpoint(d, states, exec::ExecContext(), steps);
}

std::vector<Relation> SemijoinFixpoint(const DatabaseSchema& d,
                                       const std::vector<Relation>& states,
                                       const exec::ExecContext& ctx,
                                       int* steps) {
  GYO_CHECK(static_cast<int>(states.size()) == d.NumRelations());
  const int n = d.NumRelations();
  SemijoinRound round = SemijoinRoundProgram(d);
  const std::vector<Program::Statement>& stmts = round.program.Statements();

  // Rounds always run without retirement, whatever the caller's context
  // says: the convergence check below reads consumed input slots (which
  // retirement would have emptied), and a caller's retain list means
  // nothing in the round program's numbering. Query stats are accumulated
  // across rounds instead of letting each Execute overwrite them.
  exec::ExecContext round_ctx = ctx;
  round_ctx.retire_consumed = false;
  round_ctx.retain_states = nullptr;
  exec::QueryStats round_stats;
  exec::QueryStats total_stats;
  round_ctx.query_stats = ctx.query_stats != nullptr ? &round_stats : nullptr;

  // Compile once: the round program never changes, so the dataflow and
  // reader-count analyses need not be redone every round.
  exec::PhysicalPlan plan = exec::PhysicalPlan::Compile(round.program);
  std::vector<Relation> out = states;
  int effective = 0;
  bool changed = round.program.NumStatements() > 0;
  while (changed) {
    changed = false;
    // One task wave: every relation's neighbor-semijoin chain, all chains
    // reading this round's start states. Per-relation row counts are
    // monotone non-increasing, so if no chain statement shrinks its lhs the
    // states are a pairwise-semijoin fixpoint and the loop stops.
    std::vector<Relation> all = plan.Execute(out, round_ctx);
    if (ctx.query_stats != nullptr) {
      total_stats.queue_wait_seconds += round_stats.queue_wait_seconds;
      total_stats.run_time_seconds += round_stats.run_time_seconds;
      total_stats.tasks += round_stats.tasks;
      total_stats.morsels += round_stats.morsels;
      total_stats.peak_state_bytes = std::max(total_stats.peak_state_bytes,
                                              round_stats.peak_state_bytes);
      total_stats.bloom_partition_skips += round_stats.bloom_partition_skips;
      total_stats.probe_rows_pruned += round_stats.probe_rows_pruned;
      total_stats.tasks_stolen += round_stats.tasks_stolen;
      total_stats.affinity_hits += round_stats.affinity_hits;
      total_stats.affinity_misses += round_stats.affinity_misses;
      // queue_depth_at_admit is not summed: keep the worst (deepest) round.
      total_stats.queue_depth_at_admit = std::max(
          total_stats.queue_depth_at_admit, round_stats.queue_depth_at_admit);
    }
    for (int k = 0; k < round.program.NumStatements(); ++k) {
      const Program::Statement& s = stmts[static_cast<size_t>(k)];
      if (all[static_cast<size_t>(n + k)].NumRows() !=
          all[static_cast<size_t>(s.lhs)].NumRows()) {
        ++effective;
        changed = true;
      }
    }
    for (int i = 0; i < n; ++i) {
      out[static_cast<size_t>(i)] =
          std::move(all[static_cast<size_t>(round.chain_ids[static_cast<size_t>(i)])]);
    }
  }
  if (ctx.query_stats != nullptr) *ctx.query_stats = total_stats;
  if (steps != nullptr) *steps = effective;
  return out;
}

}  // namespace gyo
