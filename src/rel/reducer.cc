#include "rel/reducer.h"

#include "gyo/qual_graph.h"
#include "rel/ops.h"
#include "util/check.h"

namespace gyo {

bool IsGloballyConsistent(const DatabaseSchema& d,
                          const std::vector<Relation>& states) {
  GYO_CHECK(static_cast<int>(states.size()) == d.NumRelations());
  if (states.empty()) return true;
  Relation joined = JoinAll(states);
  for (int i = 0; i < d.NumRelations(); ++i) {
    Relation projected = Project(joined, d[i]);
    if (!projected.EqualsAsSet(states[static_cast<size_t>(i)])) return false;
  }
  return true;
}

std::optional<std::vector<Relation>> ApplyFullReducer(
    const DatabaseSchema& d, const std::vector<Relation>& states) {
  GYO_CHECK(static_cast<int>(states.size()) == d.NumRelations());
  std::optional<QualGraph> tree = BuildJoinTree(d);
  if (!tree.has_value()) return std::nullopt;
  std::vector<Relation> out = states;
  // Upward pass: children (removed first) reduce their parents...
  for (const auto& [child, parent] : tree->edges) {
    out[static_cast<size_t>(parent)] =
        Semijoin(out[static_cast<size_t>(parent)],
                 out[static_cast<size_t>(child)]);
  }
  // ...then the downward pass propagates the root's state back out.
  for (auto it = tree->edges.rbegin(); it != tree->edges.rend(); ++it) {
    out[static_cast<size_t>(it->first)] = Semijoin(
        out[static_cast<size_t>(it->first)],
        out[static_cast<size_t>(it->second)]);
  }
  return out;
}

std::vector<Relation> SemijoinFixpoint(const DatabaseSchema& d,
                                       const std::vector<Relation>& states,
                                       int* steps) {
  GYO_CHECK(static_cast<int>(states.size()) == d.NumRelations());
  std::vector<Relation> out = states;
  const int n = d.NumRelations();
  int effective = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j || !d[i].Intersects(d[j])) continue;
        Relation reduced =
            Semijoin(out[static_cast<size_t>(i)], out[static_cast<size_t>(j)]);
        if (reduced.NumRows() != out[static_cast<size_t>(i)].NumRows()) {
          out[static_cast<size_t>(i)] = std::move(reduced);
          ++effective;
          changed = true;
        }
      }
    }
  }
  if (steps != nullptr) *steps = effective;
  return out;
}

}  // namespace gyo
