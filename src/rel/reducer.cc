#include "rel/reducer.h"

#include <utility>

#include "exec/physical_plan.h"
#include "gyo/qual_graph.h"
#include "rel/ops.h"
#include "rel/program.h"
#include "util/check.h"

namespace gyo {

bool IsGloballyConsistent(const DatabaseSchema& d,
                          const std::vector<Relation>& states) {
  GYO_CHECK(static_cast<int>(states.size()) == d.NumRelations());
  if (states.empty()) return true;
  Relation joined = JoinAll(states);
  for (int i = 0; i < d.NumRelations(); ++i) {
    Relation projected = Project(joined, d[i]);
    if (!projected.EqualsAsSet(states[static_cast<size_t>(i)])) return false;
  }
  return true;
}

std::optional<std::vector<Relation>> ApplyFullReducer(
    const DatabaseSchema& d, const std::vector<Relation>& states) {
  return ApplyFullReducer(d, states, exec::ExecContext());
}

std::optional<std::vector<Relation>> ApplyFullReducer(
    const DatabaseSchema& d, const std::vector<Relation>& states,
    const exec::ExecContext& ctx) {
  GYO_CHECK(static_cast<int>(states.size()) == d.NumRelations());
  std::optional<QualGraph> tree = BuildJoinTree(d);
  if (!tree.has_value()) return std::nullopt;

  // Compile the two passes into a semijoin program. Each semijoin reads the
  // *current* id of its nodes, so the per-node chains carry the data
  // dependencies and semijoins on disjoint subtrees come out independent —
  // the exec dataflow DAG then runs those concurrently.
  const int n = d.NumRelations();
  Program p(n);
  std::vector<int> ids(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) ids[static_cast<size_t>(i)] = i;
  // Upward pass: children (removed first) reduce their parents...
  for (const auto& [child, parent] : tree->edges) {
    ids[static_cast<size_t>(parent)] =
        p.AddSemijoin(ids[static_cast<size_t>(parent)],
                      ids[static_cast<size_t>(child)]);
  }
  // ...then the downward pass propagates the root's state back out.
  for (auto it = tree->edges.rbegin(); it != tree->edges.rend(); ++it) {
    ids[static_cast<size_t>(it->first)] = p.AddSemijoin(
        ids[static_cast<size_t>(it->first)],
        ids[static_cast<size_t>(it->second)]);
  }

  std::vector<Relation> all = exec::Execute(p, states, ctx);
  std::vector<Relation> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(std::move(all[static_cast<size_t>(ids[static_cast<size_t>(i)])]));
  }
  return out;
}

std::vector<Relation> SemijoinFixpoint(const DatabaseSchema& d,
                                       const std::vector<Relation>& states,
                                       int* steps) {
  GYO_CHECK(static_cast<int>(states.size()) == d.NumRelations());
  std::vector<Relation> out = states;
  const int n = d.NumRelations();
  int effective = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j || !d[i].Intersects(d[j])) continue;
        Relation reduced =
            Semijoin(out[static_cast<size_t>(i)], out[static_cast<size_t>(j)]);
        if (reduced.NumRows() != out[static_cast<size_t>(i)].NumRows()) {
          out[static_cast<size_t>(i)] = std::move(reduced);
          ++effective;
          changed = true;
        }
      }
    }
  }
  if (steps != nullptr) *steps = effective;
  return out;
}

}  // namespace gyo
