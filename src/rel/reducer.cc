#include "rel/reducer.h"

#include <algorithm>
#include <utility>

#include "exec/physical_plan.h"
#include "rel/ops.h"
#include "rel/program.h"
#include "rel/solver.h"
#include "util/check.h"

namespace gyo {

bool IsGloballyConsistent(const DatabaseSchema& d,
                          const std::vector<Relation>& states) {
  GYO_CHECK(static_cast<int>(states.size()) == d.NumRelations());
  if (states.empty()) return true;
  Relation joined = JoinAll(states);
  for (int i = 0; i < d.NumRelations(); ++i) {
    Relation projected = Project(joined, d[i]);
    if (!projected.EqualsAsSet(states[static_cast<size_t>(i)])) return false;
  }
  return true;
}

std::optional<std::vector<Relation>> ApplyFullReducer(
    const DatabaseSchema& d, const std::vector<Relation>& states) {
  return ApplyFullReducer(d, states, exec::ExecContext());
}

std::optional<std::vector<Relation>> ApplyFullReducer(
    const DatabaseSchema& d, const std::vector<Relation>& states,
    const exec::ExecContext& ctx) {
  GYO_CHECK(static_cast<int>(states.size()) == d.NumRelations());
  // The two semijoin passes, compiled as a program (see FullReducerProgram
  // in rel/solver.h): per-node chains carry the data dependencies, so
  // semijoins on disjoint subtrees run concurrently on the exec DAG.
  std::optional<FullReducerPlan> plan = FullReducerProgram(d);
  if (!plan.has_value()) return std::nullopt;
  const int n = d.NumRelations();
  const std::vector<int>& ids = plan->final_ids;

  // State retirement: every base state and intermediate semijoin state is
  // consumed by a later chain statement, so with retire_consumed the exec
  // runtime frees each one as its final consumer task finishes — peak memory
  // stays near the serial reducer's n live states instead of holding all
  // 2(n−1) intermediates until the DAG drains. Each node's *final* state is
  // what we return, so the retain-set planner pass keeps the ones some
  // statement still reads (e.g. the root's upward-pass result, which every
  // downward semijoin consumes) — final states no statement touches are
  // sinks and need no exemption.
  const std::vector<int> retain =
      exec::RetainForSinks(plan->program, plan->final_ids);
  exec::ExecContext retire_ctx = ctx;
  retire_ctx.retire_consumed = true;
  retire_ctx.retain_states = &retain;
  std::vector<Relation> all = exec::Execute(plan->program, states, retire_ctx);
  std::vector<Relation> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(std::move(all[static_cast<size_t>(ids[static_cast<size_t>(i)])]));
  }
  return out;
}

namespace {

// The delta-round fixpoint body shared by SemijoinFixpoint (first round =
// every relation) and SemijoinFixpointFrom (first round = the caller's
// grown relations). `process_first[i]` gates relation i's chain in round
// one, where a processed relation semijoins against ALL its neighbors;
// every later round re-semijoins a relation only against the neighbors
// that shrank in the previous round. Skipped pairs are no-ops by the clean
// -pair invariant — Ri ⋉ Rj removes nothing until Rj shrinks again after
// the pair was last applied — so states and effective-step counts are
// bit-identical to the dense every-pair-every-round schedule.
//
// Consumes `out`: every round moves the states through the exec runtime's
// moving entry point instead of deep-copying the bases (QueryStats'
// rows_rescanned measures the scans that remain).
std::vector<Relation> FixpointRounds(const DatabaseSchema& d,
                                     std::vector<Relation> out,
                                     const std::vector<char>& process_first,
                                     const exec::ExecContext& ctx,
                                     int* steps) {
  GYO_CHECK(static_cast<int>(out.size()) == d.NumRelations());
  const int n = d.NumRelations();
  std::vector<std::vector<int>> nbrs(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j && d[i].Intersects(d[j])) {
        nbrs[static_cast<size_t>(i)].push_back(j);
      }
    }
  }

  // Rounds always run without retirement, whatever the caller's context
  // says: the convergence check below reads consumed input slots (which
  // retirement would have emptied), and a caller's retain list means
  // nothing in the round program's numbering. Query stats are accumulated
  // across rounds instead of letting each Execute overwrite them.
  exec::ExecContext round_ctx = ctx;
  round_ctx.retire_consumed = false;
  round_ctx.retain_states = nullptr;
  // SIP off for the fixpoint: the delta-round schedule pins rows_rescanned
  // and effective-step counts, and cross-statement pre-pruning would shift
  // which chain statement eliminates a row (results are unchanged, but the
  // work accounting would no longer compare across rounds or to the paper's
  // step counts).
  round_ctx.enable_sip = false;
  exec::QueryStats round_stats;
  exec::QueryStats total_stats;
  round_ctx.query_stats = ctx.query_stats != nullptr ? &round_stats : nullptr;

  int effective = 0;
  int64_t rounds = 0;
  int64_t rescanned = 0;
  bool first = true;
  std::vector<char> shrank(static_cast<size_t>(n), 0);
  std::vector<int64_t> pre_rows(static_cast<size_t>(n), 0);
  std::vector<int> result_id(static_cast<size_t>(n), 0);
  while (true) {
    // Compile this round's dirty pairs: in round one, chains for the
    // first-round relations over all their neighbors; afterwards, chains
    // over the neighbors that shrank last round (a Jacobi round — every rhs
    // is a base id, so chains stay mutually independent and the whole round
    // is one task wave).
    Program program(n);
    for (int i = 0; i < n; ++i) {
      int acc = i;
      for (int j : nbrs[static_cast<size_t>(i)]) {
        const bool dirty = first ? process_first[static_cast<size_t>(i)] != 0
                                 : shrank[static_cast<size_t>(j)] != 0;
        if (dirty) acc = program.AddSemijoin(acc, j);
      }
      result_id[static_cast<size_t>(i)] = acc;
    }
    first = false;
    if (program.NumStatements() == 0) break;
    ++rounds;
    for (int i = 0; i < n; ++i) {
      pre_rows[static_cast<size_t>(i)] = out[static_cast<size_t>(i)].NumRows();
    }

    std::vector<Relation> all =
        exec::Execute(program, std::move(out), round_ctx);
    if (ctx.query_stats != nullptr) {
      total_stats.queue_wait_seconds += round_stats.queue_wait_seconds;
      total_stats.run_time_seconds += round_stats.run_time_seconds;
      total_stats.tasks += round_stats.tasks;
      total_stats.morsels += round_stats.morsels;
      total_stats.peak_state_bytes = std::max(total_stats.peak_state_bytes,
                                              round_stats.peak_state_bytes);
      total_stats.bloom_partition_skips += round_stats.bloom_partition_skips;
      total_stats.probe_rows_pruned += round_stats.probe_rows_pruned;
      total_stats.sip_rows_pruned += round_stats.sip_rows_pruned;
      total_stats.zone_map_skips += round_stats.zone_map_skips;
      total_stats.tasks_stolen += round_stats.tasks_stolen;
      total_stats.affinity_hits += round_stats.affinity_hits;
      total_stats.affinity_misses += round_stats.affinity_misses;
      // queue_depth_at_admit is not summed: keep the worst (deepest) round.
      total_stats.queue_depth_at_admit = std::max(
          total_stats.queue_depth_at_admit, round_stats.queue_depth_at_admit);
    }
    for (int k = 0; k < program.NumStatements(); ++k) {
      const Program::Statement& s =
          program.Statements()[static_cast<size_t>(k)];
      rescanned += all[static_cast<size_t>(s.lhs)].NumRows() +
                   all[static_cast<size_t>(s.rhs)].NumRows();
      if (all[static_cast<size_t>(n + k)].NumRows() !=
          all[static_cast<size_t>(s.lhs)].NumRows()) {
        ++effective;
      }
    }
    bool changed = false;
    for (int i = 0; i < n; ++i) {
      const size_t si = static_cast<size_t>(i);
      shrank[si] = all[static_cast<size_t>(result_id[si])].NumRows() <
                           pre_rows[si]
                       ? 1
                       : 0;
      if (shrank[si]) changed = true;
    }
    out.clear();
    out.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      out.push_back(
          std::move(all[static_cast<size_t>(result_id[static_cast<size_t>(i)])]));
    }
    if (!changed) break;
  }
  if (ctx.query_stats != nullptr) {
    total_stats.delta_rounds = rounds;
    total_stats.rows_rescanned = rescanned;
    *ctx.query_stats = total_stats;
  }
  if (steps != nullptr) *steps = effective;
  return out;
}

}  // namespace

std::vector<Relation> SemijoinFixpoint(const DatabaseSchema& d,
                                       const std::vector<Relation>& states,
                                       int* steps) {
  return SemijoinFixpoint(d, states, exec::ExecContext(), steps);
}

std::vector<Relation> SemijoinFixpoint(const DatabaseSchema& d,
                                       const std::vector<Relation>& states,
                                       const exec::ExecContext& ctx,
                                       int* steps) {
  return FixpointRounds(
      d, states, std::vector<char>(states.size(), 1), ctx, steps);
}

std::vector<Relation> SemijoinFixpoint(const DatabaseSchema& d,
                                       std::vector<Relation>&& states,
                                       const exec::ExecContext& ctx,
                                       int* steps) {
  const size_t n = states.size();
  return FixpointRounds(d, std::move(states), std::vector<char>(n, 1), ctx,
                        steps);
}

std::vector<Relation> SemijoinFixpointFrom(const DatabaseSchema& d,
                                           std::vector<Relation> states,
                                           const std::vector<int>& first_round,
                                           const exec::ExecContext& ctx,
                                           int* steps) {
  std::vector<char> process(states.size(), 0);
  for (int i : first_round) {
    GYO_CHECK_MSG(i >= 0 && static_cast<size_t>(i) < states.size(),
                  "first_round relation id %d out of range", i);
    process[static_cast<size_t>(i)] = 1;
  }
  return FixpointRounds(d, std::move(states), process, ctx, steps);
}

}  // namespace gyo
