#ifndef GYO_REL_RELATION_H_
#define GYO_REL_RELATION_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "schema/catalog.h"
#include "util/attr_set.h"
#include "util/check.h"

namespace gyo {

/// Attribute value. A single integer domain suffices for every experiment in
/// the paper (the theory is domain-agnostic).
using Value = int64_t;

class Relation;

/// A non-owning cursor view of one tuple of a Relation: the owning relation
/// plus a row index. Storage is column-major (see Relation), so the view
/// gathers values on demand — `row[c]` reads column c's arena at the row's
/// index. Cheap to copy; invalidated by any mutation of the owning relation
/// (AddRow/AppendRows/Reserve/Canonicalize).
class RowRef {
 public:
  RowRef(const Relation* rel, int64_t row) : rel_(rel), row_(row) {}

  inline Value operator[](int i) const;
  inline int size() const;

  /// Row-major materialization of the tuple (gathers every column).
  inline std::vector<Value> ToVector() const;

  /// Value iteration (`for (Value v : row)`) over the gathered tuple.
  class const_iterator {
   public:
    const_iterator(const Relation* rel, int64_t row, int col)
        : rel_(rel), row_(row), col_(col) {}
    inline Value operator*() const;
    const_iterator& operator++() {
      ++col_;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return col_ == o.col_; }
    bool operator!=(const const_iterator& o) const { return col_ != o.col_; }

   private:
    const Relation* rel_;
    int64_t row_;
    int col_;
  };
  const_iterator begin() const { return const_iterator(rel_, row_, 0); }
  inline const_iterator end() const;

  friend bool operator==(const RowRef& a, const RowRef& b) {
    if (a.size() != b.size()) return false;
    for (int i = 0; i < a.size(); ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }
  friend bool operator!=(const RowRef& a, const RowRef& b) { return !(a == b); }
  friend bool operator<(const RowRef& a, const RowRef& b) {
    const int n = std::min(a.size(), b.size());
    for (int i = 0; i < n; ++i) {
      if (a[i] != b[i]) return a[i] < b[i];
    }
    return a.size() < b.size();
  }

 private:
  const Relation* rel_;
  int64_t row_;
};

/// A relation state: a set of tuples over a relation schema.
///
/// Storage is hybrid column-major: one contiguous `std::vector<Value>` arena
/// per attribute, all sharing a single row-count spine (`NumRows()`), so the
/// hash kernels in ops.cc stream whole key columns as flat `int64_t*` arrays
/// instead of striding over full tuples. Rows are viewed through RowRef
/// cursors (gather-on-demand) or assembled column-by-column via ColData().
///
/// Tuples are aligned with Attrs() (the schema's attributes in increasing id
/// order); column c of the storage is attribute Attrs()[c]. Relations are
/// logically sets; canonicalization (sort + dedupe) is *lazy*: mutations set
/// a dirty flag, and Canonicalize() runs only when set semantics are needed
/// — EqualsAsSet() canonicalizes both sides on demand. Physical row order is
/// therefore unspecified until Canonicalize() has run. The algebra operators
/// in ops.h always return duplicate-free (but not necessarily sorted)
/// relations, so NumRows() on their results is a set cardinality; after
/// hand-built AddRow sequences call Canonicalize() before relying on
/// NumRows() or row order.
class Relation {
 public:
  /// Creates an empty relation over `schema`.
  explicit Relation(const AttrSet& schema)
      : schema_(schema),
        attrs_(schema.ToVector()),
        cols_(attrs_.size()),
        zone_min_(attrs_.size()),
        zone_max_(attrs_.size()) {}

  Relation(const Relation&) = default;
  Relation& operator=(const Relation&) = default;
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  const AttrSet& Schema() const { return schema_; }
  const std::vector<AttrId>& Attrs() const { return attrs_; }
  int Arity() const { return static_cast<int>(cols_.size()); }
  /// Number of stored rows. 64-bit: generated states can exceed int range.
  int64_t NumRows() const { return num_rows_; }
  bool Empty() const { return num_rows_ == 0; }

  /// Pre-allocates arena capacity for `rows` additional rows in every
  /// column.
  void Reserve(int64_t rows) {
    GYO_DCHECK(rows >= 0);
    for (std::vector<Value>& col : cols_) {
      col.reserve(col.size() + static_cast<size_t>(rows));
    }
  }

  /// Appends `rows` uninitialized rows to every column and returns the index
  /// of the first new row. Callers then write the new range in place through
  /// ColData() — the parallel kernels compact per-morsel outputs into
  /// disjoint row ranges of the new block concurrently, one column at a
  /// time. Column pointers are invalidated like any other mutation.
  int64_t AppendRows(int64_t rows) {
    GYO_DCHECK(rows >= 0);
    for (std::vector<Value>& col : cols_) {
      col.resize(col.size() + static_cast<size_t>(rows));
    }
    const int64_t first = num_rows_;
    num_rows_ += rows;
    if (rows > 0) {
      canonical_ = false;
      // The new rows are written through ColData() behind the relation's
      // back, so the zone maps cannot track them; Canonicalize() rebuilds.
      zones_valid_ = false;
    }
    return first;
  }

  /// Appends a copy of the `Arity()` row-major values starting at `src`,
  /// scattering them into the column arenas.
  void AddRow(const Value* src, size_t n) {
    GYO_CHECK_MSG(n == cols_.size(), "row arity mismatch: got %zu, want %d", n,
                  Arity());
    for (size_t c = 0; c < cols_.size(); ++c) {
      // Copy before push_back: `src` may alias this relation's own arenas.
      const Value v = src[c];
      cols_[c].push_back(v);
      if (zones_valid_) {
        if (num_rows_ == 0) {
          zone_min_[c] = zone_max_[c] = v;
        } else {
          zone_min_[c] = std::min(zone_min_[c], v);
          zone_max_[c] = std::max(zone_max_[c], v);
        }
      }
    }
    ++num_rows_;
    canonical_ = false;
  }

  /// Appends a tuple; `row` must have Arity() values aligned with Attrs().
  void AddRow(std::initializer_list<Value> row) {
    AddRow(row.begin(), row.size());
  }
  void AddRow(const std::vector<Value>& row) { AddRow(row.data(), row.size()); }

  /// Gather view of row `i`. Invalidated by mutation of this relation.
  RowRef Row(int64_t i) const {
    GYO_DCHECK(i >= 0 && i < num_rows_);
    return RowRef(this, i);
  }

  /// Column `c`'s arena: NumRows() contiguous values of attribute
  /// Attrs()[c]. The flat array the vectorized kernels hash and gather
  /// over. Invalidated by mutation of this relation.
  const Value* ColData(int c) const {
    GYO_DCHECK(c >= 0 && static_cast<size_t>(c) < cols_.size());
    return cols_[static_cast<size_t>(c)].data();
  }
  Value* ColData(int c) {
    GYO_DCHECK(c >= 0 && static_cast<size_t>(c) < cols_.size());
    return cols_[static_cast<size_t>(c)].data();
  }

  /// Single-cell read: column `c` of row `i`.
  Value Cell(int64_t i, int c) const {
    GYO_DCHECK(i >= 0 && i < num_rows_);
    return ColData(c)[i];
  }

  /// Iterable range of RowRef views over all rows.
  class RowIterator {
   public:
    RowIterator(const Relation* rel, int64_t i) : rel_(rel), i_(i) {}
    RowRef operator*() const { return RowRef(rel_, i_); }
    RowIterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const RowIterator& o) const { return i_ == o.i_; }
    bool operator!=(const RowIterator& o) const { return i_ != o.i_; }

   private:
    const Relation* rel_;
    int64_t i_;
  };
  class RowRange {
   public:
    RowRange(const Relation* rel, int64_t n) : rel_(rel), n_(n) {}
    RowIterator begin() const { return RowIterator(rel_, 0); }
    RowIterator end() const { return RowIterator(rel_, n_); }

   private:
    const Relation* rel_;
    int64_t n_;
  };
  RowRange Rows() const { return RowRange(this, num_rows_); }

  /// Total bytes of tuple data across all column arenas
  /// (NumRows() * Arity() * sizeof(Value)) — the state-retirement
  /// byte-accounting unit.
  int64_t ArenaBytes() const {
    return num_rows_ * static_cast<int64_t>(cols_.size()) *
           static_cast<int64_t>(sizeof(Value));
  }

  /// The column index of `attr` within rows; dies if absent.
  int ColIndex(AttrId attr) const;

  /// Value of `attr` in row `i`.
  Value At(int64_t i, AttrId attr) const { return Cell(i, ColIndex(attr)); }

  /// Sorts rows and removes duplicates (set semantics). Idempotent; a no-op
  /// when the relation is already canonical. Also rebuilds the per-column
  /// zone maps when they were invalidated by AppendRows().
  void Canonicalize();

  /// Per-column min/max zone map. Returns true and fills [*min, *max] with
  /// column `c`'s value range when the zones are current (maintained
  /// incrementally by AddRow, rebuilt by Canonicalize) and the relation is
  /// non-empty; false when unknown (after AppendRows, before the next
  /// Canonicalize) — callers must treat false as "any range possible".
  /// Semijoin uses disjoint key ranges to skip whole probe passes.
  bool ZoneRange(int c, Value* min, Value* max) const {
    GYO_DCHECK(c >= 0 && static_cast<size_t>(c) < cols_.size());
    if (!zones_valid_ || num_rows_ == 0) return false;
    *min = zone_min_[static_cast<size_t>(c)];
    *max = zone_max_[static_cast<size_t>(c)];
    return true;
  }

  /// True when rows are known to be sorted and duplicate-free.
  bool IsCanonical() const { return canonical_; }

  /// Asserts (cheaply in release, with a full scan in debug builds) that the
  /// rows are already sorted and duplicate-free. Operators use this to pass
  /// canonical form through without re-sorting (e.g. a semijoin of a
  /// canonical relation selects a subsequence, which stays canonical).
  void MarkCanonical() {
    GYO_DCHECK(CheckCanonical());
    canonical_ = true;
  }

  /// Set equality; both sides must have the same schema. Canonicalizes both
  /// sides on demand (which reorders rows — logically const under set
  /// semantics, hence allowed on const relations).
  bool EqualsAsSet(const Relation& other) const;

  /// Physical equality: same schema, same row count, same values in the
  /// same physical row order, same canonical flag. This is the
  /// deterministic-mode bit-identity check the parallel-vs-serial property
  /// tests pin (EqualsAsSet, by contrast, canonicalizes away row order).
  bool IdenticalTo(const Relation& other) const {
    return schema_ == other.schema_ && num_rows_ == other.num_rows_ &&
           canonical_ == other.canonical_ && cols_ == other.cols_;
  }

  /// Renders a small relation for debugging.
  std::string Format(const Catalog& catalog, int max_rows = 20) const;

 private:
  bool CheckCanonical() const;
  void EnsureCanonical() const;
  // Lexicographic compare / equality of rows `a` and `b` across columns.
  bool RowLess(int64_t a, int64_t b) const;
  bool RowEq(int64_t a, int64_t b) const;

  void RecomputeZones() const;

  AttrSet schema_;
  std::vector<AttrId> attrs_;
  // `mutable`: EqualsAsSet() canonicalizes lazily on const relations; under
  // set semantics a sort + dedupe does not change the logical value.
  mutable std::vector<std::vector<Value>> cols_;
  mutable int64_t num_rows_ = 0;
  mutable bool canonical_ = true;
  // Per-column min/max zone maps (see ZoneRange). Deliberately excluded
  // from IdenticalTo: they are derived metadata, not logical value, and
  // whether they are current depends on the construction path.
  mutable std::vector<Value> zone_min_;
  mutable std::vector<Value> zone_max_;
  mutable bool zones_valid_ = true;
};

inline Value RowRef::operator[](int i) const { return rel_->Cell(row_, i); }
inline int RowRef::size() const { return rel_->Arity(); }
inline std::vector<Value> RowRef::ToVector() const {
  std::vector<Value> out;
  out.reserve(static_cast<size_t>(size()));
  for (int i = 0; i < size(); ++i) out.push_back((*this)[i]);
  return out;
}
inline Value RowRef::const_iterator::operator*() const {
  return rel_->Cell(row_, col_);
}
inline RowRef::const_iterator RowRef::end() const {
  return const_iterator(rel_, row_, size());
}

inline bool operator==(const RowRef& a, const std::vector<Value>& b) {
  if (static_cast<size_t>(a.size()) != b.size()) return false;
  for (int i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}
inline bool operator==(const std::vector<Value>& a, const RowRef& b) {
  return b == a;
}

}  // namespace gyo

#endif  // GYO_REL_RELATION_H_
