#ifndef GYO_REL_RELATION_H_
#define GYO_REL_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "schema/catalog.h"
#include "util/attr_set.h"

namespace gyo {

/// Attribute value. A single integer domain suffices for every experiment in
/// the paper (the theory is domain-agnostic).
using Value = int64_t;

/// A relation state: a set of tuples over a relation schema.
///
/// Tuples are stored as value vectors aligned with Attrs() (the schema's
/// attributes in increasing id order). Relations compare as sets — call
/// Canonicalize() (sort + dedupe) before comparing or after bulk inserts;
/// the algebra operators in ops.h return canonicalized relations.
class Relation {
 public:
  /// Creates an empty relation over `schema`.
  explicit Relation(const AttrSet& schema)
      : schema_(schema), attrs_(schema.ToVector()) {}

  Relation(const Relation&) = default;
  Relation& operator=(const Relation&) = default;
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  const AttrSet& Schema() const { return schema_; }
  const std::vector<AttrId>& Attrs() const { return attrs_; }
  int Arity() const { return static_cast<int>(attrs_.size()); }
  int NumRows() const { return static_cast<int>(rows_.size()); }
  bool Empty() const { return rows_.empty(); }

  /// Appends a tuple; `row` must have Arity() values aligned with Attrs().
  void AddRow(std::vector<Value> row);

  const std::vector<Value>& Row(int i) const {
    return rows_[static_cast<size_t>(i)];
  }
  const std::vector<std::vector<Value>>& Rows() const { return rows_; }

  /// The column index of `attr` within rows; dies if absent.
  int ColIndex(AttrId attr) const;

  /// Value of `attr` in row `i`.
  Value At(int i, AttrId attr) const {
    return rows_[static_cast<size_t>(i)][static_cast<size_t>(ColIndex(attr))];
  }

  /// Sorts rows and removes duplicates (set semantics).
  void Canonicalize();

  /// Set equality; both sides must have the same schema and be canonicalized
  /// (dies otherwise in debug builds).
  bool EqualsAsSet(const Relation& other) const;

  /// Renders a small relation for debugging.
  std::string Format(const Catalog& catalog, int max_rows = 20) const;

 private:
  AttrSet schema_;
  std::vector<AttrId> attrs_;
  std::vector<std::vector<Value>> rows_;
};

}  // namespace gyo

#endif  // GYO_REL_RELATION_H_
