#ifndef GYO_REL_RELATION_H_
#define GYO_REL_RELATION_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "schema/catalog.h"
#include "util/attr_set.h"
#include "util/check.h"

namespace gyo {

/// Attribute value. A single integer domain suffices for every experiment in
/// the paper (the theory is domain-agnostic).
using Value = int64_t;

/// A non-owning view of one tuple inside a Relation's arena: a pointer into
/// the flat value array plus the arity. Cheap to copy; invalidated by any
/// mutation of the owning relation (AddRow/Reserve/Canonicalize).
class RowRef {
 public:
  RowRef(const Value* data, int arity) : data_(data), arity_(arity) {}

  Value operator[](int i) const {
    GYO_DCHECK(i >= 0 && i < arity_);
    return data_[i];
  }
  int size() const { return arity_; }
  const Value* data() const { return data_; }
  const Value* begin() const { return data_; }
  const Value* end() const { return data_ + arity_; }

  std::vector<Value> ToVector() const {
    return std::vector<Value>(data_, data_ + arity_);
  }

  friend bool operator==(const RowRef& a, const RowRef& b) {
    return a.arity_ == b.arity_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator!=(const RowRef& a, const RowRef& b) { return !(a == b); }
  friend bool operator<(const RowRef& a, const RowRef& b) {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                        b.end());
  }

 private:
  const Value* data_;
  int arity_;
};

inline bool operator==(const RowRef& a, const std::vector<Value>& b) {
  return static_cast<size_t>(a.size()) == b.size() &&
         std::equal(a.begin(), a.end(), b.begin());
}
inline bool operator==(const std::vector<Value>& a, const RowRef& b) {
  return b == a;
}

/// A relation state: a set of tuples over a relation schema.
///
/// Storage is a single flat arena: one contiguous `std::vector<Value>` holding
/// all tuples back to back, with arity-stride row access. Rows are viewed
/// through RowRef (see above) or raw `const Value*` cursors (RowData), never
/// materialized as separate vectors.
///
/// Tuples are aligned with Attrs() (the schema's attributes in increasing id
/// order). Relations are logically sets; canonicalization (sort + dedupe) is
/// *lazy*: mutations set a dirty flag, and Canonicalize() runs only when set
/// semantics are needed — EqualsAsSet() canonicalizes both sides on demand.
/// Physical row order is therefore unspecified until Canonicalize() has run.
/// The algebra operators in ops.h always return duplicate-free (but not
/// necessarily sorted) relations, so NumRows() on their results is a set
/// cardinality; after hand-built AddRow sequences call Canonicalize() before
/// relying on NumRows() or row order.
class Relation {
 public:
  /// Creates an empty relation over `schema`.
  explicit Relation(const AttrSet& schema)
      : schema_(schema),
        attrs_(schema.ToVector()),
        stride_(attrs_.size()) {}

  Relation(const Relation&) = default;
  Relation& operator=(const Relation&) = default;
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  const AttrSet& Schema() const { return schema_; }
  const std::vector<AttrId>& Attrs() const { return attrs_; }
  int Arity() const { return static_cast<int>(stride_); }
  /// Number of stored rows. 64-bit: generated states can exceed int range.
  int64_t NumRows() const { return num_rows_; }
  bool Empty() const { return num_rows_ == 0; }

  /// Pre-allocates arena capacity for `rows` additional rows.
  void Reserve(int64_t rows) {
    GYO_DCHECK(rows >= 0);
    data_.reserve(data_.size() + static_cast<size_t>(rows) * stride_);
  }

  /// Appends an uninitialized row and returns a pointer to its Arity() slots
  /// for in-place writing. The pointer is invalidated by the next mutation.
  Value* AppendRow() {
    data_.resize(data_.size() + stride_);
    ++num_rows_;
    canonical_ = false;
    return data_.data() + data_.size() - stride_;
  }

  /// Appends `rows` uninitialized rows and returns a pointer to the first of
  /// their rows*Arity() slots, for bulk in-place writing (the parallel
  /// kernels compact per-morsel buffers into disjoint ranges of this block
  /// concurrently). Invalidated like AppendRow. Only dereference the result
  /// when rows*Arity() > 0.
  Value* AppendRows(int64_t rows) {
    GYO_DCHECK(rows >= 0);
    const size_t added = static_cast<size_t>(rows) * stride_;
    data_.resize(data_.size() + added);
    num_rows_ += rows;
    if (rows > 0) canonical_ = false;
    return data_.data() + data_.size() - added;
  }

  /// Appends a copy of the `Arity()` values starting at `src`. `src` may
  /// point into this relation's own arena (e.g. re-appending one of its own
  /// rows): the offset is captured before AppendRow() can reallocate.
  void AddRow(const Value* src, size_t n) {
    GYO_CHECK_MSG(n == stride_, "row arity mismatch: got %zu, want %d", n,
                  Arity());
    const Value* base = data_.data();
    const bool aliases =
        src >= base && src + stride_ <= base + data_.size();
    const size_t src_off = aliases ? static_cast<size_t>(src - base) : 0;
    Value* dst = AppendRow();
    if (aliases) src = data_.data() + src_off;
    for (size_t k = 0; k < stride_; ++k) dst[k] = src[k];
  }

  /// Appends a tuple; `row` must have Arity() values aligned with Attrs().
  void AddRow(std::initializer_list<Value> row) {
    AddRow(row.begin(), row.size());
  }
  void AddRow(const std::vector<Value>& row) { AddRow(row.data(), row.size()); }

  /// View of row `i`. Invalidated by mutation of this relation.
  RowRef Row(int64_t i) const { return RowRef(RowData(i), Arity()); }

  /// Cursor to the first value of row `i` (the row occupies Arity()
  /// consecutive slots). Invalidated by mutation of this relation.
  const Value* RowData(int64_t i) const {
    GYO_DCHECK(i >= 0 && i < num_rows_);
    return data_.data() + static_cast<size_t>(i) * stride_;
  }

  /// Iterable range of RowRef views over all rows.
  class RowIterator {
   public:
    RowIterator(const Value* base, size_t stride, int64_t i)
        : base_(base), stride_(stride), i_(i) {}
    RowRef operator*() const {
      return RowRef(base_ + static_cast<size_t>(i_) * stride_,
                    static_cast<int>(stride_));
    }
    RowIterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const RowIterator& o) const { return i_ == o.i_; }
    bool operator!=(const RowIterator& o) const { return i_ != o.i_; }

   private:
    const Value* base_;
    size_t stride_;
    int64_t i_;
  };
  class RowRange {
   public:
    RowRange(const Value* base, size_t stride, int64_t n)
        : base_(base), stride_(stride), n_(n) {}
    RowIterator begin() const { return RowIterator(base_, stride_, 0); }
    RowIterator end() const { return RowIterator(base_, stride_, n_); }

   private:
    const Value* base_;
    size_t stride_;
    int64_t n_;
  };
  RowRange Rows() const { return RowRange(data_.data(), stride_, num_rows_); }

  /// The raw arena: NumRows()*Arity() values, rows back to back.
  const std::vector<Value>& Arena() const { return data_; }

  /// The column index of `attr` within rows; dies if absent.
  int ColIndex(AttrId attr) const;

  /// Value of `attr` in row `i`.
  Value At(int64_t i, AttrId attr) const {
    return RowData(i)[ColIndex(attr)];
  }

  /// Sorts rows and removes duplicates (set semantics). Idempotent; a no-op
  /// when the relation is already canonical.
  void Canonicalize();

  /// True when rows are known to be sorted and duplicate-free.
  bool IsCanonical() const { return canonical_; }

  /// Asserts (cheaply in release, with a full scan in debug builds) that the
  /// rows are already sorted and duplicate-free. Operators use this to pass
  /// canonical form through without re-sorting (e.g. a semijoin of a
  /// canonical relation selects a subsequence, which stays canonical).
  void MarkCanonical() {
    GYO_DCHECK(CheckCanonical());
    canonical_ = true;
  }

  /// Set equality; both sides must have the same schema. Canonicalizes both
  /// sides on demand (which reorders rows — logically const under set
  /// semantics, hence allowed on const relations).
  bool EqualsAsSet(const Relation& other) const;

  /// Renders a small relation for debugging.
  std::string Format(const Catalog& catalog, int max_rows = 20) const;

 private:
  bool CheckCanonical() const;
  void EnsureCanonical() const;

  AttrSet schema_;
  std::vector<AttrId> attrs_;
  size_t stride_ = 0;
  // `mutable`: EqualsAsSet() canonicalizes lazily on const relations; under
  // set semantics a sort + dedupe does not change the logical value.
  mutable std::vector<Value> data_;
  mutable int64_t num_rows_ = 0;
  mutable bool canonical_ = true;
};

}  // namespace gyo

#endif  // GYO_REL_RELATION_H_
