#ifndef GYO_REL_PROGRAM_H_
#define GYO_REL_PROGRAM_H_

#include <string>
#include <vector>

#include "rel/relation.h"
#include "schema/schema.h"
#include "util/attr_set.h"
#include "util/rng.h"

namespace gyo {

/// Join/semijoin/project programs (paper §6). A program is a finite sequence
/// of statements; each statement creates a new relation from existing ones.
/// Relations are numbered 0..num_base-1 for the database relations, with each
/// statement's result appended after them. A program *solves* (D, X) if its
/// last statement produces π_X(⋈ D) on every UR database for D.
class Program {
 public:
  struct Statement {
    enum class Kind { kJoin, kSemijoin, kProject };
    Kind kind;
    int lhs = -1;          // input relation id
    int rhs = -1;          // second input (join/semijoin)
    AttrSet target;        // projection target (project only)
  };

  /// A program over `num_base` database relations.
  explicit Program(int num_base) : num_base_(num_base) {}

  /// Appends Rk := lhs ⋈ rhs; returns k.
  int AddJoin(int lhs, int rhs);
  /// Appends Rk := lhs ⋉ rhs; returns k.
  int AddSemijoin(int lhs, int rhs);
  /// Appends Rk := π_target(src); returns k.
  int AddProject(int src, const AttrSet& target);

  int num_base() const { return num_base_; }
  int NumStatements() const { return static_cast<int>(statements_.size()); }
  /// Total relations: base + created.
  int NumRelations() const { return num_base_ + NumStatements(); }
  const std::vector<Statement>& Statements() const { return statements_; }

  int NumJoins() const;
  int NumSemijoins() const;
  int NumProjects() const;

  /// P(D): the schemas of all NumRelations() relations (base schemas followed
  /// by the created ones: join = union, semijoin = lhs schema,
  /// project = target). Dies if a statement is ill-formed for `base`
  /// (e.g. projecting attributes a source lacks).
  DatabaseSchema DerivedSchema(const DatabaseSchema& base) const;

  /// Eagerly validates every statement against `base_schemas` (the schemas
  /// of the base relations, in order): relation ids must be in range and a
  /// projection target must be a subset of its source schema. Dies with an
  /// error naming the offending statement index otherwise. Returns the full
  /// derived schema list — base schemas followed by one per statement (the
  /// sequence DerivedSchema wraps in a DatabaseSchema). Both DerivedSchema
  /// and the execution paths run this before touching any data, so a
  /// malformed program fails up front instead of dying mid-execution.
  std::vector<AttrSet> ValidateAndDeriveSchemas(
      std::vector<AttrSet> base_schemas) const;

  /// P(D): executes the program, returning all relation states (base states
  /// followed by created ones). The result of the program is the last state.
  /// This is the serial (threads = 1) specialization of the exec runtime —
  /// see exec/physical_plan.h for the parallel entry points.
  std::vector<Relation> Execute(const std::vector<Relation>& base) const;

  /// Machine-independent execution cost metrics (§4/§6: the point of
  /// CC-pruning and semijoin programs is bounding intermediate results).
  struct Stats {
    /// Rows of the largest relation created by any statement.
    int64_t max_intermediate_rows = 0;
    /// Total rows across all created relations.
    int64_t total_rows_produced = 0;
    /// Rows of the final statement's result.
    int64_t result_rows = 0;
  };

  /// Executes and also reports size statistics of the created relations.
  std::vector<Relation> ExecuteWithStats(const std::vector<Relation>& base,
                                         Stats* stats) const;

  /// Executes and returns just the final relation. The program must have at
  /// least one statement.
  Relation Run(const std::vector<Relation>& base) const;

  /// Renders statements like "R6 := R0 ⋈ R1".
  std::string Format(const Catalog& catalog) const;

 private:
  int num_base_;
  std::vector<Statement> statements_;
};

/// Empirically checks that `p` solves (D, X): over `trials` random UR
/// databases (varying row counts and domains), compares p's result with the
/// reference evaluator π_X(⋈ D). Returns false on the first mismatch.
bool SolvesQueryEmpirically(const Program& p, const DatabaseSchema& d,
                            const AttrSet& x, int trials, Rng& rng);

}  // namespace gyo

#endif  // GYO_REL_PROGRAM_H_
