#ifndef GYO_REL_UNIVERSAL_H_
#define GYO_REL_UNIVERSAL_H_

#include <vector>

#include "rel/relation.h"
#include "schema/schema.h"
#include "util/rng.h"

namespace gyo {

/// Universal-relation machinery (paper §2). A UR database for D is
/// D = {π_R(I) | R ∈ D} for some universal relation I. Every theorem of the
/// paper quantifies over such databases; these helpers generate random
/// instances for empirical validation (the "simulated substrate" of
/// EXPERIMENTS.md).

/// A uniformly random relation over `universe`: `num_rows` tuples with values
/// drawn from [0, domain). Small domains create many coincidences (joins
/// fire often); large domains approximate key-like data.
Relation RandomUniversal(const AttrSet& universe, int num_rows, int domain,
                         Rng& rng);

/// Independent random states for every relation of D: each state is a
/// canonical random relation over its schema (values below `domain`). Unlike
/// ProjectDatabase output these are generally NOT globally consistent — the
/// natural input for reducer experiments.
std::vector<Relation> RandomStates(const DatabaseSchema& d, int num_rows,
                                   int domain, Rng& rng);

/// The UR database state {π_R(I) | R ∈ D}.
std::vector<Relation> ProjectDatabase(const Relation& universal,
                                      const DatabaseSchema& d);

/// Reference evaluator for Q = (D, X): π_X(⋈ states). `states` must be
/// parallel to `d`.
Relation EvaluateJoinQuery(const DatabaseSchema& d, const AttrSet& x,
                           const std::vector<Relation>& states);

/// True iff I ⊨ ⋈D: π_U(D)(I) = ⋈_{R∈D} π_R(I) (an embedded join dependency
/// when U(D) ⊊ schema(I); paper §5.1).
bool JdHolds(const Relation& universal, const DatabaseSchema& d);

/// Generates a universal relation that satisfies ⋈D by construction: draws a
/// random I0 over U(D) and returns ⋈_{R∈D} π_R(I0) (the closure under the
/// join dependency). Used to test ⋈D ⊨ ⋈D' empirically.
Relation RandomModelOfJd(const DatabaseSchema& d, int num_rows, int domain,
                         Rng& rng);

}  // namespace gyo

#endif  // GYO_REL_UNIVERSAL_H_
