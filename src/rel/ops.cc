#include "rel/ops.h"

#include <cstring>
#include <vector>

#include "util/check.h"

namespace gyo {

namespace {

// Murmur3-style 64-bit finalizer. FNV-1a alone distributes small sequential
// integers (the common test/benchmark domain) badly in power-of-two bucket
// arrays; the avalanche step spreads every input bit over the whole word.
inline uint64_t AvalancheMix(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

// Hash of the `cols` slice of the row starting at `row` — FNV-1a over the
// selected values, finalized with AvalancheMix. No key materialization: the
// values are read in place from the relation's arena.
inline uint64_t HashSlice(const Value* row, const std::vector<int>& cols) {
  uint64_t h = 1469598103934665603ull;
  for (int c : cols) {
    h ^= static_cast<uint64_t>(row[c]);
    h *= 1099511628211ull;
  }
  return AvalancheMix(h);
}

// Compares the `a_cols` slice of row `a` with the `b_cols` slice of row `b`
// (the two sides may index different schemas; the col lists must be aligned
// on the same attributes).
inline bool SlicesEqual(const Value* a, const std::vector<int>& a_cols,
                        const Value* b, const std::vector<int>& b_cols) {
  for (size_t k = 0; k < a_cols.size(); ++k) {
    if (a[a_cols[k]] != b[b_cols[k]]) return false;
  }
  return true;
}

inline size_t NextPow2AtLeast(size_t n) {
  size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}

// A chained hash index from the `cols` key slices of `rel`'s rows to their
// row indices. Keys are never materialized: both build and probe hash/compare
// directly against the relations' arenas.
class SliceIndex {
 public:
  // An empty index sized for `expected_rows`; register rows with Add().
  // `rel` may gain rows after construction (entries are row indices, not
  // pointers), which is how Project dedupes against its growing output.
  SliceIndex(const Relation& rel, std::vector<int> cols, int64_t expected_rows)
      : rel_(rel), cols_(std::move(cols)) {
    const size_t buckets =
        NextPow2AtLeast(2 * static_cast<size_t>(expected_rows));
    mask_ = buckets - 1;
    heads_.assign(buckets, -1);
    entries_.reserve(static_cast<size_t>(expected_rows));
  }

  // An index over all current rows of `rel`.
  SliceIndex(const Relation& rel, std::vector<int> cols)
      : SliceIndex(rel, std::move(cols), rel.NumRows()) {
    for (int64_t i = 0; i < rel_.NumRows(); ++i) Add(i);
  }

  // Registers row `row` of the relation under its key slice.
  void Add(int64_t row) {
    uint64_t h = HashSlice(rel_.RowData(row), cols_);
    size_t b = static_cast<size_t>(h) & mask_;
    entries_.push_back(Entry{h, row, heads_[b]});
    heads_[b] = static_cast<int64_t>(entries_.size()) - 1;
  }

  // Invokes fn(row_index) for every indexed row whose key slice equals the
  // `probe_cols` slice of the row at `probe`.
  template <typename Fn>
  void ForEachMatch(const Value* probe, const std::vector<int>& probe_cols,
                    Fn&& fn) const {
    uint64_t h = HashSlice(probe, probe_cols);
    for (int64_t e = heads_[static_cast<size_t>(h) & mask_]; e >= 0;
         e = entries_[static_cast<size_t>(e)].next) {
      const Entry& entry = entries_[static_cast<size_t>(e)];
      if (entry.hash == h &&
          SlicesEqual(rel_.RowData(entry.row), cols_, probe, probe_cols)) {
        fn(entry.row);
      }
    }
  }

  // True iff some indexed row's key slice equals the probe slice.
  bool Contains(const Value* probe, const std::vector<int>& probe_cols) const {
    uint64_t h = HashSlice(probe, probe_cols);
    for (int64_t e = heads_[static_cast<size_t>(h) & mask_]; e >= 0;
         e = entries_[static_cast<size_t>(e)].next) {
      const Entry& entry = entries_[static_cast<size_t>(e)];
      if (entry.hash == h &&
          SlicesEqual(rel_.RowData(entry.row), cols_, probe, probe_cols)) {
        return true;
      }
    }
    return false;
  }

 private:
  struct Entry {
    uint64_t hash;
    int64_t row;
    int64_t next;  // previous entry in the same bucket, -1 at chain end
  };
  const Relation& rel_;
  std::vector<int> cols_;
  std::vector<int64_t> heads_;
  std::vector<Entry> entries_;
  size_t mask_;
};

}  // namespace

Relation Project(const Relation& r, const AttrSet& x) {
  GYO_CHECK_MSG(x.IsSubsetOf(r.Schema()), "projection target not in schema");
  Relation out(x);
  std::vector<int> cols;
  cols.reserve(static_cast<size_t>(out.Arity()));
  for (AttrId a : out.Attrs()) cols.push_back(r.ColIndex(a));
  // Output cols are 0..arity-1 in arena order, used to compare emitted rows
  // against candidate source slices.
  std::vector<int> out_cols;
  out_cols.reserve(cols.size());
  for (size_t k = 0; k < cols.size(); ++k) out_cols.push_back(static_cast<int>(k));

  const int64_t n = r.NumRows();
  if (out.Arity() == 0) {
    // π_∅: TRUE (one empty tuple) iff r is non-empty.
    if (n > 0) out.AppendRow();
    out.MarkCanonical();
    return out;
  }

  // Dedupe while emitting: an incremental SliceIndex over the rows already
  // written to the output arena. No sort — the result is duplicate-free but
  // left non-canonical (sortedness is lazy).
  SliceIndex seen(out, out_cols, n);
  out.Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    const Value* src = r.RowData(i);
    if (seen.Contains(src, cols)) continue;
    Value* dst = out.AppendRow();
    for (size_t k = 0; k < cols.size(); ++k) dst[k] = src[cols[k]];
    seen.Add(out.NumRows() - 1);
  }
  return out;
}

Relation NaturalJoin(const Relation& r, const Relation& s) {
  AttrSet common = r.Schema().Intersect(s.Schema());
  AttrSet result_schema = r.Schema().Union(s.Schema());
  Relation out(result_schema);

  std::vector<int> r_key_cols;
  std::vector<int> s_key_cols;
  common.ForEach([&](AttrId a) {
    r_key_cols.push_back(r.ColIndex(a));
    s_key_cols.push_back(s.ColIndex(a));
  });

  // Build on the smaller input.
  const Relation& build = s.NumRows() <= r.NumRows() ? s : r;
  const Relation& probe = s.NumRows() <= r.NumRows() ? r : s;
  const std::vector<int>& build_cols =
      (&build == &s) ? s_key_cols : r_key_cols;
  const std::vector<int>& probe_cols =
      (&build == &s) ? r_key_cols : s_key_cols;

  SliceIndex index(build, build_cols);

  // Output column sources: for each result attribute, where to read it from.
  struct Source {
    bool from_probe;
    int col;
  };
  std::vector<Source> sources;
  sources.reserve(static_cast<size_t>(out.Arity()));
  for (AttrId a : out.Attrs()) {
    if (probe.Schema().Contains(a)) {
      sources.push_back(Source{true, probe.ColIndex(a)});
    } else {
      sources.push_back(Source{false, build.ColIndex(a)});
    }
  }

  out.Reserve(probe.NumRows());
  for (int64_t i = 0; i < probe.NumRows(); ++i) {
    const Value* prow = probe.RowData(i);
    index.ForEachMatch(prow, probe_cols, [&](int64_t j) {
      const Value* brow = build.RowData(j);
      Value* dst = out.AppendRow();
      for (size_t k = 0; k < sources.size(); ++k) {
        dst[k] = sources[k].from_probe ? prow[sources[k].col]
                                       : brow[sources[k].col];
      }
    });
  }
  // Distinct (probe, build) row pairs yield distinct output tuples (the
  // output determines both inputs), so duplicate-free inputs give a
  // duplicate-free output; no dedupe or sort needed.
  return out;
}

Relation Semijoin(const Relation& r, const Relation& s) {
  AttrSet common = r.Schema().Intersect(s.Schema());
  Relation out(r.Schema());
  std::vector<int> r_cols;
  std::vector<int> s_cols;
  common.ForEach([&](AttrId a) {
    r_cols.push_back(r.ColIndex(a));
    s_cols.push_back(s.ColIndex(a));
  });

  SliceIndex index(s, s_cols);

  // Selection pass: record matching row indices, then compact in one sweep.
  std::vector<int64_t> selected;
  for (int64_t i = 0; i < r.NumRows(); ++i) {
    if (index.Contains(r.RowData(i), r_cols)) selected.push_back(i);
  }

  const size_t stride = static_cast<size_t>(r.Arity());
  out.Reserve(static_cast<int64_t>(selected.size()));
  for (int64_t i : selected) {
    if (stride == 0) {
      out.AppendRow();
      continue;
    }
    Value* dst = out.AppendRow();
    std::memcpy(dst, r.RowData(i), stride * sizeof(Value));
  }
  // A subsequence of a canonical relation is still sorted and unique.
  if (r.IsCanonical()) out.MarkCanonical();
  return out;
}

Relation JoinAll(const std::vector<Relation>& relations) {
  GYO_CHECK_MSG(!relations.empty(), "JoinAll requires at least one relation");
  Relation acc = relations[0];
  for (size_t i = 1; i < relations.size(); ++i) {
    acc = NaturalJoin(acc, relations[i]);
  }
  return acc;
}

}  // namespace gyo
