#include "rel/ops.h"

#include <unordered_map>
#include <vector>

#include "util/check.h"

namespace gyo {

namespace {

// FNV-1a hash for value vectors (join keys).
struct ValueVecHash {
  size_t operator()(const std::vector<Value>& v) const {
    uint64_t h = 1469598103934665603ull;
    for (Value x : v) {
      h ^= static_cast<uint64_t>(x);
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

// Extracts the values of `cols` (column indices) from `row`.
std::vector<Value> KeyOf(const std::vector<Value>& row,
                         const std::vector<int>& cols) {
  std::vector<Value> key;
  key.reserve(cols.size());
  for (int c : cols) key.push_back(row[static_cast<size_t>(c)]);
  return key;
}

}  // namespace

Relation Project(const Relation& r, const AttrSet& x) {
  GYO_CHECK_MSG(x.IsSubsetOf(r.Schema()), "projection target not in schema");
  Relation out(x);
  std::vector<int> cols;
  for (AttrId a : out.Attrs()) cols.push_back(r.ColIndex(a));
  for (const auto& row : r.Rows()) {
    out.AddRow(KeyOf(row, cols));
  }
  out.Canonicalize();
  return out;
}

Relation NaturalJoin(const Relation& r, const Relation& s) {
  AttrSet common = r.Schema().Intersect(s.Schema());
  AttrSet result_schema = r.Schema().Union(s.Schema());
  Relation out(result_schema);

  std::vector<int> r_key_cols;
  std::vector<int> s_key_cols;
  common.ForEach([&](AttrId a) {
    r_key_cols.push_back(r.ColIndex(a));
    s_key_cols.push_back(s.ColIndex(a));
  });

  // Build on the smaller input.
  const Relation& build = s.NumRows() <= r.NumRows() ? s : r;
  const Relation& probe = s.NumRows() <= r.NumRows() ? r : s;
  const std::vector<int>& build_cols =
      (&build == &s) ? s_key_cols : r_key_cols;
  const std::vector<int>& probe_cols =
      (&build == &s) ? r_key_cols : s_key_cols;

  std::unordered_map<std::vector<Value>, std::vector<int>, ValueVecHash> index;
  for (int i = 0; i < build.NumRows(); ++i) {
    index[KeyOf(build.Row(i), build_cols)].push_back(i);
  }

  // Output column sources: for each result attribute, where to read it from.
  struct Source {
    bool from_probe;
    int col;
  };
  std::vector<Source> sources;
  for (AttrId a : out.Attrs()) {
    if (probe.Schema().Contains(a)) {
      sources.push_back(Source{true, probe.ColIndex(a)});
    } else {
      sources.push_back(Source{false, build.ColIndex(a)});
    }
  }

  for (int i = 0; i < probe.NumRows(); ++i) {
    auto it = index.find(KeyOf(probe.Row(i), probe_cols));
    if (it == index.end()) continue;
    for (int j : it->second) {
      std::vector<Value> row;
      row.reserve(sources.size());
      for (const Source& src : sources) {
        row.push_back(src.from_probe ? probe.Row(i)[static_cast<size_t>(src.col)]
                                     : build.Row(j)[static_cast<size_t>(src.col)]);
      }
      out.AddRow(std::move(row));
    }
  }
  out.Canonicalize();
  return out;
}

Relation Semijoin(const Relation& r, const Relation& s) {
  AttrSet common = r.Schema().Intersect(s.Schema());
  Relation out(r.Schema());
  std::vector<int> r_cols;
  std::vector<int> s_cols;
  common.ForEach([&](AttrId a) {
    r_cols.push_back(r.ColIndex(a));
    s_cols.push_back(s.ColIndex(a));
  });
  std::unordered_map<std::vector<Value>, bool, ValueVecHash> keys;
  for (int i = 0; i < s.NumRows(); ++i) {
    keys[KeyOf(s.Row(i), s_cols)] = true;
  }
  for (int i = 0; i < r.NumRows(); ++i) {
    if (keys.count(KeyOf(r.Row(i), r_cols)) != 0) {
      out.AddRow(r.Row(i));
    }
  }
  out.Canonicalize();
  return out;
}

Relation JoinAll(const std::vector<Relation>& relations) {
  GYO_CHECK_MSG(!relations.empty(), "JoinAll requires at least one relation");
  Relation acc = relations[0];
  for (size_t i = 1; i < relations.size(); ++i) {
    acc = NaturalJoin(acc, relations[i]);
  }
  return acc;
}

}  // namespace gyo
