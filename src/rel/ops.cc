#include "rel/ops.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <vector>

#include "exec/task_scheduler.h"
#include "util/check.h"

namespace gyo {

namespace {

// Murmur3-style 64-bit finalizer. FNV-1a alone distributes small sequential
// integers (the common test/benchmark domain) badly in power-of-two bucket
// arrays; the avalanche step spreads every input bit over the whole word.
inline uint64_t AvalancheMix(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

// Hash of the `cols` slice of the row starting at `row` — FNV-1a over the
// selected values, finalized with AvalancheMix. No key materialization: the
// values are read in place from the relation's arena.
inline uint64_t HashSlice(const Value* row, const std::vector<int>& cols) {
  uint64_t h = 1469598103934665603ull;
  for (int c : cols) {
    h ^= static_cast<uint64_t>(row[c]);
    h *= 1099511628211ull;
  }
  return AvalancheMix(h);
}

// Compares the `a_cols` slice of row `a` with the `b_cols` slice of row `b`
// (the two sides may index different schemas; the col lists must be aligned
// on the same attributes).
inline bool SlicesEqual(const Value* a, const std::vector<int>& a_cols,
                        const Value* b, const std::vector<int>& b_cols) {
  for (size_t k = 0; k < a_cols.size(); ++k) {
    if (a[a_cols[k]] != b[b_cols[k]]) return false;
  }
  return true;
}

inline size_t NextPow2AtLeast(size_t n) {
  size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}

// A chained hash index from the `cols` key slices of `rel`'s rows to their
// row indices. Keys are never materialized: both build and probe hash/compare
// directly against the relations' arenas.
class SliceIndex {
 public:
  // An empty index sized for `expected_rows`; register rows with Add().
  // `rel` may gain rows after construction (entries are row indices, not
  // pointers), which is how Project dedupes against its growing output.
  SliceIndex(const Relation& rel, std::vector<int> cols, int64_t expected_rows)
      : rel_(rel), cols_(std::move(cols)) {
    const size_t buckets =
        NextPow2AtLeast(2 * static_cast<size_t>(expected_rows));
    mask_ = buckets - 1;
    heads_.assign(buckets, -1);
    entries_.reserve(static_cast<size_t>(expected_rows));
  }

  // An index over all current rows of `rel`.
  SliceIndex(const Relation& rel, std::vector<int> cols)
      : SliceIndex(rel, std::move(cols), rel.NumRows()) {
    for (int64_t i = 0; i < rel_.NumRows(); ++i) Add(i);
  }

  // Registers row `row` of the relation under its key slice.
  void Add(int64_t row) { Add(row, HashSlice(rel_.RowData(row), cols_)); }

  // Same, with the row's key hash already computed (the partitioned build
  // path hashes every row once up front and reuses the values here).
  void Add(int64_t row, uint64_t hash) {
    size_t b = static_cast<size_t>(hash) & mask_;
    entries_.push_back(Entry{hash, row, heads_[b]});
    heads_[b] = static_cast<int64_t>(entries_.size()) - 1;
  }

  // Invokes fn(row_index) for every indexed row whose key slice equals the
  // `probe_cols` slice of the row at `probe`.
  template <typename Fn>
  void ForEachMatch(const Value* probe, const std::vector<int>& probe_cols,
                    Fn&& fn) const {
    ForEachMatchHashed(probe, probe_cols, HashSlice(probe, probe_cols),
                       static_cast<Fn&&>(fn));
  }

  template <typename Fn>
  void ForEachMatchHashed(const Value* probe,
                          const std::vector<int>& probe_cols, uint64_t h,
                          Fn&& fn) const {
    for (int64_t e = heads_[static_cast<size_t>(h) & mask_]; e >= 0;
         e = entries_[static_cast<size_t>(e)].next) {
      const Entry& entry = entries_[static_cast<size_t>(e)];
      if (entry.hash == h &&
          SlicesEqual(rel_.RowData(entry.row), cols_, probe, probe_cols)) {
        fn(entry.row);
      }
    }
  }

  // True iff some indexed row's key slice equals the probe slice.
  bool Contains(const Value* probe, const std::vector<int>& probe_cols) const {
    return ContainsHashed(probe, probe_cols, HashSlice(probe, probe_cols));
  }

  bool ContainsHashed(const Value* probe, const std::vector<int>& probe_cols,
                      uint64_t h) const {
    for (int64_t e = heads_[static_cast<size_t>(h) & mask_]; e >= 0;
         e = entries_[static_cast<size_t>(e)].next) {
      const Entry& entry = entries_[static_cast<size_t>(e)];
      if (entry.hash == h &&
          SlicesEqual(rel_.RowData(entry.row), cols_, probe, probe_cols)) {
        return true;
      }
    }
    return false;
  }

 private:
  struct Entry {
    uint64_t hash;
    int64_t row;
    int64_t next;  // previous entry in the same bucket, -1 at chain end
  };
  const Relation& rel_;
  std::vector<int> cols_;
  std::vector<int64_t> heads_;
  std::vector<Entry> entries_;
  size_t mask_;
};

// ---------------------------------------------------------------------------
// Parallel kernel machinery (exec subsystem). The serial kernels below stay
// the single-morsel form; these helpers add hash-partitioned builds and
// morsel-driven probes when an OpExecOpts carries a multi-thread scheduler.

// Copies `opts` with morsel_rows resolved: the caller's explicit value, or
// the L2-targeting auto-tune for `probe_arity` when left at 0. Every kernel
// resolves once up front and threads the resolved options through.
inline OpExecOpts ResolveMorselRows(const OpExecOpts& opts, int probe_arity) {
  OpExecOpts resolved = opts;
  if (resolved.morsel_rows <= 0) {
    resolved.morsel_rows = AutoMorselRows(probe_arity);
  }
  return resolved;
}

// Feeds the per-query morsel counter (QueryStats::morsels) when one is
// attached.
inline void CountMorsels(const OpExecOpts& opts, int64_t n) {
  if (opts.morsel_counter != nullptr) {
    opts.morsel_counter->fetch_add(n, std::memory_order_relaxed);
  }
}

// True when the probe side is worth splitting into morsels. `opts` must be
// resolved (morsel_rows >= 1).
inline bool RunParallel(const OpExecOpts& opts, int64_t probe_rows) {
  return opts.scheduler != nullptr && opts.scheduler->threads() > 1 &&
         probe_rows > opts.morsel_rows && opts.morsel_rows >= 1;
}

inline int64_t NumMorsels(int64_t rows, int64_t morsel_rows) {
  return (rows + morsel_rows - 1) / morsel_rows;
}

// Radix scatter of `rel`'s row ids into 2^bits hash partitions, O(n) total:
//
//   1. counting pass (parallel over morsels): hash every row's `cols` slice
//      and tally a per-morsel × per-partition histogram — disjoint writes,
//      no locking;
//   2. prefix-sum layout (serial, morsels × parts entries): assign every
//      (morsel, partition) bucket a contiguous range of a partition-major
//      row-id array;
//   3. scatter pass (parallel over morsels): each morsel writes its row ids
//      into its own precomputed ranges — cache-friendly contiguous writes.
//
// Within each partition the buckets are laid out in morsel order, so a
// partition's slice lists its rows in increasing global row order — the
// exact order the old claim-by-scan build inserted them in, which keeps
// bucket-chain traversal (and thus deterministic-mode output) bit-identical.
// The row hashes are computed once here and reused by both the partition
// build and Project's partitioned dedupe.
struct RadixScatter {
  RadixScatter(const Relation& rel, const std::vector<int>& cols,
               const OpExecOpts& opts)
      : bits(PartitionBits(opts.scheduler->threads())) {
    const int64_t n = rel.NumRows();
    const int64_t parts = int64_t{1} << bits;
    const int64_t morsels = NumMorsels(n, opts.morsel_rows);
    CountMorsels(opts, 2 * morsels);  // the counting and scatter passes
    hashes.resize(static_cast<size_t>(n));
    std::vector<int64_t> counts(static_cast<size_t>(morsels * parts), 0);
    opts.scheduler->ParallelFor(morsels, [&](int64_t m) {
      const int64_t lo = m * opts.morsel_rows;
      const int64_t hi = std::min<int64_t>(n, lo + opts.morsel_rows);
      int64_t* mine = counts.data() + static_cast<size_t>(m * parts);
      for (int64_t i = lo; i < hi; ++i) {
        const uint64_t h = HashSlice(rel.RowData(i), cols);
        hashes[static_cast<size_t>(i)] = h;
        ++mine[PartitionOf(h, bits)];
      }
    });
    std::vector<int64_t> cursors(static_cast<size_t>(morsels * parts));
    part_begin.resize(static_cast<size_t>(parts) + 1);
    int64_t off = 0;
    for (int64_t p = 0; p < parts; ++p) {
      part_begin[static_cast<size_t>(p)] = off;
      for (int64_t m = 0; m < morsels; ++m) {
        cursors[static_cast<size_t>(m * parts + p)] = off;
        off += counts[static_cast<size_t>(m * parts + p)];
      }
    }
    part_begin[static_cast<size_t>(parts)] = off;
    row_ids.resize(static_cast<size_t>(n));
    opts.scheduler->ParallelFor(morsels, [&](int64_t m) {
      const int64_t lo = m * opts.morsel_rows;
      const int64_t hi = std::min<int64_t>(n, lo + opts.morsel_rows);
      int64_t* mine = cursors.data() + static_cast<size_t>(m * parts);
      for (int64_t i = lo; i < hi; ++i) {
        const size_t p = PartitionOf(hashes[static_cast<size_t>(i)], bits);
        row_ids[static_cast<size_t>(mine[p]++)] = i;
      }
    });
  }

  int num_partitions() const { return 1 << bits; }

  const int bits;
  std::vector<uint64_t> hashes;    // per row id, the `cols` slice hash
  std::vector<int64_t> row_ids;    // partition-major, row order within each
  std::vector<int64_t> part_begin; // partition p owns [begin[p], begin[p+1])
};

// A hash-partitioned SliceIndex over all rows of `rel`: a RadixScatter lays
// every row id into its partition's contiguous slice, then the partition
// indexes are built concurrently, each consuming only its own rows — build
// work stays O(n) regardless of the partition count (the old claim-by-scan
// build was parts × n).
class PartitionedSliceIndex {
 public:
  PartitionedSliceIndex(const Relation& rel, const std::vector<int>& cols,
                        const OpExecOpts& opts) {
    // Scatter state is local: the build finishes before the constructor
    // returns, so the ~16 bytes/row need not stay pinned through the probe.
    RadixScatter scatter(rel, cols, opts);
    bits_ = scatter.bits;
    const int parts = scatter.num_partitions();
    parts_.reserve(static_cast<size_t>(parts));
    for (int p = 0; p < parts; ++p) {
      parts_.emplace_back(
          rel, cols,
          scatter.part_begin[static_cast<size_t>(p) + 1] -
              scatter.part_begin[static_cast<size_t>(p)]);
    }
    opts.scheduler->ParallelFor(parts, [&](int64_t p) {
      SliceIndex& index = parts_[static_cast<size_t>(p)];
      const int64_t hi = scatter.part_begin[static_cast<size_t>(p) + 1];
      for (int64_t k = scatter.part_begin[static_cast<size_t>(p)]; k < hi;
           ++k) {
        const int64_t row = scatter.row_ids[static_cast<size_t>(k)];
        index.Add(row, scatter.hashes[static_cast<size_t>(row)]);
      }
    });
  }

  // The partition index responsible for probe-key hash `h`.
  const SliceIndex& ForHash(uint64_t h) const {
    return parts_[PartitionOf(h, bits_)];
  }

 private:
  int bits_;
  std::vector<SliceIndex> parts_;
};

// Prefix sums of per-chunk output sizes in merge order: offsets[pos] is the
// output row offset of the chunk at merge position pos, offsets.back() the
// total. Shared by the join/semijoin compaction passes so the two merge
// paths cannot diverge.
template <typename RowsOf>
std::vector<int64_t> MergeOffsets(const std::vector<int64_t>& order,
                                  RowsOf&& rows_of) {
  std::vector<int64_t> offsets(order.size() + 1, 0);
  for (size_t pos = 0; pos < order.size(); ++pos) {
    offsets[pos + 1] = offsets[pos] + rows_of(order[pos]);
  }
  return offsets;
}

// The order in which per-morsel outputs are compacted into the result arena:
// morsel order when `deterministic` (bit-identical to the serial kernel),
// completion order otherwise (same set, unspecified row order).
class MergeOrder {
 public:
  MergeOrder(int64_t chunks, bool deterministic)
      : deterministic_(deterministic) {
    if (deterministic_) {
      order_.resize(static_cast<size_t>(chunks));
      for (int64_t c = 0; c < chunks; ++c) order_[static_cast<size_t>(c)] = c;
    } else {
      order_.reserve(static_cast<size_t>(chunks));
    }
  }

  // Called by each morsel as it finishes.
  void Record(int64_t chunk) {
    if (deterministic_) return;
    std::lock_guard<std::mutex> lock(mu_);
    order_.push_back(chunk);
  }

  const std::vector<int64_t>& order() const { return order_; }

 private:
  bool deterministic_;
  std::mutex mu_;
  std::vector<int64_t> order_;
};

}  // namespace

Relation Project(const Relation& r, const AttrSet& x) {
  return Project(r, x, OpExecOpts());
}

Relation Project(const Relation& r, const AttrSet& x,
                 const OpExecOpts& caller_opts) {
  const OpExecOpts opts = ResolveMorselRows(caller_opts, r.Arity());
  GYO_CHECK_MSG(x.IsSubsetOf(r.Schema()), "projection target not in schema");
  Relation out(x);
  std::vector<int> cols;
  cols.reserve(static_cast<size_t>(out.Arity()));
  for (AttrId a : out.Attrs()) cols.push_back(r.ColIndex(a));
  // Output cols are 0..arity-1 in arena order, used to compare emitted rows
  // against candidate source slices.
  std::vector<int> out_cols;
  out_cols.reserve(cols.size());
  for (size_t k = 0; k < cols.size(); ++k) out_cols.push_back(static_cast<int>(k));

  const int64_t n = r.NumRows();
  if (out.Arity() == 0) {
    // π_∅: TRUE (one empty tuple) iff r is non-empty.
    if (n > 0) out.AppendRow();
    out.MarkCanonical();
    return out;
  }

  if (!RunParallel(opts, n)) {
    // Dedupe while emitting: an incremental SliceIndex over the rows already
    // written to the output arena. No sort — the result is duplicate-free
    // but left non-canonical (sortedness is lazy).
    SliceIndex seen(out, out_cols, n);
    out.Reserve(n);
    for (int64_t i = 0; i < n; ++i) {
      const Value* src = r.RowData(i);
      if (seen.Contains(src, cols)) continue;
      Value* dst = out.AppendRow();
      for (size_t k = 0; k < cols.size(); ++k) dst[k] = src[cols[k]];
      seen.Add(out.NumRows() - 1);
    }
    return out;
  }

  // Parallel form: a partitioned (by key hash) cross-morsel dedupe on the
  // radix-scatter structure — no sequential merge pass at all. All
  // duplicates of a key land in the same hash partition, and each
  // partition's row-id slice preserves global row order, so a
  // within-partition first occurrence IS the global first occurrence. The
  // partition tasks dedupe concurrently into a shared per-row survivor
  // bitmap (disjoint bytes — every row belongs to exactly one partition),
  // then a morsel-parallel compaction emits the survivors in row order:
  // always bit-identical to the serial kernel, deterministic mode or not.
  RadixScatter scatter(r, cols, opts);
  const int parts = scatter.num_partitions();
  std::vector<uint8_t> survives(static_cast<size_t>(n), 0);
  opts.scheduler->ParallelFor(parts, [&](int64_t p) {
    const int64_t lo = scatter.part_begin[static_cast<size_t>(p)];
    const int64_t hi = scatter.part_begin[static_cast<size_t>(p) + 1];
    SliceIndex seen(r, cols, hi - lo);
    for (int64_t k = lo; k < hi; ++k) {
      const int64_t i = scatter.row_ids[static_cast<size_t>(k)];
      const uint64_t h = scatter.hashes[static_cast<size_t>(i)];
      if (seen.ContainsHashed(r.RowData(i), cols, h)) continue;
      seen.Add(i, h);
      survives[static_cast<size_t>(i)] = 1;
    }
  });

  // Compaction: per-morsel survivor counts, prefix sum, then parallel
  // writes into disjoint ranges of the output arena, in row order. Two
  // morsel passes, counted like RadixScatter's.
  const int64_t chunks = NumMorsels(n, opts.morsel_rows);
  CountMorsels(opts, 2 * chunks);
  std::vector<int64_t> counts(static_cast<size_t>(chunks), 0);
  opts.scheduler->ParallelFor(chunks, [&](int64_t c) {
    const int64_t lo = c * opts.morsel_rows;
    const int64_t hi = std::min<int64_t>(n, lo + opts.morsel_rows);
    int64_t count = 0;
    for (int64_t i = lo; i < hi; ++i) count += survives[static_cast<size_t>(i)];
    counts[static_cast<size_t>(c)] = count;
  });
  std::vector<int64_t> offsets(static_cast<size_t>(chunks) + 1, 0);
  for (int64_t c = 0; c < chunks; ++c) {
    offsets[static_cast<size_t>(c) + 1] =
        offsets[static_cast<size_t>(c)] + counts[static_cast<size_t>(c)];
  }
  const size_t arity = cols.size();
  Value* base = out.AppendRows(offsets.back());
  opts.scheduler->ParallelFor(chunks, [&](int64_t c) {
    const int64_t lo = c * opts.morsel_rows;
    const int64_t hi = std::min<int64_t>(n, lo + opts.morsel_rows);
    Value* dst = base + static_cast<size_t>(offsets[static_cast<size_t>(c)]) *
                            arity;
    for (int64_t i = lo; i < hi; ++i) {
      if (!survives[static_cast<size_t>(i)]) continue;
      const Value* src = r.RowData(i);
      for (size_t k = 0; k < arity; ++k) dst[k] = src[cols[k]];
      dst += arity;
    }
  });
  return out;
}

Relation NaturalJoin(const Relation& r, const Relation& s) {
  return NaturalJoin(r, s, OpExecOpts());
}

Relation NaturalJoin(const Relation& r, const Relation& s,
                     const OpExecOpts& caller_opts) {
  // The probe side is the larger input (chosen below); auto-tune for the
  // wider of the two arities, the conservative cache-residency choice.
  const OpExecOpts opts =
      ResolveMorselRows(caller_opts, std::max(r.Arity(), s.Arity()));
  AttrSet common = r.Schema().Intersect(s.Schema());
  AttrSet result_schema = r.Schema().Union(s.Schema());
  Relation out(result_schema);

  std::vector<int> r_key_cols;
  std::vector<int> s_key_cols;
  common.ForEach([&](AttrId a) {
    r_key_cols.push_back(r.ColIndex(a));
    s_key_cols.push_back(s.ColIndex(a));
  });

  // Build on the smaller input.
  const Relation& build = s.NumRows() <= r.NumRows() ? s : r;
  const Relation& probe = s.NumRows() <= r.NumRows() ? r : s;
  const std::vector<int>& build_cols =
      (&build == &s) ? s_key_cols : r_key_cols;
  const std::vector<int>& probe_cols =
      (&build == &s) ? r_key_cols : s_key_cols;

  // Output column sources: for each result attribute, where to read it from.
  struct Source {
    bool from_probe;
    int col;
  };
  std::vector<Source> sources;
  sources.reserve(static_cast<size_t>(out.Arity()));
  for (AttrId a : out.Attrs()) {
    if (probe.Schema().Contains(a)) {
      sources.push_back(Source{true, probe.ColIndex(a)});
    } else {
      sources.push_back(Source{false, build.ColIndex(a)});
    }
  }
  const size_t arity = sources.size();

  // Distinct (probe, build) row pairs yield distinct output tuples (the
  // output determines both inputs), so duplicate-free inputs give a
  // duplicate-free output; no dedupe or sort is needed on either path.
  if (!RunParallel(opts, probe.NumRows())) {
    SliceIndex index(build, build_cols);
    out.Reserve(probe.NumRows());
    for (int64_t i = 0; i < probe.NumRows(); ++i) {
      const Value* prow = probe.RowData(i);
      index.ForEachMatch(prow, probe_cols, [&](int64_t j) {
        const Value* brow = build.RowData(j);
        Value* dst = out.AppendRow();
        for (size_t k = 0; k < arity; ++k) {
          dst[k] = sources[k].from_probe ? prow[sources[k].col]
                                         : brow[sources[k].col];
        }
      });
    }
    return out;
  }

  // Parallel form: partitioned hash build, then a morsel-driven probe where
  // every morsel emits into a thread-local buffer; the buffers are compacted
  // into the output arena with one (parallel) memcpy pass at the end.
  PartitionedSliceIndex index(build, build_cols, opts);
  const int64_t n = probe.NumRows();
  const int64_t chunks = NumMorsels(n, opts.morsel_rows);
  CountMorsels(opts, chunks);
  std::vector<std::vector<Value>> buffers(static_cast<size_t>(chunks));
  std::vector<int64_t> counts(static_cast<size_t>(chunks), 0);
  MergeOrder merge(chunks, opts.deterministic);
  opts.scheduler->ParallelFor(chunks, [&](int64_t c) {
    const int64_t lo = c * opts.morsel_rows;
    const int64_t hi = std::min<int64_t>(n, lo + opts.morsel_rows);
    std::vector<Value>& buf = buffers[static_cast<size_t>(c)];
    int64_t emitted = 0;
    for (int64_t i = lo; i < hi; ++i) {
      const Value* prow = probe.RowData(i);
      uint64_t h = HashSlice(prow, probe_cols);
      index.ForHash(h).ForEachMatchHashed(prow, probe_cols, h, [&](int64_t j) {
        const Value* brow = build.RowData(j);
        for (size_t k = 0; k < arity; ++k) {
          buf.push_back(sources[k].from_probe ? prow[sources[k].col]
                                              : brow[sources[k].col]);
        }
        ++emitted;
      });
    }
    counts[static_cast<size_t>(c)] = emitted;
    merge.Record(c);
  });

  std::vector<int64_t> offsets = MergeOffsets(
      merge.order(),
      [&](int64_t c) { return counts[static_cast<size_t>(c)]; });
  Value* base = out.AppendRows(offsets.back());
  if (arity > 0) {
    opts.scheduler->ParallelFor(chunks, [&](int64_t pos) {
      const std::vector<Value>& buf =
          buffers[static_cast<size_t>(merge.order()[static_cast<size_t>(pos)])];
      if (buf.empty()) return;
      std::memcpy(base + static_cast<size_t>(offsets[static_cast<size_t>(pos)]) * arity,
                  buf.data(), buf.size() * sizeof(Value));
    });
  }
  return out;
}

Relation Semijoin(const Relation& r, const Relation& s) {
  return Semijoin(r, s, OpExecOpts());
}

Relation Semijoin(const Relation& r, const Relation& s,
                  const OpExecOpts& caller_opts) {
  const OpExecOpts opts = ResolveMorselRows(caller_opts, r.Arity());
  AttrSet common = r.Schema().Intersect(s.Schema());
  Relation out(r.Schema());
  std::vector<int> r_cols;
  std::vector<int> s_cols;
  common.ForEach([&](AttrId a) {
    r_cols.push_back(r.ColIndex(a));
    s_cols.push_back(s.ColIndex(a));
  });
  const size_t stride = static_cast<size_t>(r.Arity());

  if (!RunParallel(opts, r.NumRows())) {
    SliceIndex index(s, s_cols);

    // Selection pass: record matching row indices, then compact in one sweep.
    std::vector<int64_t> selected;
    for (int64_t i = 0; i < r.NumRows(); ++i) {
      if (index.Contains(r.RowData(i), r_cols)) selected.push_back(i);
    }

    out.Reserve(static_cast<int64_t>(selected.size()));
    for (int64_t i : selected) {
      if (stride == 0) {
        out.AppendRow();
        continue;
      }
      Value* dst = out.AppendRow();
      std::memcpy(dst, r.RowData(i), stride * sizeof(Value));
    }
    // A subsequence of a canonical relation is still sorted and unique.
    if (r.IsCanonical()) out.MarkCanonical();
    return out;
  }

  // Parallel form: partitioned build over s, morsel-driven membership probes
  // over row ranges of r collecting per-morsel selection vectors, then one
  // parallel memcpy compaction into the output arena.
  PartitionedSliceIndex index(s, s_cols, opts);
  const int64_t n = r.NumRows();
  const int64_t chunks = NumMorsels(n, opts.morsel_rows);
  CountMorsels(opts, chunks);
  std::vector<std::vector<int64_t>> selected(static_cast<size_t>(chunks));
  MergeOrder merge(chunks, opts.deterministic);
  opts.scheduler->ParallelFor(chunks, [&](int64_t c) {
    const int64_t lo = c * opts.morsel_rows;
    const int64_t hi = std::min<int64_t>(n, lo + opts.morsel_rows);
    std::vector<int64_t>& sel = selected[static_cast<size_t>(c)];
    for (int64_t i = lo; i < hi; ++i) {
      const Value* prow = r.RowData(i);
      uint64_t h = HashSlice(prow, r_cols);
      if (index.ForHash(h).ContainsHashed(prow, r_cols, h)) sel.push_back(i);
    }
    merge.Record(c);
  });

  std::vector<int64_t> offsets = MergeOffsets(merge.order(), [&](int64_t c) {
    return static_cast<int64_t>(selected[static_cast<size_t>(c)].size());
  });
  Value* base = out.AppendRows(offsets.back());
  if (stride > 0) {
    opts.scheduler->ParallelFor(chunks, [&](int64_t pos) {
      const std::vector<int64_t>& sel =
          selected[static_cast<size_t>(merge.order()[static_cast<size_t>(pos)])];
      Value* dst = base + static_cast<size_t>(offsets[static_cast<size_t>(pos)]) * stride;
      for (int64_t i : sel) {
        std::memcpy(dst, r.RowData(i), stride * sizeof(Value));
        dst += stride;
      }
    });
  }
  // Morsel-ordered compaction of a canonical input is still a subsequence.
  if (opts.deterministic && r.IsCanonical()) out.MarkCanonical();
  return out;
}

Relation JoinAll(const std::vector<Relation>& relations) {
  GYO_CHECK_MSG(!relations.empty(), "JoinAll requires at least one relation");
  Relation acc = relations[0];
  for (size_t i = 1; i < relations.size(); ++i) {
    acc = NaturalJoin(acc, relations[i]);
  }
  return acc;
}

}  // namespace gyo
