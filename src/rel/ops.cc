#include "rel/ops.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <vector>

#include "exec/task_scheduler.h"
#include "rel/simd.h"
#include "util/check.h"

namespace gyo {

namespace {

constexpr uint64_t kFnvSeed = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

// FNV-1a alone distributes small sequential integers (the common
// test/benchmark domain) badly in power-of-two bucket arrays; the Murmur3
// finalizer sweep (simd::AvalancheSweep) spreads every input bit over the
// whole word.

// The key columns of `rel` selected by `cols`, as flat arena pointers — the
// form every kernel below hashes and compares against. Invalidated by any
// mutation of `rel`.
inline std::vector<const Value*> KeyCols(const Relation& rel,
                                         const std::vector<int>& cols) {
  std::vector<const Value*> keys;
  keys.reserve(cols.size());
  for (int c : cols) keys.push_back(rel.ColData(c));
  return keys;
}

// Column-at-a-time key hashing: writes the key hash of every row in
// [lo, hi) to out[0 .. hi-lo). One FNV-1a fold pass per key column over its
// flat arena (seed broadcast, then per-column xor-multiply sweeps, then one
// avalanche sweep), each sweep explicitly vectorized (rel/simd.h) with hash
// values bit-identical to the scalar loops — same fold order, same
// constants, per-lane xor/multiply/shift — so bucket chains, Bloom bits,
// and output orders are unchanged across the dispatch tiers.
inline void HashColumns(const std::vector<const Value*>& keys, int64_t lo,
                        int64_t hi, uint64_t* out) {
  const int64_t n = hi - lo;
  simd::FillU64(out, n, kFnvSeed);
  for (const Value* col : keys) {
    simd::XorMulU64(out, col + lo, n, kFnvPrime);
  }
  simd::AvalancheSweep(out, n);
}

// Rows per block of the scratch hash buffer the streaming probe/build loops
// run through: 32 KiB of hashes, L1-resident, so HashColumns amortizes
// without the buffer competing with the build side for cache.
constexpr int64_t kHashBlockRows = 4096;

// Invokes fn(row, hash) for every row in [lo, hi), hashing column-at-a-time
// in kHashBlockRows blocks through `scratch`.
template <typename Fn>
inline void ForEachHashed(const std::vector<const Value*>& keys, int64_t lo,
                          int64_t hi, std::vector<uint64_t>& scratch,
                          Fn&& fn) {
  scratch.resize(static_cast<size_t>(kHashBlockRows));
  for (int64_t b = lo; b < hi; b += kHashBlockRows) {
    const int64_t e = std::min(hi, b + kHashBlockRows);
    HashColumns(keys, b, e, scratch.data());
    for (int64_t i = b; i < e; ++i) {
      fn(i, scratch[static_cast<size_t>(i - b)]);
    }
  }
}

// Compares the key of row `a_row` (under columns `a_keys`) with the key of
// row `b_row` (under `b_keys`); the two key lists must be aligned on the
// same attributes.
inline bool KeysEqual(const std::vector<const Value*>& a_keys, int64_t a_row,
                      const std::vector<const Value*>& b_keys, int64_t b_row) {
  for (size_t k = 0; k < a_keys.size(); ++k) {
    if (a_keys[k][a_row] != b_keys[k][b_row]) return false;
  }
  return true;
}

// Gathers src_col[ids[t]] into dst[t] — the per-column compaction primitive
// every kernel's output pass is built from (AVX2 hardware gather where
// available, scalar otherwise; order-preserving on every tier).
inline void GatherColumn(const Value* src_col,
                         const std::vector<int64_t>& ids, Value* dst) {
  simd::Gather64(src_col, ids.data(), static_cast<int64_t>(ids.size()), dst);
}

inline size_t NextPow2AtLeast(size_t n) {
  size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}

// A chained hash index from key-column values to row indices. Keys are
// never materialized: both build and probe hash/compare directly against
// flat column arenas.
class ColumnIndex {
 public:
  // An empty index sized for `expected_rows`; register rows with Add().
  ColumnIndex(std::vector<const Value*> keys, int64_t expected_rows)
      : keys_(std::move(keys)) {
    const size_t buckets =
        NextPow2AtLeast(2 * static_cast<size_t>(expected_rows));
    mask_ = buckets - 1;
    heads_.assign(buckets, -1);
    entries_.reserve(static_cast<size_t>(expected_rows));
  }

  // Registers row `row` under its (precomputed) key hash. The partitioned
  // build path hashes every row once up front and reuses the values here.
  void Add(int64_t row, uint64_t hash) {
    size_t b = static_cast<size_t>(hash) & mask_;
    entries_.push_back(Entry{hash, row, heads_[b]});
    heads_[b] = static_cast<int64_t>(entries_.size()) - 1;
  }

  // Invokes fn(row_index) for every indexed row whose key equals the key of
  // `probe_row` under `probe_keys`.
  template <typename Fn>
  void ForEachMatchHashed(const std::vector<const Value*>& probe_keys,
                          int64_t probe_row, uint64_t h, Fn&& fn) const {
    for (int64_t e = heads_[static_cast<size_t>(h) & mask_]; e >= 0;
         e = entries_[static_cast<size_t>(e)].next) {
      const Entry& entry = entries_[static_cast<size_t>(e)];
      if (entry.hash == h &&
          KeysEqual(keys_, entry.row, probe_keys, probe_row)) {
        fn(entry.row);
      }
    }
  }

  // True iff some indexed row's key equals the probe row's key.
  bool ContainsHashed(const std::vector<const Value*>& probe_keys,
                      int64_t probe_row, uint64_t h) const {
    for (int64_t e = heads_[static_cast<size_t>(h) & mask_]; e >= 0;
         e = entries_[static_cast<size_t>(e)].next) {
      const Entry& entry = entries_[static_cast<size_t>(e)];
      if (entry.hash == h &&
          KeysEqual(keys_, entry.row, probe_keys, probe_row)) {
        return true;
      }
    }
    return false;
  }

 private:
  struct Entry {
    uint64_t hash;
    int64_t row;
    int64_t next;  // previous entry in the same bucket, -1 at chain end
  };
  std::vector<const Value*> keys_;
  std::vector<int64_t> heads_;
  std::vector<Entry> entries_;
  size_t mask_;
};

// Serial build: indexes rows [0, n) under `keys`, and when `bloom` is
// non-null and the build clears the kMinBloomBuildRows gate, fills it from
// the same hash stream (it stays disabled otherwise).
ColumnIndex BuildIndex(const std::vector<const Value*>& keys, int64_t n,
                       BloomFilter* bloom) {
  ColumnIndex index(keys, n);
  if (bloom != nullptr && n >= kMinBloomBuildRows) *bloom = BloomFilter(n);
  std::vector<uint64_t> scratch;
  ForEachHashed(keys, 0, n, scratch, [&](int64_t i, uint64_t h) {
    index.Add(i, h);
    if (bloom != nullptr && bloom->enabled()) bloom->Add(h);
  });
  return index;
}

// ---------------------------------------------------------------------------
// Parallel kernel machinery (exec subsystem). The serial kernels below stay
// the single-morsel form; these helpers add hash-partitioned builds and
// morsel-driven probes when an OpExecOpts carries a multi-thread scheduler.

// Copies `opts` with morsel_rows resolved: the caller's explicit value, or
// the L2-targeting auto-tune for `probe_arity` when left at 0. Every kernel
// resolves once up front and threads the resolved options through.
inline OpExecOpts ResolveMorselRows(const OpExecOpts& opts, int probe_arity) {
  OpExecOpts resolved = opts;
  if (resolved.morsel_rows <= 0) {
    resolved.morsel_rows = AutoMorselRows(probe_arity);
  }
  return resolved;
}

// Feeds the per-query morsel counter (QueryStats::morsels) when one is
// attached.
inline void CountMorsels(const OpExecOpts& opts, int64_t n) {
  if (opts.morsel_counter != nullptr) {
    opts.morsel_counter->fetch_add(n, std::memory_order_relaxed);
  }
}

// Feeds the Bloom prune counters: `pruned` probe rows rejected before any
// chain walk, of which `partition_skips` skipped a partitioned-build
// partition (the parallel path; serial single-filter prunes pass 0).
inline void CountPrunes(const OpExecOpts& opts, int64_t pruned,
                        int64_t partition_skips) {
  if (pruned > 0 && opts.probe_prune_counter != nullptr) {
    opts.probe_prune_counter->fetch_add(pruned, std::memory_order_relaxed);
  }
  if (partition_skips > 0 && opts.bloom_skip_counter != nullptr) {
    opts.bloom_skip_counter->fetch_add(partition_skips,
                                       std::memory_order_relaxed);
  }
}

// Feeds the SIP prune counter (QueryStats::sip_rows_pruned): probe rows a
// cross-statement SIP filter rejected before any of this kernel's own
// Bloom/chain work.
inline void CountSip(const OpExecOpts& opts, int64_t pruned) {
  if (pruned > 0 && opts.sip_prune_counter != nullptr) {
    opts.sip_prune_counter->fetch_add(pruned, std::memory_order_relaxed);
  }
}

// True iff any attached SIP filter proves key hash `h` cannot survive the
// downstream chain (Bloom filters have no false negatives, so a rejection
// is a proof). A pure function of `h` — identical decisions on every
// thread, so pruning preserves determinism.
inline bool SipReject(const std::vector<const BloomFilter*>* filters,
                      uint64_t h) {
  if (filters == nullptr) return false;
  for (const BloomFilter* f : *filters) {
    if (!f->MaybeContains(h)) return true;
  }
  return false;
}

// True when the probe side is worth splitting into morsels. `opts` must be
// resolved (morsel_rows >= 1).
inline bool RunParallel(const OpExecOpts& opts, int64_t probe_rows) {
  return opts.scheduler != nullptr && opts.scheduler->threads() > 1 &&
         probe_rows > opts.morsel_rows && opts.morsel_rows >= 1;
}

inline int64_t NumMorsels(int64_t rows, int64_t morsel_rows) {
  return (rows + morsel_rows - 1) / morsel_rows;
}

// Radix scatter of row ids [0, n) into 2^bits hash partitions, O(n) total:
//
//   1. counting pass (parallel over morsels): hash every row's key columns
//      (column-at-a-time over the flat arenas) and tally a per-morsel ×
//      per-partition histogram — disjoint writes, no locking;
//   2. prefix-sum layout (serial, morsels × parts entries): assign every
//      (morsel, partition) bucket a contiguous range of a partition-major
//      row-id array;
//   3. scatter pass (parallel over morsels): each morsel writes its row ids
//      into its own precomputed ranges — cache-friendly contiguous writes.
//
// The partition count adapts to the build side: PartitionBitsForBuild widens
// past the pool-width floor until partitions are cache-resident — or is
// forced by the caller (forced_bits >= 0): the probe-side scatter must use
// the BUILD side's partition function so probe partition p matches build
// partition p exactly. Within each partition the buckets are laid out in
// morsel order, so a partition's slice lists its rows in increasing global
// row order — the exact order the serial build inserts them in, which keeps
// bucket-chain traversal (and thus deterministic-mode output) bit-identical.
// The row hashes are computed once here and reused by the partition build,
// its Bloom filters, Project's partitioned dedupe, and Semijoin's
// partitioned probe.
struct RadixScatter {
  RadixScatter(int64_t n, const std::vector<const Value*>& keys,
               const OpExecOpts& opts, int forced_bits = -1)
      : bits(forced_bits >= 0
                 ? forced_bits
                 : PartitionBitsForBuild(opts.scheduler->threads(), n)) {
    const int64_t parts = int64_t{1} << bits;
    const int64_t morsels = NumMorsels(n, opts.morsel_rows);
    CountMorsels(opts, 2 * morsels);  // the counting and scatter passes
    hashes.resize(static_cast<size_t>(n));
    std::vector<int64_t> counts(static_cast<size_t>(morsels * parts), 0);
    opts.scheduler->ParallelFor(morsels, [&](int64_t m) {
      const int64_t lo = m * opts.morsel_rows;
      const int64_t hi = std::min<int64_t>(n, lo + opts.morsel_rows);
      HashColumns(keys, lo, hi, hashes.data() + lo);
      int64_t* mine = counts.data() + static_cast<size_t>(m * parts);
      for (int64_t i = lo; i < hi; ++i) {
        ++mine[PartitionOf(hashes[static_cast<size_t>(i)], bits)];
      }
    }, opts.steal_stats);
    std::vector<int64_t> cursors(static_cast<size_t>(morsels * parts));
    part_begin.resize(static_cast<size_t>(parts) + 1);
    int64_t off = 0;
    for (int64_t p = 0; p < parts; ++p) {
      part_begin[static_cast<size_t>(p)] = off;
      for (int64_t m = 0; m < morsels; ++m) {
        cursors[static_cast<size_t>(m * parts + p)] = off;
        off += counts[static_cast<size_t>(m * parts + p)];
      }
    }
    part_begin[static_cast<size_t>(parts)] = off;
    row_ids.resize(static_cast<size_t>(n));
    opts.scheduler->ParallelFor(morsels, [&](int64_t m) {
      const int64_t lo = m * opts.morsel_rows;
      const int64_t hi = std::min<int64_t>(n, lo + opts.morsel_rows);
      int64_t* mine = cursors.data() + static_cast<size_t>(m * parts);
      for (int64_t i = lo; i < hi; ++i) {
        const size_t p = PartitionOf(hashes[static_cast<size_t>(i)], bits);
        row_ids[static_cast<size_t>(mine[p]++)] = i;
      }
    }, opts.steal_stats);
  }

  int num_partitions() const { return 1 << bits; }

  const int bits;
  std::vector<uint64_t> hashes;    // per row id, the key-column hash
  std::vector<int64_t> row_ids;    // partition-major, row order within each
  std::vector<int64_t> part_begin; // partition p owns [begin[p], begin[p+1])
};

// A hash-partitioned ColumnIndex over all rows of a build relation: a
// RadixScatter lays every row id into its partition's contiguous slice,
// then the partition indexes are built concurrently, each consuming only
// its own rows — build work stays O(n) regardless of the partition count.
// The scatter's hash pass doubles as the Bloom feed: each partition fills
// its own filter while inserting (gated on the build clearing
// kMinBloomBuildRows), so probes can reject a partition — and skip its
// bucket-chain walk entirely — on two bit tests.
//
// The build also records which pool worker built each partition (builder()),
// the anchor of the scheduler's sticky partition affinity: the probe side
// scatters its morsels by the same partition function and pushes each
// partition's probe chunks to its builder's deque, so the thread whose cache
// holds a partition's bucket array probes it (stealable under imbalance).
class PartitionedColumnIndex {
 public:
  PartitionedColumnIndex(const Relation& rel, const std::vector<int>& cols,
                         const OpExecOpts& opts)
      : keys_(KeyCols(rel, cols)),
        use_bloom_(rel.NumRows() >= kMinBloomBuildRows) {
    // Scatter state is local: the build finishes before the constructor
    // returns, so the ~16 bytes/row need not stay pinned through the probe.
    RadixScatter scatter(rel.NumRows(), keys_, opts);
    bits_ = scatter.bits;
    const int parts = scatter.num_partitions();
    parts_.reserve(static_cast<size_t>(parts));
    blooms_.resize(static_cast<size_t>(parts));
    builders_.assign(static_cast<size_t>(parts), -1);
    for (int p = 0; p < parts; ++p) {
      const int64_t rows =
          scatter.part_begin[static_cast<size_t>(p) + 1] -
          scatter.part_begin[static_cast<size_t>(p)];
      parts_.emplace_back(keys_, rows);
      if (use_bloom_) blooms_[static_cast<size_t>(p)] = BloomFilter(rows);
    }
    opts.scheduler->ParallelFor(parts, [&](int64_t p) {
      ColumnIndex& index = parts_[static_cast<size_t>(p)];
      BloomFilter& bloom = blooms_[static_cast<size_t>(p)];
      // Sticky affinity tag: the worker whose cache now holds this
      // partition. Partitions built by an external caller thread (index -1,
      // not a valid steal-placement target) fall back to a deterministic
      // round-robin worker so their probe chunks still get stable per-
      // partition placement instead of all landing in the shared overflow.
      const int built_by = opts.scheduler->CurrentWorkerIndex();
      const int nw = opts.scheduler->num_workers();
      builders_[static_cast<size_t>(p)] =
          built_by >= 0 ? built_by
                        : (nw > 0 ? static_cast<int>(p) % nw : -1);
      const int64_t hi = scatter.part_begin[static_cast<size_t>(p) + 1];
      for (int64_t k = scatter.part_begin[static_cast<size_t>(p)]; k < hi;
           ++k) {
        const int64_t row = scatter.row_ids[static_cast<size_t>(k)];
        const uint64_t h = scatter.hashes[static_cast<size_t>(row)];
        index.Add(row, h);
        if (use_bloom_) bloom.Add(h);
      }
    }, opts.steal_stats);
  }

  // The partition index responsible for probe-key hash `h`, or nullptr when
  // that partition's Bloom filter proves no build key can match (never a
  // false nullptr — Bloom filters have no false negatives).
  const ColumnIndex* Probe(uint64_t h) const {
    const size_t p = PartitionOf(h, bits_);
    if (use_bloom_ && !blooms_[p].MaybeContains(h)) return nullptr;
    return &parts_[p];
  }

  int bits() const { return bits_; }
  int num_partitions() const { return 1 << bits_; }

  // The pool worker that built partition p (-1: the query's caller thread
  // built it) — the affinity target for that partition's probe chunks.
  int builder(int p) const { return builders_[static_cast<size_t>(p)]; }

  const ColumnIndex& part(int p) const {
    return parts_[static_cast<size_t>(p)];
  }

  // Partition-p half of Probe() for callers that already scattered their
  // rows by partition: false iff p's Bloom filter proves `h` cannot match.
  // Identical accept/reject decisions (same filters, same hashes) keep the
  // prune counters numerically equal to the Probe() path's.
  bool PartitionMaybeContains(int p, uint64_t h) const {
    return !use_bloom_ || blooms_[static_cast<size_t>(p)].MaybeContains(h);
  }

 private:
  std::vector<const Value*> keys_;
  bool use_bloom_;
  int bits_ = 0;
  std::vector<ColumnIndex> parts_;
  std::vector<BloomFilter> blooms_;
  std::vector<int> builders_;
};

// Prefix sums of per-chunk output sizes in merge order: offsets[pos] is the
// output row offset of the chunk at merge position pos, offsets.back() the
// total. Shared by the join/semijoin compaction passes so the two merge
// paths cannot diverge.
template <typename RowsOf>
std::vector<int64_t> MergeOffsets(const std::vector<int64_t>& order,
                                  RowsOf&& rows_of) {
  std::vector<int64_t> offsets(order.size() + 1, 0);
  for (size_t pos = 0; pos < order.size(); ++pos) {
    offsets[pos + 1] = offsets[pos] + rows_of(order[pos]);
  }
  return offsets;
}

// The order in which per-morsel outputs are compacted into the result arena:
// morsel order when `deterministic` (bit-identical to the serial kernel),
// completion order otherwise (same set, unspecified row order).
class MergeOrder {
 public:
  MergeOrder(int64_t chunks, bool deterministic)
      : deterministic_(deterministic) {
    if (deterministic_) {
      order_.resize(static_cast<size_t>(chunks));
      for (int64_t c = 0; c < chunks; ++c) order_[static_cast<size_t>(c)] = c;
    } else {
      order_.reserve(static_cast<size_t>(chunks));
    }
  }

  // Called by each morsel as it finishes.
  void Record(int64_t chunk) {
    if (deterministic_) return;
    std::lock_guard<std::mutex> lock(mu_);
    order_.push_back(chunk);
  }

  const std::vector<int64_t>& order() const { return order_; }

 private:
  bool deterministic_;
  std::mutex mu_;
  std::vector<int64_t> order_;
};

}  // namespace

Relation Project(const Relation& r, const AttrSet& x) {
  return Project(r, x, OpExecOpts());
}

Relation Project(const Relation& r, const AttrSet& x,
                 const OpExecOpts& caller_opts) {
  const OpExecOpts opts = ResolveMorselRows(caller_opts, r.Arity());
  GYO_CHECK_MSG(x.IsSubsetOf(r.Schema()), "projection target not in schema");
  Relation out(x);
  std::vector<int> cols;
  cols.reserve(static_cast<size_t>(out.Arity()));
  for (AttrId a : out.Attrs()) cols.push_back(r.ColIndex(a));

  const int64_t n = r.NumRows();
  if (out.Arity() == 0) {
    // π_∅: TRUE (one empty tuple) iff r is non-empty.
    if (n > 0) out.AppendRows(1);
    out.MarkCanonical();
    return out;
  }

  const std::vector<const Value*> keys = KeyCols(r, cols);

  if (!RunParallel(opts, n)) {
    // First-occurrence selection: an incremental ColumnIndex over the input
    // keyed on the projected columns records every distinct key's first row;
    // one gather pass per column then compacts the survivors. No sort — the
    // result is duplicate-free but left non-canonical (sortedness is lazy).
    ColumnIndex seen(keys, n);
    std::vector<int64_t> survivors;
    std::vector<uint64_t> scratch;
    ForEachHashed(keys, 0, n, scratch, [&](int64_t i, uint64_t h) {
      if (seen.ContainsHashed(keys, i, h)) return;
      seen.Add(i, h);
      survivors.push_back(i);
    });
    const int64_t base = out.AppendRows(static_cast<int64_t>(survivors.size()));
    for (size_t k = 0; k < cols.size(); ++k) {
      GatherColumn(r.ColData(cols[k]), survivors,
                   out.ColData(static_cast<int>(k)) + base);
    }
    return out;
  }

  // Parallel form: a partitioned (by key hash) cross-morsel dedupe on the
  // radix-scatter structure — no sequential merge pass at all. All
  // duplicates of a key land in the same hash partition, and each
  // partition's row-id slice preserves global row order, so a
  // within-partition first occurrence IS the global first occurrence. The
  // partition tasks dedupe concurrently into a shared per-row survivor
  // bitmap (disjoint bytes — every row belongs to exactly one partition),
  // then a morsel-parallel compaction gathers the survivors per column in
  // row order: always bit-identical to the serial kernel, deterministic
  // mode or not.
  RadixScatter scatter(n, keys, opts);
  const int parts = scatter.num_partitions();
  std::vector<uint8_t> survives(static_cast<size_t>(n), 0);
  opts.scheduler->ParallelFor(parts, [&](int64_t p) {
    const int64_t lo = scatter.part_begin[static_cast<size_t>(p)];
    const int64_t hi = scatter.part_begin[static_cast<size_t>(p) + 1];
    ColumnIndex seen(keys, hi - lo);
    for (int64_t k = lo; k < hi; ++k) {
      const int64_t i = scatter.row_ids[static_cast<size_t>(k)];
      const uint64_t h = scatter.hashes[static_cast<size_t>(i)];
      if (seen.ContainsHashed(keys, i, h)) continue;
      seen.Add(i, h);
      survives[static_cast<size_t>(i)] = 1;
    }
  }, opts.steal_stats);

  // Compaction: per-morsel survivor selection vectors, prefix sum, then
  // parallel per-column gathers into disjoint ranges of the output arenas,
  // in row order. Two morsel passes, counted like RadixScatter's.
  const int64_t chunks = NumMorsels(n, opts.morsel_rows);
  CountMorsels(opts, 2 * chunks);
  std::vector<std::vector<int64_t>> selected(static_cast<size_t>(chunks));
  opts.scheduler->ParallelFor(chunks, [&](int64_t c) {
    const int64_t lo = c * opts.morsel_rows;
    const int64_t hi = std::min<int64_t>(n, lo + opts.morsel_rows);
    std::vector<int64_t>& sel = selected[static_cast<size_t>(c)];
    for (int64_t i = lo; i < hi; ++i) {
      if (survives[static_cast<size_t>(i)]) sel.push_back(i);
    }
  }, opts.steal_stats);
  std::vector<int64_t> offsets(static_cast<size_t>(chunks) + 1, 0);
  for (int64_t c = 0; c < chunks; ++c) {
    offsets[static_cast<size_t>(c) + 1] =
        offsets[static_cast<size_t>(c)] +
        static_cast<int64_t>(selected[static_cast<size_t>(c)].size());
  }
  const int64_t base = out.AppendRows(offsets.back());
  opts.scheduler->ParallelFor(chunks, [&](int64_t c) {
    const std::vector<int64_t>& sel = selected[static_cast<size_t>(c)];
    if (sel.empty()) return;
    const int64_t dst = base + offsets[static_cast<size_t>(c)];
    for (size_t k = 0; k < cols.size(); ++k) {
      GatherColumn(r.ColData(cols[k]), sel,
                   out.ColData(static_cast<int>(k)) + dst);
    }
  }, opts.steal_stats);
  return out;
}

Relation NaturalJoin(const Relation& r, const Relation& s) {
  return NaturalJoin(r, s, OpExecOpts());
}

Relation NaturalJoin(const Relation& r, const Relation& s,
                     const OpExecOpts& caller_opts) {
  // The probe side is the larger input (chosen below); auto-tune for the
  // wider of the two arities, the conservative cache-residency choice.
  const OpExecOpts opts =
      ResolveMorselRows(caller_opts, std::max(r.Arity(), s.Arity()));
  AttrSet common = r.Schema().Intersect(s.Schema());
  AttrSet result_schema = r.Schema().Union(s.Schema());
  Relation out(result_schema);

  std::vector<int> r_key_cols;
  std::vector<int> s_key_cols;
  common.ForEach([&](AttrId a) {
    r_key_cols.push_back(r.ColIndex(a));
    s_key_cols.push_back(s.ColIndex(a));
  });

  // Build on the smaller input.
  const Relation& build = s.NumRows() <= r.NumRows() ? s : r;
  const Relation& probe = s.NumRows() <= r.NumRows() ? r : s;
  const std::vector<int>& build_cols =
      (&build == &s) ? s_key_cols : r_key_cols;
  const std::vector<int>& probe_cols =
      (&build == &s) ? r_key_cols : s_key_cols;
  const std::vector<const Value*> probe_keys = KeyCols(probe, probe_cols);

  // Output column sources: for each result attribute, where to read it from.
  struct Source {
    bool from_probe;
    int col;
  };
  std::vector<Source> sources;
  sources.reserve(static_cast<size_t>(out.Arity()));
  for (AttrId a : out.Attrs()) {
    if (probe.Schema().Contains(a)) {
      sources.push_back(Source{true, probe.ColIndex(a)});
    } else {
      sources.push_back(Source{false, build.ColIndex(a)});
    }
  }

  // Emits the matched (probe row, build row) id pairs of one chunk into the
  // output rows starting at `dst`, one column gather at a time.
  auto GatherPairs = [&](const std::vector<int64_t>& probe_ids,
                         const std::vector<int64_t>& build_ids, int64_t dst) {
    for (size_t k = 0; k < sources.size(); ++k) {
      const Relation& src = sources[k].from_probe ? probe : build;
      GatherColumn(src.ColData(sources[k].col),
                   sources[k].from_probe ? probe_ids : build_ids,
                   out.ColData(static_cast<int>(k)) + dst);
    }
  };

  // Distinct (probe, build) row pairs yield distinct output tuples (the
  // output determines both inputs), so duplicate-free inputs give a
  // duplicate-free output; no dedupe or sort is needed on either path.
  if (!RunParallel(opts, probe.NumRows())) {
    BloomFilter bloom;
    const ColumnIndex index =
        BuildIndex(KeyCols(build, build_cols), build.NumRows(), &bloom);
    std::vector<int64_t> probe_ids;
    std::vector<int64_t> build_ids;
    std::vector<uint64_t> scratch;
    int64_t pruned = 0;
    ForEachHashed(probe_keys, 0, probe.NumRows(), scratch,
                  [&](int64_t i, uint64_t h) {
                    if (bloom.enabled() && !bloom.MaybeContains(h)) {
                      ++pruned;
                      return;
                    }
                    index.ForEachMatchHashed(probe_keys, i, h, [&](int64_t j) {
                      probe_ids.push_back(i);
                      build_ids.push_back(j);
                    });
                  });
    CountPrunes(opts, pruned, 0);
    const int64_t base =
        out.AppendRows(static_cast<int64_t>(probe_ids.size()));
    GatherPairs(probe_ids, build_ids, base);
    return out;
  }

  // Parallel form: partitioned Bloom-filtered hash build, then a PROBE-SIDE
  // radix scatter of the probe relation by the build's own partition
  // function (the same structure Semijoin's parallel kernel uses): each
  // probe chunk walks exactly one cache-resident partition — bucket array
  // plus Bloom filter — instead of every morsel touching all of them, and
  // carries sticky affinity to the worker that built its partition
  // (stealable under imbalance). The Bloom accept/reject decisions reuse
  // the same filters on the same hashes as the morsel-range path did, so
  // the prune counters are numerically unchanged.
  PartitionedColumnIndex index(build, build_cols, opts);
  const int64_t n = probe.NumRows();
  RadixScatter probe_scatter(n, probe_keys, opts, index.bits());

  struct ProbeChunk {
    int part;
    int64_t lo, hi;  // range of probe_scatter.row_ids
  };
  std::vector<ProbeChunk> probe_chunks;
  std::vector<int> affinity;
  for (int p = 0; p < index.num_partitions(); ++p) {
    const int64_t plo = probe_scatter.part_begin[static_cast<size_t>(p)];
    const int64_t phi = probe_scatter.part_begin[static_cast<size_t>(p) + 1];
    if (plo == phi) continue;
    const int64_t step = ClampMorselToPartition(opts.morsel_rows, phi - plo);
    for (int64_t lo = plo; lo < phi; lo += step) {
      probe_chunks.push_back(ProbeChunk{p, lo, std::min(phi, lo + step)});
      affinity.push_back(index.builder(p));
    }
  }
  const int64_t chunks = static_cast<int64_t>(probe_chunks.size());
  CountMorsels(opts, chunks);
  std::vector<std::vector<int64_t>> probe_ids(static_cast<size_t>(chunks));
  std::vector<std::vector<int64_t>> build_ids(static_cast<size_t>(chunks));
  MergeOrder merge(chunks, opts.deterministic);
  // Deterministic mode restores the serial output order with a k-way merge
  // of the per-partition runs: per-probe-row match counts (written
  // disjointly — every probe row lives in exactly one chunk) are prefix-
  // summed over GLOBAL row order below, which interleaves the runs exactly
  // as the serial probe would have emitted them.
  std::vector<int64_t> row_matches;
  if (opts.deterministic) row_matches.assign(static_cast<size_t>(n), 0);
  opts.scheduler->ParallelForAffine(
      chunks,
      [&](int64_t c) {
        const ProbeChunk& chunk = probe_chunks[static_cast<size_t>(c)];
        const ColumnIndex& part = index.part(chunk.part);
        std::vector<int64_t>& pids = probe_ids[static_cast<size_t>(c)];
        std::vector<int64_t>& bids = build_ids[static_cast<size_t>(c)];
        int64_t pruned = 0;
        for (int64_t k = chunk.lo; k < chunk.hi; ++k) {
          const int64_t i = probe_scatter.row_ids[static_cast<size_t>(k)];
          const uint64_t h = probe_scatter.hashes[static_cast<size_t>(i)];
          if (!index.PartitionMaybeContains(chunk.part, h)) {
            ++pruned;
            continue;
          }
          part.ForEachMatchHashed(probe_keys, i, h, [&](int64_t j) {
            pids.push_back(i);
            bids.push_back(j);
          });
        }
        if (opts.deterministic) {
          for (int64_t p : pids) ++row_matches[static_cast<size_t>(p)];
        }
        CountPrunes(opts, pruned, pruned);
        merge.Record(c);
      },
      affinity, opts.steal_stats);

  if (opts.deterministic) {
    // Exclusive prefix sum over global probe-row order: row i's matches
    // land at [row_start[i], row_start[i] + row_matches[i]) — the offset
    // the serial kernel writes them to. Within one probe row the matches
    // arrived in the partition chain's most-recent-first order, which
    // equals the serial chain's order (equal keys share a partition, and
    // partitions insert in global build-row order), so the whole output is
    // bit-identical to serial. The scatter is parallel: one probe row's
    // pairs are contiguous within its single producing chunk.
    std::vector<int64_t> row_start(static_cast<size_t>(n));
    int64_t total = 0;
    for (int64_t i = 0; i < n; ++i) {
      row_start[static_cast<size_t>(i)] = total;
      total += row_matches[static_cast<size_t>(i)];
    }
    const int64_t base = out.AppendRows(total);
    opts.scheduler->ParallelFor(chunks, [&](int64_t c) {
      const std::vector<int64_t>& pids = probe_ids[static_cast<size_t>(c)];
      if (pids.empty()) return;
      const std::vector<int64_t>& bids = build_ids[static_cast<size_t>(c)];
      std::vector<int64_t> dst(pids.size());
      int64_t run = 0;
      for (size_t t = 0; t < pids.size(); ++t) {
        run = (t > 0 && pids[t] == pids[t - 1]) ? run + 1 : 0;
        dst[t] = row_start[static_cast<size_t>(pids[t])] + run;
      }
      for (size_t k = 0; k < sources.size(); ++k) {
        const Relation& src = sources[k].from_probe ? probe : build;
        const Value* col = src.ColData(sources[k].col);
        const std::vector<int64_t>& ids = sources[k].from_probe ? pids : bids;
        Value* out_col = out.ColData(static_cast<int>(k)) + base;
        for (size_t t = 0; t < ids.size(); ++t) {
          out_col[dst[t]] = col[static_cast<size_t>(ids[t])];
        }
      }
    }, opts.steal_stats);
    return out;
  }

  // Non-deterministic mode: concatenate chunk outputs in completion order
  // (same set of pairs, unspecified row order) — no merge pass at all.
  std::vector<int64_t> offsets = MergeOffsets(merge.order(), [&](int64_t c) {
    return static_cast<int64_t>(probe_ids[static_cast<size_t>(c)].size());
  });
  const int64_t base = out.AppendRows(offsets.back());
  opts.scheduler->ParallelFor(chunks, [&](int64_t pos) {
    const int64_t c = merge.order()[static_cast<size_t>(pos)];
    if (probe_ids[static_cast<size_t>(c)].empty()) return;
    GatherPairs(probe_ids[static_cast<size_t>(c)],
                build_ids[static_cast<size_t>(c)],
                base + offsets[static_cast<size_t>(pos)]);
  }, opts.steal_stats);
  return out;
}

Relation Semijoin(const Relation& r, const Relation& s) {
  return Semijoin(r, s, OpExecOpts());
}

Relation Semijoin(const Relation& r, const Relation& s,
                  const OpExecOpts& caller_opts) {
  const OpExecOpts opts = ResolveMorselRows(caller_opts, r.Arity());
  AttrSet common = r.Schema().Intersect(s.Schema());
  Relation out(r.Schema());
  std::vector<int> r_cols;
  std::vector<int> s_cols;
  common.ForEach([&](AttrId a) {
    r_cols.push_back(r.ColIndex(a));
    s_cols.push_back(s.ColIndex(a));
  });
  const std::vector<const Value*> probe_keys = KeyCols(r, r_cols);

  // Zone-map disjointness: when some key column's value ranges in r and s
  // provably cannot overlap, no r row can have a match — the result is
  // empty without hashing a single row. Bit-identical to the full path's
  // empty result (a fresh relation and an AppendRows(0) compaction are both
  // canonical), so the skip is safe in every determinism mode. ZoneRange
  // answers only when the maps are current (AddRow-built or canonicalized
  // inputs) and both sides are non-empty.
  for (size_t k = 0; k < r_cols.size(); ++k) {
    Value rmin, rmax, smin, smax;
    if (r.ZoneRange(r_cols[k], &rmin, &rmax) &&
        s.ZoneRange(s_cols[k], &smin, &smax) &&
        (rmax < smin || smax < rmin)) {
      if (opts.zone_skip_counter != nullptr) {
        opts.zone_skip_counter->fetch_add(r.NumRows(),
                                          std::memory_order_relaxed);
      }
      return out;
    }
  }

  // Emits the selected row ids into output rows starting at `dst`, one
  // column gather at a time (schemas are identical, so columns align 1:1).
  auto GatherSelected = [&](const std::vector<int64_t>& sel, int64_t dst) {
    for (int c = 0; c < r.Arity(); ++c) {
      GatherColumn(r.ColData(c), sel, out.ColData(c) + dst);
    }
  };

  if (!RunParallel(opts, r.NumRows())) {
    BloomFilter bloom;
    const ColumnIndex index =
        BuildIndex(KeyCols(s, s_cols), s.NumRows(), &bloom);

    // Selection pass: record matching row indices (SIP- and Bloom-rejected
    // probes never walk a chain), then compact per column in one sweep.
    std::vector<int64_t> selected;
    std::vector<uint64_t> scratch;
    int64_t pruned = 0;
    int64_t sip_pruned = 0;
    ForEachHashed(probe_keys, 0, r.NumRows(), scratch,
                  [&](int64_t i, uint64_t h) {
                    if (SipReject(opts.sip_filters, h)) {
                      ++sip_pruned;
                      return;
                    }
                    if (bloom.enabled() && !bloom.MaybeContains(h)) {
                      ++pruned;
                      return;
                    }
                    if (index.ContainsHashed(probe_keys, i, h)) {
                      selected.push_back(i);
                    }
                  });
    CountPrunes(opts, pruned, 0);
    CountSip(opts, sip_pruned);
    const int64_t base =
        out.AppendRows(static_cast<int64_t>(selected.size()));
    GatherSelected(selected, base);
    // A subsequence of a canonical relation is still sorted and unique.
    if (r.IsCanonical()) out.MarkCanonical();
    return out;
  }

  // Parallel form: partitioned Bloom-filtered build over s, then a
  // PROBE-SIDE radix scatter of r by the build's own partition function, so
  // each probe task walks exactly one cache-resident partition (bucket
  // array + Bloom filter) instead of every morsel touching all of them. The
  // chunks carry sticky affinity: partition p's probe chunks go to the
  // worker that built partition p first (stealable under imbalance —
  // ParallelForAffine). Chunk sizes are clamped per partition
  // (ClampMorselToPartition) so no chunk ever spans a partition boundary.
  //
  // Survivors land in a shared per-row bitmap (disjoint bytes — each probe
  // row belongs to exactly one partition) and are compacted in input row
  // order, so the output is bit-identical to the serial kernel's in BOTH
  // determinism modes; scheduling only decides where each chunk runs. The
  // Bloom accept/reject decisions reuse the build's filters on the same
  // hashes as the morsel-range path did, so the prune counters are
  // numerically unchanged.
  PartitionedColumnIndex index(s, s_cols, opts);
  const int64_t n = r.NumRows();
  RadixScatter probe_scatter(n, probe_keys, opts, index.bits());

  struct ProbeChunk {
    int part;
    int64_t lo, hi;  // range of probe_scatter.row_ids
  };
  std::vector<ProbeChunk> probe_chunks;
  std::vector<int> affinity;
  for (int p = 0; p < index.num_partitions(); ++p) {
    const int64_t plo = probe_scatter.part_begin[static_cast<size_t>(p)];
    const int64_t phi = probe_scatter.part_begin[static_cast<size_t>(p) + 1];
    if (plo == phi) continue;
    const int64_t step = ClampMorselToPartition(opts.morsel_rows, phi - plo);
    for (int64_t lo = plo; lo < phi; lo += step) {
      probe_chunks.push_back(ProbeChunk{p, lo, std::min(phi, lo + step)});
      affinity.push_back(index.builder(p));
    }
  }
  CountMorsels(opts, static_cast<int64_t>(probe_chunks.size()));
  std::vector<uint8_t> survives(static_cast<size_t>(n), 0);
  opts.scheduler->ParallelForAffine(
      static_cast<int64_t>(probe_chunks.size()),
      [&](int64_t c) {
        const ProbeChunk& chunk = probe_chunks[static_cast<size_t>(c)];
        const ColumnIndex& part = index.part(chunk.part);
        int64_t pruned = 0;
        int64_t sip_pruned = 0;
        for (int64_t k = chunk.lo; k < chunk.hi; ++k) {
          const int64_t i = probe_scatter.row_ids[static_cast<size_t>(k)];
          const uint64_t h = probe_scatter.hashes[static_cast<size_t>(i)];
          if (SipReject(opts.sip_filters, h)) {
            ++sip_pruned;
            continue;
          }
          if (!index.PartitionMaybeContains(chunk.part, h)) {
            ++pruned;
            continue;
          }
          if (part.ContainsHashed(probe_keys, i, h)) {
            survives[static_cast<size_t>(i)] = 1;
          }
        }
        CountPrunes(opts, pruned, pruned);
        CountSip(opts, sip_pruned);
      },
      affinity, opts.steal_stats);

  // Compaction in input row order (same two-pass shape as Project's):
  // per-morsel survivor selection vectors, prefix sum, parallel gathers.
  const int64_t chunks = NumMorsels(n, opts.morsel_rows);
  CountMorsels(opts, 2 * chunks);
  std::vector<std::vector<int64_t>> selected(static_cast<size_t>(chunks));
  opts.scheduler->ParallelFor(chunks, [&](int64_t c) {
    const int64_t lo = c * opts.morsel_rows;
    const int64_t hi = std::min<int64_t>(n, lo + opts.morsel_rows);
    std::vector<int64_t>& sel = selected[static_cast<size_t>(c)];
    for (int64_t i = lo; i < hi; ++i) {
      if (survives[static_cast<size_t>(i)]) sel.push_back(i);
    }
  }, opts.steal_stats);
  std::vector<int64_t> offsets(static_cast<size_t>(chunks) + 1, 0);
  for (int64_t c = 0; c < chunks; ++c) {
    offsets[static_cast<size_t>(c) + 1] =
        offsets[static_cast<size_t>(c)] +
        static_cast<int64_t>(selected[static_cast<size_t>(c)].size());
  }
  const int64_t base = out.AppendRows(offsets.back());
  opts.scheduler->ParallelFor(chunks, [&](int64_t c) {
    const std::vector<int64_t>& sel = selected[static_cast<size_t>(c)];
    if (sel.empty()) return;
    GatherSelected(sel, base + offsets[static_cast<size_t>(c)]);
  }, opts.steal_stats);
  // Row-ordered compaction of a canonical input is still a subsequence —
  // in both determinism modes (the survivor bitmap erases scheduling order).
  if (r.IsCanonical()) out.MarkCanonical();
  return out;
}

Relation JoinAll(const std::vector<Relation>& relations) {
  GYO_CHECK_MSG(!relations.empty(), "JoinAll requires at least one relation");
  Relation acc = relations[0];
  for (size_t i = 1; i < relations.size(); ++i) {
    acc = NaturalJoin(acc, relations[i]);
  }
  return acc;
}

BloomFilter BuildSipFilter(const Relation& rel, const std::vector<int>& cols) {
  const int64_t n = rel.NumRows();
  BloomFilter filter(n);
  const std::vector<const Value*> keys = KeyCols(rel, cols);
  std::vector<uint64_t> scratch;
  ForEachHashed(keys, 0, n, scratch,
                [&](int64_t, uint64_t h) { filter.Add(h); });
  return filter;
}

}  // namespace gyo
