#include "rel/solver.h"

#include <algorithm>
#include <vector>

#include "gyo/qual_graph.h"
#include "tableau/canonical.h"
#include "util/check.h"

namespace gyo {

namespace {

// Appends the reduce-then-join phases shared by Yannakakis and the
// tree-projection evaluator.
//
// `node_ids` holds the current program id of each tree node's relation;
// `node_schemas` their schemas; `tree` a qual tree whose edges are listed in
// ear-removal order (edge k = (child, parent), children removed first).
void AppendReduceAndJoin(Program& p, const QualGraph& tree,
                         const std::vector<int>& node_ids_in,
                         const std::vector<AttrSet>& node_schemas,
                         const AttrSet& x, bool full_reduce,
                         bool early_project) {
  const int n = tree.num_nodes;
  std::vector<int> ids = node_ids_in;
  GYO_CHECK(static_cast<int>(ids.size()) == n);

  if (n == 1) {
    if (!(node_schemas[0] == x)) p.AddProject(ids[0], x);
    return;
  }

  if (full_reduce) {
    // Upward pass (children before parents — the edge order), then downward.
    for (const auto& [child, parent] : tree.edges) {
      ids[static_cast<size_t>(parent)] =
          p.AddSemijoin(ids[static_cast<size_t>(parent)],
                        ids[static_cast<size_t>(child)]);
    }
    for (auto it = tree.edges.rbegin(); it != tree.edges.rend(); ++it) {
      ids[static_cast<size_t>(it->first)] = p.AddSemijoin(
          ids[static_cast<size_t>(it->first)],
          ids[static_cast<size_t>(it->second)]);
    }
  }

  // Join order: root first, then children in reverse removal order — every
  // node joins after its parent, so the accumulated schema always intersects
  // the next relation.
  std::vector<bool> removed(static_cast<size_t>(n), false);
  for (const auto& [child, parent] : tree.edges) {
    (void)parent;
    removed[static_cast<size_t>(child)] = true;
  }
  int root = -1;
  for (int i = 0; i < n; ++i) {
    if (!removed[static_cast<size_t>(i)]) root = i;
  }
  GYO_CHECK(root >= 0);

  std::vector<int> join_order = {root};
  for (auto it = tree.edges.rbegin(); it != tree.edges.rend(); ++it) {
    join_order.push_back(it->first);
  }

  // Suffix unions of schemas still to be joined, for early projection.
  std::vector<AttrSet> suffix(static_cast<size_t>(n) + 1);
  for (int i = n - 1; i >= 0; --i) {
    suffix[static_cast<size_t>(i)] =
        suffix[static_cast<size_t>(i) + 1].Union(
            node_schemas[static_cast<size_t>(join_order[static_cast<size_t>(i)])]);
  }

  int acc = ids[static_cast<size_t>(root)];
  AttrSet acc_schema = node_schemas[static_cast<size_t>(root)];
  for (int i = 1; i < n; ++i) {
    int v = join_order[static_cast<size_t>(i)];
    acc = p.AddJoin(acc, ids[static_cast<size_t>(v)]);
    acc_schema.UnionWith(node_schemas[static_cast<size_t>(v)]);
    if (early_project) {
      AttrSet needed =
          acc_schema.Intersect(suffix[static_cast<size_t>(i) + 1].Union(x));
      if (needed != acc_schema) {
        acc = p.AddProject(acc, needed);
        acc_schema = needed;
      }
    }
  }
  if (!(acc_schema == x)) p.AddProject(acc, x);
}

}  // namespace

Program FullJoinProgram(const DatabaseSchema& d, const AttrSet& x) {
  GYO_CHECK(!d.Empty());
  Program p(d.NumRelations());
  int acc = 0;
  for (int i = 1; i < d.NumRelations(); ++i) acc = p.AddJoin(acc, i);
  p.AddProject(acc, x);
  return p;
}

Program CCPrunedProgram(const DatabaseSchema& d, const AttrSet& x) {
  GYO_CHECK(!d.Empty());
  CanonicalResult cc = CanonicalConnection(d, x);
  Program p(d.NumRelations());
  std::vector<int> ids;
  for (int i = 0; i < cc.schema.NumRelations(); ++i) {
    int src = cc.sources[static_cast<size_t>(i)];
    if (cc.schema[i] == d[src]) {
      ids.push_back(src);
    } else {
      ids.push_back(p.AddProject(src, cc.schema[i]));
    }
  }
  GYO_CHECK(!ids.empty());
  int acc = ids[0];
  AttrSet acc_schema = cc.schema[0];
  for (size_t i = 1; i < ids.size(); ++i) {
    acc = p.AddJoin(acc, ids[i]);
    acc_schema.UnionWith(cc.schema[static_cast<int>(i)]);
  }
  if (!(acc_schema == x) || p.NumStatements() == 0) p.AddProject(acc, x);
  return p;
}

std::optional<Program> YannakakisProgram(const DatabaseSchema& d,
                                         const AttrSet& x,
                                         const YannakakisOptions& options) {
  GYO_CHECK(!d.Empty());
  std::optional<QualGraph> tree = BuildJoinTree(d);
  if (!tree.has_value()) return std::nullopt;
  Program p(d.NumRelations());
  std::vector<int> ids(static_cast<size_t>(d.NumRelations()));
  std::vector<AttrSet> schemas(static_cast<size_t>(d.NumRelations()));
  for (int i = 0; i < d.NumRelations(); ++i) {
    ids[static_cast<size_t>(i)] = i;
    schemas[static_cast<size_t>(i)] = d[i];
  }
  AppendReduceAndJoin(p, *tree, ids, schemas, x, options.full_reduce,
                      options.early_project);
  if (p.NumStatements() == 0) p.AddProject(ids[0], x);
  return p;
}

std::optional<FullReducerPlan> FullReducerProgram(const DatabaseSchema& d) {
  std::optional<QualGraph> tree = BuildJoinTree(d);
  if (!tree.has_value()) return std::nullopt;
  const int n = d.NumRelations();
  FullReducerPlan plan{Program(n), std::vector<int>(static_cast<size_t>(n))};
  std::vector<int>& ids = plan.final_ids;
  for (int i = 0; i < n; ++i) ids[static_cast<size_t>(i)] = i;
  // Upward pass: children (removed first) reduce their parents...
  for (const auto& [child, parent] : tree->edges) {
    ids[static_cast<size_t>(parent)] =
        plan.program.AddSemijoin(ids[static_cast<size_t>(parent)],
                                 ids[static_cast<size_t>(child)]);
  }
  // ...then the downward pass propagates the root's state back out.
  for (auto it = tree->edges.rbegin(); it != tree->edges.rend(); ++it) {
    ids[static_cast<size_t>(it->first)] = plan.program.AddSemijoin(
        ids[static_cast<size_t>(it->first)],
        ids[static_cast<size_t>(it->second)]);
  }
  return plan;
}

SemijoinRound SemijoinRoundProgram(const DatabaseSchema& d) {
  const int n = d.NumRelations();
  SemijoinRound round{Program(n), std::vector<int>(static_cast<size_t>(n))};
  for (int i = 0; i < n; ++i) {
    int acc = i;
    for (int j = 0; j < n; ++j) {
      if (i == j || !d[i].Intersects(d[j])) continue;
      // The rhs is always the base id j — the round-start state — so every
      // chain is independent of every other chain's results (a Jacobi
      // round): the only statement-to-statement edges are within one chain.
      acc = round.program.AddSemijoin(acc, j);
    }
    round.chain_ids[static_cast<size_t>(i)] = acc;
  }
  return round;
}

std::optional<Program> TreeProjectionProgram(const DatabaseSchema& d,
                                             const AttrSet& x,
                                             const DatabaseSchema& bags) {
  GYO_CHECK(!d.Empty());
  GYO_CHECK(!bags.Empty());
  // Every base relation and the target must fit in some bag.
  DatabaseSchema to_cover = d;
  to_cover.Add(x);
  if (!to_cover.CoveredBy(bags)) return std::nullopt;
  std::optional<QualGraph> tree = BuildJoinTree(bags);
  if (!tree.has_value()) return std::nullopt;

  const int nb = bags.NumRelations();
  // Host lists: greedily cover each bag's attributes with base relations.
  std::vector<std::vector<int>> hosts(static_cast<size_t>(nb));
  for (int v = 0; v < nb; ++v) {
    AttrSet covered;
    bags[v].ForEach([&](AttrId a) {
      if (covered.Contains(a)) return;
      for (int r = 0; r < d.NumRelations(); ++r) {
        if (d[r].Contains(a)) {
          hosts[static_cast<size_t>(v)].push_back(r);
          covered.UnionWith(d[r]);
          return;
        }
      }
      GYO_CHECK_MSG(false, "bag attribute %d not in any base relation", a);
    });
  }
  // Fold every base relation into the host join of a bag containing it, so
  // its constraint is enforced somewhere.
  for (int r = 0; r < d.NumRelations(); ++r) {
    int bag = -1;
    for (int v = 0; v < nb && bag < 0; ++v) {
      if (d[r].IsSubsetOf(bags[v])) bag = v;
    }
    GYO_CHECK(bag >= 0);
    auto& h = hosts[static_cast<size_t>(bag)];
    if (std::find(h.begin(), h.end(), r) == h.end()) h.push_back(r);
  }

  Program p(d.NumRelations());
  std::vector<int> bag_ids(static_cast<size_t>(nb));
  std::vector<AttrSet> bag_schemas(static_cast<size_t>(nb));
  for (int v = 0; v < nb; ++v) {
    std::vector<int> h = hosts[static_cast<size_t>(v)];
    GYO_CHECK(!h.empty());
    // Join connected hosts first so no avoidable Cartesian product appears
    // inside a bag.
    std::vector<int> order = {h[0]};
    std::vector<bool> used(h.size(), false);
    used[0] = true;
    AttrSet reach = d[h[0]];
    while (order.size() < h.size()) {
      size_t pick = h.size();
      for (size_t i = 0; i < h.size(); ++i) {
        if (!used[i] && d[h[i]].Intersects(reach)) {
          pick = i;
          break;
        }
      }
      if (pick == h.size()) {
        for (size_t i = 0; i < h.size(); ++i) {
          if (!used[i]) {
            pick = i;
            break;
          }
        }
      }
      used[pick] = true;
      order.push_back(h[pick]);
      reach.UnionWith(d[h[pick]]);
    }
    int acc = order[0];
    AttrSet acc_schema = d[order[0]];
    for (size_t i = 1; i < order.size(); ++i) {
      acc = p.AddJoin(acc, order[i]);
      acc_schema.UnionWith(d[order[i]]);
    }
    if (!(acc_schema == bags[v])) {
      acc = p.AddProject(acc, bags[v]);
    }
    bag_ids[static_cast<size_t>(v)] = acc;
    bag_schemas[static_cast<size_t>(v)] = bags[v];
  }
  AppendReduceAndJoin(p, *tree, bag_ids, bag_schemas, x,
                      /*full_reduce=*/true, /*early_project=*/true);
  if (p.NumStatements() == 0) p.AddProject(bag_ids[0], x);
  return p;
}

}  // namespace gyo
