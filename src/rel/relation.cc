#include "rel/relation.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace gyo {

int Relation::ColIndex(AttrId attr) const {
  auto it = std::lower_bound(attrs_.begin(), attrs_.end(), attr);
  GYO_CHECK_MSG(it != attrs_.end() && *it == attr,
                "attribute %d not in relation schema", attr);
  return static_cast<int>(it - attrs_.begin());
}

void Relation::Canonicalize() {
  if (canonical_) return;
  if (stride_ == 0) {
    // Arity-0 relations are TRUE (one empty tuple) or FALSE (none).
    num_rows_ = num_rows_ > 0 ? 1 : 0;
    canonical_ = true;
    return;
  }
  const Value* base = data_.data();
  const size_t k = stride_;
  std::vector<int64_t> order(static_cast<size_t>(num_rows_));
  std::iota(order.begin(), order.end(), int64_t{0});
  std::sort(order.begin(), order.end(), [base, k](int64_t a, int64_t b) {
    const Value* pa = base + static_cast<size_t>(a) * k;
    const Value* pb = base + static_cast<size_t>(b) * k;
    return std::lexicographical_compare(pa, pa + k, pb, pb + k);
  });
  // Single gather pass applies the permutation and drops duplicates.
  std::vector<Value> sorted;
  sorted.reserve(data_.size());
  for (int64_t idx : order) {
    const Value* row = base + static_cast<size_t>(idx) * k;
    if (!sorted.empty() &&
        std::equal(row, row + k, sorted.data() + sorted.size() - k)) {
      continue;
    }
    sorted.insert(sorted.end(), row, row + k);
  }
  data_ = std::move(sorted);
  num_rows_ = static_cast<int64_t>(data_.size() / k);
  canonical_ = true;
}

bool Relation::CheckCanonical() const {
  if (stride_ == 0) return num_rows_ <= 1;
  const size_t k = stride_;
  for (int64_t i = 0; i + 1 < num_rows_; ++i) {
    const Value* a = data_.data() + static_cast<size_t>(i) * k;
    const Value* b = a + k;
    if (!std::lexicographical_compare(a, a + k, b, b + k)) return false;
  }
  return true;
}

void Relation::EnsureCanonical() const {
  const_cast<Relation*>(this)->Canonicalize();
}

bool Relation::EqualsAsSet(const Relation& other) const {
  if (!(schema_ == other.schema_)) return false;
  EnsureCanonical();
  other.EnsureCanonical();
  return num_rows_ == other.num_rows_ && data_ == other.data_;
}

std::string Relation::Format(const Catalog& catalog, int max_rows) const {
  std::string out = catalog.Format(schema_) + " (" +
                    std::to_string(NumRows()) + " rows)\n";
  int shown = 0;
  for (RowRef row : Rows()) {
    if (shown++ == max_rows) {
      out += "  ...\n";
      break;
    }
    out += " ";
    for (Value v : row) out += " " + std::to_string(v);
    out += "\n";
  }
  return out;
}

}  // namespace gyo
