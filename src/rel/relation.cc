#include "rel/relation.h"

#include <algorithm>

#include "util/check.h"

namespace gyo {

void Relation::AddRow(std::vector<Value> row) {
  GYO_CHECK_MSG(static_cast<int>(row.size()) == Arity(),
                "row arity mismatch: got %zu, want %d", row.size(), Arity());
  rows_.push_back(std::move(row));
}

int Relation::ColIndex(AttrId attr) const {
  auto it = std::lower_bound(attrs_.begin(), attrs_.end(), attr);
  GYO_CHECK_MSG(it != attrs_.end() && *it == attr,
                "attribute %d not in relation schema", attr);
  return static_cast<int>(it - attrs_.begin());
}

void Relation::Canonicalize() {
  std::sort(rows_.begin(), rows_.end());
  rows_.erase(std::unique(rows_.begin(), rows_.end()), rows_.end());
}

bool Relation::EqualsAsSet(const Relation& other) const {
  if (!(schema_ == other.schema_)) return false;
  GYO_DCHECK(std::is_sorted(rows_.begin(), rows_.end()));
  GYO_DCHECK(std::is_sorted(other.rows_.begin(), other.rows_.end()));
  return rows_ == other.rows_;
}

std::string Relation::Format(const Catalog& catalog, int max_rows) const {
  std::string out = catalog.Format(schema_) + " (" +
                    std::to_string(NumRows()) + " rows)\n";
  int shown = 0;
  for (const auto& row : rows_) {
    if (shown++ == max_rows) {
      out += "  ...\n";
      break;
    }
    out += " ";
    for (Value v : row) out += " " + std::to_string(v);
    out += "\n";
  }
  return out;
}

}  // namespace gyo
