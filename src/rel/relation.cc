#include "rel/relation.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace gyo {

int Relation::ColIndex(AttrId attr) const {
  auto it = std::lower_bound(attrs_.begin(), attrs_.end(), attr);
  GYO_CHECK_MSG(it != attrs_.end() && *it == attr,
                "attribute %d not in relation schema", attr);
  return static_cast<int>(it - attrs_.begin());
}

bool Relation::RowLess(int64_t a, int64_t b) const {
  for (const std::vector<Value>& col : cols_) {
    const Value va = col[static_cast<size_t>(a)];
    const Value vb = col[static_cast<size_t>(b)];
    if (va != vb) return va < vb;
  }
  return false;
}

bool Relation::RowEq(int64_t a, int64_t b) const {
  for (const std::vector<Value>& col : cols_) {
    if (col[static_cast<size_t>(a)] != col[static_cast<size_t>(b)]) {
      return false;
    }
  }
  return true;
}

void Relation::RecomputeZones() const {
  for (size_t c = 0; c < cols_.size(); ++c) {
    const std::vector<Value>& col = cols_[c];
    Value lo = col[0], hi = col[0];
    for (int64_t i = 1; i < num_rows_; ++i) {
      const Value v = col[static_cast<size_t>(i)];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    zone_min_[c] = lo;
    zone_max_[c] = hi;
  }
  zones_valid_ = true;
}

void Relation::Canonicalize() {
  if (canonical_) return;
  if (cols_.empty()) {
    // Arity-0 relations are TRUE (one empty tuple) or FALSE (none).
    num_rows_ = num_rows_ > 0 ? 1 : 0;
    canonical_ = true;
    zones_valid_ = true;  // trivially: no columns to map
    return;
  }
  std::vector<int64_t> order(static_cast<size_t>(num_rows_));
  std::iota(order.begin(), order.end(), int64_t{0});
  std::sort(order.begin(), order.end(),
            [this](int64_t a, int64_t b) { return RowLess(a, b); });
  // Drop adjacent duplicates from the permutation, then gather each column
  // through the surviving row ids in one contiguous pass.
  std::vector<int64_t> keep;
  keep.reserve(order.size());
  for (int64_t idx : order) {
    if (!keep.empty() && RowEq(keep.back(), idx)) continue;
    keep.push_back(idx);
  }
  for (std::vector<Value>& col : cols_) {
    std::vector<Value> sorted;
    sorted.reserve(keep.size());
    for (int64_t idx : keep) sorted.push_back(col[static_cast<size_t>(idx)]);
    col = std::move(sorted);
  }
  num_rows_ = static_cast<int64_t>(keep.size());
  canonical_ = true;
  if (!zones_valid_ && num_rows_ > 0) RecomputeZones();
  if (num_rows_ == 0) zones_valid_ = true;  // vacuously current
}

bool Relation::CheckCanonical() const {
  if (cols_.empty()) return num_rows_ <= 1;
  for (int64_t i = 0; i + 1 < num_rows_; ++i) {
    if (!RowLess(i, i + 1)) return false;
  }
  return true;
}

void Relation::EnsureCanonical() const {
  const_cast<Relation*>(this)->Canonicalize();
}

bool Relation::EqualsAsSet(const Relation& other) const {
  if (!(schema_ == other.schema_)) return false;
  EnsureCanonical();
  other.EnsureCanonical();
  return num_rows_ == other.num_rows_ && cols_ == other.cols_;
}

std::string Relation::Format(const Catalog& catalog, int max_rows) const {
  std::string out = catalog.Format(schema_) + " (" +
                    std::to_string(NumRows()) + " rows)\n";
  int shown = 0;
  for (RowRef row : Rows()) {
    if (shown++ == max_rows) {
      out += "  ...\n";
      break;
    }
    out += " ";
    for (Value v : row) out += " " + std::to_string(v);
    out += "\n";
  }
  return out;
}

}  // namespace gyo
