#ifndef GYO_REL_SIMD_H_
#define GYO_REL_SIMD_H_

#include <cstdint>
#include <cstring>

/// Explicit vectorization for the kernel hot loops (rel/ops.cc): the FNV-1a
/// fold sweeps of HashColumns and the per-column gather behind every
/// compaction pass. Three compile-time tiers, widest available wins:
///
///   1. GCC/Clang vector extensions (4 × u64 lanes) for the streaming
///      sweeps — element-wise xor/multiply/shift are defined per lane, so
///      the results are BIT-IDENTICAL to the scalar loops (bucket chains,
///      Bloom bits, and output orders depend on the exact hash values).
///   2. An AVX2 hardware gather for Gather64 where __AVX2__ is set (the
///      vector extensions cannot express an indexed load).
///   3. Scalar fallbacks everywhere else — and everywhere when the build
///      sets GYO_DISABLE_SIMD (CMake option of the same name), the
///      configuration CI proves green so the portable path cannot rot.
///
/// Unaligned data is the norm (arena offsets are arbitrary), so all vector
/// loads/stores go through memcpy, which the compilers fold into unaligned
/// vector moves.

#if !defined(GYO_DISABLE_SIMD) && (defined(__GNUC__) || defined(__clang__))
#define GYO_SIMD_VECTOR_EXT 1
#endif

#if !defined(GYO_DISABLE_SIMD) && defined(__AVX2__)
#include <immintrin.h>
#define GYO_SIMD_AVX2_GATHER 1
#endif

namespace gyo {
namespace simd {

#if defined(GYO_SIMD_VECTOR_EXT)

// The 32-byte vectors below never cross a translation-unit boundary — every
// helper is inline and the vectors live in registers or on the local stack —
// so GCC's psabi note about their call ABI without -mavx is moot. Without
// AVX the compiler splits each 4-lane op into two 16-byte SSE ops, still
// lane-exact.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"
#endif

typedef uint64_t VecU64 __attribute__((vector_size(32)));
constexpr int64_t kVecLanes = 4;

inline VecU64 LoadU(const void* p) {
  VecU64 v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void StoreU(void* p, VecU64 v) { std::memcpy(p, &v, sizeof(v)); }

#endif  // GYO_SIMD_VECTOR_EXT

/// out[0 .. n) = v — the hash-seed broadcast.
inline void FillU64(uint64_t* out, int64_t n, uint64_t v) {
  int64_t i = 0;
#if defined(GYO_SIMD_VECTOR_EXT)
  const VecU64 vv = {v, v, v, v};
  for (; i + kVecLanes <= n; i += kVecLanes) StoreU(out + i, vv);
#endif
  for (; i < n; ++i) out[i] = v;
}

/// out[i] = (out[i] ^ uint64(in[i])) * mul for i in [0, n) — one FNV-1a
/// fold pass over a key column. `in` is the signed arena type; the cast to
/// unsigned is the two's-complement bit pattern, so loading the bits
/// directly (vector path) and static_cast (scalar path) agree exactly.
inline void XorMulU64(uint64_t* out, const int64_t* in, int64_t n,
                      uint64_t mul) {
  int64_t i = 0;
#if defined(GYO_SIMD_VECTOR_EXT)
  const VecU64 vmul = {mul, mul, mul, mul};
  for (; i + kVecLanes <= n; i += kVecLanes) {
    StoreU(out + i, (LoadU(out + i) ^ LoadU(in + i)) * vmul);
  }
#endif
  for (; i < n; ++i) {
    out[i] = (out[i] ^ static_cast<uint64_t>(in[i])) * mul;
  }
}

/// Murmur3-style 64-bit finalizer applied to h[0 .. n) in place. Lane
/// shifts on unsigned vectors are logical shifts, so every lane computes
/// exactly the scalar AvalancheMix.
inline void AvalancheSweep(uint64_t* h, int64_t n) {
  constexpr uint64_t kMul1 = 0xff51afd7ed558ccdull;
  constexpr uint64_t kMul2 = 0xc4ceb9fe1a85ec53ull;
  int64_t i = 0;
#if defined(GYO_SIMD_VECTOR_EXT)
  const VecU64 vm1 = {kMul1, kMul1, kMul1, kMul1};
  const VecU64 vm2 = {kMul2, kMul2, kMul2, kMul2};
  for (; i + kVecLanes <= n; i += kVecLanes) {
    VecU64 v = LoadU(h + i);
    v ^= v >> 33;
    v *= vm1;
    v ^= v >> 33;
    v *= vm2;
    v ^= v >> 33;
    StoreU(h + i, v);
  }
#endif
  for (; i < n; ++i) {
    uint64_t x = h[i];
    x ^= x >> 33;
    x *= kMul1;
    x ^= x >> 33;
    x *= kMul2;
    x ^= x >> 33;
    h[i] = x;
  }
}

/// dst[t] = src[ids[t]] for t in [0, n) — the per-column gather every
/// compaction/output pass is built from. Order-preserving by construction
/// on every tier (the AVX2 gather reads and writes lanes in index order).
inline void Gather64(const int64_t* src, const int64_t* ids, int64_t n,
                     int64_t* dst) {
  int64_t t = 0;
#if defined(GYO_SIMD_AVX2_GATHER)
  for (; t + 4 <= n; t += 4) {
    __m256i vidx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + t));
    __m256i v = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(src), vidx, 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + t), v);
  }
#endif
  for (; t < n; ++t) dst[t] = src[ids[t]];
}

#if defined(GYO_SIMD_VECTOR_EXT) && defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace simd
}  // namespace gyo

#endif  // GYO_REL_SIMD_H_
