#ifndef GYO_REL_OPS_H_
#define GYO_REL_OPS_H_

#include <cstdint>

#include "rel/relation.h"
#include "util/attr_set.h"

namespace gyo {

namespace exec {
class TaskScheduler;
}  // namespace exec

/// Relational algebra operators (paper §2 notation).
///
/// Contract: inputs must be duplicate-free (canonical relations and operator
/// outputs both qualify; after hand-built AddRow sequences call
/// Canonicalize() first). All results are duplicate-free, so NumRows() is a
/// set cardinality — but they are NOT necessarily sorted: canonical form is
/// established lazily (EqualsAsSet() canonicalizes on demand). Semijoin is
/// the exception: it selects a subsequence of its left input, so a canonical
/// input yields a canonical output.

/// Execution options threaded through the kernels by the exec runtime
/// (exec/physical_plan.h). Default-constructed options run the serial
/// engine. With a scheduler attached and a probe side larger than one
/// morsel, the kernels switch to their parallel form: a hash-partitioned
/// build (partitions built concurrently from a shared precomputed-hash
/// array) plus a morsel-driven probe over row-range slices of the input
/// arena, each morsel appending into a local buffer that a final compaction
/// pass memcpys into the output arena.
struct OpExecOpts {
  /// Pool to fan morsels out on; nullptr (or a 1-thread pool) = serial.
  exec::TaskScheduler* scheduler = nullptr;
  /// Probe rows per morsel. Inputs of at most this many rows run serially.
  int64_t morsel_rows = 2048;
  /// When true, morsel outputs merge in morsel order and every result is
  /// bit-identical (row order and canonical flag included) to the serial
  /// kernel's. When false, morsels merge in completion order: the same set
  /// of rows in unspecified physical order, and Semijoin does not propagate
  /// canonical form.
  bool deterministic = true;
};

/// π_X(r): projection onto X. Requires X ⊆ r.Schema(). Output deduplicated
/// via hashing (unsorted).
Relation Project(const Relation& r, const AttrSet& x);
Relation Project(const Relation& r, const AttrSet& x, const OpExecOpts& opts);

/// r ⋈ s: natural join (hash join keyed on in-place column slices of the
/// common attributes; a Cartesian product when the schemas are disjoint).
Relation NaturalJoin(const Relation& r, const Relation& s);
Relation NaturalJoin(const Relation& r, const Relation& s,
                     const OpExecOpts& opts);

/// r ⋉ s: natural semijoin, π_R(r ⋈ s) computed without materializing the
/// join (membership probes + one compaction pass over a selection vector).
/// Canonical input r gives canonical output (serial and deterministic
/// parallel forms).
Relation Semijoin(const Relation& r, const Relation& s);
Relation Semijoin(const Relation& r, const Relation& s,
                  const OpExecOpts& opts);

/// ⋈ of a non-empty list of relations, left to right.
Relation JoinAll(const std::vector<Relation>& relations);

}  // namespace gyo

#endif  // GYO_REL_OPS_H_
