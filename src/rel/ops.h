#ifndef GYO_REL_OPS_H_
#define GYO_REL_OPS_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "rel/relation.h"
#include "util/attr_set.h"

namespace gyo {

namespace exec {
class TaskScheduler;
struct StealStats;
}  // namespace exec

class BloomFilter;

/// Relational algebra operators (paper §2 notation).
///
/// Contract: inputs must be duplicate-free (canonical relations and operator
/// outputs both qualify; after hand-built AddRow sequences call
/// Canonicalize() first). All results are duplicate-free, so NumRows() is a
/// set cardinality — but they are NOT necessarily sorted: canonical form is
/// established lazily (EqualsAsSet() canonicalizes on demand). Semijoin is
/// the exception: it selects a subsequence of its left input, so a canonical
/// input yields a canonical output (every Semijoin form — the parallel
/// probe-side-scattered kernel compacts survivors in row order regardless of
/// the determinism mode).

/// Execution options threaded through the kernels by the exec runtime
/// (exec/physical_plan.h). Default-constructed options run the serial
/// engine. With a scheduler attached and a probe side larger than one
/// morsel, the kernels switch to their parallel form: a radix-scatter
/// partitioned build (one counting pass + prefix-sum layout + one scatter
/// pass lay every row id into its hash partition's contiguous region, then
/// the partitions build concurrently from their own rows — O(n) total work,
/// with a per-partition Bloom filter filled from the same hash pass) plus a
/// morsel-driven probe over row ranges of the input columns, each morsel
/// collecting a selection/match vector that a final per-column gather pass
/// compacts into the output arenas. Project reuses the same scatter
/// structure for a partitioned cross-morsel dedupe (see ops.cc).
struct OpExecOpts {
  /// Pool to fan morsels out on; nullptr (or a 1-thread pool) = serial.
  exec::TaskScheduler* scheduler = nullptr;
  /// Probe rows per morsel. Inputs of at most this many rows run serially.
  /// 0 (the default) auto-tunes per kernel from the probe relation's arity
  /// via AutoMorselRows below.
  int64_t morsel_rows = 0;
  /// When true, morsel outputs merge in morsel order and every result is
  /// bit-identical (row order and canonical flag included) to the serial
  /// kernel's. When false, morsels merge in completion order: the same set
  /// of rows in unspecified physical order. (Semijoin and Project are
  /// order-preserving in both modes — their compactions gather survivors in
  /// input row order — so only NaturalJoin's output order depends on this.)
  bool deterministic = true;
  /// When non-null, the kernels add every data morsel they dispatch
  /// (hash-build and probe passes) — the ExecutorPool's per-query
  /// QueryStats::morsels feed.
  std::atomic<int64_t>* morsel_counter = nullptr;
  /// When non-null, probe rows whose key hash a partition Bloom filter
  /// rejects (parallel partitioned builds only) are tallied here — the
  /// QueryStats::bloom_partition_skips feed.
  std::atomic<int64_t>* bloom_skip_counter = nullptr;
  /// When non-null, every probe row a Bloom filter prunes before any
  /// bucket-chain walk (serial single-filter and parallel per-partition
  /// rejections alike) is tallied here — the QueryStats::probe_rows_pruned
  /// feed.
  std::atomic<int64_t>* probe_prune_counter = nullptr;
  /// When non-null, the kernels' parallel loops tally work stealing and
  /// partition-affinity hits/misses here (the QueryStats::tasks_stolen /
  /// affinity_* feeds). Purely observational — placement never changes
  /// results. Shared ownership: queued jobs co-own the counters, so a job
  /// drained after the owning query finished never dangles.
  std::shared_ptr<exec::StealStats> steal_stats;
  /// Sideways-information-passing filters (exec/physical_plan.cc): Bloom
  /// filters built over a LATER chain statement's build side, keyed on the
  /// same attributes (in the same sorted order) as this Semijoin's probe
  /// hash. The probe loops test every filter before their own Bloom/chain
  /// work; a rejection proves the row dies downstream anyway, so pruning it
  /// here never changes the final states (no false negatives). Consulted by
  /// Semijoin only; nullptr (the default) disables SIP.
  const std::vector<const BloomFilter*>* sip_filters = nullptr;
  /// When non-null, probe rows a SIP filter rejects are tallied here — the
  /// QueryStats::sip_rows_pruned feed (separate from probe_rows_pruned,
  /// which stays the kernel's OWN Bloom pruning).
  std::atomic<int64_t>* sip_prune_counter = nullptr;
  /// When non-null, probe rows skipped by a zone-map disjointness proof
  /// (Semijoin key ranges that cannot overlap skip the whole probe) are
  /// tallied here — the QueryStats::zone_map_skips feed.
  std::atomic<int64_t>* zone_skip_counter = nullptr;
};

/// Morsel-size auto-tuning (used when OpExecOpts/ExecContext leave
/// morsel_rows at 0): rows per morsel for a relation of `arity`, sized so
/// one morsel's values span ~kMorselTargetBytes — a quarter of a typical
/// 1 MiB per-core L2, leaving headroom for the build side and the morsel's
/// output buffer — clamped to [kMinMorselRows, kMaxMorselRows] so tiny
/// arities don't defeat dispatch amortization and huge ones still split.
constexpr int64_t kMorselTargetBytes = 256 * 1024;
constexpr int64_t kMinMorselRows = 256;
constexpr int64_t kMaxMorselRows = 1 << 16;

constexpr int64_t AutoMorselRows(int arity) {
  return std::max(kMinMorselRows,
                  std::min(kMaxMorselRows,
                           kMorselTargetBytes /
                               (static_cast<int64_t>(arity < 1 ? 1 : arity) *
                                static_cast<int64_t>(sizeof(Value)))));
}

/// Build-side hash partitioning: the parallel kernels split a hash build
/// into 2^bits partitions, where partition p owns the rows whose key hash
/// has p in its top bits (bucket chains use the low bits, so the two
/// selections stay independent). PartitionBits gives the pool-width floor:
/// clamped to [0, kMaxPartitionBits], threads <= 1 (including 0 and negative
/// values from misconfigured callers) means one partition, and huge thread
/// counts stop at 64 partitions — beyond that the per-partition task
/// bookkeeping outweighs the extra build parallelism.
constexpr int kMaxPartitionBits = 6;

constexpr int PartitionBits(int threads) {
  int bits = 0;
  while ((1 << bits) < threads && bits < kMaxPartitionBits) ++bits;
  return bits;
}

/// Adaptive partition count: the parallel builds start from the pool-width
/// floor and add bits until each partition's expected build share drops to
/// at most kPartitionTargetBuildRows rows (~128 KiB of bucket heads plus
/// entries — cache-resident), still clamped to kMaxPartitionBits. Large
/// builds on narrow pools thus get more, smaller partitions than the pool
/// width alone would pick; small builds are unaffected.
constexpr int64_t kPartitionTargetBuildRows = int64_t{1} << 14;

constexpr int PartitionBitsForBuild(int threads, int64_t build_rows) {
  int bits = PartitionBits(threads);
  while (bits < kMaxPartitionBits &&
         (build_rows >> bits) > kPartitionTargetBuildRows) {
    ++bits;
  }
  return bits;
}

constexpr size_t PartitionOf(uint64_t h, int bits) {
  return bits == 0 ? 0 : static_cast<size_t>(h >> (64 - bits));
}

/// Probe-side scatter chunking: the chunk size for splitting one partition
/// of `part_rows` probe rows into parallel tasks, given the configured
/// morsel size. Chunks never span a partition boundary (the partition is
/// split on its own), so each probe task walks exactly one cache-resident
/// partition; within the partition the rows are divided into
/// ceil(part_rows / morsel_rows) equal-ish chunks rather than
/// morsel_rows-sized chunks plus a remainder tail — the last task would
/// otherwise be arbitrarily small and dispatch overhead per partition would
/// spike at part_rows = k * morsel_rows + 1. The result is always in
/// [1, morsel_rows] for part_rows >= 1.
constexpr int64_t ClampMorselToPartition(int64_t morsel_rows,
                                         int64_t part_rows) {
  if (part_rows <= 0) return morsel_rows < 1 ? 1 : morsel_rows;
  if (morsel_rows < 1) return 1;
  const int64_t chunks = (part_rows + morsel_rows - 1) / morsel_rows;
  return (part_rows + chunks - 1) / chunks;
}

/// Bloom filter over 64-bit key hashes: a power-of-two bit array with two
/// probe positions per key (the low and high halves of the hash), sized at
/// ~kBloomBitsPerKey bits per expected key. Add() sets both probe bits, so
/// MaybeContains() has NO false negatives — a Bloom rejection can only skip
/// probe rows that would have found no match, which is why the filtered
/// kernels stay bit-identical to the unfiltered ones. Builds smaller than
/// kMinBloomBuildRows skip the filter entirely: the chain walk is already
/// cache-resident and the extra branch costs more than it saves.
constexpr int kBloomBitsPerKey = 8;
constexpr int64_t kMinBloomBuildRows = 64;

class BloomFilter {
 public:
  /// A disabled filter: MaybeContains() must not be called.
  BloomFilter() = default;

  /// An empty filter sized for `expected_keys` keys.
  explicit BloomFilter(int64_t expected_keys) {
    size_t bits = 128;
    const size_t want =
        static_cast<size_t>(expected_keys < 0 ? 0 : expected_keys) *
        static_cast<size_t>(kBloomBitsPerKey);
    while (bits < want) bits <<= 1;
    words_.assign(bits / 64, 0);
    mask_ = bits - 1;
  }

  bool enabled() const { return !words_.empty(); }

  void Add(uint64_t h) {
    SetBit(static_cast<size_t>(h) & mask_);
    SetBit(static_cast<size_t>(h >> 32) & mask_);
  }

  bool MaybeContains(uint64_t h) const {
    return GetBit(static_cast<size_t>(h) & mask_) &&
           GetBit(static_cast<size_t>(h >> 32) & mask_);
  }

 private:
  void SetBit(size_t b) { words_[b >> 6] |= uint64_t{1} << (b & 63); }
  bool GetBit(size_t b) const { return (words_[b >> 6] >> (b & 63)) & 1; }

  std::vector<uint64_t> words_;
  size_t mask_ = 0;
};

/// π_X(r): projection onto X. Requires X ⊆ r.Schema(). Output deduplicated
/// via hashing (unsorted).
Relation Project(const Relation& r, const AttrSet& x);
Relation Project(const Relation& r, const AttrSet& x, const OpExecOpts& opts);

/// r ⋈ s: natural join (hash join keyed on the common attributes' columns,
/// hashed column-at-a-time; a Cartesian product when the schemas are
/// disjoint).
Relation NaturalJoin(const Relation& r, const Relation& s);
Relation NaturalJoin(const Relation& r, const Relation& s,
                     const OpExecOpts& opts);

/// r ⋉ s: natural semijoin, π_R(r ⋈ s) computed without materializing the
/// join (membership probes + one per-column gather over a selection
/// vector). Canonical input r gives canonical output (every form: the
/// parallel kernel compacts survivors in row order in both determinism
/// modes).
Relation Semijoin(const Relation& r, const Relation& s);
Relation Semijoin(const Relation& r, const Relation& s,
                  const OpExecOpts& opts);

/// ⋈ of a non-empty list of relations, left to right.
Relation JoinAll(const std::vector<Relation>& relations);

/// Builds the SIP publish-side Bloom filter: every row of `rel` hashed over
/// key columns `cols` (column-at-a-time, the kernels' hash — callers must
/// list `cols` in increasing attribute-id order so the hash matches the
/// consumer's probe hash over the same attributes). Built unconditionally —
/// no kMinBloomBuildRows gate — because a SIP filter's payoff is decided by
/// the CONSUMER's probe size, not this build's; an empty `rel` yields a
/// filter that rejects every probe (correct: a later semijoin against an
/// empty state eliminates everything).
BloomFilter BuildSipFilter(const Relation& rel, const std::vector<int>& cols);

}  // namespace gyo

#endif  // GYO_REL_OPS_H_
