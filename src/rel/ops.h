#ifndef GYO_REL_OPS_H_
#define GYO_REL_OPS_H_

#include "rel/relation.h"
#include "util/attr_set.h"

namespace gyo {

/// Relational algebra operators (paper §2 notation).
///
/// Contract: inputs must be duplicate-free (canonical relations and operator
/// outputs both qualify; after hand-built AddRow sequences call
/// Canonicalize() first). All results are duplicate-free, so NumRows() is a
/// set cardinality — but they are NOT necessarily sorted: canonical form is
/// established lazily (EqualsAsSet() canonicalizes on demand). Semijoin is
/// the exception: it selects a subsequence of its left input, so a canonical
/// input yields a canonical output.

/// π_X(r): projection onto X. Requires X ⊆ r.Schema(). Output deduplicated
/// via hashing (unsorted).
Relation Project(const Relation& r, const AttrSet& x);

/// r ⋈ s: natural join (hash join keyed on in-place column slices of the
/// common attributes; a Cartesian product when the schemas are disjoint).
Relation NaturalJoin(const Relation& r, const Relation& s);

/// r ⋉ s: natural semijoin, π_R(r ⋈ s) computed without materializing the
/// join (membership probes + one compaction pass over a selection vector).
/// Canonical input r gives canonical output.
Relation Semijoin(const Relation& r, const Relation& s);

/// ⋈ of a non-empty list of relations, left to right.
Relation JoinAll(const std::vector<Relation>& relations);

}  // namespace gyo

#endif  // GYO_REL_OPS_H_
