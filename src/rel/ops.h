#ifndef GYO_REL_OPS_H_
#define GYO_REL_OPS_H_

#include "rel/relation.h"
#include "util/attr_set.h"

namespace gyo {

/// Relational algebra operators (paper §2 notation). All results are
/// canonicalized (sorted, duplicate-free).

/// π_X(r): projection onto X. Requires X ⊆ r.Schema().
Relation Project(const Relation& r, const AttrSet& x);

/// r ⋈ s: natural join (hash join on the common attributes; a Cartesian
/// product when the schemas are disjoint).
Relation NaturalJoin(const Relation& r, const Relation& s);

/// r ⋉ s: natural semijoin, π_R(r ⋈ s) computed without materializing the
/// join.
Relation Semijoin(const Relation& r, const Relation& s);

/// ⋈ of a non-empty list of relations, left to right.
Relation JoinAll(const std::vector<Relation>& relations);

}  // namespace gyo

#endif  // GYO_REL_OPS_H_
