#ifndef GYO_REL_OPS_H_
#define GYO_REL_OPS_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>

#include "rel/relation.h"
#include "util/attr_set.h"

namespace gyo {

namespace exec {
class TaskScheduler;
}  // namespace exec

/// Relational algebra operators (paper §2 notation).
///
/// Contract: inputs must be duplicate-free (canonical relations and operator
/// outputs both qualify; after hand-built AddRow sequences call
/// Canonicalize() first). All results are duplicate-free, so NumRows() is a
/// set cardinality — but they are NOT necessarily sorted: canonical form is
/// established lazily (EqualsAsSet() canonicalizes on demand). Semijoin is
/// the exception: it selects a subsequence of its left input, so a canonical
/// input yields a canonical output.

/// Execution options threaded through the kernels by the exec runtime
/// (exec/physical_plan.h). Default-constructed options run the serial
/// engine. With a scheduler attached and a probe side larger than one
/// morsel, the kernels switch to their parallel form: a radix-scatter
/// partitioned build (one counting pass + prefix-sum layout + one scatter
/// pass lay every row id into its hash partition's contiguous region, then
/// the partitions build concurrently from their own rows — O(n) total work)
/// plus a morsel-driven probe over row-range slices of the input arena,
/// each morsel appending into a local buffer that a final compaction pass
/// memcpys into the output arena. Project reuses the same scatter structure
/// for a partitioned cross-morsel dedupe (see ops.cc).
struct OpExecOpts {
  /// Pool to fan morsels out on; nullptr (or a 1-thread pool) = serial.
  exec::TaskScheduler* scheduler = nullptr;
  /// Probe rows per morsel. Inputs of at most this many rows run serially.
  /// 0 (the default) auto-tunes per kernel from the probe relation's arity
  /// via AutoMorselRows below.
  int64_t morsel_rows = 0;
  /// When true, morsel outputs merge in morsel order and every result is
  /// bit-identical (row order and canonical flag included) to the serial
  /// kernel's. When false, morsels merge in completion order: the same set
  /// of rows in unspecified physical order, and Semijoin does not propagate
  /// canonical form.
  bool deterministic = true;
  /// When non-null, the kernels add every data morsel they dispatch
  /// (hash-build and probe passes) — the ExecutorPool's per-query
  /// QueryStats::morsels feed.
  std::atomic<int64_t>* morsel_counter = nullptr;
};

/// Morsel-size auto-tuning (used when OpExecOpts/ExecContext leave
/// morsel_rows at 0): rows per morsel for a relation of `arity`, sized so
/// one morsel's values span ~kMorselTargetBytes — a quarter of a typical
/// 1 MiB per-core L2, leaving headroom for the build side and the morsel's
/// output buffer — clamped to [kMinMorselRows, kMaxMorselRows] so tiny
/// arities don't defeat dispatch amortization and huge ones still split.
constexpr int64_t kMorselTargetBytes = 256 * 1024;
constexpr int64_t kMinMorselRows = 256;
constexpr int64_t kMaxMorselRows = 1 << 16;

constexpr int64_t AutoMorselRows(int arity) {
  return std::max(kMinMorselRows,
                  std::min(kMaxMorselRows,
                           kMorselTargetBytes /
                               (static_cast<int64_t>(arity < 1 ? 1 : arity) *
                                static_cast<int64_t>(sizeof(Value)))));
}

/// Build-side hash partitioning: the parallel kernels split a hash build
/// into 2^PartitionBits(threads) partitions, where partition p owns the rows
/// whose key hash has p in its top bits (bucket chains use the low bits, so
/// the two selections stay independent). Clamped to [0, kMaxPartitionBits]:
/// threads <= 1 (including 0 and negative values from misconfigured
/// callers) means one partition, and huge thread counts stop at 64
/// partitions — beyond that the per-partition task bookkeeping outweighs
/// the extra build parallelism.
constexpr int kMaxPartitionBits = 6;

constexpr int PartitionBits(int threads) {
  int bits = 0;
  while ((1 << bits) < threads && bits < kMaxPartitionBits) ++bits;
  return bits;
}

constexpr size_t PartitionOf(uint64_t h, int bits) {
  return bits == 0 ? 0 : static_cast<size_t>(h >> (64 - bits));
}

/// π_X(r): projection onto X. Requires X ⊆ r.Schema(). Output deduplicated
/// via hashing (unsorted).
Relation Project(const Relation& r, const AttrSet& x);
Relation Project(const Relation& r, const AttrSet& x, const OpExecOpts& opts);

/// r ⋈ s: natural join (hash join keyed on in-place column slices of the
/// common attributes; a Cartesian product when the schemas are disjoint).
Relation NaturalJoin(const Relation& r, const Relation& s);
Relation NaturalJoin(const Relation& r, const Relation& s,
                     const OpExecOpts& opts);

/// r ⋉ s: natural semijoin, π_R(r ⋈ s) computed without materializing the
/// join (membership probes + one compaction pass over a selection vector).
/// Canonical input r gives canonical output (serial and deterministic
/// parallel forms).
Relation Semijoin(const Relation& r, const Relation& s);
Relation Semijoin(const Relation& r, const Relation& s,
                  const OpExecOpts& opts);

/// ⋈ of a non-empty list of relations, left to right.
Relation JoinAll(const std::vector<Relation>& relations);

}  // namespace gyo

#endif  // GYO_REL_OPS_H_
