#include "rel/universal.h"

#include "rel/ops.h"
#include "util/check.h"

namespace gyo {

Relation RandomUniversal(const AttrSet& universe, int num_rows, int domain,
                         Rng& rng) {
  GYO_CHECK(domain >= 1);
  Relation out(universe);
  const int arity = out.Arity();
  const int64_t first = out.AppendRows(num_rows);
  // Row-major draw order (all of row i before row i+1) keeps seeded data
  // identical across storage layouts; the writes scatter into the columns.
  for (int i = 0; i < num_rows; ++i) {
    for (int k = 0; k < arity; ++k) {
      out.ColData(k)[first + i] =
          static_cast<Value>(rng.Below(static_cast<uint64_t>(domain)));
    }
  }
  out.Canonicalize();
  return out;
}

std::vector<Relation> RandomStates(const DatabaseSchema& d, int num_rows,
                                   int domain, Rng& rng) {
  std::vector<Relation> out;
  out.reserve(static_cast<size_t>(d.NumRelations()));
  for (const RelationSchema& r : d.Relations()) {
    out.push_back(RandomUniversal(r, num_rows, domain, rng));
  }
  return out;
}

std::vector<Relation> ProjectDatabase(const Relation& universal,
                                      const DatabaseSchema& d) {
  std::vector<Relation> out;
  out.reserve(static_cast<size_t>(d.NumRelations()));
  for (const RelationSchema& r : d.Relations()) {
    out.push_back(Project(universal, r));
  }
  return out;
}

Relation EvaluateJoinQuery(const DatabaseSchema& d, const AttrSet& x,
                           const std::vector<Relation>& states) {
  GYO_CHECK(static_cast<int>(states.size()) == d.NumRelations());
  GYO_CHECK(!states.empty());
  Relation joined = JoinAll(states);
  return Project(joined, x);
}

bool JdHolds(const Relation& universal, const DatabaseSchema& d) {
  AttrSet u = d.Universe();
  GYO_CHECK_MSG(u.IsSubsetOf(universal.Schema()),
                "U(D) must be within the universal relation's schema");
  Relation lhs = Project(universal, u);
  Relation rhs = JoinAll(ProjectDatabase(universal, d));
  return lhs.EqualsAsSet(rhs);
}

Relation RandomModelOfJd(const DatabaseSchema& d, int num_rows, int domain,
                         Rng& rng) {
  Relation seed = RandomUniversal(d.Universe(), num_rows, domain, rng);
  return JoinAll(ProjectDatabase(seed, d));
}

}  // namespace gyo
