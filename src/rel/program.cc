#include "rel/program.h"

#include <algorithm>

#include "rel/ops.h"
#include "rel/universal.h"
#include "util/check.h"

namespace gyo {

int Program::AddJoin(int lhs, int rhs) {
  GYO_CHECK(lhs >= 0 && lhs < NumRelations());
  GYO_CHECK(rhs >= 0 && rhs < NumRelations());
  statements_.push_back(Statement{Statement::Kind::kJoin, lhs, rhs, AttrSet()});
  return NumRelations() - 1;
}

int Program::AddSemijoin(int lhs, int rhs) {
  GYO_CHECK(lhs >= 0 && lhs < NumRelations());
  GYO_CHECK(rhs >= 0 && rhs < NumRelations());
  statements_.push_back(
      Statement{Statement::Kind::kSemijoin, lhs, rhs, AttrSet()});
  return NumRelations() - 1;
}

int Program::AddProject(int src, const AttrSet& target) {
  GYO_CHECK(src >= 0 && src < NumRelations());
  statements_.push_back(
      Statement{Statement::Kind::kProject, src, -1, target});
  return NumRelations() - 1;
}

int Program::NumJoins() const {
  int n = 0;
  for (const Statement& s : statements_) {
    if (s.kind == Statement::Kind::kJoin) ++n;
  }
  return n;
}

int Program::NumSemijoins() const {
  int n = 0;
  for (const Statement& s : statements_) {
    if (s.kind == Statement::Kind::kSemijoin) ++n;
  }
  return n;
}

int Program::NumProjects() const {
  int n = 0;
  for (const Statement& s : statements_) {
    if (s.kind == Statement::Kind::kProject) ++n;
  }
  return n;
}

DatabaseSchema Program::DerivedSchema(const DatabaseSchema& base) const {
  GYO_CHECK_MSG(base.NumRelations() == num_base_,
                "base schema has %d relations, program expects %d",
                base.NumRelations(), num_base_);
  DatabaseSchema out = base;
  for (const Statement& s : statements_) {
    switch (s.kind) {
      case Statement::Kind::kJoin:
        out.Add(out[s.lhs].Union(out[s.rhs]));
        break;
      case Statement::Kind::kSemijoin:
        out.Add(out[s.lhs]);
        break;
      case Statement::Kind::kProject:
        GYO_CHECK_MSG(s.target.IsSubsetOf(out[s.lhs]),
                      "projection target not within source schema");
        out.Add(s.target);
        break;
    }
  }
  return out;
}

std::vector<Relation> Program::Execute(const std::vector<Relation>& base) const {
  GYO_CHECK(static_cast<int>(base.size()) == num_base_);
  std::vector<Relation> states = base;
  states.reserve(static_cast<size_t>(NumRelations()));
  for (const Statement& s : statements_) {
    switch (s.kind) {
      case Statement::Kind::kJoin:
        states.push_back(NaturalJoin(states[static_cast<size_t>(s.lhs)],
                                     states[static_cast<size_t>(s.rhs)]));
        break;
      case Statement::Kind::kSemijoin:
        states.push_back(Semijoin(states[static_cast<size_t>(s.lhs)],
                                  states[static_cast<size_t>(s.rhs)]));
        break;
      case Statement::Kind::kProject:
        states.push_back(Project(states[static_cast<size_t>(s.lhs)], s.target));
        break;
    }
  }
  return states;
}

std::vector<Relation> Program::ExecuteWithStats(
    const std::vector<Relation>& base, Stats* stats) const {
  std::vector<Relation> states = Execute(base);
  if (stats != nullptr) {
    *stats = Stats();
    for (size_t i = static_cast<size_t>(num_base_); i < states.size(); ++i) {
      int64_t rows = states[i].NumRows();
      stats->max_intermediate_rows = std::max(stats->max_intermediate_rows,
                                              rows);
      stats->total_rows_produced += rows;
    }
    if (!statements_.empty()) stats->result_rows = states.back().NumRows();
  }
  return states;
}

Relation Program::Run(const std::vector<Relation>& base) const {
  GYO_CHECK_MSG(!statements_.empty(), "program has no statements");
  return Execute(base).back();
}

std::string Program::Format(const Catalog& catalog) const {
  std::string out;
  int next = num_base_;
  for (const Statement& s : statements_) {
    out += "R" + std::to_string(next++) + " := ";
    switch (s.kind) {
      case Statement::Kind::kJoin:
        out += "R" + std::to_string(s.lhs) + " join R" + std::to_string(s.rhs);
        break;
      case Statement::Kind::kSemijoin:
        out += "R" + std::to_string(s.lhs) + " semijoin R" +
               std::to_string(s.rhs);
        break;
      case Statement::Kind::kProject:
        out += "project[" + catalog.Format(s.target) + "](R" +
               std::to_string(s.lhs) + ")";
        break;
    }
    out += "\n";
  }
  return out;
}

bool SolvesQueryEmpirically(const Program& p, const DatabaseSchema& d,
                            const AttrSet& x, int trials, Rng& rng) {
  for (int t = 0; t < trials; ++t) {
    int rows = static_cast<int>(rng.Range(1, 40));
    int domain = static_cast<int>(rng.Range(2, 6));
    Relation universal = RandomUniversal(d.Universe(), rows, domain, rng);
    std::vector<Relation> states = ProjectDatabase(universal, d);
    Relation expected = EvaluateJoinQuery(d, x, states);
    Relation actual = p.Run(states);
    if (!actual.EqualsAsSet(expected)) return false;
  }
  return true;
}

}  // namespace gyo
