#include "rel/program.h"

#include <algorithm>
#include <utility>

#include "exec/physical_plan.h"
#include "rel/ops.h"
#include "rel/universal.h"
#include "util/check.h"

namespace gyo {

int Program::AddJoin(int lhs, int rhs) {
  GYO_CHECK(lhs >= 0 && lhs < NumRelations());
  GYO_CHECK(rhs >= 0 && rhs < NumRelations());
  statements_.push_back(Statement{Statement::Kind::kJoin, lhs, rhs, AttrSet()});
  return NumRelations() - 1;
}

int Program::AddSemijoin(int lhs, int rhs) {
  GYO_CHECK(lhs >= 0 && lhs < NumRelations());
  GYO_CHECK(rhs >= 0 && rhs < NumRelations());
  statements_.push_back(
      Statement{Statement::Kind::kSemijoin, lhs, rhs, AttrSet()});
  return NumRelations() - 1;
}

int Program::AddProject(int src, const AttrSet& target) {
  GYO_CHECK(src >= 0 && src < NumRelations());
  statements_.push_back(
      Statement{Statement::Kind::kProject, src, -1, target});
  return NumRelations() - 1;
}

int Program::NumJoins() const {
  int n = 0;
  for (const Statement& s : statements_) {
    if (s.kind == Statement::Kind::kJoin) ++n;
  }
  return n;
}

int Program::NumSemijoins() const {
  int n = 0;
  for (const Statement& s : statements_) {
    if (s.kind == Statement::Kind::kSemijoin) ++n;
  }
  return n;
}

int Program::NumProjects() const {
  int n = 0;
  for (const Statement& s : statements_) {
    if (s.kind == Statement::Kind::kProject) ++n;
  }
  return n;
}

std::vector<AttrSet> Program::ValidateAndDeriveSchemas(
    std::vector<AttrSet> base_schemas) const {
  GYO_CHECK_MSG(static_cast<int>(base_schemas.size()) == num_base_,
                "base has %d relations, program expects %d",
                static_cast<int>(base_schemas.size()), num_base_);
  std::vector<AttrSet>& schemas = base_schemas;
  schemas.reserve(static_cast<size_t>(NumRelations()));
  for (size_t k = 0; k < statements_.size(); ++k) {
    const Statement& s = statements_[k];
    const int avail = num_base_ + static_cast<int>(k);
    auto check_id = [&](int id, const char* role) {
      GYO_CHECK_MSG(id >= 0 && id < avail,
                    "statement %d: %s relation id R%d out of range "
                    "(R0..R%d exist here)",
                    static_cast<int>(k), role, id, avail - 1);
    };
    switch (s.kind) {
      case Statement::Kind::kJoin:
        check_id(s.lhs, "left join");
        check_id(s.rhs, "right join");
        schemas.push_back(schemas[static_cast<size_t>(s.lhs)].Union(
            schemas[static_cast<size_t>(s.rhs)]));
        break;
      case Statement::Kind::kSemijoin:
        check_id(s.lhs, "left semijoin");
        check_id(s.rhs, "right semijoin");
        schemas.push_back(schemas[static_cast<size_t>(s.lhs)]);
        break;
      case Statement::Kind::kProject: {
        check_id(s.lhs, "projection source");
        const AttrSet& src = schemas[static_cast<size_t>(s.lhs)];
        if (!s.target.IsSubsetOf(src)) {
          AttrSet missing = s.target.Minus(src);
          GYO_CHECK_MSG(false,
                        "statement %d: projection target not within source "
                        "schema R%d (e.g. attribute %d is absent)",
                        static_cast<int>(k), s.lhs, missing.Min());
        }
        schemas.push_back(s.target);
        break;
      }
    }
  }
  return schemas;
}

DatabaseSchema Program::DerivedSchema(const DatabaseSchema& base) const {
  std::vector<AttrSet> base_schemas;
  base_schemas.reserve(static_cast<size_t>(base.NumRelations()));
  for (int i = 0; i < base.NumRelations(); ++i) base_schemas.push_back(base[i]);
  return DatabaseSchema(ValidateAndDeriveSchemas(std::move(base_schemas)));
}

std::vector<Relation> Program::Execute(const std::vector<Relation>& base) const {
  return exec::Execute(*this, base, exec::ExecContext());
}

std::vector<Relation> Program::ExecuteWithStats(
    const std::vector<Relation>& base, Stats* stats) const {
  return exec::Execute(*this, base, exec::ExecContext(), stats);
}

Relation Program::Run(const std::vector<Relation>& base) const {
  GYO_CHECK_MSG(!statements_.empty(), "program has no statements");
  return Execute(base).back();
}

std::string Program::Format(const Catalog& catalog) const {
  std::string out;
  int next = num_base_;
  for (const Statement& s : statements_) {
    out += "R" + std::to_string(next++) + " := ";
    switch (s.kind) {
      case Statement::Kind::kJoin:
        out += "R" + std::to_string(s.lhs) + " join R" + std::to_string(s.rhs);
        break;
      case Statement::Kind::kSemijoin:
        out += "R" + std::to_string(s.lhs) + " semijoin R" +
               std::to_string(s.rhs);
        break;
      case Statement::Kind::kProject:
        out += "project[" + catalog.Format(s.target) + "](R" +
               std::to_string(s.lhs) + ")";
        break;
    }
    out += "\n";
  }
  return out;
}

bool SolvesQueryEmpirically(const Program& p, const DatabaseSchema& d,
                            const AttrSet& x, int trials, Rng& rng) {
  for (int t = 0; t < trials; ++t) {
    int rows = static_cast<int>(rng.Range(1, 40));
    int domain = static_cast<int>(rng.Range(2, 6));
    Relation universal = RandomUniversal(d.Universe(), rows, domain, rng);
    std::vector<Relation> states = ProjectDatabase(universal, d);
    Relation expected = EvaluateJoinQuery(d, x, states);
    Relation actual = p.Run(states);
    if (!actual.EqualsAsSet(expected)) return false;
  }
  return true;
}

}  // namespace gyo
