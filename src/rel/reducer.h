#ifndef GYO_REL_REDUCER_H_
#define GYO_REL_REDUCER_H_

#include <optional>
#include <vector>

#include "exec/exec_context.h"
#include "rel/relation.h"
#include "schema/schema.h"

namespace gyo {

/// Semijoin reduction (paper §4, after Bernstein–Chiu and Bernstein–Goodman).
///
/// A database state is *globally consistent* when every relation equals the
/// projection of the full join onto its schema — i.e., no tuple is dangling.
/// UR databases are always globally consistent; general databases are not.
/// For tree schemas a *full reducer* — a fixed sequence of 2(n−1) semijoins —
/// turns any state into a globally consistent one ("the non-UR transformation
/// can be done efficiently using semijoins", §4). For cyclic schemas no full
/// reducer exists: semijoins can reach a fixpoint on a globally inconsistent
/// state.

/// True iff every relation equals π_R(⋈ states). `states` must parallel `d`
/// and be canonicalized.
bool IsGloballyConsistent(const DatabaseSchema& d,
                          const std::vector<Relation>& states);

/// Applies the tree-schema full reducer (an upward and a downward semijoin
/// pass over a qual tree) and returns the reduced states. Returns nullopt if
/// `d` is a cyclic schema.
std::optional<std::vector<Relation>> ApplyFullReducer(
    const DatabaseSchema& d, const std::vector<Relation>& states);

/// Parallel form: the same 2(n−1) semijoins, compiled into a semijoin
/// Program and run on the exec runtime, where the dataflow DAG lets
/// independent subtree semijoins of the upward/downward passes run
/// concurrently (and each large semijoin split into morsels). With the
/// default context this is exactly the serial reducer; in deterministic mode
/// the reduced states are bit-identical to it at any thread count.
std::optional<std::vector<Relation>> ApplyFullReducer(
    const DatabaseSchema& d, const std::vector<Relation>& states,
    const exec::ExecContext& ctx);

/// Applies pairwise semijoins Ri ⋉ Rj until no relation shrinks — the best
/// any semijoin program can achieve (the fixpoint is unique: semijoin
/// reduction is confluent). Runs in synchronous rounds: each round compiles
/// every relation's chain of neighbor semijoins into one program (see
/// SemijoinRoundProgram in rel/solver.h) whose chains read the round-start
/// states, so all NumRelations() chains are independent and execute as one
/// task wave per round on the exec runtime. Returns the fixpoint states
/// and, via `steps`, the number of effective (relation-shrinking) semijoins
/// applied (if non-null).
std::vector<Relation> SemijoinFixpoint(const DatabaseSchema& d,
                                       const std::vector<Relation>& states,
                                       int* steps = nullptr);

/// Parallel form: the same round schedule on `ctx`'s pool. With the default
/// (serial) context this is exactly the overload above; in deterministic
/// mode the fixpoint states — and the `steps` count — are bit-identical to
/// it at any thread count. ctx.retire_consumed/retain_states are ignored
/// (rounds run unretired: the convergence check reads every chain's input
/// row counts); ctx.query_stats, when set, receives totals accumulated
/// across all rounds (peak_state_bytes is the max round's peak).
std::vector<Relation> SemijoinFixpoint(const DatabaseSchema& d,
                                       const std::vector<Relation>& states,
                                       const exec::ExecContext& ctx,
                                       int* steps = nullptr);

}  // namespace gyo

#endif  // GYO_REL_REDUCER_H_
