#ifndef GYO_REL_REDUCER_H_
#define GYO_REL_REDUCER_H_

#include <optional>
#include <vector>

#include "exec/exec_context.h"
#include "rel/relation.h"
#include "schema/schema.h"

namespace gyo {

/// Semijoin reduction (paper §4, after Bernstein–Chiu and Bernstein–Goodman).
///
/// A database state is *globally consistent* when every relation equals the
/// projection of the full join onto its schema — i.e., no tuple is dangling.
/// UR databases are always globally consistent; general databases are not.
/// For tree schemas a *full reducer* — a fixed sequence of 2(n−1) semijoins —
/// turns any state into a globally consistent one ("the non-UR transformation
/// can be done efficiently using semijoins", §4). For cyclic schemas no full
/// reducer exists: semijoins can reach a fixpoint on a globally inconsistent
/// state.

/// True iff every relation equals π_R(⋈ states). `states` must parallel `d`
/// and be canonicalized.
bool IsGloballyConsistent(const DatabaseSchema& d,
                          const std::vector<Relation>& states);

/// Applies the tree-schema full reducer (an upward and a downward semijoin
/// pass over a qual tree) and returns the reduced states. Returns nullopt if
/// `d` is a cyclic schema.
std::optional<std::vector<Relation>> ApplyFullReducer(
    const DatabaseSchema& d, const std::vector<Relation>& states);

/// Parallel form: the same 2(n−1) semijoins, compiled into a semijoin
/// Program and run on the exec runtime, where the dataflow DAG lets
/// independent subtree semijoins of the upward/downward passes run
/// concurrently (and each large semijoin split into morsels). With the
/// default context this is exactly the serial reducer; in deterministic mode
/// the reduced states are bit-identical to it at any thread count.
std::optional<std::vector<Relation>> ApplyFullReducer(
    const DatabaseSchema& d, const std::vector<Relation>& states,
    const exec::ExecContext& ctx);

/// Applies pairwise semijoins Ri ⋉ Rj until no relation shrinks — the best
/// any semijoin program can achieve (the fixpoint is unique: semijoin
/// reduction is confluent). Runs in synchronous *delta rounds*: the first
/// round compiles every relation's chain of neighbor semijoins into one
/// program (see SemijoinRoundProgram in rel/solver.h) whose chains read the
/// round-start states; every later round re-semijoins a relation only
/// against the neighbors that shrank in the previous round. The skipped
/// pairs are provably no-ops — once Ri ⋉ Rj has been applied, it can remove
/// nothing until Rj shrinks again — so the per-round states, the effective
/// step count, and the final fixpoint are bit-identical to the dense
/// schedule that re-ran every pair every round; only the wasted scans are
/// gone. Returns the fixpoint states and, via `steps`, the number of
/// effective (relation-shrinking) semijoins applied (if non-null).
std::vector<Relation> SemijoinFixpoint(const DatabaseSchema& d,
                                       const std::vector<Relation>& states,
                                       int* steps = nullptr);

/// Parallel form: the same round schedule on `ctx`'s pool. With the default
/// (serial) context this is exactly the overload above; in deterministic
/// mode the fixpoint states — and the `steps` count — are bit-identical to
/// it at any thread count. ctx.retire_consumed/retain_states are ignored
/// (rounds run unretired: the convergence check reads every chain's input
/// row counts); ctx.query_stats, when set, receives totals accumulated
/// across all rounds (peak_state_bytes is the max round's peak), including
/// the delta-round observables delta_rounds and rows_rescanned.
std::vector<Relation> SemijoinFixpoint(const DatabaseSchema& d,
                                       const std::vector<Relation>& states,
                                       const exec::ExecContext& ctx,
                                       int* steps = nullptr);

/// Moving form: consumes `states` — no deep copy of the base relations;
/// rounds move states through the exec runtime's moving entry point.
std::vector<Relation> SemijoinFixpoint(const DatabaseSchema& d,
                                       std::vector<Relation>&& states,
                                       const exec::ExecContext& ctx,
                                       int* steps = nullptr);

/// The incremental entry point behind delta invalidation (cache/state_cache):
/// runs the delta-round schedule from `states`, but the first round
/// processes only the relations listed in `first_round` (each against all
/// of its neighbors); later rounds are the usual shrunk-neighbor delta
/// rounds. Sound whenever every pair (i, j) with i ∉ first_round is already
/// clean — i.e. Ri ⋉ Rj would remove nothing — which holds when `states` is
/// a previous fixpoint in which only the first_round relations have since
/// gained rows (appends and revival candidates: growing a rhs never
/// invalidates a clean pair, and the grown lhs rows are exactly what round
/// one re-checks). With first_round = {0..n-1} this is SemijoinFixpoint.
std::vector<Relation> SemijoinFixpointFrom(const DatabaseSchema& d,
                                           std::vector<Relation> states,
                                           const std::vector<int>& first_round,
                                           const exec::ExecContext& ctx,
                                           int* steps = nullptr);

}  // namespace gyo

#endif  // GYO_REL_REDUCER_H_
