#ifndef GYO_REL_REDUCER_H_
#define GYO_REL_REDUCER_H_

#include <optional>
#include <vector>

#include "exec/exec_context.h"
#include "rel/relation.h"
#include "schema/schema.h"

namespace gyo {

/// Semijoin reduction (paper §4, after Bernstein–Chiu and Bernstein–Goodman).
///
/// A database state is *globally consistent* when every relation equals the
/// projection of the full join onto its schema — i.e., no tuple is dangling.
/// UR databases are always globally consistent; general databases are not.
/// For tree schemas a *full reducer* — a fixed sequence of 2(n−1) semijoins —
/// turns any state into a globally consistent one ("the non-UR transformation
/// can be done efficiently using semijoins", §4). For cyclic schemas no full
/// reducer exists: semijoins can reach a fixpoint on a globally inconsistent
/// state.

/// True iff every relation equals π_R(⋈ states). `states` must parallel `d`
/// and be canonicalized.
bool IsGloballyConsistent(const DatabaseSchema& d,
                          const std::vector<Relation>& states);

/// Applies the tree-schema full reducer (an upward and a downward semijoin
/// pass over a qual tree) and returns the reduced states. Returns nullopt if
/// `d` is a cyclic schema.
std::optional<std::vector<Relation>> ApplyFullReducer(
    const DatabaseSchema& d, const std::vector<Relation>& states);

/// Parallel form: the same 2(n−1) semijoins, compiled into a semijoin
/// Program and run on the exec runtime, where the dataflow DAG lets
/// independent subtree semijoins of the upward/downward passes run
/// concurrently (and each large semijoin split into morsels). With the
/// default context this is exactly the serial reducer; in deterministic mode
/// the reduced states are bit-identical to it at any thread count.
std::optional<std::vector<Relation>> ApplyFullReducer(
    const DatabaseSchema& d, const std::vector<Relation>& states,
    const exec::ExecContext& ctx);

/// Applies pairwise semijoins Ri ⋉ Rj until no relation shrinks — the best
/// any semijoin program can achieve. Returns the fixpoint states and, via
/// `steps`, the number of effective semijoins applied (if non-null).
std::vector<Relation> SemijoinFixpoint(const DatabaseSchema& d,
                                       const std::vector<Relation>& states,
                                       int* steps = nullptr);

}  // namespace gyo

#endif  // GYO_REL_REDUCER_H_
