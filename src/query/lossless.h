#ifndef GYO_QUERY_LOSSLESS_H_
#define GYO_QUERY_LOSSLESS_H_

#include "schema/schema.h"
#include "util/attr_set.h"

namespace gyo {

/// Lossless joins (paper §5): ⋈D ⊨ ⋈D' means every universal relation
/// satisfying the join dependency ⋈D also satisfies ⋈D' — equivalently, in
/// every UR database for D the sub-database D' has a lossless join.

/// Theorem 5.1: for D' ≤ D, ⋈D ⊨ ⋈D' iff CC(D, U(D')) ≤ D'
/// (equivalently ⊆ D'; equality holds iff D' is reduced).
/// Requires D' ≤ D and D' non-empty.
bool JoinDependencyImplies(const DatabaseSchema& d,
                           const DatabaseSchema& dprime);

/// Corollary 5.2 (tree schemas): ⋈D ⊨ ⋈D' iff D' is a subtree of D.
/// `indices` selects D' ⊆ D by relation index; requires `d` to be a tree
/// schema. Fast path equivalent to JoinDependencyImplies by Thms 3.1/3.3.
bool LosslessInTreeSchema(const DatabaseSchema& d,
                          const std::vector<int>& indices);

}  // namespace gyo

#endif  // GYO_QUERY_LOSSLESS_H_
