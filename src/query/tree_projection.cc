#include "query/tree_projection.h"

#include <algorithm>
#include <map>
#include <vector>

#include "gyo/acyclic.h"
#include "util/check.h"

namespace gyo {

bool IsTreeProjection(const DatabaseSchema& dpp, const DatabaseSchema& dprime,
                      const DatabaseSchema& d) {
  return d.CoveredBy(dpp) && dpp.CoveredBy(dprime) && IsTreeSchema(dpp);
}

namespace {

// Backtracking cover search over a candidate pool.
class TpSearch {
 public:
  TpSearch(const DatabaseSchema& d, std::vector<AttrSet> pool, long budget)
      : d_(d), pool_(std::move(pool)), budget_(budget) {
    covered_.assign(static_cast<size_t>(d.NumRelations()), false);
    in_use_.assign(pool_.size(), false);
    covers_.resize(static_cast<size_t>(d.NumRelations()));
    for (int r = 0; r < d.NumRelations(); ++r) {
      for (size_t p = 0; p < pool_.size(); ++p) {
        if (d[r].IsSubsetOf(pool_[p])) {
          covers_[static_cast<size_t>(r)].push_back(static_cast<int>(p));
        }
      }
    }
  }

  TreeProjectionResult Run() {
    TreeProjectionResult out;
    if (Dfs()) {
      DatabaseSchema proj;
      for (size_t p = 0; p < pool_.size(); ++p) {
        if (in_use_[p]) proj.Add(pool_[p]);
      }
      out.projection = std::move(proj);
    }
    out.exhausted = exhausted_;
    return out;
  }

 private:
  bool Dfs() {
    if (++nodes_ > budget_) {
      exhausted_ = true;
      return false;
    }
    int next = -1;
    for (int r = 0; r < d_.NumRelations(); ++r) {
      if (!covered_[static_cast<size_t>(r)]) {
        next = r;
        break;
      }
    }
    if (next == -1) {
      DatabaseSchema proj;
      for (size_t p = 0; p < pool_.size(); ++p) {
        if (in_use_[p]) proj.Add(pool_[p]);
      }
      return IsTreeSchema(proj);
    }
    for (int p : covers_[static_cast<size_t>(next)]) {
      if (in_use_[static_cast<size_t>(p)]) continue;
      in_use_[static_cast<size_t>(p)] = true;
      std::vector<int> newly;
      for (int r = 0; r < d_.NumRelations(); ++r) {
        if (!covered_[static_cast<size_t>(r)] &&
            d_[r].IsSubsetOf(pool_[static_cast<size_t>(p)])) {
          covered_[static_cast<size_t>(r)] = true;
          newly.push_back(r);
        }
      }
      if (Dfs()) return true;
      for (int r : newly) covered_[static_cast<size_t>(r)] = false;
      in_use_[static_cast<size_t>(p)] = false;
      if (exhausted_) return false;
    }
    return false;
  }

  const DatabaseSchema& d_;
  std::vector<AttrSet> pool_;
  long budget_;
  long nodes_ = 0;
  bool exhausted_ = false;
  std::vector<bool> covered_;
  std::vector<bool> in_use_;
  std::vector<std::vector<int>> covers_;
};

}  // namespace

TreeProjectionResult FindTreeProjection(const DatabaseSchema& dprime,
                                        const DatabaseSchema& d,
                                        const TreeProjectionOptions& options) {
  TreeProjectionResult out;
  // If D ≤ D' fails there is nothing sandwiched between them.
  if (!d.CoveredBy(dprime)) return out;
  // Quick win: D' itself qualifies when it is a tree schema.
  if (IsTreeSchema(dprime)) {
    out.projection = dprime;
    return out;
  }

  // Candidate pool: for each host of D', all unions of D-elements contained
  // in the host (capped), plus the host itself.
  std::map<AttrSet, bool> pool_set;
  DatabaseSchema hosts;
  for (const RelationSchema& h : dprime.Relations()) {
    if (!hosts.ContainsRelation(h)) hosts.Add(h);
  }
  for (const RelationSchema& h : hosts.Relations()) {
    std::vector<AttrSet> contained;
    for (const RelationSchema& r : d.Relations()) {
      if (r.IsSubsetOf(h) &&
          std::find(contained.begin(), contained.end(), r) ==
              contained.end()) {
        contained.push_back(r);
      }
    }
    std::vector<AttrSet> unions;
    unions.push_back(AttrSet());
    for (const AttrSet& c : contained) {
      size_t existing = unions.size();
      for (size_t i = 0; i < existing; ++i) {
        if (static_cast<int>(unions.size()) >= options.max_pool_per_host) {
          break;
        }
        AttrSet u = unions[i].Union(c);
        if (std::find(unions.begin(), unions.end(), u) == unions.end()) {
          unions.push_back(u);
        }
      }
    }
    for (const AttrSet& u : unions) {
      if (!u.Empty()) pool_set[u] = true;
    }
    pool_set[h] = true;
  }
  std::vector<AttrSet> pool;
  pool.reserve(pool_set.size());
  for (const auto& [s, unused] : pool_set) pool.push_back(s);
  (void)pool_set;
  // Smaller candidates first: favours tight (paper-style) projections.
  std::stable_sort(pool.begin(), pool.end(),
                   [](const AttrSet& a, const AttrSet& b) {
                     return a.Size() < b.Size();
                   });

  TpSearch search(d, std::move(pool), options.max_nodes);
  return search.Run();
}

}  // namespace gyo
