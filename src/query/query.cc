#include "query/query.h"

#include "tableau/canonical.h"
#include "util/check.h"

namespace gyo {

bool SolvableByJoinProject(const DatabaseSchema& d, const AttrSet& x,
                           const DatabaseSchema& dprime) {
  CanonicalResult cc = CanonicalConnection(d, x);
  return cc.schema.CoveredBy(dprime);
}

bool WeaklyEquivalent(const DatabaseSchema& d, const DatabaseSchema& dprime,
                      const AttrSet& x) {
  CanonicalResult a = CanonicalConnection(d, x);
  CanonicalResult b = CanonicalConnection(dprime, x);
  return a.schema.EqualsAsMultiset(b.schema);
}

CanonicalResult RelevantSubdatabase(const DatabaseSchema& d, const AttrSet& x) {
  return CanonicalConnection(d, x);
}

}  // namespace gyo
