#ifndef GYO_QUERY_QUERY_H_
#define GYO_QUERY_QUERY_H_

#include "schema/schema.h"
#include "tableau/canonical.h"
#include "util/attr_set.h"

namespace gyo {

/// A natural-join query Q = (D, X) = π_X(⋈ D) (paper §2). Applied to a state
/// D for D, Q(D) = π_X(⋈_{R∈D} R). All equivalence notions below are *weak*:
/// quantified over universal databases only.
struct Query {
  DatabaseSchema db;
  AttrSet target;
};

/// Theorem 4.1 / Corollary 4.1: to solve (D, X) by joining the relations of
/// a sub-database D' ≤ D and projecting onto X, it is necessary and
/// sufficient that CC(D, X) ≤ D'. Requires X ⊆ U(D).
bool SolvableByJoinProject(const DatabaseSchema& d, const AttrSet& x,
                           const DatabaseSchema& dprime);

/// Lemma 3.5 / Theorem 4.1: (D, X) ≡ (D', X) iff CC(D, X) = CC(D', X).
/// Works for arbitrary D, D' with X ⊆ U(D) ∩ U(D').
bool WeaklyEquivalent(const DatabaseSchema& d, const DatabaseSchema& dprime,
                      const AttrSet& x);

/// The §6 "relevant sub-database": CC(D, X) with, for each canonical
/// relation, the index of the original relation it projects (irrelevant
/// relations of D appear in no entry; useless columns are already dropped
/// from the canonical schemas). This is CanonicalConnection re-exported under
/// the paper's query-processing reading.
CanonicalResult RelevantSubdatabase(const DatabaseSchema& d, const AttrSet& x);

}  // namespace gyo

#endif  // GYO_QUERY_QUERY_H_
