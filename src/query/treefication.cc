#include "query/treefication.h"

#include <algorithm>
#include <vector>

#include "gyo/acyclic.h"
#include "gyo/gyo.h"
#include "schema/generators.h"
#include "util/check.h"

namespace gyo {

namespace {

// Enumerates all subsets of `attrs` of size in [2, max_size] that are not
// contained in any relation of `d`, largest first.
std::vector<AttrSet> Candidates(const DatabaseSchema& d,
                                const std::vector<AttrId>& attrs,
                                int max_size) {
  const int m = static_cast<int>(attrs.size());
  std::vector<AttrSet> out;
  for (int size = std::min(max_size, m); size >= 2; --size) {
    std::vector<int> idx(static_cast<size_t>(size));
    for (int i = 0; i < size; ++i) idx[static_cast<size_t>(i)] = i;
    while (true) {
      AttrSet s;
      for (int i : idx) s.Insert(attrs[static_cast<size_t>(i)]);
      bool redundant = false;
      for (const RelationSchema& r : d.Relations()) {
        if (s.IsSubsetOf(r)) {
          redundant = true;
          break;
        }
      }
      if (!redundant) out.push_back(s);
      int pos = size - 1;
      while (pos >= 0 && idx[static_cast<size_t>(pos)] == m - size + pos) {
        --pos;
      }
      if (pos < 0) break;
      ++idx[static_cast<size_t>(pos)];
      for (int i = pos + 1; i < size; ++i) {
        idx[static_cast<size_t>(i)] = idx[static_cast<size_t>(i - 1)] + 1;
      }
    }
  }
  return out;
}

class TreeficationSearch {
 public:
  TreeficationSearch(const DatabaseSchema& d, std::vector<AttrSet> candidates,
                     int max_relations, long budget)
      : base_(d),
        candidates_(std::move(candidates)),
        max_relations_(max_relations),
        budget_(budget) {}

  TreeficationResult Run() {
    TreeficationResult out;
    current_ = base_;
    if (Dfs(0, 0)) {
      out.feasible = true;
      out.added = chosen_;
    }
    out.exhausted = exhausted_;
    return out;
  }

 private:
  bool Dfs(int depth, size_t start) {
    if (++nodes_ > budget_) {
      exhausted_ = true;
      return false;
    }
    if (IsTreeSchema(current_)) return true;
    if (depth == max_relations_) return false;
    for (size_t i = start; i < candidates_.size(); ++i) {
      chosen_.push_back(candidates_[i]);
      DatabaseSchema next = current_;
      next.Add(candidates_[i]);
      DatabaseSchema saved = std::move(current_);
      current_ = std::move(next);
      if (Dfs(depth + 1, i + 1)) return true;
      current_ = std::move(saved);
      chosen_.pop_back();
      if (exhausted_) return false;
    }
    return false;
  }

  const DatabaseSchema& base_;
  std::vector<AttrSet> candidates_;
  int max_relations_;
  long budget_;
  long nodes_ = 0;
  bool exhausted_ = false;
  DatabaseSchema current_;
  std::vector<AttrSet> chosen_;
};

}  // namespace

TreeficationResult FixedTreeficationFFD(const DatabaseSchema& d,
                                        int max_relations, int max_size) {
  TreeficationResult out;
  GyoResult gr = GyoReduce(d);
  if (gr.FullyReduced()) {
    out.feasible = true;
    return out;
  }
  // Drop empty survivors; group the rest into connected components.
  DatabaseSchema core;
  for (const RelationSchema& r : gr.reduced.Relations()) {
    if (!r.Empty()) core.Add(r);
  }
  std::vector<AttrSet> items;
  for (const std::vector<int>& comp : core.ConnectedComponents()) {
    AttrSet u;
    for (int i : comp) u.UnionWith(core[i]);
    items.push_back(u);
  }
  std::sort(items.begin(), items.end(), [](const AttrSet& a, const AttrSet& b) {
    return a.Size() > b.Size();
  });
  std::vector<AttrSet> bins;
  for (const AttrSet& item : items) {
    if (item.Size() > max_size) return out;  // heuristic gives up
    bool placed = false;
    for (AttrSet& bin : bins) {
      if (bin.Size() + item.Size() <= max_size) {
        bin.UnionWith(item);
        placed = true;
        break;
      }
    }
    if (!placed) {
      if (static_cast<int>(bins.size()) == max_relations) return out;
      bins.push_back(item);
    }
  }
  out.feasible = true;
  out.added = std::move(bins);
  return out;
}

TreeficationResult FixedTreefication(const DatabaseSchema& d,
                                     int max_relations, int max_size,
                                     const TreeficationOptions& options) {
  GYO_CHECK(max_relations >= 0);
  GYO_CHECK(max_size >= 0);
  TreeficationResult out;
  if (IsTreeSchema(d)) {
    out.feasible = true;
    return out;
  }
  if (max_relations == 0 || max_size < 2) return out;
  // The FFD heuristic is sound; accept its solutions immediately.
  TreeficationResult ffd = FixedTreeficationFFD(d, max_relations, max_size);
  if (ffd.feasible) return ffd;

  std::vector<AttrId> attrs = d.Universe().ToVector();
  GYO_CHECK_MSG(static_cast<int>(attrs.size()) <= options.max_universe,
                "FixedTreefication: universe too large (%zu attributes)",
                attrs.size());
  std::vector<AttrSet> candidates = Candidates(d, attrs, max_size);
  TreeficationSearch search(d, std::move(candidates), max_relations,
                            options.max_nodes);
  return search.Run();
}

DatabaseSchema BinPackingToSchema(const BinPackingInstance& instance) {
  DatabaseSchema d;
  AttrId base = 0;
  for (int s : instance.sizes) {
    GYO_CHECK_MSG(s >= 3, "Theorem 4.2 reduction requires item sizes >= 3");
    DatabaseSchema clique = Aclique(s, base);
    for (const RelationSchema& r : clique.Relations()) d.Add(r);
    base += s;
  }
  return d;
}

bool SolveBinPackingExact(const BinPackingInstance& instance) {
  std::vector<int> sizes = instance.sizes;
  std::sort(sizes.rbegin(), sizes.rend());
  if (instance.bins <= 0) return sizes.empty();
  for (int s : sizes) {
    if (s > instance.capacity) return false;
  }
  std::vector<int> remaining(static_cast<size_t>(instance.bins),
                             instance.capacity);
  // Branch and bound: place items in decreasing order; skip bins with the
  // same remaining capacity as an already-tried bin.
  std::function<bool(size_t)> place = [&](size_t item) -> bool {
    if (item == sizes.size()) return true;
    int s = sizes[item];
    int last_remaining = -1;
    for (size_t b = 0; b < remaining.size(); ++b) {
      if (remaining[b] < s || remaining[b] == last_remaining) continue;
      last_remaining = remaining[b];
      remaining[b] -= s;
      if (place(item + 1)) return true;
      remaining[b] += s;
      // An item that does not fit in a fresh bin can never be placed.
      if (remaining[b] == instance.capacity) break;
    }
    return false;
  };
  return place(0);
}

}  // namespace gyo
