#ifndef GYO_QUERY_TREE_PROJECTION_H_
#define GYO_QUERY_TREE_PROJECTION_H_

#include <optional>

#include "schema/schema.h"
#include "util/attr_set.h"

namespace gyo {

/// Tree projections (paper §3.2): for D ≤ D'' ≤ D', D'' ∈ TP(D', D) iff D''
/// is a tree schema. By Theorems 6.1–6.4, the existence of a tree projection
/// of P(D) w.r.t. CC(D,X) ∪ (X) characterizes the join/semijoin/project
/// programs P that solve (D, X).

/// Verifies D ≤ dpp ≤ dprime and that dpp is a tree schema.
bool IsTreeProjection(const DatabaseSchema& dpp, const DatabaseSchema& dprime,
                      const DatabaseSchema& d);

struct TreeProjectionOptions {
  /// Cap on the number of candidate node schemas generated per host relation
  /// of D' (candidates are unions of D-elements contained in the host, plus
  /// the host itself).
  int max_pool_per_host = 4096;
  /// Search-node budget for the backtracking cover search.
  long max_nodes = 2000000;
};

struct TreeProjectionResult {
  /// A tree projection, if one was found.
  std::optional<DatabaseSchema> projection;
  /// True iff the node budget was exhausted before the search completed; in
  /// that case a missing `projection` is inconclusive.
  bool exhausted = false;
};

/// Searches for some D'' ∈ TP(D', D). When D ≤ D' fails, no projection
/// exists and an empty result is returned.
///
/// The search branches over "covers": node schemas are drawn from a pool of
/// unions of D-elements inside each host of D' (plus the hosts themselves),
/// and every cover of D by pool elements is tested for acyclicity. This is
/// complete over tree projections whose every node contains at least one
/// element of D (deciding general TP existence is NP-hard). For a query
/// (D, X) pass D ∪ {X} as `d` (the definition of TP(D', Q)).
TreeProjectionResult FindTreeProjection(const DatabaseSchema& dprime,
                                        const DatabaseSchema& d,
                                        const TreeProjectionOptions& options =
                                            TreeProjectionOptions());

}  // namespace gyo

#endif  // GYO_QUERY_TREE_PROJECTION_H_
