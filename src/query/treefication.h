#ifndef GYO_QUERY_TREEFICATION_H_
#define GYO_QUERY_TREEFICATION_H_

#include <vector>

#include "schema/schema.h"
#include "util/attr_set.h"

namespace gyo {

/// Fixed Treefication (paper §4, Theorem 4.2): given a schema D and integers
/// K, B, do there exist relation schemas R'1..R'k, k ≤ K, |R'i| ≤ B, such
/// that D ∪ (R'1..R'k) is a tree schema? NP-complete by reduction from Bin
/// Packing. This module provides an exact (exponential) solver, a sound but
/// incomplete first-fit-decreasing heuristic, and the Theorem 4.2 reduction
/// itself with an exact bin-packing solver for cross-validation.

struct TreeficationResult {
  /// True iff a treefying set of relations was found.
  bool feasible = false;
  /// The added relations when feasible.
  std::vector<AttrSet> added;
  /// True iff the exact solver ran out of its node budget (a negative answer
  /// is then inconclusive).
  bool exhausted = false;
};

struct TreeficationOptions {
  long max_nodes = 5000000;
  /// Exact search dies if |U(D)| exceeds this (the candidate space is
  /// exponential in the universe).
  int max_universe = 18;
};

/// Exact decision procedure. Candidates are restricted, without loss of
/// generality, to subsets of U(D) of size in [2, B] that are not contained in
/// an existing relation (any other added relation is redundant under GYO).
TreeficationResult FixedTreefication(const DatabaseSchema& d, int max_relations,
                                     int max_size,
                                     const TreeficationOptions& options =
                                         TreeficationOptions());

/// First-fit-decreasing heuristic: treats the connected components of GR(D)
/// as items of size |U(component)| and packs them into ≤ max_relations bins
/// of capacity max_size; each bin becomes the union of its components'
/// universes. Sound (a reported solution always treefies) but incomplete: it
/// may miss solutions that split a component across added relations.
TreeficationResult FixedTreeficationFFD(const DatabaseSchema& d,
                                        int max_relations, int max_size);

/// A Bin Packing instance (Garey & Johnson [SR1]).
struct BinPackingInstance {
  std::vector<int> sizes;  // item sizes, each >= 3 for the Thm 4.2 reduction
  int capacity = 0;        // bin capacity B
  int bins = 0;            // number of bins K
};

/// The Theorem 4.2 reduction: each item of size s becomes an Aclique of size
/// s over fresh attributes; the instance is bin-packable into K bins of
/// capacity B iff the resulting schema is fixed-treefiable with K relations
/// of size ≤ B. Requires every size >= 3 (w.l.o.g. in the paper: sizes
/// divisible by 3).
DatabaseSchema BinPackingToSchema(const BinPackingInstance& instance);

/// Exact bin-packing decision (branch and bound with symmetry breaking).
bool SolveBinPackingExact(const BinPackingInstance& instance);

}  // namespace gyo

#endif  // GYO_QUERY_TREEFICATION_H_
