#include "query/lossless.h"

#include "gyo/qual_graph.h"
#include "tableau/canonical.h"
#include "util/check.h"

namespace gyo {

bool JoinDependencyImplies(const DatabaseSchema& d,
                           const DatabaseSchema& dprime) {
  GYO_CHECK_MSG(!dprime.Empty(), "D' must be non-empty");
  GYO_CHECK_MSG(dprime.CoveredBy(d), "Theorem 5.1 requires D' ≤ D");
  CanonicalResult cc = CanonicalConnection(d, dprime.Universe());
  return cc.schema.CoveredBy(dprime);
}

bool LosslessInTreeSchema(const DatabaseSchema& d,
                          const std::vector<int>& indices) {
  return IsSubtree(d, indices);
}

}  // namespace gyo
