#ifndef GYO_UTIL_CHECK_H_
#define GYO_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Contract-violation macros. The library does not use exceptions; internal
/// invariant violations abort with a source location, matching the style used
/// by production database engines for unrecoverable programming errors.

/// Aborts the process with a message if `cond` is false. Always enabled.
#define GYO_CHECK(cond)                                                      \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "GYO_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

/// Like GYO_CHECK but with a printf-style explanation.
#define GYO_CHECK_MSG(cond, ...)                                             \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "GYO_CHECK failed at %s:%d: %s: ", __FILE__,      \
                   __LINE__, #cond);                                         \
      std::fprintf(stderr, __VA_ARGS__);                                     \
      std::fprintf(stderr, "\n");                                            \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

/// Debug-only check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define GYO_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define GYO_DCHECK(cond) GYO_CHECK(cond)
#endif

#endif  // GYO_UTIL_CHECK_H_
