#include "util/attr_set.h"

#include <algorithm>

namespace gyo {

int AttrSet::Size() const {
  int n = 0;
  for (uint64_t w : words_) n += __builtin_popcountll(w);
  return n;
}

bool AttrSet::IsSubsetOf(const AttrSet& other) const {
  if (words_.size() > other.words_.size()) {
    for (size_t w = other.words_.size(); w < words_.size(); ++w) {
      if (words_[w] != 0) return false;
    }
  }
  size_t common = std::min(words_.size(), other.words_.size());
  for (size_t w = 0; w < common; ++w) {
    if ((words_[w] & ~other.words_[w]) != 0) return false;
  }
  return true;
}

bool AttrSet::Intersects(const AttrSet& other) const {
  size_t common = std::min(words_.size(), other.words_.size());
  for (size_t w = 0; w < common; ++w) {
    if ((words_[w] & other.words_[w]) != 0) return true;
  }
  return false;
}

AttrSet AttrSet::Union(const AttrSet& other) const {
  AttrSet r = *this;
  r.UnionWith(other);
  return r;
}

AttrSet AttrSet::Intersect(const AttrSet& other) const {
  AttrSet r = *this;
  r.IntersectWith(other);
  return r;
}

AttrSet AttrSet::Minus(const AttrSet& other) const {
  AttrSet r = *this;
  r.MinusWith(other);
  return r;
}

AttrSet& AttrSet::UnionWith(const AttrSet& other) {
  if (other.words_.size() > words_.size()) {
    words_.resize(other.words_.size(), 0);
  }
  for (size_t w = 0; w < other.words_.size(); ++w) words_[w] |= other.words_[w];
  return *this;
}

AttrSet& AttrSet::IntersectWith(const AttrSet& other) {
  if (words_.size() > other.words_.size()) {
    words_.resize(other.words_.size());
  }
  for (size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
  Shrink();
  return *this;
}

AttrSet& AttrSet::MinusWith(const AttrSet& other) {
  size_t common = std::min(words_.size(), other.words_.size());
  for (size_t w = 0; w < common; ++w) words_[w] &= ~other.words_[w];
  Shrink();
  return *this;
}

std::vector<AttrId> AttrSet::ToVector() const {
  std::vector<AttrId> out;
  out.reserve(Size());
  ForEach([&out](AttrId id) { out.push_back(id); });
  return out;
}

AttrId AttrSet::Min() const {
  GYO_CHECK(!Empty());
  for (size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return static_cast<AttrId>(w * 64 + __builtin_ctzll(words_[w]));
    }
  }
  GYO_CHECK(false);
  return -1;
}

bool operator<(const AttrSet& a, const AttrSet& b) {
  size_t n = std::max(a.words_.size(), b.words_.size());
  // Compare from the most significant word down so that the order is a
  // deterministic total order consistent across runs.
  for (size_t i = n; i-- > 0;) {
    uint64_t wa = i < a.words_.size() ? a.words_[i] : 0;
    uint64_t wb = i < b.words_.size() ? b.words_[i] : 0;
    if (wa != wb) return wa < wb;
  }
  return false;
}

size_t AttrSet::Hash() const {
  uint64_t h = 1469598103934665603ull;
  for (uint64_t w : words_) {
    h ^= w;
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h);
}

}  // namespace gyo
