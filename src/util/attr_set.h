#ifndef GYO_UTIL_ATTR_SET_H_
#define GYO_UTIL_ATTR_SET_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/check.h"

namespace gyo {

/// Attribute identifier. Attributes are dense small integers assigned by a
/// Catalog (see schema/catalog.h); AttrSet does not know about names.
using AttrId = int;

/// A set of attributes, implemented as a dynamic bitset.
///
/// This is the workhorse value type of the library: relation schemas are
/// AttrSets, and every algorithm in the paper (GYO reduction, tableau
/// minimization, γ-acyclicity tests, ...) reduces to subset/intersection
/// arithmetic on AttrSets. All operations are O(universe/64).
///
/// AttrSet is a regular value type: copyable, movable, equality-comparable,
/// hashable, and totally ordered (lexicographic on attribute ids) so it can
/// be used as a key in ordered containers and to canonically sort schemas.
class AttrSet {
 public:
  /// Creates an empty set.
  AttrSet() = default;

  /// Creates a set containing the given attribute ids.
  AttrSet(std::initializer_list<AttrId> ids) {
    for (AttrId id : ids) Insert(id);
  }

  AttrSet(const AttrSet&) = default;
  AttrSet& operator=(const AttrSet&) = default;
  AttrSet(AttrSet&&) = default;
  AttrSet& operator=(AttrSet&&) = default;

  /// Inserts attribute `id` (no-op if present).
  void Insert(AttrId id) {
    GYO_DCHECK(id >= 0);
    size_t word = static_cast<size_t>(id) / 64;
    if (word >= words_.size()) words_.resize(word + 1, 0);
    words_[word] |= (uint64_t{1} << (id % 64));
  }

  /// Removes attribute `id` (no-op if absent).
  void Erase(AttrId id) {
    GYO_DCHECK(id >= 0);
    size_t word = static_cast<size_t>(id) / 64;
    if (word >= words_.size()) return;
    words_[word] &= ~(uint64_t{1} << (id % 64));
    Shrink();
  }

  /// Returns true iff attribute `id` is in the set.
  bool Contains(AttrId id) const {
    if (id < 0) return false;
    size_t word = static_cast<size_t>(id) / 64;
    if (word >= words_.size()) return false;
    return (words_[word] >> (id % 64)) & 1;
  }

  /// Returns the number of attributes in the set.
  int Size() const;

  /// Returns true iff the set is empty.
  bool Empty() const { return words_.empty(); }

  /// Removes all attributes.
  void Clear() { words_.clear(); }

  /// Returns true iff *this ⊆ other.
  bool IsSubsetOf(const AttrSet& other) const;

  /// Returns true iff *this ⊂ other (strict).
  bool IsProperSubsetOf(const AttrSet& other) const {
    return IsSubsetOf(other) && *this != other;
  }

  /// Returns true iff the two sets share at least one attribute.
  bool Intersects(const AttrSet& other) const;

  /// Set union.
  AttrSet Union(const AttrSet& other) const;
  /// Set intersection.
  AttrSet Intersect(const AttrSet& other) const;
  /// Set difference (*this − other).
  AttrSet Minus(const AttrSet& other) const;

  /// In-place union.
  AttrSet& UnionWith(const AttrSet& other);
  /// In-place intersection.
  AttrSet& IntersectWith(const AttrSet& other);
  /// In-place difference.
  AttrSet& MinusWith(const AttrSet& other);

  /// Returns the members in increasing id order.
  std::vector<AttrId> ToVector() const;

  /// Returns the smallest member; the set must be non-empty.
  AttrId Min() const;

  /// Calls `fn(id)` for each member in increasing id order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        int bit = __builtin_ctzll(bits);
        fn(static_cast<AttrId>(w * 64 + bit));
        bits &= bits - 1;
      }
    }
  }

  friend bool operator==(const AttrSet& a, const AttrSet& b) {
    return a.words_ == b.words_;
  }

  friend bool operator!=(const AttrSet& a, const AttrSet& b) {
    return !(a == b);
  }

  /// Total order: compares as reversed big-endian bit strings, equivalent to
  /// lexicographic order on the sorted member lists for same-size sets; any
  /// strict weak order suffices for canonical sorting and map keys.
  friend bool operator<(const AttrSet& a, const AttrSet& b);

  /// Hash value (FNV-1a over the words).
  size_t Hash() const;

 private:
  // Drops trailing zero words so that equal sets compare equal.
  void Shrink() {
    while (!words_.empty() && words_.back() == 0) words_.pop_back();
  }

  std::vector<uint64_t> words_;
};

/// std::hash adapter.
struct AttrSetHash {
  size_t operator()(const AttrSet& s) const { return s.Hash(); }
};

}  // namespace gyo

#endif  // GYO_UTIL_ATTR_SET_H_
