#ifndef GYO_UTIL_RNG_H_
#define GYO_UTIL_RNG_H_

#include <cstdint>

namespace gyo {

/// Deterministic, seedable pseudo-random number generator (splitmix64).
///
/// All randomized components of the library (schema generators, universal
/// relation generators, property tests) take an explicit Rng so that every
/// experiment in EXPERIMENTS.md is reproducible bit-for-bit.
class Rng {
 public:
  /// Constructs a generator from a seed; equal seeds yield equal streams.
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Returns the next 64 random bits.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Returns a uniform integer in [0, bound). `bound` must be positive.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Returns a uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Returns true with probability p (0 <= p <= 1).
  bool Chance(double p) {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

 private:
  uint64_t state_;
};

}  // namespace gyo

#endif  // GYO_UTIL_RNG_H_
