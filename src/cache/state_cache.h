#ifndef GYO_CACHE_STATE_CACHE_H_
#define GYO_CACHE_STATE_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "cache/fingerprint.h"
#include "exec/exec_context.h"
#include "rel/relation.h"
#include "schema/schema.h"

namespace gyo {
namespace cache {

/// An append-only database instance with per-relation version counters —
/// the versioning substrate of the reduced-state cache. Append() is the
/// only mutator: rows are only ever added, never removed or reordered, so
/// for any two observations with versions v <= v' pointwise, every relation
/// at v is a physical prefix of the same relation at v'. That prefix
/// guarantee is what makes delta invalidation sound (see DeltaReduce).
///
/// Single-writer / external synchronization: one VersionedDatabase is one
/// tenant's mutable state. The StateCache below is safe to share across
/// threads; the database itself is not.
class VersionedDatabase {
 public:
  VersionedDatabase(DatabaseSchema schema, std::vector<Relation> states);

  const DatabaseSchema& schema() const { return schema_; }
  const std::vector<Relation>& states() const { return states_; }
  /// Per-relation version counters, bumped by every Append to the relation.
  const std::vector<uint64_t>& versions() const { return versions_; }

  /// Appends `rows`'s tuples to relation `rel` (schemas must match) and
  /// bumps its version. Appending zero rows still bumps the version — a
  /// version mismatch may only cause a delta refresh that discovers nothing
  /// to do, never a stale read.
  void Append(int rel, const Relation& rows);

  /// Identity of this instance (process-unique) — the state-cache key
  /// component that separates two databases over the same schema.
  uint64_t id() const { return id_; }

 private:
  uint64_t id_;
  DatabaseSchema schema_;
  std::vector<Relation> states_;
  std::vector<uint64_t> versions_;
};

/// Observables of one incremental re-reduction (also folded into
/// QueryStats: delta_rounds / rows_rescanned accumulate the shrink rounds,
/// and the grow phase's scans are added to rows_rescanned).
struct DeltaStats {
  /// Worklist rounds of the revival grow phase.
  int64_t grow_rounds = 0;
  /// Previously-dangling prefix rows re-admitted as revival candidates.
  int64_t revived_candidates = 0;
  /// Appended rows re-checked by the first shrink round.
  int64_t appended_rows = 0;
};

/// Incrementally recomputes the pairwise-semijoin fixpoint after appends.
///
/// `prev_reduced` must be SemijoinFixpoint(d, B) for a previous state B of
/// the same database in which relation i held exactly the first
/// `prev_num_rows[i]` rows of `now[i]` (the VersionedDatabase append-only
/// prefix guarantee). Returns SemijoinFixpoint(d, now) — bit-identical to
/// the batch run, in deterministic mode at any thread count — while only
/// re-examining what the appends can have changed:
///
///  1. Grow phase: appends can *revive* prefix rows the old fixpoint
///     removed (a dangling tuple's missing match may have just arrived).
///     A revived row must match, in some neighbor, a row that is itself
///     appended or revived — so revival candidates propagate outward from
///     the appended rows through exact shared-attribute matching, a sound
///     over-approximation of the true revival set.
///  2. Shrink phase: from the grown start (old fixpoint + appends +
///     revival candidates, each relation an in-order selection of now[i]),
///     delta rounds re-semijoin only the grown relations in round one and
///     only against shrunk neighbors afterwards (SemijoinFixpointFrom).
///     Any start between the new fixpoint and now[] converges to the new
///     fixpoint, so the over-approximation costs extra scans, never
///     correctness.
///
/// ctx.query_stats, when set, receives the shrink rounds' accumulated stats
/// with rows_rescanned additionally covering the grow phase's scans.
std::vector<Relation> DeltaReduce(const DatabaseSchema& d,
                                  const std::vector<Relation>& now,
                                  const std::vector<int64_t>& prev_num_rows,
                                  const std::vector<Relation>& prev_reduced,
                                  const exec::ExecContext& ctx,
                                  int* steps = nullptr,
                                  DeltaStats* delta = nullptr);

struct StateCacheStats {
  /// Version-exact lookups answered straight from the cache.
  uint64_t hits = 0;
  /// Lookups answered by delta re-reduction from a cached prior fixpoint.
  uint64_t delta_refreshes = 0;
  /// Lookups that ran a batch reduction (no usable entry).
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;
  /// Reduced-state bytes currently held (ArenaBytes over cached states).
  int64_t bytes = 0;
};

/// The reduced-state cache: memoizes SemijoinFixpoint results per
/// VersionedDatabase, keyed by (database id, per-relation version vector).
/// A version-exact lookup returns the cached states; a lookup whose entry
/// is merely older (versions pointwise <=, appends only) delta-refreshes it
/// with DeltaReduce and re-caches; anything else batch-reduces. Entries are
/// evicted LRU once cached bytes exceed the bound.
///
/// Thread-safe; returned states are always copies made under the lock, so
/// callers may mutate (or lazily canonicalize) them freely.
class StateCache {
 public:
  struct Options {
    /// Bound on cached reduced-state bytes (ArenaBytes). One entry always
    /// fits, whatever its size, so caching never fails outright.
    int64_t max_bytes = 64ll << 20;
  };

  StateCache() : StateCache(Options()) {}
  explicit StateCache(const Options& options);

  StateCache(const StateCache&) = delete;
  StateCache& operator=(const StateCache&) = delete;

  /// The semijoin fixpoint of db.states() — cached, delta-refreshed, or
  /// batch-computed. `steps` (optional) receives the effective semijoin
  /// count of whatever work actually ran (0 on an exact hit).
  /// ctx.query_stats, when set, reports the run's stats with
  /// state_cache_hits = 1 on both the exact-hit and delta-refresh paths.
  std::vector<Relation> GetReduced(const VersionedDatabase& db,
                                   const exec::ExecContext& ctx,
                                   int* steps = nullptr);

  StateCacheStats stats() const;
  void Clear();

  static StateCache& Global();

 private:
  struct Entry {
    uint64_t db_id = 0;
    std::vector<uint64_t> versions;
    std::vector<int64_t> num_rows;  // base row counts at reduction time
    std::vector<Relation> reduced;
    int64_t bytes = 0;
  };

  static int64_t BytesOf(const std::vector<Relation>& states);

  const Options options_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
  StateCacheStats stats_;
};

}  // namespace cache
}  // namespace gyo

#endif  // GYO_CACHE_STATE_CACHE_H_
