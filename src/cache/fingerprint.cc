#include "cache/fingerprint.h"

#include <unordered_map>

#include "util/check.h"

namespace gyo {
namespace cache {

namespace {

// FNV-1a offset bases / primes for the two lanes, lane 2 offset by an
// arbitrary odd constant so the lanes decorrelate even on equal seeds.
constexpr uint64_t kOffset1 = 0xcbf29ce484222325ULL;
constexpr uint64_t kOffset2 = 0x9ae16a3b2f90404fULL;
constexpr uint64_t kPrime1 = 0x100000001b3ULL;
constexpr uint64_t kPrime2 = 0xc6a4a7935bd1e995ULL;

}  // namespace

uint64_t Avalanche64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

namespace {
constexpr auto Avalanche = Avalanche64;
}  // namespace

FingerprintMixer::FingerprintMixer(uint64_t seed)
    : lo_(kOffset1 ^ seed), hi_(kOffset2 ^ Avalanche(seed + 1)) {}

void FingerprintMixer::Absorb(uint64_t word) {
  lo_ = (lo_ ^ word) * kPrime1;
  hi_ = (hi_ ^ Avalanche(word)) * kPrime2;
}

void FingerprintMixer::AbsorbAttrSet(const AttrSet& s) {
  Absorb(static_cast<uint64_t>(s.Size()));
  s.ForEach([&](AttrId a) { Absorb(static_cast<uint64_t>(a)); });
}

Fingerprint FingerprintMixer::Digest() const {
  return Fingerprint{Avalanche(lo_), Avalanche(hi_)};
}

bool CanonicalQuery::SameShape(const DatabaseSchema& other_schema,
                               const AttrSet& other_target) const {
  if (schema.NumRelations() != other_schema.NumRelations()) return false;
  for (int i = 0; i < schema.NumRelations(); ++i) {
    if (schema[i] != other_schema[i]) return false;
  }
  return target == other_target;
}

CanonicalQuery CanonicalizeQuery(const DatabaseSchema& d,
                                 const AttrSet& target) {
  CanonicalQuery out;
  std::unordered_map<AttrId, AttrId> to_canonical;
  auto canon = [&](AttrId a) {
    auto it = to_canonical.find(a);
    if (it != to_canonical.end()) return it->second;
    AttrId c = static_cast<AttrId>(out.canonical_to_caller.size());
    to_canonical.emplace(a, c);
    out.canonical_to_caller.push_back(a);
    return c;
  };
  std::vector<RelationSchema> relabeled;
  relabeled.reserve(static_cast<size_t>(d.NumRelations()));
  for (int i = 0; i < d.NumRelations(); ++i) {
    AttrSet r;
    d[i].ForEach([&](AttrId a) { r.Insert(canon(a)); });
    relabeled.push_back(std::move(r));
  }
  out.schema = DatabaseSchema(std::move(relabeled));
  target.ForEach([&](AttrId a) { out.target.Insert(canon(a)); });

  FingerprintMixer mixer(/*seed=*/0x67796f00U);  // "gyo\0"
  mixer.Absorb(static_cast<uint64_t>(out.schema.NumRelations()));
  for (int i = 0; i < out.schema.NumRelations(); ++i) {
    mixer.AbsorbAttrSet(out.schema[i]);
  }
  mixer.Absorb(~uint64_t{0});  // schema/target sentinel
  mixer.AbsorbAttrSet(out.target);
  out.fingerprint = mixer.Digest();
  return out;
}

Fingerprint FingerprintDatabase(const DatabaseSchema& d, const AttrSet& target,
                                const std::vector<Relation>& states,
                                uint64_t seed) {
  GYO_CHECK(static_cast<int>(states.size()) == d.NumRelations());
  FingerprintMixer mixer(seed);
  mixer.Absorb(static_cast<uint64_t>(d.NumRelations()));
  for (int i = 0; i < d.NumRelations(); ++i) mixer.AbsorbAttrSet(d[i]);
  mixer.Absorb(~uint64_t{0});
  mixer.AbsorbAttrSet(target);
  for (const Relation& r : states) {
    mixer.Absorb(static_cast<uint64_t>(r.NumRows()));
    mixer.Absorb(r.IsCanonical() ? 1 : 0);
    for (int c = 0; c < r.Arity(); ++c) {
      const Value* col = r.ColData(c);
      for (int64_t i = 0; i < r.NumRows(); ++i) {
        mixer.Absorb(static_cast<uint64_t>(col[i]));
      }
    }
  }
  return mixer.Digest();
}

}  // namespace cache
}  // namespace gyo
