#ifndef GYO_CACHE_PLAN_CACHE_H_
#define GYO_CACHE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cache/fingerprint.h"
#include "exec/physical_plan.h"
#include "rel/program.h"
#include "schema/schema.h"
#include "util/attr_set.h"

namespace gyo {
namespace cache {

/// The solver strategies the plan cache memoizes — mirrors the serve wire
/// enum (serve/frame.h) without depending on it.
enum class PlanStrategy : uint8_t {
  kAuto = 0,
  kFullJoin = 1,
  kCcPruned = 2,
  kYannakakis = 3,
};

struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;
};

/// Memoizes the pure schema-level work of answering a query: the GYO
/// reduction / join-tree construction inside the strategy builders, the
/// resulting semijoin-join-project Program, and the PhysicalPlan dataflow
/// analysis (statement dependencies + reader counts). Keyed by the canonical
/// hypergraph fingerprint of (schema, target) plus the requested strategy,
/// with the canonical form stored and compared exactly on every lookup so a
/// fingerprint collision is a miss, never a wrong plan.
///
/// Entries are stored in *canonical* attribute space: on a hit the program's
/// projection targets are remapped through the query's inverse relabeling
/// (join/semijoin statements carry only relation indices, which are
/// rename-invariant, and so is the dataflow analysis). Both the hit and the
/// miss path therefore return the same caller-space program for the same
/// canonical query — byte-for-byte — which is what makes cached serve
/// replies bit-identical to first-time execution.
///
/// Bounded LRU, thread-safe: lookups and inserts take one mutex; builds run
/// outside it (two racing misses may both build — the second insert is
/// dropped in favor of the first).
class PlanCache {
 public:
  struct Options {
    /// Entry bound; evicting the least recently used beyond it. Must be >= 1.
    size_t max_entries = 128;
  };

  PlanCache() : PlanCache(Options()) {}
  explicit PlanCache(const Options& options);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  struct Result {
    /// True when the plan came out of the cache (including memoized
    /// "Yannakakis does not apply" verdicts).
    bool hit = false;
    /// True when the schema admitted a join tree (the GYO reduction
    /// succeeded) — memoized, so a kAuto hit resolves without re-reducing.
    bool acyclic = false;
    /// The strategy actually planned (kAuto resolved).
    PlanStrategy resolved = PlanStrategy::kAuto;
    /// Caller-attribute-space program and its compiled plan (analysis shared
    /// with the cache entry's memoized one).
    Program program;
    exec::PhysicalPlan plan;
  };

  /// Returns the memoized (or freshly built and inserted) plan for
  /// (d, target, strategy). nullopt iff strategy == kYannakakis and the
  /// schema is cyclic — that verdict is itself cached, so repeat rejections
  /// cost one fingerprint. kAuto resolves to Yannakakis on tree schemas and
  /// CC-pruned join-project otherwise, exactly like the serve front end.
  std::optional<Result> GetOrBuild(const DatabaseSchema& d,
                                   const AttrSet& target,
                                   PlanStrategy strategy);

  PlanCacheStats stats() const;
  void Clear();

  /// Process-wide cache for CLI / embedding use (gyo_serve instances own
  /// their caches so tests and tenants stay hermetic).
  static PlanCache& Global();

 private:
  struct Entry {
    Fingerprint key;
    PlanStrategy requested;
    // Exact canonical identity (collision guard).
    DatabaseSchema schema;
    AttrSet target;
    // Memoized build products, canonical space.
    bool acyclic = false;
    PlanStrategy resolved = PlanStrategy::kAuto;
    bool has_program = false;
    Program program{0};
    std::vector<std::vector<int>> deps;
    std::vector<int> reader_counts;
  };

  // Builds the canonical-space entry body for (canon, strategy).
  static void Build(const CanonicalQuery& canon, PlanStrategy strategy,
                    Entry* entry);
  // Maps the entry's program/analysis into caller space as a Result.
  static Result ToResult(const Entry& entry, const CanonicalQuery& canon,
                         bool hit);

  const Options options_;
  mutable std::mutex mu_;
  // Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<Fingerprint, std::list<Entry>::iterator, FingerprintHash>
      index_;
  PlanCacheStats stats_;
};

}  // namespace cache
}  // namespace gyo

#endif  // GYO_CACHE_PLAN_CACHE_H_
