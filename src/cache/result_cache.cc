#include "cache/result_cache.h"

#include <utility>

#include "util/check.h"

namespace gyo {
namespace cache {

namespace {

// Independent seeds for the two key lanes (arbitrary odd constants).
constexpr uint64_t kSeedA = 0x7265736c74733161ULL;
constexpr uint64_t kSeedB = 0x7265736c74733262ULL;

}  // namespace

ResultKey MakeResultKey(const DatabaseSchema& d, const AttrSet& target,
                        const std::vector<Relation>& states,
                        uint64_t variant) {
  ResultKey key;
  key.a = FingerprintDatabase(d, target, states, kSeedA ^ variant);
  key.b = FingerprintDatabase(d, target, states, kSeedB ^ Avalanche64(variant));
  return key;
}

ResultCache::ResultCache(const Options& options) : options_(options) {
  GYO_CHECK_MSG(options_.max_bytes >= 0, "ResultCache max_bytes must be >= 0");
}

std::optional<ResultCache::Value> ResultCache::Get(const ResultKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;  // copy under the lock
}

void ResultCache::Put(const ResultKey& key, const Value& value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Deterministic executions of the same key produce the same value —
    // keep the incumbent, just refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  const int64_t bytes = value.result.ArenaBytes();
  stats_.bytes += bytes;
  lru_.push_front(Entry{key, value, bytes});
  index_.emplace(key, lru_.begin());
  while (stats_.bytes > options_.max_bytes && lru_.size() > 1) {
    stats_.bytes -= lru_.back().bytes;
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.entries = lru_.size();
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  stats_ = ResultCacheStats();
}

ResultCache& ResultCache::Global() {
  static ResultCache* cache = new ResultCache(Options());
  return *cache;
}

}  // namespace cache
}  // namespace gyo
