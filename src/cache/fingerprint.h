#ifndef GYO_CACHE_FINGERPRINT_H_
#define GYO_CACHE_FINGERPRINT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rel/relation.h"
#include "schema/schema.h"
#include "util/attr_set.h"

namespace gyo {
namespace cache {

/// A 128-bit content fingerprint — the cache-key discipline throughout
/// src/cache/: keys are fingerprints, and every fingerprinted structure that
/// can afford it (the plan cache's canonical schemas) is additionally stored
/// and compared exactly on lookup, so a hash collision degrades to a cache
/// miss, never to a wrong answer. Where exact comparison is too expensive
/// (the serve result cache's full database contents) two independently
/// seeded fingerprints are combined into a 256-bit key instead.
struct Fingerprint {
  uint64_t lo = 0;
  uint64_t hi = 0;

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator!=(const Fingerprint& a, const Fingerprint& b) {
    return !(a == b);
  }
  friend bool operator<(const Fingerprint& a, const Fingerprint& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
};

struct FingerprintHash {
  size_t operator()(const Fingerprint& f) const {
    // The lanes are already avalanched; fold them.
    return static_cast<size_t>(f.lo ^ (f.hi * 0x9e3779b97f4a7c15ULL));
  }
};

/// A 64-bit finalizer (murmur3-style) — exposed for callers that need to
/// derive decorrelated seeds from one word.
uint64_t Avalanche64(uint64_t x);

/// Incremental 128-bit mixer: two FNV-1a-style lanes with distinct primes,
/// avalanched on Digest(). Word-at-a-time absorption — the callers feed
/// structure (lengths, sentinels) explicitly, so concatenation ambiguities
/// cannot alias two different inputs.
class FingerprintMixer {
 public:
  explicit FingerprintMixer(uint64_t seed = 0);
  void Absorb(uint64_t word);
  void AbsorbAttrSet(const AttrSet& s);
  Fingerprint Digest() const;

 private:
  uint64_t lo_;
  uint64_t hi_;
};

/// A query hypergraph relabeled onto canonical attribute ids — dense ids
/// 0..k-1 assigned by first occurrence scanning the relations in order (and
/// attributes within a relation in increasing caller id), then the target.
/// Two schemas that differ only by an order-preserving renaming of their
/// attributes canonicalize identically; in particular, every schema parsed
/// through a fresh first-appearance Catalog (the gyo_serve request path) is
/// already in canonical form, so its relabeling is the identity.
struct CanonicalQuery {
  /// The schema and target with attributes replaced by canonical ids.
  DatabaseSchema schema;
  AttrSet target;
  /// canonical_to_caller[c] is the caller attribute the canonical id c
  /// stands for — the inverse relabeling used to map a cached program's
  /// projection targets back into the caller's attribute space.
  std::vector<AttrId> canonical_to_caller;
  /// Fingerprint of (schema, target) in canonical space.
  Fingerprint fingerprint;

  /// True iff `other` names the same canonical hypergraph — the exact
  /// comparison that backs up the fingerprint on plan-cache lookups.
  bool SameShape(const DatabaseSchema& other_schema,
                 const AttrSet& other_target) const;
};

/// Canonicalizes (d, target) as described above. Target attributes outside
/// the schema universe get canonical ids too (after all schema attributes),
/// so any well-formed or malformed pair fingerprints deterministically.
CanonicalQuery CanonicalizeQuery(const DatabaseSchema& d,
                                 const AttrSet& target);

/// Content fingerprint of a full database instance in *caller* attribute
/// space: schema structure, target, then every relation's row count,
/// canonical flag, and column arenas. O(total values) single pass. Distinct
/// seeds give independent fingerprints (the serve result cache combines two
/// into its 256-bit data key).
Fingerprint FingerprintDatabase(const DatabaseSchema& d, const AttrSet& target,
                                const std::vector<Relation>& states,
                                uint64_t seed);

}  // namespace cache
}  // namespace gyo

#endif  // GYO_CACHE_FINGERPRINT_H_
