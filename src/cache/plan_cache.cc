#include "cache/plan_cache.h"

#include <utility>

#include "rel/solver.h"
#include "util/check.h"

namespace gyo {
namespace cache {

namespace {

// The map key: the canonical query fingerprint with the requested strategy
// mixed in (one cache holds entries for every strategy).
Fingerprint KeyFor(const Fingerprint& canon, PlanStrategy strategy) {
  FingerprintMixer mixer(/*seed=*/canon.lo);
  mixer.Absorb(canon.hi);
  mixer.Absorb(static_cast<uint64_t>(strategy));
  return mixer.Digest();
}

// Replays `p` with projection targets remapped through canonical ->
// caller ids. Join/semijoin statements carry only relation indices, which
// the relabeling does not touch.
Program RemapProgram(const Program& p,
                     const std::vector<AttrId>& canonical_to_caller) {
  Program out(p.num_base());
  for (const Program::Statement& s : p.Statements()) {
    switch (s.kind) {
      case Program::Statement::Kind::kJoin:
        out.AddJoin(s.lhs, s.rhs);
        break;
      case Program::Statement::Kind::kSemijoin:
        out.AddSemijoin(s.lhs, s.rhs);
        break;
      case Program::Statement::Kind::kProject: {
        AttrSet target;
        s.target.ForEach([&](AttrId c) {
          GYO_CHECK(static_cast<size_t>(c) < canonical_to_caller.size());
          target.Insert(canonical_to_caller[static_cast<size_t>(c)]);
        });
        out.AddProject(s.lhs, target);
        break;
      }
    }
  }
  return out;
}

}  // namespace

PlanCache::PlanCache(const Options& options) : options_(options) {
  GYO_CHECK_MSG(options_.max_entries >= 1,
                "PlanCache max_entries must be >= 1");
}

void PlanCache::Build(const CanonicalQuery& canon, PlanStrategy strategy,
                      Entry* entry) {
  entry->requested = strategy;
  entry->schema = canon.schema;
  entry->target = canon.target;
  std::optional<Program> yannakakis;
  switch (strategy) {
    case PlanStrategy::kFullJoin:
      entry->resolved = PlanStrategy::kFullJoin;
      entry->program = FullJoinProgram(canon.schema, canon.target);
      entry->has_program = true;
      // FullJoin never runs the GYO reduction; probe acyclicity anyway so
      // the flag means the same thing on every entry.
      entry->acyclic =
          YannakakisProgram(canon.schema, canon.target).has_value();
      break;
    case PlanStrategy::kCcPruned:
      entry->resolved = PlanStrategy::kCcPruned;
      entry->program = CCPrunedProgram(canon.schema, canon.target);
      entry->has_program = true;
      entry->acyclic =
          YannakakisProgram(canon.schema, canon.target).has_value();
      break;
    case PlanStrategy::kYannakakis:
      yannakakis = YannakakisProgram(canon.schema, canon.target);
      entry->acyclic = yannakakis.has_value();
      entry->resolved = PlanStrategy::kYannakakis;
      if (yannakakis.has_value()) {
        entry->program = *std::move(yannakakis);
        entry->has_program = true;
      }
      break;
    case PlanStrategy::kAuto:
      yannakakis = YannakakisProgram(canon.schema, canon.target);
      entry->acyclic = yannakakis.has_value();
      if (yannakakis.has_value()) {
        entry->resolved = PlanStrategy::kYannakakis;
        entry->program = *std::move(yannakakis);
      } else {
        entry->resolved = PlanStrategy::kCcPruned;
        entry->program = CCPrunedProgram(canon.schema, canon.target);
      }
      entry->has_program = true;
      break;
  }
  if (entry->has_program) {
    // Memoize the dataflow analysis alongside the program: statement
    // indices are rename-invariant, so the analysis transfers verbatim to
    // every caller-space remapping of this entry.
    exec::PhysicalPlan plan = exec::PhysicalPlan::Compile(entry->program);
    entry->deps = plan.Dependencies();
    entry->reader_counts = plan.ReaderCounts();
  }
}

PlanCache::Result PlanCache::ToResult(const Entry& entry,
                                      const CanonicalQuery& canon, bool hit) {
  Program program = RemapProgram(entry.program, canon.canonical_to_caller);
  Program plan_program = program;
  return Result{hit, entry.acyclic, entry.resolved, std::move(program),
                exec::PhysicalPlan::FromAnalysis(std::move(plan_program),
                                                 entry.deps,
                                                 entry.reader_counts)};
}

std::optional<PlanCache::Result> PlanCache::GetOrBuild(const DatabaseSchema& d,
                                                       const AttrSet& target,
                                                       PlanStrategy strategy) {
  const CanonicalQuery canon = CanonicalizeQuery(d, target);
  const Fingerprint key = KeyFor(canon.fingerprint, strategy);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end() && it->second->requested == strategy &&
        canon.SameShape(it->second->schema, it->second->target)) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second);  // most recently used
      const Entry& entry = *it->second;
      if (!entry.has_program) return std::nullopt;  // memoized cyclic verdict
      return ToResult(entry, canon, /*hit=*/true);
    }
    ++stats_.misses;
  }

  // Miss: build outside the lock (pure CPU over the canonical schema), then
  // insert. A racing miss for the same key may get here first — keep the
  // incumbent and drop ours; both builds are deterministic and equal.
  Entry fresh;
  fresh.key = key;
  Build(canon, strategy, &fresh);
  std::optional<Result> result =
      fresh.has_program
          ? std::optional<Result>(ToResult(fresh, canon, /*hit=*/false))
          : std::nullopt;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (index_.find(key) == index_.end()) {
      lru_.push_front(std::move(fresh));
      index_.emplace(key, lru_.begin());
      while (lru_.size() > options_.max_entries) {
        index_.erase(lru_.back().key);
        lru_.pop_back();
        ++stats_.evictions;
      }
    }
    stats_.entries = lru_.size();
  }
  return result;
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  stats_ = PlanCacheStats();
}

PlanCache& PlanCache::Global() {
  static PlanCache* cache = new PlanCache(Options());
  return *cache;
}

}  // namespace cache
}  // namespace gyo
