#ifndef GYO_CACHE_RESULT_CACHE_H_
#define GYO_CACHE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cache/fingerprint.h"
#include "rel/program.h"
#include "rel/relation.h"
#include "schema/schema.h"
#include "util/attr_set.h"

namespace gyo {
namespace cache {

/// Content-addressed key of a full query: two independently-seeded 128-bit
/// fingerprints (256 bits total) over schema, target, every base tuple, and
/// a caller-chosen variant word (strategy, determinism flags, ...). Unlike
/// the plan cache there is no stored-query exact compare — retaining every
/// base relation per entry would defeat the cache — so the key must make
/// collisions negligible: a false hit requires the same input to collide in
/// two unrelated 128-bit hashes at once.
struct ResultKey {
  Fingerprint a;
  Fingerprint b;

  friend bool operator==(const ResultKey& x, const ResultKey& y) {
    return x.a == y.a && x.b == y.b;
  }
  friend bool operator!=(const ResultKey& x, const ResultKey& y) {
    return !(x == y);
  }
};

struct ResultKeyHash {
  size_t operator()(const ResultKey& k) const {
    return static_cast<size_t>(k.a.lo);
  }
};

/// Fingerprints the full query content under both lanes' seeds. `variant`
/// distinguishes executions that may differ on identical data (resolved
/// strategy, deterministic mode, ...).
ResultKey MakeResultKey(const DatabaseSchema& d, const AttrSet& target,
                        const std::vector<Relation>& states, uint64_t variant);

struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;
  /// Result-relation bytes currently held (ArenaBytes).
  int64_t bytes = 0;
};

/// Memoizes complete query answers — the final result relation plus the
/// execution's Program::Stats — keyed by ResultKey. A hit replays the
/// original answer byte-for-byte, which is only sound for deterministic
/// executions; callers gate nondeterministic runs out (gyo_serve only
/// consults it for deterministic requests). Bounded by result bytes,
/// LRU-evicted, thread-safe; Get returns copies made under the lock.
class ResultCache {
 public:
  struct Options {
    /// Bound on cached result bytes (ArenaBytes). One entry always fits.
    int64_t max_bytes = 32ll << 20;
  };

  struct Value {
    Relation result;
    Program::Stats stats;
  };

  ResultCache() : ResultCache(Options()) {}
  explicit ResultCache(const Options& options);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  std::optional<Value> Get(const ResultKey& key);
  void Put(const ResultKey& key, const Value& value);

  ResultCacheStats stats() const;
  void Clear();

  static ResultCache& Global();

 private:
  struct Entry {
    ResultKey key;
    Value value;
    int64_t bytes = 0;
  };

  const Options options_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<ResultKey, std::list<Entry>::iterator, ResultKeyHash>
      index_;
  ResultCacheStats stats_;
};

}  // namespace cache
}  // namespace gyo

#endif  // GYO_CACHE_RESULT_CACHE_H_
