#include "cache/state_cache.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "rel/reducer.h"
#include "util/check.h"

namespace gyo {
namespace cache {

namespace {

std::atomic<uint64_t> next_db_id{1};

}  // namespace

VersionedDatabase::VersionedDatabase(DatabaseSchema schema,
                                     std::vector<Relation> states)
    : id_(next_db_id.fetch_add(1, std::memory_order_relaxed)),
      schema_(std::move(schema)),
      states_(std::move(states)),
      versions_(states_.size(), 0) {
  GYO_CHECK(static_cast<int>(states_.size()) == schema_.NumRelations());
  for (int i = 0; i < schema_.NumRelations(); ++i) {
    GYO_CHECK_MSG(states_[static_cast<size_t>(i)].Schema() == schema_[i],
                  "state %d does not match its schema", i);
  }
}

void VersionedDatabase::Append(int rel, const Relation& rows) {
  GYO_CHECK_MSG(rel >= 0 && rel < schema_.NumRelations(),
                "Append relation id %d out of range", rel);
  Relation& dst = states_[static_cast<size_t>(rel)];
  GYO_CHECK_MSG(rows.Schema() == dst.Schema(),
                "Append schema mismatch on relation %d", rel);
  const int64_t base = dst.AppendRows(rows.NumRows());
  for (int c = 0; c < dst.Arity(); ++c) {
    const Value* src = rows.ColData(c);
    Value* out = dst.ColData(c) + base;
    std::copy(src, src + rows.NumRows(), out);
  }
  ++versions_[static_cast<size_t>(rel)];
}

namespace {

// Column indices of `attrs` (in increasing attribute order) within `r`.
std::vector<int> ColsOf(const Relation& r, const AttrSet& attrs) {
  std::vector<int> cols;
  attrs.ForEach([&](AttrId a) { cols.push_back(r.ColIndex(a)); });
  return cols;
}

// Row `row` of `r` projected onto the given columns.
std::vector<Value> ProjectRow(const Relation& r, int64_t row,
                              const std::vector<int>& cols) {
  std::vector<Value> key;
  key.reserve(cols.size());
  for (int c : cols) key.push_back(r.Cell(row, c));
  return key;
}

// Greedy leftmost embedding of `sub` (a physical subsequence) into the
// first `prefix_rows` rows of `super`: marks the matched row ids in
// `selected`. Duplicate rows survive or dangle together under semijoin
// reduction, so whichever copies the greedy match picks, the selected
// values — and the gathered output — are the same.
void MarkSubsequence(const Relation& super, int64_t prefix_rows,
                     const Relation& sub, std::vector<char>* selected) {
  GYO_CHECK(super.Schema() == sub.Schema());
  GYO_CHECK(sub.NumRows() <= prefix_rows);
  const int arity = super.Arity();
  int64_t q = 0;
  for (int64_t p = 0; p < prefix_rows && q < sub.NumRows(); ++p) {
    bool eq = true;
    for (int c = 0; c < arity; ++c) {
      if (super.Cell(p, c) != sub.Cell(q, c)) {
        eq = false;
        break;
      }
    }
    if (eq) {
      (*selected)[static_cast<size_t>(p)] = 1;
      ++q;
    }
  }
  GYO_CHECK_MSG(q == sub.NumRows(),
                "prev_reduced is not a prefix subsequence of the current "
                "state — was the database mutated non-append-only?");
}

// Gathers the selected rows of `src` in physical row order. Flag rule
// matches a semijoin chain's output exactly: an empty result is canonical
// (freshly constructed, nothing appended), a non-empty one inherits the
// base relation's flag (Semijoin propagates its lhs flag through every
// chain step with survivors).
Relation GatherSelected(const Relation& src, const std::vector<char>& selected,
                        int64_t num_selected) {
  Relation out(src.Schema());
  if (num_selected == 0) return out;
  out.AppendRows(num_selected);
  for (int c = 0; c < src.Arity(); ++c) {
    const Value* in = src.ColData(c);
    Value* dst = out.ColData(c);
    int64_t w = 0;
    for (int64_t i = 0; i < src.NumRows(); ++i) {
      if (selected[static_cast<size_t>(i)]) dst[w++] = in[i];
    }
  }
  if (src.IsCanonical()) out.MarkCanonical();
  return out;
}

}  // namespace

std::vector<Relation> DeltaReduce(const DatabaseSchema& d,
                                  const std::vector<Relation>& now,
                                  const std::vector<int64_t>& prev_num_rows,
                                  const std::vector<Relation>& prev_reduced,
                                  const exec::ExecContext& ctx, int* steps,
                                  DeltaStats* delta) {
  const int n = d.NumRelations();
  GYO_CHECK(static_cast<int>(now.size()) == n);
  GYO_CHECK(static_cast<int>(prev_num_rows.size()) == n);
  GYO_CHECK(static_cast<int>(prev_reduced.size()) == n);

  DeltaStats dstats;
  int64_t grow_scans = 0;

  // Recover each cached fixpoint state as a selection over the current
  // base: the old fixpoint is a physical subsequence of the old base, and
  // the old base is a physical prefix of the current one (append-only).
  // removed[i] are the prefix rows the old fixpoint dangled — the only
  // prefix rows the appends can revive.
  std::vector<std::vector<char>> selected(static_cast<size_t>(n));
  std::vector<std::vector<int64_t>> removed(static_cast<size_t>(n));
  std::vector<std::vector<int64_t>> grown(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const size_t si = static_cast<size_t>(i);
    const Relation& base = now[si];
    const int64_t prefix = prev_num_rows[si];
    GYO_CHECK_MSG(prefix >= 0 && prefix <= base.NumRows(),
                  "prev_num_rows[%d] out of range", i);
    selected[si].assign(static_cast<size_t>(base.NumRows()), 0);
    MarkSubsequence(base, prefix, prev_reduced[si], &selected[si]);
    grow_scans += prefix;
    for (int64_t p = 0; p < prefix; ++p) {
      if (!selected[si][static_cast<size_t>(p)]) removed[si].push_back(p);
    }
    // Appended rows join the start state unconditionally and seed the grow
    // phase's worklist.
    for (int64_t p = prefix; p < base.NumRows(); ++p) {
      selected[si][static_cast<size_t>(p)] = 1;
      grown[si].push_back(p);
    }
    dstats.appended_rows += base.NumRows() - prefix;
  }

  // Grow phase: revival candidates propagate outward from the appends. A
  // prefix row the old fixpoint removed can only rejoin the new fixpoint if
  // it matches, in some neighbor, a row that is itself appended or revived
  // — so repeatedly re-admit removed rows that exactly match a
  // just-grown neighbor row on the shared attributes, until quiescent.
  // Exact matching (sorted keys + binary search, no hashing shortcuts)
  // keeps the start state a sound over-approximation: false positives cost
  // shrink work, false negatives would lose tuples.
  std::vector<std::vector<int64_t>> g_cur = grown;
  std::vector<std::vector<int64_t>> g_next(static_cast<size_t>(n));
  bool any = false;
  for (int i = 0; i < n; ++i) {
    any = any || !g_cur[static_cast<size_t>(i)].empty();
  }
  while (any) {
    ++dstats.grow_rounds;
    for (int i = 0; i < n; ++i) g_next[static_cast<size_t>(i)].clear();
    for (int i = 0; i < n; ++i) {
      const size_t si = static_cast<size_t>(i);
      if (removed[si].empty()) continue;
      for (int j = 0; j < n; ++j) {
        const size_t sj = static_cast<size_t>(j);
        if (i == j || g_cur[sj].empty() || !d[i].Intersects(d[j])) continue;
        const AttrSet shared = d[i].Intersect(d[j]);
        const std::vector<int> cols_i = ColsOf(now[si], shared);
        const std::vector<int> cols_j = ColsOf(now[sj], shared);
        std::vector<std::vector<Value>> keys;
        keys.reserve(g_cur[sj].size());
        for (int64_t row : g_cur[sj]) {
          keys.push_back(ProjectRow(now[sj], row, cols_j));
        }
        std::sort(keys.begin(), keys.end());
        grow_scans += static_cast<int64_t>(g_cur[sj].size());
        std::vector<int64_t> still_removed;
        still_removed.reserve(removed[si].size());
        for (int64_t row : removed[si]) {
          ++grow_scans;
          if (std::binary_search(keys.begin(), keys.end(),
                                 ProjectRow(now[si], row, cols_i))) {
            selected[si][static_cast<size_t>(row)] = 1;
            g_next[si].push_back(row);
            ++dstats.revived_candidates;
          } else {
            still_removed.push_back(row);
          }
        }
        removed[si].swap(still_removed);
      }
    }
    any = false;
    for (int i = 0; i < n; ++i) {
      const size_t si = static_cast<size_t>(i);
      if (!g_next[si].empty()) {
        any = true;
        // Rows revived this round grow the relation for the next round and
        // mark it dirty for the shrink phase.
        grown[si].insert(grown[si].end(), g_next[si].begin(),
                         g_next[si].end());
      }
    }
    g_cur.swap(g_next);
  }

  // Materialize the start state — every relation an in-order selection of
  // the current base — and run the shrink phase: grown relations re-check
  // all their neighbors in round one (their new rows are unverified), then
  // ordinary shrunk-neighbor delta rounds converge to the new fixpoint.
  std::vector<Relation> start;
  start.reserve(static_cast<size_t>(n));
  std::vector<int> first_round;
  for (int i = 0; i < n; ++i) {
    const size_t si = static_cast<size_t>(i);
    int64_t m = 0;
    for (char s : selected[si]) m += s;
    start.push_back(GatherSelected(now[si], selected[si], m));
    if (!grown[si].empty()) first_round.push_back(i);
  }
  std::vector<Relation> out =
      SemijoinFixpointFrom(d, std::move(start), first_round, ctx, steps);
  if (ctx.query_stats != nullptr) {
    ctx.query_stats->rows_rescanned += grow_scans;
  }
  if (delta != nullptr) *delta = dstats;
  return out;
}

// ---------------------------------------------------------------------------
// StateCache

StateCache::StateCache(const Options& options) : options_(options) {
  GYO_CHECK_MSG(options_.max_bytes >= 0, "StateCache max_bytes must be >= 0");
}

int64_t StateCache::BytesOf(const std::vector<Relation>& states) {
  int64_t bytes = 0;
  for (const Relation& r : states) bytes += r.ArenaBytes();
  return bytes;
}

std::vector<Relation> StateCache::GetReduced(const VersionedDatabase& db,
                                             const exec::ExecContext& ctx,
                                             int* steps) {
  // Snapshot whatever cached work is reusable under the lock.
  enum class Mode { kMiss, kExact, kDelta };
  Mode mode = Mode::kMiss;
  std::vector<uint64_t> cached_versions;
  std::vector<int64_t> cached_rows;
  std::vector<Relation> cached_reduced;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(db.id());
    if (it != index_.end()) {
      Entry& entry = *it->second;
      lru_.splice(lru_.begin(), lru_, it->second);
      if (entry.versions == db.versions()) {
        ++stats_.hits;
        if (steps != nullptr) *steps = 0;
        if (ctx.query_stats != nullptr) {
          *ctx.query_stats = exec::QueryStats();
          ctx.query_stats->state_cache_hits = 1;
        }
        return entry.reduced;  // copy under the lock
      }
      // The database only appends, so an older entry is always a valid
      // delta base: its row counts delimit the prefix the old fixpoint
      // reduced.
      mode = Mode::kDelta;
      ++stats_.delta_refreshes;
      cached_versions = entry.versions;
      cached_rows = entry.num_rows;
      cached_reduced = entry.reduced;  // copy under the lock
    } else {
      ++stats_.misses;
    }
  }

  // Compute outside the lock.
  std::vector<Relation> reduced;
  if (mode == Mode::kDelta) {
    reduced = DeltaReduce(db.schema(), db.states(), cached_rows,
                          cached_reduced, ctx, steps);
    if (ctx.query_stats != nullptr) ctx.query_stats->state_cache_hits = 1;
  } else {
    reduced = SemijoinFixpoint(db.schema(), db.states(), ctx, steps);
  }

  // Re-cache under the current versions and enforce the byte bound.
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(db.id());
    if (it != index_.end()) {
      stats_.bytes -= it->second->bytes;
      lru_.erase(it->second);
      index_.erase(it);
    }
    Entry entry;
    entry.db_id = db.id();
    entry.versions = db.versions();
    entry.num_rows.reserve(db.states().size());
    for (const Relation& r : db.states()) entry.num_rows.push_back(r.NumRows());
    entry.reduced = reduced;  // keep a copy; return the caller's
    entry.bytes = BytesOf(entry.reduced);
    stats_.bytes += entry.bytes;
    lru_.push_front(std::move(entry));
    index_[db.id()] = lru_.begin();
    while (stats_.bytes > options_.max_bytes && lru_.size() > 1) {
      stats_.bytes -= lru_.back().bytes;
      index_.erase(lru_.back().db_id);
      lru_.pop_back();
      ++stats_.evictions;
    }
    stats_.entries = lru_.size();
  }
  return reduced;
}

StateCacheStats StateCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void StateCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  stats_ = StateCacheStats();
}

StateCache& StateCache::Global() {
  static StateCache* cache = new StateCache(Options());
  return *cache;
}

}  // namespace cache
}  // namespace gyo
