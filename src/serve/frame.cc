#include "serve/frame.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

namespace gyo {
namespace serve {

namespace {

// Decode-side sanity bounds, all well under kDefaultMaxFrameBytes: they
// exist so a tiny hostile frame cannot make the server allocate or intern
// unboundedly (a row-count claim is checked against the bytes actually
// present before any allocation).
constexpr size_t kMaxSpecBytes = 64u << 10;
constexpr int kMaxRelations = 1024;
constexpr int kMaxArity = 4096;

bool SetError(std::string* error, const char* message) {
  if (error != nullptr) *error = message;
  return false;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone:
      return "none";
    case ErrorCode::kMalformed:
      return "malformed";
    case ErrorCode::kFrameTooLarge:
      return "frame_too_large";
    case ErrorCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case ErrorCode::kBacklogFull:
      return "backlog_full";
    case ErrorCode::kShuttingDown:
      return "shutting_down";
    case ErrorCode::kUnsupported:
      return "unsupported";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

const char* StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kAuto:
      return "auto";
    case Strategy::kFullJoin:
      return "full_join";
    case Strategy::kCcPruned:
      return "cc_pruned";
    case Strategy::kYannakakis:
      return "yannakakis";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Writer

void Writer::U32Fixed(uint32_t v) {
  if (!Fits(4)) return;
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
  buf_.push_back(static_cast<uint8_t>(v >> 16));
  buf_.push_back(static_cast<uint8_t>(v >> 24));
}

void Writer::F64(double v) {
  if (!Fits(8)) return;
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<uint8_t>(bits >> (8 * i)));
  }
}

void Writer::Varint(uint64_t v) {
  uint8_t bytes[10];
  int n = 0;
  while (v >= 0x80) {
    bytes[n++] = static_cast<uint8_t>(v) | 0x80;
    v >>= 7;
  }
  bytes[n++] = static_cast<uint8_t>(v);
  if (!Fits(static_cast<size_t>(n))) return;
  buf_.insert(buf_.end(), bytes, bytes + n);
}

void Writer::Zigzag(int64_t v) {
  Varint((static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63));
}

void Writer::Str(std::string_view s) {
  Varint(s.size());
  if (!Fits(s.size())) return;
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Writer::RelationData(const Relation& r) {
  Varint(static_cast<uint64_t>(r.Arity()));
  U8(r.IsCanonical() ? 1 : 0);
  Varint(static_cast<uint64_t>(r.NumRows()));
  for (int c = 0; c < r.Arity(); ++c) {
    const Value* col = r.ColData(c);
    for (int64_t i = 0; i < r.NumRows(); ++i) Zigzag(col[i]);
  }
}

void Writer::Begin(FrameType type) {
  buf_.clear();
  overflowed_ = false;
  U32Fixed(0);  // patched by Finish()
  U8(static_cast<uint8_t>(type));
}

std::vector<uint8_t> Writer::Finish() {
  const size_t payload = buf_.size() - kFrameHeaderBytes;
  if (overflowed_ || payload > kMaxWirePayloadBytes) {
    // Never emit a frame whose u32 length prefix would truncate or lie.
    buf_.clear();
    return {};
  }
  buf_[0] = static_cast<uint8_t>(payload);
  buf_[1] = static_cast<uint8_t>(payload >> 8);
  buf_[2] = static_cast<uint8_t>(payload >> 16);
  buf_[3] = static_cast<uint8_t>(payload >> 24);
  return std::move(buf_);
}

// ---------------------------------------------------------------------------
// Reader

bool Reader::U8(uint8_t* out) {
  if (!ok_ || p_ == end_) return Fail();
  *out = *p_++;
  return true;
}

bool Reader::F64(double* out) {
  if (!ok_ || Remaining() < 8) return Fail();
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(p_[i]) << (8 * i);
  }
  p_ += 8;
  std::memcpy(out, &bits, sizeof(*out));
  return true;
}

bool Reader::Varint(uint64_t* out) {
  if (!ok_) return false;
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (p_ == end_) return Fail();
    const uint8_t byte = *p_++;
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      // The 10th byte may only carry the u64's top bit.
      if (shift == 63 && byte > 1) return Fail();
      *out = v;
      return true;
    }
  }
  return Fail();  // > 10 continuation bytes
}

bool Reader::Zigzag(int64_t* out) {
  uint64_t v;
  if (!Varint(&v)) return false;
  *out = static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
  return true;
}

bool Reader::Str(std::string* out) {
  uint64_t len;
  if (!Varint(&len)) return false;
  if (len > Remaining()) return Fail();
  out->assign(reinterpret_cast<const char*>(p_), static_cast<size_t>(len));
  p_ += len;
  return true;
}

bool Reader::RelationData(const AttrSet& schema, Relation* out) {
  uint64_t arity, rows;
  uint8_t canonical;
  if (!Varint(&arity) || !U8(&canonical) || !Varint(&rows)) return false;
  Relation r(schema);
  if (arity != static_cast<uint64_t>(r.Arity())) return Fail();
  if (canonical > 1) return Fail();
  // Every value is at least one wire byte, so a row-count claim larger than
  // the bytes on hand is rejected before the allocation it implies.
  if (rows > Remaining() || (arity > 0 && rows * arity > Remaining())) {
    return Fail();
  }
  if (arity == 0 && rows > 1) return Fail();  // zero-column: 0 or 1 row
  r.AppendRows(static_cast<int64_t>(rows));
  for (uint64_t c = 0; c < arity; ++c) {
    Value* col = r.ColData(static_cast<int>(c));
    for (uint64_t i = 0; i < rows; ++i) {
      if (!Zigzag(&col[i])) return false;
    }
  }
  if (canonical == 1) {
    // Verify the claim instead of trusting it: a false flag would trip
    // debug assertions (and break set semantics) downstream.
    for (int64_t i = 1; i < r.NumRows(); ++i) {
      if (!(r.Row(i - 1) < r.Row(i))) return Fail();
    }
    r.MarkCanonical();
  }
  *out = std::move(r);
  return true;
}

// ---------------------------------------------------------------------------
// Message encoders

std::vector<uint8_t> EncodeQueryRequest(const QueryRequest& request,
                                        size_t max_payload_bytes) {
  Writer w;
  w.LimitPayload(max_payload_bytes);
  w.Begin(FrameType::kQueryRequest);
  w.Str(request.schema_spec);
  w.Str(request.target_spec);
  w.U8(static_cast<uint8_t>(request.strategy));
  w.Varint(request.deadline_ms);
  w.Varint(request.submitter);
  w.U8(static_cast<uint8_t>((request.deterministic ? 1 : 0) |
                            (request.want_plan ? 2 : 0)));
  w.Varint(request.states.size());
  for (const Relation& r : request.states) w.RelationData(r);
  return w.Finish();
}

std::vector<uint8_t> EncodeStatusRequest() {
  Writer w;
  w.Begin(FrameType::kStatusRequest);
  return w.Finish();
}

std::vector<uint8_t> EncodeQueryResponse(const QueryResponse& response,
                                         size_t max_payload_bytes) {
  Writer w;
  w.LimitPayload(max_payload_bytes);
  w.Begin(FrameType::kQueryResponse);
  w.U8(response.has_plan ? 1 : 0);
  w.RelationData(response.result);
  w.Zigzag(response.stats.max_intermediate_rows);
  w.Zigzag(response.stats.total_rows_produced);
  w.Zigzag(response.stats.result_rows);
  const exec::QueryStats& q = response.query_stats;
  w.F64(q.queue_wait_seconds);
  w.F64(q.run_time_seconds);
  w.Zigzag(q.tasks);
  w.Zigzag(q.morsels);
  w.Zigzag(q.peak_state_bytes);
  w.Zigzag(q.retired_states);
  w.Zigzag(q.bloom_partition_skips);
  w.Zigzag(q.probe_rows_pruned);
  w.Zigzag(q.tasks_stolen);
  w.Zigzag(q.affinity_hits);
  w.Zigzag(q.affinity_misses);
  w.Zigzag(q.queue_depth_at_admit);
  w.Zigzag(q.plan_cache_hits);
  w.Zigzag(q.state_cache_hits);
  w.Zigzag(q.delta_rounds);
  w.Zigzag(q.rows_rescanned);
  w.Zigzag(q.sip_rows_pruned);
  w.Zigzag(q.zone_map_skips);
  if (response.has_plan) {
    w.Varint(static_cast<uint64_t>(response.plan.num_statements));
    w.Varint(static_cast<uint64_t>(response.plan.critical_path));
    w.Varint(static_cast<uint64_t>(response.plan.num_source_statements));
    w.U8(static_cast<uint8_t>(response.plan.strategy));
  }
  return w.Finish();
}

std::vector<uint8_t> EncodeStatusResponse(const StatusResponse& status) {
  Writer w;
  w.Begin(FrameType::kStatusResponse);
  const exec::ExecutorPool::PoolStatus& pool = status.pool;
  w.Varint(static_cast<uint64_t>(pool.threads));
  w.Varint(static_cast<uint64_t>(pool.max_concurrent_queries));
  w.Varint(static_cast<uint64_t>(pool.running));
  w.Varint(static_cast<uint64_t>(pool.waiting));
  w.Varint(pool.submitters.size());
  for (const auto& s : pool.submitters) {
    w.Varint(s.id);
    w.Varint(static_cast<uint64_t>(s.running));
    w.Varint(static_cast<uint64_t>(s.waiting));
  }
  w.Varint(status.connections_accepted);
  w.Varint(status.connections_active);
  w.Varint(status.queries_served);
  w.Varint(status.queries_shed_deadline);
  w.Varint(status.queries_shed_backlog);
  w.Varint(status.protocol_errors);
  w.U8(status.draining ? 1 : 0);
  w.Varint(status.tasks_stolen);
  w.Varint(status.affinity_hits);
  w.Varint(status.affinity_misses);
  w.Varint(status.sip_rows_pruned);
  w.Varint(status.zone_map_skips);
  w.Varint(status.plan_cache_hits);
  w.Varint(status.plan_cache_misses);
  w.Varint(status.result_cache_hits);
  w.Varint(status.result_cache_misses);
  return w.Finish();
}

std::vector<uint8_t> EncodeError(ErrorCode code, std::string_view message) {
  Writer w;
  w.Begin(FrameType::kError);
  w.U8(static_cast<uint8_t>(code));
  w.Str(message);
  return w.Finish();
}

// ---------------------------------------------------------------------------
// Message decoders

bool DecodeQueryRequest(const uint8_t* body, size_t size, Catalog& catalog,
                        QueryRequest* request, DatabaseSchema* schema,
                        AttrSet* target, std::string* error) {
  Reader r(body, size);
  QueryRequest req;
  uint8_t strategy, flags;
  uint64_t num_states;
  if (!r.Str(&req.schema_spec) || !r.Str(&req.target_spec) ||
      !r.U8(&strategy) || !r.Varint(&req.deadline_ms) ||
      !r.Varint(&req.submitter) || !r.U8(&flags) || !r.Varint(&num_states)) {
    return SetError(error, "truncated query request");
  }
  if (strategy > static_cast<uint8_t>(Strategy::kYannakakis)) {
    return SetError(error, "unknown strategy");
  }
  if (flags > 3) return SetError(error, "unknown flag bits");
  req.strategy = static_cast<Strategy>(strategy);
  req.deterministic = (flags & 1) != 0;
  req.want_plan = (flags & 2) != 0;
  if (!SafeParseSchema(catalog, req.schema_spec, schema, error)) return false;
  if (!SafeParseAttrSet(catalog, req.target_spec, target, error)) {
    return false;
  }
  // A target outside the schema universe would abort in the planners
  // (GYO_CHECK in program construction/validation) — from the network it
  // must be a typed rejection instead.
  if (!target->IsSubsetOf(schema->Universe())) {
    return SetError(error, "target attribute outside the schema universe");
  }
  if (num_states != static_cast<uint64_t>(schema->NumRelations())) {
    return SetError(error, "state count does not match schema");
  }
  req.states.reserve(static_cast<size_t>(num_states));
  for (int i = 0; i < schema->NumRelations(); ++i) {
    Relation state{AttrSet()};
    if (!r.RelationData(schema->Relation(i), &state)) {
      return SetError(error, "malformed relation state");
    }
    req.states.push_back(std::move(state));
  }
  if (!r.AtEnd()) return SetError(error, "trailing bytes in query request");
  *request = std::move(req);
  return true;
}

bool DecodeQueryResponse(const uint8_t* body, size_t size,
                         const AttrSet& result_schema, QueryResponse* response,
                         std::string* error) {
  Reader r(body, size);
  QueryResponse resp;
  uint8_t flags;
  if (!r.U8(&flags) || flags > 1) {
    return SetError(error, "malformed response flags");
  }
  resp.has_plan = flags != 0;
  if (!r.RelationData(result_schema, &resp.result)) {
    return SetError(error, "malformed result relation");
  }
  exec::QueryStats& q = resp.query_stats;
  if (!r.Zigzag(&resp.stats.max_intermediate_rows) ||
      !r.Zigzag(&resp.stats.total_rows_produced) ||
      !r.Zigzag(&resp.stats.result_rows) || !r.F64(&q.queue_wait_seconds) ||
      !r.F64(&q.run_time_seconds) || !r.Zigzag(&q.tasks) ||
      !r.Zigzag(&q.morsels) || !r.Zigzag(&q.peak_state_bytes) ||
      !r.Zigzag(&q.retired_states) || !r.Zigzag(&q.bloom_partition_skips) ||
      !r.Zigzag(&q.probe_rows_pruned) || !r.Zigzag(&q.tasks_stolen) ||
      !r.Zigzag(&q.affinity_hits) || !r.Zigzag(&q.affinity_misses) ||
      !r.Zigzag(&q.queue_depth_at_admit) || !r.Zigzag(&q.plan_cache_hits) ||
      !r.Zigzag(&q.state_cache_hits) || !r.Zigzag(&q.delta_rounds) ||
      !r.Zigzag(&q.rows_rescanned) || !r.Zigzag(&q.sip_rows_pruned) ||
      !r.Zigzag(&q.zone_map_skips)) {
    return SetError(error, "truncated query response");
  }
  if (resp.has_plan) {
    uint64_t statements, critical, sources;
    uint8_t strategy;
    if (!r.Varint(&statements) || !r.Varint(&critical) ||
        !r.Varint(&sources) || !r.U8(&strategy) ||
        strategy > static_cast<uint8_t>(Strategy::kYannakakis)) {
      return SetError(error, "malformed plan info");
    }
    resp.plan.num_statements = static_cast<int>(statements);
    resp.plan.critical_path = static_cast<int>(critical);
    resp.plan.num_source_statements = static_cast<int>(sources);
    resp.plan.strategy = static_cast<Strategy>(strategy);
  }
  if (!r.AtEnd()) return SetError(error, "trailing bytes in query response");
  *response = std::move(resp);
  return true;
}

bool DecodeStatusResponse(const uint8_t* body, size_t size,
                          StatusResponse* status, std::string* error) {
  Reader r(body, size);
  StatusResponse s;
  uint64_t threads, max_concurrent, running, waiting, num_submitters;
  if (!r.Varint(&threads) || !r.Varint(&max_concurrent) ||
      !r.Varint(&running) || !r.Varint(&waiting) ||
      !r.Varint(&num_submitters) || num_submitters > r.Remaining()) {
    return SetError(error, "truncated status response");
  }
  s.pool.threads = static_cast<int>(threads);
  s.pool.max_concurrent_queries = static_cast<int>(max_concurrent);
  s.pool.running = static_cast<int>(running);
  s.pool.waiting = static_cast<int>(waiting);
  s.pool.submitters.reserve(static_cast<size_t>(num_submitters));
  for (uint64_t i = 0; i < num_submitters; ++i) {
    exec::ExecutorPool::PoolStatus::Submitter sub;
    uint64_t sub_running, sub_waiting;
    if (!r.Varint(&sub.id) || !r.Varint(&sub_running) ||
        !r.Varint(&sub_waiting)) {
      return SetError(error, "truncated submitter entry");
    }
    sub.running = static_cast<int>(sub_running);
    sub.waiting = static_cast<int>(sub_waiting);
    s.pool.submitters.push_back(sub);
  }
  uint8_t draining;
  if (!r.Varint(&s.connections_accepted) ||
      !r.Varint(&s.connections_active) || !r.Varint(&s.queries_served) ||
      !r.Varint(&s.queries_shed_deadline) ||
      !r.Varint(&s.queries_shed_backlog) || !r.Varint(&s.protocol_errors) ||
      !r.U8(&draining) || draining > 1 || !r.Varint(&s.tasks_stolen) ||
      !r.Varint(&s.affinity_hits) || !r.Varint(&s.affinity_misses) ||
      !r.Varint(&s.sip_rows_pruned) || !r.Varint(&s.zone_map_skips) ||
      !r.Varint(&s.plan_cache_hits) || !r.Varint(&s.plan_cache_misses) ||
      !r.Varint(&s.result_cache_hits) || !r.Varint(&s.result_cache_misses)) {
    return SetError(error, "truncated status counters");
  }
  s.draining = draining != 0;
  if (!r.AtEnd()) return SetError(error, "trailing bytes in status response");
  *status = std::move(s);
  return true;
}

bool DecodeError(const uint8_t* body, size_t size, ErrorReply* reply,
                 std::string* error) {
  Reader r(body, size);
  uint8_t code;
  ErrorReply e;
  if (!r.U8(&code) || code > static_cast<uint8_t>(ErrorCode::kInternal) ||
      !r.Str(&e.message) || !r.AtEnd()) {
    return SetError(error, "malformed error frame");
  }
  e.code = static_cast<ErrorCode>(code);
  *reply = std::move(e);
  return true;
}

// ---------------------------------------------------------------------------
// Safe parsing

bool SafeParseSchema(Catalog& catalog, std::string_view spec,
                     DatabaseSchema* out, std::string* error) {
  if (spec.size() > kMaxSpecBytes) {
    return SetError(error, "schema spec too long");
  }
  int relations = 0;
  size_t start = 0;
  for (size_t i = 0; i <= spec.size(); ++i) {
    if (i != spec.size() && spec[i] != ',') continue;
    if (Trim(spec.substr(start, i - start)).empty()) {
      return SetError(error, "empty relation in schema spec");
    }
    start = i + 1;
    if (++relations > kMaxRelations) {
      return SetError(error, "too many relations in schema spec");
    }
  }
  *out = ParseSchema(catalog, spec);
  for (const RelationSchema& rel : out->Relations()) {
    if (rel.Size() > kMaxArity) {
      return SetError(error, "relation arity too large");
    }
  }
  return true;
}

bool SafeParseAttrSet(Catalog& catalog, std::string_view spec, AttrSet* out,
                      std::string* error) {
  if (spec.size() > kMaxSpecBytes) {
    return SetError(error, "attribute set spec too long");
  }
  if (Trim(spec).empty()) {
    return SetError(error, "empty attribute set spec");
  }
  *out = ParseAttrSet(catalog, spec);
  return true;
}

// ---------------------------------------------------------------------------
// Framed I/O

namespace {

// Reads exactly `n` bytes. Returns 1 on success, 0 on clean EOF before the
// first byte, -1 on error or mid-buffer EOF.
int ReadExact(int fd, uint8_t* buf, size_t n, std::string* error) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r > 0) {
      got += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) {
      if (got == 0) return 0;
      SetError(error, "connection closed mid-frame");
      return -1;
    }
    if (errno == EINTR) continue;
    if (error != nullptr) *error = std::strerror(errno);
    return -1;
  }
  return 1;
}

}  // namespace

IoStatus ReadFrame(int fd, size_t max_frame_bytes,
                   std::vector<uint8_t>* payload, std::string* error) {
  uint8_t header[kFrameHeaderBytes];
  const int h = ReadExact(fd, header, sizeof(header), error);
  if (h == 0) return IoStatus::kEof;
  if (h < 0) return IoStatus::kError;
  const uint32_t len = static_cast<uint32_t>(header[0]) |
                       static_cast<uint32_t>(header[1]) << 8 |
                       static_cast<uint32_t>(header[2]) << 16 |
                       static_cast<uint32_t>(header[3]) << 24;
  if (len == 0) {
    SetError(error, "zero-length frame");
    return IoStatus::kError;
  }
  if (len > max_frame_bytes) {
    SetError(error, "frame exceeds size bound");
    return IoStatus::kTooLarge;
  }
  payload->resize(len);
  if (ReadExact(fd, payload->data(), len, error) != 1) {
    if (error != nullptr && error->empty()) {
      *error = "connection closed mid-frame";
    }
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

bool WriteFrame(int fd, const std::vector<uint8_t>& frame,
                std::string* error) {
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t w =
        ::send(fd, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (w >= 0) {
      sent += static_cast<size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  return true;
}

}  // namespace serve
}  // namespace gyo
