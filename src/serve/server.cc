#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/plan_cache.h"
#include "cache/result_cache.h"
#include "exec/physical_plan.h"
#include "rel/solver.h"
#include "schema/catalog.h"
#include "util/check.h"

namespace gyo {
namespace serve {

namespace {

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool SysError(std::string* error, const char* what) {
  if (error != nullptr) {
    *error = std::string(what) + ": " + std::strerror(errno);
  }
  return false;
}

/// Poll timeout while accept() is backing off from descriptor exhaustion.
constexpr int kAcceptBackoffMs = 100;

// The wire strategy enum and the plan cache's mirror must agree value for
// value — requests are static_cast between them.
static_assert(static_cast<uint8_t>(Strategy::kAuto) ==
                  static_cast<uint8_t>(cache::PlanStrategy::kAuto) &&
              static_cast<uint8_t>(Strategy::kFullJoin) ==
                  static_cast<uint8_t>(cache::PlanStrategy::kFullJoin) &&
              static_cast<uint8_t>(Strategy::kCcPruned) ==
                  static_cast<uint8_t>(cache::PlanStrategy::kCcPruned) &&
              static_cast<uint8_t>(Strategy::kYannakakis) ==
                  static_cast<uint8_t>(cache::PlanStrategy::kYannakakis),
              "serve::Strategy and cache::PlanStrategy diverged");

}  // namespace

// ---------------------------------------------------------------------------
// Impl

class Server::Impl {
 public:
  explicit Impl(const ServerOptions& options)
      : options_(options),
        pool_(options.pool != nullptr ? options.pool
                                      : &exec::ExecutorPool::Global()) {
    if (options.plan_cache_entries > 0) {
      cache::PlanCache::Options plan_options;
      plan_options.max_entries = options.plan_cache_entries;
      plan_cache_.reset(new cache::PlanCache(plan_options));
    }
    if (options.result_cache_bytes > 0) {
      cache::ResultCache::Options result_options;
      result_options.max_bytes = options.result_cache_bytes;
      result_cache_.reset(new cache::ResultCache(result_options));
    }
  }

  ~Impl() {
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wake_read_ >= 0) ::close(wake_read_);
    if (wake_write_ >= 0) ::close(wake_write_);
  }

  bool Start(std::string* error, int* port);
  void RequestDrain();
  DrainReport Wait();
  StatusResponse Status() const;

 private:
  /// One client connection. Owned by the IO thread; workers refer to a
  /// connection only by id, so a connection that dies mid-query simply
  /// makes the completion's response undeliverable.
  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    /// Bytes received but not yet framed.
    std::vector<uint8_t> rbuf;
    /// Complete frames awaiting the socket, front frame sent up to woff.
    std::deque<std::vector<uint8_t>> wqueue;
    size_t woff = 0;
    /// Total bytes across wqueue; reads pause at
    /// ServerOptions::max_queued_response_bytes (see Enqueue/DropQueued).
    size_t wbytes = 0;
    /// A query is running on a worker thread; no frames are extracted
    /// until its completion arrives (one in-flight query per connection).
    bool executing = false;
    /// EOF or transport error seen; close once quiet.
    bool peer_closed = false;
    /// Close once the write queue flushes (protocol fault or drain).
    bool close_after_flush = false;
  };

  struct Completion {
    uint64_t conn_id = 0;
    std::vector<uint8_t> frame;
  };

  void IoLoop();
  void Accept();
  void ReadFromConn(Conn& conn);
  void ExtractFrames(Conn& conn);
  void Dispatch(Conn& conn, std::vector<uint8_t> payload);
  void FlushWrites(Conn& conn);

  /// All wqueue growth and teardown goes through these two so
  /// Conn::wbytes/woff can never drift from the queue's contents.
  static void Enqueue(Conn& conn, std::vector<uint8_t> frame) {
    conn.wbytes += frame.size();
    conn.wqueue.push_back(std::move(frame));
  }
  static void DropQueued(Conn& conn) {
    conn.wqueue.clear();
    conn.woff = 0;
    conn.wbytes = 0;
  }
  void ProcessCompletions();
  void Wake();

  /// Worker-thread body: decode, build the program, admit (shedding with a
  /// typed error frame), execute, encode. Never touches conns_.
  void RunQuery(uint64_t conn_id, std::vector<uint8_t> body);
  void PostCompletion(uint64_t conn_id, std::vector<uint8_t> frame);

  const ServerOptions options_;
  exec::ExecutorPool* const pool_;
  /// Per-server caches (null = disabled); thread-safe, shared by all
  /// worker threads. Server-owned so tenants and tests stay hermetic.
  std::unique_ptr<cache::PlanCache> plan_cache_;
  std::unique_ptr<cache::ResultCache> result_cache_;

  int listen_fd_ = -1;
  int wake_read_ = -1;
  int wake_write_ = -1;
  std::thread io_thread_;

  // IO-thread-only state.
  std::unordered_map<uint64_t, Conn> conns_;
  std::unordered_map<uint64_t, std::thread> workers_;
  uint64_t next_conn_id_ = 0;
  bool drain_started_ = false;
  /// Accept() hit descriptor exhaustion: skip polling the listen fd for one
  /// backoff tick so the still-pending connection cannot spin the loop.
  bool accept_backoff_ = false;

  std::mutex completions_mu_;
  std::deque<Completion> completions_;

  std::atomic<bool> draining_{false};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_active_{0};
  std::atomic<uint64_t> queries_served_{0};
  std::atomic<uint64_t> queries_shed_deadline_{0};
  std::atomic<uint64_t> queries_shed_backlog_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> tasks_stolen_{0};
  std::atomic<uint64_t> affinity_hits_{0};
  std::atomic<uint64_t> affinity_misses_{0};
  std::atomic<uint64_t> sip_rows_pruned_{0};
  std::atomic<uint64_t> zone_map_skips_{0};

  DrainReport report_;
};

bool Server::Impl::Start(std::string* error, int* port) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return SysError(error, "pipe");
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  if (!SetNonBlocking(wake_read_) || !SetNonBlocking(wake_write_)) {
    return SysError(error, "fcntl(wake pipe)");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return SysError(error, "socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    if (error != nullptr) {
      *error = "bad bind address: " + options_.bind_address;
    }
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return SysError(error, "bind");
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    return SysError(error, "listen");
  }
  if (!SetNonBlocking(listen_fd_)) return SysError(error, "fcntl(listen)");

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return SysError(error, "getsockname");
  }
  *port = ntohs(bound.sin_port);

  io_thread_ = std::thread([this] { IoLoop(); });
  return true;
}

void Server::Impl::RequestDrain() {
  // Async-signal-safe: one atomic store + one write(2). Idempotent.
  draining_.store(true, std::memory_order_release);
  const uint8_t byte = 1;
  ssize_t ignored = ::write(wake_write_, &byte, 1);  // EAGAIN = already woken
  (void)ignored;
}

void Server::Impl::Wake() {
  const uint8_t byte = 1;
  while (::write(wake_write_, &byte, 1) < 0 && errno == EINTR) {
  }
}

DrainReport Server::Impl::Wait() {
  io_thread_.join();
  report_.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  report_.queries_served = queries_served_.load(std::memory_order_relaxed);
  report_.queries_shed_deadline =
      queries_shed_deadline_.load(std::memory_order_relaxed);
  report_.queries_shed_backlog =
      queries_shed_backlog_.load(std::memory_order_relaxed);
  report_.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  return report_;
}

StatusResponse Server::Impl::Status() const {
  StatusResponse s;
  s.pool = pool_->Status();
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_active = connections_active_.load(std::memory_order_relaxed);
  s.queries_served = queries_served_.load(std::memory_order_relaxed);
  s.queries_shed_deadline =
      queries_shed_deadline_.load(std::memory_order_relaxed);
  s.queries_shed_backlog =
      queries_shed_backlog_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.draining = draining_.load(std::memory_order_acquire);
  s.tasks_stolen = tasks_stolen_.load(std::memory_order_relaxed);
  s.affinity_hits = affinity_hits_.load(std::memory_order_relaxed);
  s.affinity_misses = affinity_misses_.load(std::memory_order_relaxed);
  s.sip_rows_pruned = sip_rows_pruned_.load(std::memory_order_relaxed);
  s.zone_map_skips = zone_map_skips_.load(std::memory_order_relaxed);
  if (plan_cache_ != nullptr) {
    const cache::PlanCacheStats plan = plan_cache_->stats();
    s.plan_cache_hits = plan.hits;
    s.plan_cache_misses = plan.misses;
  }
  if (result_cache_ != nullptr) {
    const cache::ResultCacheStats result = result_cache_->stats();
    s.result_cache_hits = result.hits;
    s.result_cache_misses = result.misses;
  }
  return s;
}

// ---------------------------------------------------------------------------
// IO thread

void Server::Impl::IoLoop() {
  std::vector<pollfd> pfds;
  std::vector<uint64_t> pfd_conn;  // conn id per pfds entry, 0 = not a conn
  while (true) {
    if (draining_.load(std::memory_order_acquire) && !drain_started_) {
      drain_started_ = true;
      report_.connections_at_drain = conns_.size();
      report_.queries_in_flight_at_drain = workers_.size();
      if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      // Every connection closes as soon as it is quiet: idle ones now,
      // executing ones when their response has been flushed.
      for (auto& [id, conn] : conns_) conn.close_after_flush = true;
    }

    // Reap connections that are quiet: nothing executing, nothing left to
    // flush, and either faulted/drained or the peer already closed.
    for (auto it = conns_.begin(); it != conns_.end();) {
      Conn& conn = it->second;
      if (!conn.executing && conn.wqueue.empty() &&
          (conn.close_after_flush || conn.peer_closed)) {
        ::close(conn.fd);
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
    connections_active_.store(conns_.size(), std::memory_order_relaxed);

    if (drain_started_ && conns_.empty() && workers_.empty()) break;

    pfds.clear();
    pfd_conn.clear();
    pfds.push_back({wake_read_, POLLIN, 0});
    pfd_conn.push_back(0);
    if (listen_fd_ >= 0 && !accept_backoff_) {
      pfds.push_back({listen_fd_, POLLIN, 0});
      pfd_conn.push_back(0);
    }
    for (auto& [id, conn] : conns_) {
      short events = 0;
      if (!conn.executing && !conn.close_after_flush && !conn.peer_closed &&
          conn.wbytes < options_.max_queued_response_bytes) {
        events |= POLLIN;
      }
      if (!conn.wqueue.empty()) events |= POLLOUT;
      if (events == 0) continue;  // waiting on its worker only
      pfds.push_back({conn.fd, events, 0});
      pfd_conn.push_back(id);
    }

    const int timeout_ms = accept_backoff_ ? kAcceptBackoffMs : -1;
    accept_backoff_ = false;
    if (::poll(pfds.data(), pfds.size(), timeout_ms) < 0) {
      GYO_CHECK_MSG(errno == EINTR, "poll failed: %s", std::strerror(errno));
      continue;
    }

    for (size_t i = 0; i < pfds.size(); ++i) {
      const short revents = pfds[i].revents;
      if (revents == 0) continue;
      if (pfds[i].fd == wake_read_) {
        uint8_t buf[256];
        while (::read(wake_read_, buf, sizeof(buf)) > 0) {
        }
        ProcessCompletions();
        continue;
      }
      if (pfds[i].fd == listen_fd_) {
        Accept();
        continue;
      }
      auto it = conns_.find(pfd_conn[i]);
      if (it == conns_.end()) continue;  // closed earlier this sweep
      Conn& conn = it->second;
      if ((revents & (POLLERR | POLLNVAL)) != 0) {
        conn.peer_closed = true;
        DropQueued(conn);  // undeliverable
        continue;
      }
      if ((revents & POLLOUT) != 0) {
        FlushWrites(conn);
        // Frames parked behind the response-byte bound parse now that the
        // queue has drained.
        ExtractFrames(conn);
      }
      if ((revents & (POLLIN | POLLHUP)) != 0 && !conn.peer_closed &&
          !conn.executing) {
        ReadFromConn(conn);
      }
    }
  }
}

void Server::Impl::Accept() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Descriptor/buffer exhaustion leaves the pending connection in the
        // backlog, so the listen fd stays readable and poll() would report
        // it again immediately — back off for a tick instead of spinning.
        accept_backoff_ = true;
      }
      return;  // EAGAIN, or a transient accept error: retry on next poll
    }
    if (!SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }
    const uint64_t id = ++next_conn_id_;
    Conn& conn = conns_[id];
    conn.fd = fd;
    conn.id = id;
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::Impl::ReadFromConn(Conn& conn) {
  uint8_t buf[64 << 10];
  while (true) {
    const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.rbuf.insert(conn.rbuf.end(), buf, buf + n);
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      conn.peer_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn.peer_closed = true;  // transport error
    DropQueued(conn);
    return;
  }
  ExtractFrames(conn);
}

void Server::Impl::ExtractFrames(Conn& conn) {
  size_t consumed = 0;
  while (!conn.executing && !conn.close_after_flush && !conn.peer_closed) {
    if (conn.wbytes >= options_.max_queued_response_bytes) {
      // Response backpressure: a client that pipelines requests without
      // reading replies gets no further frames parsed until its queue
      // flushes below the bound (the poll loop also stops reading its
      // socket). Parked frames stay in rbuf; the POLLOUT path re-enters
      // here once the queue drains, so progress resumes without new input.
      FlushWrites(conn);
      if (conn.wbytes >= options_.max_queued_response_bytes) break;
      continue;  // re-check state: FlushWrites may have seen a dead peer
    }
    const size_t avail = conn.rbuf.size() - consumed;
    if (avail < kFrameHeaderBytes) break;
    const uint8_t* h = conn.rbuf.data() + consumed;
    const uint32_t len = static_cast<uint32_t>(h[0]) |
                         static_cast<uint32_t>(h[1]) << 8 |
                         static_cast<uint32_t>(h[2]) << 16 |
                         static_cast<uint32_t>(h[3]) << 24;
    if (len == 0) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      Enqueue(conn, EncodeError(ErrorCode::kMalformed, "zero-length frame"));
      conn.close_after_flush = true;  // cannot trust the stream position
      break;
    }
    if (len > options_.max_frame_bytes) {
      // The bytes of the oversized frame were never read, so the stream
      // cannot be resynchronized: reply, then close.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      Enqueue(conn, EncodeError(ErrorCode::kFrameTooLarge,
                                "frame exceeds size bound"));
      conn.close_after_flush = true;
      break;
    }
    if (avail - kFrameHeaderBytes < len) break;  // frame still arriving
    std::vector<uint8_t> payload(h + kFrameHeaderBytes,
                                 h + kFrameHeaderBytes + len);
    consumed += kFrameHeaderBytes + len;
    Dispatch(conn, std::move(payload));
  }
  if (consumed > 0) {
    conn.rbuf.erase(conn.rbuf.begin(),
                    conn.rbuf.begin() + static_cast<std::ptrdiff_t>(consumed));
  }
  FlushWrites(conn);
}

void Server::Impl::Dispatch(Conn& conn, std::vector<uint8_t> payload) {
  const FrameType type = static_cast<FrameType>(payload[0]);
  if (type == FrameType::kStatusRequest) {
    if (payload.size() != 1) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      Enqueue(conn, EncodeError(ErrorCode::kMalformed,
                                "status request carries a body"));
      return;  // frame boundary intact: the connection survives
    }
    Enqueue(conn, EncodeStatusResponse(Status()));
    return;
  }
  if (type != FrameType::kQueryRequest) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    Enqueue(conn, EncodeError(ErrorCode::kMalformed,
                              "unexpected frame type"));
    return;
  }
  if (draining_.load(std::memory_order_acquire)) {
    Enqueue(conn, EncodeError(ErrorCode::kShuttingDown,
                              "server is draining"));
    conn.close_after_flush = true;
    return;
  }
  payload.erase(payload.begin());  // strip the type byte
  conn.executing = true;
  const uint64_t conn_id = conn.id;
  workers_.emplace(conn_id, std::thread([this, conn_id,
                                         body = std::move(payload)]() mutable {
                     RunQuery(conn_id, std::move(body));
                   }));
}

void Server::Impl::FlushWrites(Conn& conn) {
  while (!conn.wqueue.empty()) {
    const std::vector<uint8_t>& frame = conn.wqueue.front();
    const ssize_t n = ::send(conn.fd, frame.data() + conn.woff,
                             frame.size() - conn.woff, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      conn.peer_closed = true;  // dead peer: drop what it can't receive
      DropQueued(conn);
      return;
    }
    conn.woff += static_cast<size_t>(n);
    if (conn.woff == frame.size()) {
      conn.wbytes -= frame.size();
      conn.wqueue.pop_front();
      conn.woff = 0;
    }
  }
}

void Server::Impl::ProcessCompletions() {
  while (true) {
    Completion completion;
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      if (completions_.empty()) return;
      completion = std::move(completions_.front());
      completions_.pop_front();
    }
    // The worker posted this as its last act; join is near-instant.
    auto worker = workers_.find(completion.conn_id);
    GYO_CHECK_MSG(worker != workers_.end(),
                  "completion from an unknown worker");
    worker->second.join();
    workers_.erase(worker);
    auto it = conns_.find(completion.conn_id);
    if (it == conns_.end()) continue;  // connection died mid-query
    Conn& conn = it->second;
    conn.executing = false;
    // A peer that died mid-query can't receive its response.
    if (!conn.peer_closed) Enqueue(conn, std::move(completion.frame));
    if (drain_started_) conn.close_after_flush = true;
    // Frames that buffered behind the running query (pipelined requests)
    // are served now.
    ExtractFrames(conn);
  }
}

// ---------------------------------------------------------------------------
// Worker

void Server::Impl::RunQuery(uint64_t conn_id, std::vector<uint8_t> body) {
  Catalog catalog;
  QueryRequest req;
  DatabaseSchema schema;
  AttrSet target;
  std::string err;
  if (!DecodeQueryRequest(body.data(), body.size(), catalog, &req, &schema,
                          &target, &err)) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    PostCompletion(conn_id, EncodeError(ErrorCode::kMalformed, err));
    return;
  }
  body.clear();
  body.shrink_to_fit();

  // Resolve the strategy to a program — through the plan cache when
  // enabled, which memoizes the GYO reduction / join-tree work and the
  // plan's dataflow analysis per canonical hypergraph. Both paths produce
  // the same program byte for byte, so caching never changes an answer.
  Strategy resolved = req.strategy;
  Program program(schema.NumRelations());
  std::optional<exec::PhysicalPlan> plan;
  bool plan_hit = false;
  if (plan_cache_ != nullptr) {
    std::optional<cache::PlanCache::Result> planned = plan_cache_->GetOrBuild(
        schema, target, static_cast<cache::PlanStrategy>(req.strategy));
    if (!planned.has_value()) {
      PostCompletion(conn_id,
                     EncodeError(ErrorCode::kUnsupported,
                                 "yannakakis requires a tree schema"));
      return;
    }
    plan_hit = planned->hit;
    resolved = static_cast<Strategy>(planned->resolved);
    program = std::move(planned->program);
    plan.emplace(std::move(planned->plan));
  } else {
    switch (req.strategy) {
      case Strategy::kFullJoin:
        program = FullJoinProgram(schema, target);
        break;
      case Strategy::kCcPruned:
        program = CCPrunedProgram(schema, target);
        break;
      case Strategy::kYannakakis: {
        std::optional<Program> p = YannakakisProgram(schema, target);
        if (!p.has_value()) {
          PostCompletion(conn_id,
                         EncodeError(ErrorCode::kUnsupported,
                                     "yannakakis requires a tree schema"));
          return;
        }
        program = *std::move(p);
        break;
      }
      case Strategy::kAuto: {
        std::optional<Program> p = YannakakisProgram(schema, target);
        if (p.has_value()) {
          resolved = Strategy::kYannakakis;
          program = *std::move(p);
        } else {
          resolved = Strategy::kCcPruned;
          program = CCPrunedProgram(schema, target);
        }
        break;
      }
    }
  }
  if (program.NumStatements() == 0) {
    PostCompletion(conn_id, EncodeError(ErrorCode::kInternal,
                                        "strategy produced an empty program"));
    return;
  }

  // Deterministic queries may be answered from the result cache — the
  // memoized answer is bit-identical to re-execution, so a hit skips
  // admission and execution entirely. The key covers the resolved strategy
  // and every base tuple (256 bits, two independent fingerprints).
  const bool use_result_cache = result_cache_ != nullptr && req.deterministic;
  cache::ResultKey result_key;
  if (use_result_cache) {
    const uint64_t variant = (static_cast<uint64_t>(resolved) << 1) | 1;
    result_key = cache::MakeResultKey(schema, target, req.states, variant);
    std::optional<cache::ResultCache::Value> cached =
        result_cache_->Get(result_key);
    if (cached.has_value()) {
      QueryResponse resp;
      resp.result = std::move(cached->result);
      resp.stats = cached->stats;
      resp.query_stats.state_cache_hits = 1;
      resp.query_stats.plan_cache_hits = plan_hit ? 1 : 0;
      if (req.want_plan) {
        if (!plan.has_value()) {
          plan.emplace(exec::PhysicalPlan::Compile(program));
        }
        resp.has_plan = true;
        resp.plan.num_statements = program.NumStatements();
        resp.plan.critical_path = plan->CriticalPathLength();
        resp.plan.num_source_statements = plan->NumSourceStatements();
        resp.plan.strategy = resolved;
      }
      std::vector<uint8_t> frame =
          EncodeQueryResponse(resp, options_.max_frame_bytes);
      if (frame.empty()) {
        PostCompletion(conn_id,
                       EncodeError(ErrorCode::kInternal,
                                   "result exceeds the frame size bound"));
        return;
      }
      queries_served_.fetch_add(1, std::memory_order_relaxed);
      PostCompletion(conn_id, std::move(frame));
      return;
    }
  }

  // Admit with shedding: a rejected query has consumed no execution
  // resources — the typed error frame is the whole cost.
  const uint64_t submitter = req.submitter != 0 ? req.submitter : conn_id;
  const double max_wait =
      req.deadline_ms > 0 ? static_cast<double>(req.deadline_ms) / 1000.0
                          : -1.0;  // -1 = the pool's configured default
  exec::ExecutorPool::AdmitResult admit = pool_->TryAdmit(submitter, max_wait);
  if (admit.status == exec::ExecutorPool::AdmitStatus::kDeadlineExceeded) {
    queries_shed_deadline_.fetch_add(1, std::memory_order_relaxed);
    PostCompletion(conn_id,
                   EncodeError(ErrorCode::kDeadlineExceeded,
                               "queue wait exceeded the admission deadline"));
    return;
  }
  if (admit.status == exec::ExecutorPool::AdmitStatus::kBacklogFull) {
    queries_shed_backlog_.fetch_add(1, std::memory_order_relaxed);
    PostCompletion(conn_id,
                   EncodeError(ErrorCode::kBacklogFull,
                               "submitter backlog is at its bound"));
    return;
  }

  exec::ExecContext ctx;
  ctx.deterministic = req.deterministic;
  ctx.morsel_rows = options_.morsel_rows;
  QueryResponse resp;
  ctx.query_stats = &resp.query_stats;
  std::vector<Relation> states =
      plan.has_value()
          ? plan->ExecuteAdmitted(req.states, ctx, *admit.admission,
                                  &resp.stats)
          : exec::ExecuteAdmitted(program, req.states, ctx, *admit.admission,
                                  &resp.stats);
  admit.admission.reset();  // release the slot before encoding
  // Execution reset query_stats; the cache verdicts are stamped after.
  resp.query_stats.plan_cache_hits = plan_hit ? 1 : 0;

  resp.result = std::move(states.back());
  if (use_result_cache) {
    result_cache_->Put(result_key,
                       cache::ResultCache::Value{resp.result, resp.stats});
  }
  if (req.want_plan) {
    if (!plan.has_value()) {
      plan.emplace(exec::PhysicalPlan::Compile(program));
    }
    resp.has_plan = true;
    resp.plan.num_statements = program.NumStatements();
    resp.plan.critical_path = plan->CriticalPathLength();
    resp.plan.num_source_statements = plan->NumSourceStatements();
    resp.plan.strategy = resolved;
  }
  tasks_stolen_.fetch_add(
      static_cast<uint64_t>(resp.query_stats.tasks_stolen),
      std::memory_order_relaxed);
  affinity_hits_.fetch_add(
      static_cast<uint64_t>(resp.query_stats.affinity_hits),
      std::memory_order_relaxed);
  affinity_misses_.fetch_add(
      static_cast<uint64_t>(resp.query_stats.affinity_misses),
      std::memory_order_relaxed);
  sip_rows_pruned_.fetch_add(
      static_cast<uint64_t>(resp.query_stats.sip_rows_pruned),
      std::memory_order_relaxed);
  zone_map_skips_.fetch_add(
      static_cast<uint64_t>(resp.query_stats.zone_map_skips),
      std::memory_order_relaxed);
  // Encode under the server's own frame bound: a result too large to frame
  // (or beyond the wire format's u32 length) becomes a typed error, never a
  // frame with a lying length prefix.
  std::vector<uint8_t> frame =
      EncodeQueryResponse(resp, options_.max_frame_bytes);
  if (frame.empty()) {
    PostCompletion(conn_id,
                   EncodeError(ErrorCode::kInternal,
                               "result exceeds the frame size bound"));
    return;
  }
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  PostCompletion(conn_id, std::move(frame));
}

void Server::Impl::PostCompletion(uint64_t conn_id,
                                  std::vector<uint8_t> frame) {
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    completions_.push_back(Completion{conn_id, std::move(frame)});
  }
  Wake();
}

// ---------------------------------------------------------------------------
// Server

Server::Server(const ServerOptions& options)
    : options_(options), impl_(new Impl(options)) {}

Server::~Server() {
  if (impl_ != nullptr) {
    if (started_ && !waited_) {
      impl_->RequestDrain();
      impl_->Wait();
    }
    delete impl_;
  }
}

bool Server::Start(std::string* error) {
  GYO_CHECK_MSG(!started_, "Server::Start called twice");
  if (!impl_->Start(error, &port_)) return false;
  started_ = true;
  return true;
}

void Server::RequestDrain() { impl_->RequestDrain(); }

DrainReport Server::Wait() {
  GYO_CHECK_MSG(started_ && !waited_, "Server::Wait without a running server");
  waited_ = true;
  return impl_->Wait();
}

StatusResponse Server::Status() const { return impl_->Status(); }

}  // namespace serve
}  // namespace gyo
