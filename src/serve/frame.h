#ifndef GYO_SERVE_FRAME_H_
#define GYO_SERVE_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "exec/exec_context.h"
#include "exec/executor_pool.h"
#include "rel/program.h"
#include "rel/relation.h"
#include "schema/catalog.h"
#include "schema/parse.h"
#include "schema/schema.h"

namespace gyo {
namespace serve {

/// \file
/// The gyo_serve wire layer: length-prefixed framing plus the
/// request/response codec shared by the server (serve/server.h), the client
/// library (serve/client.h), the load driver, and the tests — one
/// implementation, so the two ends of the protocol cannot drift.
///
/// A frame is a 4-byte little-endian payload length followed by the payload;
/// payload byte 0 is the FrameType, the rest is the message body. Integers
/// inside bodies are LEB128 varints (zigzag for signed values), strings are
/// varint-length-prefixed bytes, and relation data travels column-major —
/// the same layout the columnar storage holds, so encode/decode are
/// straight sweeps over the arenas. The full wire reference lives in
/// docs/protocol.md.
///
/// Every decoder is bounds-checked and total: malformed, truncated, or
/// hostile input yields `false` plus an error string, never an abort — the
/// daemon answers with a typed kError frame and survives.

/// Payload bytes per frame, excluding the 4-byte header. Servers and clients
/// may lower this; a peer announcing a larger frame is rejected with
/// kFrameTooLarge before any allocation.
constexpr size_t kDefaultMaxFrameBytes = 64u << 20;

/// Bytes of the frame header (little-endian u32 payload length).
constexpr size_t kFrameHeaderBytes = 4;

/// Hard bound of the wire format itself: the header's length field is a
/// u32, so no frame payload can be larger than this. Writers refuse to emit
/// a frame beyond it rather than truncate the length prefix.
constexpr size_t kMaxWirePayloadBytes = 0xffffffffu;

enum class FrameType : uint8_t {
  kQueryRequest = 1,
  kStatusRequest = 2,
  kQueryResponse = 3,
  kStatusResponse = 4,
  kError = 5,
};

/// Typed failure surface of the protocol. kDeadlineExceeded and
/// kBacklogFull are the admission-control sheds — the overload answers a
/// client is expected to handle by backing off.
enum class ErrorCode : uint8_t {
  kNone = 0,
  /// Request frame did not decode (bad varint, trailing bytes, arity
  /// mismatch, unparseable schema, ...). The frame boundary is intact, so
  /// the connection survives.
  kMalformed = 1,
  /// Announced payload length exceeded the server's frame bound. The stream
  /// cannot be resynchronized, so the server closes after replying.
  kFrameTooLarge = 2,
  /// Shed by admission control: queue wait exceeded the query's deadline.
  kDeadlineExceeded = 3,
  /// Shed by admission control: the submitter's waiting backlog is at its
  /// bound.
  kBacklogFull = 4,
  /// The server is draining (SIGTERM) and accepts no new queries.
  kShuttingDown = 5,
  /// The requested strategy cannot solve this query (e.g. Yannakakis on a
  /// cyclic schema).
  kUnsupported = 6,
  /// Server-side failure that is not the client's fault.
  kInternal = 7,
};

/// Stable lowercase name for an ErrorCode (e.g. "deadline_exceeded").
const char* ErrorCodeName(ErrorCode code);

/// Solver strategy requested for a query. kAuto picks Yannakakis for tree
/// schemas and CC-pruned join for cyclic ones.
enum class Strategy : uint8_t {
  kAuto = 0,
  kFullJoin = 1,
  kCcPruned = 2,
  kYannakakis = 3,
};

const char* StrategyName(Strategy strategy);

/// One query submission: schema + base relation states + target + options.
/// The schema and target travel as the paper's compact text notation
/// ("ab,bc,cd" / "ad"); both ends parse them with their own Catalog, which
/// interns attributes in first-appearance order, so column positions agree
/// without shipping a catalog.
struct QueryRequest {
  std::string schema_spec;
  std::string target_spec;
  Strategy strategy = Strategy::kAuto;
  /// Admission deadline in milliseconds; 0 = use the server's default (the
  /// pool's Options::max_queue_wait_seconds).
  uint64_t deadline_ms = 0;
  /// Fairness class for admission round-robin and backlog bounds; 0 = the
  /// server assigns the connection's own id (per-connection fairness).
  uint64_t submitter = 0;
  /// Deterministic execution (bit-identical to a serial run); on by default.
  bool deterministic = true;
  /// Attach plan diagnostics (statement count, critical path, ...) to the
  /// response.
  bool want_plan = false;
  /// Base relation states, parallel to the parsed schema_spec.
  std::vector<Relation> states;
};

/// Plan diagnostics, attached when QueryRequest::want_plan.
struct PlanInfo {
  int num_statements = 0;
  int critical_path = 0;
  int num_source_statements = 0;
  /// The strategy actually executed (kAuto resolved).
  Strategy strategy = Strategy::kAuto;
};

struct QueryResponse {
  Relation result{AttrSet()};
  Program::Stats stats;
  exec::QueryStats query_stats;
  bool has_plan = false;
  PlanInfo plan;
};

/// The STATUS reply: the pool snapshot every status surface shares
/// (ExecutorPool::PoolStatus — also behind the CLIs' pool-status lines)
/// plus the daemon's own served/shed/connection counters.
struct StatusResponse {
  exec::ExecutorPool::PoolStatus pool;
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t queries_served = 0;
  uint64_t queries_shed_deadline = 0;
  uint64_t queries_shed_backlog = 0;
  uint64_t protocol_errors = 0;
  bool draining = false;
  /// Scheduling totals accumulated over served queries.
  uint64_t tasks_stolen = 0;
  uint64_t affinity_hits = 0;
  uint64_t affinity_misses = 0;
  /// Pruning totals accumulated over served queries: probe rows rejected by
  /// sideways-information-passing filters and probe rows skipped by
  /// zone-map disjointness proofs (see exec::QueryStats).
  uint64_t sip_rows_pruned = 0;
  uint64_t zone_map_skips = 0;
  /// Cache counters — all zero while the corresponding cache is disabled.
  /// Plan hits/misses count plan-cache lookups (one per decoded query);
  /// result hits/misses count full-answer lookups (deterministic queries
  /// only — a result hit is served without admission or execution).
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  uint64_t result_cache_hits = 0;
  uint64_t result_cache_misses = 0;
};

struct ErrorReply {
  ErrorCode code = ErrorCode::kNone;
  std::string message;
};

// ---------------------------------------------------------------------------
// Byte-level codec

/// Append-only buffer with the protocol's primitive encoders. Begin() stamps
/// the frame header placeholder + type byte; Finish() patches the real
/// payload length and yields the complete frame.
class Writer {
 public:
  void U8(uint8_t v) {
    if (Fits(1)) buf_.push_back(v);
  }
  void U32Fixed(uint32_t v);
  /// IEEE-754 bits as fixed 8 bytes little-endian.
  void F64(double v);
  /// Unsigned LEB128, at most 10 bytes.
  void Varint(uint64_t v);
  /// Zigzag-mapped signed varint.
  void Zigzag(int64_t v);
  void Str(std::string_view s);
  /// Relation data: varint arity, u8 canonical flag, varint row count, then
  /// the columns in schema order, each a run of zigzag values (column-major
  /// — a direct sweep over the arenas).
  void RelationData(const Relation& r);

  /// Caps the payload this writer may grow to (default: the wire format's
  /// u32 hard bound). Appends past the cap are dropped, the writer is
  /// marked overflowed, and Finish() returns an empty vector instead of a
  /// frame whose length prefix would lie. The cap survives Begin().
  void LimitPayload(size_t max_payload_bytes) { limit_ = max_payload_bytes; }
  bool Overflowed() const { return overflowed_; }

  void Begin(FrameType type);
  /// Patches the header; the buffer then holds one complete frame — or is
  /// empty if the payload overflowed the cap.
  std::vector<uint8_t> Finish();

 private:
  /// True if `n` more payload bytes stay within the cap; otherwise marks
  /// the writer overflowed (the append is dropped and growth stops, so an
  /// oversized message costs at most the cap in memory, not its full size).
  bool Fits(size_t n) {
    if (!overflowed_ && buf_.size() + n <= limit_ + kFrameHeaderBytes) {
      return true;
    }
    overflowed_ = true;
    return false;
  }

  std::vector<uint8_t> buf_;
  size_t limit_ = kMaxWirePayloadBytes;
  bool overflowed_ = false;
};

/// Bounds-checked reader over one frame payload. Every primitive returns
/// false on overrun or malformed input and poisons the reader, so decoders
/// can chain reads and check once.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : p_(data), end_(data + size) {}
  explicit Reader(const std::vector<uint8_t>& payload)
      : Reader(payload.data(), payload.size()) {}

  bool U8(uint8_t* out);
  bool F64(double* out);
  bool Varint(uint64_t* out);
  bool Zigzag(int64_t* out);
  bool Str(std::string* out);
  /// Decodes relation data into a relation over `schema` (arity must match
  /// the schema's attribute count). Verifies a claimed canonical flag by
  /// scanning — a false claim is malformed input, not a crash.
  bool RelationData(const AttrSet& schema, Relation* out);

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && p_ == end_; }
  size_t Remaining() const { return static_cast<size_t>(end_ - p_); }

 private:
  bool Fail() {
    ok_ = false;
    return false;
  }
  const uint8_t* p_;
  const uint8_t* end_;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Message encode/decode. Encoders return a complete frame (header included)
// — or an empty vector when the encoded payload would exceed
// `max_payload_bytes` (such a frame is unsendable under the peer's bound;
// the server substitutes a typed kInternal error, the client fails the
// call). Decoders take the payload *without* the header but *with* the
// leading type byte already stripped by the caller's dispatch, return false
// on any malformed input, and fill `error` with a one-line reason.

std::vector<uint8_t> EncodeQueryRequest(
    const QueryRequest& request,
    size_t max_payload_bytes = kMaxWirePayloadBytes);
std::vector<uint8_t> EncodeStatusRequest();
std::vector<uint8_t> EncodeQueryResponse(
    const QueryResponse& response,
    size_t max_payload_bytes = kMaxWirePayloadBytes);
std::vector<uint8_t> EncodeStatusResponse(const StatusResponse& status);
std::vector<uint8_t> EncodeError(ErrorCode code, std::string_view message);

/// Decodes a query request body. The schema/target specs are parsed into
/// `catalog`; `schema`/`target` receive the parsed forms and
/// `request->states` the decoded relations (parallel to `schema`).
bool DecodeQueryRequest(const uint8_t* body, size_t size, Catalog& catalog,
                        QueryRequest* request, DatabaseSchema* schema,
                        AttrSet* target, std::string* error);

/// Decodes a query response body; `result_schema` is the query's target
/// attribute set (the client knows it — result relations travel without
/// schema bytes).
bool DecodeQueryResponse(const uint8_t* body, size_t size,
                         const AttrSet& result_schema, QueryResponse* response,
                         std::string* error);

bool DecodeStatusResponse(const uint8_t* body, size_t size,
                          StatusResponse* status, std::string* error);

bool DecodeError(const uint8_t* body, size_t size, ErrorReply* reply,
                 std::string* error);

// ---------------------------------------------------------------------------
// Non-dying schema parsing. ParseSchema/ParseAttrSet abort on empty
// relations — fine for trusted CLI input, fatal for a daemon fed by the
// network. These validate first and return false instead.

bool SafeParseSchema(Catalog& catalog, std::string_view spec,
                     DatabaseSchema* out, std::string* error);
bool SafeParseAttrSet(Catalog& catalog, std::string_view spec, AttrSet* out,
                      std::string* error);

// ---------------------------------------------------------------------------
// Framed I/O over blocking sockets (the client library and worker threads;
// the server's event loop keeps its own non-blocking buffers and reuses
// only the header layout). Both handle partial transfers and EINTR.

enum class IoStatus {
  kOk,
  /// Clean EOF at a frame boundary (peer closed).
  kEof,
  /// Transport error or EOF mid-frame; `error` has the reason.
  kError,
  /// The peer announced a payload larger than `max_frame_bytes`.
  kTooLarge,
};

/// Reads one complete frame payload (header stripped). Blocks until a full
/// frame, EOF, or error.
IoStatus ReadFrame(int fd, size_t max_frame_bytes,
                   std::vector<uint8_t>* payload, std::string* error);

/// Writes all of `frame` (a complete frame from an encoder), looping over
/// short writes. Uses MSG_NOSIGNAL — a dead peer is a return value, not a
/// SIGPIPE.
bool WriteFrame(int fd, const std::vector<uint8_t>& frame, std::string* error);

}  // namespace serve
}  // namespace gyo

#endif  // GYO_SERVE_FRAME_H_
