#ifndef GYO_SERVE_SERVER_H_
#define GYO_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "exec/executor_pool.h"
#include "serve/frame.h"

namespace gyo {
namespace serve {

/// gyo_serve core: a single-process TCP daemon that multiplexes many client
/// connections onto one shared ExecutorPool. One IO thread owns the sockets
/// — a poll() loop over the listen fd, a self-wake pipe, and every
/// connection — and never blocks on a query: each admitted query runs on its
/// own worker thread (which participates in the pool's execution exactly
/// like a direct exec::Run caller), posting its response frame back through
/// the wake pipe. Each connection is one admission submitter, so the pool's
/// round-robin fairness and per-submitter backlog bounds apply per client.
///
/// Overload never hangs and never kills the process: admission sheds with
/// typed kDeadlineExceeded / kBacklogFull error frames, malformed input gets
/// kMalformed (connection survives — the frame boundary is intact), and an
/// oversized length prefix gets kFrameTooLarge followed by a close (the
/// stream cannot be resynchronized).
///
/// In deterministic mode (the request default) results are bit-identical to
/// a direct serial exec::Run of the same program — the property the serve
/// end-to-end tests pin with Relation::IdenticalTo across concurrent
/// clients.
struct ServerOptions {
  /// Address to bind; the daemon is loopback-only by default.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back with port()).
  int port = 0;
  /// listen(2) backlog.
  int backlog = 64;
  /// Per-frame payload bound, applied in both directions: a client
  /// announcing a larger frame is rejected (kFrameTooLarge), and a query
  /// whose encoded response would exceed it is answered with a typed
  /// kInternal error instead of an unsendable frame.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Bound on encoded response bytes queued on one connection. A client
  /// that pipelines requests without reading replies is paused — its socket
  /// stops being read and no further frames are parsed — once its queue
  /// holds this much, resuming as the queue flushes: backpressure instead
  /// of unbounded buffering. One frame may overshoot the bound, so a single
  /// response of any admissible size always fits.
  size_t max_queued_response_bytes = 8u << 20;
  /// Pool to execute on; nullptr = ExecutorPool::Global(). Admission
  /// deadlines and per-submitter backlog bounds are the pool's
  /// (Options::max_queue_wait_seconds / max_waiting_per_submitter); a
  /// request's deadline_ms overrides the wait bound per query.
  exec::ExecutorPool* pool = nullptr;
  /// ExecContext::morsel_rows for served queries (0 = auto-tune).
  int64_t morsel_rows = 0;
  /// Plan-cache entries (canonical hypergraph fingerprint -> memoized
  /// program + dataflow analysis); 0 disables the plan cache. Cached plans
  /// are remapped into the request's attribute space, so replies stay
  /// byte-identical to first-time planning.
  size_t plan_cache_entries = 128;
  /// Result-cache byte bound (full-answer memoization, deterministic
  /// queries only); 0 disables the result cache. A result hit replays the
  /// original response's result and stats bit-identically, without
  /// admission or execution.
  int64_t result_cache_bytes = 32ll << 20;
};

/// What a graceful drain observed — printed by gyo_serve on SIGTERM.
struct DrainReport {
  /// Connections still open when the drain began.
  uint64_t connections_at_drain = 0;
  /// Queries mid-execution when the drain began; all were finished and
  /// their responses flushed before exit.
  uint64_t queries_in_flight_at_drain = 0;
  /// Lifetime totals.
  uint64_t connections_accepted = 0;
  uint64_t queries_served = 0;
  uint64_t queries_shed_deadline = 0;
  uint64_t queries_shed_backlog = 0;
  uint64_t protocol_errors = 0;
};

class Server {
 public:
  explicit Server(const ServerOptions& options);

  /// Joins the IO thread if still running (an implicit RequestDrain()).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the IO thread. False + `error` on failure
  /// (port in use, ...). Call at most once.
  bool Start(std::string* error);

  /// The bound port (after Start) — the ephemeral port when options.port
  /// was 0.
  int port() const { return port_; }

  /// Begins a graceful drain: stop accepting, finish in-flight queries,
  /// flush and close every connection, then exit the IO loop. Safe to call
  /// from a signal handler (one atomic store + one pipe write) and
  /// idempotent.
  void RequestDrain();

  /// Blocks until the IO thread exits (i.e. a drain completed) and returns
  /// what the drain saw. Call once, after Start succeeded.
  DrainReport Wait();

  /// Point-in-time counters + pool snapshot — the same struct the STATUS
  /// frame carries.
  StatusResponse Status() const;

 private:
  class Impl;
  friend class Impl;

  ServerOptions options_;
  int port_ = 0;
  bool started_ = false;
  bool waited_ = false;
  Impl* impl_ = nullptr;
};

}  // namespace serve
}  // namespace gyo

#endif  // GYO_SERVE_SERVER_H_
