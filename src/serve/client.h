#ifndef GYO_SERVE_CLIENT_H_
#define GYO_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>

#include "serve/frame.h"

namespace gyo {
namespace serve {

/// Blocking gyo_serve client: one connection, synchronous request/response.
/// The library under the gyo_client example, the load driver (bench_serve),
/// and the end-to-end tests — all protocol traffic in the tree goes through
/// this one implementation and the codec it shares with the server.
class Client {
 public:
  /// Outcome of one round trip.
  enum class Outcome {
    /// The expected response frame arrived and decoded.
    kOk,
    /// The server answered with a typed kError frame (see server_error()) —
    /// admission sheds land here. The connection stays usable unless the
    /// server said it would close (kFrameTooLarge, kShuttingDown).
    kServerError,
    /// Transport or framing failure (see io_error()); the connection is
    /// dead.
    kIoError,
  };

  Client() = default;
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Movable so connections can live in containers; the source is left
  /// disconnected.
  Client(Client&& other) noexcept { *this = std::move(other); }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
      max_frame_bytes_ = other.max_frame_bytes_;
      server_error_ = std::move(other.server_error_);
      io_error_ = std::move(other.io_error_);
    }
    return *this;
  }

  /// Connects to a gyo_serve daemon. False + io_error() on failure.
  bool Connect(const std::string& host, int port);

  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Sends a query and blocks for the reply.
  Outcome Query(const QueryRequest& request, QueryResponse* response);

  /// Sends a STATUS request and blocks for the reply.
  Outcome Status(StatusResponse* status);

  /// The server's error reply after kServerError.
  const ErrorReply& server_error() const { return server_error_; }
  /// The transport failure after kIoError (or a failed Connect).
  const std::string& io_error() const { return io_error_; }

  /// Frame payload bound, applied in both directions: server replies larger
  /// than this fail the read, and a request that encodes larger than this
  /// fails with kIoError before anything is sent.
  void set_max_frame_bytes(size_t n) { max_frame_bytes_ = n; }

 private:
  Outcome RoundTrip(const std::vector<uint8_t>& request_frame,
                    FrameType expected, std::vector<uint8_t>* payload);

  int fd_ = -1;
  size_t max_frame_bytes_ = kDefaultMaxFrameBytes;
  ErrorReply server_error_;
  std::string io_error_;
};

}  // namespace serve
}  // namespace gyo

#endif  // GYO_SERVE_CLIENT_H_
