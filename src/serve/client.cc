#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace gyo {
namespace serve {

bool Client::Connect(const std::string& host, int port) {
  Close();
  io_error_.clear();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    io_error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    io_error_ = "bad host address: " + host;
    Close();
    return false;
  }
  while (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
         0) {
    if (errno == EINTR) continue;
    io_error_ = std::string("connect: ") + std::strerror(errno);
    Close();
    return false;
  }
  return true;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Client::Outcome Client::RoundTrip(const std::vector<uint8_t>& request_frame,
                                  FrameType expected,
                                  std::vector<uint8_t>* payload) {
  io_error_.clear();
  server_error_ = ErrorReply();
  if (fd_ < 0) {
    io_error_ = "not connected";
    return Outcome::kIoError;
  }
  if (!WriteFrame(fd_, request_frame, &io_error_)) {
    Close();
    return Outcome::kIoError;
  }
  const IoStatus status = ReadFrame(fd_, max_frame_bytes_, payload,
                                    &io_error_);
  if (status != IoStatus::kOk) {
    if (status == IoStatus::kEof) io_error_ = "connection closed by server";
    if (status == IoStatus::kTooLarge) {
      io_error_ = "server reply exceeds the frame bound";
    }
    Close();
    return Outcome::kIoError;
  }
  if (payload->empty()) {
    io_error_ = "empty reply payload";
    Close();
    return Outcome::kIoError;
  }
  const FrameType type = static_cast<FrameType>((*payload)[0]);
  if (type == FrameType::kError) {
    std::string err;
    if (!DecodeError(payload->data() + 1, payload->size() - 1, &server_error_,
                     &err)) {
      io_error_ = err;
      Close();
      return Outcome::kIoError;
    }
    // The server closes after these two; drop our side proactively.
    if (server_error_.code == ErrorCode::kFrameTooLarge ||
        server_error_.code == ErrorCode::kShuttingDown) {
      Close();
    }
    return Outcome::kServerError;
  }
  if (type != expected) {
    io_error_ = "unexpected reply frame type";
    Close();
    return Outcome::kIoError;
  }
  return Outcome::kOk;
}

Client::Outcome Client::Query(const QueryRequest& request,
                              QueryResponse* response) {
  std::vector<uint8_t> request_frame =
      EncodeQueryRequest(request, max_frame_bytes_);
  if (request_frame.empty()) {
    io_error_ = "request exceeds the frame size bound";
    return Outcome::kIoError;
  }
  std::vector<uint8_t> payload;
  const Outcome outcome =
      RoundTrip(request_frame, FrameType::kQueryResponse, &payload);
  if (outcome != Outcome::kOk) return outcome;
  // The result relation's schema is the parsed target spec; a fresh catalog
  // interns attributes in the same first-appearance order as the server's.
  Catalog catalog;
  DatabaseSchema schema;
  AttrSet target;
  std::string err;
  if (!SafeParseSchema(catalog, request.schema_spec, &schema, &err) ||
      !SafeParseAttrSet(catalog, request.target_spec, &target, &err)) {
    io_error_ = err;
    return Outcome::kIoError;
  }
  if (!DecodeQueryResponse(payload.data() + 1, payload.size() - 1, target,
                           response, &err)) {
    io_error_ = err;
    Close();
    return Outcome::kIoError;
  }
  return Outcome::kOk;
}

Client::Outcome Client::Status(StatusResponse* status) {
  std::vector<uint8_t> payload;
  const Outcome outcome =
      RoundTrip(EncodeStatusRequest(), FrameType::kStatusResponse, &payload);
  if (outcome != Outcome::kOk) return outcome;
  std::string err;
  if (!DecodeStatusResponse(payload.data() + 1, payload.size() - 1, status,
                            &err)) {
    io_error_ = err;
    Close();
    return Outcome::kIoError;
  }
  return Outcome::kOk;
}

}  // namespace serve
}  // namespace gyo
