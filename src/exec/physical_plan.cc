#include "exec/physical_plan.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <utility>

#include "exec/executor_pool.h"
#include "exec/task_scheduler.h"
#include "rel/ops.h"
#include "util/check.h"

namespace gyo {
namespace exec {

namespace {

// Invokes fn(id) once per distinct relation id statement `s` reads (a
// project reads only its lhs; a join/semijoin reading the same relation on
// both sides reads it once).
template <typename Fn>
void ForEachInput(const Program::Statement& s, Fn&& fn) {
  fn(s.lhs);
  if (s.kind != Program::Statement::Kind::kProject && s.rhs != s.lhs) {
    fn(s.rhs);
  }
}

// The dataflow analysis: statement k depends on statement j exactly when k
// reads the relation j created.
std::vector<std::vector<int>> ComputeDependencies(const Program& program) {
  const int num_base = program.num_base();
  std::vector<std::vector<int>> deps(
      static_cast<size_t>(program.NumStatements()));
  for (int k = 0; k < program.NumStatements(); ++k) {
    const Program::Statement& s =
        program.Statements()[static_cast<size_t>(k)];
    std::vector<int>& d = deps[static_cast<size_t>(k)];
    ForEachInput(s, [&](int id) {
      if (id < num_base) return;  // base relations are always ready
      int producer = id - num_base;
      if (std::find(d.begin(), d.end(), producer) == d.end()) {
        d.push_back(producer);
      }
    });
  }
  return deps;
}

// The last-reader analysis behind state retirement: how many statements
// read each relation slot. Zero marks a sink (never retired); at run time
// the counts seed per-slot countdowns and the statement that drops a
// countdown to zero frees the slot.
std::vector<int> ComputeReaderCounts(const Program& program) {
  std::vector<int> counts(static_cast<size_t>(program.NumRelations()), 0);
  for (const Program::Statement& s : program.Statements()) {
    ForEachInput(s, [&](int id) { ++counts[static_cast<size_t>(id)]; });
  }
  return counts;
}

// One entry of the per-query SIP registry (sideways information passing):
// a Bloom filter to build over base slot `source`'s `key_attrs` columns,
// consulted by every statement in `consumers` before its own probe work.
// Entries are deduplicated by (source, key signature), so two chain heads
// sharing an eliminator share one filter build.
struct SipFilter {
  int source;
  std::vector<AttrId> key_attrs;
  std::vector<int> consumers;  // statement indices
};

// The SIP dataflow analysis. For each semijoin statement U with key
// B = sch(U.lhs) ∩ sch(U.rhs), walk the single-reader semijoin chain fed by
// U's output: every later chain statement W = (chain ⋉ ρ) whose BASE build
// side ρ covers B (B ⊆ sch(ρ)) is an *eliminator* — a row of U's probe side
// whose B-key has no match in ρ is dropped by W no matter what happens in
// between, because the chain's schema (hence its B-columns) never changes
// and W's semijoin key contains B. Pre-filtering U's probe against a Bloom
// filter over ρ's B-columns therefore prunes only rows that die downstream
// anyway: the chain's FINAL state is identical with or without SIP, and the
// single-reader requirement guarantees no other statement observes the
// (possibly smaller) intermediate states. Restricting sources to base slots
// keeps the filter tasks dependency-free, so adding consumer → filter edges
// can never create a cycle — and makes the pruning deterministic at every
// thread count (a consumer starts only after its filters are fully built).
//
// A chain statement's own collected set is subtracted from its upstream
// producer's (same source, same key signature): the producer's pruning
// already removed those rows, so re-consulting downstream is pure overhead.
std::vector<SipFilter> ComputeSipFilters(const Program& program,
                                         const std::vector<AttrSet>& schemas) {
  const int num_base = program.num_base();
  const int num_statements = program.NumStatements();
  const auto& statements = program.Statements();

  std::vector<std::vector<int>> readers(
      static_cast<size_t>(program.NumRelations()));
  for (int k = 0; k < num_statements; ++k) {
    ForEachInput(statements[static_cast<size_t>(k)], [&](int id) {
      readers[static_cast<size_t>(id)].push_back(k);
    });
  }

  using Key = std::pair<int, std::vector<AttrId>>;  // (source, signature)
  // Per-statement consult sets, for the producer subtraction.
  std::vector<std::vector<Key>> consults(static_cast<size_t>(num_statements));
  std::map<Key, std::vector<int>> registry;

  for (int u = 0; u < num_statements; ++u) {
    const Program::Statement& su = statements[static_cast<size_t>(u)];
    if (su.kind != Program::Statement::Kind::kSemijoin) continue;
    const AttrSet key = schemas[static_cast<size_t>(su.lhs)].Intersect(
        schemas[static_cast<size_t>(su.rhs)]);
    if (key.Empty()) continue;
    const std::vector<AttrId> signature = key.ToVector();

    std::vector<Key> collected;
    int cur = num_base + u;
    while (readers[static_cast<size_t>(cur)].size() == 1) {
      const int v = readers[static_cast<size_t>(cur)][0];
      const Program::Statement& sv = statements[static_cast<size_t>(v)];
      if (sv.kind != Program::Statement::Kind::kSemijoin || sv.lhs != cur ||
          sv.rhs == cur) {
        break;
      }
      if (sv.rhs < num_base && sv.rhs != su.rhs &&
          key.IsSubsetOf(schemas[static_cast<size_t>(sv.rhs)])) {
        collected.emplace_back(sv.rhs, signature);
      }
      cur = num_base + v;
    }
    if (collected.empty()) continue;

    // Subtract what U's producer already consults: those rows are gone
    // from U's probe side before U ever sees them.
    if (su.lhs >= num_base) {
      const std::vector<Key>& upstream =
          consults[static_cast<size_t>(su.lhs - num_base)];
      collected.erase(
          std::remove_if(collected.begin(), collected.end(),
                         [&](const Key& k) {
                           return std::find(upstream.begin(), upstream.end(),
                                            k) != upstream.end();
                         }),
          collected.end());
    }
    for (const Key& k : collected) registry[k].push_back(u);
    consults[static_cast<size_t>(u)] = std::move(collected);
  }

  std::vector<SipFilter> filters;
  filters.reserve(registry.size());
  for (auto& entry : registry) {
    filters.push_back(SipFilter{entry.first.first, entry.first.second,
                                std::move(entry.second)});
  }
  return filters;
}

}  // namespace

PhysicalPlan PhysicalPlan::Compile(const Program& program) {
  return PhysicalPlan(program, ComputeDependencies(program),
                      ComputeReaderCounts(program));
}

int PhysicalPlan::CriticalPathLength() const {
  // Statements only depend on earlier statements, so one forward sweep
  // computes the longest chain.
  std::vector<int> depth(deps_.size(), 1);
  int best = 0;
  for (size_t k = 0; k < deps_.size(); ++k) {
    for (int d : deps_[k]) {
      depth[k] = std::max(depth[k], depth[static_cast<size_t>(d)] + 1);
    }
    best = std::max(best, depth[k]);
  }
  return best;
}

int PhysicalPlan::NumSourceStatements() const {
  int n = 0;
  for (const std::vector<int>& d : deps_) {
    if (d.empty()) ++n;
  }
  return n;
}

namespace {

// Live relation-state accounting plus the retirement countdowns, shared by
// every statement task of one query. All counters are atomics: statement
// tasks for one query run concurrently on the pool.
class StateTracker {
 public:
  // `reader_counts` comes from the compile-time analysis; `retain` lists
  // slot ids exempt from retirement (may be null).
  StateTracker(std::vector<Relation>& states, bool retire,
               const std::vector<int>& reader_counts,
               const std::vector<int>* retain)
      : states_(states), retire_(retire) {
    int64_t base_bytes = 0;
    for (const Relation& r : states_) base_bytes += BytesOf(r);
    live_bytes_.store(base_bytes, std::memory_order_relaxed);
    peak_bytes_.store(base_bytes, std::memory_order_relaxed);
    if (!retire_) return;
    const size_t slots = reader_counts.size();
    remaining_ = std::make_unique<std::atomic<int>[]>(slots);
    for (size_t i = 0; i < slots; ++i) {
      remaining_[i].store(reader_counts[i], std::memory_order_relaxed);
    }
    retained_.assign(slots, 0);
    if (retain != nullptr) {
      for (int id : *retain) {
        GYO_CHECK_MSG(id >= 0 && static_cast<size_t>(id) < slots,
                      "retain_states id %d out of range", id);
        retained_[static_cast<size_t>(id)] = 1;
      }
    }
  }

  static int64_t BytesOf(const Relation& r) { return r.ArenaBytes(); }

  // Called by a statement task right after it stored its output.
  void RecordProduced(const Relation& out) { AddBytes(BytesOf(out)); }

  // One reader of slot `id` finished with it: decrements the slot's
  // remaining-reader countdown and frees the slot when this was the last
  // reader. Safe without a lock: the freeing task IS the slot's last reader
  // — every other reader's fetch_sub (an acq_rel RMW) already happened, so
  // their reads of the slot happen-before the free. SIP filter-build tasks
  // call this directly (their reads are counted into the seed counts by
  // ExecuteImpl), statement tasks go through RecordRetired below.
  void RecordSlotRead(int id) {
    if (!retire_) return;
    const size_t slot = static_cast<size_t>(id);
    if (remaining_[slot].fetch_sub(1, std::memory_order_acq_rel) != 1) {
      return;
    }
    if (retained_[slot]) return;
    const int64_t freed = BytesOf(states_[slot]);
    states_[slot] = Relation(states_[slot].Schema());
    live_bytes_.fetch_sub(freed, std::memory_order_relaxed);
    retired_.fetch_add(1, std::memory_order_relaxed);
  }

  // Called by statement `s`'s task after it finished: releases every slot
  // the statement read.
  void RecordRetired(const Program::Statement& s) {
    if (!retire_) return;
    ForEachInput(s, [&](int id) { RecordSlotRead(id); });
  }

  int64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }
  int64_t retired() const { return retired_.load(std::memory_order_relaxed); }

 private:
  void AddBytes(int64_t bytes) {
    const int64_t now =
        live_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    int64_t peak = peak_bytes_.load(std::memory_order_relaxed);
    while (now > peak && !peak_bytes_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }

  std::vector<Relation>& states_;
  const bool retire_;
  std::unique_ptr<std::atomic<int>[]> remaining_;
  std::vector<char> retained_;
  std::atomic<int64_t> live_bytes_{0};
  std::atomic<int64_t> peak_bytes_{0};
  std::atomic<int64_t> retired_{0};
};

// Builds and runs the statement task graph on `scheduler`. Each statement
// gets a plan-level priority — the length of its longest downstream
// dependency chain — so critical-path statements dispatch first when many
// statements (or many queries) compete for the pool.
// `steal_stats` (may be null) receives the query's scheduling counters, and
// `initial_age_seconds` — the admission-queue wait — ages every statement's
// priority (TaskScheduler::AgedPriority) so a long-queued query's tail is
// not starved by deeper plans admitted earlier.
void RunStatements(const Program& program,
                   const std::vector<std::vector<int>>& deps,
                   const std::vector<SipFilter>& sip,
                   std::vector<Relation>& states, TaskScheduler& scheduler,
                   const OpExecOpts& op_opts,
                   std::vector<int64_t>& rows_produced, StateTracker& tracker,
                   const std::shared_ptr<StealStats>& steal_stats,
                   double initial_age_seconds) {
  const int num_base = program.num_base();
  const int num_statements = program.NumStatements();

  // Tail critical path: priority[k] = longest chain from statement k to any
  // sink, in statements. Statements only depend on earlier ones, so one
  // reverse sweep suffices.
  std::vector<int> priority(static_cast<size_t>(num_statements), 1);
  for (int k = num_statements - 1; k >= 0; --k) {
    for (int d : deps[static_cast<size_t>(k)]) {
      priority[static_cast<size_t>(d)] =
          std::max(priority[static_cast<size_t>(d)],
                   priority[static_cast<size_t>(k)] + 1);
    }
  }

  // The SIP registry's run-time half: filter storage plus the per-consumer
  // filter lists the statement tasks consult through their OpExecOpts. Both
  // live on this frame, which outlives the graph run.
  std::vector<BloomFilter> filters(sip.size());
  std::vector<std::vector<const BloomFilter*>> consumer_filters(
      static_cast<size_t>(num_statements));
  for (size_t f = 0; f < sip.size(); ++f) {
    for (int c : sip[f].consumers) {
      consumer_filters[static_cast<size_t>(c)].push_back(&filters[f]);
    }
  }
  std::vector<OpExecOpts> stmt_opts(static_cast<size_t>(num_statements),
                                    op_opts);
  for (int k = 0; k < num_statements; ++k) {
    if (!consumer_filters[static_cast<size_t>(k)].empty()) {
      stmt_opts[static_cast<size_t>(k)].sip_filters =
          &consumer_filters[static_cast<size_t>(k)];
    }
  }

  TaskGraph graph;
  for (int k = 0; k < num_statements; ++k) {
    // Pointer, not reference: the task closures outlive this loop iteration
    // (the statements vector itself is stable for the program's lifetime).
    const Program::Statement* s =
        &program.Statements()[static_cast<size_t>(k)];
    const size_t slot = static_cast<size_t>(num_base + k);
    graph.AddTask(
        [&states, &rows_produced, &stmt_opts, &tracker, s, slot, k] {
          const OpExecOpts& opts = stmt_opts[static_cast<size_t>(k)];
          Relation& out = states[slot];
          switch (s->kind) {
            case Program::Statement::Kind::kJoin:
              out = NaturalJoin(states[static_cast<size_t>(s->lhs)],
                                states[static_cast<size_t>(s->rhs)], opts);
              break;
            case Program::Statement::Kind::kSemijoin:
              out = Semijoin(states[static_cast<size_t>(s->lhs)],
                             states[static_cast<size_t>(s->rhs)], opts);
              break;
            case Program::Statement::Kind::kProject:
              out = Project(states[static_cast<size_t>(s->lhs)], s->target,
                            opts);
              break;
          }
          rows_produced[static_cast<size_t>(k)] = out.NumRows();
          tracker.RecordProduced(out);
          tracker.RecordRetired(*s);
        },
        priority[static_cast<size_t>(k)]);
  }
  for (int k = 0; k < num_statements; ++k) {
    for (int d : deps[static_cast<size_t>(k)]) graph.AddDependency(k, d);
  }
  // Filter-build tasks: dependency-free (sources are base slots, always
  // ready), and every consumer waits on its filters — so the pruning
  // decisions are fixed before any consumer row is probed, at every thread
  // count. Priority: one above the hottest consumer, so a filter never
  // queues behind the statement it gates.
  for (size_t f = 0; f < sip.size(); ++f) {
    const SipFilter* sf = &sip[f];
    BloomFilter* dst = &filters[f];
    int filter_priority = 1;
    for (int c : sf->consumers) {
      filter_priority =
          std::max(filter_priority, priority[static_cast<size_t>(c)] + 1);
    }
    const int task = graph.AddTask(
        [&states, &tracker, sf, dst] {
          const Relation& src = states[static_cast<size_t>(sf->source)];
          std::vector<int> cols;
          cols.reserve(sf->key_attrs.size());
          for (AttrId a : sf->key_attrs) cols.push_back(src.ColIndex(a));
          *dst = BuildSipFilter(src, cols);
          tracker.RecordSlotRead(sf->source);
        },
        filter_priority);
    for (int c : sf->consumers) graph.AddDependency(c, task);
  }
  scheduler.RunGraph(graph, steal_stats, initial_age_seconds);
}

// Shared execution body: used by PhysicalPlan::Execute (compiled plan) and
// the free exec::Execute (borrows the caller's program — no Program copy on
// the convenience path). Takes `base` by value: the const-reference entry
// points copy at their boundary, the moving ones forward the caller's
// relations straight into the state vector — the per-round deep copy the
// semijoin fixpoint used to pay is gone.
std::vector<Relation> ExecuteImpl(const Program& program,
                                  const std::vector<std::vector<int>>& deps,
                                  const std::vector<int>& reader_counts,
                                  std::vector<Relation> base,
                                  const ExecContext& ctx,
                                  Program::Stats* stats,
                                  ExecutorPool::Admission* admitted = nullptr) {
  const int num_base = program.num_base();
  const int num_statements = program.NumStatements();
  GYO_CHECK_MSG(static_cast<int>(base.size()) == num_base,
                "base has %d relations, program expects %d",
                static_cast<int>(base.size()), num_base);
  GYO_CHECK_MSG(ctx.threads >= 1, "ExecContext.threads must be >= 1, got %d",
                ctx.threads);
  GYO_CHECK_MSG(ctx.morsel_rows >= 0,
                "ExecContext.morsel_rows must be >= 0, got %lld",
                static_cast<long long>(ctx.morsel_rows));

  // Eager validation: derive the schema of every statement from the actual
  // base relations, failing with the statement index before any data moves.
  std::vector<AttrSet> base_schemas;
  base_schemas.reserve(base.size());
  for (const Relation& r : base) base_schemas.push_back(r.Schema());
  std::vector<AttrSet> schemas =
      program.ValidateAndDeriveSchemas(std::move(base_schemas));

  // All relation states, base first. Statement slots start as empty
  // relations over their derived schemas and are move-assigned by their
  // task; the slots are disjoint, so no synchronization is needed beyond
  // the task dependencies themselves.
  std::vector<Relation> states;
  states.reserve(static_cast<size_t>(num_base + num_statements));
  for (Relation& r : base) states.push_back(std::move(r));
  for (int k = 0; k < num_statements; ++k) {
    states.emplace_back(schemas[static_cast<size_t>(num_base + k)]);
  }

  OpExecOpts op_opts;
  op_opts.morsel_rows = ctx.morsel_rows;
  op_opts.deterministic = ctx.deterministic;

  // Bloom/SIP/zone prune tallies, fed by both the serial and parallel
  // kernels; the query's statement tasks share them, so they are atomics.
  std::atomic<int64_t> bloom_skips{0};
  std::atomic<int64_t> probe_prunes{0};
  std::atomic<int64_t> sip_prunes{0};
  std::atomic<int64_t> zone_skips{0};
  op_opts.bloom_skip_counter = &bloom_skips;
  op_opts.probe_prune_counter = &probe_prunes;
  op_opts.sip_prune_counter = &sip_prunes;
  op_opts.zone_skip_counter = &zone_skips;

  // SIP analysis per execution (it needs the derived schemas, and the
  // filters themselves depend on the actual base states). Filter tasks read
  // their source slot once more than the compile-time reader counts know
  // about, so retirement seeds an adjusted local copy — the plan's public
  // ReaderCounts() stays the pure statement-level analysis.
  const std::vector<SipFilter> sip =
      ctx.enable_sip ? ComputeSipFilters(program, schemas)
                     : std::vector<SipFilter>();
  std::vector<int> adjusted_counts;
  const std::vector<int>* seed_counts = &reader_counts;
  if (!sip.empty()) {
    adjusted_counts = reader_counts;
    for (const SipFilter& f : sip) {
      ++adjusted_counts[static_cast<size_t>(f.source)];
    }
    seed_counts = &adjusted_counts;
  }

  // Per-task partial stats, written into disjoint slots and merged after the
  // RunGraph barrier.
  std::vector<int64_t> rows_produced(static_cast<size_t>(num_statements), 0);
  StateTracker tracker(states, ctx.retire_consumed, *seed_counts,
                       ctx.retain_states);

  if (admitted != nullptr) {
    // Pre-admitted path (exec::ExecuteAdmitted): the caller already holds a
    // slot — granted by TryAdmit after its deadline/backlog checks — so the
    // query goes straight onto the admission's pool, even a width-1 one
    // (the concurrency cap must keep holding; the caller participates in
    // execution either way).
    ExecutorPool::Admission& admission = *admitted;
    op_opts.scheduler = &admission.scheduler();
    op_opts.morsel_counter = &admission.morsel_counter();
    op_opts.steal_stats = admission.steal_stats();
    RunStatements(program, deps, sip, states, admission.scheduler(), op_opts,
                  rows_produced, tracker, admission.steal_stats(),
                  admission.queue_wait_seconds());
    admission.AddTasks(num_statements);
    if (ctx.query_stats != nullptr) *ctx.query_stats = admission.Finish();
  } else if (ctx.threads == 1) {
    // Serial specialization (Program::Execute's path): inline execution on
    // the calling thread, no shared pool, no admission control.
    const auto started = std::chrono::steady_clock::now();
    TaskScheduler serial(1);
    op_opts.scheduler = &serial;
    RunStatements(program, deps, sip, states, serial, op_opts, rows_produced,
                  tracker, /*steal_stats=*/nullptr,
                  /*initial_age_seconds=*/0.0);
    if (ctx.query_stats != nullptr) {
      *ctx.query_stats = QueryStats();
      ctx.query_stats->run_time_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started)
              .count();
      ctx.query_stats->tasks = num_statements;
    }
  } else {
    // Multi-tenant path: admission into the shared pool (ctx.pool, or the
    // process-wide one), then the query's graph runs on the pool's workers
    // concurrently with other admitted queries.
    ExecutorPool& pool =
        ctx.pool != nullptr ? *ctx.pool : ExecutorPool::Global();
    ExecutorPool::Admission admission = pool.Admit(ctx.submitter);
    op_opts.scheduler = &admission.scheduler();
    op_opts.morsel_counter = &admission.morsel_counter();
    op_opts.steal_stats = admission.steal_stats();
    RunStatements(program, deps, sip, states, admission.scheduler(), op_opts,
                  rows_produced, tracker, admission.steal_stats(),
                  admission.queue_wait_seconds());
    admission.AddTasks(num_statements);
    if (ctx.query_stats != nullptr) *ctx.query_stats = admission.Finish();
  }
  if (ctx.query_stats != nullptr) {
    ctx.query_stats->peak_state_bytes = tracker.peak_bytes();
    ctx.query_stats->retired_states = tracker.retired();
    ctx.query_stats->bloom_partition_skips =
        bloom_skips.load(std::memory_order_relaxed);
    ctx.query_stats->probe_rows_pruned =
        probe_prunes.load(std::memory_order_relaxed);
    ctx.query_stats->sip_rows_pruned =
        sip_prunes.load(std::memory_order_relaxed);
    ctx.query_stats->zone_map_skips =
        zone_skips.load(std::memory_order_relaxed);
  }

  if (stats != nullptr) {
    *stats = Program::Stats();
    for (int64_t rows : rows_produced) {
      stats->max_intermediate_rows =
          std::max(stats->max_intermediate_rows, rows);
      stats->total_rows_produced += rows;
    }
    if (num_statements > 0) {
      stats->result_rows = rows_produced[static_cast<size_t>(num_statements - 1)];
    }
  }
  return states;
}

}  // namespace

PhysicalPlan PhysicalPlan::FromAnalysis(Program program,
                                        std::vector<std::vector<int>> deps,
                                        std::vector<int> reader_counts) {
  GYO_CHECK_MSG(
      static_cast<int>(deps.size()) == program.NumStatements(),
      "analysis has %d dependency lists, program has %d statements",
      static_cast<int>(deps.size()), program.NumStatements());
  GYO_CHECK_MSG(
      static_cast<int>(reader_counts.size()) == program.NumRelations(),
      "analysis has %d reader counts, program has %d relations",
      static_cast<int>(reader_counts.size()), program.NumRelations());
  return PhysicalPlan(std::move(program), std::move(deps),
                      std::move(reader_counts));
}

std::vector<Relation> PhysicalPlan::Execute(const std::vector<Relation>& base,
                                            const ExecContext& ctx,
                                            Program::Stats* stats) const {
  return ExecuteImpl(program_, deps_, reader_counts_, base, ctx, stats);
}

std::vector<Relation> PhysicalPlan::Execute(std::vector<Relation>&& base,
                                            const ExecContext& ctx,
                                            Program::Stats* stats) const {
  return ExecuteImpl(program_, deps_, reader_counts_, std::move(base), ctx,
                     stats);
}

std::vector<Relation> Execute(const Program& program,
                              const std::vector<Relation>& base,
                              const ExecContext& ctx, Program::Stats* stats) {
  return ExecuteImpl(program, ComputeDependencies(program),
                     ComputeReaderCounts(program), base, ctx, stats);
}

std::vector<Relation> Execute(const Program& program,
                              std::vector<Relation>&& base,
                              const ExecContext& ctx, Program::Stats* stats) {
  return ExecuteImpl(program, ComputeDependencies(program),
                     ComputeReaderCounts(program), std::move(base), ctx,
                     stats);
}

std::vector<int> RetainForSinks(const Program& program,
                                const std::vector<int>& requested) {
  const std::vector<int> counts = ComputeReaderCounts(program);
  std::vector<int> retain;
  for (int id : requested) {
    GYO_CHECK_MSG(id >= 0 && id < program.NumRelations(),
                  "requested slot %d out of range", id);
    // Slots no statement reads are sinks — retirement already spares them.
    if (counts[static_cast<size_t>(id)] > 0) retain.push_back(id);
  }
  return retain;
}

Relation Run(const Program& program, const std::vector<Relation>& base,
             const ExecContext& ctx) {
  GYO_CHECK_MSG(program.NumStatements() > 0, "program has no statements");
  // Result-only entry point, so retirement is always safe: statements only
  // read earlier slots, making the last statement's output a sink (reader
  // count zero) that retirement never touches — every other state is freed
  // as its last reader finishes.
  ExecContext run_ctx = ctx;
  run_ctx.retire_consumed = true;
  run_ctx.retain_states = nullptr;
  return Execute(program, base, run_ctx).back();
}

std::vector<Relation> PhysicalPlan::ExecuteAdmitted(
    const std::vector<Relation>& base, const ExecContext& ctx,
    ExecutorPool::Admission& admission, Program::Stats* stats) const {
  return ExecuteImpl(program_, deps_, reader_counts_, base, ctx, stats,
                     &admission);
}

std::vector<Relation> ExecuteAdmitted(const Program& program,
                                      const std::vector<Relation>& base,
                                      const ExecContext& ctx,
                                      ExecutorPool::Admission& admission,
                                      Program::Stats* stats) {
  return ExecuteImpl(program, ComputeDependencies(program),
                     ComputeReaderCounts(program), base, ctx, stats,
                     &admission);
}

}  // namespace exec
}  // namespace gyo
