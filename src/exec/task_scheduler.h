#ifndef GYO_EXEC_TASK_SCHEDULER_H_
#define GYO_EXEC_TASK_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gyo {
namespace exec {

/// Per-query scheduling counters, fed by the work-stealing scheduler and
/// surfaced through QueryStats. All relaxed atomics: the counts are tallies,
/// not synchronization. Always handled via shared_ptr: queued jobs co-own
/// the counters, so a job that outlives its query (e.g. a no-op morsel left
/// in a parked worker's deque after every chunk was claimed elsewhere) can
/// still be tallied safely when it is finally drained.
struct StealStats {
  /// Jobs executed by a thread other than the one whose deque held them
  /// (any pop from a foreign worker deque; shared-overflow pops are not
  /// steals). 0 means perfect locality — every job ran where it was placed.
  std::atomic<int64_t> tasks_stolen{0};

  /// Affinity-tagged chunks (ParallelForAffine) that ran on their preferred
  /// worker — the one whose cache holds the partition the chunk probes.
  std::atomic<int64_t> affinity_hits{0};

  /// Affinity-tagged chunks that ran elsewhere (stolen under imbalance, or
  /// claimed by the participating caller). hits + misses equals the number
  /// of affinity-tagged chunks dispatched.
  std::atomic<int64_t> affinity_misses{0};
};

/// A dependency-counting task DAG, built once and handed to
/// TaskScheduler::RunGraph. Tasks are identified by the dense int returned
/// from AddTask; AddDependency(a, b) orders b before a. The graph may be run
/// once per construction (RunGraph consumes the dependency counters).
class TaskGraph {
 public:
  using TaskFn = std::function<void()>;

  /// Registers a task; returns its id (dense, starting at 0). Higher
  /// `priority` tasks dispatch before lower ones whenever both are ready
  /// (ties drain FIFO); the physical plan uses this to run critical-path
  /// statements first. Priority never overrides a dependency.
  int AddTask(TaskFn fn, int priority = 0);

  /// Declares that `task` must not start before `dep` has finished.
  /// Duplicate edges are allowed and counted once.
  void AddDependency(int task, int dep);

  int NumTasks() const { return static_cast<int>(tasks_.size()); }

  /// Longest dependency chain, in tasks (0 for an empty graph) — the lower
  /// bound on parallel makespan in task units.
  int CriticalPathLength() const;

 private:
  friend class TaskScheduler;
  struct Task {
    TaskFn fn;
    std::vector<int> successors;
    int num_deps = 0;
    int priority = 0;
  };
  std::vector<Task> tasks_;
  std::vector<std::vector<int>> deps_;  // per task, for dedup + critical path
};

/// A fixed pool of worker threads executing dependency-ordered task DAGs and
/// morsel-style parallel loops. This is the core of the exec subsystem: the
/// PhysicalPlan runtime maps program statements onto RunGraph (statement-level
/// parallelism) and the rel/ops kernels call ParallelFor / ParallelForAffine
/// from inside those tasks (intra-operator morsel parallelism).
///
/// Scheduling is work-stealing with priority hints. Each worker owns a
/// priority-bucketed deque: jobs a worker creates (graph successors it
/// releases, morsel helpers it fans out) push onto its own deque and pop
/// back LIFO — the hot-in-cache order — while idle threads steal FIFO from
/// the opposite end, taking the oldest (coldest) job. A shared overflow
/// queue carries work from outside the pool: external RunGraph callers
/// (cross-graph admission from the ExecutorPool) seed their graphs there,
/// and affinity-less jobs from external threads land there too. A thread
/// out of local work takes the highest-priority job visible across the
/// overflow queue and every other worker's deque-top hint (overflow wins
/// ties so external admissions cannot starve behind equal-priority local
/// work; victims tie-break in scan order from the thief's index + 1).
///
/// ParallelForAffine adds sticky placement on top of stealing: each chunk
/// carries a preferred worker (the one that built the partition the chunk
/// probes) and is pushed to that worker's deque, so the partition is probed
/// by the thread whose cache holds it — but remains stealable, so imbalance
/// never serializes on one hot deque. StealStats counts how often placement
/// held (affinity_hits) and how often work moved (tasks_stolen,
/// affinity_misses).
///
/// ParallelFor morsels run above every graph priority, so in-flight
/// operators finish before new statements start.
///
/// Multiple independent TaskGraphs may be in flight at once: RunGraph may be
/// called concurrently from any number of external threads (one per query in
/// the ExecutorPool). Each invocation carries its own graph-scoped dependency
/// counters and completion signal — every caller participates in execution,
/// so a graph always completes even when all workers are busy with other
/// graphs. The aged RunGraph overload adds cross-query priority aging:
/// a query that waited in the admission queue gets a bounded priority boost
/// (AgedPriority), so a deep plan admitted earlier cannot starve a
/// long-queued short query's tail.
///
/// Determinism: scheduling only decides WHERE a job runs. Result bytes are
/// governed by the kernels' morsel-indexed merges, so stealing and affinity
/// placement never change deterministic-mode output.
///
/// threads == 1 is the serial specialization: no worker threads are spawned,
/// every job routes through the overflow queue, and both modes execute
/// inline on the calling thread in deterministic (priority bucket, then
/// FIFO / loop) order. Program::Execute runs on exactly this path.
class TaskScheduler {
 public:
  struct Options {
    /// Pool width (callers participate as the extra thread). Must be >= 1.
    int threads = 1;

    /// Steal-storm test hook: worker 0 parks for this long before its first
    /// pop (interruptible by shutdown), so with real work in flight the
    /// other threads MUST steal. 0 (default) = off. Production code never
    /// sets this; the bit-identical-under-stealing property tests do.
    int worker0_start_delay_ms = 0;
  };

  /// Spawns `threads - 1` workers (the caller participates as the remaining
  /// thread). `threads` must be >= 1.
  explicit TaskScheduler(int threads);
  explicit TaskScheduler(const Options& options);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  int threads() const { return threads_; }

  /// Worker deques (threads() - 1): valid affinity targets are
  /// [0, num_workers()); -1 means "no preference" (shared overflow).
  int num_workers() const { return threads_ - 1; }

  /// The calling thread's worker index in this pool, or -1 for threads the
  /// pool does not own (external RunGraph callers included). Kernels use it
  /// to record which worker built a partition.
  int CurrentWorkerIndex() const;

  /// Cross-query priority aging: the effective priority of a task whose
  /// query waited `wait_seconds` in the admission queue before running.
  /// One priority level per kAgingQuantumSeconds of wait, capped at
  /// kMaxAgingBoost so aged tasks can never outrank ParallelFor morsels or
  /// leapfrog a genuinely deeper critical path by more than the cap.
  static constexpr double kAgingQuantumSeconds = 0.002;
  static constexpr int kMaxAgingBoost = 8;

  static int AgingBoost(double wait_seconds) {
    if (wait_seconds <= 0.0) return 0;
    const double quanta = wait_seconds / kAgingQuantumSeconds;
    if (quanta >= static_cast<double>(kMaxAgingBoost)) return kMaxAgingBoost;
    return static_cast<int>(quanta);
  }

  static int AgedPriority(int priority, double wait_seconds) {
    return priority + AgingBoost(wait_seconds);
  }

  /// Runs every task of `graph` respecting its dependencies; blocks until
  /// all have finished. The calling thread participates in execution. Must
  /// not be called from inside a task, but may be called concurrently from
  /// any number of distinct external threads. Each TaskGraph may be run
  /// once.
  void RunGraph(TaskGraph& graph);

  /// RunGraph with scheduling stats and priority aging: every task
  /// dispatches at AgedPriority(task priority, initial_age_seconds) — the
  /// admission queue wait of the owning query — and steal counts feed
  /// `stats` (may be null).
  void RunGraph(TaskGraph& graph, std::shared_ptr<StealStats> stats,
                double initial_age_seconds);

  /// Runs body(chunk) for every chunk in [0, num_chunks), distributing
  /// chunks over the pool via an atomic claim counter (morsel dispatch);
  /// blocks until every chunk has run. The calling thread participates, so
  /// completion never depends on worker availability — callable both from
  /// outside the pool and from inside a RunGraph task. Chunk execution
  /// order across threads is unspecified; with threads() == 1 the loop runs
  /// inline in increasing chunk order.
  void ParallelFor(int64_t num_chunks,
                   const std::function<void(int64_t)>& body);
  void ParallelFor(int64_t num_chunks, const std::function<void(int64_t)>& body,
                   std::shared_ptr<StealStats> stats);

  /// Affinity-placed variant: chunk c is pushed to worker affinity[c]'s
  /// deque (values outside [0, num_workers()) mean no preference), where
  /// the owner pops it LIFO — or any other thread steals it under
  /// imbalance. Completion never depends on worker availability: every
  /// chunk is guarded by a claim flag and the caller claims unclaimed
  /// chunks itself (its own-affinity chunks first, then the rest in
  /// increasing order — the far end from the owners' LIFO pops). Chunk
  /// execution order is unspecified; with threads() == 1 the loop runs
  /// inline in increasing chunk order. `stats` (may be null) receives
  /// steal counts plus one affinity hit or miss per affinity-tagged chunk.
  void ParallelForAffine(int64_t num_chunks,
                         const std::function<void(int64_t)>& body,
                         const std::vector<int>& affinity,
                         std::shared_ptr<StealStats> stats);

 private:
  struct Job {
    std::function<void()> fn;
    // Steal tally for this job, may be null. Shared ownership: a job drained
    // after its query finished still points at live counters.
    std::shared_ptr<StealStats> stats;
  };
  struct WorkerDeque;
  struct GraphRunState;  // shared state of one RunGraph invocation

  static constexpr int kEmptyPriority = std::numeric_limits<int>::min();

  /// Places a job: affinity target's deque when valid, else the calling
  /// worker's own deque, else the shared overflow queue (always overflow at
  /// threads == 1, preserving the pinned serial drain order).
  void Enqueue(int priority, std::function<void()> fn, int affinity,
               const std::shared_ptr<StealStats>& stats);
  void PushDeque(int worker, int priority, Job job);
  void PushOverflow(int priority, Job job);
  bool PopOwn(int self, Job* out);       // LIFO from own deque
  bool StealFrom(int victim, Job* out);  // FIFO from a victim's deque
  bool PopOverflow(Job* out);
  /// The full acquire order for thread `self` (-1 = external): own deque,
  /// then the highest-priority source among overflow and victim hints.
  bool AcquireJob(int self, Job* out);
  void WorkerLoop(int index);
  void EnqueueGraphTask(const std::shared_ptr<GraphRunState>& state, int id);
  void RunGraphTask(const std::shared_ptr<GraphRunState>& state, int id);
  void RunGraphImpl(TaskGraph& graph, std::shared_ptr<StealStats> stats,
                    int age_boost);

  const int threads_;
  const int worker0_start_delay_ms_;
  std::vector<std::unique_ptr<WorkerDeque>> deques_;  // one per worker
  std::vector<std::thread> workers_;

  /// Jobs currently queued anywhere (deques + overflow). Incremented before
  /// a push, decremented on pop, so a non-zero count is visible before the
  /// job is; the idle-sleep predicate reads it without touching any deque.
  std::atomic<int64_t> jobs_{0};

  std::mutex mu_;  // guards overflow_ and the idle sleep
  std::condition_variable queue_cv_;
  // Overflow priority buckets, highest first; each bucket drains FIFO.
  // Emptied buckets are erased so begin() is always the top priority.
  std::map<int, std::deque<Job>, std::greater<int>> overflow_;
  std::atomic<int> overflow_top_{kEmptyPriority};  // steal-order hint
  bool stopping_ = false;
};

}  // namespace exec
}  // namespace gyo

#endif  // GYO_EXEC_TASK_SCHEDULER_H_
