#ifndef GYO_EXEC_TASK_SCHEDULER_H_
#define GYO_EXEC_TASK_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gyo {
namespace exec {

/// A dependency-counting task DAG, built once and handed to
/// TaskScheduler::RunGraph. Tasks are identified by the dense int returned
/// from AddTask; AddDependency(a, b) orders b before a. The graph may be run
/// once per construction (RunGraph consumes the dependency counters).
class TaskGraph {
 public:
  using TaskFn = std::function<void()>;

  /// Registers a task; returns its id (dense, starting at 0). Higher
  /// `priority` tasks dispatch before lower ones whenever both are ready
  /// (ties drain FIFO); the physical plan uses this to run critical-path
  /// statements first. Priority never overrides a dependency.
  int AddTask(TaskFn fn, int priority = 0);

  /// Declares that `task` must not start before `dep` has finished.
  /// Duplicate edges are allowed and counted once.
  void AddDependency(int task, int dep);

  int NumTasks() const { return static_cast<int>(tasks_.size()); }

  /// Longest dependency chain, in tasks (0 for an empty graph) — the lower
  /// bound on parallel makespan in task units.
  int CriticalPathLength() const;

 private:
  friend class TaskScheduler;
  struct Task {
    TaskFn fn;
    std::vector<int> successors;
    int num_deps = 0;
    int priority = 0;
  };
  std::vector<Task> tasks_;
  std::vector<std::vector<int>> deps_;  // per task, for dedup + critical path
};

/// A fixed pool of worker threads executing dependency-ordered task DAGs and
/// morsel-style parallel loops. This is the core of the exec subsystem: the
/// PhysicalPlan runtime maps program statements onto RunGraph (statement-level
/// parallelism) and the rel/ops kernels call ParallelFor from inside those
/// tasks (intra-operator morsel parallelism); both draw from one work queue,
/// so idle statement workers steal operator morsels and vice versa.
///
/// The queue is priority-ordered: ready work dispatches highest priority
/// first, FIFO within a priority class. Graph tasks carry their
/// TaskGraph::AddTask priority; ParallelFor morsels run above every graph
/// priority, so in-flight operators finish before new statements start.
///
/// Multiple independent TaskGraphs may be in flight at once: RunGraph may be
/// called concurrently from any number of external threads (one per query in
/// the ExecutorPool). Each invocation carries its own graph-scoped dependency
/// counters and completion signal, while all tasks and morsels drain from the
/// shared queue — every caller participates in execution, so a graph always
/// completes even when all workers are busy with other graphs.
///
/// threads == 1 is the serial specialization: no worker threads are spawned
/// and both modes execute inline on the calling thread in deterministic
/// (priority bucket, then FIFO / loop) order. Program::Execute runs on
/// exactly this path.
class TaskScheduler {
 public:
  /// Spawns `threads - 1` workers (the caller participates as the remaining
  /// thread). `threads` must be >= 1.
  explicit TaskScheduler(int threads);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  int threads() const { return threads_; }

  /// Runs every task of `graph` respecting its dependencies; blocks until
  /// all have finished. The calling thread participates in execution. Must
  /// not be called from inside a task, but may be called concurrently from
  /// any number of distinct external threads. Each TaskGraph may be run
  /// once.
  void RunGraph(TaskGraph& graph);

  /// Runs body(chunk) for every chunk in [0, num_chunks), distributing
  /// chunks over the pool via an atomic claim counter (morsel dispatch);
  /// blocks until every chunk has run. The calling thread participates, so
  /// completion never depends on worker availability — callable both from
  /// outside the pool and from inside a RunGraph task. Chunk execution
  /// order across threads is unspecified; with threads() == 1 the loop runs
  /// inline in increasing chunk order.
  void ParallelFor(int64_t num_chunks,
                   const std::function<void(int64_t)>& body);

 private:
  using Job = std::function<void()>;
  struct GraphRunState;  // shared state of one RunGraph invocation

  void Enqueue(int priority, Job job);
  bool PopJob(Job* out);
  Job PopLockedJob();  // mu_ must be held and queued_jobs_ > 0
  void WorkerLoop();
  void EnqueueGraphTask(const std::shared_ptr<GraphRunState>& state, int id);
  void RunGraphTask(const std::shared_ptr<GraphRunState>& state, int id);

  const int threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable queue_cv_;
  // Priority buckets, highest first; each bucket drains FIFO. Emptied
  // buckets are erased so begin() is always the top priority.
  std::map<int, std::deque<Job>, std::greater<int>> queue_;
  int64_t queued_jobs_ = 0;
  bool stopping_ = false;
};

}  // namespace exec
}  // namespace gyo

#endif  // GYO_EXEC_TASK_SCHEDULER_H_
