#include "exec/executor_pool.h"

#include <cstdlib>
#include <thread>

#include "util/check.h"

namespace gyo {
namespace exec {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

// Global-pool registration. A plain pointer guarded by a function-local
// mutex: the pool itself is leaked on purpose (see Global() contract) so a
// query running on a detached thread at exit never races a static
// destructor.
std::mutex& GlobalMu() {
  static std::mutex mu;
  return mu;
}

ExecutorPool*& GlobalSlot() {
  static ExecutorPool* pool = nullptr;
  return pool;
}

ExecutorPool::Options& PendingGlobalOptions() {
  static ExecutorPool::Options options;
  return options;
}

}  // namespace

int ExecutorPool::ResolveThreads(int requested) {
  if (requested >= 1) return requested;
  if (const char* env = std::getenv("GYO_EXEC_THREADS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

ExecutorPool::ExecutorPool(const Options& options)
    : scheduler_(TaskScheduler::Options{ResolveThreads(options.threads),
                                        options.worker0_start_delay_ms}),
      max_concurrent_(options.max_concurrent_queries >= 1
                          ? options.max_concurrent_queries
                          : scheduler_.threads()) {}

ExecutorPool::~ExecutorPool() {
  std::lock_guard<std::mutex> lock(mu_);
  GYO_CHECK_MSG(running_ == 0 && num_waiting_ == 0,
                "ExecutorPool destroyed with %d running and %d waiting "
                "queries", running_, num_waiting_);
}

ExecutorPool& ExecutorPool::Global() {
  std::lock_guard<std::mutex> lock(GlobalMu());
  ExecutorPool*& slot = GlobalSlot();
  if (slot == nullptr) slot = new ExecutorPool(PendingGlobalOptions());
  return *slot;
}

void ExecutorPool::ConfigureGlobal(const Options& options) {
  std::lock_guard<std::mutex> lock(GlobalMu());
  GYO_CHECK_MSG(GlobalSlot() == nullptr,
                "ConfigureGlobal called after the global pool was created");
  PendingGlobalOptions() = options;
}

int ExecutorPool::running_queries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

int ExecutorPool::waiting_queries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_waiting_;
}

int ExecutorPool::waiting_queries(uint64_t submitter) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = waiting_.find(submitter);
  return it == waiting_.end() ? 0 : static_cast<int>(it->second.size());
}

ExecutorPool::Admission ExecutorPool::Admit(uint64_t submitter) {
  const auto enqueued_at = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mu_);
  // Queue pressure seen on arrival, before this query joins the queue.
  const int64_t depth = num_waiting_;
  // Fast path only when nobody is queued: a free slot must not let a
  // latecomer jump the round-robin ring.
  if (running_ < max_concurrent_ && num_waiting_ == 0) {
    ++running_;
    lock.unlock();
    return Admission(this, 0.0, std::chrono::steady_clock::now(), depth);
  }

  Waiter w;
  std::deque<Waiter*>& q = waiting_[submitter];
  if (q.empty()) rr_ring_.push_back(submitter);
  q.push_back(&w);
  ++num_waiting_;
  w.cv.wait(lock, [&] { return w.admitted; });  // Release() did the counts
  lock.unlock();
  const auto admitted_at = std::chrono::steady_clock::now();
  return Admission(this, SecondsSince(enqueued_at, admitted_at), admitted_at,
                   depth);
}

void ExecutorPool::Release() {
  std::lock_guard<std::mutex> lock(mu_);
  --running_;
  // Serve the next waiter round-robin across submitters. Invariant: the
  // ring holds exactly the submitters with a non-empty queue (Admit pushes
  // on the empty -> non-empty transition, the erase below drops a submitter
  // the moment its queue drains), so a drain-and-requeue cycle cannot
  // accumulate duplicate ring entries and the ring/map stay bounded by the
  // number of distinct waiting submitters. The notify happens under mu_:
  // the Waiter lives on the admitted caller's stack and dies as soon as
  // that caller observes admitted == true, so signaling after unlocking
  // could dereference a dead waiter.
  if (rr_ring_.empty()) return;
  if (rr_pos_ >= rr_ring_.size()) rr_pos_ = 0;
  const uint64_t submitter = rr_ring_[rr_pos_];
  std::deque<Waiter*>& q = waiting_[submitter];
  Waiter* next = q.front();
  q.pop_front();
  if (q.empty()) {
    waiting_.erase(submitter);
    // The erase slides the next submitter into rr_pos_, so no advance.
    rr_ring_.erase(rr_ring_.begin() + static_cast<std::ptrdiff_t>(rr_pos_));
  } else {
    ++rr_pos_;  // the next release serves the next submitter
  }
  --num_waiting_;
  ++running_;
  next->admitted = true;
  next->cv.notify_one();
}

QueryStats ExecutorPool::Admission::Finish() {
  if (!finished_) {
    finished_ = true;
    run_time_seconds_ =
        SecondsSince(admitted_at_, std::chrono::steady_clock::now());
  }
  QueryStats stats;
  stats.queue_wait_seconds = queue_wait_seconds_;
  stats.run_time_seconds = run_time_seconds_;
  stats.tasks = tasks_.load(std::memory_order_relaxed);
  stats.morsels = morsels_.load(std::memory_order_relaxed);
  stats.tasks_stolen =
      steal_stats_->tasks_stolen.load(std::memory_order_relaxed);
  stats.affinity_hits =
      steal_stats_->affinity_hits.load(std::memory_order_relaxed);
  stats.affinity_misses =
      steal_stats_->affinity_misses.load(std::memory_order_relaxed);
  stats.queue_depth_at_admit = queue_depth_at_admit_;
  return stats;
}

ExecutorPool::Admission::~Admission() {
  Finish();
  pool_->Release();
}

}  // namespace exec
}  // namespace gyo
