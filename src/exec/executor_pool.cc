#include "exec/executor_pool.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <thread>

#include "util/check.h"

namespace gyo {
namespace exec {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

// Global-pool registration. A plain pointer guarded by a function-local
// mutex: the pool itself is leaked on purpose (see Global() contract) so a
// query running on a detached thread at exit never races a static
// destructor.
std::mutex& GlobalMu() {
  static std::mutex mu;
  return mu;
}

ExecutorPool*& GlobalSlot() {
  static ExecutorPool* pool = nullptr;
  return pool;
}

ExecutorPool::Options& PendingGlobalOptions() {
  static ExecutorPool::Options options;
  return options;
}

}  // namespace

int ExecutorPool::ResolveThreads(int requested) {
  if (requested >= 1) return requested;
  if (const char* env = std::getenv("GYO_EXEC_THREADS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

ExecutorPool::ExecutorPool(const Options& options)
    : scheduler_(TaskScheduler::Options{ResolveThreads(options.threads),
                                        options.worker0_start_delay_ms}),
      max_concurrent_(options.max_concurrent_queries >= 1
                          ? options.max_concurrent_queries
                          : scheduler_.threads()),
      max_queue_wait_seconds_(options.max_queue_wait_seconds),
      max_waiting_per_submitter_(options.max_waiting_per_submitter) {}

ExecutorPool::~ExecutorPool() {
  std::lock_guard<std::mutex> lock(mu_);
  GYO_CHECK_MSG(running_ == 0 && num_waiting_ == 0,
                "ExecutorPool destroyed with %d running and %d waiting "
                "queries", running_, num_waiting_);
}

ExecutorPool& ExecutorPool::Global() {
  std::lock_guard<std::mutex> lock(GlobalMu());
  ExecutorPool*& slot = GlobalSlot();
  if (slot == nullptr) slot = new ExecutorPool(PendingGlobalOptions());
  return *slot;
}

void ExecutorPool::ConfigureGlobal(const Options& options) {
  std::lock_guard<std::mutex> lock(GlobalMu());
  GYO_CHECK_MSG(GlobalSlot() == nullptr,
                "ConfigureGlobal called after the global pool was created");
  PendingGlobalOptions() = options;
}

int ExecutorPool::running_queries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

int ExecutorPool::waiting_queries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_waiting_;
}

int ExecutorPool::waiting_queries(uint64_t submitter) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = waiting_.find(submitter);
  return it == waiting_.end() ? 0 : static_cast<int>(it->second.size());
}

ExecutorPool::Admission ExecutorPool::Admit(uint64_t submitter) {
  const auto enqueued_at = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mu_);
  // Queue pressure seen on arrival, before this query joins the queue.
  const int64_t depth = num_waiting_;
  // Fast path only when nobody is queued: a free slot must not let a
  // latecomer jump the round-robin ring.
  if (running_ < max_concurrent_ && num_waiting_ == 0) {
    ++running_;
    ++running_by_submitter_[submitter];
    lock.unlock();
    return Admission(this, submitter, 0.0, std::chrono::steady_clock::now(),
                     depth);
  }

  Waiter w;
  std::deque<Waiter*>& q = waiting_[submitter];
  if (q.empty()) rr_ring_.push_back(submitter);
  q.push_back(&w);
  ++num_waiting_;
  w.cv.wait(lock, [&] { return w.admitted; });  // Release() did the counts
  lock.unlock();
  const auto admitted_at = std::chrono::steady_clock::now();
  return Admission(this, submitter, SecondsSince(enqueued_at, admitted_at),
                   admitted_at, depth);
}

ExecutorPool::AdmitResult ExecutorPool::TryAdmit(
    uint64_t submitter, double max_queue_wait_seconds) {
  const double deadline_seconds = max_queue_wait_seconds < 0.0
                                      ? max_queue_wait_seconds_
                                      : max_queue_wait_seconds;
  const auto enqueued_at = std::chrono::steady_clock::now();
  AdmitResult result;
  std::unique_lock<std::mutex> lock(mu_);
  const int64_t depth = num_waiting_;
  if (running_ < max_concurrent_ && num_waiting_ == 0) {
    ++running_;
    ++running_by_submitter_[submitter];
    lock.unlock();
    result.admission.reset(new Admission(
        this, submitter, 0.0, std::chrono::steady_clock::now(), depth));
    return result;
  }

  // The query must wait: apply the backlog bound before joining the queue,
  // so an over-quota tenant is rejected in O(1) without pinning a waiter.
  std::deque<Waiter*>& q = waiting_[submitter];
  result.waiting_for_submitter = static_cast<int>(q.size());
  if (max_waiting_per_submitter_ > 0 &&
      static_cast<int>(q.size()) >= max_waiting_per_submitter_) {
    // q is at its bound (>= 1), so the operator[] above cannot have created
    // a stray empty-queue entry on this path.
    result.status = AdmitStatus::kBacklogFull;
    return result;
  }

  Waiter w;
  if (q.empty()) rr_ring_.push_back(submitter);
  q.push_back(&w);
  ++num_waiting_;
  if (deadline_seconds <= 0.0) {
    w.cv.wait(lock, [&] { return w.admitted; });
  } else {
    const auto deadline =
        enqueued_at + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(deadline_seconds));
    if (!w.cv.wait_until(lock, deadline, [&] { return w.admitted; })) {
      // Shed: still waiting at the deadline. The predicate was re-checked
      // under mu_, so Release() cannot be admitting us concurrently.
      RemoveWaiter(submitter, &w);
      result.status = AdmitStatus::kDeadlineExceeded;
      result.queue_wait_seconds =
          SecondsSince(enqueued_at, std::chrono::steady_clock::now());
      return result;
    }
  }
  lock.unlock();
  const auto admitted_at = std::chrono::steady_clock::now();
  result.queue_wait_seconds = SecondsSince(enqueued_at, admitted_at);
  result.admission.reset(new Admission(
      this, submitter, result.queue_wait_seconds, admitted_at, depth));
  return result;
}

void ExecutorPool::RemoveWaiter(uint64_t submitter, Waiter* w) {
  auto it = waiting_.find(submitter);
  GYO_CHECK_MSG(it != waiting_.end(), "shed waiter has no fairness queue");
  std::deque<Waiter*>& q = it->second;
  auto pos = std::find(q.begin(), q.end(), w);
  GYO_CHECK_MSG(pos != q.end(), "shed waiter missing from its queue");
  q.erase(pos);
  --num_waiting_;
  if (!q.empty()) return;
  waiting_.erase(it);
  auto ring = std::find(rr_ring_.begin(), rr_ring_.end(), submitter);
  GYO_CHECK_MSG(ring != rr_ring_.end(), "drained submitter missing from ring");
  const size_t index = static_cast<size_t>(ring - rr_ring_.begin());
  rr_ring_.erase(ring);
  // Keep rr_pos_ pointing at the same next-to-serve submitter.
  if (index < rr_pos_) --rr_pos_;
  if (rr_pos_ >= rr_ring_.size()) rr_pos_ = 0;
}

void ExecutorPool::Release(uint64_t submitter) {
  std::lock_guard<std::mutex> lock(mu_);
  --running_;
  auto run_it = running_by_submitter_.find(submitter);
  GYO_CHECK_MSG(run_it != running_by_submitter_.end(),
                "released query's submitter has no running count");
  if (--run_it->second == 0) running_by_submitter_.erase(run_it);
  // Serve the next waiter round-robin across submitters. Invariant: the
  // ring holds exactly the submitters with a non-empty queue (Admit pushes
  // on the empty -> non-empty transition, the erase below drops a submitter
  // the moment its queue drains), so a drain-and-requeue cycle cannot
  // accumulate duplicate ring entries and the ring/map stay bounded by the
  // number of distinct waiting submitters. The notify happens under mu_:
  // the Waiter lives on the admitted caller's stack and dies as soon as
  // that caller observes admitted == true, so signaling after unlocking
  // could dereference a dead waiter.
  if (rr_ring_.empty()) return;
  if (rr_pos_ >= rr_ring_.size()) rr_pos_ = 0;
  const uint64_t served = rr_ring_[rr_pos_];
  std::deque<Waiter*>& q = waiting_[served];
  Waiter* next = q.front();
  q.pop_front();
  if (q.empty()) {
    waiting_.erase(served);
    // The erase slides the next submitter into rr_pos_, so no advance.
    rr_ring_.erase(rr_ring_.begin() + static_cast<std::ptrdiff_t>(rr_pos_));
  } else {
    ++rr_pos_;  // the next release serves the next submitter
  }
  --num_waiting_;
  ++running_;
  // The slot changes hands under mu_, so the per-submitter running tallies
  // stay consistent with running_ at every observable instant.
  ++running_by_submitter_[served];
  next->admitted = true;
  next->cv.notify_one();
}

ExecutorPool::PoolStatus ExecutorPool::Status() const {
  PoolStatus status;
  status.threads = scheduler_.threads();
  status.max_concurrent_queries = max_concurrent_;
  std::lock_guard<std::mutex> lock(mu_);
  status.running = running_;
  status.waiting = num_waiting_;
  std::map<uint64_t, PoolStatus::Submitter> by_id;
  for (const auto& [id, count] : running_by_submitter_) {
    PoolStatus::Submitter& s = by_id[id];
    s.id = id;
    s.running = count;
  }
  for (const auto& [id, queue] : waiting_) {
    PoolStatus::Submitter& s = by_id[id];
    s.id = id;
    s.waiting = static_cast<int>(queue.size());
  }
  status.submitters.reserve(by_id.size());
  for (auto& [id, s] : by_id) status.submitters.push_back(s);
  return status;
}

QueryStats ExecutorPool::Admission::Finish() {
  if (!finished_) {
    finished_ = true;
    run_time_seconds_ =
        SecondsSince(admitted_at_, std::chrono::steady_clock::now());
  }
  QueryStats stats;
  stats.queue_wait_seconds = queue_wait_seconds_;
  stats.run_time_seconds = run_time_seconds_;
  stats.tasks = tasks_.load(std::memory_order_relaxed);
  stats.morsels = morsels_.load(std::memory_order_relaxed);
  stats.tasks_stolen =
      steal_stats_->tasks_stolen.load(std::memory_order_relaxed);
  stats.affinity_hits =
      steal_stats_->affinity_hits.load(std::memory_order_relaxed);
  stats.affinity_misses =
      steal_stats_->affinity_misses.load(std::memory_order_relaxed);
  stats.queue_depth_at_admit = queue_depth_at_admit_;
  return stats;
}

ExecutorPool::Admission::~Admission() {
  Finish();
  pool_->Release(submitter_);
}

}  // namespace exec
}  // namespace gyo
