#ifndef GYO_EXEC_EXEC_CONTEXT_H_
#define GYO_EXEC_EXEC_CONTEXT_H_

#include <cstdint>

namespace gyo {
namespace exec {

/// Runtime knobs for executing programs (and the reducer) in parallel.
/// Default-constructed context is the serial engine: one thread, inline
/// execution — Program::Execute runs with exactly these settings.
struct ExecContext {
  /// Worker threads (>= 1). 1 = serial inline execution, no pool spawned.
  int threads = 1;

  /// Probe rows per morsel in the parallel operator kernels. Operators whose
  /// probe side fits in one morsel run serially inside their statement task
  /// (statement-level parallelism still applies).
  int64_t morsel_rows = 2048;

  /// When true (default), parallel operators merge their per-morsel outputs
  /// in morsel order, making every produced relation bit-identical — same
  /// physical row order, same canonical flag — to a serial run. When false,
  /// morsel outputs merge in completion order: same set of rows, unspecified
  /// physical order (and Semijoin no longer propagates canonical form).
  bool deterministic = true;
};

}  // namespace exec
}  // namespace gyo

#endif  // GYO_EXEC_EXEC_CONTEXT_H_
