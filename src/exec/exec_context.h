#ifndef GYO_EXEC_EXEC_CONTEXT_H_
#define GYO_EXEC_EXEC_CONTEXT_H_

#include <cstdint>
#include <vector>

namespace gyo {
namespace exec {

class ExecutorPool;

/// Per-query execution metrics reported by the admission-controlled runtime
/// (see exec/executor_pool.h). All durations are seconds.
struct QueryStats {
  /// Time spent queued in the admission controller before the query was
  /// allowed to run (0 when a slot was free, and always 0 for serial
  /// threads == 1 execution, which bypasses admission).
  double queue_wait_seconds = 0.0;

  /// Wall time from admission to completion of the last statement.
  double run_time_seconds = 0.0;

  /// Statement tasks executed for this query (one per program statement).
  int64_t tasks = 0;

  /// Data morsels dispatched by this query's operator kernels (hash-build
  /// and probe passes). 0 when every operator ran serially — inputs smaller
  /// than one morsel, or a single-thread pool.
  int64_t morsels = 0;

  /// Peak bytes of live relation-state arenas (base copies + statement
  /// results) during this query's execution. With state retirement (see
  /// ExecContext::retire_consumed) states are freed as their last reader
  /// finishes, so this tracks the live frontier rather than the total
  /// footprint. Note: at threads != 1 the exact peak depends on task
  /// completion order, so it is reproducible only up to scheduling.
  int64_t peak_state_bytes = 0;

  /// Relation states freed by retirement (0 unless retire_consumed).
  int64_t retired_states = 0;

  /// Probe rows whose key hash a per-partition Bloom filter rejected in the
  /// parallel partitioned builds, skipping that partition's bucket-chain
  /// walk entirely (sideways information passing; 0 on serial runs).
  int64_t bloom_partition_skips = 0;

  /// Probe rows pruned by any Bloom filter — the serial single-filter
  /// rejections plus the partitioned ones above — before a bucket chain was
  /// walked. Bloom filters have no false negatives, so pruning never changes
  /// results; this counts saved work only.
  int64_t probe_rows_pruned = 0;

  /// Scheduler jobs of this query executed by a thread other than the one
  /// whose deque held them (work stealing under imbalance; 0 = perfect
  /// locality and always 0 on serial runs). Scheduling-dependent, so
  /// reproducible only up to placement — never pinned as a correctness
  /// counter.
  int64_t tasks_stolen = 0;

  /// Affinity-tagged probe/dedupe morsels that ran on the worker that built
  /// their partition (the cache-resident case). hits + misses equals the
  /// number of affinity-tagged morsels dispatched; the split between them is
  /// scheduling-dependent.
  int64_t affinity_hits = 0;

  /// Affinity-tagged morsels that ran on some other thread (stolen, or
  /// claimed by the query's own caller thread).
  int64_t affinity_misses = 0;

  /// Queries already waiting in the admission controller when this query
  /// arrived (0 = admitted straight onto a free slot). The queue-pressure
  /// observable behind queue_wait_seconds; always 0 for serial execution.
  int64_t queue_depth_at_admit = 0;

  /// 1 when this query's program/plan came out of the plan cache
  /// (cache::PlanCache) instead of being rebuilt from the schema; 0 when it
  /// was built fresh (a miss, or no cache in the path).
  int64_t plan_cache_hits = 0;

  /// 1 when this query's reduced states (or its full result, on the serve
  /// path) came out of a state/result cache — either an exact version match
  /// or a delta refresh; 0 otherwise.
  int64_t state_cache_hits = 0;

  /// Semijoin-fixpoint rounds actually executed. Under the delta-round
  /// schedule a round only processes relations with a neighbor that shrank
  /// (or grew) last round, so incremental maintenance after a small append
  /// runs far fewer — and far narrower — rounds than a batch re-reduce.
  /// Deterministic for a given start state (pinned by bench_incremental).
  int64_t delta_rounds = 0;

  /// Input rows scanned by executed fixpoint semijoins (lhs + rhs rows of
  /// every statement that actually ran) plus the rows hashed or probed by
  /// the incremental grow phase. The work measure behind the delta-vs-batch
  /// comparison: skipped clean-pair semijoins contribute nothing.
  /// Deterministic for a given start state.
  int64_t rows_rescanned = 0;

  /// Probe rows pruned by a sideways-information-passing filter: a Bloom
  /// filter over a LATER chain statement's build side, published through
  /// the per-query SIP registry (see physical_plan.cc) and consulted before
  /// the consuming Semijoin's own hash work. No false negatives, so the
  /// final states are untouched; deterministic at every thread count (the
  /// filter builds are ordered before their consumers by dependency edges).
  int64_t sip_rows_pruned = 0;

  /// Probe rows skipped by zone-map disjointness: a Semijoin whose key
  /// ranges in the two inputs provably cannot overlap skips the whole probe
  /// (the result is empty either way). Counts the probe rows never hashed.
  /// Deterministic — a pure function of the input states.
  int64_t zone_map_skips = 0;
};

/// Runtime knobs for executing programs (and the reducer) in parallel.
/// Default-constructed context is the serial engine: one thread, inline
/// execution — Program::Execute runs with exactly these settings.
struct ExecContext {
  /// Worker threads (>= 1). 1 = serial inline execution on the calling
  /// thread: no pool, no admission control. Any other value routes the query
  /// through an ExecutorPool (see `pool`), whose fixed pool width — not this
  /// field — determines the actual parallelism.
  int threads = 1;

  /// Probe rows per morsel in the parallel operator kernels. 0 (the default)
  /// auto-tunes per operator from the probe relation's arity so one morsel's
  /// values stay ~L2-resident (see AutoMorselRows in rel/ops.h). Operators
  /// whose probe side fits in one morsel run serially inside their statement
  /// task (statement-level parallelism still applies).
  int64_t morsel_rows = 0;

  /// When true (default), parallel operators merge their per-morsel outputs
  /// in morsel order, making every produced relation bit-identical — same
  /// physical row order, same canonical flag — to a serial run. This holds
  /// per query even when many queries share one pool. When false, morsel
  /// outputs merge in completion order: same set of rows, unspecified
  /// physical order (and Semijoin no longer propagates canonical form).
  bool deterministic = true;

  /// Pool to run on when threads != 1. nullptr = the lazily-initialized
  /// process-wide ExecutorPool::Global() (sized by GYO_EXEC_THREADS or
  /// hardware_concurrency; see executor_pool.h).
  ExecutorPool* pool = nullptr;

  /// Admission fairness class: the controller round-robins free slots across
  /// submitter ids, so one hot submitter cannot starve the others. 0 (the
  /// default) lumps every caller into one FIFO class.
  uint64_t submitter = 0;

  /// State retirement: when true, every relation state (base copy or
  /// statement result) that is read by at least one statement is freed —
  /// replaced by an empty relation over its schema — the moment its last
  /// reading statement finishes (the reader counts come from PhysicalPlan's
  /// compile-time dataflow analysis). Sink states (read by no statement)
  /// always survive. Freed slots come back as empty relations in the
  /// returned state vector, so only enable this when the caller consumes
  /// sinks and/or retained slots — the compiled full reducer does exactly
  /// that, which brings its peak memory back near the serial reducer's
  /// instead of holding all 2(n−1) intermediate semijoin states alive.
  bool retire_consumed = false;

  /// Relation ids (program numbering: base 0..num_base-1, then statement
  /// results) exempt from retirement — states the caller reads afterwards
  /// even though some statement also consumes them. Ignored unless
  /// retire_consumed. The full reducer retains each node's final state
  /// (e.g. the root's, which the downward pass consumes).
  const std::vector<int>* retain_states = nullptr;

  /// Sideways information passing: when true (default), the physical plan's
  /// dataflow analysis publishes each eligible chain statement's build-side
  /// Bloom filter into a per-query SIP registry and upstream Semijoins
  /// pre-filter their probes against it (see physical_plan.cc). Results are
  /// identical either way (the filters have no false negatives); the flag
  /// exists for A/B testing and for the fixpoint reducer, which disables
  /// SIP to keep its work-accounting counters (rows_rescanned,
  /// effective steps) comparable across rounds.
  bool enable_sip = true;

  /// When non-null, receives this query's QueryStats on completion.
  QueryStats* query_stats = nullptr;
};

}  // namespace exec
}  // namespace gyo

#endif  // GYO_EXEC_EXEC_CONTEXT_H_
