#ifndef GYO_EXEC_EXECUTOR_POOL_H_
#define GYO_EXEC_EXECUTOR_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "exec/exec_context.h"
#include "exec/task_scheduler.h"

namespace gyo {
namespace exec {

/// A process-wide shared TaskScheduler fronted by an admission controller —
/// the layer that turns the one-query exec runtime into a multi-tenant
/// engine. Every parallel query (exec::Execute with threads != 1) draws from
/// one fixed pool of workers instead of spinning up and tearing down its own
/// scheduler, so N concurrent queries on an M-core machine run on M threads
/// total rather than N*M.
///
/// Admission control caps the number of *concurrently running* queries at
/// max_concurrent_queries(); excess queries wait in per-submitter FIFO
/// queues served round-robin across submitters, so one hot caller cannot
/// starve the rest. A query holds its slot only while running — waiting
/// queries hold nothing, so admission cannot deadlock.
///
/// The scheduler runs every admitted query's task graph concurrently
/// (graph-scoped dependency counters; see TaskScheduler::RunGraph), with
/// plan-level priorities so critical-path statements dispatch first. Each
/// admitted query's caller thread participates in execution, so up to
/// max_concurrent_queries() caller threads add themselves to the pool's
/// threads() workers while their queries are in flight.
class ExecutorPool {
 public:
  struct Options {
    /// Worker threads. 0 (default) resolves via ResolveThreads: the
    /// GYO_EXEC_THREADS environment variable if set, else
    /// hardware_concurrency.
    int threads = 0;

    /// Admission cap on concurrently running queries. 0 (default) = the
    /// resolved thread count (one average thread per admitted query).
    int max_concurrent_queries = 0;

    /// Passed through to TaskScheduler::Options::worker0_start_delay_ms —
    /// the steal-storm test hook (worker 0 parks before its first pop so
    /// other threads must steal). 0 = off; tests only.
    int worker0_start_delay_ms = 0;

    /// Default admission deadline for TryAdmit: a query still waiting for a
    /// slot after this many seconds is shed with kDeadlineExceeded instead
    /// of queueing forever. <= 0 (default) = wait without limit. A per-call
    /// deadline overrides this. The blocking Admit() never sheds.
    double max_queue_wait_seconds = 0.0;

    /// Per-submitter backlog bound for TryAdmit: a query that would have to
    /// wait while its fairness class already has this many queued is shed
    /// with kBacklogFull — the abusive-tenant backpressure valve (an
    /// unbounded tenant would only inflate its own FIFO, but every entry
    /// pins a caller thread). <= 0 (default) = unbounded. The blocking
    /// Admit() ignores the bound (cooperative in-process callers).
    int max_waiting_per_submitter = 0;
  };

  ExecutorPool() : ExecutorPool(Options()) {}
  explicit ExecutorPool(const Options& options);

  /// Joins the workers. Every Admission must have been destroyed first.
  ~ExecutorPool();

  ExecutorPool(const ExecutorPool&) = delete;
  ExecutorPool& operator=(const ExecutorPool&) = delete;

  /// The lazily-initialized process-wide pool, created on first use with
  /// the options from ConfigureGlobal (or defaults). Never destroyed —
  /// intentionally leaked so queries on detached threads cannot race static
  /// destruction.
  static ExecutorPool& Global();

  /// Sets the options Global() will be built with. Must be called before
  /// the first Global() call; dies afterwards (the pool cannot be resized
  /// once workers exist). CLIs call this from flag parsing
  /// (--threads / --max-concurrent-queries).
  static void ConfigureGlobal(const Options& options);

  /// Thread-count resolution: `requested` if >= 1, else GYO_EXEC_THREADS
  /// (when set to a positive integer), else hardware_concurrency, else 1.
  static int ResolveThreads(int requested);

  int threads() const { return scheduler_.threads(); }
  int max_concurrent_queries() const { return max_concurrent_; }
  TaskScheduler& scheduler() { return scheduler_; }

  /// Queries currently holding an admission slot / waiting for one.
  int running_queries() const;
  int waiting_queries() const;

  /// Queue depth of one fairness class: queries from `submitter` currently
  /// waiting for a slot. This is the observable a backpressure policy needs
  /// — shed or reject a tenant whose backlog exceeds a bound instead of
  /// queueing without limit (the CLIs surface it in their pool stats).
  int waiting_queries(uint64_t submitter) const;

  /// An admission slot, held for the lifetime of one query (RAII: the
  /// destructor releases the slot and wakes the next waiter). Also the
  /// query's stats accumulator: the exec runtime adds task/morsel counts
  /// while running and snapshots the result via Finish().
  class Admission {
   public:
    ~Admission();
    Admission(const Admission&) = delete;
    Admission& operator=(const Admission&) = delete;

    TaskScheduler& scheduler() const { return pool_->scheduler_; }

    void AddTasks(int64_t n) {
      tasks_.fetch_add(n, std::memory_order_relaxed);
    }
    /// Incremented by the operator kernels via OpExecOpts::morsel_counter.
    std::atomic<int64_t>& morsel_counter() { return morsels_; }

    /// This query's scheduling counters (steals, affinity hits/misses).
    /// The exec runtime hands this to RunGraph and the operator kernels via
    /// OpExecOpts::steal_stats; Finish() snapshots it into QueryStats.
    /// Shared ownership: queued jobs co-own the counters, so a job drained
    /// after this Admission dies (a no-op morsel left in a parked worker's
    /// deque) never writes through a dangling pointer.
    const std::shared_ptr<StealStats>& steal_stats() const {
      return steal_stats_;
    }

    /// Admission-queue wait of this query — the input to the scheduler's
    /// cross-query priority aging (TaskScheduler::AgedPriority).
    double queue_wait_seconds() const { return queue_wait_seconds_; }

    /// Records the query as finished (run_time stops here; idempotent) and
    /// returns the stats snapshot.
    QueryStats Finish();

   private:
    friend class ExecutorPool;
    Admission(ExecutorPool* pool, uint64_t submitter,
              double queue_wait_seconds,
              std::chrono::steady_clock::time_point admitted_at,
              int64_t queue_depth_at_admit)
        : pool_(pool),
          submitter_(submitter),
          queue_wait_seconds_(queue_wait_seconds),
          admitted_at_(admitted_at),
          queue_depth_at_admit_(queue_depth_at_admit) {}

    ExecutorPool* pool_;
    uint64_t submitter_;
    double queue_wait_seconds_;
    std::chrono::steady_clock::time_point admitted_at_;
    int64_t queue_depth_at_admit_;
    std::atomic<int64_t> tasks_{0};
    std::atomic<int64_t> morsels_{0};
    std::shared_ptr<StealStats> steal_stats_ = std::make_shared<StealStats>();
    bool finished_ = false;
    double run_time_seconds_ = 0.0;
  };

  /// Blocks until the admission controller grants a slot (immediately when
  /// running_queries() < max_concurrent_queries() and nothing is queued).
  /// `submitter` is the fairness class (see ExecContext::submitter).
  Admission Admit(uint64_t submitter = 0);

  /// Why TryAdmit declined a query. Shedding happens at admit time only —
  /// an admitted query always runs to completion.
  enum class AdmitStatus {
    kAdmitted,
    /// The query's queue wait exceeded its admission deadline; it was
    /// removed from its fairness queue without ever holding a slot.
    kDeadlineExceeded,
    /// The submitter's fairness queue was already at
    /// max_waiting_per_submitter when the query arrived and every slot was
    /// busy; rejected immediately (zero wait).
    kBacklogFull,
  };

  /// Typed admission outcome. `admission` is non-null iff status is
  /// kAdmitted; `queue_wait_seconds` reports the wait actually spent queued
  /// (the full deadline on kDeadlineExceeded, 0 on kBacklogFull).
  struct AdmitResult {
    AdmitStatus status = AdmitStatus::kAdmitted;
    std::unique_ptr<Admission> admission;
    double queue_wait_seconds = 0.0;
    /// Queries of this submitter waiting when the decision was made.
    int waiting_for_submitter = 0;
  };

  /// Admission with shedding: the entry point network front ends use
  /// (gyo_serve) so an overloaded pool produces typed rejections instead of
  /// unbounded queues. `max_queue_wait_seconds` < 0 uses the pool-level
  /// Options default; 0 disables the deadline; > 0 bounds this call's queue
  /// wait. The per-submitter backlog bound always comes from the pool
  /// Options. Round-robin fairness is unchanged: a deadline removes the
  /// waiter from its FIFO without perturbing other submitters.
  AdmitResult TryAdmit(uint64_t submitter = 0,
                       double max_queue_wait_seconds = -1.0);

  /// A point-in-time snapshot of the pool's shape and admission state — the
  /// one struct behind the CLI pool-status lines (examples/exec_flags.h)
  /// and the daemon's STATUS responses (serve/server.h), so the two
  /// surfaces cannot drift.
  struct PoolStatus {
    int threads = 0;
    int max_concurrent_queries = 0;
    int running = 0;
    int waiting = 0;
    struct Submitter {
      uint64_t id = 0;
      int running = 0;
      int waiting = 0;
    };
    /// Fairness classes with at least one running or waiting query, in
    /// increasing id order.
    std::vector<Submitter> submitters;
  };
  PoolStatus Status() const;

 private:
  struct Waiter {
    std::condition_variable cv;
    bool admitted = false;
  };

  void Release(uint64_t submitter);
  // Removes `w` from `submitter`'s FIFO (called with mu_ held, on deadline
  // expiry). Keeps the ring/map invariant: a submitter leaves the ring the
  // moment its queue drains.
  void RemoveWaiter(uint64_t submitter, Waiter* w);

  TaskScheduler scheduler_;
  const int max_concurrent_;
  const double max_queue_wait_seconds_;
  const int max_waiting_per_submitter_;

  mutable std::mutex mu_;
  int running_ = 0;
  int num_waiting_ = 0;
  // Per-submitter FIFO queues plus the round-robin ring of submitters that
  // currently have waiters; rr_pos_ points at the next submitter to serve.
  std::unordered_map<uint64_t, std::deque<Waiter*>> waiting_;
  std::vector<uint64_t> rr_ring_;
  size_t rr_pos_ = 0;
  // Running queries per fairness class (entries erased at zero), feeding
  // PoolStatus::Submitter::running.
  std::unordered_map<uint64_t, int> running_by_submitter_;
};

}  // namespace exec
}  // namespace gyo

#endif  // GYO_EXEC_EXECUTOR_POOL_H_
