#ifndef GYO_EXEC_PHYSICAL_PLAN_H_
#define GYO_EXEC_PHYSICAL_PLAN_H_

#include <vector>

#include "exec/exec_context.h"
#include "exec/executor_pool.h"
#include "rel/program.h"
#include "rel/relation.h"

namespace gyo {
namespace exec {

/// Compiles a Program into a dependency-counted task DAG by dataflow
/// analysis of statement inputs: statement k depends on statement j exactly
/// when k reads the relation j created (base relations impose no edges).
/// Statements on disjoint subtrees of a qual-tree plan — the sibling
/// semijoins of a full reducer's upward/downward passes, independent
/// Yannakakis subtree joins — therefore become concurrent tasks, while the
/// chain through any one relation stays ordered. Execution maps each
/// statement to one TaskScheduler task whose operator kernel additionally
/// splits large inputs into morsels on the same pool (see rel/ops.h).
class PhysicalPlan {
 public:
  /// Runs the dataflow analysis. The program is copied into the plan.
  static PhysicalPlan Compile(const Program& program);

  const Program& program() const { return program_; }

  /// Dependencies()[k] lists the statement indices whose results statement k
  /// reads, in input order (lhs before rhs), base inputs omitted.
  const std::vector<std::vector<int>>& Dependencies() const { return deps_; }

  /// ReaderCounts()[id] is the number of statements reading relation `id`
  /// (program numbering: base relations first, then statement results; a
  /// statement reading the same relation twice counts once). This is the
  /// compile-time last-reader analysis behind state retirement
  /// (ExecContext::retire_consumed): at run time each finishing statement
  /// decrements its inputs' remaining-reader counters, and the statement
  /// that drops a counter to zero — the state's final consumer — frees it.
  /// States with count 0 are sinks and are never retired.
  const std::vector<int>& ReaderCounts() const { return reader_counts_; }

  /// Longest statement dependency chain — the statement-level lower bound on
  /// parallel makespan. 0 for an empty program.
  int CriticalPathLength() const;

  /// Statements with no statement dependencies (the initially-ready width).
  int NumSourceStatements() const;

  /// Executes the plan over `base`, returning all relation states (base
  /// states followed by one per statement), exactly like Program::Execute.
  /// Validates every statement eagerly (see ValidateAndDeriveSchemas) before
  /// any operator runs. With ctx.threads == 1 this runs inline and serially;
  /// with any other value the query is admitted into the shared
  /// ExecutorPool (ctx.pool, defaulting to the process-wide one): admission
  /// caps concurrent queries, the pool's workers run independent statements
  /// concurrently — critical-path statements first — and large operators
  /// additionally parallelize over morsels. In deterministic mode
  /// (ctx.deterministic, the default) the returned states are bit-identical
  /// to the serial run's — same row order, same canonical flags — and so are
  /// the reported Stats, regardless of pool size or concurrent queries;
  /// otherwise row order within each state is unspecified (Stats are
  /// unchanged either way: operator outputs are duplicate-free, so the
  /// counters are set cardinalities). ctx.query_stats, when non-null,
  /// receives the per-query admission/runtime metrics.
  std::vector<Relation> Execute(const std::vector<Relation>& base,
                                const ExecContext& ctx,
                                Program::Stats* stats = nullptr) const;

  /// Moving form: consumes `base` instead of deep-copying it into the state
  /// vector. The returned states still lead with the base slots — they are
  /// the caller's own relations moved through, not copies — so callers that
  /// re-execute round programs (the semijoin fixpoint) or feed one
  /// execution's output into the next can round-trip states without paying
  /// O(data) per round.
  std::vector<Relation> Execute(std::vector<Relation>&& base,
                                const ExecContext& ctx,
                                Program::Stats* stats = nullptr) const;

  /// Admitted execution reusing this plan's memoized analysis — the
  /// plan-cache serve path, where the caller already holds a TryAdmit slot
  /// and the dependency analysis came out of the cache. Semantics match the
  /// free ExecuteAdmitted exactly.
  std::vector<Relation> ExecuteAdmitted(const std::vector<Relation>& base,
                                        const ExecContext& ctx,
                                        ExecutorPool::Admission& admission,
                                        Program::Stats* stats = nullptr) const;

  /// Rebuilds a plan from a previously computed analysis — the plan-cache
  /// hit path, where `deps`/`reader_counts` were memoized alongside the
  /// program (statement indices are attribute-rename-invariant, so a cached
  /// analysis is valid for any isomorphic program). Dies if the shapes do
  /// not match the program's statement/relation counts.
  static PhysicalPlan FromAnalysis(Program program,
                                   std::vector<std::vector<int>> deps,
                                   std::vector<int> reader_counts);

 private:
  PhysicalPlan(Program program, std::vector<std::vector<int>> deps,
               std::vector<int> reader_counts)
      : program_(std::move(program)),
        deps_(std::move(deps)),
        reader_counts_(std::move(reader_counts)) {}

  Program program_;
  std::vector<std::vector<int>> deps_;
  std::vector<int> reader_counts_;
};

/// Compile-and-execute convenience: what Program::Execute does, with an
/// explicit context. Borrows `program` (no copy — only the dependency
/// analysis is redone per call; use a PhysicalPlan to amortize even that
/// across repeated executions). stats, when non-null, receives the same
/// counters as Program::ExecuteWithStats.
std::vector<Relation> Execute(const Program& program,
                              const std::vector<Relation>& base,
                              const ExecContext& ctx,
                              Program::Stats* stats = nullptr);

/// Moving form of the free Execute: consumes `base` (see
/// PhysicalPlan::Execute's moving overload). The per-call cost is the
/// dependency analysis only — no relation is copied.
std::vector<Relation> Execute(const Program& program,
                              std::vector<Relation>&& base,
                              const ExecContext& ctx,
                              Program::Stats* stats = nullptr);

/// Retain-set planner pass: the minimal ExecContext::retain_states list for
/// running `program` with retirement while keeping every slot in `requested`
/// (program numbering) readable afterwards. Slots no statement reads are
/// sinks — retirement never touches them — so only the requested slots with
/// a positive reader count need an exemption. The reducer derives its
/// retain list from its final_ids this way; Run() derives an empty one from
/// its single sink.
std::vector<int> RetainForSinks(const Program& program,
                                const std::vector<int>& requested);

/// Parallel Program::Run: executes and returns just the final relation. The
/// program must have at least one statement. Runs with state retirement
/// (ExecContext::retire_consumed) unconditionally: the caller only receives
/// the last statement's result — a sink, which retirement never frees — so
/// every consumed base copy and intermediate state is released as its last
/// reader finishes, whatever the caller's ctx says.
Relation Run(const Program& program, const std::vector<Relation>& base,
             const ExecContext& ctx);

/// Executes under an admission slot the caller already holds — the entry
/// point for front ends that admit with shedding (ExecutorPool::TryAdmit)
/// before committing any execution resources: gyo_serve sheds a query whose
/// queue wait exceeded its deadline with a typed error frame, and only an
/// admitted query reaches this function. Always runs on `admission`'s pool
/// (ctx.threads is ignored except for validation; ctx.pool must be null or
/// that same pool). Deterministic-mode output is bit-identical to serial
/// execution regardless of pool width — the property the serve end-to-end
/// tests pin with IdenticalTo.
std::vector<Relation> ExecuteAdmitted(const Program& program,
                                      const std::vector<Relation>& base,
                                      const ExecContext& ctx,
                                      ExecutorPool::Admission& admission,
                                      Program::Stats* stats = nullptr);

}  // namespace exec
}  // namespace gyo

#endif  // GYO_EXEC_PHYSICAL_PLAN_H_
