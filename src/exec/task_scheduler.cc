#include "exec/task_scheduler.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "util/check.h"

namespace gyo {
namespace exec {

namespace {

// ParallelFor morsels dispatch above every graph-task priority: finishing an
// operator already in flight shortens the makespan more than starting a new
// statement.
constexpr int kMorselPriority = std::numeric_limits<int>::max();

}  // namespace

int TaskGraph::AddTask(TaskFn fn, int priority) {
  tasks_.push_back(Task{std::move(fn), {}, 0, priority});
  deps_.emplace_back();
  return static_cast<int>(tasks_.size()) - 1;
}

void TaskGraph::AddDependency(int task, int dep) {
  GYO_CHECK(task >= 0 && task < NumTasks());
  GYO_CHECK(dep >= 0 && dep < NumTasks());
  GYO_CHECK_MSG(dep != task, "task %d cannot depend on itself", task);
  std::vector<int>& d = deps_[static_cast<size_t>(task)];
  if (std::find(d.begin(), d.end(), dep) != d.end()) return;
  d.push_back(dep);
  tasks_[static_cast<size_t>(dep)].successors.push_back(task);
  ++tasks_[static_cast<size_t>(task)].num_deps;
}

int TaskGraph::CriticalPathLength() const {
  // Longest chain via Kahn's algorithm (also proves acyclicity: a cycle
  // leaves tasks unprocessed and the depth of those is never counted, which
  // RunGraph separately rejects).
  const int n = NumTasks();
  std::vector<int> pending(static_cast<size_t>(n));
  std::vector<int> depth(static_cast<size_t>(n), 1);
  std::vector<int> ready;
  for (int i = 0; i < n; ++i) {
    pending[static_cast<size_t>(i)] = tasks_[static_cast<size_t>(i)].num_deps;
    if (pending[static_cast<size_t>(i)] == 0) ready.push_back(i);
  }
  int best = 0;
  while (!ready.empty()) {
    int v = ready.back();
    ready.pop_back();
    best = std::max(best, depth[static_cast<size_t>(v)]);
    for (int succ : tasks_[static_cast<size_t>(v)].successors) {
      depth[static_cast<size_t>(succ)] =
          std::max(depth[static_cast<size_t>(succ)],
                   depth[static_cast<size_t>(v)] + 1);
      if (--pending[static_cast<size_t>(succ)] == 0) ready.push_back(succ);
    }
  }
  return best;
}

// Shared state of one RunGraph invocation. Jobs capture it by shared_ptr so
// a worker finishing the final task can still use the mutex/cv safely while
// the caller's RunGraph frame unwinds. Every concurrent RunGraph invocation
// owns one of these, which is what keeps independent graphs independent:
// dependency counters and the completion signal are graph-scoped, only the
// job queue is shared.
struct TaskScheduler::GraphRunState {
  TaskGraph* graph = nullptr;
  // Cached graph->NumTasks(): the final done increment releases the caller
  // to destroy the graph, so nothing may dereference `graph` after it.
  int num_tasks = 0;
  std::vector<std::atomic<int>> pending;
  std::atomic<int> done{0};
  std::mutex m;
  std::condition_variable cv;
  explicit GraphRunState(size_t n) : pending(n) {}
};

TaskScheduler::TaskScheduler(int threads) : threads_(threads) {
  GYO_CHECK_MSG(threads >= 1, "scheduler needs at least one thread, got %d",
                threads);
  workers_.reserve(static_cast<size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void TaskScheduler::Enqueue(int priority, Job job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_[priority].push_back(std::move(job));
    ++queued_jobs_;
  }
  queue_cv_.notify_one();
}

// The one queue-discipline implementation: front of the highest-priority
// bucket, erasing drained buckets so begin() stays the top priority.
TaskScheduler::Job TaskScheduler::PopLockedJob() {
  std::deque<Job>& bucket = queue_.begin()->second;
  Job job = std::move(bucket.front());
  bucket.pop_front();
  if (bucket.empty()) queue_.erase(queue_.begin());
  --queued_jobs_;
  return job;
}

bool TaskScheduler::PopJob(Job* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queued_jobs_ == 0) return false;
  *out = PopLockedJob();
  return true;
}

void TaskScheduler::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || queued_jobs_ > 0; });
      if (queued_jobs_ == 0) return;  // stopping_ and fully drained
      job = PopLockedJob();
    }
    job();
  }
}

void TaskScheduler::EnqueueGraphTask(
    const std::shared_ptr<GraphRunState>& state, int id) {
  const int priority =
      state->graph->tasks_[static_cast<size_t>(id)].priority;
  Enqueue(priority, [this, state, id] { RunGraphTask(state, id); });
}

// Executes task `id`: run its fn, release successors whose dependency count
// hits zero, and notify the RunGraph caller after the final task. The job
// closures capture only `this` and the shared state, never RunGraph's stack.
void TaskScheduler::RunGraphTask(const std::shared_ptr<GraphRunState>& state,
                                 int id) {
  TaskGraph::Task& t = state->graph->tasks_[static_cast<size_t>(id)];
  t.fn();
  for (int succ : t.successors) {
    if (state->pending[static_cast<size_t>(succ)].fetch_sub(
            1, std::memory_order_acq_rel) == 1) {
      EnqueueGraphTask(state, succ);
    }
  }
  int finished = state->done.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (finished == state->num_tasks) {
    std::lock_guard<std::mutex> lock(state->m);
    state->cv.notify_all();
  }
}

void TaskScheduler::RunGraph(TaskGraph& graph) {
  const int n = graph.NumTasks();
  if (n == 0) return;

  // Reject cyclic graphs up front (a cycle would hang the drain loop).
  {
    std::vector<int> pending(static_cast<size_t>(n));
    std::vector<int> ready;
    int seen = 0;
    for (int i = 0; i < n; ++i) {
      pending[static_cast<size_t>(i)] =
          graph.tasks_[static_cast<size_t>(i)].num_deps;
      if (pending[static_cast<size_t>(i)] == 0) ready.push_back(i);
    }
    while (!ready.empty()) {
      int v = ready.back();
      ready.pop_back();
      ++seen;
      for (int succ : graph.tasks_[static_cast<size_t>(v)].successors) {
        if (--pending[static_cast<size_t>(succ)] == 0) ready.push_back(succ);
      }
    }
    GYO_CHECK_MSG(seen == n, "task graph has a dependency cycle (%d of %d "
                  "tasks reachable)", seen, n);
  }

  auto state = std::make_shared<GraphRunState>(static_cast<size_t>(n));
  state->graph = &graph;
  state->num_tasks = n;
  for (int i = 0; i < n; ++i) {
    state->pending[static_cast<size_t>(i)].store(
        graph.tasks_[static_cast<size_t>(i)].num_deps,
        std::memory_order_relaxed);
  }

  // Seed the initially-ready tasks in id order (deterministic execution
  // order for the threads == 1 inline drain: priority bucket first, then
  // seed order). This must test the static num_deps, not the live pending
  // counters: a worker may already be cascading through earlier seeds, and a
  // task it just released would read as pending == 0 here and get enqueued
  // twice.
  for (int i = 0; i < n; ++i) {
    if (graph.tasks_[static_cast<size_t>(i)].num_deps == 0) {
      EnqueueGraphTask(state, i);
    }
  }

  // The caller participates: drain jobs (this graph's tasks, other graphs'
  // tasks, and any ParallelFor morsels) until every task of *this* graph has
  // finished; sleep briefly only when the queue is empty but tasks are still
  // in flight on other threads.
  for (;;) {
    if (state->done.load(std::memory_order_acquire) == n) break;
    Job job;
    if (PopJob(&job)) {
      job();
      continue;
    }
    std::unique_lock<std::mutex> lock(state->m);
    state->cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
      return state->done.load(std::memory_order_acquire) == n;
    });
  }
}

void TaskScheduler::ParallelFor(int64_t num_chunks,
                                const std::function<void(int64_t)>& body) {
  if (num_chunks <= 0) return;
  if (threads_ == 1 || num_chunks == 1) {
    for (int64_t c = 0; c < num_chunks; ++c) body(c);
    return;
  }

  // Morsel dispatch: an atomic claim counter shared by the caller and up to
  // threads() - 1 queued helper jobs. The caller claims chunks too, so the
  // loop completes even when every worker is busy elsewhere; a helper that
  // runs after all chunks are claimed exits immediately (it keeps the state
  // alive via shared_ptr, so late execution is harmless). `body` is only
  // dereferenced for a successfully claimed chunk, and the caller blocks
  // until all claimed chunks are done, so the pointer never dangles.
  struct PFState {
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> done{0};
    int64_t chunks = 0;
    const std::function<void(int64_t)>* body = nullptr;
    std::mutex m;
    std::condition_variable cv;
  };
  auto state = std::make_shared<PFState>();
  state->chunks = num_chunks;
  state->body = &body;

  auto claim_loop = [](PFState* s) {
    for (;;) {
      int64_t c = s->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= s->chunks) break;
      (*s->body)(c);
      s->done.fetch_add(1, std::memory_order_acq_rel);
    }
    // Wake the caller in case this participant ran the final chunk. Taking
    // the lock orders the wakeup after the caller's predicate check.
    std::lock_guard<std::mutex> lock(s->m);
    s->cv.notify_all();
  };

  const int64_t helpers =
      std::min<int64_t>(static_cast<int64_t>(threads_) - 1, num_chunks - 1);
  for (int64_t h = 0; h < helpers; ++h) {
    std::shared_ptr<PFState> st = state;
    Enqueue(kMorselPriority, [st, claim_loop] { claim_loop(st.get()); });
  }

  claim_loop(state.get());

  // Every chunk is claimed by now (the caller's loop exits only on counter
  // exhaustion); wait for helpers to finish their in-flight chunks.
  std::unique_lock<std::mutex> lock(state->m);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == num_chunks;
  });
}

}  // namespace exec
}  // namespace gyo
