#include "exec/task_scheduler.h"

#include <algorithm>
#include <chrono>

#include "util/check.h"

namespace gyo {
namespace exec {

namespace {

// ParallelFor morsels dispatch above every graph-task priority: finishing an
// operator already in flight shortens the makespan more than starting a new
// statement. Aged graph priorities stay below this (plan priorities are
// small and AgingBoost is capped), so the invariant survives aging.
constexpr int kMorselPriority = std::numeric_limits<int>::max();

// Which pool (if any) owns the current thread, and as which worker. One
// thread belongs to at most one scheduler for its lifetime, so a plain
// thread_local pair suffices; external threads keep the {nullptr, -1}
// default.
struct WorkerTls {
  const TaskScheduler* scheduler = nullptr;
  int index = -1;
};
thread_local WorkerTls tls_worker;

}  // namespace

int TaskGraph::AddTask(TaskFn fn, int priority) {
  tasks_.push_back(Task{std::move(fn), {}, 0, priority});
  deps_.emplace_back();
  return static_cast<int>(tasks_.size()) - 1;
}

void TaskGraph::AddDependency(int task, int dep) {
  GYO_CHECK(task >= 0 && task < NumTasks());
  GYO_CHECK(dep >= 0 && dep < NumTasks());
  GYO_CHECK_MSG(dep != task, "task %d cannot depend on itself", task);
  std::vector<int>& d = deps_[static_cast<size_t>(task)];
  if (std::find(d.begin(), d.end(), dep) != d.end()) return;
  d.push_back(dep);
  tasks_[static_cast<size_t>(dep)].successors.push_back(task);
  ++tasks_[static_cast<size_t>(task)].num_deps;
}

int TaskGraph::CriticalPathLength() const {
  // Longest chain via Kahn's algorithm (also proves acyclicity: a cycle
  // leaves tasks unprocessed and the depth of those is never counted, which
  // RunGraph separately rejects).
  const int n = NumTasks();
  std::vector<int> pending(static_cast<size_t>(n));
  std::vector<int> depth(static_cast<size_t>(n), 1);
  std::vector<int> ready;
  for (int i = 0; i < n; ++i) {
    pending[static_cast<size_t>(i)] = tasks_[static_cast<size_t>(i)].num_deps;
    if (pending[static_cast<size_t>(i)] == 0) ready.push_back(i);
  }
  int best = 0;
  while (!ready.empty()) {
    int v = ready.back();
    ready.pop_back();
    best = std::max(best, depth[static_cast<size_t>(v)]);
    for (int succ : tasks_[static_cast<size_t>(v)].successors) {
      depth[static_cast<size_t>(succ)] =
          std::max(depth[static_cast<size_t>(succ)],
                   depth[static_cast<size_t>(v)] + 1);
      if (--pending[static_cast<size_t>(succ)] == 0) ready.push_back(succ);
    }
  }
  return best;
}

// One worker's priority-bucketed deque. The owner pushes and pops at the
// back of the top bucket (LIFO — the hot-in-cache end); thieves pop at the
// front (FIFO — the oldest, coldest job). `top` caches the highest occupied
// bucket priority so thieves can rank victims without taking every lock;
// it is maintained under `mu`, read racily as a hint, and verified by the
// locked pop itself.
struct TaskScheduler::WorkerDeque {
  std::mutex mu;
  std::map<int, std::deque<Job>, std::greater<int>> buckets;
  std::atomic<int> top{kEmptyPriority};
};

// Shared state of one RunGraph invocation. Jobs capture it by shared_ptr so
// a worker finishing the final task can still use the mutex/cv safely while
// the caller's RunGraph frame unwinds. Every concurrent RunGraph invocation
// owns one of these, which is what keeps independent graphs independent:
// dependency counters, the completion signal, the steal tally, and the
// aging boost are all graph-scoped; only the job queues are shared.
struct TaskScheduler::GraphRunState {
  TaskGraph* graph = nullptr;
  // Cached graph->NumTasks(): the final done increment releases the caller
  // to destroy the graph, so nothing may dereference `graph` after it.
  int num_tasks = 0;
  std::shared_ptr<StealStats> stats;
  int age_boost = 0;  // AgingBoost of the owning query's admission wait
  std::vector<std::atomic<int>> pending;
  std::atomic<int> done{0};
  std::mutex m;
  std::condition_variable cv;
  explicit GraphRunState(size_t n) : pending(n) {}
};

TaskScheduler::TaskScheduler(int threads)
    : TaskScheduler(Options{threads, 0}) {}

TaskScheduler::TaskScheduler(const Options& options)
    : threads_(options.threads),
      worker0_start_delay_ms_(options.worker0_start_delay_ms) {
  GYO_CHECK_MSG(threads_ >= 1, "scheduler needs at least one thread, got %d",
                threads_);
  deques_.reserve(static_cast<size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i) {
    deques_.push_back(std::make_unique<WorkerDeque>());
  }
  workers_.reserve(static_cast<size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

int TaskScheduler::CurrentWorkerIndex() const {
  return tls_worker.scheduler == this ? tls_worker.index : -1;
}

void TaskScheduler::Enqueue(int priority, std::function<void()> fn,
                            int affinity,
                            const std::shared_ptr<StealStats>& stats) {
  Job job{std::move(fn), stats};
  // Count the job before it becomes poppable so the idle-sleep predicate
  // (jobs_ > 0) never reads 0 while a pushed job is visible in some queue.
  jobs_.fetch_add(1, std::memory_order_release);
  int target = -1;
  if (threads_ > 1) {
    if (affinity >= 0 && affinity < num_workers()) {
      target = affinity;
    } else {
      target = CurrentWorkerIndex();  // workers keep their spawn local
    }
  }
  if (target >= 0) {
    PushDeque(target, priority, std::move(job));
  } else {
    PushOverflow(priority, std::move(job));
  }
  queue_cv_.notify_one();
}

void TaskScheduler::PushDeque(int worker, int priority, Job job) {
  WorkerDeque& d = *deques_[static_cast<size_t>(worker)];
  std::lock_guard<std::mutex> lock(d.mu);
  d.buckets[priority].push_back(std::move(job));
  d.top.store(d.buckets.begin()->first, std::memory_order_relaxed);
}

void TaskScheduler::PushOverflow(int priority, Job job) {
  std::lock_guard<std::mutex> lock(mu_);
  overflow_[priority].push_back(std::move(job));
  overflow_top_.store(overflow_.begin()->first, std::memory_order_relaxed);
}

bool TaskScheduler::PopOwn(int self, Job* out) {
  WorkerDeque& d = *deques_[static_cast<size_t>(self)];
  std::lock_guard<std::mutex> lock(d.mu);
  if (d.buckets.empty()) return false;
  std::deque<Job>& bucket = d.buckets.begin()->second;
  *out = std::move(bucket.back());
  bucket.pop_back();
  if (bucket.empty()) d.buckets.erase(d.buckets.begin());
  d.top.store(d.buckets.empty() ? kEmptyPriority : d.buckets.begin()->first,
              std::memory_order_relaxed);
  jobs_.fetch_sub(1, std::memory_order_acq_rel);
  return true;
}

bool TaskScheduler::StealFrom(int victim, Job* out) {
  WorkerDeque& d = *deques_[static_cast<size_t>(victim)];
  std::lock_guard<std::mutex> lock(d.mu);
  if (d.buckets.empty()) return false;
  std::deque<Job>& bucket = d.buckets.begin()->second;
  *out = std::move(bucket.front());
  bucket.pop_front();
  if (bucket.empty()) d.buckets.erase(d.buckets.begin());
  d.top.store(d.buckets.empty() ? kEmptyPriority : d.buckets.begin()->first,
              std::memory_order_relaxed);
  jobs_.fetch_sub(1, std::memory_order_acq_rel);
  return true;
}

bool TaskScheduler::PopOverflow(Job* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (overflow_.empty()) return false;
  std::deque<Job>& bucket = overflow_.begin()->second;
  *out = std::move(bucket.front());
  bucket.pop_front();
  if (bucket.empty()) overflow_.erase(overflow_.begin());
  overflow_top_.store(
      overflow_.empty() ? kEmptyPriority : overflow_.begin()->first,
      std::memory_order_relaxed);
  jobs_.fetch_sub(1, std::memory_order_acq_rel);
  return true;
}

bool TaskScheduler::AcquireJob(int self, Job* out) {
  // Own deque first: LIFO, lock uncontended unless a thief is visiting.
  if (self >= 0 && PopOwn(self, out)) return true;
  const int nw = num_workers();
  for (;;) {
    // Rank sources by their priority hints: the shared overflow queue vs
    // every other worker's deque top. Overflow wins ties (external
    // admissions must not starve behind equal-priority local work); victims
    // tie-break in scan order starting at self + 1.
    int best_priority = overflow_top_.load(std::memory_order_relaxed);
    int best_victim = -1;  // -1 = overflow
    for (int k = 1; k <= nw; ++k) {
      const int v = self >= 0 ? (self + k) % nw : k - 1;
      if (v == self) continue;
      const int p =
          deques_[static_cast<size_t>(v)]->top.load(std::memory_order_relaxed);
      if (p > best_priority) {
        best_priority = p;
        best_victim = v;
      }
    }
    if (best_priority == kEmptyPriority) return false;
    if (best_victim < 0) {
      if (PopOverflow(out)) return true;
    } else if (StealFrom(best_victim, out)) {
      if (out->stats != nullptr) {
        out->stats->tasks_stolen.fetch_add(1, std::memory_order_relaxed);
      }
      return true;
    }
    // Stale hint — another thread drained that source first. Rescan: every
    // failed pop reflects a state change, so this terminates.
  }
}

void TaskScheduler::WorkerLoop(int index) {
  tls_worker = WorkerTls{this, index};
  if (index == 0 && worker0_start_delay_ms_ > 0) {
    // Steal-storm hook: park before the first pop so peers must steal the
    // work placed on this deque. Shutdown interrupts the park.
    std::unique_lock<std::mutex> lock(mu_);
    queue_cv_.wait_for(lock,
                       std::chrono::milliseconds(worker0_start_delay_ms_),
                       [this] { return stopping_; });
  }
  for (;;) {
    Job job;
    if (AcquireJob(index, &job)) {
      job.fn();
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_ && jobs_.load(std::memory_order_acquire) == 0) return;
    // Deque pushes happen outside mu_, so a wakeup can race the sleep
    // decision; the timed wait bounds a lost notify to 1ms.
    queue_cv_.wait_for(lock, std::chrono::milliseconds(1), [this] {
      return stopping_ || jobs_.load(std::memory_order_acquire) > 0;
    });
  }
}

void TaskScheduler::EnqueueGraphTask(
    const std::shared_ptr<GraphRunState>& state, int id) {
  const int priority =
      state->graph->tasks_[static_cast<size_t>(id)].priority +
      state->age_boost;
  Enqueue(
      priority, [this, state, id] { RunGraphTask(state, id); },
      /*affinity=*/-1, state->stats);
}

// Executes task `id`: run its fn, release successors whose dependency count
// hits zero, and notify the RunGraph caller after the final task. The job
// closures capture only `this` and the shared state, never RunGraph's stack.
void TaskScheduler::RunGraphTask(const std::shared_ptr<GraphRunState>& state,
                                 int id) {
  TaskGraph::Task& t = state->graph->tasks_[static_cast<size_t>(id)];
  t.fn();
  for (int succ : t.successors) {
    if (state->pending[static_cast<size_t>(succ)].fetch_sub(
            1, std::memory_order_acq_rel) == 1) {
      EnqueueGraphTask(state, succ);
    }
  }
  int finished = state->done.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (finished == state->num_tasks) {
    std::lock_guard<std::mutex> lock(state->m);
    state->cv.notify_all();
  }
}

void TaskScheduler::RunGraph(TaskGraph& graph) {
  RunGraphImpl(graph, nullptr, 0);
}

void TaskScheduler::RunGraph(TaskGraph& graph,
                             std::shared_ptr<StealStats> stats,
                             double initial_age_seconds) {
  RunGraphImpl(graph, std::move(stats), AgingBoost(initial_age_seconds));
}

void TaskScheduler::RunGraphImpl(TaskGraph& graph,
                                 std::shared_ptr<StealStats> stats,
                                 int age_boost) {
  const int n = graph.NumTasks();
  if (n == 0) return;

  // Reject cyclic graphs up front (a cycle would hang the drain loop).
  {
    std::vector<int> pending(static_cast<size_t>(n));
    std::vector<int> ready;
    int seen = 0;
    for (int i = 0; i < n; ++i) {
      pending[static_cast<size_t>(i)] =
          graph.tasks_[static_cast<size_t>(i)].num_deps;
      if (pending[static_cast<size_t>(i)] == 0) ready.push_back(i);
    }
    while (!ready.empty()) {
      int v = ready.back();
      ready.pop_back();
      ++seen;
      for (int succ : graph.tasks_[static_cast<size_t>(v)].successors) {
        if (--pending[static_cast<size_t>(succ)] == 0) ready.push_back(succ);
      }
    }
    GYO_CHECK_MSG(seen == n, "task graph has a dependency cycle (%d of %d "
                  "tasks reachable)", seen, n);
  }

  auto state = std::make_shared<GraphRunState>(static_cast<size_t>(n));
  state->graph = &graph;
  state->num_tasks = n;
  state->stats = std::move(stats);
  state->age_boost = age_boost;
  for (int i = 0; i < n; ++i) {
    state->pending[static_cast<size_t>(i)].store(
        graph.tasks_[static_cast<size_t>(i)].num_deps,
        std::memory_order_relaxed);
  }

  // Seed the initially-ready tasks in id order (deterministic execution
  // order for the threads == 1 inline drain: priority bucket first, then
  // seed order). This must test the static num_deps, not the live pending
  // counters: a worker may already be cascading through earlier seeds, and a
  // task it just released would read as pending == 0 here and get enqueued
  // twice.
  for (int i = 0; i < n; ++i) {
    if (graph.tasks_[static_cast<size_t>(i)].num_deps == 0) {
      EnqueueGraphTask(state, i);
    }
  }

  // The caller participates: acquire jobs (this graph's tasks, other
  // graphs' tasks, ParallelFor morsels — from the overflow queue or stolen
  // off worker deques) until every task of *this* graph has finished; sleep
  // briefly only when no work is visible but tasks are still in flight on
  // other threads.
  const int self = CurrentWorkerIndex();
  for (;;) {
    if (state->done.load(std::memory_order_acquire) == n) break;
    Job job;
    if (AcquireJob(self, &job)) {
      job.fn();
      continue;
    }
    std::unique_lock<std::mutex> lock(state->m);
    state->cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
      return state->done.load(std::memory_order_acquire) == n;
    });
  }
}

void TaskScheduler::ParallelFor(int64_t num_chunks,
                                const std::function<void(int64_t)>& body) {
  ParallelFor(num_chunks, body, nullptr);
}

void TaskScheduler::ParallelFor(int64_t num_chunks,
                                const std::function<void(int64_t)>& body,
                                std::shared_ptr<StealStats> stats) {
  if (num_chunks <= 0) return;
  if (threads_ == 1 || num_chunks == 1) {
    for (int64_t c = 0; c < num_chunks; ++c) body(c);
    return;
  }

  // Morsel dispatch: an atomic claim counter shared by the caller and up to
  // threads() - 1 queued helper jobs. The caller claims chunks too, so the
  // loop completes even when every worker is busy elsewhere; a helper that
  // runs after all chunks are claimed exits immediately (it keeps the state
  // alive via shared_ptr, so late execution is harmless). `body` is only
  // dereferenced for a successfully claimed chunk, and the caller blocks
  // until all claimed chunks are done, so the pointer never dangles.
  struct PFState {
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> done{0};
    int64_t chunks = 0;
    const std::function<void(int64_t)>* body = nullptr;
    std::mutex m;
    std::condition_variable cv;
  };
  auto state = std::make_shared<PFState>();
  state->chunks = num_chunks;
  state->body = &body;

  auto claim_loop = [](PFState* s) {
    for (;;) {
      int64_t c = s->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= s->chunks) break;
      (*s->body)(c);
      s->done.fetch_add(1, std::memory_order_acq_rel);
    }
    // Wake the caller in case this participant ran the final chunk. Taking
    // the lock orders the wakeup after the caller's predicate check.
    std::lock_guard<std::mutex> lock(s->m);
    s->cv.notify_all();
  };

  const int64_t helpers =
      std::min<int64_t>(static_cast<int64_t>(threads_) - 1, num_chunks - 1);
  for (int64_t h = 0; h < helpers; ++h) {
    std::shared_ptr<PFState> st = state;
    Enqueue(
        kMorselPriority, [st, claim_loop] { claim_loop(st.get()); },
        /*affinity=*/-1, stats);
  }

  claim_loop(state.get());

  // Every chunk is claimed by now (the caller's loop exits only on counter
  // exhaustion); wait for helpers to finish their in-flight chunks.
  std::unique_lock<std::mutex> lock(state->m);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == num_chunks;
  });
}

void TaskScheduler::ParallelForAffine(int64_t num_chunks,
                                      const std::function<void(int64_t)>& body,
                                      const std::vector<int>& affinity,
                                      std::shared_ptr<StealStats> stats) {
  GYO_CHECK_MSG(static_cast<int64_t>(affinity.size()) == num_chunks,
                "affinity list has %lld entries for %lld chunks",
                static_cast<long long>(affinity.size()),
                static_cast<long long>(num_chunks));
  if (num_chunks <= 0) return;
  if (threads_ == 1 || num_chunks == 1) {
    for (int64_t c = 0; c < num_chunks; ++c) body(c);
    return;
  }

  // One job per chunk, placed on its affinity worker's deque (overflow when
  // unpreferenced), each guarded by a claim flag: the placed job and any
  // claiming peer race on the CAS and exactly one runs the body. The caller
  // sweeps the flags itself, so completion never depends on worker
  // availability, and late jobs for already-claimed chunks no-op (they hold
  // the state alive via shared_ptr, so late execution is harmless).
  struct AffineState {
    std::unique_ptr<std::atomic<uint8_t>[]> claimed;
    std::atomic<int64_t> done{0};
    int64_t chunks = 0;
    const std::function<void(int64_t)>* body = nullptr;
    const std::vector<int>* affinity = nullptr;
    std::shared_ptr<StealStats> stats;
    const TaskScheduler* scheduler = nullptr;
    std::mutex m;
    std::condition_variable cv;
  };
  auto state = std::make_shared<AffineState>();
  state->claimed =
      std::make_unique<std::atomic<uint8_t>[]>(static_cast<size_t>(num_chunks));
  for (int64_t c = 0; c < num_chunks; ++c) {
    state->claimed[static_cast<size_t>(c)].store(0, std::memory_order_relaxed);
  }
  state->chunks = num_chunks;
  state->body = &body;
  state->affinity = &affinity;
  state->stats = stats;
  state->scheduler = this;

  // Claims and runs chunk `c`; false when someone else got there first.
  // Affinity accounting happens here, against the thread that actually ran
  // the body.
  auto run_chunk = [](AffineState* s, int64_t c) -> bool {
    uint8_t expected = 0;
    if (!s->claimed[static_cast<size_t>(c)].compare_exchange_strong(
            expected, 1, std::memory_order_acq_rel)) {
      return false;
    }
    (*s->body)(c);
    if (s->stats != nullptr) {
      const int want = (*s->affinity)[static_cast<size_t>(c)];
      if (want >= 0 && want < s->scheduler->num_workers()) {
        if (want == s->scheduler->CurrentWorkerIndex()) {
          s->stats->affinity_hits.fetch_add(1, std::memory_order_relaxed);
        } else {
          s->stats->affinity_misses.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    if (s->done.fetch_add(1, std::memory_order_acq_rel) + 1 == s->chunks) {
      std::lock_guard<std::mutex> lock(s->m);
      s->cv.notify_all();
    }
    return true;
  };

  for (int64_t c = 0; c < num_chunks; ++c) {
    std::shared_ptr<AffineState> st = state;
    Enqueue(
        kMorselPriority, [st, run_chunk, c] { run_chunk(st.get(), c); },
        affinity[static_cast<size_t>(c)], stats);
  }

  // The caller participates: its own-affinity chunks first (it IS the
  // preferred executor for those), then every still-unclaimed chunk in
  // increasing order — the far end from the owners' LIFO pops, so caller
  // and owners mostly meet in the middle instead of colliding per chunk.
  const int self = CurrentWorkerIndex();
  for (int64_t c = 0; c < num_chunks; ++c) {
    if (affinity[static_cast<size_t>(c)] == self) run_chunk(state.get(), c);
  }
  for (int64_t c = 0; c < num_chunks; ++c) {
    run_chunk(state.get(), c);
  }

  std::unique_lock<std::mutex> lock(state->m);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == num_chunks;
  });
}

}  // namespace exec
}  // namespace gyo
