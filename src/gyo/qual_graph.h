#ifndef GYO_GYO_QUAL_GRAPH_H_
#define GYO_GYO_QUAL_GRAPH_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "schema/catalog.h"
#include "schema/schema.h"

namespace gyo {

/// An undirected graph whose nodes are the relation indices of a schema
/// (paper §3.1). A *qual graph* additionally satisfies attribute
/// connectivity; a *qual tree* is a qual graph that is a tree.
struct QualGraph {
  int num_nodes = 0;
  std::vector<std::pair<int, int>> edges;

  /// Adjacency lists (built on demand).
  std::vector<std::vector<int>> Adjacency() const;

  /// True iff the graph is connected and has exactly num_nodes−1 edges.
  bool IsTree() const;

  /// Renders e.g. "ab - bc - cd" style edge lists.
  std::string Format(const DatabaseSchema& d, const Catalog& catalog) const;

  /// Renders the graph in Graphviz dot format (nodes labelled by their
  /// relation schemas) for external visualization.
  std::string ToDot(const DatabaseSchema& d, const Catalog& catalog) const;
};

/// True iff `g` is a qual graph for `d`: for every attribute A, the subgraph
/// induced by the nodes whose relation schemas contain A is connected.
bool IsQualGraph(const DatabaseSchema& d, const QualGraph& g);

/// True iff `g` is a qual tree for `d`.
bool IsQualTree(const DatabaseSchema& d, const QualGraph& g);

/// Builds a qual tree for `d` by GYO ear decomposition, or nullopt if `d` is
/// a cyclic schema. For disconnected schemas the components are joined by
/// arbitrary edges (harmless: the joined relations share no attributes).
std::optional<QualGraph> BuildJoinTree(const DatabaseSchema& d);

/// Builds a qual tree as a maximum-weight spanning tree of the complete
/// graph with weights |Ri ∩ Rj| (Maier's construction), then validates it.
/// Returns nullopt iff `d` is cyclic. Benchmarked against BuildJoinTree (P2).
std::optional<QualGraph> BuildJoinTreeMaier(const DatabaseSchema& d);

/// Enumerates all qual trees of `d` via Prüfer sequences. Intended for
/// exhaustive cross-validation on small schemas; dies if
/// d.NumRelations() > max_nodes (cost grows as n^(n-2)).
std::vector<QualGraph> EnumerateQualTrees(const DatabaseSchema& d,
                                          int max_nodes = 8);

/// Enumerates all *minimum-size* qual graphs of `d` (fewest edges) — the
/// graphs quantified over in the §5.1 UJR discussion. For tree schemas these
/// are exactly the qual trees (n−1 edges); cyclic schemas need more. Only
/// connected-spanning subgraph candidates are considered per component; dies
/// if d.NumRelations() > max_nodes (the search is exponential in n²).
std::vector<QualGraph> EnumerateMinimumQualGraphs(const DatabaseSchema& d,
                                                  int max_nodes = 6);

/// True iff D' (given by relation indices into `d`) is a *subtree* of the
/// tree schema `d`: some qual tree of `d` has the D'-nodes inducing a
/// connected subgraph. Implemented via Theorem 3.1(ii):
/// D' is a subtree iff every relation of GR(D, U(D')) is an element of D'.
/// Requires `d` to be a tree schema and `indices` non-empty.
bool IsSubtree(const DatabaseSchema& d, const std::vector<int>& indices);

}  // namespace gyo

#endif  // GYO_GYO_QUAL_GRAPH_H_
