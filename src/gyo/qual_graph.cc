#include "gyo/qual_graph.h"

#include <algorithm>
#include <deque>
#include <numeric>

#include "gyo/gyo.h"
#include "util/check.h"

namespace gyo {

namespace {

// Small union-find used by connectivity checks and Kruskal.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(static_cast<size_t>(n)) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  int Find(int x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }

  // Returns true if the two were in different components.
  bool Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[static_cast<size_t>(a)] = b;
    return true;
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

std::vector<std::vector<int>> QualGraph::Adjacency() const {
  std::vector<std::vector<int>> adj(static_cast<size_t>(num_nodes));
  for (auto [a, b] : edges) {
    adj[static_cast<size_t>(a)].push_back(b);
    adj[static_cast<size_t>(b)].push_back(a);
  }
  return adj;
}

bool QualGraph::IsTree() const {
  if (num_nodes == 0) return true;
  if (static_cast<int>(edges.size()) != num_nodes - 1) return false;
  UnionFind uf(num_nodes);
  int merges = 0;
  for (auto [a, b] : edges) {
    if (!uf.Union(a, b)) return false;  // cycle
    ++merges;
  }
  return merges == num_nodes - 1;
}

std::string QualGraph::Format(const DatabaseSchema& d,
                              const Catalog& catalog) const {
  std::string out;
  for (size_t i = 0; i < edges.size(); ++i) {
    if (i > 0) out += ", ";
    out += catalog.Format(d[edges[i].first]);
    out += " - ";
    out += catalog.Format(d[edges[i].second]);
  }
  return out;
}

std::string QualGraph::ToDot(const DatabaseSchema& d,
                             const Catalog& catalog) const {
  std::string out = "graph qual {\n";
  for (int i = 0; i < num_nodes; ++i) {
    out += "  n" + std::to_string(i) + " [label=\"" + catalog.Format(d[i]) +
           "\"];\n";
  }
  for (auto [a, b] : edges) {
    out += "  n" + std::to_string(a) + " -- n" + std::to_string(b) + ";\n";
  }
  out += "}\n";
  return out;
}

bool IsQualGraph(const DatabaseSchema& d, const QualGraph& g) {
  if (g.num_nodes != d.NumRelations()) return false;
  for (auto [a, b] : g.edges) {
    if (a < 0 || b < 0 || a >= g.num_nodes || b >= g.num_nodes || a == b) {
      return false;
    }
  }
  AttrSet universe = d.Universe();
  bool ok = true;
  universe.ForEach([&](AttrId attr) {
    if (!ok) return;
    UnionFind uf(g.num_nodes);
    for (auto [a, b] : g.edges) {
      if (d[a].Contains(attr) && d[b].Contains(attr)) uf.Union(a, b);
    }
    int root = -1;
    for (int i = 0; i < g.num_nodes; ++i) {
      if (!d[i].Contains(attr)) continue;
      if (root == -1) {
        root = uf.Find(i);
      } else if (uf.Find(i) != root) {
        ok = false;
        return;
      }
    }
  });
  return ok;
}

bool IsQualTree(const DatabaseSchema& d, const QualGraph& g) {
  return g.IsTree() && IsQualGraph(d, g);
}

std::optional<QualGraph> BuildJoinTree(const DatabaseSchema& d) {
  const int n = d.NumRelations();
  QualGraph g;
  g.num_nodes = n;
  if (n <= 1) return g;

  std::vector<RelationSchema> rels = d.Relations();
  std::vector<bool> alive(static_cast<size_t>(n), true);
  int num_alive = n;

  AttrSet universe = d.Universe();
  int num_attrs = universe.Empty() ? 0 : universe.ToVector().back() + 1;
  std::vector<int> count(static_cast<size_t>(num_attrs), 0);
  std::vector<std::vector<int>> occ(static_cast<size_t>(num_attrs));
  for (int i = 0; i < n; ++i) {
    rels[static_cast<size_t>(i)].ForEach([&](AttrId a) {
      ++count[static_cast<size_t>(a)];
      occ[static_cast<size_t>(a)].push_back(i);
    });
  }

  // Shared attributes of relation i: those occurring in >= 2 live relations.
  auto shared_of = [&](int i) {
    AttrSet s;
    rels[static_cast<size_t>(i)].ForEach([&](AttrId a) {
      if (count[static_cast<size_t>(a)] >= 2) s.Insert(a);
    });
    return s;
  };

  // Finds a witness j for ear i: a live j != i with shared_of(i) ⊆ Rj.
  auto find_witness = [&](int i, const AttrSet& shared) -> int {
    if (shared.Empty()) {
      for (int j = 0; j < n; ++j) {
        if (j != i && alive[static_cast<size_t>(j)]) return j;
      }
      return -1;
    }
    AttrId a = shared.Min();
    for (int j : occ[static_cast<size_t>(a)]) {
      if (j == i || !alive[static_cast<size_t>(j)]) continue;
      if (shared.IsSubsetOf(rels[static_cast<size_t>(j)])) return j;
    }
    return -1;
  };

  std::deque<int> queue;
  std::vector<bool> queued(static_cast<size_t>(n), false);
  for (int i = 0; i < n; ++i) {
    queue.push_back(i);
    queued[static_cast<size_t>(i)] = true;
  }

  while (!queue.empty() && num_alive > 1) {
    int i = queue.front();
    queue.pop_front();
    queued[static_cast<size_t>(i)] = false;
    if (!alive[static_cast<size_t>(i)]) continue;
    AttrSet shared = shared_of(i);
    int j = find_witness(i, shared);
    if (j < 0) continue;
    // Remove ear i, attached to witness j.
    alive[static_cast<size_t>(i)] = false;
    --num_alive;
    g.edges.emplace_back(i, j);
    rels[static_cast<size_t>(i)].ForEach([&](AttrId a) {
      --count[static_cast<size_t>(a)];
      // Relations sharing `a` may have become ears; re-examine them.
      for (int k : occ[static_cast<size_t>(a)]) {
        if (alive[static_cast<size_t>(k)] && !queued[static_cast<size_t>(k)]) {
          queue.push_back(k);
          queued[static_cast<size_t>(k)] = true;
        }
      }
    });
  }

  if (num_alive > 1) return std::nullopt;  // cyclic schema
  GYO_DCHECK(g.IsTree());
  GYO_DCHECK(IsQualGraph(d, g));
  return g;
}

std::optional<QualGraph> BuildJoinTreeMaier(const DatabaseSchema& d) {
  const int n = d.NumRelations();
  QualGraph g;
  g.num_nodes = n;
  if (n <= 1) return g;

  struct WeightedEdge {
    int w;
    int a;
    int b;
  };
  std::vector<WeightedEdge> all;
  all.reserve(static_cast<size_t>(n) * static_cast<size_t>(n - 1) / 2);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      all.push_back(WeightedEdge{d[i].Intersect(d[j]).Size(), i, j});
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const WeightedEdge& x, const WeightedEdge& y) {
                     return x.w > y.w;
                   });
  UnionFind uf(n);
  for (const WeightedEdge& e : all) {
    if (uf.Union(e.a, e.b)) g.edges.emplace_back(e.a, e.b);
  }
  // Maier: d is a tree schema iff a maximum-weight spanning tree is a qual
  // tree.
  if (!IsQualGraph(d, g)) return std::nullopt;
  return g;
}

std::vector<QualGraph> EnumerateQualTrees(const DatabaseSchema& d,
                                          int max_nodes) {
  const int n = d.NumRelations();
  GYO_CHECK_MSG(n <= max_nodes, "EnumerateQualTrees: schema too large (%d)", n);
  std::vector<QualGraph> out;
  if (n <= 1) {
    QualGraph g;
    g.num_nodes = n;
    out.push_back(g);
    return out;
  }
  if (n == 2) {
    QualGraph g;
    g.num_nodes = 2;
    g.edges.emplace_back(0, 1);
    if (IsQualGraph(d, g)) out.push_back(g);
    return out;
  }
  // Enumerate labelled trees by decoding all Prüfer sequences of length n-2.
  std::vector<int> seq(static_cast<size_t>(n - 2), 0);
  while (true) {
    // Decode the current sequence.
    std::vector<int> degree(static_cast<size_t>(n), 1);
    for (int v : seq) ++degree[static_cast<size_t>(v)];
    QualGraph g;
    g.num_nodes = n;
    std::vector<int> deg = degree;
    std::vector<bool> used(static_cast<size_t>(n), false);
    for (int v : seq) {
      for (int leaf = 0; leaf < n; ++leaf) {
        if (deg[static_cast<size_t>(leaf)] == 1 &&
            !used[static_cast<size_t>(leaf)]) {
          g.edges.emplace_back(leaf, v);
          used[static_cast<size_t>(leaf)] = true;
          --deg[static_cast<size_t>(v)];
          break;
        }
      }
    }
    int last1 = -1;
    for (int v = 0; v < n; ++v) {
      if (!used[static_cast<size_t>(v)] && deg[static_cast<size_t>(v)] == 1) {
        if (last1 == -1) {
          last1 = v;
        } else {
          g.edges.emplace_back(last1, v);
        }
      }
    }
    if (IsQualGraph(d, g)) out.push_back(g);
    // Advance the sequence.
    int pos = n - 3;
    while (pos >= 0 && seq[static_cast<size_t>(pos)] == n - 1) {
      seq[static_cast<size_t>(pos)] = 0;
      --pos;
    }
    if (pos < 0) break;
    ++seq[static_cast<size_t>(pos)];
  }
  return out;
}

std::vector<QualGraph> EnumerateMinimumQualGraphs(const DatabaseSchema& d,
                                                  int max_nodes) {
  const int n = d.NumRelations();
  GYO_CHECK_MSG(n <= max_nodes,
                "EnumerateMinimumQualGraphs: schema too large (%d)", n);
  // All candidate edges of the complete graph.
  std::vector<std::pair<int, int>> all_edges;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) all_edges.emplace_back(i, j);
  }
  const int m = static_cast<int>(all_edges.size());
  for (int k = 0; k <= m; ++k) {
    std::vector<QualGraph> found;
    // Enumerate all k-subsets of edges.
    std::vector<int> idx(static_cast<size_t>(k));
    for (int i = 0; i < k; ++i) idx[static_cast<size_t>(i)] = i;
    while (true) {
      QualGraph g;
      g.num_nodes = n;
      for (int i : idx) g.edges.push_back(all_edges[static_cast<size_t>(i)]);
      if (IsQualGraph(d, g)) found.push_back(g);
      if (k == 0) break;
      int pos = k - 1;
      while (pos >= 0 && idx[static_cast<size_t>(pos)] == m - k + pos) --pos;
      if (pos < 0) break;
      ++idx[static_cast<size_t>(pos)];
      for (int i = pos + 1; i < k; ++i) {
        idx[static_cast<size_t>(i)] = idx[static_cast<size_t>(i - 1)] + 1;
      }
    }
    if (!found.empty()) return found;
  }
  return {};
}

bool IsSubtree(const DatabaseSchema& d, const std::vector<int>& indices) {
  GYO_CHECK(!indices.empty());
  DatabaseSchema dprime = d.Select(indices);
  GyoResult gr = GyoReduceFast(d, dprime.Universe());
  for (const RelationSchema& r : gr.reduced.Relations()) {
    if (!dprime.ContainsRelation(r)) return false;
  }
  return true;
}

}  // namespace gyo
