#include "gyo/chordal.h"

#include <vector>

#include "util/attr_set.h"
#include "util/check.h"

namespace gyo {

namespace {

// Dense primal graph over compacted attribute indices.
struct PrimalGraph {
  std::vector<AttrId> attrs;               // index -> attribute id
  std::vector<int> index_of;               // attribute id -> index
  std::vector<std::vector<bool>> adjacent; // symmetric, no self loops

  explicit PrimalGraph(const DatabaseSchema& d) {
    AttrSet universe = d.Universe();
    attrs = universe.ToVector();
    int max_id = attrs.empty() ? 0 : attrs.back() + 1;
    index_of.assign(static_cast<size_t>(max_id), -1);
    for (size_t i = 0; i < attrs.size(); ++i) {
      index_of[static_cast<size_t>(attrs[i])] = static_cast<int>(i);
    }
    adjacent.assign(attrs.size(), std::vector<bool>(attrs.size(), false));
    for (const RelationSchema& r : d.Relations()) {
      std::vector<AttrId> members = r.ToVector();
      for (size_t a = 0; a < members.size(); ++a) {
        for (size_t b = a + 1; b < members.size(); ++b) {
          int ia = index_of[static_cast<size_t>(members[a])];
          int ib = index_of[static_cast<size_t>(members[b])];
          adjacent[static_cast<size_t>(ia)][static_cast<size_t>(ib)] = true;
          adjacent[static_cast<size_t>(ib)][static_cast<size_t>(ia)] = true;
        }
      }
    }
  }

  int size() const { return static_cast<int>(attrs.size()); }
};

// Maximum cardinality search: returns vertices in selection order.
std::vector<int> McsOrder(const PrimalGraph& g) {
  const int m = g.size();
  std::vector<int> weight(static_cast<size_t>(m), 0);
  std::vector<bool> numbered(static_cast<size_t>(m), false);
  std::vector<int> order;
  order.reserve(static_cast<size_t>(m));
  for (int step = 0; step < m; ++step) {
    int best = -1;
    for (int v = 0; v < m; ++v) {
      if (numbered[static_cast<size_t>(v)]) continue;
      if (best == -1 ||
          weight[static_cast<size_t>(v)] > weight[static_cast<size_t>(best)]) {
        best = v;
      }
    }
    numbered[static_cast<size_t>(best)] = true;
    order.push_back(best);
    for (int v = 0; v < m; ++v) {
      if (!numbered[static_cast<size_t>(v)] &&
          g.adjacent[static_cast<size_t>(best)][static_cast<size_t>(v)]) {
        ++weight[static_cast<size_t>(v)];
      }
    }
  }
  return order;
}

// Chordality test plus clique-candidate extraction. For each vertex v_i the
// candidate clique is {v_i} ∪ (earlier-selected neighbours of v_i); the
// graph is chordal iff every candidate is in fact a clique — checked by the
// standard parent test.
bool McsChordalAndCliques(const PrimalGraph& g,
                          std::vector<AttrSet>* cliques) {
  const int m = g.size();
  std::vector<int> order = McsOrder(g);
  std::vector<int> position(static_cast<size_t>(m), -1);
  for (int i = 0; i < m; ++i) {
    position[static_cast<size_t>(order[static_cast<size_t>(i)])] = i;
  }
  bool chordal = true;
  if (cliques != nullptr) cliques->clear();
  for (int i = 0; i < m; ++i) {
    int v = order[static_cast<size_t>(i)];
    // Earlier-selected neighbours of v.
    std::vector<int> prev;
    for (int u = 0; u < m; ++u) {
      if (g.adjacent[static_cast<size_t>(v)][static_cast<size_t>(u)] &&
          position[static_cast<size_t>(u)] < i) {
        prev.push_back(u);
      }
    }
    if (cliques != nullptr) {
      AttrSet k;
      k.Insert(g.attrs[static_cast<size_t>(v)]);
      for (int u : prev) k.Insert(g.attrs[static_cast<size_t>(u)]);
      cliques->push_back(k);
    }
    if (prev.empty()) continue;
    // Parent: the most recently selected earlier neighbour.
    int parent = prev[0];
    for (int u : prev) {
      if (position[static_cast<size_t>(u)] >
          position[static_cast<size_t>(parent)]) {
        parent = u;
      }
    }
    for (int u : prev) {
      if (u == parent) continue;
      if (!g.adjacent[static_cast<size_t>(parent)][static_cast<size_t>(u)]) {
        chordal = false;
      }
    }
  }
  return chordal;
}

bool CliquesCovered(const DatabaseSchema& d,
                    const std::vector<AttrSet>& cliques) {
  for (const AttrSet& k : cliques) {
    bool covered = false;
    for (const RelationSchema& r : d.Relations()) {
      if (k.IsSubsetOf(r)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

}  // namespace

bool PrimalGraphIsChordal(const DatabaseSchema& d) {
  PrimalGraph g(d);
  return McsChordalAndCliques(g, nullptr);
}

bool IsConformal(const DatabaseSchema& d) {
  PrimalGraph g(d);
  std::vector<AttrSet> cliques;
  McsChordalAndCliques(g, &cliques);
  return CliquesCovered(d, cliques);
}

bool IsTreeSchemaViaChordality(const DatabaseSchema& d) {
  PrimalGraph g(d);
  std::vector<AttrSet> cliques;
  bool chordal = McsChordalAndCliques(g, &cliques);
  return chordal && CliquesCovered(d, cliques);
}

}  // namespace gyo
