#ifndef GYO_GYO_CHORDAL_H_
#define GYO_GYO_CHORDAL_H_

#include "schema/schema.h"

namespace gyo {

/// A third, independent decision procedure for tree schemas, via the classic
/// graph-theoretic characterization (Beeri–Fagin–Maier–Yannakakis, cited as
/// [3,4] in the paper): D is a tree (acyclic) schema iff its *primal graph*
/// (attributes as vertices, an edge when two attributes co-occur in a
/// relation) is chordal AND every maximal clique of the primal graph is
/// contained in some relation schema (conformality).
///
/// Used to cross-validate the GYO (Cor 3.1) and Maier spanning-tree tests,
/// and benchmarked against them in bench_acyclicity (P2). Runs maximum
/// cardinality search for the chordality test.
bool IsTreeSchemaViaChordality(const DatabaseSchema& d);

/// True iff the primal graph of `d` is chordal (every cycle of length >= 4
/// has a chord).
bool PrimalGraphIsChordal(const DatabaseSchema& d);

/// True iff `d` is conformal: every clique of the primal graph lies inside
/// some relation schema. Only meaningful combined with chordality; for
/// non-chordal primal graphs this checks the MCS clique candidates.
bool IsConformal(const DatabaseSchema& d);

}  // namespace gyo

#endif  // GYO_GYO_CHORDAL_H_
