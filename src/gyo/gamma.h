#ifndef GYO_GYO_GAMMA_H_
#define GYO_GYO_GAMMA_H_

#include <optional>
#include <vector>

#include "schema/schema.h"
#include "util/attr_set.h"

namespace gyo {

/// γ-acyclicity (paper §5.2, after Fagin). A *γ-cycle* is a sequence
/// (R1, A1, R2, ..., Rm, Am, R1) with m >= 3, distinct relations, distinct
/// attributes, Ai ∈ Ri ∩ Ri+1 (cyclically), where every Ai except the last
/// belongs to no relation of the cycle other than Ri and Ri+1 (the standard
/// definition; see Fagin 1983). D is γ-acyclic iff it has none.
///
/// Note on the source text: the paper's scan renders the definition as "A1
/// is only in R1 and R2, and A2 is only in R2 and R3" with occupancy over the
/// whole schema. That reading is provably NOT equivalent to the paper's own
/// characterizations in Theorem 5.3 (counterexample: (bcd, b, cd, acd, abcd)
/// satisfies it while ⋈D ⊭ ⋈(bcd, acd)), so this module implements the
/// standard definition, which we cross-validate against characterizations
/// (ii), (iii) and the semantic property (iv) in the test suite.

/// A γ-cycle witness: attributes[i] ∈ relations[i] ∩ relations[(i+1) % m].
struct WeakGammaCycle {
  std::vector<int> relations;     // indices into the (deduplicated) schema
  std::vector<AttrId> attributes;
};

/// Decides γ-acyclicity in polynomial time via Theorem 5.3(ii): for every
/// pair of distinct relation schemas R1, R2 with R1 ∩ R2 ≠ ∅, deleting
/// R1 ∩ R2 from every relation must disconnect R1 − (R1∩R2) from
/// R2 − (R1∩R2). Duplicate relation schemas are collapsed first (γ-cycles
/// are defined over distinct schemas).
bool IsGammaAcyclic(const DatabaseSchema& d);

/// Searches for a γ-cycle directly from the definition (backtracking;
/// exponential worst case — intended for cross-validation on small schemas).
/// Indices refer to the schema with exact-duplicate relations removed,
/// preserving first-occurrence order.
std::optional<WeakGammaCycle> FindWeakGammaCycle(const DatabaseSchema& d);

/// Decides γ-acyclicity via Theorem 5.3(iii): D is a tree schema and every
/// connected D' ⊆ D is a subtree of D. Enumerates all 2^n sub-schemas; dies
/// if the deduplicated schema has more than max_relations relations.
bool IsGammaAcyclicBySubtrees(const DatabaseSchema& d, int max_relations = 14);

/// Removes exact-duplicate relation schemas (keeps first occurrences).
DatabaseSchema Deduplicate(const DatabaseSchema& d);

}  // namespace gyo

#endif  // GYO_GYO_GAMMA_H_
