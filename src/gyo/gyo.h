#ifndef GYO_GYO_GYO_H_
#define GYO_GYO_GYO_H_

#include <vector>

#include "schema/schema.h"
#include "util/rng.h"

namespace gyo {

/// One GYO reduction operation (paper §3.3).
struct GyoStep {
  enum class Kind {
    /// Deleted a non-sacred attribute that occurred in exactly one relation.
    kAttributeDeletion,
    /// Eliminated a relation contained in another relation.
    kSubsetElimination,
  };

  Kind kind;
  /// Index (into the *original* schema) of the relation operated on.
  int relation = -1;
  /// The attribute deleted (kAttributeDeletion only).
  AttrId attribute = -1;
  /// Index of the containing relation (kSubsetElimination only).
  int absorber = -1;
};

/// The result of a (full) GYO reduction GR(D, X).
struct GyoResult {
  /// The surviving relation schemas with isolated attributes removed, in
  /// original index order. Maier & Ullman proved GR(D, X) is unique, so this
  /// does not depend on the order operations were applied in.
  DatabaseSchema reduced;

  /// Original indices of the relations in `reduced` (parallel vector).
  std::vector<int> survivors;

  /// The sequence of operations applied (one valid order).
  std::vector<GyoStep> trace;

  /// True iff every surviving relation is empty. With X = ∅ this is the
  /// tree-schema condition of Corollary 3.1 (GR(D) = ∅).
  bool FullyReduced() const {
    for (const RelationSchema& r : reduced.Relations()) {
      if (!r.Empty()) return false;
    }
    return true;
  }
};

/// Computes GR(D, X): applies isolated-attribute deletion (never touching
/// attributes of `sacred`) and subset elimination until neither applies.
/// Straightforward fixpoint implementation, O(passes · n² · |U|/64).
GyoResult GyoReduce(const DatabaseSchema& d, const AttrSet& sacred = AttrSet());

/// Same result as GyoReduce but uses occurrence-count worklists so each
/// relation is only re-examined when something it depends on changed.
/// This is the variant benchmarked against GyoReduce in bench_gyo (P1).
GyoResult GyoReduceFast(const DatabaseSchema& d,
                        const AttrSet& sacred = AttrSet());

/// Applies applicable GYO operations in a random order. Used to validate the
/// Maier–Ullman uniqueness of GR(D, X) (the `reduced`/`survivors` fields must
/// match GyoReduce's for every seed).
GyoResult GyoReduceRandomOrder(const DatabaseSchema& d, const AttrSet& sacred,
                               Rng& rng);

}  // namespace gyo

#endif  // GYO_GYO_GYO_H_
