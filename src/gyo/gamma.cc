#include "gyo/gamma.h"

#include <vector>

#include "gyo/acyclic.h"
#include "gyo/qual_graph.h"
#include "util/check.h"

namespace gyo {

DatabaseSchema Deduplicate(const DatabaseSchema& d) {
  DatabaseSchema out;
  for (const RelationSchema& r : d.Relations()) {
    if (!out.ContainsRelation(r)) out.Add(r);
  }
  return out;
}

namespace {

// True iff relations i and j of `rels` are connected through schemas with
// the attribute set `deleted` removed (BFS over shared attributes).
bool ConnectedAfterDeletion(const std::vector<RelationSchema>& rels, int i,
                            int j, const AttrSet& deleted) {
  const int n = static_cast<int>(rels.size());
  std::vector<AttrSet> cut(rels.size());
  for (int k = 0; k < n; ++k) {
    cut[static_cast<size_t>(k)] = rels[static_cast<size_t>(k)].Minus(deleted);
  }
  if (cut[static_cast<size_t>(i)].Empty()) return false;
  std::vector<bool> seen(rels.size(), false);
  std::vector<int> queue = {i};
  seen[static_cast<size_t>(i)] = true;
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    int u = queue[qi];
    if (u == j) return true;
    for (int v = 0; v < n; ++v) {
      if (seen[static_cast<size_t>(v)]) continue;
      if (cut[static_cast<size_t>(u)].Intersects(cut[static_cast<size_t>(v)])) {
        seen[static_cast<size_t>(v)] = true;
        queue.push_back(v);
      }
    }
  }
  return false;
}

}  // namespace

bool IsGammaAcyclic(const DatabaseSchema& d) {
  DatabaseSchema dd = Deduplicate(d);
  const std::vector<RelationSchema>& rels = dd.Relations();
  const int n = dd.NumRelations();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      AttrSet x = rels[static_cast<size_t>(i)].Intersect(
          rels[static_cast<size_t>(j)]);
      if (x.Empty()) continue;
      if (ConnectedAfterDeletion(rels, i, j, x)) return false;
    }
  }
  return true;
}

namespace {

// DFS for a γ-cycle: grows a path of distinct relations joined by distinct
// attributes and tries to close it back to the first relation. On closing,
// the locality condition is checked: every path attribute (all Ai with
// i < m) must avoid every cycle relation other than its own two endpoints.
struct GammaSearch {
  const std::vector<RelationSchema>* rels;
  int n = 0;
  std::vector<int> path;
  std::vector<AttrId> attrs;
  std::vector<bool> used_rels;
  AttrSet used_attrs;

  bool LocalityHolds() const {
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      for (size_t j = 0; j < path.size(); ++j) {
        if (j == i || j == i + 1) continue;
        if ((*rels)[static_cast<size_t>(path[j])].Contains(attrs[i])) {
          return false;
        }
      }
    }
    return true;
  }

  bool Dfs(int cur) {
    if (path.size() >= 3) {
      AttrSet closing = (*rels)[static_cast<size_t>(cur)]
                            .Intersect((*rels)[static_cast<size_t>(path[0])])
                            .Minus(used_attrs);
      bool closed = false;
      closing.ForEach([&](AttrId am) {
        if (closed) return;
        attrs.push_back(am);
        if (LocalityHolds()) {
          closed = true;
        } else {
          attrs.pop_back();
        }
      });
      if (closed) return true;
    }
    bool found = false;
    AttrSet candidates = (*rels)[static_cast<size_t>(cur)].Minus(used_attrs);
    candidates.ForEach([&](AttrId a) {
      if (found) return;
      for (int next = 0; next < n && !found; ++next) {
        if (used_rels[static_cast<size_t>(next)] ||
            !(*rels)[static_cast<size_t>(next)].Contains(a)) {
          continue;
        }
        used_rels[static_cast<size_t>(next)] = true;
        used_attrs.Insert(a);
        path.push_back(next);
        attrs.push_back(a);
        if (Dfs(next)) {
          found = true;
        } else {
          path.pop_back();
          attrs.pop_back();
          used_attrs.Erase(a);
          used_rels[static_cast<size_t>(next)] = false;
        }
      }
    });
    return found;
  }
};

}  // namespace

std::optional<WeakGammaCycle> FindWeakGammaCycle(const DatabaseSchema& d) {
  DatabaseSchema dd = Deduplicate(d);
  const std::vector<RelationSchema>& rels = dd.Relations();
  const int n = dd.NumRelations();
  GammaSearch search;
  search.rels = &rels;
  search.n = n;
  for (int start = 0; start < n; ++start) {
    search.path = {start};
    search.attrs.clear();
    search.used_rels.assign(static_cast<size_t>(n), false);
    search.used_rels[static_cast<size_t>(start)] = true;
    search.used_attrs.Clear();
    if (search.Dfs(start)) {
      WeakGammaCycle cycle;
      cycle.relations = search.path;
      cycle.attributes = search.attrs;
      return cycle;
    }
  }
  return std::nullopt;
}

bool IsGammaAcyclicBySubtrees(const DatabaseSchema& d, int max_relations) {
  DatabaseSchema dd = Deduplicate(d);
  const int n = dd.NumRelations();
  GYO_CHECK_MSG(n <= max_relations,
                "IsGammaAcyclicBySubtrees: schema too large (%d)", n);
  if (!IsTreeSchema(dd)) return false;
  // Every connected sub-schema must be a subtree (Theorem 5.3(iii)).
  for (uint32_t mask = 1; mask < (uint32_t{1} << n); ++mask) {
    std::vector<int> indices;
    for (int i = 0; i < n; ++i) {
      if ((mask >> i) & 1) indices.push_back(i);
    }
    DatabaseSchema sub = dd.Select(indices);
    if (!sub.IsConnected()) continue;
    if (!IsSubtree(dd, indices)) return false;
  }
  return true;
}

}  // namespace gyo
