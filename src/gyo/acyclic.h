#ifndef GYO_GYO_ACYCLIC_H_
#define GYO_GYO_ACYCLIC_H_

#include <optional>

#include "schema/schema.h"
#include "util/attr_set.h"

namespace gyo {

/// True iff `d` is a tree schema (some qual graph is a tree). Implemented via
/// Corollary 3.1: D is a tree schema iff GR(D) = ∅ (the GYO reduction with no
/// sacred attributes eliminates everything). The empty schema is a tree.
bool IsTreeSchema(const DatabaseSchema& d);

/// True iff `d` is a cyclic schema.
inline bool IsCyclicSchema(const DatabaseSchema& d) { return !IsTreeSchema(d); }

/// The relation schema of least cardinality whose addition to `d` makes it a
/// tree schema: U(GR(D)) (Corollary 3.2). Returns ∅ when `d` is already a
/// tree schema.
AttrSet TreefyingRelation(const DatabaseSchema& d);

/// True iff `d` is (isomorphic by attribute reordering to) an Aring of size
/// n >= 3: n binary relations forming a single simple cycle covering n
/// attributes (§3.1).
bool IsAring(const DatabaseSchema& d);

/// True iff `d` is an Aclique of size n >= 3: with |U| = n, the n relations
/// are exactly {U − {A} | A ∈ U} (§3.1).
bool IsAclique(const DatabaseSchema& d);

/// A Lemma 3.1 witness: deleting `deleted` from every relation of D and
/// reducing yields `core`, an Aring or Aclique.
struct CyclicCore {
  AttrSet deleted;
  DatabaseSchema core;
  bool is_aring = false;
  bool is_aclique = false;
};

/// Searches for a Lemma 3.1 witness: X ⊆ U(D) such that the reduction of
/// (R − X | R ∈ D) is an Aring or Aclique. By Lemma 3.1 a witness exists iff
/// `d` is cyclic. The search enumerates candidate X by increasing size and is
/// exponential in |U(D)|; it dies if |U(D)| > max_universe. Returns nullopt
/// for tree schemas.
std::optional<CyclicCore> FindCyclicCore(const DatabaseSchema& d,
                                         int max_universe = 22);

}  // namespace gyo

#endif  // GYO_GYO_ACYCLIC_H_
