#include "gyo/gyo.h"

#include <algorithm>
#include <deque>

#include "util/check.h"

namespace gyo {

namespace {

// Shared mutable state for a reduction in progress.
struct ReductionState {
  std::vector<RelationSchema> rels;
  std::vector<bool> alive;
  std::vector<GyoStep> trace;

  explicit ReductionState(const DatabaseSchema& d)
      : rels(d.Relations()), alive(rels.size(), true) {}

  int NumAttrs() const {
    AttrSet u;
    for (const RelationSchema& r : rels) u.UnionWith(r);
    return u.Empty() ? 0 : u.ToVector().back() + 1;
  }

  void DeleteAttribute(int rel, AttrId a) {
    rels[static_cast<size_t>(rel)].Erase(a);
    trace.push_back(GyoStep{GyoStep::Kind::kAttributeDeletion, rel, a, -1});
  }

  void EliminateSubset(int rel, int absorber) {
    alive[static_cast<size_t>(rel)] = false;
    trace.push_back(
        GyoStep{GyoStep::Kind::kSubsetElimination, rel, -1, absorber});
  }

  GyoResult Finish() && {
    GyoResult out;
    out.trace = std::move(trace);
    for (size_t i = 0; i < rels.size(); ++i) {
      if (alive[i]) {
        out.reduced.Add(rels[i]);
        out.survivors.push_back(static_cast<int>(i));
      }
    }
    return out;
  }
};

std::vector<int> CountOccurrences(const ReductionState& s, int num_attrs) {
  std::vector<int> count(static_cast<size_t>(num_attrs), 0);
  for (size_t i = 0; i < s.rels.size(); ++i) {
    if (!s.alive[i]) continue;
    s.rels[i].ForEach([&](AttrId a) { ++count[static_cast<size_t>(a)]; });
  }
  return count;
}

}  // namespace

GyoResult GyoReduce(const DatabaseSchema& d, const AttrSet& sacred) {
  ReductionState s(d);
  const int num_attrs = s.NumAttrs();
  int n = static_cast<int>(s.rels.size());
  bool changed = true;
  while (changed) {
    changed = false;
    // Phase 1: delete isolated non-sacred attributes. Deleting one cannot
    // make another attribute isolated, so a single pass with fixed counts is
    // sound.
    std::vector<int> count = CountOccurrences(s, num_attrs);
    for (int i = 0; i < n; ++i) {
      if (!s.alive[static_cast<size_t>(i)]) continue;
      for (AttrId a : s.rels[static_cast<size_t>(i)].ToVector()) {
        if (!sacred.Contains(a) && count[static_cast<size_t>(a)] == 1) {
          s.DeleteAttribute(i, a);
          changed = true;
        }
      }
    }
    // Phase 2: eliminate subsets. For equal relations the higher index is
    // eliminated, keeping the result deterministic.
    for (int i = 0; i < n; ++i) {
      if (!s.alive[static_cast<size_t>(i)]) continue;
      for (int j = 0; j < n; ++j) {
        if (i == j || !s.alive[static_cast<size_t>(j)]) continue;
        const RelationSchema& ri = s.rels[static_cast<size_t>(i)];
        const RelationSchema& rj = s.rels[static_cast<size_t>(j)];
        if (ri.IsSubsetOf(rj) && (ri != rj || i > j)) {
          s.EliminateSubset(i, j);
          changed = true;
          break;
        }
      }
    }
  }
  return std::move(s).Finish();
}

GyoResult GyoReduceFast(const DatabaseSchema& d, const AttrSet& sacred) {
  ReductionState s(d);
  const int num_attrs = s.NumAttrs();
  const int n = static_cast<int>(s.rels.size());

  // Occurrence lists with lazy deletion, plus live counts.
  std::vector<std::vector<int>> occ(static_cast<size_t>(num_attrs));
  std::vector<int> count(static_cast<size_t>(num_attrs), 0);
  for (int i = 0; i < n; ++i) {
    s.rels[static_cast<size_t>(i)].ForEach([&](AttrId a) {
      occ[static_cast<size_t>(a)].push_back(i);
      ++count[static_cast<size_t>(a)];
    });
  }

  std::vector<AttrId> attr_stack;  // attributes that may be isolated
  for (AttrId a = 0; a < num_attrs; ++a) {
    if (count[static_cast<size_t>(a)] == 1 && !sacred.Contains(a)) {
      attr_stack.push_back(a);
    }
  }
  std::deque<int> dirty;  // relations needing a subset check
  std::vector<bool> in_dirty(static_cast<size_t>(n), false);
  for (int i = 0; i < n; ++i) {
    dirty.push_back(i);
    in_dirty[static_cast<size_t>(i)] = true;
  }

  auto mark_dirty = [&](int i) {
    if (!in_dirty[static_cast<size_t>(i)] && s.alive[static_cast<size_t>(i)]) {
      dirty.push_back(i);
      in_dirty[static_cast<size_t>(i)] = true;
    }
  };

  auto on_kill = [&](int i) {
    s.rels[static_cast<size_t>(i)].ForEach([&](AttrId a) {
      if (--count[static_cast<size_t>(a)] == 1 && !sacred.Contains(a)) {
        attr_stack.push_back(a);
      }
    });
  };

  auto any_other_alive = [&](int i) -> int {
    for (int j = 0; j < n; ++j) {
      if (j != i && s.alive[static_cast<size_t>(j)]) return j;
    }
    return -1;
  };

  while (!attr_stack.empty() || !dirty.empty()) {
    if (!attr_stack.empty()) {
      AttrId a = attr_stack.back();
      attr_stack.pop_back();
      if (count[static_cast<size_t>(a)] != 1) continue;
      // Lazily clean the occurrence list down to the lone live holder.
      auto& list = occ[static_cast<size_t>(a)];
      int holder = -1;
      for (int i : list) {
        if (s.alive[static_cast<size_t>(i)] &&
            s.rels[static_cast<size_t>(i)].Contains(a)) {
          holder = i;
          break;
        }
      }
      GYO_CHECK(holder >= 0);
      s.DeleteAttribute(holder, a);
      --count[static_cast<size_t>(a)];
      mark_dirty(holder);
      continue;
    }

    int i = dirty.front();
    dirty.pop_front();
    in_dirty[static_cast<size_t>(i)] = false;
    if (!s.alive[static_cast<size_t>(i)]) continue;
    const RelationSchema& ri = s.rels[static_cast<size_t>(i)];

    if (ri.Empty()) {
      int j = any_other_alive(i);
      if (j >= 0) {
        // An empty relation is a subset of anything; equal-empty pairs keep
        // the lower index (matching GyoReduce's tie-break).
        if (s.rels[static_cast<size_t>(j)].Empty() && i < j) {
          s.EliminateSubset(j, i);
          on_kill(j);
          // i itself is still an empty relation; re-check it against the
          // remaining live relations.
          mark_dirty(i);
        } else {
          s.EliminateSubset(i, j);
          on_kill(i);
        }
      }
      continue;
    }

    // Candidate absorbers must share ri's first attribute.
    AttrId a = ri.Min();
    bool killed = false;
    for (int j : occ[static_cast<size_t>(a)]) {
      if (j == i || !s.alive[static_cast<size_t>(j)]) continue;
      const RelationSchema& rj = s.rels[static_cast<size_t>(j)];
      if (!ri.IsSubsetOf(rj)) continue;
      if (ri == rj && i < j) {
        // Duplicate: eliminate the higher index, absorbed by us.
        s.EliminateSubset(j, i);
        on_kill(j);
        // i itself is unchanged; re-check it in case of further duplicates.
        mark_dirty(i);
      } else {
        s.EliminateSubset(i, j);
        on_kill(i);
      }
      killed = true;
      break;
    }
    (void)killed;
  }
  return std::move(s).Finish();
}

GyoResult GyoReduceRandomOrder(const DatabaseSchema& d, const AttrSet& sacred,
                               Rng& rng) {
  ReductionState s(d);
  const int num_attrs = s.NumAttrs();
  const int n = static_cast<int>(s.rels.size());
  while (true) {
    // Enumerate every currently applicable operation.
    struct Op {
      bool is_attr;
      int rel;
      AttrId attr;
      int absorber;
    };
    std::vector<Op> ops;
    std::vector<int> count = CountOccurrences(s, num_attrs);
    for (int i = 0; i < n; ++i) {
      if (!s.alive[static_cast<size_t>(i)]) continue;
      s.rels[static_cast<size_t>(i)].ForEach([&](AttrId a) {
        if (!sacred.Contains(a) && count[static_cast<size_t>(a)] == 1) {
          ops.push_back(Op{true, i, a, -1});
        }
      });
      for (int j = 0; j < n; ++j) {
        if (i == j || !s.alive[static_cast<size_t>(j)]) continue;
        if (s.rels[static_cast<size_t>(i)].IsSubsetOf(
                s.rels[static_cast<size_t>(j)])) {
          ops.push_back(Op{false, i, -1, j});
        }
      }
    }
    if (ops.empty()) break;
    const Op& op = ops[rng.Below(ops.size())];
    if (op.is_attr) {
      s.DeleteAttribute(op.rel, op.attr);
    } else {
      s.EliminateSubset(op.rel, op.absorber);
    }
  }
  return std::move(s).Finish();
}

}  // namespace gyo
