#include "gyo/acyclic.h"

#include <vector>

#include "gyo/gyo.h"
#include "util/check.h"

namespace gyo {

bool IsTreeSchema(const DatabaseSchema& d) {
  return GyoReduceFast(d).FullyReduced();
}

AttrSet TreefyingRelation(const DatabaseSchema& d) {
  return GyoReduceFast(d).reduced.Universe();
}

bool IsAring(const DatabaseSchema& d) {
  const int n = d.NumRelations();
  if (n < 3) return false;
  AttrSet universe = d.Universe();
  if (universe.Size() != n) return false;
  // Every relation must be binary; every attribute must occur exactly twice;
  // and the resulting 2-regular graph must be a single cycle.
  std::vector<AttrId> attrs = universe.ToVector();
  for (int i = 0; i < n; ++i) {
    if (d[i].Size() != 2) return false;
  }
  // Build attribute adjacency: attributes are vertices, relations are edges.
  // A single simple cycle through all n vertices means: connected and every
  // vertex has degree exactly 2, with no repeated edges.
  std::vector<std::vector<int>> incident(attrs.size());
  for (int i = 0; i < n; ++i) {
    std::vector<AttrId> pair = d[i].ToVector();
    for (AttrId a : pair) {
      for (size_t k = 0; k < attrs.size(); ++k) {
        if (attrs[k] == a) incident[k].push_back(i);
      }
    }
  }
  for (const auto& inc : incident) {
    if (inc.size() != 2) return false;
  }
  // No duplicate relations (would be a multi-edge).
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (d[i] == d[j]) return false;
    }
  }
  // Walk the cycle from relation 0 and count distinct relations visited.
  int visited = 0;
  int prev_attr = -1;
  int cur_rel = 0;
  AttrId cur_attr = d[0].Min();
  (void)prev_attr;
  std::vector<bool> seen(static_cast<size_t>(n), false);
  while (!seen[static_cast<size_t>(cur_rel)]) {
    seen[static_cast<size_t>(cur_rel)] = true;
    ++visited;
    // Move across cur_rel to its other attribute, then to the other relation
    // incident to that attribute.
    AttrSet rest = d[cur_rel];
    rest.Erase(cur_attr);
    if (rest.Size() != 1) return false;
    AttrId next_attr = rest.Min();
    int next_rel = -1;
    for (size_t k = 0; k < attrs.size(); ++k) {
      if (attrs[k] == next_attr) {
        for (int r : incident[k]) {
          if (r != cur_rel) next_rel = r;
        }
      }
    }
    if (next_rel < 0) return false;
    cur_attr = next_attr;
    cur_rel = next_rel;
  }
  return visited == n;
}

bool IsAclique(const DatabaseSchema& d) {
  const int n = d.NumRelations();
  if (n < 3) return false;
  AttrSet universe = d.Universe();
  if (universe.Size() != n) return false;
  std::vector<AttrId> attrs = universe.ToVector();
  // Each attribute must be missing from exactly one relation, and every
  // relation must miss exactly one attribute, bijectively.
  std::vector<bool> attr_used(attrs.size(), false);
  std::vector<bool> rel_used(static_cast<size_t>(n), false);
  for (size_t k = 0; k < attrs.size(); ++k) {
    AttrSet expected = universe;
    expected.Erase(attrs[k]);
    bool matched = false;
    for (int i = 0; i < n; ++i) {
      if (!rel_used[static_cast<size_t>(i)] && d[i] == expected) {
        rel_used[static_cast<size_t>(i)] = true;
        attr_used[k] = true;
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

std::optional<CyclicCore> FindCyclicCore(const DatabaseSchema& d,
                                         int max_universe) {
  if (IsTreeSchema(d)) return std::nullopt;
  std::vector<AttrId> attrs = d.Universe().ToVector();
  const int m = static_cast<int>(attrs.size());
  GYO_CHECK_MSG(m <= max_universe,
                "FindCyclicCore: universe too large (%d attributes)", m);

  auto try_x = [&](const AttrSet& x) -> std::optional<CyclicCore> {
    DatabaseSchema core = d.DeleteAttributes(x).Reduction();
    // Drop a possible lone empty relation left by the reduction.
    DatabaseSchema cleaned;
    for (const RelationSchema& r : core.Relations()) {
      if (!r.Empty()) cleaned.Add(r);
    }
    bool ring = IsAring(cleaned);
    bool clique = IsAclique(cleaned);
    if (!ring && !clique) return std::nullopt;
    return CyclicCore{x, cleaned, ring, clique};
  };

  // Enumerate X by increasing cardinality so the first witness is minimal.
  for (int size = 0; size <= m; ++size) {
    // Enumerate all size-`size` subsets of attrs with an index vector.
    std::vector<int> idx(static_cast<size_t>(size));
    for (int i = 0; i < size; ++i) idx[static_cast<size_t>(i)] = i;
    while (true) {
      AttrSet x;
      for (int i : idx) x.Insert(attrs[static_cast<size_t>(i)]);
      if (auto core = try_x(x)) return core;
      // Next combination.
      int pos = size - 1;
      while (pos >= 0 &&
             idx[static_cast<size_t>(pos)] == m - size + pos) {
        --pos;
      }
      if (pos < 0) break;
      ++idx[static_cast<size_t>(pos)];
      for (int i = pos + 1; i < size; ++i) {
        idx[static_cast<size_t>(i)] = idx[static_cast<size_t>(i - 1)] + 1;
      }
      if (size == 0) break;
    }
    if (size == 0) {
      // The empty-set combination loop above runs exactly once.
      continue;
    }
  }
  // Lemma 3.1 guarantees a witness exists for cyclic schemas.
  GYO_CHECK_MSG(false, "Lemma 3.1 witness not found for a cyclic schema");
  return std::nullopt;
}

}  // namespace gyo
