#include "schema/parse.h"

#include <cctype>
#include <string>
#include <vector>

#include "util/check.h"

namespace gyo {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool HasWhitespace(std::string_view s) {
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) return true;
  }
  return false;
}

}  // namespace

AttrSet ParseAttrSet(Catalog& catalog, std::string_view spec) {
  std::string_view token = Trim(spec);
  GYO_CHECK_MSG(!token.empty(), "empty attribute set in schema spec");
  if (!HasWhitespace(token)) {
    return catalog.InternAll(token);
  }
  AttrSet out;
  for (std::string_view name : Split(token, ' ')) {
    name = Trim(name);
    if (name.empty()) continue;
    out.Insert(catalog.Intern(name));
  }
  GYO_CHECK_MSG(!out.Empty(), "empty attribute set in schema spec");
  return out;
}

DatabaseSchema ParseSchema(Catalog& catalog, std::string_view spec) {
  DatabaseSchema out;
  for (std::string_view token : Split(spec, ',')) {
    out.Add(ParseAttrSet(catalog, token));
  }
  return out;
}

}  // namespace gyo
