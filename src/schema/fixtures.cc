#include "schema/fixtures.h"

#include "schema/parse.h"

namespace gyo::fixtures {

DatabaseSchema Fig1Path(Catalog& catalog) {
  return ParseSchema(catalog, "ab,bc,cd");
}

DatabaseSchema Fig1Triangle(Catalog& catalog) {
  return ParseSchema(catalog, "ab,bc,ac");
}

DatabaseSchema Fig1Tree(Catalog& catalog) {
  return ParseSchema(catalog, "abc,cde,ace,afe");
}

DatabaseSchema Fig2Aring(Catalog& catalog) {
  return ParseSchema(catalog, "ab,bc,cd,da");
}

DatabaseSchema Fig2Aclique(Catalog& catalog) {
  return ParseSchema(catalog, "bcd,acd,abd,abc");
}

DatabaseSchema Fig2RingBased(Catalog& catalog, AttrSet* deleted) {
  // Deleting {a,b,g,h,i} leaves the Aring (cd, de, ef, fc) plus an empty
  // schema from `ai` that subset-elimination removes.
  DatabaseSchema d = ParseSchema(catalog, "acd,bde,efg,fch,ai");
  if (deleted != nullptr) *deleted = ParseAttrSet(catalog, "abghi");
  return d;
}

DatabaseSchema Fig2CliqueBased(Catalog& catalog, AttrSet* deleted) {
  // Deleting {e,f,g,h} leaves the Aclique (bcd, acd, abd, abc) plus an empty
  // schema from `gh` that subset-elimination removes.
  DatabaseSchema d = ParseSchema(catalog, "bcde,acdf,abdg,abch,gh");
  if (deleted != nullptr) *deleted = ParseAttrSet(catalog, "efgh");
  return d;
}

DatabaseSchema Sec32D(Catalog& catalog) {
  return ParseSchema(catalog, "ab,bc,cd,de,ef,fg,gh,ha");
}

DatabaseSchema Sec32Dpp(Catalog& catalog) {
  return ParseSchema(catalog, "ab,abch,cdgh,defg,ef");
}

DatabaseSchema Sec32Dp(Catalog& catalog) {
  return ParseSchema(catalog, "abef,abch,cdgh,defg,e");
}

DatabaseSchema Sec51D(Catalog& catalog) {
  return ParseSchema(catalog, "abc,ab,bc");
}

DatabaseSchema Sec51Dp(Catalog& catalog) {
  return ParseSchema(catalog, "ab,bc");
}

DatabaseSchema Sec6D(Catalog& catalog) {
  return ParseSchema(catalog, "abg,bcg,acf,ad,de,ea");
}

AttrSet Sec6X(Catalog& catalog) { return ParseAttrSet(catalog, "abc"); }

DatabaseSchema Sec6CC(Catalog& catalog) {
  return ParseSchema(catalog, "abg,bcg,ac");
}

}  // namespace gyo::fixtures
