#include "schema/schema.h"

#include <algorithm>
#include <map>

#include "util/check.h"

namespace gyo {

AttrSet DatabaseSchema::Universe() const {
  AttrSet u;
  for (const RelationSchema& r : relations_) u.UnionWith(r);
  return u;
}

bool DatabaseSchema::IsReduced() const {
  int n = NumRelations();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      if (relations_[i] == relations_[j]) {
        if (i < j) continue;  // count the duplicate pair once, from j's side
        return false;
      }
      if (relations_[static_cast<size_t>(i)].IsSubsetOf(
              relations_[static_cast<size_t>(j)])) {
        return false;
      }
    }
  }
  // A duplicate pair means non-reduced: check explicitly.
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (relations_[static_cast<size_t>(i)] ==
          relations_[static_cast<size_t>(j)]) {
        return false;
      }
    }
  }
  return true;
}

DatabaseSchema DatabaseSchema::Reduction() const {
  DatabaseSchema out;
  int n = NumRelations();
  for (int i = 0; i < n; ++i) {
    const RelationSchema& r = relations_[static_cast<size_t>(i)];
    bool eliminated = false;
    for (int j = 0; j < n && !eliminated; ++j) {
      if (i == j) continue;
      const RelationSchema& s = relations_[static_cast<size_t>(j)];
      if (r.IsProperSubsetOf(s)) eliminated = true;
      // Duplicates: keep only the first occurrence.
      if (r == s && j < i) eliminated = true;
    }
    if (!eliminated) out.Add(r);
  }
  return out;
}

bool DatabaseSchema::CoveredBy(const DatabaseSchema& other) const {
  for (const RelationSchema& r : relations_) {
    bool covered = false;
    for (const RelationSchema& s : other.relations_) {
      if (r.IsSubsetOf(s)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

bool DatabaseSchema::ContainsRelation(const RelationSchema& r) const {
  for (const RelationSchema& s : relations_) {
    if (r == s) return true;
  }
  return false;
}

bool DatabaseSchema::IsSubMultisetOf(const DatabaseSchema& other) const {
  std::map<AttrSet, int> counts;
  for (const RelationSchema& s : other.relations_) counts[s]++;
  for (const RelationSchema& r : relations_) {
    auto it = counts.find(r);
    if (it == counts.end() || it->second == 0) return false;
    --it->second;
  }
  return true;
}

bool DatabaseSchema::EqualsAsMultiset(const DatabaseSchema& other) const {
  return NumRelations() == other.NumRelations() && IsSubMultisetOf(other);
}

DatabaseSchema DatabaseSchema::DeleteAttributes(const AttrSet& x) const {
  DatabaseSchema out;
  for (const RelationSchema& r : relations_) out.Add(r.Minus(x));
  return out;
}

DatabaseSchema DatabaseSchema::Select(const std::vector<int>& indices) const {
  DatabaseSchema out;
  for (int i : indices) {
    GYO_CHECK(i >= 0 && i < NumRelations());
    out.Add(relations_[static_cast<size_t>(i)]);
  }
  return out;
}

std::vector<std::vector<int>> DatabaseSchema::ConnectedComponents() const {
  int n = NumRelations();
  std::vector<int> comp(static_cast<size_t>(n), -1);
  int num_comps = 0;
  for (int start = 0; start < n; ++start) {
    if (comp[static_cast<size_t>(start)] != -1) continue;
    // BFS over the "shares an attribute" graph.
    std::vector<int> queue = {start};
    comp[static_cast<size_t>(start)] = num_comps;
    for (size_t qi = 0; qi < queue.size(); ++qi) {
      int u = queue[qi];
      for (int v = 0; v < n; ++v) {
        if (comp[static_cast<size_t>(v)] != -1) continue;
        if (relations_[static_cast<size_t>(u)].Intersects(
                relations_[static_cast<size_t>(v)])) {
          comp[static_cast<size_t>(v)] = num_comps;
          queue.push_back(v);
        }
      }
    }
    ++num_comps;
  }
  std::vector<std::vector<int>> out(static_cast<size_t>(num_comps));
  for (int i = 0; i < n; ++i) {
    out[static_cast<size_t>(comp[static_cast<size_t>(i)])].push_back(i);
  }
  return out;
}

bool DatabaseSchema::IsConnected() const {
  return ConnectedComponents().size() <= 1;
}

void DatabaseSchema::SortCanonical() {
  std::sort(relations_.begin(), relations_.end());
}

std::string DatabaseSchema::Format(const Catalog& catalog) const {
  std::string out = "(";
  for (int i = 0; i < NumRelations(); ++i) {
    if (i > 0) out += ", ";
    out += catalog.Format(relations_[static_cast<size_t>(i)]);
  }
  out += ")";
  return out;
}

}  // namespace gyo
