#ifndef GYO_SCHEMA_PARSE_H_
#define GYO_SCHEMA_PARSE_H_

#include <string_view>

#include "schema/catalog.h"
#include "schema/schema.h"

namespace gyo {

/// Parses the paper's compact schema notation.
///
/// Relations are separated by commas. Within a relation:
///  * if the token contains no whitespace, every character is a one-letter
///    attribute ("ab,bc,cd" → ({a,b},{b,c},{c,d}));
///  * otherwise, whitespace-separated tokens are attribute names
///    ("part supplier, supplier city" → two relations with named attributes).
///
/// New attributes are interned into `catalog`. Dies on empty relations.
DatabaseSchema ParseSchema(Catalog& catalog, std::string_view spec);

/// Parses a single attribute set in the same notation ("abc" or "a b c").
AttrSet ParseAttrSet(Catalog& catalog, std::string_view spec);

}  // namespace gyo

#endif  // GYO_SCHEMA_PARSE_H_
