#include "schema/generators.h"

#include <algorithm>

#include "util/check.h"

namespace gyo {

DatabaseSchema Aring(int n, AttrId base) {
  GYO_CHECK_MSG(n >= 3, "Aring requires n >= 3");
  DatabaseSchema d;
  for (int i = 0; i < n; ++i) {
    d.Add(AttrSet{base + i, base + (i + 1) % n});
  }
  return d;
}

DatabaseSchema Aclique(int n, AttrId base) {
  GYO_CHECK_MSG(n >= 3, "Aclique requires n >= 3");
  AttrSet universe;
  for (int i = 0; i < n; ++i) universe.Insert(base + i);
  DatabaseSchema d;
  for (int i = 0; i < n; ++i) {
    AttrSet r = universe;
    r.Erase(base + i);
    d.Add(r);
  }
  return d;
}

DatabaseSchema PathSchema(int n, AttrId base) {
  GYO_CHECK_MSG(n >= 2, "PathSchema requires n >= 2 attributes");
  DatabaseSchema d;
  for (int i = 0; i + 1 < n; ++i) {
    d.Add(AttrSet{base + i, base + i + 1});
  }
  return d;
}

DatabaseSchema StarSchema(int leaves, AttrId base) {
  GYO_CHECK_MSG(leaves >= 1, "StarSchema requires >= 1 leaf");
  DatabaseSchema d;
  for (int i = 1; i <= leaves; ++i) {
    d.Add(AttrSet{base, base + i});
  }
  return d;
}

DatabaseSchema GridSchema(int rows, int cols, AttrId base) {
  GYO_CHECK_MSG(rows >= 1 && cols >= 1, "grid needs positive dimensions");
  auto vertex = [&](int r, int c) { return base + r * cols + c; };
  DatabaseSchema d;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) d.Add(AttrSet{vertex(r, c), vertex(r, c + 1)});
      if (r + 1 < rows) d.Add(AttrSet{vertex(r, c), vertex(r + 1, c)});
    }
  }
  return d;
}

RandomTreeResult RandomTreeSchema(int num_relations, int max_arity, Rng& rng) {
  GYO_CHECK(num_relations >= 1);
  GYO_CHECK(max_arity >= 1);
  RandomTreeResult out;
  AttrId next_attr = 0;
  // Root relation: fresh attributes only.
  {
    int arity = static_cast<int>(rng.Range(1, max_arity));
    AttrSet r;
    for (int i = 0; i < arity; ++i) r.Insert(next_attr++);
    out.schema.Add(r);
  }
  for (int i = 1; i < num_relations; ++i) {
    int parent = static_cast<int>(rng.Below(static_cast<uint64_t>(i)));
    const AttrSet& p = out.schema[parent];
    std::vector<AttrId> parent_attrs = p.ToVector();
    // Choose a (possibly empty) random subset of the parent to share.
    AttrSet r;
    int shared = 0;
    for (AttrId a : parent_attrs) {
      if (rng.Chance(0.5) && shared + 1 < max_arity) {
        r.Insert(a);
        ++shared;
      }
    }
    // Top up with fresh attributes; guarantee non-empty.
    int fresh = static_cast<int>(rng.Range(r.Empty() ? 1 : 0,
                                           std::max<int64_t>(1, max_arity - shared)));
    for (int f = 0; f < fresh; ++f) r.Insert(next_attr++);
    out.schema.Add(r);
    out.tree_edges.emplace_back(i, parent);
  }
  return out;
}

DatabaseSchema RandomSchema(int num_relations, int universe_size,
                            int max_arity, Rng& rng) {
  GYO_CHECK(num_relations >= 1);
  GYO_CHECK(universe_size >= 1);
  GYO_CHECK(max_arity >= 1);
  DatabaseSchema d;
  for (int i = 0; i < num_relations; ++i) {
    int arity = static_cast<int>(
        rng.Range(1, std::min(max_arity, universe_size)));
    AttrSet r;
    while (r.Size() < arity) {
      r.Insert(static_cast<AttrId>(rng.Below(static_cast<uint64_t>(universe_size))));
    }
    d.Add(r);
  }
  return d;
}

DatabaseSchema FattenedRing(int ring, int extra_per_edge, AttrId base) {
  GYO_CHECK_MSG(ring >= 3, "FattenedRing requires ring >= 3");
  GYO_CHECK(extra_per_edge >= 0);
  DatabaseSchema d;
  AttrId next_extra = base + ring;
  for (int i = 0; i < ring; ++i) {
    AttrSet r{base + i, base + (i + 1) % ring};
    for (int k = 0; k < extra_per_edge; ++k) r.Insert(next_extra++);
    d.Add(r);
  }
  return d;
}

}  // namespace gyo
