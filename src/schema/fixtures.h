#ifndef GYO_SCHEMA_FIXTURES_H_
#define GYO_SCHEMA_FIXTURES_H_

#include "schema/catalog.h"
#include "schema/schema.h"

namespace gyo::fixtures {

/// The worked examples and figures of the paper, as reusable fixtures.
/// Each function interns the paper's attribute letters into `catalog` and
/// returns the schema exactly as printed (reconstructions of OCR-garbled
/// figures are noted).

/// Fig. 1 row 1: (ab, bc, cd) — a tree schema (path).
DatabaseSchema Fig1Path(Catalog& catalog);

/// Fig. 1 row 2: (ab, bc, ac) — the triangle; its only qual graph is a
/// 3-cycle, so it is cyclic.
DatabaseSchema Fig1Triangle(Catalog& catalog);

/// Fig. 1 row 3: (abc, cde, ace, afe) — a tree schema with a non-tree qual
/// graph and the tree qual graph abc−ace(−cde)−afe.
DatabaseSchema Fig1Tree(Catalog& catalog);

/// Fig. 2a: the Aring of size 4, (ab, bc, cd, da).
DatabaseSchema Fig2Aring(Catalog& catalog);

/// Fig. 2b: the Aclique of size 4, (bcd, acd, abd, abc).
DatabaseSchema Fig2Aclique(Catalog& catalog);

/// Fig. 2c-style schema whose GYO core after deleting X (returned via
/// `sacred`) and eliminating subsets is an Aring of size 4. The figure in
/// the source scan is OCR-garbled; this is a faithful reconstruction of its
/// structure (Lemma 3.1 witness).
DatabaseSchema Fig2RingBased(Catalog& catalog, AttrSet* deleted);

/// Fig. 2c-style schema reducing to an Aclique of size 4 (reconstruction,
/// see Fig2RingBased).
DatabaseSchema Fig2CliqueBased(Catalog& catalog, AttrSet* deleted);

/// §3.2 example: the 8-ring D = (ab, bc, cd, de, ef, fg, gh, ha).
DatabaseSchema Sec32D(Catalog& catalog);
/// §3.2 example: D'' = (ab, abch, cdgh, defg, ef), a tree projection of D'
/// w.r.t. D.
DatabaseSchema Sec32Dpp(Catalog& catalog);
/// §3.2 example: D' = (abef, abch, cdgh, defg, e).
DatabaseSchema Sec32Dp(Catalog& catalog);

/// §5.1 example: D = (abc, ab, bc); with D' = (ab, bc), ⋈D ⊭ ⋈D'.
DatabaseSchema Sec51D(Catalog& catalog);
/// §5.1 example: D' = (ab, bc).
DatabaseSchema Sec51Dp(Catalog& catalog);

/// §6 example: D = (abg, bcg, acf, ad, de, ea) with target X = abc; the
/// canonical connection is (abg, bcg, ac): relations ad, de, ea are
/// irrelevant and column f is projected out.
DatabaseSchema Sec6D(Catalog& catalog);
/// §6 example target X = abc.
AttrSet Sec6X(Catalog& catalog);
/// §6 example expected CC(D, X) = (abg, bcg, ac).
DatabaseSchema Sec6CC(Catalog& catalog);

}  // namespace gyo::fixtures

#endif  // GYO_SCHEMA_FIXTURES_H_
