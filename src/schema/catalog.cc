#include "schema/catalog.h"

#include <string>

#include "util/check.h"

namespace gyo {

AttrId Catalog::Intern(std::string_view name) {
  GYO_CHECK_MSG(!name.empty(), "attribute names must be non-empty");
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  AttrId id = static_cast<AttrId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

std::optional<AttrId> Catalog::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& Catalog::Name(AttrId id) const {
  GYO_CHECK_MSG(id >= 0 && id < size(), "unknown attribute id %d", id);
  return names_[static_cast<size_t>(id)];
}

AttrSet Catalog::InternAll(std::string_view chars) {
  AttrSet out;
  for (char c : chars) {
    out.Insert(Intern(std::string_view(&c, 1)));
  }
  return out;
}

std::string Catalog::Format(const AttrSet& set) const {
  bool all_single = true;
  set.ForEach([&](AttrId id) {
    if (id >= size() || names_[static_cast<size_t>(id)].size() != 1) {
      all_single = false;
    }
  });
  std::string out;
  bool first = true;
  set.ForEach([&](AttrId id) {
    std::string name =
        id < size() ? names_[static_cast<size_t>(id)] : "#" + std::to_string(id);
    if (all_single) {
      out += name;
    } else {
      if (!first) out += ",";
      out += name;
    }
    first = false;
  });
  if (out.empty()) out = "{}";
  return out;
}

}  // namespace gyo
