#ifndef GYO_SCHEMA_CATALOG_H_
#define GYO_SCHEMA_CATALOG_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/attr_set.h"

namespace gyo {

/// Maps attribute names to dense AttrIds and back.
///
/// The algorithms in this library operate on integer attribute ids; a Catalog
/// is only needed at the boundary (parsing schema specifications, printing
/// results). The paper's compact notation — `ab,bc,cd` where every letter is
/// an attribute — is supported directly via InternAll/Format.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = default;
  Catalog& operator=(const Catalog&) = default;
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  /// Returns the id for `name`, creating it if unseen.
  AttrId Intern(std::string_view name);

  /// Returns the id for `name` if it exists.
  std::optional<AttrId> Find(std::string_view name) const;

  /// Returns the name of an existing id.
  const std::string& Name(AttrId id) const;

  /// Number of attributes interned so far.
  int size() const { return static_cast<int>(names_.size()); }

  /// Interns every character of `chars` as a one-letter attribute and returns
  /// the resulting set. E.g. InternAll("abc") == {a, b, c}.
  AttrSet InternAll(std::string_view chars);

  /// Renders a set in the paper's notation: concatenated when all names are a
  /// single character (e.g. "abc"), comma-separated otherwise.
  std::string Format(const AttrSet& set) const;

 private:
  std::unordered_map<std::string, AttrId> index_;
  std::vector<std::string> names_;
};

}  // namespace gyo

#endif  // GYO_SCHEMA_CATALOG_H_
