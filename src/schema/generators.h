#ifndef GYO_SCHEMA_GENERATORS_H_
#define GYO_SCHEMA_GENERATORS_H_

#include <utility>
#include <vector>

#include "schema/schema.h"
#include "util/rng.h"

namespace gyo {

/// Generators for the schema families used throughout the paper and the
/// benchmark harness. All generators are deterministic given their inputs;
/// attribute ids are dense integers starting at `base` (intern names into a
/// Catalog separately if you need to print).

/// An Aring of size n (§3.1): U = {A1..An}, relations {Ai, Ai+1} cyclically.
/// Requires n >= 3. Arings are cyclic schemas (Lemma 3.1).
DatabaseSchema Aring(int n, AttrId base = 0);

/// An Aclique of size n (§3.1): relations U − {Ai} for each i. Requires
/// n >= 3. Acliques are cyclic schemas (Lemma 3.1).
DatabaseSchema Aclique(int n, AttrId base = 0);

/// A path schema (A1A2, A2A3, ..., An-1An); a tree schema. Requires n >= 2.
DatabaseSchema PathSchema(int n, AttrId base = 0);

/// A star schema ({A0,A1}, {A0,A2}, ..., {A0,An}); a tree schema.
/// Requires n >= 1 leaves.
DatabaseSchema StarSchema(int leaves, AttrId base = 0);

/// A rows×cols grid of binary relations (edges of the grid graph on
/// attribute-vertices); cyclic when rows >= 2 and cols >= 2.
DatabaseSchema GridSchema(int rows, int cols, AttrId base = 0);

/// A random tree (acyclic) schema together with a witnessing join tree.
struct RandomTreeResult {
  DatabaseSchema schema;
  /// Edges (child, parent) of a qual tree for `schema`.
  std::vector<std::pair<int, int>> tree_edges;
};

/// Generates a random tree schema with `num_relations` relations of arity at
/// most `max_arity`, by growing a join tree: each new relation shares a
/// random subset of a random existing relation and adds fresh attributes.
/// Acyclicity holds by construction. Requires num_relations >= 1,
/// max_arity >= 1.
RandomTreeResult RandomTreeSchema(int num_relations, int max_arity, Rng& rng);

/// Generates an arbitrary random schema: `num_relations` uniformly random
/// subsets of a universe of `universe_size` attributes, each of size in
/// [1, max_arity]. May be a tree or cyclic schema.
DatabaseSchema RandomSchema(int num_relations, int universe_size,
                            int max_arity, Rng& rng);

/// Generates a guaranteed-cyclic schema: an Aring of size `ring` whose edges
/// are fattened with `extra_per_edge` fresh attributes each (fresh attributes
/// never create ears, so the ring core survives GYO reduction).
DatabaseSchema FattenedRing(int ring, int extra_per_edge, AttrId base = 0);

}  // namespace gyo

#endif  // GYO_SCHEMA_GENERATORS_H_
