#ifndef GYO_SCHEMA_SCHEMA_H_
#define GYO_SCHEMA_SCHEMA_H_

#include <string>
#include <vector>

#include "schema/catalog.h"
#include "util/attr_set.h"

namespace gyo {

/// A relation schema is a set of attributes; we use AttrSet directly.
using RelationSchema = AttrSet;

/// A database schema: a finite multiset of relation schemas (paper §2).
///
/// The multiset is stored as an ordered vector so relation *indices* are
/// stable; many algorithms (GYO traces, qual graphs, tableaux) refer to
/// relations by index. Value semantics throughout.
class DatabaseSchema {
 public:
  DatabaseSchema() = default;

  /// Wraps an explicit relation list.
  explicit DatabaseSchema(std::vector<RelationSchema> relations)
      : relations_(std::move(relations)) {}

  DatabaseSchema(std::initializer_list<RelationSchema> relations)
      : relations_(relations) {}

  DatabaseSchema(const DatabaseSchema&) = default;
  DatabaseSchema& operator=(const DatabaseSchema&) = default;
  DatabaseSchema(DatabaseSchema&&) = default;
  DatabaseSchema& operator=(DatabaseSchema&&) = default;

  /// Appends a relation schema; returns its index.
  int Add(RelationSchema r) {
    relations_.push_back(std::move(r));
    return static_cast<int>(relations_.size()) - 1;
  }

  /// Number of relation schemas (counting duplicates).
  int NumRelations() const { return static_cast<int>(relations_.size()); }

  /// True iff the schema has no relations.
  bool Empty() const { return relations_.empty(); }

  /// Relation schema at `index`.
  const RelationSchema& Relation(int index) const {
    return relations_[static_cast<size_t>(index)];
  }
  const RelationSchema& operator[](int index) const { return Relation(index); }

  const std::vector<RelationSchema>& Relations() const { return relations_; }

  /// U(D): the union of all relation schemas.
  AttrSet Universe() const;

  /// True iff no relation schema is a subset of another (distinct index),
  /// i.e. the paper's "reduced" property. Duplicates make a schema
  /// non-reduced.
  bool IsReduced() const;

  /// The reduction of D: eliminates relation schemas contained in others and
  /// collapses duplicates to a single copy (paper §2). Keeps the first
  /// occurrence of each surviving set; deterministic.
  DatabaseSchema Reduction() const;

  /// True iff *this ≤ other: every relation of *this is contained in some
  /// relation of `other` (paper §2).
  bool CoveredBy(const DatabaseSchema& other) const;

  /// True iff `r` equals some relation schema of *this.
  bool ContainsRelation(const RelationSchema& r) const;

  /// True iff every relation of *this appears in `other` (as a sub-multiset:
  /// respects multiplicities).
  bool IsSubMultisetOf(const DatabaseSchema& other) const;

  /// Multiset equality (order-insensitive, multiplicity-sensitive).
  bool EqualsAsMultiset(const DatabaseSchema& other) const;

  /// Returns the schema (R − X | R ∈ D); relations that become empty are
  /// kept so indices stay aligned with *this.
  DatabaseSchema DeleteAttributes(const AttrSet& x) const;

  /// Returns the sub-schema with the given relation indices, in order.
  DatabaseSchema Select(const std::vector<int>& indices) const;

  /// Connected components of the "share at least one attribute" graph over
  /// relation indices. Relations with empty schemas form singleton
  /// components. Components are sorted by smallest member.
  std::vector<std::vector<int>> ConnectedComponents() const;

  /// True iff the schema is connected in the sense of §5.2: every pair of
  /// relations is linked by a path of relations with pairwise-intersecting
  /// neighbours. The empty schema and singletons are connected.
  bool IsConnected() const;

  /// Sorts relations into the canonical AttrSet order (stable across runs).
  /// Invalidates externally-held indices.
  void SortCanonical();

  /// Renders the schema in the paper's notation, e.g. "(ab, bc, cd)".
  std::string Format(const Catalog& catalog) const;

  friend bool operator==(const DatabaseSchema& a, const DatabaseSchema& b) {
    return a.relations_ == b.relations_;
  }

 private:
  std::vector<RelationSchema> relations_;
};

}  // namespace gyo

#endif  // GYO_SCHEMA_SCHEMA_H_
