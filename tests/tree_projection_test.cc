#include "query/tree_projection.h"

#include <gtest/gtest.h>

#include "gyo/acyclic.h"
#include "schema/fixtures.h"
#include "schema/generators.h"
#include "schema/parse.h"

namespace gyo {
namespace {

class TreeProjectionTest : public ::testing::Test {
 protected:
  Catalog catalog_;
};

TEST_F(TreeProjectionTest, PaperExampleVerifies) {
  // §3.2: D = 8-ring, D'' = (ab, abch, cdgh, defg, ef), D' = (abef, abch,
  // cdgh, defg, e). D'' ∈ TP(D', D).
  DatabaseSchema d = fixtures::Sec32D(catalog_);
  DatabaseSchema dpp = fixtures::Sec32Dpp(catalog_);
  DatabaseSchema dp = fixtures::Sec32Dp(catalog_);
  EXPECT_TRUE(d.CoveredBy(dpp));
  EXPECT_TRUE(dpp.CoveredBy(dp));
  EXPECT_TRUE(IsTreeSchema(dpp));
  EXPECT_TRUE(IsTreeProjection(dpp, dp, d));
  // Both endpoints are cyclic, as the paper remarks.
  EXPECT_TRUE(IsCyclicSchema(d));
  EXPECT_TRUE(IsCyclicSchema(dp));
}

TEST_F(TreeProjectionTest, PaperExampleSearchFindsAProjection) {
  DatabaseSchema d = fixtures::Sec32D(catalog_);
  DatabaseSchema dp = fixtures::Sec32Dp(catalog_);
  TreeProjectionResult r = FindTreeProjection(dp, d);
  ASSERT_TRUE(r.projection.has_value());
  EXPECT_TRUE(IsTreeProjection(*r.projection, dp, d));
}

TEST_F(TreeProjectionTest, RejectsNonSandwiched) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc");
  DatabaseSchema dp = ParseSchema(catalog_, "abc");
  // dpp missing coverage of bc.
  EXPECT_FALSE(IsTreeProjection(ParseSchema(catalog_, "ab"), dp, d));
  // dpp exceeding dp.
  EXPECT_FALSE(IsTreeProjection(ParseSchema(catalog_, "abcd"), dp, d));
}

TEST_F(TreeProjectionTest, RejectsCyclicMiddle) {
  DatabaseSchema d = Aring(4);
  EXPECT_FALSE(IsTreeProjection(d, d, d));  // the ring itself is cyclic
}

TEST_F(TreeProjectionTest, TrivialWhenDprimeIsTree) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc");
  DatabaseSchema dp = ParseSchema(catalog_, "ab,bc,cd");
  TreeProjectionResult r = FindTreeProjection(dp, d);
  ASSERT_TRUE(r.projection.has_value());
  EXPECT_TRUE(IsTreeProjection(*r.projection, dp, d));
}

TEST_F(TreeProjectionTest, RingWithinItselfHasNoProjection) {
  // D = D' = Aring: any sandwiched D'' must (up to subsets) contain the ring
  // edges, hence be cyclic.
  DatabaseSchema d = Aring(4);
  TreeProjectionResult r = FindTreeProjection(d, d);
  EXPECT_FALSE(r.projection.has_value());
  EXPECT_FALSE(r.exhausted);
}

TEST_F(TreeProjectionTest, RingWithFullUniverseHost) {
  // Adding the full universe as a host always yields a projection.
  DatabaseSchema d = Aring(5);
  DatabaseSchema dp = d;
  dp.Add(d.Universe());
  TreeProjectionResult r = FindTreeProjection(dp, d);
  ASSERT_TRUE(r.projection.has_value());
  EXPECT_TRUE(IsTreeProjection(*r.projection, dp, d));
}

TEST_F(TreeProjectionTest, SixRingWithTwoHalfHosts) {
  // An 8-ring with two "half" hosts abcde and efgha admits a projection
  // (split the ring into two arcs sharing {a, e}).
  DatabaseSchema d = fixtures::Sec32D(catalog_);
  DatabaseSchema dp = ParseSchema(catalog_, "abcde,efgha");
  ASSERT_TRUE(d.CoveredBy(dp));
  TreeProjectionResult r = FindTreeProjection(dp, d);
  ASSERT_TRUE(r.projection.has_value());
  EXPECT_TRUE(IsTreeProjection(*r.projection, dp, d));
}

TEST_F(TreeProjectionTest, QueryFormIncludesTarget) {
  // TP(D', Q) covers X too: pass D ∪ {X}.
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc");
  AttrSet x = ParseAttrSet(catalog_, "ac");
  DatabaseSchema dq = d;
  dq.Add(x);
  DatabaseSchema dp = ParseSchema(catalog_, "abc");
  TreeProjectionResult r = FindTreeProjection(dp, dq);
  ASSERT_TRUE(r.projection.has_value());
  // Some node must contain the target ac.
  bool covered = false;
  for (const RelationSchema& rel : r.projection->Relations()) {
    if (x.IsSubsetOf(rel)) covered = true;
  }
  EXPECT_TRUE(covered);
}

TEST_F(TreeProjectionTest, FoundProjectionsAlwaysVerify) {
  Rng rng(197);
  int found = 0;
  for (int trial = 0; trial < 60; ++trial) {
    DatabaseSchema d = RandomSchema(3 + static_cast<int>(rng.Below(4)),
                                    4 + static_cast<int>(rng.Below(4)),
                                    2, rng);
    // Hosts: pairwise unions of consecutive relations plus a random big one.
    DatabaseSchema dp;
    for (int i = 0; i + 1 < d.NumRelations(); ++i) {
      dp.Add(d[i].Union(d[i + 1]));
    }
    dp.Add(d[d.NumRelations() - 1].Union(d[0]));
    TreeProjectionResult r = FindTreeProjection(dp, d);
    if (r.projection.has_value()) {
      ++found;
      EXPECT_TRUE(IsTreeProjection(*r.projection, dp, d)) << "trial " << trial;
    }
  }
  EXPECT_GE(found, 10);
}

}  // namespace
}  // namespace gyo
