#include "util/attr_set.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace gyo {
namespace {

TEST(AttrSetTest, EmptySet) {
  AttrSet s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Size(), 0);
  EXPECT_FALSE(s.Contains(0));
  EXPECT_FALSE(s.Contains(100));
}

TEST(AttrSetTest, InsertContains) {
  AttrSet s;
  s.Insert(3);
  s.Insert(70);  // crosses a word boundary
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(70));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.Size(), 2);
}

TEST(AttrSetTest, InsertIdempotent) {
  AttrSet s;
  s.Insert(5);
  s.Insert(5);
  EXPECT_EQ(s.Size(), 1);
}

TEST(AttrSetTest, EraseShrinksRepresentation) {
  AttrSet s{200};
  AttrSet empty;
  s.Erase(200);
  EXPECT_EQ(s, empty);  // trailing zero words must not break equality
  EXPECT_TRUE(s.Empty());
}

TEST(AttrSetTest, EraseAbsentIsNoop) {
  AttrSet s{1, 2};
  s.Erase(99);
  EXPECT_EQ(s.Size(), 2);
}

TEST(AttrSetTest, InitializerList) {
  AttrSet s{1, 5, 9};
  EXPECT_EQ(s.ToVector(), (std::vector<AttrId>{1, 5, 9}));
}

TEST(AttrSetTest, SubsetBasics) {
  AttrSet a{1, 2};
  AttrSet b{1, 2, 3};
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
  EXPECT_TRUE(a.IsProperSubsetOf(b));
  EXPECT_FALSE(a.IsProperSubsetOf(a));
  EXPECT_TRUE(AttrSet().IsSubsetOf(a));
}

TEST(AttrSetTest, SubsetAcrossWordBoundaries) {
  AttrSet a{1, 100};
  AttrSet b{1};
  EXPECT_FALSE(a.IsSubsetOf(b));
  EXPECT_TRUE(b.IsSubsetOf(a));
}

TEST(AttrSetTest, Intersects) {
  AttrSet a{1, 2};
  AttrSet b{2, 3};
  AttrSet c{4};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_FALSE(AttrSet().Intersects(a));
}

TEST(AttrSetTest, UnionIntersectMinus) {
  AttrSet a{1, 2, 3};
  AttrSet b{3, 4};
  EXPECT_EQ(a.Union(b), (AttrSet{1, 2, 3, 4}));
  EXPECT_EQ(a.Intersect(b), (AttrSet{3}));
  EXPECT_EQ(a.Minus(b), (AttrSet{1, 2}));
  EXPECT_EQ(b.Minus(a), (AttrSet{4}));
}

TEST(AttrSetTest, InPlaceOps) {
  AttrSet a{1, 2};
  a.UnionWith(AttrSet{3});
  EXPECT_EQ(a, (AttrSet{1, 2, 3}));
  a.IntersectWith(AttrSet{2, 3, 4});
  EXPECT_EQ(a, (AttrSet{2, 3}));
  a.MinusWith(AttrSet{3});
  EXPECT_EQ(a, (AttrSet{2}));
}

TEST(AttrSetTest, MinAndForEachOrder) {
  AttrSet s{9, 2, 77};
  EXPECT_EQ(s.Min(), 2);
  std::vector<AttrId> seen;
  s.ForEach([&](AttrId a) { seen.push_back(a); });
  EXPECT_EQ(seen, (std::vector<AttrId>{2, 9, 77}));
}

TEST(AttrSetTest, OrderingIsStrictWeak) {
  std::vector<AttrSet> sets = {AttrSet{}, AttrSet{0}, AttrSet{1},
                               AttrSet{0, 1}, AttrSet{64}, AttrSet{0, 64}};
  std::sort(sets.begin(), sets.end());
  for (size_t i = 0; i + 1 < sets.size(); ++i) {
    EXPECT_TRUE(sets[i] < sets[i + 1] || sets[i] == sets[i + 1]);
    EXPECT_FALSE(sets[i + 1] < sets[i]);
  }
}

TEST(AttrSetTest, OrderingConsistentWithEquality) {
  AttrSet a{1, 65};
  AttrSet b{1, 65};
  EXPECT_FALSE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_EQ(a, b);
}

TEST(AttrSetTest, HashEqualForEqualSets) {
  AttrSet a{1, 130};
  AttrSet b;
  b.Insert(130);
  b.Insert(1);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(AttrSetTest, HashAfterEraseMatchesFreshSet) {
  AttrSet a{1, 200};
  a.Erase(200);
  EXPECT_EQ(a.Hash(), AttrSet{1}.Hash());
}

TEST(AttrSetTest, RandomizedAgainstStdSet) {
  Rng rng(7);
  AttrSet s;
  std::set<AttrId> ref;
  for (int step = 0; step < 2000; ++step) {
    AttrId a = static_cast<AttrId>(rng.Below(300));
    if (rng.Chance(0.5)) {
      s.Insert(a);
      ref.insert(a);
    } else {
      s.Erase(a);
      ref.erase(a);
    }
  }
  std::vector<AttrId> ref_vec(ref.begin(), ref.end());
  EXPECT_EQ(s.ToVector(), ref_vec);
  EXPECT_EQ(s.Size(), static_cast<int>(ref.size()));
}

TEST(AttrSetTest, NotEqualsAgreesWithEquals) {
  AttrSet empty;
  AttrSet a{1, 2};
  AttrSet b{1, 2};
  AttrSet c{1, 3};
  EXPECT_FALSE(empty != AttrSet{});
  EXPECT_FALSE(a != b);
  EXPECT_TRUE(a != c);
  EXPECT_TRUE(a != empty);
  EXPECT_TRUE(empty != a);
}

TEST(AttrSetTest, NotEqualsIgnoresRepresentation) {
  // A set that grew past a word boundary and shrank back must not compare
  // different from one that never grew.
  AttrSet grown{1, 200};
  grown.Erase(200);
  AttrSet plain{1};
  EXPECT_FALSE(grown != plain);
}

TEST(AttrSetTest, ProperSubsetEmptySets) {
  AttrSet empty;
  EXPECT_FALSE(empty.IsProperSubsetOf(AttrSet{}));  // ∅ ⊄ ∅
  EXPECT_TRUE(empty.IsProperSubsetOf(AttrSet{0}));
  EXPECT_FALSE(AttrSet{0}.IsProperSubsetOf(empty));
}

TEST(AttrSetTest, ProperSubsetEqualSets) {
  AttrSet a{2, 5, 70};
  AttrSet b{2, 5, 70};
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(a.IsProperSubsetOf(b));
  EXPECT_FALSE(b.IsProperSubsetOf(a));
}

TEST(AttrSetTest, ProperSubsetAcrossWordBoundary) {
  // Subset differs only in a bit beyond the smaller set's last word.
  AttrSet small{3, 40};
  AttrSet big{3, 40, 130};
  EXPECT_TRUE(small.IsProperSubsetOf(big));
  EXPECT_FALSE(big.IsProperSubsetOf(small));
  // Incomparable sets split across different words.
  AttrSet lo{3};
  AttrSet hi{130};
  EXPECT_FALSE(lo.IsProperSubsetOf(hi));
  EXPECT_FALSE(hi.IsProperSubsetOf(lo));
}

TEST(AttrSetTest, RandomizedSetAlgebraAgainstStdSet) {
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    AttrSet a;
    AttrSet b;
    std::set<AttrId> ra;
    std::set<AttrId> rb;
    for (int i = 0; i < 20; ++i) {
      AttrId x = static_cast<AttrId>(rng.Below(100));
      AttrId y = static_cast<AttrId>(rng.Below(100));
      a.Insert(x);
      ra.insert(x);
      b.Insert(y);
      rb.insert(y);
    }
    std::set<AttrId> runion;
    std::set<AttrId> rinter;
    std::set<AttrId> rminus;
    std::set_union(ra.begin(), ra.end(), rb.begin(), rb.end(),
                   std::inserter(runion, runion.begin()));
    std::set_intersection(ra.begin(), ra.end(), rb.begin(), rb.end(),
                          std::inserter(rinter, rinter.begin()));
    std::set_difference(ra.begin(), ra.end(), rb.begin(), rb.end(),
                        std::inserter(rminus, rminus.begin()));
    EXPECT_EQ(a.Union(b).ToVector(),
              std::vector<AttrId>(runion.begin(), runion.end()));
    EXPECT_EQ(a.Intersect(b).ToVector(),
              std::vector<AttrId>(rinter.begin(), rinter.end()));
    EXPECT_EQ(a.Minus(b).ToVector(),
              std::vector<AttrId>(rminus.begin(), rminus.end()));
    EXPECT_EQ(a.Intersects(b), !rinter.empty());
    EXPECT_EQ(a.IsSubsetOf(b),
              std::includes(rb.begin(), rb.end(), ra.begin(), ra.end()));
  }
}

}  // namespace
}  // namespace gyo
