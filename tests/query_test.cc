#include "query/query.h"

#include <gtest/gtest.h>

#include "rel/universal.h"
#include "schema/fixtures.h"
#include "schema/generators.h"
#include "schema/parse.h"
#include "rel/ops.h"
#include "util/rng.h"

namespace gyo {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  Catalog catalog_;
};

TEST_F(QueryTest, Sec6SubdatabaseSolves) {
  // §6: (D, abc) is solvable from (abg, bcg, π_ac(acf)) alone.
  DatabaseSchema d = fixtures::Sec6D(catalog_);
  AttrSet x = fixtures::Sec6X(catalog_);
  EXPECT_TRUE(SolvableByJoinProject(d, x, fixtures::Sec6CC(catalog_)));
  // The first three original relations also suffice (they cover the CC).
  EXPECT_TRUE(SolvableByJoinProject(d, x, ParseSchema(catalog_, "abg,bcg,acf")));
  // Dropping bcg breaks it.
  EXPECT_FALSE(SolvableByJoinProject(d, x, ParseSchema(catalog_, "abg,acf")));
}

TEST_F(QueryTest, WeakEquivalenceOfDAndItsCC) {
  DatabaseSchema d = fixtures::Sec6D(catalog_);
  AttrSet x = fixtures::Sec6X(catalog_);
  EXPECT_TRUE(WeaklyEquivalent(d, fixtures::Sec6CC(catalog_), x));
}

TEST_F(QueryTest, WeakEquivalenceRejectsDifferentQueries) {
  DatabaseSchema d1 = ParseSchema(catalog_, "ab,bc");
  DatabaseSchema d2 = ParseSchema(catalog_, "abc");
  EXPECT_FALSE(WeaklyEquivalent(d1, d2, ParseAttrSet(catalog_, "abc")));
}

TEST_F(QueryTest, WeakEquivalenceReflexive) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,ca");
  EXPECT_TRUE(WeaklyEquivalent(d, d, ParseAttrSet(catalog_, "ab")));
}

TEST_F(QueryTest, SolvabilityValidatedOnRandomURDatabases) {
  // Theorem 4.1, empirically: if CC(D,X) ≤ D' then joining D' and projecting
  // gives the same answer as joining all of D, on UR databases.
  Rng rng(163);
  for (int trial = 0; trial < 40; ++trial) {
    DatabaseSchema d = RandomSchema(2 + static_cast<int>(rng.Below(4)),
                                    2 + static_cast<int>(rng.Below(5)),
                                    1 + static_cast<int>(rng.Below(4)), rng);
    AttrSet x;
    d.Universe().ForEach([&](AttrId a) {
      if (rng.Chance(0.4)) x.Insert(a);
    });
    // Candidate D': a random subset of D's relations.
    std::vector<int> indices;
    for (int i = 0; i < d.NumRelations(); ++i) {
      if (rng.Chance(0.6)) indices.push_back(i);
    }
    if (indices.empty()) continue;
    DatabaseSchema dprime = d.Select(indices);
    if (!x.IsSubsetOf(dprime.Universe())) continue;
    bool solvable = SolvableByJoinProject(d, x, dprime);

    bool agrees = true;
    for (int rep = 0; rep < 5 && agrees; ++rep) {
      Relation universal = RandomUniversal(
          d.Universe(), 1 + static_cast<int>(rng.Below(25)),
          2 + static_cast<int>(rng.Below(3)), rng);
      std::vector<Relation> states = ProjectDatabase(universal, d);
      Relation full = EvaluateJoinQuery(d, x, states);
      std::vector<Relation> sub_states = ProjectDatabase(universal, dprime);
      Relation sub = EvaluateJoinQuery(dprime, x, sub_states);
      if (!full.EqualsAsSet(sub)) agrees = false;
    }
    // Solvable ⇒ every UR database agrees. (The converse may fail on a small
    // sample, so only the sound direction is asserted.)
    if (solvable) {
      EXPECT_TRUE(agrees) << "trial " << trial;
    }
  }
}

TEST_F(QueryTest, URAssumptionCollapsesProjectionQueries) {
  // A striking consequence of the UR assumption: on the triangle with
  // X = ab, CC(D, X) = (ab) — the single relation ab already solves the
  // query, because π_ab(⋈D) = π_ab(I) = R1 on every UR database.
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,ca");
  AttrSet x = ParseAttrSet(catalog_, "ab");
  CanonicalResult cc = CanonicalConnection(d, x);
  EXPECT_TRUE(cc.schema.EqualsAsMultiset(ParseSchema(catalog_, "ab")));
  EXPECT_TRUE(SolvableByJoinProject(d, x, ParseSchema(catalog_, "ab")));
}

TEST_F(QueryTest, NecessityOnTheTriangle) {
  // With X = abc the canonical connection is the whole triangle: no proper
  // subset solves the query.
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,ca");
  AttrSet x = ParseAttrSet(catalog_, "abc");
  EXPECT_TRUE(SolvableByJoinProject(d, x, d));
  EXPECT_FALSE(SolvableByJoinProject(d, x, ParseSchema(catalog_, "ab,bc")));
  EXPECT_FALSE(SolvableByJoinProject(d, x, ParseSchema(catalog_, "ab")));
}

TEST_F(QueryTest, NecessityWitnessedByACounterexampleDatabase) {
  // Concrete counterexample: on the triangle, π_abc(⋈D) ≠ ab ⋈ bc for some
  // UR database. Find one.
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,ca");
  DatabaseSchema dprime = ParseSchema(catalog_, "ab,bc");
  AttrSet x = ParseAttrSet(catalog_, "abc");
  Rng rng(167);
  bool found_gap = false;
  for (int rep = 0; rep < 200 && !found_gap; ++rep) {
    Relation universal = RandomUniversal(d.Universe(), 6, 2, rng);
    Relation full =
        EvaluateJoinQuery(d, x, ProjectDatabase(universal, d));
    Relation sub =
        EvaluateJoinQuery(dprime, x, ProjectDatabase(universal, dprime));
    if (!full.EqualsAsSet(sub)) found_gap = true;
  }
  EXPECT_TRUE(found_gap);
}

TEST_F(QueryTest, RelevantSubdatabaseMatchesCanonicalConnection) {
  DatabaseSchema d = fixtures::Sec6D(catalog_);
  AttrSet x = fixtures::Sec6X(catalog_);
  CanonicalResult a = RelevantSubdatabase(d, x);
  CanonicalResult b = CanonicalConnection(d, x);
  EXPECT_TRUE(a.schema.EqualsAsMultiset(b.schema));
}

}  // namespace
}  // namespace gyo
