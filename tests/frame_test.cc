// serve/frame: primitive codec round trips, message round trips, and —
// the part that keeps a network daemon alive — rejection of malformed,
// truncated, oversized, and hostile input as a typed `false`, never a
// crash. These run in the CI ThreadSanitizer suite.

#include "serve/frame.h"

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "rel/universal.h"
#include "schema/parse.h"
#include "util/rng.h"

namespace gyo {
namespace serve {
namespace {

// Strips the 4-byte header and the type byte, checking both along the way —
// what the server's dispatch does to every encoder's output.
std::vector<uint8_t> Body(const std::vector<uint8_t>& frame, FrameType type) {
  EXPECT_GE(frame.size(), kFrameHeaderBytes + 1);
  const uint32_t len = static_cast<uint32_t>(frame[0]) |
                       static_cast<uint32_t>(frame[1]) << 8 |
                       static_cast<uint32_t>(frame[2]) << 16 |
                       static_cast<uint32_t>(frame[3]) << 24;
  EXPECT_EQ(len, frame.size() - kFrameHeaderBytes);
  EXPECT_EQ(frame[kFrameHeaderBytes], static_cast<uint8_t>(type));
  return std::vector<uint8_t>(frame.begin() + kFrameHeaderBytes + 1,
                              frame.end());
}

TEST(FrameCodecTest, VarintAndZigzagRoundTripEdgeValues) {
  const uint64_t unsigned_cases[] = {
      0, 1, 127, 128, 300, (1ull << 32) - 1, (1ull << 63),
      std::numeric_limits<uint64_t>::max()};
  const int64_t signed_cases[] = {
      0, 1, -1, 63, -64, 64, -65,
      std::numeric_limits<int64_t>::max(),
      std::numeric_limits<int64_t>::min()};
  Writer w;
  for (uint64_t v : unsigned_cases) w.Varint(v);
  for (int64_t v : signed_cases) w.Zigzag(v);
  w.Str("hello");
  w.F64(-2.5);
  w.Begin(FrameType::kError);  // clears; reuse the writer for the payload
  for (uint64_t v : unsigned_cases) w.Varint(v);
  for (int64_t v : signed_cases) w.Zigzag(v);
  w.Str("hello");
  w.F64(-2.5);
  std::vector<uint8_t> frame = w.Finish();
  std::vector<uint8_t> body = Body(frame, FrameType::kError);

  Reader r(body.data(), body.size());
  for (uint64_t expected : unsigned_cases) {
    uint64_t v = 1;
    ASSERT_TRUE(r.Varint(&v));
    EXPECT_EQ(v, expected);
  }
  for (int64_t expected : signed_cases) {
    int64_t v = 1;
    ASSERT_TRUE(r.Zigzag(&v));
    EXPECT_EQ(v, expected);
  }
  std::string s;
  ASSERT_TRUE(r.Str(&s));
  EXPECT_EQ(s, "hello");
  double d = 0;
  ASSERT_TRUE(r.F64(&d));
  EXPECT_EQ(d, -2.5);
  EXPECT_TRUE(r.AtEnd());
}

TEST(FrameCodecTest, ReaderRejectsTruncationAndOverlongVarints) {
  // Truncated varint: a lone continuation byte.
  {
    const uint8_t bytes[] = {0x80};
    Reader r(bytes, sizeof(bytes));
    uint64_t v;
    EXPECT_FALSE(r.Varint(&v));
    EXPECT_FALSE(r.ok());
  }
  // 11-byte varint (too many continuations).
  {
    std::vector<uint8_t> bytes(11, 0x80);
    Reader r(bytes.data(), bytes.size());
    uint64_t v;
    EXPECT_FALSE(r.Varint(&v));
  }
  // 10th byte carrying more than the u64's top bit.
  {
    std::vector<uint8_t> bytes(9, 0x80);
    bytes.push_back(0x02);
    Reader r(bytes.data(), bytes.size());
    uint64_t v;
    EXPECT_FALSE(r.Varint(&v));
  }
  // String length past the end.
  {
    const uint8_t bytes[] = {0x05, 'a', 'b'};
    Reader r(bytes, sizeof(bytes));
    std::string s;
    EXPECT_FALSE(r.Str(&s));
  }
  // A poisoned reader stays poisoned.
  {
    const uint8_t bytes[] = {0x80, 0x01, 0x01};
    Reader r(bytes, 1);
    uint64_t v;
    EXPECT_FALSE(r.Varint(&v));
    uint8_t b;
    EXPECT_FALSE(r.U8(&b));
  }
}

TEST(FrameCodecTest, RelationDataRoundTripsBitIdentically) {
  Catalog catalog;
  DatabaseSchema schema = ParseSchema(catalog, "ab,bc");
  Rng rng(11);
  Relation original = RandomUniversal(schema.Relation(0), 50, 9, rng);

  Writer w;
  w.Begin(FrameType::kError);
  w.RelationData(original);
  std::vector<uint8_t> body = Body(w.Finish(), FrameType::kError);

  Reader r(body.data(), body.size());
  Relation decoded{AttrSet()};
  ASSERT_TRUE(r.RelationData(schema.Relation(0), &decoded));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(original.IdenticalTo(decoded));
  EXPECT_EQ(original.IsCanonical(), decoded.IsCanonical());
}

TEST(FrameCodecTest, RelationDataRejectsHostileClaims) {
  Catalog catalog;
  DatabaseSchema schema = ParseSchema(catalog, "ab");
  const AttrSet rel = schema.Relation(0);

  // Arity mismatch with the schema.
  {
    Writer w;
    w.Begin(FrameType::kError);
    w.Varint(3);  // claimed arity; the schema says 2
    w.U8(0);
    w.Varint(0);
    std::vector<uint8_t> body = Body(w.Finish(), FrameType::kError);
    Reader r(body.data(), body.size());
    Relation out{AttrSet()};
    EXPECT_FALSE(r.RelationData(rel, &out));
  }
  // A row count far beyond the bytes present must be rejected before any
  // allocation (every value is at least one wire byte).
  {
    Writer w;
    w.Begin(FrameType::kError);
    w.Varint(2);
    w.U8(0);
    w.Varint(1ull << 40);  // ~10^12 rows announced, 0 bytes follow
    std::vector<uint8_t> body = Body(w.Finish(), FrameType::kError);
    Reader r(body.data(), body.size());
    Relation out{AttrSet()};
    EXPECT_FALSE(r.RelationData(rel, &out));
  }
  // A false canonical claim (rows out of order) is malformed input: the
  // decoder verifies rather than trusts, so downstream set semantics and
  // debug assertions stay safe.
  {
    Writer w;
    w.Begin(FrameType::kError);
    w.Varint(2);
    w.U8(1);    // claims canonical
    w.Varint(2);
    w.Zigzag(9);  // column a: 9, 1 — not ascending
    w.Zigzag(1);
    w.Zigzag(0);  // column b
    w.Zigzag(0);
    std::vector<uint8_t> body = Body(w.Finish(), FrameType::kError);
    Reader r(body.data(), body.size());
    Relation out{AttrSet()};
    EXPECT_FALSE(r.RelationData(rel, &out));
  }
  // The same rows without the claim decode fine.
  {
    Writer w;
    w.Begin(FrameType::kError);
    w.Varint(2);
    w.U8(0);
    w.Varint(2);
    w.Zigzag(9);
    w.Zigzag(1);
    w.Zigzag(0);
    w.Zigzag(0);
    std::vector<uint8_t> body = Body(w.Finish(), FrameType::kError);
    Reader r(body.data(), body.size());
    Relation out{AttrSet()};
    EXPECT_TRUE(r.RelationData(rel, &out));
    EXPECT_EQ(out.NumRows(), 2);
    EXPECT_FALSE(out.IsCanonical());
  }
}

TEST(FrameCodecTest, QueryRequestRoundTrips) {
  Catalog build_catalog;
  DatabaseSchema schema = ParseSchema(build_catalog, "ab,bc,cd");
  Rng rng(3);
  Relation universal = RandomUniversal(schema.Universe(), 40, 7, rng);

  QueryRequest request;
  request.schema_spec = "ab,bc,cd";
  request.target_spec = "ad";
  request.strategy = Strategy::kYannakakis;
  request.deadline_ms = 250;
  request.submitter = 42;
  request.deterministic = true;
  request.want_plan = true;
  request.states = ProjectDatabase(universal, schema);
  std::vector<uint8_t> frame = EncodeQueryRequest(request);
  std::vector<uint8_t> body = Body(frame, FrameType::kQueryRequest);

  Catalog catalog;
  QueryRequest decoded;
  DatabaseSchema decoded_schema;
  AttrSet target;
  std::string error;
  ASSERT_TRUE(DecodeQueryRequest(body.data(), body.size(), catalog, &decoded,
                                 &decoded_schema, &target, &error))
      << error;
  EXPECT_EQ(decoded.schema_spec, request.schema_spec);
  EXPECT_EQ(decoded.strategy, Strategy::kYannakakis);
  EXPECT_EQ(decoded.deadline_ms, 250u);
  EXPECT_EQ(decoded.submitter, 42u);
  EXPECT_TRUE(decoded.deterministic);
  EXPECT_TRUE(decoded.want_plan);
  EXPECT_EQ(decoded_schema.NumRelations(), 3);
  ASSERT_EQ(decoded.states.size(), request.states.size());
  for (size_t i = 0; i < request.states.size(); ++i) {
    EXPECT_TRUE(request.states[i].IdenticalTo(decoded.states[i]))
        << "state " << i;
  }
}

TEST(FrameCodecTest, QueryRequestRejectsMalformedInput) {
  Catalog build_catalog;
  DatabaseSchema schema = ParseSchema(build_catalog, "ab,bc");
  Rng rng(5);
  QueryRequest request;
  request.schema_spec = "ab,bc";
  request.target_spec = "ac";
  request.states = ProjectDatabase(
      RandomUniversal(schema.Universe(), 10, 5, rng), schema);
  std::vector<uint8_t> frame = EncodeQueryRequest(request);
  std::vector<uint8_t> body = Body(frame, FrameType::kQueryRequest);

  Catalog catalog;
  QueryRequest decoded;
  DatabaseSchema decoded_schema;
  AttrSet target;
  std::string error;

  // Every truncation point of a valid request must fail cleanly. This walks
  // all of them, which is cheap at this body size.
  for (size_t cut = 0; cut < body.size(); ++cut) {
    EXPECT_FALSE(DecodeQueryRequest(body.data(), cut, catalog, &decoded,
                                    &decoded_schema, &target, &error))
        << "decoded a prefix of " << cut << " bytes";
  }
  // Trailing garbage is also malformed — a frame is exactly one message.
  std::vector<uint8_t> padded = body;
  padded.push_back(0);
  EXPECT_FALSE(DecodeQueryRequest(padded.data(), padded.size(), catalog,
                                  &decoded, &decoded_schema, &target,
                                  &error));
  // Unknown strategy byte.
  std::vector<uint8_t> bad = body;
  // Layout: str schema (1+5), str target (1+2), strategy byte next.
  bad[9] = 200;
  EXPECT_FALSE(DecodeQueryRequest(bad.data(), bad.size(), catalog, &decoded,
                                  &decoded_schema, &target, &error));

  // Schema specs the CLI parser would abort on must come back as errors.
  QueryRequest empty_rel = request;
  empty_rel.schema_spec = "ab,,bc";
  empty_rel.states.clear();
  frame = EncodeQueryRequest(empty_rel);
  body = Body(frame, FrameType::kQueryRequest);
  EXPECT_FALSE(DecodeQueryRequest(body.data(), body.size(), catalog, &decoded,
                                  &decoded_schema, &target, &error));
  EXPECT_EQ(error, "empty relation in schema spec");
}

TEST(FrameCodecTest, QueryRequestRejectsTargetOutsideSchemaUniverse) {
  // A parseable target whose attributes are not all in the schema would
  // abort downstream (program construction GYO_CHECKs target ⊆ universe);
  // the decoder must reject it as malformed input instead.
  Catalog build_catalog;
  DatabaseSchema schema = ParseSchema(build_catalog, "ab,bc");
  Rng rng(13);
  QueryRequest request;
  request.schema_spec = "ab,bc";
  request.target_spec = "az";  // 'z' appears in no relation
  request.states = ProjectDatabase(
      RandomUniversal(schema.Universe(), 10, 5, rng), schema);
  std::vector<uint8_t> body =
      Body(EncodeQueryRequest(request), FrameType::kQueryRequest);

  Catalog catalog;
  QueryRequest decoded;
  DatabaseSchema decoded_schema;
  AttrSet target;
  std::string error;
  EXPECT_FALSE(DecodeQueryRequest(body.data(), body.size(), catalog, &decoded,
                                  &decoded_schema, &target, &error));
  EXPECT_EQ(error, "target attribute outside the schema universe");
}

TEST(FrameCodecTest, WriterRefusesToEmitAFrameBeyondItsPayloadCap) {
  Writer w;
  w.LimitPayload(16);
  w.Begin(FrameType::kError);
  w.Str("this string does not fit in sixteen payload bytes");
  EXPECT_TRUE(w.Overflowed());
  EXPECT_TRUE(w.Finish().empty());

  // The cap survives Begin(), and a fitting payload still encodes.
  w.Begin(FrameType::kError);
  w.Str("ok");
  EXPECT_FALSE(w.Overflowed());
  EXPECT_FALSE(w.Finish().empty());

  // Encoders surface the cap as an empty frame, which the server replaces
  // with a typed kInternal error rather than a lying length prefix.
  Catalog catalog;
  QueryResponse response;
  response.result = Relation(ParseAttrSet(catalog, "ab"));
  for (int i = 0; i < 100; ++i) response.result.AddRow({i, i});
  EXPECT_TRUE(EncodeQueryResponse(response, 64).empty());
  EXPECT_FALSE(EncodeQueryResponse(response).empty());
}

TEST(FrameCodecTest, QueryResponseRoundTrips) {
  Catalog catalog;
  const AttrSet target = ParseAttrSet(catalog, "ad");
  QueryResponse response;
  response.result = Relation(target);
  response.result.AddRow({1, 2});
  response.result.AddRow({3, 4});
  response.result.MarkCanonical();
  response.stats.max_intermediate_rows = 100;
  response.stats.total_rows_produced = 123;
  response.stats.result_rows = 2;
  response.query_stats.queue_wait_seconds = 0.25;
  response.query_stats.run_time_seconds = 1.5;
  response.query_stats.tasks = 8;
  response.query_stats.tasks_stolen = 3;
  response.query_stats.queue_depth_at_admit = 4;
  response.has_plan = true;
  response.plan.num_statements = 8;
  response.plan.critical_path = 7;
  response.plan.num_source_statements = 1;
  response.plan.strategy = Strategy::kYannakakis;

  std::vector<uint8_t> body =
      Body(EncodeQueryResponse(response), FrameType::kQueryResponse);
  QueryResponse decoded;
  std::string error;
  ASSERT_TRUE(DecodeQueryResponse(body.data(), body.size(), target, &decoded,
                                  &error))
      << error;
  EXPECT_TRUE(response.result.IdenticalTo(decoded.result));
  EXPECT_EQ(decoded.stats.max_intermediate_rows, 100);
  EXPECT_EQ(decoded.stats.result_rows, 2);
  EXPECT_EQ(decoded.query_stats.queue_wait_seconds, 0.25);
  EXPECT_EQ(decoded.query_stats.run_time_seconds, 1.5);
  EXPECT_EQ(decoded.query_stats.tasks, 8);
  EXPECT_EQ(decoded.query_stats.tasks_stolen, 3);
  EXPECT_EQ(decoded.query_stats.queue_depth_at_admit, 4);
  ASSERT_TRUE(decoded.has_plan);
  EXPECT_EQ(decoded.plan.num_statements, 8);
  EXPECT_EQ(decoded.plan.critical_path, 7);
  EXPECT_EQ(decoded.plan.strategy, Strategy::kYannakakis);
}

TEST(FrameCodecTest, StatusResponseRoundTrips) {
  StatusResponse status;
  status.pool.threads = 4;
  status.pool.max_concurrent_queries = 2;
  status.pool.running = 2;
  status.pool.waiting = 3;
  status.pool.submitters.push_back({7, 1, 0});
  status.pool.submitters.push_back({9, 1, 3});
  status.connections_accepted = 10;
  status.connections_active = 4;
  status.queries_served = 25;
  status.queries_shed_deadline = 2;
  status.queries_shed_backlog = 1;
  status.protocol_errors = 3;
  status.draining = true;
  status.tasks_stolen = 17;
  status.affinity_hits = 40;
  status.affinity_misses = 5;

  std::vector<uint8_t> body =
      Body(EncodeStatusResponse(status), FrameType::kStatusResponse);
  StatusResponse decoded;
  std::string error;
  ASSERT_TRUE(
      DecodeStatusResponse(body.data(), body.size(), &decoded, &error))
      << error;
  EXPECT_EQ(decoded.pool.threads, 4);
  EXPECT_EQ(decoded.pool.waiting, 3);
  ASSERT_EQ(decoded.pool.submitters.size(), 2u);
  EXPECT_EQ(decoded.pool.submitters[1].id, 9u);
  EXPECT_EQ(decoded.pool.submitters[1].waiting, 3);
  EXPECT_EQ(decoded.queries_served, 25u);
  EXPECT_EQ(decoded.queries_shed_deadline, 2u);
  EXPECT_TRUE(decoded.draining);
  EXPECT_EQ(decoded.affinity_hits, 40u);

  // A submitter count that promises more entries than the bytes on hand
  // fails before any allocation.
  std::vector<uint8_t> lying = body;
  lying[4] = 0x7f;  // pool header is five 1-byte varints; last is the count
  EXPECT_FALSE(
      DecodeStatusResponse(lying.data(), lying.size(), &decoded, &error));
}

TEST(FrameCodecTest, ErrorFrameRoundTripsAndValidates) {
  std::vector<uint8_t> body = Body(
      EncodeError(ErrorCode::kDeadlineExceeded, "too slow"), FrameType::kError);
  ErrorReply reply;
  std::string error;
  ASSERT_TRUE(DecodeError(body.data(), body.size(), &reply, &error)) << error;
  EXPECT_EQ(reply.code, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(reply.message, "too slow");
  EXPECT_STREQ(ErrorCodeName(reply.code), "deadline_exceeded");

  // Out-of-range code byte.
  std::vector<uint8_t> bad = body;
  bad[0] = 99;
  EXPECT_FALSE(DecodeError(bad.data(), bad.size(), &reply, &error));
}

TEST(FrameCodecTest, SafeParseRejectsWhatTheCliParserAbortsOn) {
  Catalog catalog;
  DatabaseSchema schema;
  AttrSet target;
  std::string error;
  EXPECT_FALSE(SafeParseSchema(catalog, "", &schema, &error));
  EXPECT_FALSE(SafeParseSchema(catalog, "ab,,cd", &schema, &error));
  EXPECT_FALSE(SafeParseSchema(catalog, ",ab", &schema, &error));
  EXPECT_FALSE(SafeParseSchema(catalog, "ab, \t ,cd", &schema, &error));
  EXPECT_FALSE(SafeParseAttrSet(catalog, "", &target, &error));
  EXPECT_FALSE(SafeParseAttrSet(catalog, "  ", &target, &error));
  EXPECT_TRUE(SafeParseSchema(catalog, "ab,bc,cd", &schema, &error));
  EXPECT_EQ(schema.NumRelations(), 3);
  EXPECT_TRUE(SafeParseAttrSet(catalog, "ad", &target, &error));
  EXPECT_EQ(target.Size(), 2);

  // The wire parser additionally bounds spec size and relation count so a
  // small hostile frame cannot force a huge parse.
  std::string huge(100000, 'a');
  EXPECT_FALSE(SafeParseSchema(catalog, huge, &schema, &error));
  std::string many = "ab";
  for (int i = 0; i < 2000; ++i) many += ",ab";
  EXPECT_FALSE(SafeParseSchema(catalog, many, &schema, &error));
}

}  // namespace
}  // namespace serve
}  // namespace gyo
