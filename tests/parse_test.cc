#include "schema/parse.h"

#include <gtest/gtest.h>

namespace gyo {
namespace {

TEST(ParseTest, CompactNotation) {
  Catalog c;
  DatabaseSchema d = ParseSchema(c, "ab,bc,cd");
  ASSERT_EQ(d.NumRelations(), 3);
  EXPECT_EQ(d[0].Size(), 2);
  EXPECT_EQ(d.Universe().Size(), 4);
}

TEST(ParseTest, CompactWithSurroundingSpaces) {
  Catalog c;
  DatabaseSchema d = ParseSchema(c, " ab , bc ");
  ASSERT_EQ(d.NumRelations(), 2);
  EXPECT_EQ(d[0], c.InternAll("ab"));
}

TEST(ParseTest, NamedAttributes) {
  Catalog c;
  DatabaseSchema d = ParseSchema(c, "part supplier, supplier city");
  ASSERT_EQ(d.NumRelations(), 2);
  EXPECT_EQ(d.Universe().Size(), 3);
  EXPECT_TRUE(d[0].Contains(*c.Find("part")));
  EXPECT_TRUE(d[1].Contains(*c.Find("city")));
  EXPECT_TRUE(d[0].Intersects(d[1]));  // shared "supplier"
}

TEST(ParseTest, SharedCatalogAcrossCalls) {
  Catalog c;
  AttrSet x = ParseAttrSet(c, "ab");
  DatabaseSchema d = ParseSchema(c, "abc");
  EXPECT_TRUE(x.IsSubsetOf(d[0]));
}

TEST(ParseTest, SingleAttributeRelation) {
  Catalog c;
  DatabaseSchema d = ParseSchema(c, "a");
  ASSERT_EQ(d.NumRelations(), 1);
  EXPECT_EQ(d[0].Size(), 1);
}

TEST(ParseTest, RepeatedLettersCollapse) {
  Catalog c;
  EXPECT_EQ(ParseAttrSet(c, "aba").Size(), 2);
}

}  // namespace
}  // namespace gyo
