#include "schema/generators.h"

#include <gtest/gtest.h>

#include "gyo/acyclic.h"
#include "gyo/qual_graph.h"

namespace gyo {
namespace {

TEST(GeneratorsTest, AringShape) {
  DatabaseSchema d = Aring(5);
  EXPECT_EQ(d.NumRelations(), 5);
  EXPECT_EQ(d.Universe().Size(), 5);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(d[i].Size(), 2);
  EXPECT_TRUE(IsAring(d));
}

TEST(GeneratorsTest, AringIsCyclic) {
  for (int n = 3; n <= 8; ++n) {
    EXPECT_TRUE(IsCyclicSchema(Aring(n))) << "Aring(" << n << ")";
  }
}

TEST(GeneratorsTest, AcliqueShape) {
  DatabaseSchema d = Aclique(4);
  EXPECT_EQ(d.NumRelations(), 4);
  EXPECT_EQ(d.Universe().Size(), 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(d[i].Size(), 3);
  EXPECT_TRUE(IsAclique(d));
}

TEST(GeneratorsTest, AcliqueIsCyclic) {
  for (int n = 3; n <= 7; ++n) {
    EXPECT_TRUE(IsCyclicSchema(Aclique(n))) << "Aclique(" << n << ")";
  }
}

TEST(GeneratorsTest, Size3RingEqualsSize3Clique) {
  // (ab, bc, ca) is both the Aring and the Aclique of size 3.
  DatabaseSchema ring = Aring(3);
  EXPECT_TRUE(IsAring(ring));
  EXPECT_TRUE(IsAclique(ring));
}

TEST(GeneratorsTest, PathIsTree) {
  for (int n = 2; n <= 10; ++n) {
    EXPECT_TRUE(IsTreeSchema(PathSchema(n))) << "Path(" << n << ")";
  }
}

TEST(GeneratorsTest, StarIsTree) {
  for (int leaves = 1; leaves <= 10; ++leaves) {
    EXPECT_TRUE(IsTreeSchema(StarSchema(leaves)));
  }
}

TEST(GeneratorsTest, GridCyclicity) {
  EXPECT_TRUE(IsTreeSchema(GridSchema(1, 5)));  // a path
  EXPECT_TRUE(IsTreeSchema(GridSchema(5, 1)));
  EXPECT_TRUE(IsCyclicSchema(GridSchema(2, 2)));
  EXPECT_TRUE(IsCyclicSchema(GridSchema(3, 4)));
}

TEST(GeneratorsTest, GridRelationCount) {
  // rows*(cols-1) horizontal + (rows-1)*cols vertical edges.
  DatabaseSchema d = GridSchema(3, 4);
  EXPECT_EQ(d.NumRelations(), 3 * 3 + 2 * 4);
  EXPECT_EQ(d.Universe().Size(), 12);
}

TEST(GeneratorsTest, RandomTreeSchemaIsAcyclicByConstruction) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    RandomTreeResult r = RandomTreeSchema(1 + trial % 12, 4, rng);
    EXPECT_TRUE(IsTreeSchema(r.schema)) << "trial " << trial;
  }
}

TEST(GeneratorsTest, RandomTreeSchemaWitnessIsQualTree) {
  Rng rng(43);
  for (int trial = 0; trial < 30; ++trial) {
    RandomTreeResult r = RandomTreeSchema(2 + trial % 10, 4, rng);
    QualGraph g;
    g.num_nodes = r.schema.NumRelations();
    g.edges = r.tree_edges;
    EXPECT_TRUE(IsQualTree(r.schema, g)) << "trial " << trial;
  }
}

TEST(GeneratorsTest, RandomSchemaRespectsBounds) {
  Rng rng(44);
  DatabaseSchema d = RandomSchema(20, 10, 3, rng);
  EXPECT_EQ(d.NumRelations(), 20);
  EXPECT_LE(d.Universe().Size(), 10);
  for (int i = 0; i < 20; ++i) {
    EXPECT_GE(d[i].Size(), 1);
    EXPECT_LE(d[i].Size(), 3);
  }
}

TEST(GeneratorsTest, RandomSchemaIsDeterministicInSeed) {
  Rng rng1(7);
  Rng rng2(7);
  DatabaseSchema a = RandomSchema(10, 8, 3, rng1);
  DatabaseSchema b = RandomSchema(10, 8, 3, rng2);
  EXPECT_EQ(a, b);
}

TEST(GeneratorsTest, FattenedRingStaysCyclic) {
  for (int extra = 0; extra <= 3; ++extra) {
    DatabaseSchema d = FattenedRing(5, extra);
    EXPECT_TRUE(IsCyclicSchema(d)) << "extra=" << extra;
    EXPECT_EQ(d.NumRelations(), 5);
    EXPECT_EQ(d[0].Size(), 2 + extra);
  }
}

TEST(GeneratorsTest, BaseOffsetsDisjointUniverses) {
  DatabaseSchema a = Aring(4, 0);
  DatabaseSchema b = Aring(4, 100);
  EXPECT_FALSE(a.Universe().Intersects(b.Universe()));
}

}  // namespace
}  // namespace gyo
