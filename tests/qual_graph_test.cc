#include "gyo/qual_graph.h"

#include <gtest/gtest.h>

#include "gyo/acyclic.h"
#include "schema/generators.h"
#include "schema/parse.h"
#include "util/rng.h"

namespace gyo {
namespace {

class QualGraphTest : public ::testing::Test {
 protected:
  Catalog catalog_;
};

TEST_F(QualGraphTest, PathQualTree) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,cd");
  QualGraph g;
  g.num_nodes = 3;
  g.edges = {{0, 1}, {1, 2}};
  EXPECT_TRUE(IsQualTree(d, g));
}

TEST_F(QualGraphTest, BadEdgeOrderViolatesAttributeConnectivity) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,cd");
  QualGraph g;
  g.num_nodes = 3;
  g.edges = {{0, 2}, {2, 1}};  // ab - cd - bc: b's nodes {0,2-no}: disconnected
  EXPECT_TRUE(g.IsTree());
  EXPECT_FALSE(IsQualGraph(d, g));
}

TEST_F(QualGraphTest, TriangleCycleIsQualGraphButNotTree) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,ac");
  QualGraph g;
  g.num_nodes = 3;
  g.edges = {{0, 1}, {1, 2}, {2, 0}};
  EXPECT_TRUE(IsQualGraph(d, g));
  EXPECT_FALSE(g.IsTree());
}

TEST_F(QualGraphTest, Fig1TreeSchemaHasTreeQualGraph) {
  // (abc, cde, ace, afe): abc - ace - afe with cde hanging off ace.
  DatabaseSchema d = ParseSchema(catalog_, "abc,cde,ace,afe");
  QualGraph g;
  g.num_nodes = 4;
  g.edges = {{0, 2}, {1, 2}, {3, 2}};
  EXPECT_TRUE(IsQualTree(d, g));
}

TEST_F(QualGraphTest, IsTreeRejectsDisconnected) {
  QualGraph g;
  g.num_nodes = 4;
  g.edges = {{0, 1}, {2, 3}};
  EXPECT_FALSE(g.IsTree());
}

TEST_F(QualGraphTest, IsTreeRejectsCycleWithRightEdgeCount) {
  QualGraph g;
  g.num_nodes = 4;
  g.edges = {{0, 1}, {1, 2}, {2, 0}};
  EXPECT_FALSE(g.IsTree());
}

TEST_F(QualGraphTest, BuildJoinTreeOnTreeSchemas) {
  for (const char* spec :
       {"ab,bc,cd", "abc,cde,ace,afe", "ab", "a,b", "abc,ab,bc",
        "ab,abc,abcd,abcde"}) {
    Catalog c;
    DatabaseSchema d = ParseSchema(c, spec);
    auto tree = BuildJoinTree(d);
    ASSERT_TRUE(tree.has_value()) << spec;
    EXPECT_TRUE(IsQualTree(d, *tree)) << spec;
  }
}

TEST_F(QualGraphTest, BuildJoinTreeRejectsCyclicSchemas) {
  EXPECT_FALSE(BuildJoinTree(Aring(4)).has_value());
  EXPECT_FALSE(BuildJoinTree(Aclique(4)).has_value());
  EXPECT_FALSE(BuildJoinTree(GridSchema(2, 3)).has_value());
}

TEST_F(QualGraphTest, BuildJoinTreeHandlesDisconnectedSchemas) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,de,ef");
  auto tree = BuildJoinTree(d);
  ASSERT_TRUE(tree.has_value());
  EXPECT_TRUE(IsQualTree(d, *tree));
}

TEST_F(QualGraphTest, MaierAgreesWithGyoOnRandomSchemas) {
  Rng rng(71);
  for (int trial = 0; trial < 200; ++trial) {
    DatabaseSchema d = RandomSchema(2 + static_cast<int>(rng.Below(8)),
                                    2 + static_cast<int>(rng.Below(8)),
                                    1 + static_cast<int>(rng.Below(4)), rng);
    auto gyo_tree = BuildJoinTree(d);
    auto maier_tree = BuildJoinTreeMaier(d);
    EXPECT_EQ(gyo_tree.has_value(), maier_tree.has_value())
        << "trial " << trial;
    if (maier_tree.has_value()) {
      EXPECT_TRUE(IsQualTree(d, *maier_tree)) << "trial " << trial;
    }
  }
}

TEST_F(QualGraphTest, EnumerateQualTreesPath) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,cd");
  // The path has exactly one qual tree (Fig. 1: "this is the only qual
  // graph" holds for the triangle; for the path the tree is forced too).
  std::vector<QualGraph> trees = EnumerateQualTrees(d);
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_TRUE(IsQualTree(d, trees[0]));
}

TEST_F(QualGraphTest, EnumerateQualTreesCyclicIsEmpty) {
  EXPECT_TRUE(EnumerateQualTrees(Aring(4)).empty());
  EXPECT_TRUE(EnumerateQualTrees(Aclique(4)).empty());
}

TEST_F(QualGraphTest, EnumerateMatchesBuilderExistence) {
  Rng rng(73);
  for (int trial = 0; trial < 120; ++trial) {
    DatabaseSchema d = RandomSchema(2 + static_cast<int>(rng.Below(5)),
                                    2 + static_cast<int>(rng.Below(6)),
                                    1 + static_cast<int>(rng.Below(4)), rng);
    bool any = !EnumerateQualTrees(d).empty();
    EXPECT_EQ(any, BuildJoinTree(d).has_value()) << "trial " << trial;
    EXPECT_EQ(any, IsTreeSchema(d)) << "trial " << trial;
  }
}

TEST_F(QualGraphTest, MinimumQualGraphsOfTreeSchemasAreQualTrees) {
  // §5.1: "for tree schemas, a minimum size qual graph is simply a tree."
  Rng rng(83);
  int checked = 0;
  for (int trial = 0; trial < 60 && checked < 20; ++trial) {
    DatabaseSchema d = RandomSchema(2 + static_cast<int>(rng.Below(4)),
                                    2 + static_cast<int>(rng.Below(5)),
                                    1 + static_cast<int>(rng.Below(4)), rng);
    if (!IsTreeSchema(d) || !d.IsConnected()) continue;
    ++checked;
    std::vector<QualGraph> minimum = EnumerateMinimumQualGraphs(d);
    std::vector<QualGraph> trees = EnumerateQualTrees(d);
    ASSERT_FALSE(minimum.empty());
    EXPECT_EQ(minimum.size(), trees.size()) << "trial " << trial;
    for (const QualGraph& g : minimum) {
      EXPECT_TRUE(IsQualTree(d, g)) << "trial " << trial;
    }
  }
  EXPECT_GE(checked, 10);
}

TEST_F(QualGraphTest, MinimumQualGraphOfTriangleIsTheCycle) {
  // The cyclic triangle needs all three edges.
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,ac");
  std::vector<QualGraph> minimum = EnumerateMinimumQualGraphs(d);
  ASSERT_EQ(minimum.size(), 1u);
  EXPECT_EQ(minimum[0].edges.size(), 3u);
}

TEST_F(QualGraphTest, MinimumQualGraphsOfCyclicSchemasExceedTreeSize) {
  for (const DatabaseSchema& d : {Aring(4), Aring(5)}) {
    std::vector<QualGraph> minimum = EnumerateMinimumQualGraphs(d);
    ASSERT_FALSE(minimum.empty());
    EXPECT_GT(minimum[0].edges.size(),
              static_cast<size_t>(d.NumRelations() - 1));
  }
}

TEST_F(QualGraphTest, DisconnectedSchemaMinimumQualGraphHasNoCrossEdges) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,cd");
  std::vector<QualGraph> minimum = EnumerateMinimumQualGraphs(d);
  ASSERT_FALSE(minimum.empty());
  EXPECT_TRUE(minimum[0].edges.empty());
}

TEST_F(QualGraphTest, ToDotContainsNodesAndEdges) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc");
  QualGraph g;
  g.num_nodes = 2;
  g.edges = {{0, 1}};
  std::string dot = g.ToDot(d, catalog_);
  EXPECT_NE(dot.find("graph qual {"), std::string::npos);
  EXPECT_NE(dot.find("label=\"ab\""), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1;"), std::string::npos);
}

TEST_F(QualGraphTest, SubtreeBasics) {
  // D = (ab, bc, cd): {ab, bc} is a subtree; {ab, cd} is not (bc separates).
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,cd");
  EXPECT_TRUE(IsSubtree(d, {0, 1}));
  EXPECT_TRUE(IsSubtree(d, {1, 2}));
  EXPECT_TRUE(IsSubtree(d, {0, 1, 2}));
  EXPECT_TRUE(IsSubtree(d, {1}));
  EXPECT_FALSE(IsSubtree(d, {0, 2}));
}

TEST_F(QualGraphTest, PaperSubtreeCounterexample) {
  // §5.1: D = (abc, ab, bc), D' = (ab, bc) is NOT a subtree of D.
  DatabaseSchema d = ParseSchema(catalog_, "abc,ab,bc");
  EXPECT_FALSE(IsSubtree(d, {1, 2}));
  EXPECT_TRUE(IsSubtree(d, {0}));
  EXPECT_TRUE(IsSubtree(d, {0, 1}));
}

TEST_F(QualGraphTest, SubtreeMatchesExhaustiveEnumeration) {
  // Theorem 3.1(ii) validated against brute-force qual tree enumeration.
  Rng rng(79);
  int checked = 0;
  for (int trial = 0; trial < 200 && checked < 60; ++trial) {
    DatabaseSchema d = RandomSchema(2 + static_cast<int>(rng.Below(4)),
                                    2 + static_cast<int>(rng.Below(6)),
                                    1 + static_cast<int>(rng.Below(4)), rng);
    if (!IsTreeSchema(d)) continue;
    ++checked;
    std::vector<QualGraph> trees = EnumerateQualTrees(d);
    const int n = d.NumRelations();
    for (uint32_t mask = 1; mask < (uint32_t{1} << n); ++mask) {
      std::vector<int> indices;
      for (int i = 0; i < n; ++i) {
        if ((mask >> i) & 1) indices.push_back(i);
      }
      // Brute force: some qual tree where `indices` induces a connected
      // subgraph.
      bool expected = false;
      for (const QualGraph& t : trees) {
        // Count connectivity of induced subgraph via BFS.
        std::vector<bool> in(static_cast<size_t>(n), false);
        for (int i : indices) in[static_cast<size_t>(i)] = true;
        std::vector<int> queue = {indices[0]};
        std::vector<bool> seen(static_cast<size_t>(n), false);
        seen[static_cast<size_t>(indices[0])] = true;
        auto adj = t.Adjacency();
        for (size_t qi = 0; qi < queue.size(); ++qi) {
          for (int v : adj[static_cast<size_t>(queue[qi])]) {
            if (in[static_cast<size_t>(v)] && !seen[static_cast<size_t>(v)]) {
              seen[static_cast<size_t>(v)] = true;
              queue.push_back(v);
            }
          }
        }
        if (queue.size() == indices.size()) {
          expected = true;
          break;
        }
      }
      EXPECT_EQ(IsSubtree(d, indices), expected)
          << "trial " << trial << " mask " << mask;
    }
  }
  EXPECT_GE(checked, 30);
}

}  // namespace
}  // namespace gyo
