#include "rel/ops.h"

#include <gtest/gtest.h>

#include "schema/parse.h"
#include "util/rng.h"

namespace gyo {
namespace {

class OpsTest : public ::testing::Test {
 protected:
  Catalog catalog_;

  Relation Make(const char* schema, const std::vector<std::vector<Value>>& rows) {
    Relation r(ParseAttrSet(catalog_, schema));
    r.Reserve(static_cast<int64_t>(rows.size()));
    for (const auto& row : rows) r.AddRow(row);
    r.Canonicalize();
    return r;
  }
};

TEST_F(OpsTest, ProjectDropsColumnsAndDuplicates) {
  Relation r = Make("ab", {{1, 2}, {1, 3}, {4, 5}});
  Relation p = Project(r, ParseAttrSet(catalog_, "a"));
  EXPECT_EQ(p.NumRows(), 2);  // duplicate-free even before canonicalization
  p.Canonicalize();  // row order is unspecified until canonicalized
  EXPECT_EQ(p.Row(0), (std::vector<Value>{1}));
  EXPECT_EQ(p.Row(1), (std::vector<Value>{4}));
}

TEST_F(OpsTest, ProjectToSameSchemaIsIdentity) {
  Relation r = Make("ab", {{1, 2}, {3, 4}});
  EXPECT_TRUE(Project(r, r.Schema()).EqualsAsSet(r));
}

TEST_F(OpsTest, ProjectToEmptySchema) {
  Relation r = Make("ab", {{1, 2}});
  Relation p = Project(r, AttrSet{});
  EXPECT_EQ(p.NumRows(), 1);  // one empty tuple: TRUE
  Relation empty = Make("ab", {});
  EXPECT_EQ(Project(empty, AttrSet{}).NumRows(), 0);  // FALSE
}

TEST_F(OpsTest, NaturalJoinOnSharedColumn) {
  Relation r = Make("ab", {{1, 10}, {2, 20}});
  Relation s = Make("bc", {{10, 100}, {10, 101}, {30, 300}});
  Relation j = NaturalJoin(r, s);
  EXPECT_EQ(j.Schema(), ParseAttrSet(catalog_, "abc"));
  EXPECT_EQ(j.NumRows(), 2);  // (1,10,100) and (1,10,101)
  AttrId a = *catalog_.Find("a");
  AttrId c = *catalog_.Find("c");
  EXPECT_EQ(j.At(0, a), 1);
  EXPECT_EQ(j.At(0, c), 100);
  EXPECT_EQ(j.At(1, c), 101);
}

TEST_F(OpsTest, JoinDisjointSchemasIsCrossProduct) {
  Relation r = Make("a", {{1}, {2}});
  Relation s = Make("b", {{7}, {8}});
  Relation j = NaturalJoin(r, s);
  EXPECT_EQ(j.NumRows(), 4);
}

TEST_F(OpsTest, JoinWithSelfIsIdempotent) {
  Relation r = Make("ab", {{1, 2}, {3, 4}});
  EXPECT_TRUE(NaturalJoin(r, r).EqualsAsSet(r));
}

TEST_F(OpsTest, JoinIsCommutative) {
  Relation r = Make("ab", {{1, 2}, {3, 4}, {1, 5}});
  Relation s = Make("bc", {{2, 9}, {5, 8}});
  EXPECT_TRUE(NaturalJoin(r, s).EqualsAsSet(NaturalJoin(s, r)));
}

TEST_F(OpsTest, JoinWithEmptyIsEmpty) {
  Relation r = Make("ab", {{1, 2}});
  Relation s = Make("bc", {});
  EXPECT_EQ(NaturalJoin(r, s).NumRows(), 0);
}

TEST_F(OpsTest, JoinSubsetSchemaActsAsFilter) {
  Relation r = Make("abc", {{1, 2, 3}, {4, 5, 6}});
  Relation s = Make("b", {{2}});
  Relation j = NaturalJoin(r, s);
  EXPECT_EQ(j.NumRows(), 1);
  EXPECT_EQ(j.Schema(), r.Schema());
}

TEST_F(OpsTest, SemijoinFilters) {
  Relation r = Make("ab", {{1, 10}, {2, 20}, {3, 30}});
  Relation s = Make("bc", {{10, 0}, {30, 0}});
  Relation sj = Semijoin(r, s);
  EXPECT_EQ(sj.Schema(), r.Schema());
  EXPECT_EQ(sj.NumRows(), 2);
}

TEST_F(OpsTest, SemijoinEqualsProjectOfJoin) {
  // R ⋉ S ≡ π_R(R ⋈ S), the definition in §2 — validated on random data.
  Rng rng(227);
  AttrSet ra = ParseAttrSet(catalog_, "abc");
  AttrSet sa = ParseAttrSet(catalog_, "bcd");
  for (int trial = 0; trial < 50; ++trial) {
    Relation r(ra);
    Relation s(sa);
    for (int i = 0; i < 15; ++i) {
      r.AddRow({static_cast<Value>(rng.Below(3)),
                static_cast<Value>(rng.Below(3)),
                static_cast<Value>(rng.Below(3))});
      s.AddRow({static_cast<Value>(rng.Below(3)),
                static_cast<Value>(rng.Below(3)),
                static_cast<Value>(rng.Below(3))});
    }
    r.Canonicalize();
    s.Canonicalize();
    Relation lhs = Semijoin(r, s);
    Relation rhs = Project(NaturalJoin(r, s), r.Schema());
    EXPECT_TRUE(lhs.EqualsAsSet(rhs)) << "trial " << trial;
  }
}

TEST_F(OpsTest, SemijoinOnDisjointSchemasKeepsAllWhenRhsNonEmpty) {
  Relation r = Make("a", {{1}, {2}});
  Relation s = Make("b", {{5}});
  EXPECT_TRUE(Semijoin(r, s).EqualsAsSet(r));
  Relation empty = Make("b", {});
  EXPECT_EQ(Semijoin(r, empty).NumRows(), 0);
}

TEST_F(OpsTest, ProjectEmptyRelationOntoEmptyAttrSet) {
  // π_∅ of an empty relation is FALSE (no tuples); of a non-empty one, TRUE.
  Relation empty = Make("abc", {});
  Relation p = Project(empty, AttrSet{});
  EXPECT_EQ(p.Arity(), 0);
  EXPECT_EQ(p.NumRows(), 0);
  Relation nonempty = Make("abc", {{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(Project(nonempty, AttrSet{}).NumRows(), 1);
}

TEST_F(OpsTest, CartesianProductOfDisjointSchemasHasAllPairs) {
  Relation r = Make("ab", {{1, 10}, {2, 20}});
  Relation s = Make("cd", {{7, 70}, {8, 80}, {9, 90}});
  Relation j = NaturalJoin(r, s);
  EXPECT_EQ(j.Schema(), ParseAttrSet(catalog_, "abcd"));
  EXPECT_EQ(j.NumRows(), 6);
  Relation expected = Make("abcd", {{1, 10, 7, 70}, {1, 10, 8, 80},
                                    {1, 10, 9, 90}, {2, 20, 7, 70},
                                    {2, 20, 8, 80}, {2, 20, 9, 90}});
  EXPECT_TRUE(j.EqualsAsSet(expected));
}

TEST_F(OpsTest, JoinWithIdenticalSchemasIsSetIntersection) {
  // Common attributes cover both schemas: the join keys on every column.
  Relation r = Make("ab", {{1, 2}, {3, 4}, {5, 6}});
  Relation s = Make("ab", {{3, 4}, {5, 6}, {7, 8}});
  Relation j = NaturalJoin(r, s);
  EXPECT_EQ(j.Schema(), r.Schema());
  EXPECT_TRUE(j.EqualsAsSet(Make("ab", {{3, 4}, {5, 6}})));
}

TEST_F(OpsTest, SemijoinWithEmptyRightSideIsEmpty) {
  Relation r = Make("ab", {{1, 2}, {3, 4}});
  // Same-schema empty right side.
  EXPECT_EQ(Semijoin(r, Make("ab", {})).NumRows(), 0);
  // Overlapping-schema empty right side.
  EXPECT_EQ(Semijoin(r, Make("bc", {})).NumRows(), 0);
}

TEST_F(OpsTest, SemijoinWithFullSchemaOverlapFiltersWholeTuples) {
  Relation r = Make("ab", {{1, 2}, {3, 4}, {5, 6}});
  Relation s = Make("ab", {{3, 4}, {9, 9}});
  Relation sj = Semijoin(r, s);
  EXPECT_TRUE(sj.EqualsAsSet(Make("ab", {{3, 4}})));
}

TEST_F(OpsTest, OperatorOutputsCompareWithoutExplicitCanonicalize) {
  // Operator results are duplicate-free but unsorted; EqualsAsSet must
  // canonicalize lazily on its own.
  Relation r = Make("ab", {{2, 20}, {1, 10}});
  Relation s = Make("bc", {{20, 7}, {10, 9}});
  Relation j1 = NaturalJoin(r, s);
  Relation j2 = NaturalJoin(s, r);
  EXPECT_TRUE(j1.EqualsAsSet(j2));
  EXPECT_TRUE(Project(j1, r.Schema()).EqualsAsSet(r));
}

TEST_F(OpsTest, SemijoinOfCanonicalInputStaysCanonical) {
  Relation r = Make("ab", {{1, 2}, {3, 4}, {5, 6}});
  ASSERT_TRUE(r.IsCanonical());
  Relation sj = Semijoin(r, Make("ab", {{1, 2}, {5, 6}}));
  EXPECT_TRUE(sj.IsCanonical());
  EXPECT_EQ(sj.Row(0), (std::vector<Value>{1, 2}));
  EXPECT_EQ(sj.Row(1), (std::vector<Value>{5, 6}));
}

// --- Zone-map disjointness in Semijoin: provably non-overlapping key
// ranges skip the whole probe pass, bit-identically to the full path's
// empty result. ---

class ZoneMapOpsTest : public OpsTest {
 protected:
  // The same rows as `rel`, rebuilt through AppendRows without a
  // canonicalize — zones invalid, so Semijoin must take the full path.
  static Relation WithoutZones(const Relation& rel) {
    Relation copy(rel.Schema());
    const int64_t at = copy.AppendRows(rel.NumRows());
    for (int c = 0; c < rel.Arity(); ++c) {
      std::copy(rel.ColData(c), rel.ColData(c) + rel.NumRows(),
                copy.ColData(c) + at);
    }
    return copy;
  }
};

TEST_F(ZoneMapOpsTest, SemijoinSkipsDisjointKeyRanges) {
  Relation r = Make("ab", {{1, 10}, {2, 11}, {3, 12}});
  Relation s = Make("bc", {{100, 0}, {200, 1}});  // b-ranges cannot overlap
  std::atomic<int64_t> skips{0};
  OpExecOpts opts;
  opts.zone_skip_counter = &skips;
  Relation out = Semijoin(r, s, opts);
  EXPECT_EQ(out.NumRows(), 0);
  EXPECT_EQ(skips.load(), r.NumRows());
  // Bit-identical to the full (un-zone-mapped) probe over the same data.
  Relation full = Semijoin(WithoutZones(r), WithoutZones(s), opts);
  EXPECT_EQ(skips.load(), r.NumRows());  // the full path never skipped
  EXPECT_TRUE(out.IdenticalTo(full));
}

TEST_F(ZoneMapOpsTest, SemijoinKeepsOverlappingRanges) {
  Relation r = Make("ab", {{1, 10}, {5, 11}, {9, 12}});
  Relation s = Make("bc", {{11, 0}, {40, 1}});  // b-ranges overlap: no skip
  std::atomic<int64_t> skips{0};
  OpExecOpts opts;
  opts.zone_skip_counter = &skips;
  Relation out = Semijoin(r, s, opts);
  EXPECT_EQ(skips.load(), 0);
  ASSERT_EQ(out.NumRows(), 1);
  EXPECT_EQ(out.Row(0), (std::vector<Value>{5, 11}));
}

TEST_F(ZoneMapOpsTest, InvalidZonesNeverSkip) {
  // Disjoint data, but AppendRows-built inputs have no current zone maps —
  // the skip must not fire on stale metadata.
  Relation r = Make("ab", {{1, 10}, {2, 11}});
  Relation s = Make("bc", {{100, 0}});
  std::atomic<int64_t> skips{0};
  OpExecOpts opts;
  opts.zone_skip_counter = &skips;
  Relation out = Semijoin(WithoutZones(r), WithoutZones(s), opts);
  EXPECT_EQ(skips.load(), 0);
  EXPECT_EQ(out.NumRows(), 0);
}

TEST_F(OpsTest, JoinAllAssociativity) {
  Rng rng(229);
  Relation r = Make("ab", {{0, 0}, {0, 1}, {1, 1}});
  Relation s = Make("bc", {{0, 1}, {1, 1}});
  Relation t = Make("ca", {{1, 0}, {0, 0}});
  Relation left = NaturalJoin(NaturalJoin(r, s), t);
  Relation right = NaturalJoin(r, NaturalJoin(s, t));
  EXPECT_TRUE(left.EqualsAsSet(right));
  EXPECT_TRUE(JoinAll({r, s, t}).EqualsAsSet(left));
  (void)rng;
}

}  // namespace
}  // namespace gyo
