#include "tableau/canonical.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "gyo/acyclic.h"
#include "gyo/gyo.h"
#include "schema/fixtures.h"
#include "schema/generators.h"
#include "schema/parse.h"
#include "util/rng.h"

namespace gyo {
namespace {

class CanonicalTest : public ::testing::Test {
 protected:
  Catalog catalog_;
};

TEST_F(CanonicalTest, Sec6Example) {
  // The paper's §6 example: D = (abg, bcg, acf, ad, de, ea), X = abc.
  // CC(D, X) = (abg, bcg, ac): ad, de, ea are irrelevant and f is projected
  // out of acf.
  DatabaseSchema d = fixtures::Sec6D(catalog_);
  AttrSet x = fixtures::Sec6X(catalog_);
  CanonicalResult cc = CanonicalConnectionExact(d, x);
  EXPECT_TRUE(cc.schema.EqualsAsMultiset(fixtures::Sec6CC(catalog_)));
  // Provenance: the ac relation came from acf (index 2).
  for (int i = 0; i < cc.schema.NumRelations(); ++i) {
    if (cc.schema[i] == ParseAttrSet(catalog_, "ac")) {
      EXPECT_EQ(cc.sources[static_cast<size_t>(i)], 2);
    }
  }
}

TEST_F(CanonicalTest, FastPathUsedForTreeSchemas) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,cd");
  CanonicalResult cc = CanonicalConnection(d, ParseAttrSet(catalog_, "ad"));
  EXPECT_TRUE(cc.used_fast_path);
}

TEST_F(CanonicalTest, Theorem33iiFastPathMatchesExactOnTreeSchemas) {
  Rng rng(139);
  int checked = 0;
  for (int trial = 0; trial < 200 && checked < 60; ++trial) {
    DatabaseSchema d = RandomSchema(2 + static_cast<int>(rng.Below(5)),
                                    2 + static_cast<int>(rng.Below(6)),
                                    1 + static_cast<int>(rng.Below(4)), rng);
    if (!IsTreeSchema(d)) continue;
    ++checked;
    AttrSet x;
    d.Universe().ForEach([&](AttrId a) {
      if (rng.Chance(0.4)) x.Insert(a);
    });
    CanonicalResult fast = CanonicalConnection(d, x);
    CanonicalResult exact = CanonicalConnectionExact(d, x);
    EXPECT_TRUE(fast.used_fast_path);
    EXPECT_TRUE(fast.schema.EqualsAsMultiset(exact.schema))
        << "trial " << trial;
  }
  EXPECT_GE(checked, 40);
}

TEST_F(CanonicalTest, Theorem33iiiFastPathWhenGrWithinTarget) {
  // A cyclic schema whose GR w.r.t. X lies inside X: the triangle with
  // X = abc. GR(D, abc) = D and U(D) ⊆ X, so CC = GR.
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,ac");
  AttrSet x = ParseAttrSet(catalog_, "abc");
  CanonicalResult fast = CanonicalConnection(d, x);
  EXPECT_TRUE(fast.used_fast_path);
  CanonicalResult exact = CanonicalConnectionExact(d, x);
  EXPECT_TRUE(fast.schema.EqualsAsMultiset(exact.schema));
  EXPECT_TRUE(fast.schema.EqualsAsMultiset(d));
}

TEST_F(CanonicalTest, Theorem33iCCCoveredByGR) {
  // Thm 3.3(i): CC(D, X) ≤ GR(D, X), for cyclic schemas too.
  Rng rng(149);
  for (int trial = 0; trial < 80; ++trial) {
    DatabaseSchema d = RandomSchema(2 + static_cast<int>(rng.Below(5)),
                                    2 + static_cast<int>(rng.Below(5)),
                                    1 + static_cast<int>(rng.Below(4)), rng);
    AttrSet x;
    d.Universe().ForEach([&](AttrId a) {
      if (rng.Chance(0.4)) x.Insert(a);
    });
    CanonicalResult cc = CanonicalConnectionExact(d, x);
    GyoResult gr = GyoReduce(d, x);
    EXPECT_TRUE(cc.schema.CoveredBy(gr.reduced)) << "trial " << trial;
  }
}

TEST_F(CanonicalTest, CanonicalSchemaOfRingKeepsAllRelations) {
  DatabaseSchema d = Aring(4);
  CanonicalResult cc = CanonicalConnectionExact(d, AttrSet{0, 2});
  // No row folds; every attribute occurs twice, so nothing is projected out.
  EXPECT_TRUE(cc.schema.EqualsAsMultiset(d));
}

TEST_F(CanonicalTest, SourcesAlwaysContainResult) {
  // Each canonical relation is a subset of the original relation it cites.
  Rng rng(151);
  for (int trial = 0; trial < 80; ++trial) {
    DatabaseSchema d = RandomSchema(2 + static_cast<int>(rng.Below(5)),
                                    2 + static_cast<int>(rng.Below(6)),
                                    1 + static_cast<int>(rng.Below(4)), rng);
    AttrSet x;
    d.Universe().ForEach([&](AttrId a) {
      if (rng.Chance(0.4)) x.Insert(a);
    });
    CanonicalResult cc = CanonicalConnection(d, x);
    ASSERT_EQ(cc.sources.size(),
              static_cast<size_t>(cc.schema.NumRelations()));
    for (int i = 0; i < cc.schema.NumRelations(); ++i) {
      EXPECT_TRUE(
          cc.schema[i].IsSubsetOf(d[cc.sources[static_cast<size_t>(i)]]))
          << "trial " << trial;
    }
  }
}

TEST_F(CanonicalTest, CCIsReduced) {
  Rng rng(157);
  for (int trial = 0; trial < 80; ++trial) {
    DatabaseSchema d = RandomSchema(2 + static_cast<int>(rng.Below(5)),
                                    2 + static_cast<int>(rng.Below(6)),
                                    1 + static_cast<int>(rng.Below(4)), rng);
    AttrSet x;
    d.Universe().ForEach([&](AttrId a) {
      if (rng.Chance(0.4)) x.Insert(a);
    });
    CanonicalResult cc = CanonicalConnection(d, x);
    EXPECT_TRUE(cc.schema.IsReduced()) << "trial " << trial;
  }
}

TEST_F(CanonicalTest, CCWithFullTargetIsReductionForCyclic) {
  // With X = U(D) every variable is distinguished: nothing folds beyond
  // subset elimination, so CC = reduction of D.
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,ac,abc");
  CanonicalResult cc = CanonicalConnection(d, d.Universe());
  EXPECT_TRUE(cc.schema.EqualsAsMultiset(ParseSchema(catalog_, "abc")));
}

TEST_F(CanonicalTest, SingleRelationCC) {
  DatabaseSchema d = ParseSchema(catalog_, "abc");
  CanonicalResult cc = CanonicalConnection(d, ParseAttrSet(catalog_, "ab"));
  ASSERT_EQ(cc.schema.NumRelations(), 1);
  EXPECT_EQ(cc.schema[0], ParseAttrSet(catalog_, "ab"));
}

}  // namespace
}  // namespace gyo
