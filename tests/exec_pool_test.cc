// ExecutorPool: admission cap under heavy simultaneous submission,
// round-robin fairness across submitters, pool reuse across sequential
// queries, concurrent queries returning bit-identical results to serial,
// per-query stats, GYO_EXEC_THREADS resolution, and the morsel auto-tuning
// formula. These run in the CI ThreadSanitizer suite.

#include "exec/executor_pool.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/physical_plan.h"
#include "gtest/gtest.h"
#include "rel/ops.h"
#include "rel/solver.h"
#include "rel/universal.h"
#include "schema/generators.h"
#include "util/rng.h"

namespace gyo {
namespace exec {
namespace {

std::vector<Relation> MakeUR(const DatabaseSchema& d, int rows, int domain,
                             uint64_t seed) {
  Rng rng(seed);
  Relation universal = RandomUniversal(d.Universe(), rows, domain, rng);
  return ProjectDatabase(universal, d);
}

ExecutorPool::Options PoolOptions(int threads, int max_concurrent) {
  ExecutorPool::Options options;
  options.threads = threads;
  options.max_concurrent_queries = max_concurrent;
  return options;
}

TEST(ExecutorPoolTest, ResolveThreadsPrecedence) {
  // Explicit request wins outright.
  EXPECT_EQ(ExecutorPool::ResolveThreads(5), 5);
  // GYO_EXEC_THREADS sizes the default.
  ASSERT_EQ(setenv("GYO_EXEC_THREADS", "3", 1), 0);
  EXPECT_EQ(ExecutorPool::ResolveThreads(0), 3);
  EXPECT_EQ(ExecutorPool::ResolveThreads(7), 7);
  // Garbage values fall through to hardware_concurrency (>= 1).
  ASSERT_EQ(setenv("GYO_EXEC_THREADS", "bogus", 1), 0);
  EXPECT_GE(ExecutorPool::ResolveThreads(0), 1);
  ASSERT_EQ(unsetenv("GYO_EXEC_THREADS"), 0);
  EXPECT_GE(ExecutorPool::ResolveThreads(0), 1);
}

TEST(ExecutorPoolTest, OptionsResolveToPoolShape) {
  ExecutorPool pool(PoolOptions(3, 2));
  EXPECT_EQ(pool.threads(), 3);
  EXPECT_EQ(pool.max_concurrent_queries(), 2);
  // Cap defaults to the thread count.
  ExecutorPool defaulted(PoolOptions(4, 0));
  EXPECT_EQ(defaulted.max_concurrent_queries(), 4);
}

TEST(ExecutorPoolTest, AdmissionCapRespectedUnder100Submissions) {
  constexpr int kCap = 3;
  constexpr int kSubmissions = 100;
  ExecutorPool pool(PoolOptions(2, kCap));
  std::atomic<int> running{0};
  std::atomic<int> high_water{0};
  std::vector<std::thread> clients;
  clients.reserve(kSubmissions);
  for (int i = 0; i < kSubmissions; ++i) {
    clients.emplace_back([&, i] {
      ExecutorPool::Admission admission =
          pool.Admit(static_cast<uint64_t>(i % 7));
      const int now = running.fetch_add(1, std::memory_order_acq_rel) + 1;
      int seen = high_water.load(std::memory_order_relaxed);
      while (now > seen &&
             !high_water.compare_exchange_weak(seen, now,
                                               std::memory_order_relaxed)) {
      }
      // Hold the slot long enough for overlap to be observable.
      std::this_thread::yield();
      running.fetch_sub(1, std::memory_order_acq_rel);
      QueryStats stats = admission.Finish();
      EXPECT_GE(stats.queue_wait_seconds, 0.0);
      EXPECT_GE(stats.run_time_seconds, 0.0);
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_LE(high_water.load(), kCap);
  EXPECT_GE(high_water.load(), 1);
  EXPECT_EQ(pool.running_queries(), 0);
  EXPECT_EQ(pool.waiting_queries(), 0);
}

TEST(ExecutorPoolTest, RoundRobinFairnessAcrossSubmitters) {
  // Cap 1, slot held; submitter A queues three queries, then submitter B
  // queues one. Round-robin must serve A1, B1, A2, A3 — B is not starved
  // behind A's backlog.
  ExecutorPool pool(PoolOptions(1, 1));
  auto* held = new ExecutorPool::Admission(pool.Admit(0));

  std::mutex order_mu;
  std::vector<std::string> admitted_order;
  std::vector<std::thread> waiters;
  auto spawn_waiter = [&](uint64_t submitter, const std::string& label) {
    const int already_waiting = pool.waiting_queries();
    waiters.emplace_back([&pool, &order_mu, &admitted_order, submitter,
                          label] {
      ExecutorPool::Admission admission = pool.Admit(submitter);
      std::lock_guard<std::mutex> lock(order_mu);
      admitted_order.push_back(label);
    });
    // Arrival order is part of the contract under test: wait until this
    // waiter is actually queued before spawning the next.
    while (pool.waiting_queries() <= already_waiting) {
      std::this_thread::yield();
    }
  };
  spawn_waiter(1, "A1");
  spawn_waiter(1, "A2");
  spawn_waiter(1, "A3");
  spawn_waiter(2, "B1");

  delete held;  // release the slot; the four waiters drain one at a time
  for (std::thread& w : waiters) w.join();
  EXPECT_EQ(admitted_order,
            (std::vector<std::string>{"A1", "B1", "A2", "A3"}));
}

// A client that admits on its own thread, records its label, then holds the
// slot until Release() is called.
class HoldingClient {
 public:
  HoldingClient(ExecutorPool& pool, uint64_t submitter, std::string label,
                std::vector<std::string>& order, std::mutex& order_mu)
      : thread_([this, &pool, submitter, label, &order, &order_mu] {
          ExecutorPool::Admission admission = pool.Admit(submitter);
          {
            std::lock_guard<std::mutex> lock(order_mu);
            order.push_back(label);
          }
          admitted_.store(true, std::memory_order_release);
          while (!release_.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
        }) {}
  ~HoldingClient() { thread_.join(); }

  void WaitAdmitted() {
    while (!admitted_.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
  void Release() { release_.store(true, std::memory_order_release); }

 private:
  std::atomic<bool> admitted_{false};
  std::atomic<bool> release_{false};
  std::thread thread_;
};

TEST(ExecutorPoolTest, FairnessSurvivesDrainAndRequeue) {
  // A submitter whose queue drains and then refills must re-enter the
  // round-robin ring exactly once: across repeated drain/requeue cycles the
  // admission order stays a strict A/B alternation (a duplicated ring entry
  // would eventually hand A two turns per cycle).
  ExecutorPool pool(PoolOptions(1, 1));
  std::mutex order_mu;
  std::vector<std::string> order;
  auto wait_for_waiting = [&pool](int n) {
    while (pool.waiting_queries() < n) std::this_thread::yield();
  };

  auto* held = new ExecutorPool::Admission(pool.Admit(7));
  HoldingClient a1(pool, 1, "A1", order, order_mu);
  wait_for_waiting(1);
  delete held;  // A1 admitted; submitter 1's queue drains to empty
  a1.WaitAdmitted();
  HoldingClient b1(pool, 2, "B1", order, order_mu);
  wait_for_waiting(1);
  HoldingClient a2(pool, 1, "A2", order, order_mu);  // submitter 1 requeues
  wait_for_waiting(2);
  a1.Release();  // round-robin: B's first turn outranks A's backlog
  b1.WaitAdmitted();
  HoldingClient a3(pool, 1, "A3", order, order_mu);
  wait_for_waiting(2);
  b1.Release();
  a2.WaitAdmitted();
  HoldingClient b2(pool, 2, "B2", order, order_mu);  // submitter 2 requeues
  wait_for_waiting(2);
  a2.Release();
  b2.WaitAdmitted();
  b2.Release();
  a3.WaitAdmitted();
  a3.Release();
  EXPECT_EQ(order,
            (std::vector<std::string>{"A1", "B1", "A2", "B2", "A3"}));
}

TEST(ExecutorPoolTest, PerSubmitterWaitingQueueDepth) {
  // waiting_queries(submitter) reports one fairness class's backlog — the
  // queue-depth observable a backpressure policy would shed on (and what
  // the CLIs print in their pool status line).
  ExecutorPool pool(PoolOptions(1, 1));
  std::mutex order_mu;
  std::vector<std::string> order;
  auto wait_for_waiting = [&pool](int n) {
    while (pool.waiting_queries() < n) std::this_thread::yield();
  };

  auto* held = new ExecutorPool::Admission(pool.Admit(0));
  EXPECT_EQ(pool.waiting_queries(7), 0);
  HoldingClient a1(pool, 7, "A1", order, order_mu);
  wait_for_waiting(1);
  HoldingClient a2(pool, 7, "A2", order, order_mu);
  wait_for_waiting(2);
  HoldingClient b1(pool, 9, "B1", order, order_mu);
  wait_for_waiting(3);
  EXPECT_EQ(pool.waiting_queries(7), 2);
  EXPECT_EQ(pool.waiting_queries(9), 1);
  EXPECT_EQ(pool.waiting_queries(5), 0);  // a class nobody queued in
  EXPECT_EQ(pool.waiting_queries(), 3);

  delete held;  // round-robin drain: A1, then B1, then A2
  a1.WaitAdmitted();
  EXPECT_EQ(pool.waiting_queries(7), 1);
  a1.Release();
  b1.WaitAdmitted();
  EXPECT_EQ(pool.waiting_queries(9), 0);
  b1.Release();
  a2.WaitAdmitted();
  EXPECT_EQ(pool.waiting_queries(7), 0);
  a2.Release();
}

TEST(ExecutorPoolTest, PoolReusedAcrossSequentialQueries) {
  DatabaseSchema d = PathSchema(8);
  AttrSet x{0, 7};
  Program p = *YannakakisProgram(d, x);
  std::vector<Relation> states = MakeUR(d, 200, 16 * 200, 99);
  std::vector<Relation> serial = p.Execute(states);

  ExecutorPool pool(PoolOptions(4, 2));
  ExecContext ctx;
  ctx.threads = pool.threads();
  ctx.pool = &pool;
  ctx.morsel_rows = 16;  // force morsel splitting on small data
  for (int round = 0; round < 20; ++round) {
    std::vector<Relation> parallel = Execute(p, states, ctx);
    ASSERT_EQ(serial.size(), parallel.size()) << "round " << round;
    for (size_t i = 0; i < serial.size(); ++i) {
      ASSERT_TRUE(serial[i].IdenticalTo(parallel[i]))
          << "round " << round << " state " << i;
    }
    ASSERT_EQ(pool.running_queries(), 0) << "round " << round;
  }
}

TEST(ExecutorPoolTest, ConcurrentQueriesBitIdenticalToSerial) {
  // Eight clients push deterministic queries through one shared 4-thread
  // pool capped at 2 concurrent queries; every result must be bit-identical
  // (arena, row order, canonical flag) to the serial engine's.
  DatabaseSchema d = PathSchema(10);
  AttrSet x{0, 9};
  Program p = *YannakakisProgram(d, x);
  std::vector<Relation> states = MakeUR(d, 300, 16 * 300, 7);
  Program::Stats serial_stats;
  std::vector<Relation> serial = p.ExecuteWithStats(states, &serial_stats);

  ExecutorPool pool(PoolOptions(4, 2));
  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::atomic<int> mismatches{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ExecContext ctx;
      ctx.threads = pool.threads();
      ctx.pool = &pool;
      ctx.morsel_rows = 16;
      ctx.submitter = static_cast<uint64_t>(c);
      QueryStats query_stats;
      ctx.query_stats = &query_stats;
      Program::Stats stats;
      std::vector<Relation> parallel = Execute(p, states, ctx, &stats);
      if (parallel.size() != serial.size()) {
        mismatches.fetch_add(1);
        return;
      }
      for (size_t i = 0; i < serial.size(); ++i) {
        if (!serial[i].IdenticalTo(parallel[i])) {
          mismatches.fetch_add(1);
          return;
        }
      }
      if (stats.result_rows != serial_stats.result_rows ||
          stats.max_intermediate_rows != serial_stats.max_intermediate_rows ||
          stats.total_rows_produced != serial_stats.total_rows_produced) {
        mismatches.fetch_add(1);
      }
      EXPECT_EQ(query_stats.tasks, p.NumStatements());
      EXPECT_GT(query_stats.run_time_seconds, 0.0);
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(pool.running_queries(), 0);
  EXPECT_EQ(pool.waiting_queries(), 0);
}

TEST(ExecutorPoolTest, QueryStatsCountMorsels) {
  // morsel_rows = 16 over 300-row relations forces morsel splitting, so a
  // parallel query must report a positive morsel count; the serial engine
  // reports zero.
  DatabaseSchema d = PathSchema(6);
  AttrSet x{0, 5};
  Program p = *YannakakisProgram(d, x);
  std::vector<Relation> states = MakeUR(d, 300, 16 * 300, 21);

  ExecutorPool pool(PoolOptions(4, 2));
  ExecContext ctx;
  ctx.threads = pool.threads();
  ctx.pool = &pool;
  ctx.morsel_rows = 16;
  QueryStats parallel_stats;
  ctx.query_stats = &parallel_stats;
  Execute(p, states, ctx);
  EXPECT_EQ(parallel_stats.tasks, p.NumStatements());
  EXPECT_GT(parallel_stats.morsels, 0);

  ExecContext serial_ctx;
  QueryStats serial_stats;
  serial_ctx.query_stats = &serial_stats;
  Execute(p, states, serial_ctx);
  EXPECT_EQ(serial_stats.tasks, p.NumStatements());
  EXPECT_EQ(serial_stats.morsels, 0);
  EXPECT_EQ(serial_stats.queue_wait_seconds, 0.0);
}

TEST(ExecutorPoolTest, QueueDepthAtAdmitReported) {
  // queue_depth_at_admit is the backlog a query SAW on arrival: 0 on a free
  // slot, and the number of already-queued queries otherwise.
  ExecutorPool pool(PoolOptions(1, 1));
  auto* held = new ExecutorPool::Admission(pool.Admit(0));
  EXPECT_EQ(held->Finish().queue_depth_at_admit, 0);

  std::atomic<int64_t> depth_b{-1};
  std::atomic<int64_t> depth_c{-1};
  std::thread b([&] {
    ExecutorPool::Admission admission = pool.Admit(1);
    depth_b.store(admission.Finish().queue_depth_at_admit);
  });
  while (pool.waiting_queries() < 1) std::this_thread::yield();
  std::thread c([&] {
    ExecutorPool::Admission admission = pool.Admit(2);
    depth_c.store(admission.Finish().queue_depth_at_admit);
  });
  while (pool.waiting_queries() < 2) std::this_thread::yield();

  delete held;  // b admitted now; c admitted when b's slot releases
  b.join();
  c.join();
  EXPECT_EQ(depth_b.load(), 0);  // nobody was queued when b arrived
  EXPECT_EQ(depth_c.load(), 1);  // b was already waiting when c arrived
}

// --- Cross-query priority aging (satellite): a query that waited in the
// admission queue gets a bounded priority boost on every task, so a deep
// plan admitted earlier cannot starve a long-queued short query's tail. ---

TEST(PriorityAgingTest, AgedGraphOutranksEqualBasePriority) {
  // Two external threads share a scheduler whose only worker is parked
  // (steal-storm hook), so the drain order of the shared overflow queue is
  // fully deterministic. Thread H1's graph holds the pool in a gate task and
  // leaves a base-priority-1 task ("A") queued; thread H2 then submits a
  // base-priority-1 task ("B") with a large admission age. The aging boost
  // must let B jump A; without it, FIFO runs A first.
  for (bool aged : {true, false}) {
    TaskScheduler::Options options;
    options.threads = 2;
    options.worker0_start_delay_ms = 5000;  // interruptible at shutdown
    TaskScheduler pool(options);

    std::mutex order_mu;
    std::vector<std::string> order;
    auto record = [&](const char* label) {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(label);
    };

    std::atomic<bool> gate_entered{false};
    std::atomic<bool> gate_release{false};
    TaskGraph a;
    a.AddTask(
        [&] {
          gate_entered.store(true, std::memory_order_release);
          while (!gate_release.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
        },
        100);  // H1 drains this first and blocks inside it
    a.AddTask([&] { record("A"); }, 1);
    std::thread h1([&] { pool.RunGraph(a); });
    while (!gate_entered.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }

    // "A" (priority 1) is queued; H1 is pinned in the gate; the worker is
    // parked. H2's task has the same base priority, boosted by its age.
    TaskGraph b;
    b.AddTask([&] { record("B"); }, 1);
    auto stats = std::make_shared<StealStats>();
    const double age =
        aged ? (TaskScheduler::kMaxAgingBoost + 1) *
                   TaskScheduler::kAgingQuantumSeconds
             : 0.0;
    std::thread h2([&] { pool.RunGraph(b, stats, age); });
    h2.join();
    gate_release.store(true, std::memory_order_release);
    h1.join();

    const std::vector<std::string> want =
        aged ? std::vector<std::string>{"B", "A"}
             : std::vector<std::string>{"A", "B"};
    EXPECT_EQ(order, want) << "aged=" << aged;
  }
}

TEST(ExecutorPoolTest, GlobalPoolServesDefaultContext) {
  // ExecContext{threads != 1, pool == nullptr} routes through Global();
  // results still match the serial engine bit for bit.
  DatabaseSchema d = PathSchema(5);
  AttrSet x{0, 4};
  Program p = *YannakakisProgram(d, x);
  std::vector<Relation> states = MakeUR(d, 120, 16 * 120, 3);
  std::vector<Relation> serial = p.Execute(states);

  ExecContext ctx;
  ctx.threads = 2;
  ctx.morsel_rows = 16;
  std::vector<Relation> parallel = Execute(p, states, ctx);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i].IdenticalTo(parallel[i])) << "state " << i;
  }
  EXPECT_GE(ExecutorPool::Global().threads(), 1);
}

// --- Morsel-size auto-tuning (satellite): the formula is part of the
// contract — a morsel of `arity` int64 values targets kMorselTargetBytes,
// clamped to [kMinMorselRows, kMaxMorselRows]. ---

TEST(AutoMorselRowsTest, FormulaPinned) {
  // 256 KiB / (arity * 8 bytes), clamped.
  EXPECT_EQ(AutoMorselRows(1), 32768);
  EXPECT_EQ(AutoMorselRows(2), 16384);
  EXPECT_EQ(AutoMorselRows(3), 10922);
  EXPECT_EQ(AutoMorselRows(4), 8192);
  EXPECT_EQ(AutoMorselRows(16), 2048);
  // Degenerate arity 0 (nullary relations) behaves like arity 1.
  EXPECT_EQ(AutoMorselRows(0), 32768);
  // Huge arities clamp to the dispatch-amortization floor.
  EXPECT_EQ(AutoMorselRows(1000), kMinMorselRows);
  // Every arity stays within the clamp.
  for (int arity = 0; arity <= 64; ++arity) {
    const int64_t rows = AutoMorselRows(arity);
    EXPECT_GE(rows, kMinMorselRows) << "arity " << arity;
    EXPECT_LE(rows, kMaxMorselRows) << "arity " << arity;
  }
}

TEST(AutoMorselRowsTest, ZeroMorselRowsAutoTunesAndMatchesSerial) {
  // The default context (morsel_rows = 0) must auto-tune, not die, and stay
  // bit-identical to serial.
  DatabaseSchema d = PathSchema(6);
  AttrSet x{0, 5};
  Program p = *YannakakisProgram(d, x);
  std::vector<Relation> states = MakeUR(d, 150, 16 * 150, 31);
  std::vector<Relation> serial = p.Execute(states);

  ExecutorPool pool(PoolOptions(4, 2));
  ExecContext ctx;
  ctx.threads = pool.threads();
  ctx.pool = &pool;
  ASSERT_EQ(ctx.morsel_rows, 0);
  std::vector<Relation> parallel = Execute(p, states, ctx);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i].IdenticalTo(parallel[i])) << "state " << i;
  }
}

// --------------------------------------------------------------------------
// TryAdmit: the shedding admission path behind gyo_serve. Deterministic by
// construction — a held Admission occupies the only slot, so a deadline or
// backlog rejection is guaranteed, not a timing accident.

TEST(ExecutorPoolTryAdmitTest, FastPathAdmitsOnFreeSlot) {
  ExecutorPool pool(PoolOptions(2, 1));
  ExecutorPool::AdmitResult r = pool.TryAdmit(/*submitter=*/5);
  ASSERT_EQ(r.status, ExecutorPool::AdmitStatus::kAdmitted);
  ASSERT_NE(r.admission, nullptr);
  EXPECT_EQ(r.queue_wait_seconds, 0.0);

  ExecutorPool::PoolStatus status = pool.Status();
  EXPECT_EQ(status.running, 1);
  EXPECT_EQ(status.waiting, 0);
  ASSERT_EQ(status.submitters.size(), 1u);
  EXPECT_EQ(status.submitters[0].id, 5u);
  EXPECT_EQ(status.submitters[0].running, 1);
  EXPECT_EQ(status.submitters[0].waiting, 0);

  r.admission.reset();
  status = pool.Status();
  EXPECT_EQ(status.running, 0);
  EXPECT_TRUE(status.submitters.empty());
}

TEST(ExecutorPoolTryAdmitTest, DeadlineShedsWhileSlotHeld) {
  ExecutorPool pool(PoolOptions(2, 1));
  ExecutorPool::AdmitResult holder = pool.TryAdmit(1);
  ASSERT_EQ(holder.status, ExecutorPool::AdmitStatus::kAdmitted);

  ExecutorPool::AdmitResult shed = pool.TryAdmit(2, /*max_queue_wait=*/0.02);
  EXPECT_EQ(shed.status, ExecutorPool::AdmitStatus::kDeadlineExceeded);
  EXPECT_EQ(shed.admission, nullptr);
  EXPECT_GE(shed.queue_wait_seconds, 0.02);
  // The shed waiter left no residue: no waiting entry, no fairness-ring slot.
  EXPECT_EQ(pool.waiting_queries(), 0);

  holder.admission.reset();
  ExecutorPool::AdmitResult after = pool.TryAdmit(2, 0.02);
  EXPECT_EQ(after.status, ExecutorPool::AdmitStatus::kAdmitted);
}

TEST(ExecutorPoolTryAdmitTest, PoolDefaultDeadlineApplies) {
  ExecutorPool::Options options = PoolOptions(2, 1);
  options.max_queue_wait_seconds = 0.02;
  ExecutorPool pool(options);
  ExecutorPool::AdmitResult holder = pool.TryAdmit(1);
  ASSERT_EQ(holder.status, ExecutorPool::AdmitStatus::kAdmitted);

  // -1 (the default argument) inherits the pool's configured wait bound.
  ExecutorPool::AdmitResult shed = pool.TryAdmit(2);
  EXPECT_EQ(shed.status, ExecutorPool::AdmitStatus::kDeadlineExceeded);

  // An explicit 0 waits without limit: release concurrently and the waiter
  // must be admitted rather than shed.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    holder.admission.reset();
  });
  ExecutorPool::AdmitResult waited = pool.TryAdmit(2, /*max_queue_wait=*/0.0);
  releaser.join();
  EXPECT_EQ(waited.status, ExecutorPool::AdmitStatus::kAdmitted);
  EXPECT_GT(waited.queue_wait_seconds, 0.0);
}

TEST(ExecutorPoolTryAdmitTest, BacklogBoundRejectsInConstantTime) {
  ExecutorPool::Options options = PoolOptions(2, 1);
  options.max_waiting_per_submitter = 1;
  ExecutorPool pool(options);
  ExecutorPool::AdmitResult holder = pool.TryAdmit(1);
  ASSERT_EQ(holder.status, ExecutorPool::AdmitStatus::kAdmitted);

  // One waiter of submitter 7 occupies its whole backlog quota.
  ExecutorPool::AdmitResult waiter_result;
  std::thread waiter([&] { waiter_result = pool.TryAdmit(7, 0.0); });
  while (pool.waiting_queries(7) != 1) std::this_thread::yield();

  ExecutorPool::AdmitResult rejected = pool.TryAdmit(7, 0.0);
  EXPECT_EQ(rejected.status, ExecutorPool::AdmitStatus::kBacklogFull);
  EXPECT_EQ(rejected.admission, nullptr);
  EXPECT_EQ(rejected.waiting_for_submitter, 1);
  // A different submitter is not throttled by 7's backlog.
  ExecutorPool::PoolStatus status = pool.Status();
  EXPECT_EQ(status.waiting, 1);

  holder.admission.reset();
  waiter.join();
  EXPECT_EQ(waiter_result.status, ExecutorPool::AdmitStatus::kAdmitted);
  waiter_result.admission.reset();
}

TEST(ExecutorPoolTryAdmitTest, ShedWaitersDoNotDisturbFairnessRing) {
  // Submitters 2 and 3 queue behind a held slot; 2's waiter sheds on its
  // deadline. The slot release must then serve 3 — the ring survived the
  // mid-queue removal.
  ExecutorPool pool(PoolOptions(2, 1));
  ExecutorPool::AdmitResult holder = pool.TryAdmit(1);
  ASSERT_EQ(holder.status, ExecutorPool::AdmitStatus::kAdmitted);

  ExecutorPool::AdmitResult shed_result, kept_result;
  std::thread shed_thread([&] { shed_result = pool.TryAdmit(2, 0.02); });
  while (pool.waiting_queries(2) != 1) std::this_thread::yield();
  std::thread kept_thread([&] { kept_result = pool.TryAdmit(3, 0.0); });
  while (pool.waiting_queries(3) != 1) std::this_thread::yield();

  shed_thread.join();
  EXPECT_EQ(shed_result.status, ExecutorPool::AdmitStatus::kDeadlineExceeded);
  EXPECT_EQ(pool.waiting_queries(), 1);

  holder.admission.reset();
  kept_thread.join();
  EXPECT_EQ(kept_result.status, ExecutorPool::AdmitStatus::kAdmitted);
  kept_result.admission.reset();
}

TEST(ExecutorPoolTryAdmitTest, AdmittedQueryExecutesIdenticalToSerial) {
  // The pre-admitted execution path (ExecuteAdmitted) — what gyo_serve runs
  // after a successful TryAdmit — stays bit-identical to serial.
  DatabaseSchema d = PathSchema(5);
  AttrSet x{0, 4};
  Program p = *YannakakisProgram(d, x);
  std::vector<Relation> states = MakeUR(d, 200, 24, 7);
  std::vector<Relation> serial = p.Execute(states);

  ExecutorPool pool(PoolOptions(4, 2));
  ExecutorPool::AdmitResult r = pool.TryAdmit(9);
  ASSERT_EQ(r.status, ExecutorPool::AdmitStatus::kAdmitted);
  ExecContext ctx;
  QueryStats stats;
  ctx.query_stats = &stats;
  std::vector<Relation> admitted =
      ExecuteAdmitted(p, states, ctx, *r.admission);
  r.admission.reset();

  ASSERT_EQ(serial.size(), admitted.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i].IdenticalTo(admitted[i])) << "state " << i;
  }
  EXPECT_EQ(stats.tasks, p.NumStatements());
}

}  // namespace
}  // namespace exec
}  // namespace gyo
