#include "rel/solver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gyo/acyclic.h"
#include "query/tree_projection.h"
#include "schema/fixtures.h"
#include "schema/generators.h"
#include "schema/parse.h"
#include "tableau/canonical.h"
#include "util/rng.h"

namespace gyo {
namespace {

class SolverTest : public ::testing::Test {
 protected:
  Catalog catalog_;
};

TEST_F(SolverTest, FullJoinSolvesEverything) {
  Rng rng(281);
  for (int trial = 0; trial < 25; ++trial) {
    DatabaseSchema d = RandomSchema(2 + static_cast<int>(rng.Below(4)),
                                    2 + static_cast<int>(rng.Below(5)),
                                    1 + static_cast<int>(rng.Below(4)), rng);
    AttrSet x;
    d.Universe().ForEach([&](AttrId a) {
      if (rng.Chance(0.5)) x.Insert(a);
    });
    Program p = FullJoinProgram(d, x);
    EXPECT_TRUE(SolvesQueryEmpirically(p, d, x, 8, rng)) << "trial " << trial;
  }
}

TEST_F(SolverTest, CCPrunedSolvesOnURDatabases) {
  Rng rng(283);
  for (int trial = 0; trial < 25; ++trial) {
    DatabaseSchema d = RandomSchema(2 + static_cast<int>(rng.Below(4)),
                                    2 + static_cast<int>(rng.Below(5)),
                                    1 + static_cast<int>(rng.Below(4)), rng);
    AttrSet x;
    d.Universe().ForEach([&](AttrId a) {
      if (rng.Chance(0.5)) x.Insert(a);
    });
    Program p = CCPrunedProgram(d, x);
    EXPECT_TRUE(SolvesQueryEmpirically(p, d, x, 8, rng)) << "trial " << trial;
  }
}

TEST_F(SolverTest, CCPrunedSec6UsesOnlyRelevantRelations) {
  DatabaseSchema d = fixtures::Sec6D(catalog_);
  AttrSet x = fixtures::Sec6X(catalog_);
  Program p = CCPrunedProgram(d, x);
  // The program should touch only relations 0, 1, 2 (abg, bcg, acf).
  for (const Program::Statement& s : p.Statements()) {
    if (s.lhs < p.num_base()) {
      EXPECT_LE(s.lhs, 2);
    }
    if (s.rhs >= 0 && s.rhs < p.num_base()) {
      EXPECT_LE(s.rhs, 2);
    }
  }
  Rng rng(293);
  EXPECT_TRUE(SolvesQueryEmpirically(p, d, x, 20, rng));
}

TEST_F(SolverTest, YannakakisRejectsCyclic) {
  EXPECT_FALSE(YannakakisProgram(Aring(4), AttrSet{0, 1}).has_value());
}

TEST_F(SolverTest, YannakakisSolvesTreeSchemas) {
  Rng rng(307);
  int checked = 0;
  for (int trial = 0; trial < 120 && checked < 25; ++trial) {
    DatabaseSchema d = RandomSchema(2 + static_cast<int>(rng.Below(4)),
                                    2 + static_cast<int>(rng.Below(5)),
                                    1 + static_cast<int>(rng.Below(4)), rng);
    if (!IsTreeSchema(d)) continue;
    ++checked;
    AttrSet x;
    d.Universe().ForEach([&](AttrId a) {
      if (rng.Chance(0.5)) x.Insert(a);
    });
    auto p = YannakakisProgram(d, x);
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(SolvesQueryEmpirically(*p, d, x, 8, rng)) << "trial " << trial;
  }
  EXPECT_GE(checked, 15);
}

TEST_F(SolverTest, YannakakisWithoutOptionsStillSolves) {
  DatabaseSchema d = PathSchema(5);
  AttrSet x{0, 4};
  Rng rng(311);
  for (bool reduce : {false, true}) {
    for (bool project : {false, true}) {
      auto p = YannakakisProgram(d, x, YannakakisOptions{reduce, project});
      ASSERT_TRUE(p.has_value());
      EXPECT_TRUE(SolvesQueryEmpirically(*p, d, x, 10, rng))
          << "reduce=" << reduce << " project=" << project;
    }
  }
}

TEST_F(SolverTest, YannakakisSemijoinCount) {
  // The full reducer uses exactly 2(n-1) semijoins on a connected tree.
  DatabaseSchema d = PathSchema(6);  // 5 relations
  auto p = YannakakisProgram(d, AttrSet{0});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->NumSemijoins(), 2 * (5 - 1));
}

TEST_F(SolverTest, SemijoinRoundProgramBuildsIndependentChains) {
  // Ring of 4: every relation has exactly two schema-intersecting
  // neighbors, so a round is 4 chains of 2 semijoins whose rhs inputs are
  // all base ids — chains never read each other's results (one task wave).
  DatabaseSchema d = Aring(4);
  SemijoinRound round = SemijoinRoundProgram(d);
  EXPECT_EQ(round.program.NumStatements(), 8);
  EXPECT_EQ(round.program.NumSemijoins(), 8);
  ASSERT_EQ(round.chain_ids.size(), 4u);
  const int n = d.NumRelations();
  std::vector<int> chain_of(static_cast<size_t>(round.program.NumStatements()),
                            -1);
  for (int k = 0; k < round.program.NumStatements(); ++k) {
    const Program::Statement& s =
        round.program.Statements()[static_cast<size_t>(k)];
    EXPECT_LT(s.rhs, n) << "statement " << k << " reads a chain result";
    // A statement's lhs is either a base id (chain head) or the previous
    // statement of the same chain.
    if (s.lhs < n) {
      chain_of[static_cast<size_t>(k)] = s.lhs;
    } else {
      chain_of[static_cast<size_t>(k)] = chain_of[static_cast<size_t>(s.lhs - n)];
      EXPECT_EQ(s.lhs - n, k - 1);
    }
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(chain_of[static_cast<size_t>(round.chain_ids[static_cast<size_t>(i)] - n)], i);
  }
}

TEST_F(SolverTest, SemijoinRoundProgramSkipsDisjointRelations) {
  // Two disconnected edges: no schemas intersect, so a round is empty and
  // every chain id is the base relation itself.
  Catalog c;
  DatabaseSchema d = ParseSchema(c, "ab,cd");
  SemijoinRound round = SemijoinRoundProgram(d);
  EXPECT_EQ(round.program.NumStatements(), 0);
  EXPECT_EQ(round.chain_ids, (std::vector<int>{0, 1}));
}

TEST_F(SolverTest, FullReducerProgramShapeAndFinalIds) {
  DatabaseSchema d = PathSchema(5);  // 4 relations, tree
  auto plan = FullReducerProgram(d);
  ASSERT_TRUE(plan.has_value());
  const int n = d.NumRelations();
  EXPECT_EQ(plan->program.NumStatements(), 2 * (n - 1));
  EXPECT_EQ(plan->program.NumSemijoins(), 2 * (n - 1));
  ASSERT_EQ(plan->final_ids.size(), static_cast<size_t>(n));
  // Every node ends on a statement result and the ids are distinct.
  std::vector<int> sorted = plan->final_ids;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
  for (int id : plan->final_ids) EXPECT_GE(id, n);
  // Cyclic schemas have no full reducer.
  EXPECT_FALSE(FullReducerProgram(Aring(3)).has_value());
}

TEST_F(SolverTest, TreeProjectionProgramOnPaperExample) {
  // Solve the 8-ring query through the §3.2 tree projection bags.
  DatabaseSchema d = fixtures::Sec32D(catalog_);
  AttrSet x = ParseAttrSet(catalog_, "ae");
  DatabaseSchema bags = ParseSchema(catalog_, "abcde,efgha");
  auto p = TreeProjectionProgram(d, x, bags);
  ASSERT_TRUE(p.has_value());
  Rng rng(313);
  EXPECT_TRUE(SolvesQueryEmpirically(*p, d, x, 15, rng));
}

TEST_F(SolverTest, TreeProjectionProgramRejectsCyclicBags) {
  DatabaseSchema d = Aring(4);
  EXPECT_FALSE(TreeProjectionProgram(d, AttrSet{0}, d).has_value());
}

TEST_F(SolverTest, TreeProjectionProgramRejectsNonCoveringBags) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc");
  DatabaseSchema bags = ParseSchema(catalog_, "ab");
  EXPECT_FALSE(TreeProjectionProgram(d, ParseAttrSet(catalog_, "a"), bags)
                   .has_value());
}

TEST_F(SolverTest, TreeProjectionProgramSemijoinBudget) {
  // Theorem 6.1: at most 2·|D| semijoins suffice. Our construction uses
  // 2(|bags|−1) and |bags| ≤ |D| + 1 in practice; check the paper's bound on
  // the example.
  DatabaseSchema d = fixtures::Sec32D(catalog_);
  DatabaseSchema bags = ParseSchema(catalog_, "abcde,efgha");
  auto p = TreeProjectionProgram(d, ParseAttrSet(catalog_, "ae"), bags);
  ASSERT_TRUE(p.has_value());
  EXPECT_LE(p->NumSemijoins(), 2 * d.NumRelations());
}

TEST_F(SolverTest, TreeProjectionProgramOnRandomRingQueries) {
  // Ring of size n with arc bags found by the TP search.
  Rng rng(317);
  for (int n = 4; n <= 7; ++n) {
    DatabaseSchema d = Aring(n);
    AttrSet x{0, n / 2};
    DatabaseSchema dq = d;
    dq.Add(x);
    // Hosts: two overlapping arcs covering the ring.
    AttrSet arc1;
    AttrSet arc2;
    for (int i = 0; i <= n / 2; ++i) arc1.Insert(i);
    for (int i = n / 2; i <= n; ++i) arc2.Insert(i % n);
    DatabaseSchema dp;
    dp.Add(arc1);
    dp.Add(arc2);
    TreeProjectionResult tp = FindTreeProjection(dp, dq);
    ASSERT_TRUE(tp.projection.has_value()) << "n=" << n;
    auto p = TreeProjectionProgram(d, x, *tp.projection);
    ASSERT_TRUE(p.has_value()) << "n=" << n;
    EXPECT_TRUE(SolvesQueryEmpirically(*p, d, x, 10, rng)) << "n=" << n;
  }
}

TEST_F(SolverTest, Theorem63NecessityOnIdentityProgram) {
  // A program with no statements over a cyclic schema cannot solve the ring
  // query, and indeed P(D) = D admits no tree projection w.r.t. D ∪ {X}.
  DatabaseSchema d = Aring(4);
  AttrSet x{0, 2};
  DatabaseSchema dq = d;
  dq.Add(x);
  TreeProjectionResult tp = FindTreeProjection(d, dq);
  EXPECT_FALSE(tp.projection.has_value());
}

TEST_F(SolverTest, Theorem61SufficiencyOnFullJoin) {
  // FullJoinProgram's derived schema contains U(D), so a tree projection
  // w.r.t. CC ∪ {X} exists — consistent with the program solving the query.
  DatabaseSchema d = Aring(5);
  AttrSet x{0, 2};
  Program p = FullJoinProgram(d, x);
  DatabaseSchema derived = p.DerivedSchema(d);
  CanonicalResult cc = CanonicalConnection(d, x);
  DatabaseSchema dq = cc.schema;
  dq.Add(x);
  TreeProjectionResult tp = FindTreeProjection(derived, dq);
  EXPECT_TRUE(tp.projection.has_value());
}

}  // namespace
}  // namespace gyo
