// Theorem 5.2 and Corollary 5.3 (§5.1): minimum-cardinality sub-schemas that
// preserve a query are exactly pinned down by canonical connections, and
// their joins are lossless.

#include <gtest/gtest.h>

#include "query/lossless.h"
#include "query/query.h"
#include "schema/generators.h"
#include "schema/parse.h"
#include "tableau/canonical.h"
#include "util/rng.h"

namespace gyo {
namespace {

// Enumerates all index subsets of d and returns those D' ⊆ D of minimum
// cardinality with (D, X) ≡ (D', X) (and X ⊆ U(D')).
std::vector<std::vector<int>> MinimumEquivalentSubschemas(
    const DatabaseSchema& d, const AttrSet& x) {
  const int n = d.NumRelations();
  std::vector<std::vector<int>> best;
  size_t best_size = static_cast<size_t>(n) + 1;
  for (uint32_t mask = 1; mask < (uint32_t{1} << n); ++mask) {
    std::vector<int> indices;
    for (int i = 0; i < n; ++i) {
      if ((mask >> i) & 1) indices.push_back(i);
    }
    if (indices.size() > best_size) continue;
    DatabaseSchema sub = d.Select(indices);
    if (!x.IsSubsetOf(sub.Universe())) continue;
    if (!WeaklyEquivalent(d, sub, x)) continue;
    if (indices.size() < best_size) {
      best_size = indices.size();
      best.clear();
    }
    best.push_back(indices);
  }
  return best;
}

class Theorem52Test : public ::testing::Test {
 protected:
  Catalog catalog_;
};

TEST_F(Theorem52Test, Sec6ExampleMinimumSubschema) {
  // For the §6 query, the minimum equivalent sub-schema is (abg, bcg, acf).
  DatabaseSchema d = ParseSchema(catalog_, "abg,bcg,acf,ad,de,ea");
  AttrSet x = ParseAttrSet(catalog_, "abc");
  auto witnesses = MinimumEquivalentSubschemas(d, x);
  ASSERT_FALSE(witnesses.empty());
  EXPECT_EQ(witnesses[0].size(), 3u);
  for (const auto& w : witnesses) {
    DatabaseSchema sub = d.Select(w);
    // Corollary 5.3: the minimum witness has a lossless join under ⋈D.
    EXPECT_TRUE(JoinDependencyImplies(d, sub));
    // Theorem 5.2: CC(D, U(D')) = D' (the witness is reduced here).
    CanonicalResult cc = CanonicalConnection(d, sub.Universe());
    EXPECT_TRUE(cc.schema.EqualsAsMultiset(sub));
  }
}

TEST_F(Theorem52Test, RandomizedTheorem52) {
  Rng rng(467);
  int verified = 0;
  for (int trial = 0; trial < 120 && verified < 40; ++trial) {
    DatabaseSchema d = RandomSchema(2 + static_cast<int>(rng.Below(4)),
                                    2 + static_cast<int>(rng.Below(4)),
                                    1 + static_cast<int>(rng.Below(3)), rng);
    AttrSet x;
    d.Universe().ForEach([&](AttrId a) {
      if (rng.Chance(0.4)) x.Insert(a);
    });
    if (x.Empty()) continue;
    auto witnesses = MinimumEquivalentSubschemas(d, x);
    if (witnesses.empty()) continue;
    for (const auto& w : witnesses) {
      DatabaseSchema sub = d.Select(w);
      ++verified;
      // Corollary 5.3: lossless.
      EXPECT_TRUE(JoinDependencyImplies(d, sub))
          << "trial " << trial << " witness size " << w.size();
      // Theorem 5.2: CC(D, U(D')) = D' when D' is reduced; in general the
      // canonical connection is covered by D'.
      CanonicalResult cc = CanonicalConnection(d, sub.Universe());
      if (sub.IsReduced()) {
        EXPECT_TRUE(cc.schema.EqualsAsMultiset(sub))
            << "trial " << trial;
      } else {
        EXPECT_TRUE(cc.schema.CoveredBy(sub)) << "trial " << trial;
      }
    }
  }
  EXPECT_GE(verified, 40);
}

TEST_F(Theorem52Test, MinimumWitnessAlwaysCoversCC) {
  // Every minimum witness must cover CC(D, X) (Theorem 4.1 necessity), and
  // |witness| can not beat |CC(D, X)|.
  Rng rng(479);
  for (int trial = 0; trial < 60; ++trial) {
    DatabaseSchema d = RandomSchema(2 + static_cast<int>(rng.Below(4)),
                                    2 + static_cast<int>(rng.Below(4)),
                                    1 + static_cast<int>(rng.Below(3)), rng);
    AttrSet x;
    d.Universe().ForEach([&](AttrId a) {
      if (rng.Chance(0.4)) x.Insert(a);
    });
    if (x.Empty()) continue;
    CanonicalResult cc = CanonicalConnection(d, x);
    auto witnesses = MinimumEquivalentSubschemas(d, x);
    for (const auto& w : witnesses) {
      DatabaseSchema sub = d.Select(w);
      EXPECT_TRUE(cc.schema.CoveredBy(sub)) << "trial " << trial;
      EXPECT_LE(static_cast<int>(w.size()), d.NumRelations());
    }
  }
}

}  // namespace
}  // namespace gyo
