#include "query/treefication.h"

#include <gtest/gtest.h>

#include "gyo/acyclic.h"
#include "schema/generators.h"
#include "schema/parse.h"
#include "util/rng.h"

namespace gyo {
namespace {

class TreeficationTest : public ::testing::Test {
 protected:
  Catalog catalog_;

  static void ExpectSolutionTreefies(const DatabaseSchema& d,
                                     const TreeficationResult& r, int k,
                                     int b) {
    ASSERT_TRUE(r.feasible);
    EXPECT_LE(static_cast<int>(r.added.size()), k);
    DatabaseSchema augmented = d;
    for (const AttrSet& s : r.added) {
      EXPECT_LE(s.Size(), b);
      augmented.Add(s);
    }
    EXPECT_TRUE(IsTreeSchema(augmented));
  }
};

TEST_F(TreeficationTest, TreeSchemaNeedsNothing) {
  DatabaseSchema d = PathSchema(5);
  TreeficationResult r = FixedTreefication(d, 0, 0);
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(r.added.empty());
}

TEST_F(TreeficationTest, RingNeedsItsUniverse) {
  DatabaseSchema d = Aring(4);
  // One relation of size 4 (the universe) suffices...
  ExpectSolutionTreefies(d, FixedTreefication(d, 1, 4), 1, 4);
  // ...but size 3 does not (Cor 3.2: the least treefying relation is U(GR)).
  EXPECT_FALSE(FixedTreefication(d, 1, 3).feasible);
}

TEST_F(TreeficationTest, SixRingSplitsAcrossTwoRelations) {
  // A 6-ring cannot be treefied by one relation of size 4, but CAN by two:
  // e.g. {0,1,2,3} and {0,3,4,5}.
  DatabaseSchema d = Aring(6);
  EXPECT_FALSE(FixedTreefication(d, 1, 4).feasible);
  TreeficationResult two = FixedTreefication(d, 2, 4);
  ExpectSolutionTreefies(d, two, 2, 4);
}

TEST_F(TreeficationTest, ZeroBudgetOnCyclicFails) {
  EXPECT_FALSE(FixedTreefication(Aring(4), 0, 4).feasible);
  EXPECT_FALSE(FixedTreefication(Aring(4), 2, 1).feasible);
}

TEST_F(TreeficationTest, FFDSolvesDisjointCliques) {
  // Two Acliques of size 3 fit one per bin with capacity 3.
  BinPackingInstance inst{{3, 3}, 3, 2};
  DatabaseSchema d = BinPackingToSchema(inst);
  TreeficationResult r = FixedTreeficationFFD(d, 2, 3);
  ExpectSolutionTreefies(d, r, 2, 3);
  // One bin is not enough at capacity 3.
  EXPECT_FALSE(FixedTreeficationFFD(d, 1, 3).feasible);
}

TEST_F(TreeficationTest, FFDSolutionsAlwaysTreefy) {
  Rng rng(199);
  for (int trial = 0; trial < 60; ++trial) {
    DatabaseSchema d = RandomSchema(3 + static_cast<int>(rng.Below(5)),
                                    3 + static_cast<int>(rng.Below(6)),
                                    2 + static_cast<int>(rng.Below(3)), rng);
    TreeficationResult r = FixedTreeficationFFD(d, 3, 6);
    if (r.feasible) {
      DatabaseSchema augmented = d;
      for (const AttrSet& s : r.added) augmented.Add(s);
      EXPECT_TRUE(IsTreeSchema(augmented)) << "trial " << trial;
    }
  }
}

TEST_F(TreeficationTest, ExactSolutionsAlwaysTreefy) {
  Rng rng(211);
  for (int trial = 0; trial < 30; ++trial) {
    DatabaseSchema d = RandomSchema(3 + static_cast<int>(rng.Below(4)),
                                    3 + static_cast<int>(rng.Below(4)),
                                    2 + static_cast<int>(rng.Below(2)), rng);
    int k = 1 + static_cast<int>(rng.Below(2));
    int b = 2 + static_cast<int>(rng.Below(4));
    TreeficationResult r = FixedTreefication(d, k, b);
    if (r.feasible) ExpectSolutionTreefies(d, r, k, b);
  }
}

TEST_F(TreeficationTest, BinPackingToSchemaShape) {
  BinPackingInstance inst{{3, 4}, 4, 2};
  DatabaseSchema d = BinPackingToSchema(inst);
  EXPECT_EQ(d.NumRelations(), 7);       // 3 + 4 clique members
  EXPECT_EQ(d.Universe().Size(), 7);    // disjoint attribute blocks
  EXPECT_TRUE(IsCyclicSchema(d));
}

TEST_F(TreeficationTest, SolveBinPackingExactBasics) {
  EXPECT_TRUE(SolveBinPackingExact({{3, 3}, 3, 2}));
  EXPECT_FALSE(SolveBinPackingExact({{3, 3}, 3, 1}));
  EXPECT_TRUE(SolveBinPackingExact({{3, 3}, 6, 1}));
  EXPECT_FALSE(SolveBinPackingExact({{7}, 6, 3}));  // item exceeds capacity
  EXPECT_TRUE(SolveBinPackingExact({{}, 3, 0}));    // nothing to pack
  EXPECT_TRUE(SolveBinPackingExact({{4, 3, 3, 4, 3, 3}, 10, 2}));
  EXPECT_FALSE(SolveBinPackingExact({{4, 4, 4, 4, 4}, 9, 2}));
}

TEST_F(TreeficationTest, Theorem42ReductionAgreesWithBinPacking) {
  // Bin packing is feasible iff the Aclique schema is fixed-treefiable.
  Rng rng(223);
  int feasible_seen = 0;
  int infeasible_seen = 0;
  for (int trial = 0; trial < 40; ++trial) {
    int items = 1 + static_cast<int>(rng.Below(2));
    BinPackingInstance inst;
    for (int i = 0; i < items; ++i) {
      inst.sizes.push_back(3 + static_cast<int>(rng.Below(2)));
    }
    inst.capacity = 3 + static_cast<int>(rng.Below(5));
    inst.bins = 1 + static_cast<int>(rng.Below(2));
    DatabaseSchema d = BinPackingToSchema(inst);
    if (d.Universe().Size() > 8) continue;
    bool packs = SolveBinPackingExact(inst);
    TreeficationResult r =
        FixedTreefication(d, inst.bins, inst.capacity);
    ASSERT_FALSE(r.exhausted) << "trial " << trial;
    EXPECT_EQ(packs, r.feasible) << "trial " << trial;
    if (packs) {
      ++feasible_seen;
    } else {
      ++infeasible_seen;
    }
  }
  EXPECT_GE(feasible_seen, 5);
  EXPECT_GE(infeasible_seen, 5);
}

}  // namespace
}  // namespace gyo
