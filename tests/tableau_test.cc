#include "tableau/tableau.h"

#include <gtest/gtest.h>

#include "schema/parse.h"

namespace gyo {
namespace {

class TableauTest : public ::testing::Test {
 protected:
  Catalog catalog_;
};

TEST_F(TableauTest, StandardShape) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc");
  Tableau t = Tableau::Standard(d, ParseAttrSet(catalog_, "ac"));
  EXPECT_EQ(t.NumRows(), 2);
  EXPECT_EQ(t.NumCols(), 3);
  EXPECT_EQ(t.Summary(), ParseAttrSet(catalog_, "ac"));
}

TEST_F(TableauTest, StandardSymbolPlacement) {
  // D = (ab, bc), X = ac. Columns in id order: a, b, c.
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc");
  AttrSet x = ParseAttrSet(catalog_, "ac");
  Tableau t = Tableau::Standard(d, x);
  int col_a = 0;
  int col_b = 1;
  int col_c = 2;
  // Row 0 (ab): a distinguished (a ∈ R0 ∩ X), b shared (b ∈ R0 − X),
  // c unique.
  EXPECT_EQ(t.Cell(0, col_a), Tableau::kDistinguished);
  EXPECT_EQ(t.Cell(0, col_b), Tableau::kShared);
  EXPECT_GE(t.Cell(0, col_c), 2);
  // Row 1 (bc): a unique, b shared (same variable as row 0!), c distinguished.
  EXPECT_GE(t.Cell(1, col_a), 2);
  EXPECT_EQ(t.Cell(1, col_b), Tableau::kShared);
  EXPECT_EQ(t.Cell(1, col_c), Tableau::kDistinguished);
  // The shared b-variable is literally the same symbol in both rows.
  EXPECT_EQ(t.Cell(0, col_b), t.Cell(1, col_b));
  // Unique symbols differ between rows.
  EXPECT_NE(t.Cell(0, col_c), t.Cell(1, col_c));
}

TEST_F(TableauTest, UniqueSymbolsKeyedByOriginRow) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,cd");
  Tableau t = Tableau::Standard(d, ParseAttrSet(catalog_, "ad"));
  // Unique symbol of row i is 2 + i.
  EXPECT_EQ(t.Cell(0, 2), 2 + 0);  // c-column of row 0
  EXPECT_EQ(t.Cell(2, 0), 2 + 2);  // a-column of row 2
}

TEST_F(TableauTest, RowOrigins) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,cd");
  Tableau t = Tableau::Standard(d, ParseAttrSet(catalog_, "a"));
  EXPECT_EQ(t.RowOrigins(), (std::vector<int>{0, 1, 2}));
}

TEST_F(TableauTest, SelectRowsPreservesSymbolsAndOrigins) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,cd");
  Tableau t = Tableau::Standard(d, ParseAttrSet(catalog_, "ad"));
  Tableau s = t.SelectRows({2, 0});
  EXPECT_EQ(s.NumRows(), 2);
  EXPECT_EQ(s.RowOrigin(0), 2);
  EXPECT_EQ(s.RowOrigin(1), 0);
  for (int c = 0; c < t.NumCols(); ++c) {
    EXPECT_EQ(s.Cell(0, c), t.Cell(2, c));
    EXPECT_EQ(s.Cell(1, c), t.Cell(0, c));
  }
}

TEST_F(TableauTest, AlignExtendsColumns) {
  DatabaseSchema d1 = ParseSchema(catalog_, "ab");
  DatabaseSchema d2 = ParseSchema(catalog_, "ab,bc");
  AttrSet x = ParseAttrSet(catalog_, "a");
  Tableau t1 = Tableau::Standard(d1, x);
  Tableau t2 = Tableau::Standard(d2, x);
  EXPECT_EQ(t1.NumCols(), 2);
  Tableau::Align(t1, t2);
  EXPECT_EQ(t1.NumCols(), 3);
  EXPECT_EQ(t2.NumCols(), 3);
  EXPECT_EQ(t1.Columns(), t2.Columns());
  // The added c-cell of t1's row is a unique symbol.
  EXPECT_GE(t1.Cell(0, 2), 2);
}

TEST_F(TableauTest, EmptyTargetHasNoDistinguished) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc");
  Tableau t = Tableau::Standard(d, AttrSet());
  for (int r = 0; r < t.NumRows(); ++r) {
    for (int c = 0; c < t.NumCols(); ++c) {
      EXPECT_NE(t.Cell(r, c), Tableau::kDistinguished);
    }
  }
}

TEST_F(TableauTest, FullTargetHasNoShared) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc");
  Tableau t = Tableau::Standard(d, d.Universe());
  for (int r = 0; r < t.NumRows(); ++r) {
    for (int c = 0; c < t.NumCols(); ++c) {
      EXPECT_NE(t.Cell(r, c), Tableau::kShared);
    }
  }
}

TEST_F(TableauTest, FormatMentionsAllColumns) {
  DatabaseSchema d = ParseSchema(catalog_, "ab");
  Tableau t = Tableau::Standard(d, ParseAttrSet(catalog_, "a"));
  std::string s = t.Format(catalog_);
  EXPECT_NE(s.find('a'), std::string::npos);
  EXPECT_NE(s.find('b'), std::string::npos);
}

}  // namespace
}  // namespace gyo
