#include "rel/relation.h"

#include <gtest/gtest.h>

#include "schema/parse.h"

namespace gyo {
namespace {

class RelationTest : public ::testing::Test {
 protected:
  Catalog catalog_;
};

TEST_F(RelationTest, EmptyRelation) {
  Relation r(ParseAttrSet(catalog_, "ab"));
  EXPECT_EQ(r.Arity(), 2);
  EXPECT_EQ(r.NumRows(), 0);
  EXPECT_TRUE(r.Empty());
}

TEST_F(RelationTest, AttrsSortedById) {
  AttrSet s = ParseAttrSet(catalog_, "ba");  // interned in order b, a
  Relation r(s);
  EXPECT_EQ(r.Attrs().size(), 2u);
  EXPECT_LT(r.Attrs()[0], r.Attrs()[1]);
}

TEST_F(RelationTest, AddAndAccess) {
  Relation r(ParseAttrSet(catalog_, "ab"));
  r.AddRow({1, 2});
  r.AddRow({3, 4});
  EXPECT_EQ(r.NumRows(), 2);
  AttrId a = *catalog_.Find("a");
  AttrId b = *catalog_.Find("b");
  EXPECT_EQ(r.At(0, a), 1);
  EXPECT_EQ(r.At(0, b), 2);
  EXPECT_EQ(r.At(1, a), 3);
}

TEST_F(RelationTest, CanonicalizeSortsAndDedupes) {
  Relation r(ParseAttrSet(catalog_, "a"));
  r.AddRow({5});
  r.AddRow({1});
  r.AddRow({5});
  r.Canonicalize();
  EXPECT_EQ(r.NumRows(), 2);
  EXPECT_EQ(r.Row(0), (std::vector<Value>{1}));
  EXPECT_EQ(r.Row(1), (std::vector<Value>{5}));
}

TEST_F(RelationTest, EqualsAsSet) {
  AttrSet s = ParseAttrSet(catalog_, "ab");
  Relation r1(s);
  Relation r2(s);
  r1.AddRow({1, 2});
  r1.AddRow({3, 4});
  r2.AddRow({3, 4});
  r2.AddRow({1, 2});
  r1.Canonicalize();
  r2.Canonicalize();
  EXPECT_TRUE(r1.EqualsAsSet(r2));
  r2.AddRow({9, 9});
  r2.Canonicalize();
  EXPECT_FALSE(r1.EqualsAsSet(r2));
}

TEST_F(RelationTest, DifferentSchemasNeverEqual) {
  Relation r1(ParseAttrSet(catalog_, "a"));
  Relation r2(ParseAttrSet(catalog_, "b"));
  EXPECT_FALSE(r1.EqualsAsSet(r2));
}

TEST_F(RelationTest, NullaryRelation) {
  // Arity-0 relations represent TRUE (one empty tuple) or FALSE (none).
  Relation r(AttrSet{});
  EXPECT_EQ(r.Arity(), 0);
  r.AddRow({});
  r.AddRow({});
  r.Canonicalize();
  EXPECT_EQ(r.NumRows(), 1);
}

TEST_F(RelationTest, FormatShowsSchemaAndRows) {
  Relation r(ParseAttrSet(catalog_, "ab"));
  r.AddRow({7, 8});
  std::string s = r.Format(catalog_);
  EXPECT_NE(s.find("ab"), std::string::npos);
  EXPECT_NE(s.find('7'), std::string::npos);
}

}  // namespace
}  // namespace gyo
