#include "rel/relation.h"

#include <gtest/gtest.h>

#include "schema/parse.h"

namespace gyo {
namespace {

class RelationTest : public ::testing::Test {
 protected:
  Catalog catalog_;
};

TEST_F(RelationTest, EmptyRelation) {
  Relation r(ParseAttrSet(catalog_, "ab"));
  EXPECT_EQ(r.Arity(), 2);
  EXPECT_EQ(r.NumRows(), 0);
  EXPECT_TRUE(r.Empty());
}

TEST_F(RelationTest, AttrsSortedById) {
  AttrSet s = ParseAttrSet(catalog_, "ba");  // interned in order b, a
  Relation r(s);
  EXPECT_EQ(r.Attrs().size(), 2u);
  EXPECT_LT(r.Attrs()[0], r.Attrs()[1]);
}

TEST_F(RelationTest, AddAndAccess) {
  Relation r(ParseAttrSet(catalog_, "ab"));
  r.AddRow({1, 2});
  r.AddRow({3, 4});
  EXPECT_EQ(r.NumRows(), 2);
  AttrId a = *catalog_.Find("a");
  AttrId b = *catalog_.Find("b");
  EXPECT_EQ(r.At(0, a), 1);
  EXPECT_EQ(r.At(0, b), 2);
  EXPECT_EQ(r.At(1, a), 3);
}

TEST_F(RelationTest, CanonicalizeSortsAndDedupes) {
  Relation r(ParseAttrSet(catalog_, "a"));
  r.AddRow({5});
  r.AddRow({1});
  r.AddRow({5});
  r.Canonicalize();
  EXPECT_EQ(r.NumRows(), 2);
  EXPECT_EQ(r.Row(0), (std::vector<Value>{1}));
  EXPECT_EQ(r.Row(1), (std::vector<Value>{5}));
}

TEST_F(RelationTest, EqualsAsSet) {
  AttrSet s = ParseAttrSet(catalog_, "ab");
  Relation r1(s);
  Relation r2(s);
  r1.AddRow({1, 2});
  r1.AddRow({3, 4});
  r2.AddRow({3, 4});
  r2.AddRow({1, 2});
  r1.Canonicalize();
  r2.Canonicalize();
  EXPECT_TRUE(r1.EqualsAsSet(r2));
  r2.AddRow({9, 9});
  r2.Canonicalize();
  EXPECT_FALSE(r1.EqualsAsSet(r2));
}

TEST_F(RelationTest, DifferentSchemasNeverEqual) {
  Relation r1(ParseAttrSet(catalog_, "a"));
  Relation r2(ParseAttrSet(catalog_, "b"));
  EXPECT_FALSE(r1.EqualsAsSet(r2));
}

TEST_F(RelationTest, NullaryRelation) {
  // Arity-0 relations represent TRUE (one empty tuple) or FALSE (none).
  Relation r(AttrSet{});
  EXPECT_EQ(r.Arity(), 0);
  r.AddRow({});
  r.AddRow({});
  r.Canonicalize();
  EXPECT_EQ(r.NumRows(), 1);
}

TEST_F(RelationTest, ColumnsAreFlatAndContiguous) {
  Relation r(ParseAttrSet(catalog_, "ab"));
  r.AddRow({1, 2});
  r.AddRow({3, 4});
  // Column-major: each attribute's values are back to back in one arena.
  const Value* a = r.ColData(0);
  const Value* b = r.ColData(1);
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(a[1], 3);
  EXPECT_EQ(b[0], 2);
  EXPECT_EQ(b[1], 4);
  EXPECT_EQ(r.Cell(1, 0), 3);
  EXPECT_EQ(r.ArenaBytes(),
            static_cast<int64_t>(4 * sizeof(Value)));  // 2 rows × 2 cols
}

TEST_F(RelationTest, ReserveAndAppendRowsWriteInPlace) {
  Relation r(ParseAttrSet(catalog_, "abc"));
  r.Reserve(100);
  const int64_t first = r.AppendRows(100);
  EXPECT_EQ(first, 0);
  for (Value i = 0; i < 100; ++i) {
    r.ColData(0)[first + i] = i;
    r.ColData(1)[first + i] = i * 2;
    r.ColData(2)[first + i] = i * 3;
  }
  EXPECT_EQ(r.NumRows(), 100);
  EXPECT_EQ(r.Row(42), (std::vector<Value>{42, 84, 126}));
  // A second block appends after the first.
  EXPECT_EQ(r.AppendRows(10), 100);
  EXPECT_EQ(r.NumRows(), 110);
}

TEST_F(RelationTest, AddRowMayAliasOwnArena) {
  Relation r(ParseAttrSet(catalog_, "a"));
  r.AddRow({7});
  // Re-appending a value read from the relation's own column arena must
  // survive the reallocations the appends trigger.
  for (int i = 0; i < 40; ++i) {
    r.AddRow(r.ColData(0) + (r.NumRows() - 1), 1);
  }
  EXPECT_EQ(r.NumRows(), 41);
  for (RowRef row : r.Rows()) {
    EXPECT_EQ(row, (std::vector<Value>{7}));
  }
}

TEST_F(RelationTest, IdenticalToRequiresSameOrderAndFlags) {
  AttrSet s = ParseAttrSet(catalog_, "ab");
  Relation r1(s);
  Relation r2(s);
  r1.AddRow({1, 2});
  r1.AddRow({3, 4});
  r2.AddRow({3, 4});
  r2.AddRow({1, 2});
  EXPECT_TRUE(r1.EqualsAsSet(r2));   // same set...
  // ...but EqualsAsSet canonicalized both sides, so they are now also
  // physically identical.
  EXPECT_TRUE(r1.IdenticalTo(r2));
  Relation r3(s);
  r3.AddRow({1, 2});
  r3.AddRow({3, 4});
  EXPECT_FALSE(r1.IdenticalTo(r3));  // canonical flag differs
  r3.Canonicalize();
  EXPECT_TRUE(r1.IdenticalTo(r3));
}

TEST_F(RelationTest, RowRefComparesAndIterates) {
  Relation r(ParseAttrSet(catalog_, "ab"));
  r.AddRow({1, 2});
  r.AddRow({1, 2});
  r.AddRow({3, 4});
  EXPECT_TRUE(r.Row(0) == r.Row(1));
  EXPECT_TRUE(r.Row(0) != r.Row(2));
  EXPECT_TRUE(r.Row(0) < r.Row(2));
  Value sum = 0;
  for (RowRef row : r.Rows()) {
    for (Value v : row) sum += v;
  }
  EXPECT_EQ(sum, 13);
  EXPECT_EQ(r.Row(2).ToVector(), (std::vector<Value>{3, 4}));
}

TEST_F(RelationTest, CanonicalizationIsLazy) {
  Relation r(ParseAttrSet(catalog_, "a"));
  EXPECT_TRUE(r.IsCanonical());  // empty relation is trivially canonical
  r.AddRow({5});
  r.AddRow({1});
  r.AddRow({5});
  EXPECT_FALSE(r.IsCanonical());
  EXPECT_EQ(r.NumRows(), 3);  // bag count until canonicalized
  r.Canonicalize();
  EXPECT_TRUE(r.IsCanonical());
  EXPECT_EQ(r.NumRows(), 2);
  r.Canonicalize();  // idempotent
  EXPECT_EQ(r.NumRows(), 2);
}

TEST_F(RelationTest, EqualsAsSetCanonicalizesOnDemand) {
  AttrSet s = ParseAttrSet(catalog_, "ab");
  Relation r1(s);
  Relation r2(s);
  r1.AddRow({1, 2});
  r1.AddRow({3, 4});
  r2.AddRow({3, 4});
  r2.AddRow({1, 2});
  r2.AddRow({3, 4});  // duplicate: still the same set
  // No explicit Canonicalize() anywhere.
  EXPECT_TRUE(r1.EqualsAsSet(r2));
  EXPECT_TRUE(r1.IsCanonical());  // comparison canonicalized both sides
  EXPECT_TRUE(r2.IsCanonical());
  EXPECT_EQ(r2.NumRows(), 2);
}

TEST_F(RelationTest, CanonicalizeManyRowsSortsAndDedupes) {
  Relation r(ParseAttrSet(catalog_, "ab"));
  const Value n = 512;
  const int64_t first = r.AppendRows(2 * n);
  for (Value i = n - 1; i >= 0; --i) {  // descending, twice
    const int64_t at = first + 2 * (n - 1 - i);
    r.ColData(0)[at] = i % 7;
    r.ColData(1)[at] = i;
    r.ColData(0)[at + 1] = i % 7;
    r.ColData(1)[at + 1] = i;
  }
  r.Canonicalize();
  EXPECT_EQ(r.NumRows(), n);
  for (int64_t i = 0; i + 1 < r.NumRows(); ++i) {
    EXPECT_TRUE(r.Row(i) < r.Row(i + 1)) << "row " << i;
  }
}

TEST_F(RelationTest, FormatShowsSchemaAndRows) {
  Relation r(ParseAttrSet(catalog_, "ab"));
  r.AddRow({7, 8});
  std::string s = r.Format(catalog_);
  EXPECT_NE(s.find("ab"), std::string::npos);
  EXPECT_NE(s.find('7'), std::string::npos);
}

// --- Per-column zone maps (ZoneRange): maintained by AddRow, invalidated
// by AppendRows (writes happen behind the relation's back), rebuilt by
// Canonicalize. ---

TEST_F(RelationTest, ZoneMapUnknownOnEmptyRelation) {
  Relation r(ParseAttrSet(catalog_, "ab"));
  Value lo, hi;
  EXPECT_FALSE(r.ZoneRange(0, &lo, &hi));
}

TEST_F(RelationTest, ZoneMapTracksAddRow) {
  Relation r(ParseAttrSet(catalog_, "ab"));
  r.AddRow({5, -2});
  Value lo, hi;
  ASSERT_TRUE(r.ZoneRange(0, &lo, &hi));
  EXPECT_EQ(lo, 5);
  EXPECT_EQ(hi, 5);
  r.AddRow({3, 9});
  r.AddRow({7, 0});
  ASSERT_TRUE(r.ZoneRange(0, &lo, &hi));
  EXPECT_EQ(lo, 3);
  EXPECT_EQ(hi, 7);
  ASSERT_TRUE(r.ZoneRange(1, &lo, &hi));
  EXPECT_EQ(lo, -2);
  EXPECT_EQ(hi, 9);
}

TEST_F(RelationTest, ZoneMapInvalidatedByAppendRowsRebuiltByCanonicalize) {
  Relation r(ParseAttrSet(catalog_, "ab"));
  r.AddRow({1, 1});
  const int64_t at = r.AppendRows(2);
  r.ColData(0)[at] = 10;
  r.ColData(1)[at] = -5;
  r.ColData(0)[at + 1] = 4;
  r.ColData(1)[at + 1] = 2;
  Value lo, hi;
  EXPECT_FALSE(r.ZoneRange(0, &lo, &hi));  // arenas mutated behind our back
  r.Canonicalize();
  ASSERT_TRUE(r.ZoneRange(0, &lo, &hi));
  EXPECT_EQ(lo, 1);
  EXPECT_EQ(hi, 10);
  ASSERT_TRUE(r.ZoneRange(1, &lo, &hi));
  EXPECT_EQ(lo, -5);
  EXPECT_EQ(hi, 2);
}

TEST_F(RelationTest, ZoneMapSurvivesCanonicalizeOfAddRowData) {
  Relation r(ParseAttrSet(catalog_, "a"));
  r.AddRow({9});
  r.AddRow({2});
  r.AddRow({9});  // duplicate: dropped by canonicalization, range unchanged
  r.Canonicalize();
  Value lo, hi;
  ASSERT_TRUE(r.ZoneRange(0, &lo, &hi));
  EXPECT_EQ(lo, 2);
  EXPECT_EQ(hi, 9);
}

}  // namespace
}  // namespace gyo
