#include "rel/reducer.h"

#include <gtest/gtest.h>

#include "exec/executor_pool.h"
#include "gyo/acyclic.h"
#include "rel/ops.h"
#include "rel/solver.h"
#include "rel/universal.h"
#include "schema/generators.h"
#include "schema/parse.h"
#include "util/rng.h"

namespace gyo {
namespace {

class ReducerTest : public ::testing::Test {
 protected:
  Catalog catalog_;

  // The classic cyclic counterexample: a triangle of "inequality" relations,
  // pairwise consistent yet with an empty join.
  std::vector<Relation> InconsistentTriangle(DatabaseSchema* schema) {
    *schema = Aring(3);  // relations {0,1}, {1,2}, {0,2}
    std::vector<Relation> states;
    for (const RelationSchema& r : schema->Relations()) {
      Relation rel(r);
      rel.AddRow({0, 1});
      rel.AddRow({1, 0});
      rel.Canonicalize();
      states.push_back(rel);
    }
    return states;
  }
};

TEST_F(ReducerTest, URDatabasesAreGloballyConsistent) {
  // π_R(I) states always equal the projections of their own join.
  Rng rng(443);
  for (int trial = 0; trial < 40; ++trial) {
    DatabaseSchema d = RandomSchema(2 + static_cast<int>(rng.Below(4)),
                                    2 + static_cast<int>(rng.Below(5)),
                                    1 + static_cast<int>(rng.Below(4)), rng);
    Relation universal = RandomUniversal(
        d.Universe(), 1 + static_cast<int>(rng.Below(20)), 3, rng);
    std::vector<Relation> states = ProjectDatabase(universal, d);
    EXPECT_TRUE(IsGloballyConsistent(d, states)) << "trial " << trial;
  }
}

TEST_F(ReducerTest, RandomStatesAreUsuallyInconsistent) {
  // Independent random states over a path schema dangle with overwhelming
  // probability; make sure the detector actually fires.
  Rng rng(449);
  DatabaseSchema d = PathSchema(4);
  int inconsistent = 0;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Relation> states = RandomStates(d, 6, 8, rng);
    if (!IsGloballyConsistent(d, states)) ++inconsistent;
  }
  EXPECT_GE(inconsistent, 15);
}

TEST_F(ReducerTest, FullReducerMakesTreeStatesConsistent) {
  // The §4 claim: for tree schemas, 2(n-1) semijoins reach global
  // consistency from ANY state — not just UR ones.
  Rng rng(457);
  int checked = 0;
  for (int trial = 0; trial < 80 && checked < 25; ++trial) {
    DatabaseSchema d = RandomTreeSchema(2 + static_cast<int>(rng.Below(5)), 3,
                                        rng).schema;
    ++checked;
    std::vector<Relation> states = RandomStates(d, 8, 3, rng);
    auto reduced = ApplyFullReducer(d, states);
    ASSERT_TRUE(reduced.has_value());
    EXPECT_TRUE(IsGloballyConsistent(d, *reduced)) << "trial " << trial;
    // Reduction never loses join tuples.
    Relation before = JoinAll(states);
    Relation after = JoinAll(*reduced);
    EXPECT_TRUE(before.EqualsAsSet(after)) << "trial " << trial;
  }
  EXPECT_GE(checked, 25);
}

TEST_F(ReducerTest, FullReducerRejectsCyclicSchemas) {
  DatabaseSchema d;
  std::vector<Relation> states = InconsistentTriangle(&d);
  EXPECT_FALSE(ApplyFullReducer(d, states).has_value());
}

TEST_F(ReducerTest, CyclicSchemasDefeatSemijoins) {
  // Bernstein–Goodman: the triangle state is a semijoin fixpoint (every
  // pairwise semijoin is the identity) yet globally inconsistent — no
  // semijoin program can fully reduce a cyclic schema.
  DatabaseSchema d;
  std::vector<Relation> states = InconsistentTriangle(&d);
  int steps = -1;
  std::vector<Relation> fix = SemijoinFixpoint(d, states, &steps);
  EXPECT_EQ(steps, 0);
  for (size_t i = 0; i < states.size(); ++i) {
    EXPECT_TRUE(fix[i].EqualsAsSet(states[i]));
  }
  EXPECT_FALSE(IsGloballyConsistent(d, fix));
  EXPECT_EQ(JoinAll(states).NumRows(), 0);  // the join is empty!
}

TEST_F(ReducerTest, FixpointMatchesFullReducerOnTrees) {
  Rng rng(461);
  for (int trial = 0; trial < 25; ++trial) {
    DatabaseSchema d = RandomTreeSchema(2 + static_cast<int>(rng.Below(4)), 3,
                                        rng).schema;
    std::vector<Relation> states = RandomStates(d, 6, 3, rng);
    auto reduced = ApplyFullReducer(d, states);
    ASSERT_TRUE(reduced.has_value());
    std::vector<Relation> fix = SemijoinFixpoint(d, states);
    for (size_t i = 0; i < states.size(); ++i) {
      EXPECT_TRUE((*reduced)[i].EqualsAsSet(fix[i]))
          << "trial " << trial << " relation " << i;
    }
  }
}

TEST_F(ReducerTest, FixpointNeverLosesJoinTuples) {
  Rng rng(463);
  for (int trial = 0; trial < 25; ++trial) {
    DatabaseSchema d = RandomSchema(2 + static_cast<int>(rng.Below(4)),
                                    2 + static_cast<int>(rng.Below(4)),
                                    1 + static_cast<int>(rng.Below(3)), rng);
    std::vector<Relation> states = RandomStates(d, 5, 3, rng);
    Relation before = JoinAll(states);
    Relation after = JoinAll(SemijoinFixpoint(d, states));
    EXPECT_TRUE(before.EqualsAsSet(after)) << "trial " << trial;
  }
}

TEST_F(ReducerTest, ParallelFixpointBitIdenticalToSerial) {
  // The task-wave fixpoint: per round every relation's neighbor-semijoin
  // chain runs as one wave on the pool. In deterministic mode the fixpoint
  // states — row order, canonical flags — and the effective-step count must
  // be bit-identical to the serial engine's at every thread count, on tree
  // and cyclic schemas alike.
  Rng rng(467);
  std::vector<DatabaseSchema> schemas = {PathSchema(6), Aring(5),
                                         StarSchema(5)};
  for (int t = 0; t < 2; ++t) {
    schemas.push_back(
        RandomTreeSchema(3 + static_cast<int>(rng.Below(4)), 3, rng).schema);
  }
  for (size_t s = 0; s < schemas.size(); ++s) {
    const DatabaseSchema& d = schemas[s];
    std::vector<Relation> states = RandomStates(d, 200, 8, rng);
    int serial_steps = -1;
    std::vector<Relation> serial = SemijoinFixpoint(d, states, &serial_steps);
    for (int threads : {2, 4, 8}) {
      exec::ExecutorPool::Options options;
      options.threads = threads;
      exec::ExecutorPool pool(options);
      exec::ExecContext ctx;
      ctx.threads = threads;
      ctx.pool = &pool;
      ctx.morsel_rows = 16;  // force morsel splitting on small states
      int steps = -1;
      std::vector<Relation> parallel = SemijoinFixpoint(d, states, ctx, &steps);
      EXPECT_EQ(steps, serial_steps) << "schema " << s << " threads "
                                     << threads;
      ASSERT_EQ(serial.size(), parallel.size());
      for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].IsCanonical(), parallel[i].IsCanonical())
            << "schema " << s << " relation " << i << " threads " << threads;
        EXPECT_TRUE(serial[i].IdenticalTo(parallel[i]))
            << "schema " << s << " relation " << i << " threads " << threads;
      }
    }
  }
}

TEST_F(ReducerTest, FixpointIgnoresRetirementAndAccumulatesStats) {
  // A retire-happy caller context must not break convergence (the round
  // check reads every chain's input row counts, which retirement would
  // empty — the fixpoint strips the flag), and query_stats must cover all
  // rounds, not just the last.
  Rng rng(479);
  DatabaseSchema d = PathSchema(5);
  // Sparse domain (64 ≫ 20 rows): the independent states are guaranteed
  // dangle-heavy, so the fixpoint runs at least one effective round.
  std::vector<Relation> states = RandomStates(d, 20, 64, rng);
  int serial_steps = -1;
  std::vector<Relation> serial = SemijoinFixpoint(d, states, &serial_steps);
  exec::ExecContext ctx;
  ctx.retire_consumed = true;  // ignored by the fixpoint
  exec::QueryStats query_stats;
  ctx.query_stats = &query_stats;
  int steps = -1;
  std::vector<Relation> fix = SemijoinFixpoint(d, states, ctx, &steps);
  EXPECT_EQ(steps, serial_steps);
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i].IdenticalTo(fix[i])) << "relation " << i;
  }
  EXPECT_EQ(query_stats.retired_states, 0);
  // Round one is the dense program (every pair dirty); later delta rounds
  // only re-run pairs whose rhs shrank, so the total task count sits
  // between one dense round and delta_rounds of them.
  SemijoinRound round = SemijoinRoundProgram(d);
  EXPECT_GE(query_stats.delta_rounds, 2);  // converged in > 1 round
  EXPECT_GE(query_stats.tasks, round.program.NumStatements());
  EXPECT_LE(query_stats.tasks,
            query_stats.delta_rounds * round.program.NumStatements());
  EXPECT_GT(query_stats.rows_rescanned, 0);
  EXPECT_GT(query_stats.peak_state_bytes, 0);
}

TEST_F(ReducerTest, EmptyRelationPropagates) {
  DatabaseSchema d = PathSchema(3);
  std::vector<Relation> states;
  for (const RelationSchema& r : d.Relations()) states.emplace_back(r);
  states[0].AddRow({1, 2});
  states[0].Canonicalize();
  // states[1] empty: the fixpoint empties everything connected.
  std::vector<Relation> fix = SemijoinFixpoint(d, states);
  EXPECT_EQ(fix[0].NumRows(), 0);
  EXPECT_EQ(fix[1].NumRows(), 0);
}

}  // namespace
}  // namespace gyo
