#include "gyo/acyclic.h"

#include <gtest/gtest.h>

#include "gyo/gyo.h"
#include "schema/fixtures.h"
#include "schema/generators.h"
#include "schema/parse.h"
#include "util/rng.h"

namespace gyo {
namespace {

class AcyclicTest : public ::testing::Test {
 protected:
  Catalog catalog_;
};

TEST_F(AcyclicTest, ClassifiesFixtures) {
  EXPECT_TRUE(IsTreeSchema(ParseSchema(catalog_, "ab,bc,cd")));
  EXPECT_FALSE(IsTreeSchema(ParseSchema(catalog_, "ab,bc,ac")));
  EXPECT_TRUE(IsTreeSchema(ParseSchema(catalog_, "abc,cde,ace,afe")));
  EXPECT_TRUE(IsTreeSchema(ParseSchema(catalog_, "abc,ab,bc")));
}

TEST_F(AcyclicTest, EmptyAndSingletonAreTrees) {
  EXPECT_TRUE(IsTreeSchema(DatabaseSchema{}));
  EXPECT_TRUE(IsTreeSchema(ParseSchema(catalog_, "abc")));
}

TEST_F(AcyclicTest, TreefyingRelationOfTreeIsEmpty) {
  EXPECT_TRUE(TreefyingRelation(ParseSchema(catalog_, "ab,bc,cd")).Empty());
}

TEST_F(AcyclicTest, TreefyingRelationOfRingIsWholeUniverse) {
  DatabaseSchema ring = Aring(5);
  EXPECT_EQ(TreefyingRelation(ring), ring.Universe());
}

TEST_F(AcyclicTest, Corollary32AddingTreefyingRelationMakesTree) {
  Rng rng(91);
  for (int trial = 0; trial < 100; ++trial) {
    DatabaseSchema d = RandomSchema(3 + static_cast<int>(rng.Below(6)),
                                    3 + static_cast<int>(rng.Below(7)),
                                    2 + static_cast<int>(rng.Below(3)), rng);
    DatabaseSchema augmented = d;
    augmented.Add(TreefyingRelation(d));
    EXPECT_TRUE(IsTreeSchema(augmented)) << "trial " << trial;
  }
}

TEST_F(AcyclicTest, Corollary32MinimalityOnSmallSchemas) {
  // No strictly smaller relation than U(GR(D)) treefies D (Cor 3.2 +
  // Thm 3.2(iii): any treefying S must contain U(GR(D))).
  for (const DatabaseSchema& d :
       {Aring(4), Aring(5), Aclique(4), GridSchema(2, 2)}) {
    AttrSet needed = TreefyingRelation(d);
    std::vector<AttrId> attrs = d.Universe().ToVector();
    const int m = static_cast<int>(attrs.size());
    for (uint32_t mask = 0; mask < (uint32_t{1} << m); ++mask) {
      AttrSet s;
      for (int i = 0; i < m; ++i) {
        if ((mask >> i) & 1) s.Insert(attrs[static_cast<size_t>(i)]);
      }
      DatabaseSchema augmented = d;
      augmented.Add(s);
      if (IsTreeSchema(augmented)) {
        EXPECT_TRUE(needed.IsSubsetOf(s));
      }
    }
  }
}

TEST_F(AcyclicTest, Theorem32iGrPreservesTreefiability) {
  // Thm 3.2(i): D ∪ (R) tree implies GR(D) ∪ (R) tree.
  Rng rng(97);
  for (int trial = 0; trial < 100; ++trial) {
    DatabaseSchema d = RandomSchema(3 + static_cast<int>(rng.Below(5)),
                                    3 + static_cast<int>(rng.Below(6)),
                                    2 + static_cast<int>(rng.Below(3)), rng);
    AttrSet r;
    d.Universe().ForEach([&](AttrId a) {
      if (rng.Chance(0.5)) r.Insert(a);
    });
    DatabaseSchema with_r = d;
    with_r.Add(r);
    if (!IsTreeSchema(with_r)) continue;
    DatabaseSchema gr_with_r = GyoReduce(d).reduced;
    gr_with_r.Add(r);
    EXPECT_TRUE(IsTreeSchema(gr_with_r)) << "trial " << trial;
  }
}

TEST_F(AcyclicTest, Theorem32iiUnionOfGrTreefies) {
  // Thm 3.2(ii): D ∪ (U(GR(D))) is a tree schema — same as Cor 3.2 but via
  // the GR of the original schema.
  EXPECT_TRUE([&] {
    DatabaseSchema d = GridSchema(2, 3);
    d.Add(TreefyingRelation(d));
    return IsTreeSchema(d);
  }());
}

TEST_F(AcyclicTest, Theorem32iiiTreefierContainsGrUniverse) {
  // Thm 3.2(iii): if D ∪ (S) is a tree schema then S ⊇ U(GR(D)).
  Rng rng(101);
  for (int trial = 0; trial < 150; ++trial) {
    DatabaseSchema d = RandomSchema(3 + static_cast<int>(rng.Below(5)),
                                    3 + static_cast<int>(rng.Below(6)),
                                    2 + static_cast<int>(rng.Below(3)), rng);
    AttrSet s;
    d.Universe().ForEach([&](AttrId a) {
      if (rng.Chance(0.6)) s.Insert(a);
    });
    DatabaseSchema with_s = d;
    with_s.Add(s);
    if (IsTreeSchema(with_s)) {
      EXPECT_TRUE(TreefyingRelation(d).IsSubsetOf(s)) << "trial " << trial;
    }
  }
}

TEST_F(AcyclicTest, IsAringRecognizesRings) {
  for (int n = 3; n <= 8; ++n) EXPECT_TRUE(IsAring(Aring(n)));
}

TEST_F(AcyclicTest, IsAringRejectsNonRings) {
  EXPECT_FALSE(IsAring(PathSchema(4)));
  EXPECT_FALSE(IsAring(Aclique(4)));
  EXPECT_FALSE(IsAring(ParseSchema(catalog_, "ab,bc,cd,da,ac")));  // chord
  EXPECT_FALSE(IsAring(ParseSchema(catalog_, "ab,ab,ba")));
  // Two disjoint triangles: 2-regular but not a single cycle.
  EXPECT_FALSE(IsAring(ParseSchema(catalog_, "ab,bc,ca,de,ef,fd")));
}

TEST_F(AcyclicTest, IsAcliqueRecognizesCliques) {
  for (int n = 3; n <= 7; ++n) EXPECT_TRUE(IsAclique(Aclique(n)));
}

TEST_F(AcyclicTest, IsAcliqueRejectsNonCliques) {
  EXPECT_FALSE(IsAclique(Aring(4)));
  EXPECT_FALSE(IsAclique(ParseSchema(catalog_, "bcd,acd,abd")));  // missing abc
  EXPECT_FALSE(IsAclique(ParseSchema(catalog_, "bcd,bcd,abd,abc")));
}

TEST_F(AcyclicTest, FindCyclicCoreOnRingIsIdentity) {
  auto core = FindCyclicCore(Aring(4));
  ASSERT_TRUE(core.has_value());
  EXPECT_TRUE(core->deleted.Empty());
  EXPECT_TRUE(core->is_aring);
}

TEST_F(AcyclicTest, FindCyclicCoreOnTreeIsNull) {
  EXPECT_FALSE(FindCyclicCore(PathSchema(5)).has_value());
}

TEST_F(AcyclicTest, FindCyclicCoreFig2Fixtures) {
  {
    Catalog c;
    AttrSet deleted;
    DatabaseSchema d = fixtures::Fig2RingBased(c, &deleted);
    auto core = FindCyclicCore(d);
    ASSERT_TRUE(core.has_value());
    EXPECT_TRUE(core->is_aring || core->is_aclique);
    // The fixture's documented witness works too.
    DatabaseSchema cut = d.DeleteAttributes(deleted).Reduction();
    DatabaseSchema cleaned;
    for (const RelationSchema& r : cut.Relations()) {
      if (!r.Empty()) cleaned.Add(r);
    }
    EXPECT_TRUE(IsAring(cleaned));
  }
  {
    Catalog c;
    AttrSet deleted;
    DatabaseSchema d = fixtures::Fig2CliqueBased(c, &deleted);
    DatabaseSchema cut = d.DeleteAttributes(deleted).Reduction();
    DatabaseSchema cleaned;
    for (const RelationSchema& r : cut.Relations()) {
      if (!r.Empty()) cleaned.Add(r);
    }
    EXPECT_TRUE(IsAclique(cleaned));
  }
}

TEST_F(AcyclicTest, Lemma31WitnessExistsForRandomCyclicSchemas) {
  Rng rng(103);
  int cyclic_seen = 0;
  for (int trial = 0; trial < 200 && cyclic_seen < 25; ++trial) {
    DatabaseSchema d = RandomSchema(3 + static_cast<int>(rng.Below(4)),
                                    3 + static_cast<int>(rng.Below(5)),
                                    2 + static_cast<int>(rng.Below(3)), rng);
    if (IsTreeSchema(d)) {
      EXPECT_FALSE(FindCyclicCore(d).has_value());
      continue;
    }
    ++cyclic_seen;
    auto core = FindCyclicCore(d);
    ASSERT_TRUE(core.has_value()) << "trial " << trial;
    EXPECT_TRUE(core->is_aring || core->is_aclique);
    // Verify the witness: deleting X and reducing yields the claimed core.
    DatabaseSchema cut = d.DeleteAttributes(core->deleted).Reduction();
    DatabaseSchema cleaned;
    for (const RelationSchema& r : cut.Relations()) {
      if (!r.Empty()) cleaned.Add(r);
    }
    EXPECT_TRUE(cleaned.EqualsAsMultiset(core->core)) << "trial " << trial;
  }
  EXPECT_GE(cyclic_seen, 10);
}

}  // namespace
}  // namespace gyo
