// Columnar storage equivalence (tentpole): the vectorized column-at-a-time
// kernels checked against an independent row-major reference evaluator that
// shares no code with ops.cc (std::set semantics, nested loops, RowRef
// gathers only). Covers every operator serial and parallel (2/4/8 threads,
// both determinism modes), the solver strategies end to end through
// exec::Run, and the Bloom filters' two load-bearing properties: no false
// negatives (pruning can never change a result) and a bounded false-positive
// rate (pruning actually prunes).

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "exec/executor_pool.h"
#include "exec/physical_plan.h"
#include "exec/task_scheduler.h"
#include "gtest/gtest.h"
#include "rel/ops.h"
#include "rel/relation.h"
#include "rel/solver.h"
#include "rel/universal.h"
#include "schema/generators.h"
#include "util/rng.h"

namespace gyo {
namespace {

using Tuple = std::vector<Value>;

// --- The row-major reference evaluator. ---

Relation FromTuples(const AttrSet& schema, const std::set<Tuple>& tuples) {
  Relation out(schema);
  out.Reserve(static_cast<int64_t>(tuples.size()));
  for (const Tuple& t : tuples) out.AddRow(t);
  out.Canonicalize();
  return out;
}

Relation RefProject(const Relation& r, const AttrSet& x) {
  std::vector<int> keep;
  for (AttrId a : x.ToVector()) keep.push_back(r.ColIndex(a));
  std::set<Tuple> tuples;
  for (RowRef row : r.Rows()) {
    Tuple t;
    for (int c : keep) t.push_back(row[c]);
    tuples.insert(t);
  }
  // π_∅ of a non-empty relation is the single empty tuple (TRUE).
  Relation out(x);
  for (const Tuple& t : tuples) out.AddRow(t);
  out.Canonicalize();
  return out;
}

bool RefRowsMatch(const Relation& r, int64_t i, const Relation& s, int64_t j,
                  const AttrSet& shared) {
  for (AttrId a : shared.ToVector()) {
    if (r.At(i, a) != s.At(j, a)) return false;
  }
  return true;
}

Relation RefSemijoin(const Relation& r, const Relation& s) {
  const AttrSet shared = r.Schema().Intersect(s.Schema());
  std::set<Tuple> tuples;
  for (int64_t i = 0; i < r.NumRows(); ++i) {
    for (int64_t j = 0; j < s.NumRows(); ++j) {
      if (RefRowsMatch(r, i, s, j, shared)) {
        tuples.insert(r.Row(i).ToVector());
        break;
      }
    }
  }
  return FromTuples(r.Schema(), tuples);
}

Relation RefNaturalJoin(const Relation& r, const Relation& s) {
  const AttrSet shared = r.Schema().Intersect(s.Schema());
  const AttrSet joined = r.Schema().Union(s.Schema());
  std::set<Tuple> tuples;
  for (int64_t i = 0; i < r.NumRows(); ++i) {
    for (int64_t j = 0; j < s.NumRows(); ++j) {
      if (!RefRowsMatch(r, i, s, j, shared)) continue;
      Tuple t;
      for (AttrId a : joined.ToVector()) {
        t.push_back(r.Schema().Contains(a) ? r.At(i, a) : s.At(j, a));
      }
      tuples.insert(t);
    }
  }
  return FromTuples(joined, tuples);
}

// Naive solve of Q = (D, X): join everything, project.
Relation RefSolve(const AttrSet& x, const std::vector<Relation>& states) {
  Relation acc = states[0];
  for (size_t i = 1; i < states.size(); ++i) {
    acc = RefNaturalJoin(acc, states[i]);
  }
  return RefProject(acc, x);
}

// --- Fixtures. ---

// Random overlapping-schema pair; `domain` tunes match density.
struct RelPair {
  RelPair(int r_rows, int s_rows, int64_t domain, uint64_t seed)
      : r(AttrSet{0, 1}), s(AttrSet{1, 2}) {
    Rng rng(seed);
    for (int i = 0; i < r_rows; ++i) {
      r.AddRow({static_cast<Value>(rng.Below(static_cast<uint64_t>(domain))),
                static_cast<Value>(rng.Below(static_cast<uint64_t>(domain)))});
    }
    for (int i = 0; i < s_rows; ++i) {
      s.AddRow({static_cast<Value>(rng.Below(static_cast<uint64_t>(domain))),
                static_cast<Value>(rng.Below(static_cast<uint64_t>(domain)))});
    }
    r.Canonicalize();
    s.Canonicalize();
  }
  Relation r;
  Relation s;
};

OpExecOpts PooledOpts(exec::TaskScheduler* pool, int64_t morsel_rows,
                      bool deterministic) {
  OpExecOpts opts;
  opts.scheduler = pool;
  opts.morsel_rows = morsel_rows;
  opts.deterministic = deterministic;
  return opts;
}

// --- Kernel-level equivalence. ---

TEST(ColumnarTest, SerialKernelsMatchRowMajorReference) {
  Rng rng(1009);
  for (int trial = 0; trial < 12; ++trial) {
    // Mixed densities: dense (many matches) through sparse (mostly misses).
    const int64_t domain = int64_t{1} << (2 + trial);
    RelPair p(40 + trial * 7, 30 + trial * 5, domain, rng.Next());
    EXPECT_TRUE(Semijoin(p.r, p.s).EqualsAsSet(RefSemijoin(p.r, p.s)))
        << "trial " << trial;
    EXPECT_TRUE(NaturalJoin(p.r, p.s).EqualsAsSet(RefNaturalJoin(p.r, p.s)))
        << "trial " << trial;
    EXPECT_TRUE(Project(p.r, AttrSet{0}).EqualsAsSet(RefProject(p.r, AttrSet{0})))
        << "trial " << trial;
    EXPECT_TRUE(
        Project(p.r, AttrSet{1}).EqualsAsSet(RefProject(p.r, AttrSet{1})))
        << "trial " << trial;
  }
}

TEST(ColumnarTest, ParallelKernelsMatchReferenceAtEveryWidth) {
  // Large enough that builds clear kMinBloomBuildRows and probes split into
  // many morsels: the Bloom-guarded partitioned path is what's under test.
  RelPair p(3000, 2000, 512, 1013);
  const Relation ref_semi = RefSemijoin(p.r, p.s);
  const Relation ref_join = RefNaturalJoin(p.r, p.s);
  const Relation ref_proj = RefProject(p.r, AttrSet{0});
  const Relation serial_semi = Semijoin(p.r, p.s);
  const Relation serial_join = NaturalJoin(p.r, p.s);
  const Relation serial_proj = Project(p.r, AttrSet{0});
  // EqualsAsSet canonicalizes its operands in place (lazy, mutable), which
  // would perturb the physical row order the IdenticalTo checks below pin —
  // so the set comparisons run on copies.
  ASSERT_TRUE(Relation(serial_semi).EqualsAsSet(ref_semi));
  ASSERT_TRUE(Relation(serial_join).EqualsAsSet(ref_join));
  ASSERT_TRUE(Relation(serial_proj).EqualsAsSet(ref_proj));
  for (int threads : {2, 4, 8}) {
    exec::TaskScheduler pool(threads);
    for (bool deterministic : {true, false}) {
      OpExecOpts opts = PooledOpts(&pool, 64, deterministic);
      Relation semi = Semijoin(p.r, p.s, opts);
      Relation join = NaturalJoin(p.r, p.s, opts);
      Relation proj = Project(p.r, AttrSet{0}, opts);
      if (deterministic) {
        // Bit-identical to the serial engine: same rows, same physical row
        // order, same canonical flags.
        EXPECT_TRUE(semi.IdenticalTo(serial_semi)) << "threads " << threads;
        EXPECT_TRUE(join.IdenticalTo(serial_join)) << "threads " << threads;
        EXPECT_TRUE(proj.IdenticalTo(serial_proj)) << "threads " << threads;
      } else {
        EXPECT_TRUE(semi.EqualsAsSet(ref_semi)) << "threads " << threads;
        EXPECT_TRUE(join.EqualsAsSet(ref_join)) << "threads " << threads;
        EXPECT_TRUE(proj.EqualsAsSet(ref_proj)) << "threads " << threads;
      }
    }
  }
}

TEST(ColumnarTest, BloomCountersTallyPrunesWithoutChangingResults) {
  // Sparse probe keys (domain ≫ rows): most probes miss, so the serial
  // single-filter and the parallel per-partition filters both prune heavily
  // — and the results must not move an inch.
  RelPair p(4096, 4096, int64_t{1} << 20, 1019);
  const Relation ref = RefSemijoin(p.r, p.s);

  std::atomic<int64_t> serial_skips{0};
  std::atomic<int64_t> serial_prunes{0};
  OpExecOpts serial_opts;
  serial_opts.bloom_skip_counter = &serial_skips;
  serial_opts.probe_prune_counter = &serial_prunes;
  Relation serial = Semijoin(p.r, p.s, serial_opts);
  EXPECT_TRUE(serial.EqualsAsSet(ref));
  // The serial kernel has one whole-build filter, not partition filters.
  EXPECT_EQ(serial_skips.load(), 0);
  EXPECT_GT(serial_prunes.load(), 0);
  EXPECT_LE(serial_prunes.load(), p.r.NumRows());

  exec::TaskScheduler pool(4);
  std::atomic<int64_t> par_skips{0};
  std::atomic<int64_t> par_prunes{0};
  OpExecOpts par_opts = PooledOpts(&pool, 256, true);
  par_opts.bloom_skip_counter = &par_skips;
  par_opts.probe_prune_counter = &par_prunes;
  Relation parallel = Semijoin(p.r, p.s, par_opts);
  EXPECT_TRUE(parallel.IdenticalTo(serial));
  // Partition-filter rejections count as both a skip and a prune.
  EXPECT_GT(par_skips.load(), 0);
  EXPECT_EQ(par_skips.load(), par_prunes.load());
  EXPECT_LE(par_prunes.load(), p.r.NumRows());
}

TEST(ColumnarTest, TinyBuildsSkipTheBloomFilterButStillMatch) {
  // Builds under kMinBloomBuildRows bypass the filter; the counter contract
  // (zero tallies) and the results must hold either way.
  RelPair p(600, static_cast<int>(kMinBloomBuildRows) - 1, 16, 1021);
  std::atomic<int64_t> prunes{0};
  OpExecOpts opts;
  opts.probe_prune_counter = &prunes;
  Relation out = Semijoin(p.r, p.s, opts);
  EXPECT_TRUE(out.EqualsAsSet(RefSemijoin(p.r, p.s)));
  EXPECT_EQ(prunes.load(), 0);
}

// --- Strategy-level equivalence through the exec runtime. ---

TEST(ColumnarTest, SolverStrategiesMatchReferenceEndToEnd) {
  Rng rng(1031);
  for (int trial = 0; trial < 6; ++trial) {
    DatabaseSchema d = RandomTreeSchema(3 + static_cast<int>(rng.Below(3)), 3,
                                        rng).schema;
    // UR states (projections of one universal relation): CC pruning is only
    // sound on UR databases (Theorem 4.1), and the UR case is exactly where
    // the paper compares these strategies.
    Relation universal = RandomUniversal(d.Universe(), 40, 6, rng);
    std::vector<Relation> states = ProjectDatabase(universal, d);
    AttrSet x;
    x.Insert(d[0].Min());
    x.Insert(d[d.NumRelations() - 1].Min());
    const Relation ref = RefSolve(x, states);

    std::vector<Program> programs;
    programs.push_back(FullJoinProgram(d, x));
    programs.push_back(CCPrunedProgram(d, x));
    auto yannakakis = YannakakisProgram(d, x);
    ASSERT_TRUE(yannakakis.has_value());
    programs.push_back(*yannakakis);
    YannakakisOptions no_early;
    no_early.early_project = false;
    programs.push_back(*YannakakisProgram(d, x, no_early));

    exec::ExecContext serial_ctx;
    for (size_t s = 0; s < programs.size(); ++s) {
      Relation serial = exec::Run(programs[s], states, serial_ctx);
      // Copy: EqualsAsSet canonicalizes in place, and `serial` must stay
      // physically pristine for the IdenticalTo checks.
      EXPECT_TRUE(Relation(serial).EqualsAsSet(ref))
          << "trial " << trial << " strategy " << s;
      for (int threads : {2, 4, 8}) {
        exec::ExecutorPool::Options options;
        options.threads = threads;
        exec::ExecutorPool pool(options);
        exec::ExecContext ctx;
        ctx.threads = threads;
        ctx.pool = &pool;
        ctx.morsel_rows = 16;  // force splitting on small states
        Relation parallel = exec::Run(programs[s], states, ctx);
        EXPECT_TRUE(parallel.IdenticalTo(serial))
            << "trial " << trial << " strategy " << s << " threads "
            << threads;
        ctx.deterministic = false;
        Relation relaxed = exec::Run(programs[s], states, ctx);
        EXPECT_TRUE(relaxed.EqualsAsSet(ref))
            << "trial " << trial << " strategy " << s << " threads "
            << threads;
      }
    }
  }
}

// --- The Bloom filter itself. ---

TEST(BloomFilterTest, DefaultConstructedIsDisabled) {
  BloomFilter none;
  EXPECT_FALSE(none.enabled());
  EXPECT_TRUE(BloomFilter(0).enabled());  // sized filters always work
  EXPECT_TRUE(BloomFilter(1).enabled());
}

TEST(BloomFilterTest, NeverFalseNegative) {
  // THE correctness property: every added hash must test positive, for
  // filters from the 128-bit floor up through multi-KiB. A single false
  // negative would silently drop result rows.
  Rng rng(1033);
  for (int64_t keys : {1, 3, 64, 1000, 20000}) {
    BloomFilter bloom(keys);
    std::vector<uint64_t> added;
    added.reserve(static_cast<size_t>(keys));
    for (int64_t i = 0; i < keys; ++i) added.push_back(rng.Next());
    for (uint64_t h : added) bloom.Add(h);
    for (uint64_t h : added) {
      ASSERT_TRUE(bloom.MaybeContains(h)) << "keys " << keys;
    }
  }
}

TEST(BloomFilterTest, BoundedFalsePositiveRate) {
  // At kBloomBitsPerKey = 8 with two probes the textbook FP rate is ~6%;
  // 15% leaves slack for hash clumping while still catching a broken
  // sizing rule or probe split (either would push toward 100%).
  Rng rng(1039);
  const int64_t keys = 10000;
  BloomFilter bloom(keys);
  for (int64_t i = 0; i < keys; ++i) bloom.Add(rng.Next());
  int positives = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    // Fresh draws from the same 64-bit space: collision odds with the added
    // set are negligible, so every positive is (almost surely) false.
    if (bloom.MaybeContains(rng.Next())) ++positives;
  }
  EXPECT_LT(static_cast<double>(positives) / probes, 0.15);
}

}  // namespace
}  // namespace gyo
