// Larger-scale randomized stress: cross-implementation agreement and
// invariants on schemas well beyond the sizes the unit tests use.

#include <gtest/gtest.h>

#include "gyo/acyclic.h"
#include "gyo/chordal.h"
#include "gyo/gamma.h"
#include "gyo/gyo.h"
#include "gyo/qual_graph.h"
#include "schema/generators.h"
#include "tableau/canonical.h"
#include "util/rng.h"

namespace gyo {
namespace {

TEST(StressTest, GyoImplementationsAgreeOnLargeSchemas) {
  Rng rng(601);
  for (int trial = 0; trial < 12; ++trial) {
    int n = 50 + static_cast<int>(rng.Below(150));
    DatabaseSchema d = RandomSchema(n, 30 + static_cast<int>(rng.Below(40)),
                                    2 + static_cast<int>(rng.Below(5)), rng);
    AttrSet x;
    d.Universe().ForEach([&](AttrId a) {
      if (rng.Chance(0.2)) x.Insert(a);
    });
    GyoResult naive = GyoReduce(d, x);
    GyoResult fast = GyoReduceFast(d, x);
    EXPECT_TRUE(naive.reduced.EqualsAsMultiset(fast.reduced))
        << "trial " << trial;
    EXPECT_TRUE(naive.reduced.IsReduced());
  }
}

TEST(StressTest, AcyclicityOraclesAgreeOnLargeSchemas) {
  Rng rng(607);
  int trees = 0;
  for (int trial = 0; trial < 30; ++trial) {
    DatabaseSchema d;
    if (trial % 2 == 0) {
      d = RandomTreeSchema(60 + static_cast<int>(rng.Below(100)), 6, rng)
              .schema;
    } else {
      d = RandomSchema(40 + static_cast<int>(rng.Below(60)),
                       20 + static_cast<int>(rng.Below(30)),
                       2 + static_cast<int>(rng.Below(4)), rng);
    }
    bool gyo = IsTreeSchema(d);
    EXPECT_EQ(gyo, BuildJoinTree(d).has_value()) << "trial " << trial;
    EXPECT_EQ(gyo, BuildJoinTreeMaier(d).has_value()) << "trial " << trial;
    EXPECT_EQ(gyo, IsTreeSchemaViaChordality(d)) << "trial " << trial;
    if (gyo) {
      ++trees;
      auto t = BuildJoinTree(d);
      EXPECT_TRUE(IsQualTree(d, *t));
    }
  }
  EXPECT_GE(trees, 15);
}

TEST(StressTest, LargeTreeSchemaCanonicalConnectionsFast) {
  // CC on 200-relation tree schemas must stay on the GYO fast path and
  // return covered, reduced results.
  Rng rng(613);
  for (int trial = 0; trial < 8; ++trial) {
    DatabaseSchema d = RandomTreeSchema(200, 5, rng).schema;
    AttrSet x;
    int k = 0;
    d.Universe().ForEach([&](AttrId a) {
      if (k++ % 7 == 0) x.Insert(a);
    });
    CanonicalResult cc = CanonicalConnection(d, x);
    EXPECT_TRUE(cc.used_fast_path);
    EXPECT_TRUE(cc.schema.IsReduced());
    EXPECT_TRUE(cc.schema.CoveredBy(d));
  }
}

TEST(StressTest, GammaAcyclicityOnLargeFamilies) {
  EXPECT_TRUE(IsGammaAcyclic(PathSchema(300)));
  EXPECT_TRUE(IsGammaAcyclic(StarSchema(300)));
  EXPECT_FALSE(IsGammaAcyclic(Aring(300)));
  EXPECT_FALSE(IsGammaAcyclic(GridSchema(12, 12)));
}

TEST(StressTest, WideAttributeIdsWork) {
  // Attribute ids far beyond one bitset word.
  DatabaseSchema d;
  for (int i = 0; i < 40; ++i) {
    d.Add(AttrSet{1000 + 37 * i, 1000 + 37 * (i + 1)});
  }
  EXPECT_TRUE(IsTreeSchema(d));  // a path over scattered ids
  d.Add(AttrSet{1000, 1000 + 37 * 40});
  EXPECT_FALSE(IsTreeSchema(d));  // closed into a ring
}

TEST(StressTest, DeepSubsetChainsReduce) {
  // R_k = {0..k}: a chain of subsets; everything collapses into the top.
  DatabaseSchema d;
  for (int k = 0; k < 60; ++k) {
    AttrSet r;
    for (int i = 0; i <= k; ++i) r.Insert(i);
    d.Add(r);
  }
  GyoResult gr = GyoReduceFast(d, d.Universe());
  EXPECT_EQ(gr.reduced.NumRelations(), 1);
  EXPECT_EQ(gr.survivors, (std::vector<int>{59}));
}

TEST(StressTest, ManyDuplicatesCollapse) {
  DatabaseSchema d;
  for (int k = 0; k < 100; ++k) d.Add(AttrSet{1, 2, 3});
  GyoResult gr = GyoReduceFast(d, d.Universe());
  EXPECT_EQ(gr.reduced.NumRelations(), 1);
  GyoResult gr2 = GyoReduce(d, d.Universe());
  EXPECT_TRUE(gr.reduced.EqualsAsMultiset(gr2.reduced));
}

TEST(StressTest, SubtreeChecksOnLongPaths) {
  DatabaseSchema d = PathSchema(200);
  std::vector<int> prefix;
  for (int i = 0; i < 100; ++i) prefix.push_back(i);
  EXPECT_TRUE(IsSubtree(d, prefix));
  std::vector<int> gapped = prefix;
  gapped.push_back(150);  // disconnected from the prefix
  EXPECT_FALSE(IsSubtree(d, gapped));
}

}  // namespace
}  // namespace gyo
