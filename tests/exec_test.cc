// Exec runtime: PhysicalPlan dataflow compilation, parallel-vs-serial
// equivalence over random schemas/states for every solver strategy at 1–8
// threads, parallel operator kernels (morsel probe + partitioned build),
// the parallel full reducer, and the eager Program validation errors.
//
// Parallel contexts pin an explicit ExecutorPool of the tested width (rather
// than borrowing the process-wide pool, which sizes itself to the host) so
// the multi-thread paths are exercised even on single-core CI runners.

#include "exec/physical_plan.h"

#include <limits>
#include <memory>
#include <vector>

#include "exec/executor_pool.h"
#include "exec/task_scheduler.h"
#include "gtest/gtest.h"
#include "rel/ops.h"
#include "rel/program.h"
#include "rel/reducer.h"
#include "rel/solver.h"
#include "rel/universal.h"
#include "schema/generators.h"
#include "util/rng.h"

namespace gyo {
namespace {

std::vector<Relation> MakeUR(const DatabaseSchema& d, int rows, int domain,
                             uint64_t seed) {
  Rng rng(seed);
  Relation universal = RandomUniversal(d.Universe(), rows, domain, rng);
  return ProjectDatabase(universal, d);
}

// Bit-level equality: same rows in the same physical order with the same
// canonical flag — the deterministic-mode contract, stronger than
// EqualsAsSet.
void ExpectBitIdentical(const std::vector<Relation>& a,
                        const std::vector<Relation>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].Schema() == b[i].Schema()) << "state " << i;
    EXPECT_EQ(a[i].NumRows(), b[i].NumRows()) << "state " << i;
    EXPECT_EQ(a[i].IsCanonical(), b[i].IsCanonical()) << "state " << i;
    EXPECT_TRUE(a[i].IdenticalTo(b[i])) << "state " << i;
  }
}

// An ExecContext bound to a fresh pool of exactly `threads` workers.
// The pool must outlive every Execute call made with the context.
struct PooledCtx {
  explicit PooledCtx(int threads)
      : pool(MakeOptions(threads)) {
    ctx.threads = threads;
    ctx.pool = &pool;
  }
  static exec::ExecutorPool::Options MakeOptions(int threads) {
    exec::ExecutorPool::Options options;
    options.threads = threads;
    return options;
  }
  exec::ExecutorPool pool;
  exec::ExecContext ctx;
};

// Every program strategy the solver offers for (d, x); skips the tree-only
// ones on cyclic schemas.
std::vector<Program> AllStrategyPrograms(const DatabaseSchema& d,
                                         const AttrSet& x) {
  std::vector<Program> programs;
  programs.push_back(FullJoinProgram(d, x));
  programs.push_back(CCPrunedProgram(d, x));
  for (bool full_reduce : {false, true}) {
    for (bool early_project : {false, true}) {
      YannakakisOptions options;
      options.full_reduce = full_reduce;
      options.early_project = early_project;
      if (auto p = YannakakisProgram(d, x, options)) programs.push_back(*p);
    }
  }
  // Tree projection through the schema's own relations as bags (valid when
  // d is a tree schema and x fits in one relation).
  if (auto p = TreeProjectionProgram(d, x, d)) programs.push_back(*p);
  return programs;
}

TEST(PhysicalPlanTest, DataflowDependencies) {
  Program p(3);
  int j = p.AddJoin(0, 1);            // statement 0: R3
  int pr = p.AddProject(j, AttrSet{0});  // statement 1: R4 reads R3
  p.AddSemijoin(2, pr);               // statement 2: R5 reads R2 (base), R4
  exec::PhysicalPlan plan = exec::PhysicalPlan::Compile(p);
  ASSERT_EQ(plan.Dependencies().size(), 3u);
  EXPECT_TRUE(plan.Dependencies()[0].empty());
  EXPECT_EQ(plan.Dependencies()[1], std::vector<int>({0}));
  EXPECT_EQ(plan.Dependencies()[2], std::vector<int>({1}));
  EXPECT_EQ(plan.CriticalPathLength(), 3);
  EXPECT_EQ(plan.NumSourceStatements(), 1);
}

TEST(PhysicalPlanTest, FullReducerPlanHasStatementParallelism) {
  // A star's upward semijoin pass is n independent leaf->center reductions
  // chained on the center, but the downward pass fans out: the plan must be
  // strictly shallower than the statement count... the center chain keeps
  // the upward pass serial, while all downward semijoins depend only on the
  // final center, so the critical path is (leaves) + 1 + ... < 2*leaves for
  // leaves > 1.
  DatabaseSchema d = StarSchema(6);
  auto p = YannakakisProgram(d, AttrSet{0, 1});
  ASSERT_TRUE(p.has_value());
  exec::PhysicalPlan plan = exec::PhysicalPlan::Compile(*p);
  EXPECT_LT(plan.CriticalPathLength(), p->NumStatements());
}

TEST(PhysicalPlanTest, IndependentSubplansAreParallelSources) {
  // Two joins over disjoint base relations fan in to a third: the dataflow
  // analysis must leave both initially ready and halve the critical path.
  Program p(4);
  int a = p.AddJoin(0, 1);
  int b = p.AddJoin(2, 3);
  p.AddJoin(a, b);
  exec::PhysicalPlan plan = exec::PhysicalPlan::Compile(p);
  EXPECT_EQ(plan.NumSourceStatements(), 2);
  EXPECT_EQ(plan.CriticalPathLength(), 2);
  EXPECT_EQ(plan.Dependencies()[2], std::vector<int>({0, 1}));
}

TEST(ExecTest, MatchesSerialOnAllStrategiesAndThreadCounts) {
  Rng rng(42);
  for (int trial = 0; trial < 4; ++trial) {
    // Key-like domains (domain ≫ rows) keep the FullJoin strategy's
    // intermediate growth factor near 1 — dense domains make an 8-relation
    // full join explode combinatorially. Trial 0 is a deliberately small
    // dense case (4 relations) so heavy per-join match fan-out is still
    // covered.
    const int num_relations = trial == 0 ? 4 : 6 + trial;
    const int domain = trial == 0 ? 8 : 16 * 60;
    RandomTreeResult t = RandomTreeSchema(num_relations, 3, rng);
    const DatabaseSchema& d = t.schema;
    // Target inside one relation so every strategy (incl. tree projection
    // over d's own bags) applies.
    AttrSet x = d[static_cast<int>(rng.Below(
        static_cast<uint64_t>(d.NumRelations())))];
    std::vector<Relation> states = MakeUR(d, 60, domain, 1000 + trial);
    for (const Program& p : AllStrategyPrograms(d, x)) {
      Program::Stats serial_stats;
      std::vector<Relation> serial = p.ExecuteWithStats(states, &serial_stats);
      for (int threads : {2, 4, 8}) {
        PooledCtx pooled(threads);
        pooled.ctx.morsel_rows = 16;  // force morsel splitting on small data
        Program::Stats par_stats;
        std::vector<Relation> parallel =
            exec::Execute(p, states, pooled.ctx, &par_stats);
        ExpectBitIdentical(serial, parallel);
        EXPECT_EQ(serial_stats.max_intermediate_rows,
                  par_stats.max_intermediate_rows);
        EXPECT_EQ(serial_stats.total_rows_produced,
                  par_stats.total_rows_produced);
        EXPECT_EQ(serial_stats.result_rows, par_stats.result_rows);
      }
    }
  }
}

TEST(ExecTest, NonDeterministicModeMatchesAsSets) {
  // A path query with key-like data: every strategy applies except tree
  // projection (the endpoints target spans two relations), and the full
  // join stays near-linear while still splitting into many 8-row morsels.
  DatabaseSchema d = PathSchema(8);
  AttrSet x{0, 7};
  std::vector<Relation> states = MakeUR(d, 200, 16 * 200, 99);
  for (const Program& p : AllStrategyPrograms(d, x)) {
    std::vector<Relation> serial = p.Execute(states);
    PooledCtx pooled(4);
    pooled.ctx.morsel_rows = 8;
    pooled.ctx.deterministic = false;
    std::vector<Relation> parallel = exec::Execute(p, states, pooled.ctx);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_TRUE(serial[i].EqualsAsSet(parallel[i])) << "state " << i;
    }
  }
}

TEST(ExecTest, RunReturnsFinalRelation) {
  DatabaseSchema d = PathSchema(5);
  AttrSet x{0, 4};
  Program p = *YannakakisProgram(d, x);
  std::vector<Relation> states = MakeUR(d, 50, 4, 3);
  PooledCtx pooled(3);
  Relation via_exec = exec::Run(p, states, pooled.ctx);
  Relation reference = EvaluateJoinQuery(d, x, states);
  EXPECT_TRUE(via_exec.EqualsAsSet(reference));
}

// --- Build-side hash partitioning (satellite): PartitionBits must clamp
// sanely at both ends — it was previously only exercised through the
// kernels. ---

TEST(PartitionBitsTest, ClampsThreadCountsSanely) {
  // threads <= 1 (including misconfigured 0 / negative) = one partition.
  EXPECT_EQ(PartitionBits(-4), 0);
  EXPECT_EQ(PartitionBits(0), 0);
  EXPECT_EQ(PartitionBits(1), 0);
  // Smallest power of two covering the pool...
  EXPECT_EQ(PartitionBits(2), 1);
  EXPECT_EQ(PartitionBits(3), 2);
  EXPECT_EQ(PartitionBits(4), 2);
  EXPECT_EQ(PartitionBits(5), 3);
  EXPECT_EQ(PartitionBits(64), 6);
  // ...until the cap: huge pools stop at 2^kMaxPartitionBits partitions.
  EXPECT_EQ(PartitionBits(65), kMaxPartitionBits);
  EXPECT_EQ(PartitionBits(1 << 20), kMaxPartitionBits);
  EXPECT_EQ(PartitionBits(std::numeric_limits<int>::max()),
            kMaxPartitionBits);
}

TEST(PartitionBitsTest, PartitionOfCoversRange) {
  // bits == 0 maps everything to partition 0; otherwise the top bits select
  // a partition in [0, 2^bits) and the extremes land on the extremes.
  EXPECT_EQ(PartitionOf(~0ull, 0), 0u);
  for (int bits = 1; bits <= kMaxPartitionBits; ++bits) {
    EXPECT_EQ(PartitionOf(0ull, bits), 0u);
    EXPECT_EQ(PartitionOf(~0ull, bits), (size_t{1} << bits) - 1);
    Rng rng(7);
    for (int trial = 0; trial < 100; ++trial) {
      EXPECT_LT(PartitionOf(rng.Next(), bits), size_t{1} << bits);
    }
  }
}

TEST(PartitionBitsTest, ForBuildAdaptsToCardinality) {
  // The adaptive partition count: never below the pool-width floor, grows
  // with build cardinality until each partition's share is at most
  // kPartitionTargetBuildRows, and never past kMaxPartitionBits.
  for (int threads : {1, 2, 4, 8}) {
    // Small builds: the pool-width floor alone.
    EXPECT_EQ(PartitionBitsForBuild(threads, 0), PartitionBits(threads));
    EXPECT_EQ(PartitionBitsForBuild(threads, kPartitionTargetBuildRows),
              PartitionBits(threads));
  }
  // Pinned values (changing the policy must be a conscious act: the bench
  // baselines' bloom counters depend on the partition count).
  EXPECT_EQ(PartitionBitsForBuild(8, 1000), 3);
  EXPECT_EQ(PartitionBitsForBuild(2, 100000), 3);
  EXPECT_EQ(PartitionBitsForBuild(2, int64_t{1} << 20), 6);
  // The cap binds regardless of cardinality or pool width.
  EXPECT_EQ(PartitionBitsForBuild(1, int64_t{1} << 40), kMaxPartitionBits);
  EXPECT_EQ(PartitionBitsForBuild(1 << 20, 1), kMaxPartitionBits);
  // Every partition's expected share meets the target (below the cap).
  for (int64_t rows : {int64_t{1} << 15, int64_t{1} << 17}) {
    const int bits = PartitionBitsForBuild(1, rows);
    ASSERT_LT(bits, kMaxPartitionBits);
    EXPECT_LE(rows >> bits, kPartitionTargetBuildRows);
  }
}

// --- State retirement (tentpole): compile-time reader counts plus
// run-time last-reader frees. ---

TEST(ExecReaderCountsTest, ReaderCountsFollowDataflow) {
  Program p(2);
  int j = p.AddJoin(0, 1);             // reads R0, R1
  int pr = p.AddProject(j, AttrSet{0});  // reads R2
  p.AddSemijoin(pr, 0);                // reads R3 and R0 again
  exec::PhysicalPlan plan = exec::PhysicalPlan::Compile(p);
  // Slots: R0, R1 base; R2 join, R3 project, R4 semijoin (sink).
  EXPECT_EQ(plan.ReaderCounts(),
            std::vector<int>({2, 1, 1, 1, 0}));
}

TEST(ExecReaderCountsTest, SelfInputCountsOnce) {
  Program p(1);
  p.AddSemijoin(0, 0);
  exec::PhysicalPlan plan = exec::PhysicalPlan::Compile(p);
  EXPECT_EQ(plan.ReaderCounts(), std::vector<int>({1, 0}));
}

class ExecRetireTest : public ::testing::Test {
 protected:
  void SetUp() override {
    d_ = PathSchema(8);
    x_ = AttrSet{0, 7};
    states_ = MakeUR(d_, 80, 16 * 80, 7);
    program_ = *YannakakisProgram(d_, x_);
  }

  DatabaseSchema d_;
  AttrSet x_;
  std::vector<Relation> states_;
  Program program_{0};
};

TEST_F(ExecRetireTest, FreesConsumedStatesKeepsSinksAndResult) {
  std::vector<Relation> serial = program_.Execute(states_);
  exec::PhysicalPlan plan = exec::PhysicalPlan::Compile(program_);
  for (int threads : {1, 2, 4}) {
    std::unique_ptr<PooledCtx> pooled;
    exec::ExecContext ctx;
    if (threads != 1) {
      pooled = std::make_unique<PooledCtx>(threads);
      ctx = pooled->ctx;
      ctx.morsel_rows = 16;
    }
    ctx.retire_consumed = true;
    exec::QueryStats query_stats;
    ctx.query_stats = &query_stats;
    std::vector<Relation> out = plan.Execute(states_, ctx);
    ASSERT_EQ(out.size(), serial.size());
    int64_t freed = 0;
    for (size_t i = 0; i < out.size(); ++i) {
      if (plan.ReaderCounts()[i] == 0) {
        // Sinks — including the program result — survive bit-identically.
        EXPECT_TRUE(out[i].IdenticalTo(serial[i])) << "state " << i;
      } else {
        // Every consumed state was freed once its last reader finished.
        EXPECT_EQ(out[i].NumRows(), 0) << "state " << i;
        EXPECT_TRUE(out[i].Schema() == serial[i].Schema()) << "state " << i;
        ++freed;
      }
    }
    EXPECT_GT(freed, 0);
    EXPECT_EQ(query_stats.retired_states, freed) << "threads " << threads;
    EXPECT_GT(query_stats.peak_state_bytes, 0);
  }
}

TEST_F(ExecRetireTest, RetainListExemptsStates) {
  std::vector<Relation> serial = program_.Execute(states_);
  // Retain one consumed state (the first base relation, which Yannakakis
  // reads) plus a consumed statement result.
  exec::PhysicalPlan plan = exec::PhysicalPlan::Compile(program_);
  int consumed_stmt = -1;
  for (size_t i = static_cast<size_t>(program_.num_base());
       i < plan.ReaderCounts().size(); ++i) {
    if (plan.ReaderCounts()[i] > 0) consumed_stmt = static_cast<int>(i);
  }
  ASSERT_GE(consumed_stmt, 0);
  std::vector<int> retain = {0, consumed_stmt};
  exec::ExecContext ctx;
  ctx.retire_consumed = true;
  ctx.retain_states = &retain;
  std::vector<Relation> out = exec::Execute(program_, states_, ctx);
  EXPECT_TRUE(out[0].IdenticalTo(serial[0]));
  EXPECT_TRUE(out[static_cast<size_t>(consumed_stmt)].IdenticalTo(
      serial[static_cast<size_t>(consumed_stmt)]));
}

TEST_F(ExecRetireTest, RetirementShrinksPeakStateBytes) {
  // The memory claim behind the full reducer's retirement: the same program
  // peaks strictly lower with retirement than without.
  auto peak_of = [&](bool retire) {
    exec::ExecContext ctx;
    ctx.retire_consumed = retire;
    exec::QueryStats query_stats;
    ctx.query_stats = &query_stats;
    exec::Execute(program_, states_, ctx);
    return query_stats.peak_state_bytes;
  };
  const int64_t without = peak_of(false);
  const int64_t with = peak_of(true);
  EXPECT_GT(without, 0);
  EXPECT_LT(with, without);
}

TEST(ExecReducerTest, FullReducerRetiresIntermediates) {
  Rng rng(23);
  RandomTreeResult t = RandomTreeSchema(10, 3, rng);
  Rng state_rng(24);
  std::vector<Relation> states = RandomStates(t.schema, 200, 6, state_rng);
  exec::ExecContext ctx;
  exec::QueryStats query_stats;
  ctx.query_stats = &query_stats;
  auto reduced = ApplyFullReducer(t.schema, states, ctx);
  ASSERT_TRUE(reduced.has_value());
  // 2(n−1) semijoins over n base states: every state is consumed except the
  // n final ones (retained or sinks), so base + intermediates retire.
  const int n = t.schema.NumRelations();
  EXPECT_GT(query_stats.retired_states, 0);
  EXPECT_LE(query_stats.retired_states, n + 2 * (n - 1));
  EXPECT_GT(query_stats.peak_state_bytes, 0);
}

// --- Parallel operator kernels, driven directly. ---

class ParallelOpsTest : public ::testing::Test {
 protected:
  // Two relations sharing attribute 1, large enough to split into many
  // morsels at morsel_rows = 32.
  void SetUp() override {
    Rng rng(11);
    r_ = std::make_unique<Relation>(AttrSet{0, 1});
    s_ = std::make_unique<Relation>(AttrSet{1, 2});
    for (int i = 0; i < 700; ++i) {
      r_->AddRow({static_cast<Value>(rng.Below(50)),
                  static_cast<Value>(rng.Below(40))});
      s_->AddRow({static_cast<Value>(rng.Below(40)),
                  static_cast<Value>(rng.Below(50))});
    }
    r_->Canonicalize();
    s_->Canonicalize();
  }

  OpExecOpts ParallelOpts(exec::TaskScheduler* pool) {
    OpExecOpts opts;
    opts.scheduler = pool;
    opts.morsel_rows = 32;
    return opts;
  }

  std::unique_ptr<Relation> r_;
  std::unique_ptr<Relation> s_;
};

TEST_F(ParallelOpsTest, JoinMatchesSerialBitForBit) {
  Relation serial = NaturalJoin(*r_, *s_);
  for (int threads : {2, 4, 8}) {
    exec::TaskScheduler pool(threads);
    Relation parallel = NaturalJoin(*r_, *s_, ParallelOpts(&pool));
    EXPECT_EQ(serial.NumRows(), parallel.NumRows());
    EXPECT_TRUE(serial.IdenticalTo(parallel)) << "threads=" << threads;
  }
}

TEST_F(ParallelOpsTest, SemijoinMatchesSerialAndStaysCanonical) {
  Relation serial = Semijoin(*r_, *s_);
  EXPECT_TRUE(serial.IsCanonical());  // canonical input propagates
  for (int threads : {2, 4, 8}) {
    exec::TaskScheduler pool(threads);
    Relation parallel = Semijoin(*r_, *s_, ParallelOpts(&pool));
    EXPECT_TRUE(parallel.IsCanonical());
    EXPECT_TRUE(serial.IdenticalTo(parallel)) << "threads=" << threads;
  }
}

TEST_F(ParallelOpsTest, ProjectMatchesSerialBitForBit) {
  Relation serial = Project(*r_, AttrSet{1});
  for (int threads : {2, 4, 8}) {
    exec::TaskScheduler pool(threads);
    Relation parallel = Project(*r_, AttrSet{1}, ParallelOpts(&pool));
    EXPECT_EQ(serial.NumRows(), parallel.NumRows());
    EXPECT_TRUE(serial.IdenticalTo(parallel)) << "threads=" << threads;
  }
}

TEST_F(ParallelOpsTest, NonDeterministicResultsEqualAsSets) {
  exec::TaskScheduler pool(4);
  OpExecOpts opts = ParallelOpts(&pool);
  opts.deterministic = false;
  Relation join = NaturalJoin(*r_, *s_, opts);
  EXPECT_TRUE(join.EqualsAsSet(NaturalJoin(*r_, *s_)));
  Relation semi = Semijoin(*r_, *s_, opts);
  EXPECT_TRUE(semi.EqualsAsSet(Semijoin(*r_, *s_)));
  Relation proj = Project(*r_, AttrSet{1}, opts);
  EXPECT_TRUE(proj.EqualsAsSet(Project(*r_, AttrSet{1})));
}

TEST_F(ParallelOpsTest, DisjointSchemasCartesianProduct) {
  Relation a(AttrSet{0});
  Relation b(AttrSet{1});
  for (Value v = 0; v < 90; ++v) a.AddRow({v});
  for (Value v = 0; v < 7; ++v) b.AddRow({v});
  a.Canonicalize();
  b.Canonicalize();
  Relation serial = NaturalJoin(a, b);
  exec::TaskScheduler pool(4);
  OpExecOpts opts = ParallelOpts(&pool);
  opts.morsel_rows = 16;
  Relation parallel = NaturalJoin(a, b, opts);
  EXPECT_EQ(parallel.NumRows(), 90 * 7);
  EXPECT_TRUE(serial.IdenticalTo(parallel));
}

TEST_F(ParallelOpsTest, EmptyInputsStayEmpty) {
  Relation empty(AttrSet{1, 2});
  exec::TaskScheduler pool(4);
  OpExecOpts opts = ParallelOpts(&pool);
  EXPECT_EQ(NaturalJoin(*r_, empty, opts).NumRows(), 0);
  EXPECT_EQ(Semijoin(*r_, empty, opts).NumRows(), 0);
}

// --- Parallel full reducer. ---

TEST(ExecReducerTest, ParallelFullReducerMatchesSerial) {
  Rng rng(21);
  for (int trial = 0; trial < 3; ++trial) {
    RandomTreeResult t = RandomTreeSchema(8, 3, rng);
    Rng state_rng(500 + trial);
    std::vector<Relation> states = RandomStates(t.schema, 120, 4, state_rng);
    auto serial = ApplyFullReducer(t.schema, states);
    ASSERT_TRUE(serial.has_value());
    for (int threads : {2, 4, 8}) {
      PooledCtx pooled(threads);
      pooled.ctx.morsel_rows = 16;
      auto parallel = ApplyFullReducer(t.schema, states, pooled.ctx);
      ASSERT_TRUE(parallel.has_value());
      ASSERT_EQ(serial->size(), parallel->size());
      for (size_t i = 0; i < serial->size(); ++i) {
        EXPECT_TRUE((*serial)[i].IdenticalTo((*parallel)[i]))
            << "state " << i << " threads " << threads;
      }
    }
  }
}

TEST(ExecReducerTest, ParallelReducerRejectsCyclicSchemas) {
  DatabaseSchema d = Aring(5);
  Rng rng(3);
  std::vector<Relation> states = RandomStates(d, 20, 3, rng);
  PooledCtx pooled(4);
  EXPECT_FALSE(ApplyFullReducer(d, states, pooled.ctx).has_value());
}

// --- Probe morsel clamping: a probe task must never span a partition
// boundary, so the chunk step is recomputed per partition. ---

TEST(ClampMorselToPartitionTest, FormulaPins) {
  // 100000 rows at a 16384-row target split into ceil(100000/16384) = 7
  // chunks of ceil(100000/7) = 14286 rows — equal-ish chunks instead of six
  // full morsels plus a 1696-row tail.
  EXPECT_EQ(ClampMorselToPartition(16384, 100000), 14286);
  // A partition that fits in one morsel is one chunk.
  EXPECT_EQ(ClampMorselToPartition(16384, 1000), 1000);
  EXPECT_EQ(ClampMorselToPartition(16, 16), 16);
  // Exact multiples divide evenly.
  EXPECT_EQ(ClampMorselToPartition(16, 64), 16);
  // part_rows = k * morsel_rows + 1 rebalances rather than leaving a
  // 1-row tail chunk.
  EXPECT_EQ(ClampMorselToPartition(16, 65), 13);
  // Degenerate-input guards.
  EXPECT_EQ(ClampMorselToPartition(16, 0), 16);
  EXPECT_EQ(ClampMorselToPartition(0, 100), 1);
  EXPECT_EQ(ClampMorselToPartition(0, 0), 1);
}

TEST(ClampMorselToPartitionTest, StepAlwaysInRangeAndCoversPartition) {
  for (int64_t morsel : {int64_t{1}, int64_t{7}, int64_t{16}, int64_t{100},
                         int64_t{16384}}) {
    for (int64_t part : {int64_t{1}, int64_t{2}, int64_t{15}, int64_t{16},
                         int64_t{17}, int64_t{100}, int64_t{999},
                         int64_t{4096}, int64_t{100000}}) {
      const int64_t step = ClampMorselToPartition(morsel, part);
      ASSERT_GE(step, 1) << morsel << " " << part;
      ASSERT_LE(step, morsel) << morsel << " " << part;
      // Stepping by `step` tiles the partition in the same number of chunks
      // the naive morsel split would use — never more dispatch overhead.
      const int64_t naive = (part + morsel - 1) / morsel;
      ASSERT_EQ((part + step - 1) / step, naive) << morsel << " " << part;
    }
  }
}

// --- Steal-storm property tests: the pool's worker 0 parks for its first
// 30 ms, so every morsel tagged with an affinity it would have serviced —
// and any work seeded toward it — must be stolen by the other workers (or
// the caller draining the graph). The parallel-vs-serial contracts must
// hold with stealing forced on. ---

// A PooledCtx variant in steal-storm mode that also collects QueryStats so
// the tests can assert stealing actually happened.
struct StealStormCtx {
  explicit StealStormCtx(int threads) : pool(MakeOptions(threads)) {
    ctx.threads = threads;
    ctx.pool = &pool;
    ctx.morsel_rows = 16;  // force morsel splitting on small states
    ctx.query_stats = &query_stats;
  }
  static exec::ExecutorPool::Options MakeOptions(int threads) {
    exec::ExecutorPool::Options options;
    options.threads = threads;
    options.worker0_start_delay_ms = 30;
    return options;
  }
  exec::ExecutorPool pool;
  exec::ExecContext ctx;
  exec::QueryStats query_stats;
};

TEST(StealStormTest, TreeSchemaMatchesSerialUnderForcedStealing) {
  DatabaseSchema d = PathSchema(6);
  AttrSet x{0, 5};
  std::vector<Relation> states = MakeUR(d, 200, 16 * 60, 7042);
  int64_t total_stolen = 0;
  for (const Program& p : AllStrategyPrograms(d, x)) {
    Program::Stats serial_stats;
    std::vector<Relation> serial = p.ExecuteWithStats(states, &serial_stats);
    // EqualsAsSet canonicalizes both sides in place, so the set comparisons
    // run against a sacrificial copy — `serial` must stay byte-pristine for
    // the bit-identity checks.
    std::vector<Relation> serial_sets = serial;
    for (int threads : {2, 4, 8}) {
      for (bool deterministic : {true, false}) {
        StealStormCtx storm(threads);
        storm.ctx.deterministic = deterministic;
        Program::Stats par_stats;
        std::vector<Relation> parallel =
            exec::Execute(p, states, storm.ctx, &par_stats);
        if (deterministic) {
          ExpectBitIdentical(serial, parallel);
          EXPECT_EQ(serial_stats.max_intermediate_rows,
                    par_stats.max_intermediate_rows);
          EXPECT_EQ(serial_stats.total_rows_produced,
                    par_stats.total_rows_produced);
          EXPECT_EQ(serial_stats.result_rows, par_stats.result_rows);
        } else {
          ASSERT_EQ(serial_sets.size(), parallel.size());
          for (size_t i = 0; i < serial_sets.size(); ++i) {
            EXPECT_TRUE(serial_sets[i].EqualsAsSet(parallel[i]))
                << "state " << i << " threads " << threads;
          }
        }
        total_stolen += storm.query_stats.tasks_stolen;
      }
    }
  }
  // Across ~dozens of queries with worker 0 parked, at least one task must
  // have been stolen (the exact count is scheduling-dependent).
  EXPECT_GT(total_stolen, 0);
}

TEST(StealStormTest, CyclicFixpointMatchesSerialUnderForcedStealing) {
  DatabaseSchema d = Aring(5);
  Rng rng(911);
  std::vector<Relation> states = RandomStates(d, 200, 8, rng);
  int serial_steps = -1;
  std::vector<Relation> serial = SemijoinFixpoint(d, states, &serial_steps);
  // Sacrificial copy for the set comparisons (EqualsAsSet canonicalizes in
  // place; `serial` must stay byte-pristine for IdenticalTo).
  std::vector<Relation> serial_sets = serial;
  int64_t total_stolen = 0;
  for (int threads : {2, 4, 8}) {
    for (bool deterministic : {true, false}) {
      StealStormCtx storm(threads);
      storm.ctx.deterministic = deterministic;
      int steps = -1;
      std::vector<Relation> parallel =
          SemijoinFixpoint(d, states, storm.ctx, &steps);
      // Effective-step counts depend only on row counts, which are
      // mode-independent — equal to serial in both modes.
      EXPECT_EQ(steps, serial_steps) << "threads " << threads;
      ASSERT_EQ(serial.size(), parallel.size());
      for (size_t i = 0; i < serial.size(); ++i) {
        if (deterministic) {
          EXPECT_EQ(serial[i].IsCanonical(), parallel[i].IsCanonical())
              << "relation " << i << " threads " << threads;
          EXPECT_TRUE(serial[i].IdenticalTo(parallel[i]))
              << "relation " << i << " threads " << threads;
        } else {
          EXPECT_TRUE(serial_sets[i].EqualsAsSet(parallel[i]))
              << "relation " << i << " threads " << threads;
        }
      }
      total_stolen += storm.query_stats.tasks_stolen;
    }
  }
  EXPECT_GT(total_stolen, 0);
}

// --- Sideways information passing: a downstream chain statement's
// build-side Bloom filter pre-prunes upstream probes. No false negatives,
// so results must be bit-identical with SIP on or off, serial or parallel,
// at every thread count. ---

// A chain where SIP provably fires: s0 = R0 ⋉ R1, s1 = s0 ⋉ R2, key {a}
// throughout. R2's key domain is tiny, so the filter over R2 rejects most
// R0 rows already at s0.
struct SipChain {
  SipChain() : program(3) {
    program.AddSemijoin(0, 1);      // slot 3
    program.AddSemijoin(3, 2);      // slot 4
    Relation r0(AttrSet{0, 1});
    Relation r1(AttrSet{0});
    Relation r2(AttrSet{0});
    Rng rng(4242);
    for (int i = 0; i < 300; ++i) {
      r0.AddRow({static_cast<Value>(rng.Below(50)),
                 static_cast<Value>(rng.Below(1000))});
    }
    for (Value v = 0; v < 50; ++v) r1.AddRow({v});
    for (Value v = 0; v < 5; ++v) r2.AddRow({v});
    r0.Canonicalize();
    r1.Canonicalize();
    r2.Canonicalize();
    states = {std::move(r0), std::move(r1), std::move(r2)};
  }
  Program program;
  std::vector<Relation> states;
};

TEST(SipTest, ChainPrunesSerialAndKeepsFinalStateBitIdentical) {
  SipChain chain;
  exec::ExecContext on;  // serial, enable_sip defaults to true
  exec::QueryStats on_stats;
  on.query_stats = &on_stats;
  std::vector<Relation> with_sip =
      exec::Execute(chain.program, chain.states, on);

  exec::ExecContext off;
  off.enable_sip = false;
  exec::QueryStats off_stats;
  off.query_stats = &off_stats;
  std::vector<Relation> without_sip =
      exec::Execute(chain.program, chain.states, off);

  // ~45 of R0's 50 key values are absent from R2; modulo Bloom false
  // positives almost every such probe row is SIP-pruned at s0.
  EXPECT_GT(on_stats.sip_rows_pruned, 0);
  EXPECT_EQ(off_stats.sip_rows_pruned, 0);
  // The SIP contract: base slots and the chain's FINAL state are untouched;
  // the single-reader intermediate (slot 3) legitimately shrinks — its
  // pruned rows are exactly work the chain no longer redoes at s1.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(with_sip[i].IdenticalTo(without_sip[i])) << "base " << i;
  }
  EXPECT_TRUE(with_sip[4].IdenticalTo(without_sip[4]));
  EXPECT_LT(with_sip[3].NumRows(), without_sip[3].NumRows());
}

TEST(SipTest, ChainParallelMatchesSerialBothModes) {
  SipChain chain;
  std::vector<Relation> serial =
      exec::Execute(chain.program, chain.states, exec::ExecContext());
  std::vector<Relation> serial_sets = serial;  // sacrificial for EqualsAsSet
  int64_t total_pruned = 0;
  for (int threads : {2, 4, 8}) {
    for (bool deterministic : {true, false}) {
      StealStormCtx storm(threads);
      storm.ctx.deterministic = deterministic;
      std::vector<Relation> parallel =
          exec::Execute(chain.program, chain.states, storm.ctx);
      if (deterministic) {
        ExpectBitIdentical(serial, parallel);
      } else {
        ASSERT_EQ(serial_sets.size(), parallel.size());
        for (size_t i = 0; i < serial_sets.size(); ++i) {
          EXPECT_TRUE(serial_sets[i].EqualsAsSet(parallel[i]))
              << "state " << i << " threads " << threads;
        }
      }
      total_pruned += storm.query_stats.sip_rows_pruned;
    }
  }
  EXPECT_GT(total_pruned, 0);
}

TEST(SipTest, AllStrategiesKeepSinksUnchangedBySip) {
  // The property the registry must uphold on every plan shape the solver
  // emits (full-reducer chains included): SIP toggling never changes any
  // sink state — the caller-visible results. Consumed single-reader chain
  // intermediates MAY shrink (pruned rows are exactly the rows their
  // downstream eliminator drops), which is the saved work.
  DatabaseSchema d = PathSchema(6);
  AttrSet x{0, 5};
  std::vector<Relation> states = MakeUR(d, 150, 10 * 60, 5150);
  for (const Program& p : AllStrategyPrograms(d, x)) {
    exec::PhysicalPlan plan = exec::PhysicalPlan::Compile(p);
    exec::ExecContext off;
    off.enable_sip = false;
    std::vector<Relation> without_sip = exec::Execute(p, states, off);
    std::vector<Relation> with_sip =
        exec::Execute(p, states, exec::ExecContext());
    ASSERT_EQ(without_sip.size(), with_sip.size());
    for (size_t i = 0; i < with_sip.size(); ++i) {
      if (plan.ReaderCounts()[i] != 0) continue;
      EXPECT_TRUE(with_sip[i].IdenticalTo(without_sip[i])) << "sink " << i;
    }
  }
}

// --- Deterministic NaturalJoin probe scatter: the radix-partitioned
// probe with k-way morsel merge must restore the serial global output
// order under forced work stealing, on tree and cyclic schemas alike. ---

TEST(JoinScatterStormTest, JoinHeavyProgramsMatchSerialUnderStealing) {
  // FullJoinProgram is all NaturalJoins — the kernel under test — and
  // Aring(4) adds the cyclic case no qual-tree strategy covers.
  struct Case {
    DatabaseSchema d;
    AttrSet x;
  };
  std::vector<Case> cases;
  cases.push_back({PathSchema(5), AttrSet{0, 4}});
  cases.push_back({Aring(4), AttrSet{0, 2}});
  for (size_t ci = 0; ci < cases.size(); ++ci) {
    std::vector<Relation> states =
        MakeUR(cases[ci].d, 220, 12 * 60, 7100 + static_cast<uint64_t>(ci));
    Program p = FullJoinProgram(cases[ci].d, cases[ci].x);
    std::vector<Relation> serial = p.Execute(states);
    std::vector<Relation> serial_sets = serial;
    for (int threads : {2, 4, 8}) {
      for (bool deterministic : {true, false}) {
        StealStormCtx storm(threads);
        storm.ctx.deterministic = deterministic;
        std::vector<Relation> parallel =
            exec::Execute(p, states, storm.ctx);
        if (deterministic) {
          ExpectBitIdentical(serial, parallel);
        } else {
          ASSERT_EQ(serial_sets.size(), parallel.size());
          for (size_t i = 0; i < serial_sets.size(); ++i) {
            EXPECT_TRUE(serial_sets[i].EqualsAsSet(parallel[i]))
                << "case " << ci << " state " << i << " threads " << threads;
          }
        }
      }
    }
  }
}

TEST(JoinScatterStormTest, KernelBitIdenticalAcrossMorselSizes) {
  // Drive the scattered probe directly: skewed keys (heavy partitions) and
  // several morsel sizes so chunks split partitions unevenly.
  Relation r(AttrSet{0, 1});
  Relation s(AttrSet{1, 2});
  Rng rng(8181);
  for (int i = 0; i < 900; ++i) {
    // Zipf-ish skew: half the rows land on 4 hot keys.
    const Value hot = static_cast<Value>(rng.Below(2) ? rng.Below(4)
                                                      : rng.Below(60));
    r.AddRow({static_cast<Value>(rng.Below(40)), hot});
    s.AddRow({static_cast<Value>(rng.Below(60)),
              static_cast<Value>(rng.Below(40))});
  }
  r.Canonicalize();
  s.Canonicalize();
  Relation serial = NaturalJoin(r, s);
  // Sacrificial copy for the set comparisons (EqualsAsSet canonicalizes in
  // place; `serial` must stay byte-pristine for IdenticalTo).
  Relation serial_sets = serial;
  for (int threads : {2, 4, 8}) {
    for (int64_t morsel_rows : {16, 64, 257}) {
      exec::TaskScheduler pool(threads);
      OpExecOpts opts;
      opts.scheduler = &pool;
      opts.morsel_rows = morsel_rows;
      Relation parallel = NaturalJoin(r, s, opts);
      EXPECT_TRUE(serial.IdenticalTo(parallel))
          << "threads=" << threads << " morsel_rows=" << morsel_rows;
      opts.deterministic = false;
      Relation unordered = NaturalJoin(r, s, opts);
      EXPECT_TRUE(unordered.EqualsAsSet(serial_sets))
          << "threads=" << threads << " morsel_rows=" << morsel_rows;
    }
  }
}

// --- Eager validation (satellite): malformed statements must fail up front
// with an error naming the statement index. ---

using ProgramValidationDeathTest = ::testing::Test;

TEST(ProgramValidationDeathTest, ProjectingAbsentAttributeNamesStatement) {
  Program p(2);
  p.AddJoin(0, 1);              // statement 0, fine
  p.AddProject(2, AttrSet{9});  // statement 1: attribute 9 exists nowhere
  std::vector<Relation> base = {Relation(AttrSet{0, 1}),
                                Relation(AttrSet{1, 2})};
  EXPECT_DEATH(p.Execute(base), "statement 1");
  DatabaseSchema d{AttrSet{0, 1}, AttrSet{1, 2}};
  EXPECT_DEATH(p.DerivedSchema(d), "statement 1");
}

TEST(ProgramValidationDeathTest, ValidationRunsBeforeExecution) {
  // The first statement is executable, the second malformed: eager
  // validation must reject the program without running statement 0 (the
  // error names statement 1, not a mid-execution operator failure).
  Program p(1);
  p.AddProject(0, AttrSet{0});
  p.AddProject(1, AttrSet{7});
  std::vector<Relation> base = {Relation(AttrSet{0, 1})};
  EXPECT_DEATH(p.Execute(base), "statement 1: projection target");
}

TEST(ProgramValidationDeathTest, BaseArityMismatchDies) {
  Program p(2);
  p.AddJoin(0, 1);
  std::vector<Relation> base = {Relation(AttrSet{0, 1})};
  EXPECT_DEATH(p.Execute(base), "base has 1 relations, program expects 2");
}

TEST(ProgramValidationDeathTest, ValidateReturnsDerivedSchemas) {
  Program p(2);
  int j = p.AddJoin(0, 1);
  p.AddProject(j, AttrSet{0, 2});
  std::vector<AttrSet> schemas = p.ValidateAndDeriveSchemas(
      {AttrSet{0, 1}, AttrSet{1, 2}});
  ASSERT_EQ(schemas.size(), 4u);
  EXPECT_TRUE(schemas[2] == (AttrSet{0, 1, 2}));
  EXPECT_TRUE(schemas[3] == (AttrSet{0, 2}));
}

}  // namespace
}  // namespace gyo
