// serve/server + serve/client end-to-end over loopback: concurrent clients
// bit-identical to direct serial execution, typed admission sheds, protocol
// fault handling (connection survives malformed frames, closes on
// unrecoverable ones), STATUS over the wire, and graceful drain. The shed
// and drain tests are deterministic by construction — a pool Admission held
// by the test occupies the only slot, so rejection and in-flight states are
// guaranteed rather than raced.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "exec/executor_pool.h"
#include "exec/physical_plan.h"
#include "gtest/gtest.h"
#include "rel/solver.h"
#include "rel/universal.h"
#include "schema/parse.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/rng.h"

namespace gyo {
namespace serve {
namespace {

struct Spec {
  const char* schema;
  const char* target;
  int rows;
  int domain;
};

// The two shapes the acceptance criteria call out: a path (tree) schema
// Yannakakis handles and a triangle (cyclic) one that falls back to the
// CC-pruned join.
constexpr Spec kTree{"ab,bc,cd", "ad", 300, 12};
constexpr Spec kCycle{"ab,bc,ca", "ac", 200, 10};

std::vector<Relation> MakeStates(const Spec& spec, uint64_t seed) {
  Catalog catalog;
  DatabaseSchema d = ParseSchema(catalog, spec.schema);
  Rng rng(seed);
  return ProjectDatabase(
      RandomUniversal(d.Universe(), spec.rows, spec.domain, rng), d);
}

// What the server must be bit-identical to: the same kAuto strategy
// resolution, executed serially and directly.
Relation SerialReference(const Spec& spec, uint64_t seed) {
  Catalog catalog;
  DatabaseSchema d = ParseSchema(catalog, spec.schema);
  AttrSet x = ParseAttrSet(catalog, spec.target);
  std::optional<Program> p = YannakakisProgram(d, x);
  Program program = p.has_value() ? *std::move(p) : CCPrunedProgram(d, x);
  return exec::Run(program, MakeStates(spec, seed), exec::ExecContext());
}

QueryRequest MakeRequest(const Spec& spec, uint64_t seed) {
  QueryRequest request;
  request.schema_spec = spec.schema;
  request.target_spec = spec.target;
  request.states = MakeStates(spec, seed);
  return request;
}

exec::ExecutorPool::Options PoolOptions(int threads, int max_concurrent) {
  exec::ExecutorPool::Options options;
  options.threads = threads;
  options.max_concurrent_queries = max_concurrent;
  return options;
}

// Blocking loopback connection for the raw-bytes protocol-fault tests.
int Dial(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

ErrorReply ReadErrorFrame(int fd) {
  std::vector<uint8_t> payload;
  std::string error;
  EXPECT_EQ(ReadFrame(fd, kDefaultMaxFrameBytes, &payload, &error),
            IoStatus::kOk)
      << error;
  ErrorReply reply;
  if (payload.empty() ||
      payload[0] != static_cast<uint8_t>(FrameType::kError)) {
    ADD_FAILURE() << "expected an error frame";
    return reply;
  }
  EXPECT_TRUE(
      DecodeError(payload.data() + 1, payload.size() - 1, &reply, &error))
      << error;
  return reply;
}

TEST(ServeTest, ConcurrentClientsBitIdenticalToSerial) {
  exec::ExecutorPool pool(PoolOptions(3, 2));
  ServerOptions options;
  options.pool = &pool;
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  constexpr int kClients = 8;
  std::vector<Relation> expected;
  for (int i = 0; i < kClients; ++i) {
    const Spec& spec = (i % 2 == 0) ? kTree : kCycle;
    expected.push_back(SerialReference(spec, 100 + i));
  }

  std::vector<std::string> failures(kClients);
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      const Spec& spec = (i % 2 == 0) ? kTree : kCycle;
      Client client;
      if (!client.Connect("127.0.0.1", server.port())) {
        failures[i] = client.io_error();
        return;
      }
      QueryRequest request = MakeRequest(spec, 100 + i);
      request.want_plan = true;
      QueryResponse response;
      if (client.Query(request, &response) != Client::Outcome::kOk) {
        failures[i] = client.io_error() + client.server_error().message;
        return;
      }
      if (!response.result.IdenticalTo(expected[i])) {
        failures[i] = "result not bit-identical to serial execution";
        return;
      }
      if (response.stats.result_rows != expected[i].NumRows()) {
        failures[i] = "stats disagree with the result";
        return;
      }
      const Strategy want =
          (i % 2 == 0) ? Strategy::kYannakakis : Strategy::kCcPruned;
      if (!response.has_plan || response.plan.strategy != want) {
        failures[i] = "kAuto resolved to the wrong strategy";
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_TRUE(failures[i].empty()) << "client " << i << ": " << failures[i];
  }

  Client status_client;
  ASSERT_TRUE(status_client.Connect("127.0.0.1", server.port()));
  StatusResponse status;
  ASSERT_EQ(status_client.Status(&status), Client::Outcome::kOk);
  EXPECT_EQ(status.queries_served, static_cast<uint64_t>(kClients));
  EXPECT_EQ(status.connections_accepted,
            static_cast<uint64_t>(kClients) + 1);
  EXPECT_EQ(status.protocol_errors, 0u);
  EXPECT_FALSE(status.draining);
  EXPECT_EQ(status.pool.threads, 3);
  EXPECT_EQ(status.pool.max_concurrent_queries, 2);

  server.RequestDrain();
  const DrainReport report = server.Wait();
  EXPECT_EQ(report.queries_served, static_cast<uint64_t>(kClients));
  EXPECT_EQ(report.protocol_errors, 0u);
}

TEST(ServeTest, RepeatQueryIsServedFromCacheBitIdentically) {
  exec::ExecutorPool pool(PoolOptions(2, 2));
  ServerOptions options;
  options.pool = &pool;
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  const Relation expected = SerialReference(kTree, 500);
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  QueryResponse first, second;
  ASSERT_EQ(client.Query(MakeRequest(kTree, 500), &first),
            Client::Outcome::kOk);
  ASSERT_EQ(client.Query(MakeRequest(kTree, 500), &second),
            Client::Outcome::kOk);

  // The cached reply replays the first answer — and both must be
  // bit-identical to direct serial execution, stats included.
  EXPECT_TRUE(first.result.IdenticalTo(expected));
  EXPECT_TRUE(second.result.IdenticalTo(first.result));
  EXPECT_EQ(second.stats.result_rows, first.stats.result_rows);
  EXPECT_EQ(second.stats.max_intermediate_rows,
            first.stats.max_intermediate_rows);
  EXPECT_EQ(second.stats.total_rows_produced, first.stats.total_rows_produced);
  EXPECT_EQ(first.query_stats.plan_cache_hits, 0);
  EXPECT_EQ(first.query_stats.state_cache_hits, 0);
  EXPECT_EQ(second.query_stats.plan_cache_hits, 1);
  EXPECT_EQ(second.query_stats.state_cache_hits, 1);
  EXPECT_EQ(second.query_stats.tasks, 0);  // no execution happened

  StatusResponse status;
  ASSERT_EQ(client.Status(&status), Client::Outcome::kOk);
  EXPECT_EQ(status.queries_served, 2u);
  EXPECT_EQ(status.plan_cache_hits, 1u);
  EXPECT_EQ(status.plan_cache_misses, 1u);
  EXPECT_EQ(status.result_cache_hits, 1u);
  EXPECT_EQ(status.result_cache_misses, 1u);
}

TEST(ServeTest, DisabledCachesExecuteEveryQuery) {
  exec::ExecutorPool pool(PoolOptions(2, 2));
  ServerOptions options;
  options.pool = &pool;
  options.plan_cache_entries = 0;
  options.result_cache_bytes = 0;
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  QueryResponse first, second;
  ASSERT_EQ(client.Query(MakeRequest(kTree, 500), &first),
            Client::Outcome::kOk);
  ASSERT_EQ(client.Query(MakeRequest(kTree, 500), &second),
            Client::Outcome::kOk);
  EXPECT_TRUE(second.result.IdenticalTo(first.result));
  EXPECT_EQ(second.query_stats.plan_cache_hits, 0);
  EXPECT_EQ(second.query_stats.state_cache_hits, 0);
  EXPECT_GT(second.query_stats.tasks, 0);

  StatusResponse status;
  ASSERT_EQ(client.Status(&status), Client::Outcome::kOk);
  EXPECT_EQ(status.plan_cache_hits, 0u);
  EXPECT_EQ(status.plan_cache_misses, 0u);
  EXPECT_EQ(status.result_cache_hits, 0u);
  EXPECT_EQ(status.result_cache_misses, 0u);
}

TEST(ServeTest, DeadlineShedIsATypedReplyAndTheConnectionSurvives) {
  exec::ExecutorPool pool(PoolOptions(2, 1));
  ServerOptions options;
  options.pool = &pool;
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // Occupy the only slot so the served query must queue.
  exec::ExecutorPool::AdmitResult holder = pool.TryAdmit(99);
  ASSERT_EQ(holder.status, exec::ExecutorPool::AdmitStatus::kAdmitted);

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  QueryRequest request = MakeRequest(kTree, 1);
  request.deadline_ms = 20;
  QueryResponse response;
  ASSERT_EQ(client.Query(request, &response), Client::Outcome::kServerError);
  EXPECT_EQ(client.server_error().code, ErrorCode::kDeadlineExceeded);

  // A shed is not a connection fault: the same connection serves the same
  // query once the slot frees up.
  holder.admission.reset();
  ASSERT_EQ(client.Query(request, &response), Client::Outcome::kOk);
  EXPECT_TRUE(response.result.IdenticalTo(SerialReference(kTree, 1)));

  StatusResponse status;
  ASSERT_EQ(client.Status(&status), Client::Outcome::kOk);
  EXPECT_EQ(status.queries_shed_deadline, 1u);
  EXPECT_EQ(status.queries_served, 1u);
  EXPECT_EQ(status.protocol_errors, 0u);
}

TEST(ServeTest, BacklogShedIsATypedReply) {
  exec::ExecutorPool::Options pool_options = PoolOptions(2, 1);
  pool_options.max_waiting_per_submitter = 1;
  exec::ExecutorPool pool(pool_options);
  ServerOptions options;
  options.pool = &pool;
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  exec::ExecutorPool::AdmitResult holder = pool.TryAdmit(99);
  ASSERT_EQ(holder.status, exec::ExecutorPool::AdmitStatus::kAdmitted);

  // First query of submitter 7 fills its backlog quota of one...
  Client waiter;
  ASSERT_TRUE(waiter.Connect("127.0.0.1", server.port()));
  QueryRequest request = MakeRequest(kTree, 2);
  request.submitter = 7;
  std::thread waiting_query([&] {
    QueryResponse response;
    EXPECT_EQ(waiter.Query(request, &response), Client::Outcome::kOk);
  });
  while (pool.waiting_queries(7) != 1) std::this_thread::yield();

  // ...so a second one of the same submitter is rejected in O(1).
  Client rejected;
  ASSERT_TRUE(rejected.Connect("127.0.0.1", server.port()));
  QueryResponse response;
  ASSERT_EQ(rejected.Query(request, &response),
            Client::Outcome::kServerError);
  EXPECT_EQ(rejected.server_error().code, ErrorCode::kBacklogFull);

  holder.admission.reset();
  waiting_query.join();

  StatusResponse status;
  ASSERT_EQ(rejected.Status(&status), Client::Outcome::kOk);
  EXPECT_EQ(status.queries_shed_backlog, 1u);
  EXPECT_EQ(status.queries_served, 1u);
}

TEST(ServeTest, MalformedFrameGetsTypedErrorAndConnectionSurvives) {
  exec::ExecutorPool pool(PoolOptions(2, 1));
  ServerOptions options;
  options.pool = &pool;
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  const int fd = Dial(server.port());

  // A query frame whose body is garbage decodes to a typed kMalformed.
  Writer w;
  w.Begin(FrameType::kQueryRequest);
  w.U8(0xff);
  w.U8(0xff);
  ASSERT_TRUE(WriteFrame(fd, w.Finish(), &error)) << error;
  EXPECT_EQ(ReadErrorFrame(fd).code, ErrorCode::kMalformed);

  // An unknown frame type likewise.
  w.Begin(static_cast<FrameType>(9));
  ASSERT_TRUE(WriteFrame(fd, w.Finish(), &error)) << error;
  EXPECT_EQ(ReadErrorFrame(fd).code, ErrorCode::kMalformed);

  // The frame boundary was never lost, so the connection still serves a
  // well-formed query afterwards.
  ASSERT_TRUE(WriteFrame(fd, EncodeQueryRequest(MakeRequest(kTree, 3)),
                         &error))
      << error;
  std::vector<uint8_t> payload;
  ASSERT_EQ(ReadFrame(fd, kDefaultMaxFrameBytes, &payload, &error),
            IoStatus::kOk)
      << error;
  ASSERT_FALSE(payload.empty());
  EXPECT_EQ(payload[0], static_cast<uint8_t>(FrameType::kQueryResponse));

  StatusResponse status;
  Client status_client;
  ASSERT_TRUE(status_client.Connect("127.0.0.1", server.port()));
  ASSERT_EQ(status_client.Status(&status), Client::Outcome::kOk);
  EXPECT_EQ(status.protocol_errors, 2u);
  EXPECT_EQ(status.queries_served, 1u);
  ::close(fd);
}

TEST(ServeTest, TargetOutsideSchemaUniverseIsMalformedNotFatal) {
  // Regression: this exact frame used to abort the whole daemon via a
  // GYO_CHECK in program construction — a single-packet kill.
  exec::ExecutorPool pool(PoolOptions(2, 1));
  ServerOptions options;
  options.pool = &pool;
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  QueryRequest request = MakeRequest(kTree, 5);
  request.target_spec = "az";  // 'z' is in no relation of the schema
  QueryResponse response;
  ASSERT_EQ(client.Query(request, &response), Client::Outcome::kServerError);
  EXPECT_EQ(client.server_error().code, ErrorCode::kMalformed);

  // The daemon survived and the frame boundary held: the corrected query
  // succeeds on the same connection.
  request.target_spec = kTree.target;
  ASSERT_EQ(client.Query(request, &response), Client::Outcome::kOk);
  EXPECT_TRUE(response.result.IdenticalTo(SerialReference(kTree, 5)));

  StatusResponse status;
  ASSERT_EQ(client.Status(&status), Client::Outcome::kOk);
  EXPECT_EQ(status.protocol_errors, 1u);
  EXPECT_EQ(status.queries_served, 1u);
}

TEST(ServeTest, OversizedResultIsATypedErrorNotACorruptFrame) {
  exec::ExecutorPool pool(PoolOptions(2, 1));
  ServerOptions options;
  options.pool = &pool;
  options.max_frame_bytes = 4096;
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // A small request whose join result far exceeds the frame bound:
  // ab = {0..N-1} x {0} and bc = {0} x {0..N-1} join to N^2 rows over ac.
  constexpr int kN = 100;
  Catalog catalog;
  DatabaseSchema schema = ParseSchema(catalog, "ab,bc");
  QueryRequest request;
  request.schema_spec = "ab,bc";
  request.target_spec = "ac";
  request.states.emplace_back(schema.Relation(0));
  request.states.emplace_back(schema.Relation(1));
  for (int i = 0; i < kN; ++i) {
    request.states[0].AddRow({i, 0});
    request.states[1].AddRow({0, i});
  }
  request.states[0].MarkCanonical();
  request.states[1].MarkCanonical();

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  QueryResponse response;
  ASSERT_EQ(client.Query(request, &response), Client::Outcome::kServerError);
  EXPECT_EQ(client.server_error().code, ErrorCode::kInternal);

  // The reply was a clean typed frame on an intact stream: the connection
  // still answers requests that fit.
  StatusResponse status;
  ASSERT_EQ(client.Status(&status), Client::Outcome::kOk);
  EXPECT_EQ(status.queries_served, 0u);
}

TEST(ServeTest, PipelinedFloodIsBackpressuredNotBufferedWithoutBound) {
  exec::ExecutorPool pool(PoolOptions(2, 1));
  ServerOptions options;
  options.pool = &pool;
  // A tiny bound so a handful of queued status replies trips backpressure.
  options.max_queued_response_bytes = 256;
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // Pipeline many STATUS requests without reading a single reply. The
  // server parses only until its response queue holds the bound, parks the
  // rest, and stops reading the socket — then serves every request as the
  // queue drains. Nothing is dropped and nothing buffers without bound.
  const int fd = Dial(server.port());
  const std::vector<uint8_t> status_frame = EncodeStatusRequest();
  constexpr int kRequests = 64;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(WriteFrame(fd, status_frame, &error)) << error;
  }
  for (int i = 0; i < kRequests; ++i) {
    std::vector<uint8_t> payload;
    ASSERT_EQ(ReadFrame(fd, kDefaultMaxFrameBytes, &payload, &error),
              IoStatus::kOk)
        << "reply " << i << ": " << error;
    ASSERT_FALSE(payload.empty());
    EXPECT_EQ(payload[0], static_cast<uint8_t>(FrameType::kStatusResponse));
  }
  ::close(fd);
}

TEST(ServeTest, UnrecoverableFramesCloseTheConnectionCleanly) {
  exec::ExecutorPool pool(PoolOptions(2, 1));
  ServerOptions options;
  options.pool = &pool;
  options.max_frame_bytes = 4096;
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // An oversized length prefix: typed kFrameTooLarge, then close — the
  // announced bytes were never read, so the stream cannot resync.
  {
    const int fd = Dial(server.port());
    const uint8_t header[4] = {0, 0, 16, 0};  // announces 1 MiB
    ASSERT_EQ(::send(fd, header, sizeof(header), MSG_NOSIGNAL), 4);
    EXPECT_EQ(ReadErrorFrame(fd).code, ErrorCode::kFrameTooLarge);
    std::vector<uint8_t> payload;
    EXPECT_EQ(ReadFrame(fd, kDefaultMaxFrameBytes, &payload, &error),
              IoStatus::kEof);
    ::close(fd);
  }
  // A zero-length frame: same treatment.
  {
    const int fd = Dial(server.port());
    const uint8_t header[4] = {0, 0, 0, 0};
    ASSERT_EQ(::send(fd, header, sizeof(header), MSG_NOSIGNAL), 4);
    EXPECT_EQ(ReadErrorFrame(fd).code, ErrorCode::kMalformed);
    std::vector<uint8_t> payload;
    EXPECT_EQ(ReadFrame(fd, kDefaultMaxFrameBytes, &payload, &error),
              IoStatus::kEof);
    ::close(fd);
  }
  // The server outlived both faults.
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  StatusResponse status;
  ASSERT_EQ(client.Status(&status), Client::Outcome::kOk);
  EXPECT_EQ(status.protocol_errors, 2u);
}

TEST(ServeTest, DrainFinishesInFlightQueriesAndFlushesResponses) {
  exec::ExecutorPool pool(PoolOptions(2, 1));
  ServerOptions options;
  options.pool = &pool;
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // Park a query in the admission queue (slot held), then drain: the drain
  // must wait for the query, deliver its response, and only then exit.
  exec::ExecutorPool::AdmitResult holder = pool.TryAdmit(99);
  ASSERT_EQ(holder.status, exec::ExecutorPool::AdmitStatus::kAdmitted);

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  Client::Outcome outcome = Client::Outcome::kIoError;
  QueryResponse response;
  QueryRequest request = MakeRequest(kCycle, 4);
  std::thread in_flight([&] { outcome = client.Query(request, &response); });
  // Connection ids start at 1, so the first connection waits as submitter 1.
  while (pool.waiting_queries(1) != 1) std::this_thread::yield();

  server.RequestDrain();
  holder.admission.reset();
  in_flight.join();
  ASSERT_EQ(outcome, Client::Outcome::kOk);
  EXPECT_TRUE(response.result.IdenticalTo(SerialReference(kCycle, 4)));

  const DrainReport report = server.Wait();
  EXPECT_EQ(report.queries_in_flight_at_drain, 1u);
  EXPECT_EQ(report.connections_at_drain, 1u);
  EXPECT_EQ(report.queries_served, 1u);
  EXPECT_EQ(report.protocol_errors, 0u);

  // New connections are refused once the listener is down.
  Client late;
  EXPECT_FALSE(late.Connect("127.0.0.1", server.port()));
}

}  // namespace
}  // namespace serve
}  // namespace gyo
