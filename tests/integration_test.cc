// End-to-end pipelines combining several modules, the way a downstream user
// (query optimizer / schema designer) would drive the library.

#include <gtest/gtest.h>

#include "gyo/acyclic.h"
#include "gyo/gamma.h"
#include "gyo/qual_graph.h"
#include "query/lossless.h"
#include "query/query.h"
#include "query/tree_projection.h"
#include "query/treefication.h"
#include "rel/solver.h"
#include "rel/universal.h"
#include "schema/generators.h"
#include "schema/parse.h"
#include "tableau/canonical.h"
#include "util/rng.h"

namespace gyo {
namespace {

// Pipeline A — query planning on a tree schema: classify, build a join tree,
// produce a Yannakakis plan, and validate it against the reference evaluator.
TEST(IntegrationTest, TreeSchemaQueryPlanningPipeline) {
  Catalog c;
  // A supplier-parts-ish chain: orders(o,cu), customers(cu,ci), city(ci,s),
  // stock(s,p).
  DatabaseSchema d =
      ParseSchema(c, "o cu, cu ci, ci s, s p");
  ASSERT_TRUE(IsTreeSchema(d));
  auto tree = BuildJoinTree(d);
  ASSERT_TRUE(tree.has_value());
  AttrSet x;
  x.Insert(*c.Find("o"));
  x.Insert(*c.Find("p"));
  auto plan = YannakakisProgram(d, x);
  ASSERT_TRUE(plan.has_value());
  Rng rng(401);
  EXPECT_TRUE(SolvesQueryEmpirically(*plan, d, x, 25, rng));
  // The plan never joins more than n-1 times and fully reduces first.
  EXPECT_EQ(plan->NumJoins(), d.NumRelations() - 1);
  EXPECT_EQ(plan->NumSemijoins(), 2 * (d.NumRelations() - 1));
}

// Pipeline B — cyclic query: detect cyclicity, treefy via Corollary 3.2,
// solve through the induced tree projection, and cross-check the answer.
TEST(IntegrationTest, CyclicSchemaTreefyAndSolvePipeline) {
  DatabaseSchema d = Aring(6);
  ASSERT_TRUE(IsCyclicSchema(d));
  AttrSet x{0, 3};

  // Corollary 3.2: the least treefying relation.
  AttrSet treefier = TreefyingRelation(d);
  EXPECT_EQ(treefier, d.Universe());
  DatabaseSchema bags = d;
  bags.Add(treefier);
  ASSERT_TRUE(IsTreeSchema(bags));

  auto plan = TreeProjectionProgram(d, x, bags);
  ASSERT_TRUE(plan.has_value());
  Rng rng(409);
  EXPECT_TRUE(SolvesQueryEmpirically(*plan, d, x, 20, rng));
}

// Pipeline C — schema design audit: for a proposed decomposition, report
// which sub-databases are lossless, and check γ-acyclicity shortcuts.
TEST(IntegrationTest, SchemaDesignAuditPipeline) {
  Catalog c;
  DatabaseSchema d = ParseSchema(c, "ab,bc,cd,ce");
  ASSERT_TRUE(IsTreeSchema(d));
  ASSERT_TRUE(IsGammaAcyclic(d));
  // γ-acyclic ⇒ every connected sub-database is lossless (Cor 5.3).
  const int n = d.NumRelations();
  for (uint32_t mask = 1; mask < (uint32_t{1} << n); ++mask) {
    std::vector<int> indices;
    for (int i = 0; i < n; ++i) {
      if ((mask >> i) & 1) indices.push_back(i);
    }
    DatabaseSchema sub = d.Select(indices);
    if (sub.IsConnected()) {
      EXPECT_TRUE(JoinDependencyImplies(d, sub)) << "mask " << mask;
    }
  }
}

// Pipeline D — the non-γ-acyclic tree schema: the audit must flag the
// connected non-subtree and data must witness the lossy join.
TEST(IntegrationTest, AuditFlagsLossyDecomposition) {
  Catalog c;
  DatabaseSchema d = ParseSchema(c, "abc,ab,bc");
  EXPECT_TRUE(IsTreeSchema(d));
  EXPECT_FALSE(IsGammaAcyclic(d));
  DatabaseSchema bad = ParseSchema(c, "ab,bc");
  EXPECT_FALSE(JoinDependencyImplies(d, bad));
  Rng rng(419);
  bool witnessed = false;
  for (int rep = 0; rep < 80 && !witnessed; ++rep) {
    Relation model = RandomModelOfJd(d, 4, 2, rng);
    if (!JdHolds(model, bad)) witnessed = true;
  }
  EXPECT_TRUE(witnessed);
}

// Pipeline E — ring query end-to-end with a *small* treefication instead of
// the full universe: fixed treefication finds two size-4 relations for the
// 6-ring; the resulting schema is a valid bag tree for evaluation.
TEST(IntegrationTest, RingSolvedThroughFixedTreefication) {
  DatabaseSchema d = Aring(6);
  TreeficationResult t = FixedTreefication(d, 2, 4);
  ASSERT_TRUE(t.feasible);
  DatabaseSchema bags = d;
  for (const AttrSet& s : t.added) bags.Add(s);
  ASSERT_TRUE(IsTreeSchema(bags));
  // Target two attributes of the first added bag (X must fit in some bag).
  ASSERT_FALSE(t.added.empty());
  std::vector<AttrId> first_bag = t.added[0].ToVector();
  ASSERT_GE(first_bag.size(), 2u);
  AttrSet x{first_bag[0], first_bag[1]};
  auto plan = TreeProjectionProgram(d, x, bags);
  ASSERT_TRUE(plan.has_value());
  Rng rng(421);
  EXPECT_TRUE(SolvesQueryEmpirically(*plan, d, x, 15, rng));
}

// Pipeline F — relevance analysis: on a schema with an irrelevant appendage,
// the CC-pruned plan must cost fewer joins than the full plan and agree with
// it on data.
TEST(IntegrationTest, IrrelevantAppendagePruned) {
  Catalog c;
  // Core query over (ab, bc); appendage chain (cd, de, ef) irrelevant for
  // X = abc... wait, c connects; target X = ab only needs ab,bc? CC decides.
  DatabaseSchema d = ParseSchema(c, "ab,bc,cd,de,ef");
  AttrSet x = ParseAttrSet(c, "ac");
  CanonicalResult cc = CanonicalConnection(d, x);
  EXPECT_LT(cc.schema.NumRelations(), d.NumRelations());
  Program pruned = CCPrunedProgram(d, x);
  Program full = FullJoinProgram(d, x);
  EXPECT_LT(pruned.NumJoins(), full.NumJoins());
  Rng rng(431);
  EXPECT_TRUE(SolvesQueryEmpirically(pruned, d, x, 20, rng));
}

// Pipeline G — big randomized end-to-end: random tree schemas, random
// targets, three strategies, byte-identical answers.
TEST(IntegrationTest, RandomTreeSchemasAllStrategiesAgree) {
  Rng rng(433);
  for (int trial = 0; trial < 15; ++trial) {
    RandomTreeResult r = RandomTreeSchema(3 + static_cast<int>(rng.Below(5)),
                                          3, rng);
    const DatabaseSchema& d = r.schema;
    AttrSet x;
    d.Universe().ForEach([&](AttrId a) {
      if (rng.Chance(0.35)) x.Insert(a);
    });
    Program full = FullJoinProgram(d, x);
    Program pruned = CCPrunedProgram(d, x);
    auto yann = YannakakisProgram(d, x);
    ASSERT_TRUE(yann.has_value());
    for (int rep = 0; rep < 3; ++rep) {
      Relation universal =
          RandomUniversal(d.Universe(), 1 + static_cast<int>(rng.Below(30)),
                          2 + static_cast<int>(rng.Below(3)), rng);
      std::vector<Relation> states = ProjectDatabase(universal, d);
      Relation a = full.Run(states);
      EXPECT_TRUE(a.EqualsAsSet(pruned.Run(states)));
      EXPECT_TRUE(a.EqualsAsSet(yann->Run(states)));
    }
  }
}

}  // namespace
}  // namespace gyo
