#include "gyo/chordal.h"

#include <gtest/gtest.h>

#include "gyo/acyclic.h"
#include "schema/generators.h"
#include "schema/parse.h"
#include "util/rng.h"

namespace gyo {
namespace {

class ChordalTest : public ::testing::Test {
 protected:
  Catalog catalog_;
};

TEST_F(ChordalTest, PathIsChordalAndConformal) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,cd");
  EXPECT_TRUE(PrimalGraphIsChordal(d));
  EXPECT_TRUE(IsConformal(d));
  EXPECT_TRUE(IsTreeSchemaViaChordality(d));
}

TEST_F(ChordalTest, TriangleIsChordalButNotConformal) {
  // The triangle's primal graph is the 3-clique (chordal), but no relation
  // contains all of {a, b, c}: cyclicity comes from conformality failing.
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,ac");
  EXPECT_TRUE(PrimalGraphIsChordal(d));
  EXPECT_FALSE(IsConformal(d));
  EXPECT_FALSE(IsTreeSchemaViaChordality(d));
}

TEST_F(ChordalTest, CoveredTriangleIsConformal) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,ac,abc");
  EXPECT_TRUE(IsTreeSchemaViaChordality(d));
}

TEST_F(ChordalTest, RingIsNotChordal) {
  // An Aring of size >= 4 has a chordless cycle in its primal graph.
  for (int n = 4; n <= 8; ++n) {
    EXPECT_FALSE(PrimalGraphIsChordal(Aring(n))) << "n=" << n;
    EXPECT_FALSE(IsTreeSchemaViaChordality(Aring(n)));
  }
}

TEST_F(ChordalTest, AcliqueIsChordalButNotConformal) {
  // Aclique(n)'s primal graph is the complete graph (chordal); the full
  // clique is in no relation.
  for (int n = 3; n <= 6; ++n) {
    DatabaseSchema d = Aclique(n);
    EXPECT_TRUE(PrimalGraphIsChordal(d)) << "n=" << n;
    EXPECT_FALSE(IsConformal(d)) << "n=" << n;
  }
}

TEST_F(ChordalTest, EmptyAndSingletonSchemas) {
  EXPECT_TRUE(IsTreeSchemaViaChordality(DatabaseSchema{}));
  EXPECT_TRUE(IsTreeSchemaViaChordality(ParseSchema(catalog_, "abc")));
  EXPECT_TRUE(IsTreeSchemaViaChordality(ParseSchema(catalog_, "a,b")));
}

TEST_F(ChordalTest, AgreesWithGyoOnFamilies) {
  for (int n = 2; n <= 10; ++n) {
    EXPECT_TRUE(IsTreeSchemaViaChordality(PathSchema(n))) << n;
    EXPECT_TRUE(IsTreeSchemaViaChordality(StarSchema(n))) << n;
  }
  EXPECT_FALSE(IsTreeSchemaViaChordality(GridSchema(2, 3)));
  EXPECT_FALSE(IsTreeSchemaViaChordality(FattenedRing(5, 2)));
}

TEST_F(ChordalTest, AgreesWithGyoRandomized) {
  Rng rng(521);
  int trees = 0;
  int cyclic = 0;
  for (int trial = 0; trial < 500; ++trial) {
    DatabaseSchema d = RandomSchema(2 + static_cast<int>(rng.Below(8)),
                                    2 + static_cast<int>(rng.Below(9)),
                                    1 + static_cast<int>(rng.Below(5)), rng);
    bool gyo = IsTreeSchema(d);
    EXPECT_EQ(gyo, IsTreeSchemaViaChordality(d)) << "trial " << trial;
    gyo ? ++trees : ++cyclic;
  }
  EXPECT_GE(trees, 50);
  EXPECT_GE(cyclic, 50);
}

TEST_F(ChordalTest, AgreesOnRandomTreeSchemas) {
  Rng rng(523);
  for (int trial = 0; trial < 100; ++trial) {
    DatabaseSchema d =
        RandomTreeSchema(1 + static_cast<int>(rng.Below(15)), 5, rng).schema;
    EXPECT_TRUE(IsTreeSchemaViaChordality(d)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace gyo
