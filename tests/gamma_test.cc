#include "gyo/gamma.h"

#include <gtest/gtest.h>

#include "gyo/acyclic.h"
#include "query/lossless.h"
#include "schema/generators.h"
#include "schema/parse.h"
#include "util/rng.h"

namespace gyo {
namespace {

class GammaTest : public ::testing::Test {
 protected:
  Catalog catalog_;
};

TEST_F(GammaTest, PathIsGammaAcyclic) {
  EXPECT_TRUE(IsGammaAcyclic(ParseSchema(catalog_, "ab,bc,cd")));
}

TEST_F(GammaTest, StarIsGammaAcyclic) {
  EXPECT_TRUE(IsGammaAcyclic(ParseSchema(catalog_, "ab,ac,ad")));
}

TEST_F(GammaTest, TriangleIsNotGammaAcyclic) {
  // The triangle is cyclic, and γ-acyclic schemas are tree schemas.
  EXPECT_FALSE(IsGammaAcyclic(ParseSchema(catalog_, "ab,bc,ac")));
}

TEST_F(GammaTest, TreeButNotGammaAcyclic) {
  // §5.1 example: (abc, ab, bc) is a tree schema but D' = (ab, bc) is
  // connected and not a subtree, so it is NOT γ-acyclic.
  DatabaseSchema d = ParseSchema(catalog_, "abc,ab,bc");
  EXPECT_TRUE(IsTreeSchema(d));
  EXPECT_FALSE(IsGammaAcyclic(d));
}

TEST_F(GammaTest, SubsetChainIsGammaAcyclic) {
  EXPECT_TRUE(IsGammaAcyclic(ParseSchema(catalog_, "abc,ab,a")));
}

TEST_F(GammaTest, DuplicatesDoNotBreakGammaAcyclicity) {
  EXPECT_TRUE(IsGammaAcyclic(ParseSchema(catalog_, "ab,ab")));
}

TEST_F(GammaTest, EmptyAndSingletonAreGammaAcyclic) {
  EXPECT_TRUE(IsGammaAcyclic(DatabaseSchema{}));
  EXPECT_TRUE(IsGammaAcyclic(ParseSchema(catalog_, "abc")));
}

TEST_F(GammaTest, WeakGammaCycleFoundInTriangle) {
  auto cycle = FindWeakGammaCycle(ParseSchema(catalog_, "ab,bc,ac"));
  ASSERT_TRUE(cycle.has_value());
  EXPECT_GE(cycle->relations.size(), 3u);
  EXPECT_EQ(cycle->relations.size(), cycle->attributes.size());
}

TEST_F(GammaTest, WeakGammaCycleAbsentInPath) {
  EXPECT_FALSE(FindWeakGammaCycle(ParseSchema(catalog_, "ab,bc,cd")).has_value());
}

TEST_F(GammaTest, WeakGammaCycleWitnessIsValid) {
  Rng rng(111);
  for (int trial = 0; trial < 150; ++trial) {
    DatabaseSchema d = RandomSchema(3 + static_cast<int>(rng.Below(4)),
                                    3 + static_cast<int>(rng.Below(5)),
                                    2 + static_cast<int>(rng.Below(3)), rng);
    auto cycle = FindWeakGammaCycle(d);
    if (!cycle.has_value()) continue;
    DatabaseSchema dd = Deduplicate(d);
    const auto& rels = cycle->relations;
    const auto& attrs = cycle->attributes;
    ASSERT_GE(rels.size(), 3u);
    ASSERT_EQ(rels.size(), attrs.size());
    const size_t m = rels.size();
    // Distinctness.
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = i + 1; j < m; ++j) {
        EXPECT_NE(rels[i], rels[j]);
        EXPECT_NE(attrs[i], attrs[j]);
      }
    }
    // Incidence: attrs[i] ∈ rels[i] ∩ rels[i+1 mod m].
    for (size_t i = 0; i < m; ++i) {
      EXPECT_TRUE(dd[rels[i]].Contains(attrs[i]));
      EXPECT_TRUE(dd[rels[(i + 1) % m]].Contains(attrs[i]));
    }
    // Locality: every attribute but the last avoids the other cycle
    // relations.
    for (size_t i = 0; i + 1 < m; ++i) {
      for (size_t j = 0; j < m; ++j) {
        if (j == i || j == i + 1) continue;
        EXPECT_FALSE(dd[rels[j]].Contains(attrs[i]))
            << "attr " << attrs[i] << " leaks into cycle relation " << j;
      }
    }
  }
}

TEST_F(GammaTest, Theorem53CharacterizationsAgreeRandomized) {
  // (i) no weak γ-cycle == (ii) pairwise disconnection == (iii) tree schema
  // with all connected sub-schemas subtrees.
  Rng rng(113);
  int gamma_acyclic_seen = 0;
  int gamma_cyclic_seen = 0;
  for (int trial = 0; trial < 250; ++trial) {
    DatabaseSchema d = RandomSchema(2 + static_cast<int>(rng.Below(5)),
                                    2 + static_cast<int>(rng.Below(5)),
                                    1 + static_cast<int>(rng.Below(4)), rng);
    bool by_pairs = IsGammaAcyclic(d);
    bool by_cycles = !FindWeakGammaCycle(d).has_value();
    bool by_subtrees = IsGammaAcyclicBySubtrees(d);
    EXPECT_EQ(by_pairs, by_cycles) << "trial " << trial;
    EXPECT_EQ(by_pairs, by_subtrees) << "trial " << trial;
    if (by_pairs) {
      ++gamma_acyclic_seen;
    } else {
      ++gamma_cyclic_seen;
    }
  }
  EXPECT_GE(gamma_acyclic_seen, 20);
  EXPECT_GE(gamma_cyclic_seen, 20);
}

TEST_F(GammaTest, GammaAcyclicImpliesTreeSchema) {
  Rng rng(117);
  for (int trial = 0; trial < 200; ++trial) {
    DatabaseSchema d = RandomSchema(2 + static_cast<int>(rng.Below(6)),
                                    2 + static_cast<int>(rng.Below(6)),
                                    1 + static_cast<int>(rng.Below(4)), rng);
    if (IsGammaAcyclic(d)) {
      EXPECT_TRUE(IsTreeSchema(d)) << "trial " << trial;
    }
  }
}

TEST_F(GammaTest, Corollary53LosslessForAllConnectedSubschemas) {
  // Cor 5.3 (§5.2): D is γ-acyclic iff ⋈D ⊨ ⋈D' for all connected D' ⊆ D.
  Rng rng(119);
  int checked = 0;
  for (int trial = 0; trial < 150 && checked < 60; ++trial) {
    DatabaseSchema d = RandomSchema(2 + static_cast<int>(rng.Below(4)),
                                    2 + static_cast<int>(rng.Below(5)),
                                    1 + static_cast<int>(rng.Below(4)), rng);
    DatabaseSchema dd = Deduplicate(d);
    const int n = dd.NumRelations();
    if (n > 6) continue;
    ++checked;
    bool all_lossless = true;
    for (uint32_t mask = 1; mask < (uint32_t{1} << n) && all_lossless;
         ++mask) {
      std::vector<int> indices;
      for (int i = 0; i < n; ++i) {
        if ((mask >> i) & 1) indices.push_back(i);
      }
      DatabaseSchema sub = dd.Select(indices);
      if (!sub.IsConnected()) continue;
      if (!JoinDependencyImplies(dd, sub)) all_lossless = false;
    }
    EXPECT_EQ(all_lossless, IsGammaAcyclic(dd)) << "trial " << trial;
  }
  EXPECT_GE(checked, 40);
}

TEST_F(GammaTest, DeduplicateKeepsFirstOccurrences) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,ab,cd,bc");
  DatabaseSchema dd = Deduplicate(d);
  ASSERT_EQ(dd.NumRelations(), 3);
  EXPECT_EQ(dd[0], ParseAttrSet(catalog_, "ab"));
  EXPECT_EQ(dd[1], ParseAttrSet(catalog_, "bc"));
  EXPECT_EQ(dd[2], ParseAttrSet(catalog_, "cd"));
}

}  // namespace
}  // namespace gyo
