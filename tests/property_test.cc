// Randomized cross-validation of the paper's theorems, run as parameterized
// sweeps over seeded generators. Each suite states the theorem it validates.

#include <gtest/gtest.h>

#include "gyo/acyclic.h"
#include "gyo/chordal.h"
#include "gyo/gamma.h"
#include "gyo/gyo.h"
#include "gyo/qual_graph.h"
#include "query/lossless.h"
#include "query/query.h"
#include "rel/solver.h"
#include "rel/universal.h"
#include "schema/generators.h"
#include "tableau/canonical.h"
#include "tableau/containment.h"
#include "tableau/minimize.h"
#include "util/rng.h"

namespace gyo {
namespace {

DatabaseSchema RandomSmallSchema(Rng& rng, int max_rel = 6, int max_uni = 7,
                                 int max_arity = 4) {
  return RandomSchema(2 + static_cast<int>(rng.Below(
                              static_cast<uint64_t>(max_rel - 1))),
                      2 + static_cast<int>(rng.Below(
                              static_cast<uint64_t>(max_uni - 1))),
                      1 + static_cast<int>(rng.Below(
                              static_cast<uint64_t>(max_arity))),
                      rng);
}

AttrSet RandomTarget(const DatabaseSchema& d, Rng& rng, double p = 0.4) {
  AttrSet x;
  d.Universe().ForEach([&](AttrId a) {
    if (rng.Chance(p)) x.Insert(a);
  });
  return x;
}

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

// Corollary 3.1 + Maier's MST + exhaustive qual-tree enumeration agree on
// what a tree schema is.
TEST_P(SeededProperty, AcyclicityTestsAgree) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    DatabaseSchema d = RandomSmallSchema(rng);
    bool by_gyo = IsTreeSchema(d);
    EXPECT_EQ(by_gyo, BuildJoinTree(d).has_value());
    EXPECT_EQ(by_gyo, BuildJoinTreeMaier(d).has_value());
    EXPECT_EQ(by_gyo, IsTreeSchemaViaChordality(d));
    if (d.NumRelations() <= 6) {
      EXPECT_EQ(by_gyo, !EnumerateQualTrees(d).empty());
    }
  }
}

// GyoReduce and GyoReduceFast compute the same (unique) GR(D, X).
TEST_P(SeededProperty, GyoImplementationsAgree) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    DatabaseSchema d = RandomSmallSchema(rng, 8, 9, 4);
    AttrSet x = RandomTarget(d, rng);
    GyoResult a = GyoReduce(d, x);
    GyoResult b = GyoReduceFast(d, x);
    EXPECT_TRUE(a.reduced.EqualsAsMultiset(b.reduced));
    Rng order(GetParam() ^ 0x9e37u);
    GyoResult c = GyoReduceRandomOrder(d, x, order);
    EXPECT_TRUE(a.reduced.EqualsAsMultiset(c.reduced));
  }
}

// Theorem 3.3: CC(D,X) ≤ GR(D,X) always; equality (as schemas) for tree
// schemas and when U(GR) ⊆ X.
TEST_P(SeededProperty, Theorem33) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    DatabaseSchema d = RandomSmallSchema(rng, 5, 6, 3);
    AttrSet x = RandomTarget(d, rng);
    CanonicalResult exact = CanonicalConnectionExact(d, x);
    GyoResult gr = GyoReduce(d, x);
    EXPECT_TRUE(exact.schema.CoveredBy(gr.reduced));
    if (IsTreeSchema(d) || gr.reduced.Universe().IsSubsetOf(x)) {
      EXPECT_TRUE(exact.schema.EqualsAsMultiset(gr.reduced));
    }
  }
}

// Theorem 4.1 / Lemma 3.5: CC equality characterizes weak equivalence, and a
// sub-database solves the query iff it covers the CC — validated empirically
// on UR databases in the solvable direction.
TEST_P(SeededProperty, Theorem41Empirical) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    DatabaseSchema d = RandomSmallSchema(rng, 5, 6, 3);
    AttrSet x = RandomTarget(d, rng);
    CanonicalResult cc = CanonicalConnection(d, x);
    // The CC itself is a solving sub-database.
    EXPECT_TRUE(SolvableByJoinProject(d, x, cc.schema));
    EXPECT_TRUE(WeaklyEquivalent(d, cc.schema, x));
    // Empirically: evaluating (CC, X) matches (D, X) on UR databases.
    for (int rep = 0; rep < 4; ++rep) {
      Relation universal =
          RandomUniversal(d.Universe(), 1 + static_cast<int>(rng.Below(20)),
                          2 + static_cast<int>(rng.Below(3)), rng);
      Relation full = EvaluateJoinQuery(d, x, ProjectDatabase(universal, d));
      Relation pruned = EvaluateJoinQuery(
          cc.schema, x, ProjectDatabase(universal, cc.schema));
      EXPECT_TRUE(full.EqualsAsSet(pruned));
    }
  }
}

// Theorem 5.1 empirically: the CC-based lossless-join decision agrees with
// data. Positive answers must hold on every random model of ⋈D.
TEST_P(SeededProperty, Theorem51Empirical) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 12; ++trial) {
    DatabaseSchema d = RandomSmallSchema(rng, 5, 5, 3);
    std::vector<int> indices;
    for (int i = 0; i < d.NumRelations(); ++i) {
      if (rng.Chance(0.7)) indices.push_back(i);
    }
    if (indices.empty()) continue;
    DatabaseSchema dprime = d.Select(indices);
    if (JoinDependencyImplies(d, dprime)) {
      for (int rep = 0; rep < 4; ++rep) {
        Relation model =
            RandomModelOfJd(d, 2 + static_cast<int>(rng.Below(10)),
                            2 + static_cast<int>(rng.Below(3)), rng);
        EXPECT_TRUE(JdHolds(model, dprime));
      }
    }
  }
}

// Corollary 5.2: on tree schemas, lossless ⇔ subtree, cross-checked three
// ways (CC decision, GYO subtree test, exhaustive qual-tree enumeration).
TEST_P(SeededProperty, Corollary52ThreeWays) {
  Rng rng(GetParam());
  int checked = 0;
  for (int trial = 0; trial < 60 && checked < 12; ++trial) {
    DatabaseSchema d = RandomSmallSchema(rng, 5, 6, 3);
    if (!IsTreeSchema(d)) continue;
    ++checked;
    const int n = d.NumRelations();
    for (uint32_t mask = 1; mask < (uint32_t{1} << n); ++mask) {
      std::vector<int> indices;
      for (int i = 0; i < n; ++i) {
        if ((mask >> i) & 1) indices.push_back(i);
      }
      bool by_cc = JoinDependencyImplies(d, d.Select(indices));
      bool by_subtree = IsSubtree(d, indices);
      EXPECT_EQ(by_cc, by_subtree) << "mask " << mask;
    }
  }
}

// Theorem 5.3: the three γ-acyclicity characterizations coincide.
TEST_P(SeededProperty, Theorem53) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    DatabaseSchema d = RandomSmallSchema(rng, 5, 5, 3);
    bool ii = IsGammaAcyclic(d);
    EXPECT_EQ(ii, !FindWeakGammaCycle(d).has_value());
    EXPECT_EQ(ii, IsGammaAcyclicBySubtrees(d));
  }
}

// Minimization invariants: equivalent, no larger, idempotent, isomorphic
// across presentation orders (Lemma 3.4).
TEST_P(SeededProperty, MinimizationInvariants) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 15; ++trial) {
    DatabaseSchema d = RandomSmallSchema(rng, 5, 6, 3);
    AttrSet x = RandomTarget(d, rng);
    Tableau t = Tableau::Standard(d, x);
    Tableau m = Minimize(t);
    EXPECT_LE(m.NumRows(), t.NumRows());
    EXPECT_TRUE(AreEquivalent(t, m));
    EXPECT_EQ(Minimize(m).NumRows(), m.NumRows());
    // Reverse the row order; the core must be isomorphic.
    std::vector<int> rev;
    for (int r = t.NumRows() - 1; r >= 0; --r) rev.push_back(r);
    Tableau m2 = Minimize(t.SelectRows(rev));
    EXPECT_EQ(m.NumRows(), m2.NumRows());
    EXPECT_TRUE(AreIsomorphic(m, m2));
  }
}

// The three §4/§6 evaluation strategies give identical answers on UR
// databases (full join, CC-pruned, Yannakakis where applicable).
TEST_P(SeededProperty, EvaluationStrategiesAgree) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    DatabaseSchema d = RandomSmallSchema(rng, 5, 6, 3);
    AttrSet x = RandomTarget(d, rng, 0.5);
    Program full = FullJoinProgram(d, x);
    Program pruned = CCPrunedProgram(d, x);
    auto yann = YannakakisProgram(d, x);
    for (int rep = 0; rep < 4; ++rep) {
      Relation universal =
          RandomUniversal(d.Universe(), 1 + static_cast<int>(rng.Below(25)),
                          2 + static_cast<int>(rng.Below(3)), rng);
      std::vector<Relation> states = ProjectDatabase(universal, d);
      Relation a = full.Run(states);
      Relation b = pruned.Run(states);
      EXPECT_TRUE(a.EqualsAsSet(b));
      if (yann.has_value()) {
        Relation c = yann->Run(states);
        EXPECT_TRUE(a.EqualsAsSet(c));
      }
    }
  }
}

// Corollary 3.2 via Theorem 3.2(iii): U(GR(D)) is the unique least treefier.
TEST_P(SeededProperty, Corollary32) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    DatabaseSchema d = RandomSmallSchema(rng, 5, 6, 3);
    AttrSet u_gr = TreefyingRelation(d);
    DatabaseSchema plus = d;
    plus.Add(u_gr);
    EXPECT_TRUE(IsTreeSchema(plus));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace gyo
