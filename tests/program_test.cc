#include "rel/program.h"

#include <gtest/gtest.h>

#include "rel/ops.h"
#include "rel/universal.h"
#include "schema/parse.h"

namespace gyo {
namespace {

class ProgramTest : public ::testing::Test {
 protected:
  Catalog catalog_;

  // Builds a relation whose row values are given in the order the attributes
  // appear in `schema` (not in attribute-id order, which depends on catalog
  // interning history).
  Relation Make(const char* schema, std::vector<std::vector<Value>> rows) {
    std::vector<AttrId> spec_order;
    for (const char* p = schema; *p != '\0'; ++p) {
      spec_order.push_back(catalog_.Intern(std::string_view(p, 1)));
    }
    Relation r(ParseAttrSet(catalog_, schema));
    for (auto& row : rows) {
      std::vector<Value> aligned(row.size());
      for (size_t k = 0; k < row.size(); ++k) {
        aligned[static_cast<size_t>(r.ColIndex(spec_order[k]))] = row[k];
      }
      r.AddRow(std::move(aligned));
    }
    r.Canonicalize();
    return r;
  }
};

TEST_F(ProgramTest, StatementIdsAreSequential) {
  Program p(2);
  EXPECT_EQ(p.AddJoin(0, 1), 2);
  EXPECT_EQ(p.AddProject(2, AttrSet{0}), 3);
  EXPECT_EQ(p.AddSemijoin(0, 3), 4);
  EXPECT_EQ(p.NumRelations(), 5);
  EXPECT_EQ(p.NumJoins(), 1);
  EXPECT_EQ(p.NumSemijoins(), 1);
  EXPECT_EQ(p.NumProjects(), 1);
}

TEST_F(ProgramTest, DerivedSchemaFollowsStatementKinds) {
  DatabaseSchema base = ParseSchema(catalog_, "ab,bc");
  Program p(2);
  int j = p.AddJoin(0, 1);
  int s = p.AddSemijoin(0, 1);
  int pr = p.AddProject(j, ParseAttrSet(catalog_, "ac"));
  DatabaseSchema derived = p.DerivedSchema(base);
  EXPECT_EQ(derived[j], ParseAttrSet(catalog_, "abc"));
  EXPECT_EQ(derived[s], ParseAttrSet(catalog_, "ab"));
  EXPECT_EQ(derived[pr], ParseAttrSet(catalog_, "ac"));
}

TEST_F(ProgramTest, ExecuteJoinProject) {
  Program p(2);
  int j = p.AddJoin(0, 1);
  p.AddProject(j, ParseAttrSet(catalog_, "ac"));
  Relation r = Make("ab", {{1, 2}, {5, 6}});
  Relation s = Make("bc", {{2, 3}});
  Relation out = p.Run({r, s});
  EXPECT_EQ(out.Schema(), ParseAttrSet(catalog_, "ac"));
  EXPECT_EQ(out.NumRows(), 1);
  EXPECT_EQ(out.Row(0), (std::vector<Value>{1, 3}));
}

TEST_F(ProgramTest, ExecuteSemijoin) {
  Program p(2);
  p.AddSemijoin(0, 1);
  Relation r = Make("ab", {{1, 2}, {5, 6}});
  Relation s = Make("bc", {{2, 3}});
  Relation out = p.Run({r, s});
  EXPECT_EQ(out.Schema(), ParseAttrSet(catalog_, "ab"));
  EXPECT_EQ(out.NumRows(), 1);
}

TEST_F(ProgramTest, ExecuteReturnsAllStates) {
  Program p(1);
  p.AddProject(0, ParseAttrSet(catalog_, "a"));
  Relation r = Make("ab", {{1, 2}});
  auto states = p.Execute({r});
  EXPECT_EQ(states.size(), 2u);
}

TEST_F(ProgramTest, StatementsCanReferenceCreatedRelations) {
  Program p(2);
  int j = p.AddJoin(0, 1);
  int jj = p.AddJoin(j, 0);  // rejoin with a base relation
  Relation r = Make("ab", {{1, 2}});
  Relation s = Make("bc", {{2, 3}});
  auto states = p.Execute({r, s});
  EXPECT_TRUE(states[static_cast<size_t>(jj)].EqualsAsSet(
      states[static_cast<size_t>(j)]));
}

TEST_F(ProgramTest, ExecuteWithStatsCountsIntermediates) {
  Program p(2);
  int j = p.AddJoin(0, 1);
  p.AddProject(j, ParseAttrSet(catalog_, "a"));
  Relation r = Make("ab", {{1, 2}, {3, 2}});
  Relation s = Make("bc", {{2, 7}, {2, 8}});
  Program::Stats stats;
  auto states = p.ExecuteWithStats({r, s}, &stats);
  ASSERT_EQ(states.size(), 4u);
  EXPECT_EQ(stats.max_intermediate_rows, 4);  // the join: 2 x 2 on b=2
  EXPECT_EQ(stats.result_rows, 2);            // projected a-values {1, 3}
  EXPECT_EQ(stats.total_rows_produced, 4 + 2);
}

TEST_F(ProgramTest, ExecuteWithStatsNullptrOk) {
  Program p(1);
  p.AddProject(0, ParseAttrSet(catalog_, "a"));
  Relation r = Make("ab", {{1, 2}});
  EXPECT_EQ(p.ExecuteWithStats({r}, nullptr).size(), 2u);
}

TEST_F(ProgramTest, FormatListsStatements) {
  Program p(2);
  int j = p.AddJoin(0, 1);
  p.AddProject(j, ParseAttrSet(catalog_, "a"));
  std::string s = p.Format(catalog_);
  EXPECT_NE(s.find("R2 := R0 join R1"), std::string::npos);
  EXPECT_NE(s.find("project"), std::string::npos);
}

TEST_F(ProgramTest, SolvesQueryEmpiricallyAcceptsCorrectProgram) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc");
  AttrSet x = ParseAttrSet(catalog_, "ac");
  Program p(2);
  int j = p.AddJoin(0, 1);
  p.AddProject(j, x);
  Rng rng(271);
  EXPECT_TRUE(SolvesQueryEmpirically(p, d, x, 20, rng));
}

TEST_F(ProgramTest, SolvesQueryEmpiricallyRejectsWrongProgram) {
  // Joining only ab and bc does not solve (D, abc) on the triangle: the ca
  // constraint is dropped, so spurious abc tuples appear on some UR
  // database. (Note that weaker targets like X = a WOULD be solvable from a
  // single relation under the UR assumption.)
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,ca");
  AttrSet x = ParseAttrSet(catalog_, "abc");
  Program p(3);
  int j = p.AddJoin(0, 1);
  p.AddProject(j, x);
  Rng rng(277);
  EXPECT_FALSE(SolvesQueryEmpirically(p, d, x, 60, rng));
}

}  // namespace
}  // namespace gyo
