#include "schema/catalog.h"

#include <gtest/gtest.h>

namespace gyo {
namespace {

TEST(CatalogTest, InternAssignsDenseIds) {
  Catalog c;
  EXPECT_EQ(c.Intern("a"), 0);
  EXPECT_EQ(c.Intern("b"), 1);
  EXPECT_EQ(c.Intern("a"), 0);  // idempotent
  EXPECT_EQ(c.size(), 2);
}

TEST(CatalogTest, FindAndName) {
  Catalog c;
  AttrId a = c.Intern("part");
  EXPECT_EQ(c.Find("part"), a);
  EXPECT_EQ(c.Find("supplier"), std::nullopt);
  EXPECT_EQ(c.Name(a), "part");
}

TEST(CatalogTest, InternAll) {
  Catalog c;
  AttrSet s = c.InternAll("abc");
  EXPECT_EQ(s.Size(), 3);
  EXPECT_TRUE(s.Contains(*c.Find("a")));
  EXPECT_TRUE(s.Contains(*c.Find("b")));
  EXPECT_TRUE(s.Contains(*c.Find("c")));
}

TEST(CatalogTest, InternAllDeduplicates) {
  Catalog c;
  AttrSet s = c.InternAll("aab");
  EXPECT_EQ(s.Size(), 2);
}

TEST(CatalogTest, FormatSingleLetterConcatenates) {
  Catalog c;
  AttrSet s = c.InternAll("cab");
  // Rendering is in attribute-id order (intern order here: c, a, b).
  EXPECT_EQ(c.Format(s), "cab");
}

TEST(CatalogTest, FormatMultiCharUsesCommas) {
  Catalog c;
  AttrSet s;
  s.Insert(c.Intern("part"));
  s.Insert(c.Intern("city"));
  EXPECT_EQ(c.Format(s), "part,city");
}

TEST(CatalogTest, FormatEmptySet) {
  Catalog c;
  EXPECT_EQ(c.Format(AttrSet()), "{}");
}

}  // namespace
}  // namespace gyo
