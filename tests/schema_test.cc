#include "schema/schema.h"

#include <gtest/gtest.h>

#include "schema/parse.h"

namespace gyo {
namespace {

class SchemaTest : public ::testing::Test {
 protected:
  Catalog catalog_;
};

TEST_F(SchemaTest, UniverseIsUnionOfRelations) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,cd");
  EXPECT_EQ(d.Universe(), ParseAttrSet(catalog_, "abcd"));
}

TEST_F(SchemaTest, EmptySchema) {
  DatabaseSchema d;
  EXPECT_TRUE(d.Empty());
  EXPECT_TRUE(d.Universe().Empty());
  EXPECT_TRUE(d.IsReduced());
  EXPECT_TRUE(d.IsConnected());
}

TEST_F(SchemaTest, IsReducedDetectsSubsets) {
  EXPECT_FALSE(ParseSchema(catalog_, "abc,ab").IsReduced());
  EXPECT_TRUE(ParseSchema(catalog_, "ab,bc").IsReduced());
}

TEST_F(SchemaTest, IsReducedDetectsDuplicates) {
  EXPECT_FALSE(ParseSchema(catalog_, "ab,ab").IsReduced());
}

TEST_F(SchemaTest, ReductionRemovesSubsetsAndDuplicates) {
  DatabaseSchema d = ParseSchema(catalog_, "abc,ab,bc,abc,c");
  DatabaseSchema r = d.Reduction();
  EXPECT_EQ(r.NumRelations(), 1);
  EXPECT_EQ(r[0], ParseAttrSet(catalog_, "abc"));
  EXPECT_TRUE(r.IsReduced());
}

TEST_F(SchemaTest, ReductionKeepsIncomparableRelations) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,ca");
  EXPECT_TRUE(d.Reduction().EqualsAsMultiset(d));
}

TEST_F(SchemaTest, ReductionIsIdempotent) {
  DatabaseSchema d = ParseSchema(catalog_, "abc,ab,ab,bcd,d");
  DatabaseSchema once = d.Reduction();
  EXPECT_TRUE(once.Reduction().EqualsAsMultiset(once));
}

TEST_F(SchemaTest, CoveredByIsThePaperOrder) {
  DatabaseSchema d = ParseSchema(catalog_, "abc,cd");
  DatabaseSchema smaller = ParseSchema(catalog_, "ab,c,cd");
  EXPECT_TRUE(smaller.CoveredBy(d));   // smaller ≤ d
  EXPECT_FALSE(d.CoveredBy(smaller));  // abc fits in no relation of smaller
  EXPECT_TRUE(d.CoveredBy(d));
}

TEST_F(SchemaTest, ContainsRelation) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc");
  EXPECT_TRUE(d.ContainsRelation(ParseAttrSet(catalog_, "ab")));
  EXPECT_FALSE(d.ContainsRelation(ParseAttrSet(catalog_, "ac")));
}

TEST_F(SchemaTest, MultisetOperations) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,ab,bc");
  DatabaseSchema one = ParseSchema(catalog_, "ab,bc");
  EXPECT_TRUE(one.IsSubMultisetOf(d));
  EXPECT_FALSE(d.IsSubMultisetOf(one));  // multiplicity respected
  DatabaseSchema reordered = ParseSchema(catalog_, "bc,ab,ab");
  EXPECT_TRUE(d.EqualsAsMultiset(reordered));
  EXPECT_FALSE(d.EqualsAsMultiset(one));
}

TEST_F(SchemaTest, DeleteAttributesKeepsIndices) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,cd");
  DatabaseSchema cut = d.DeleteAttributes(ParseAttrSet(catalog_, "bc"));
  ASSERT_EQ(cut.NumRelations(), 3);
  EXPECT_EQ(cut[0], ParseAttrSet(catalog_, "a"));
  EXPECT_TRUE(cut[1].Empty());
  EXPECT_EQ(cut[2], ParseAttrSet(catalog_, "d"));
}

TEST_F(SchemaTest, SelectPreservesOrder) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,cd");
  DatabaseSchema s = d.Select({2, 0});
  ASSERT_EQ(s.NumRelations(), 2);
  EXPECT_EQ(s[0], ParseAttrSet(catalog_, "cd"));
  EXPECT_EQ(s[1], ParseAttrSet(catalog_, "ab"));
}

TEST_F(SchemaTest, ConnectedComponents) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,de,ef,gh");
  auto comps = d.ConnectedComponents();
  ASSERT_EQ(comps.size(), 3u);
  EXPECT_EQ(comps[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(comps[1], (std::vector<int>{2, 3}));
  EXPECT_EQ(comps[2], (std::vector<int>{4}));
  EXPECT_FALSE(d.IsConnected());
}

TEST_F(SchemaTest, ConnectedSingleRelation) {
  DatabaseSchema d = ParseSchema(catalog_, "ab");
  EXPECT_TRUE(d.IsConnected());
}

TEST_F(SchemaTest, ConnectivityIsTransitive) {
  // ab and cd share nothing directly but connect through bc.
  DatabaseSchema d = ParseSchema(catalog_, "ab,cd,bc");
  EXPECT_TRUE(d.IsConnected());
}

TEST_F(SchemaTest, SortCanonicalIsDeterministic) {
  DatabaseSchema a = ParseSchema(catalog_, "cd,ab,bc");
  DatabaseSchema b = ParseSchema(catalog_, "bc,cd,ab");
  a.SortCanonical();
  b.SortCanonical();
  EXPECT_EQ(a, b);
}

TEST_F(SchemaTest, FormatUsesPaperNotation) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc");
  EXPECT_EQ(d.Format(catalog_), "(ab, bc)");
}

}  // namespace
}  // namespace gyo
