#include "gyo/gyo.h"

#include <gtest/gtest.h>

#include "gyo/acyclic.h"
#include "schema/generators.h"
#include "schema/parse.h"
#include "util/rng.h"

namespace gyo {
namespace {

class GyoTest : public ::testing::Test {
 protected:
  Catalog catalog_;
};

TEST_F(GyoTest, TreeSchemaReducesToEmpty) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,cd");
  GyoResult r = GyoReduce(d);
  EXPECT_TRUE(r.FullyReduced());
  EXPECT_LE(r.reduced.NumRelations(), 1);
}

TEST_F(GyoTest, TriangleDoesNotReduce) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,ac");
  GyoResult r = GyoReduce(d);
  EXPECT_FALSE(r.FullyReduced());
  // Nothing is deletable in a triangle: GR(D) = D.
  EXPECT_TRUE(r.reduced.EqualsAsMultiset(d));
  EXPECT_TRUE(r.trace.empty());
}

TEST_F(GyoTest, SacredAttributesBlockDeletion) {
  // With a and d sacred nothing is deletable on the path: b and c occur
  // twice each, so GR(D, ad) = D — the whole chain is needed to connect a
  // to d.
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,cd");
  GyoResult r = GyoReduce(d, ParseAttrSet(catalog_, "ad"));
  EXPECT_TRUE(r.reduced.EqualsAsMultiset(d));
  EXPECT_TRUE(r.trace.empty());
  // With only a sacred, the chain collapses from the d-end down to (a).
  GyoResult r2 = GyoReduce(d, ParseAttrSet(catalog_, "a"));
  ASSERT_EQ(r2.reduced.NumRelations(), 1);
  EXPECT_EQ(r2.reduced[0], ParseAttrSet(catalog_, "a"));
  for (const GyoStep& step : r2.trace) {
    if (step.kind == GyoStep::Kind::kAttributeDeletion) {
      EXPECT_NE(step.attribute, *catalog_.Find("a"));
    }
  }
}

TEST_F(GyoTest, GrWithUniverseSacredOnlyEliminatesSubsets) {
  DatabaseSchema d = ParseSchema(catalog_, "abc,ab,bc,d");
  GyoResult r = GyoReduce(d, d.Universe());
  // No attribute may be deleted; only ab, bc vanish as subsets of abc.
  EXPECT_TRUE(
      r.reduced.EqualsAsMultiset(ParseSchema(catalog_, "abc,d")));
  for (const GyoStep& step : r.trace) {
    EXPECT_EQ(step.kind, GyoStep::Kind::kSubsetElimination);
  }
}

TEST_F(GyoTest, ReductionIsReduced) {
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    DatabaseSchema d = RandomSchema(8, 8, 4, rng);
    GyoResult r = GyoReduce(d);
    EXPECT_TRUE(r.reduced.IsReduced()) << "trial " << trial;
  }
}

TEST_F(GyoTest, SurvivorsParallelReduced) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,ac,de");
  GyoResult r = GyoReduce(d);
  ASSERT_EQ(r.survivors.size(),
            static_cast<size_t>(r.reduced.NumRelations()));
  // The triangle survives; its survivor indices point at the originals.
  for (size_t i = 0; i < r.survivors.size(); ++i) {
    EXPECT_TRUE(r.reduced[static_cast<int>(i)].IsSubsetOf(
        d[r.survivors[i]]));
  }
}

TEST_F(GyoTest, TraceStepsAreWellFormed) {
  DatabaseSchema d = ParseSchema(catalog_, "abc,ab,bc,cd");
  GyoResult r = GyoReduce(d);
  for (const GyoStep& s : r.trace) {
    EXPECT_GE(s.relation, 0);
    EXPECT_LT(s.relation, d.NumRelations());
    if (s.kind == GyoStep::Kind::kAttributeDeletion) {
      EXPECT_GE(s.attribute, 0);
    } else {
      EXPECT_GE(s.absorber, 0);
      EXPECT_NE(s.absorber, s.relation);
    }
  }
}

TEST_F(GyoTest, FastMatchesNaiveOnFixtures) {
  for (const char* spec :
       {"ab,bc,cd", "ab,bc,ac", "abc,cde,ace,afe", "ab,ab,ab", "a,b,c",
        "abcd,bce,ef,fa", "ab,bc,cd,da,ac"}) {
    Catalog c;
    DatabaseSchema d = ParseSchema(c, spec);
    GyoResult naive = GyoReduce(d);
    GyoResult fast = GyoReduceFast(d);
    EXPECT_TRUE(naive.reduced.EqualsAsMultiset(fast.reduced)) << spec;
    EXPECT_EQ(naive.survivors, fast.survivors) << spec;
  }
}

TEST_F(GyoTest, FastMatchesNaiveRandomized) {
  Rng rng(17);
  for (int trial = 0; trial < 300; ++trial) {
    DatabaseSchema d = RandomSchema(2 + static_cast<int>(rng.Below(10)),
                                    2 + static_cast<int>(rng.Below(10)),
                                    1 + static_cast<int>(rng.Below(5)), rng);
    GyoResult naive = GyoReduce(d);
    GyoResult fast = GyoReduceFast(d);
    EXPECT_TRUE(naive.reduced.EqualsAsMultiset(fast.reduced))
        << "trial " << trial;
  }
}

TEST_F(GyoTest, MaierUllmanUniquenessUnderRandomOrders) {
  // GR(D, X) must not depend on the order operations are applied in.
  Rng gen(23);
  for (int trial = 0; trial < 60; ++trial) {
    DatabaseSchema d = RandomSchema(2 + static_cast<int>(gen.Below(7)),
                                    2 + static_cast<int>(gen.Below(8)),
                                    1 + static_cast<int>(gen.Below(4)), gen);
    AttrSet x;
    d.Universe().ForEach([&](AttrId a) {
      if (gen.Chance(0.3)) x.Insert(a);
    });
    GyoResult reference = GyoReduce(d, x);
    for (uint64_t seed = 0; seed < 5; ++seed) {
      Rng order_rng(seed * 1000 + static_cast<uint64_t>(trial));
      GyoResult random = GyoReduceRandomOrder(d, x, order_rng);
      EXPECT_TRUE(reference.reduced.EqualsAsMultiset(random.reduced))
          << "trial " << trial << " seed " << seed;
    }
  }
}

TEST_F(GyoTest, OperationsPreserveSchemaType) {
  // Paper §3.3: applying GYO operations never flips tree ↔ cyclic. We verify
  // on prefixes of the trace by replaying operations.
  Rng rng(31);
  for (int trial = 0; trial < 60; ++trial) {
    DatabaseSchema d = RandomSchema(3 + static_cast<int>(rng.Below(5)),
                                    3 + static_cast<int>(rng.Below(6)),
                                    1 + static_cast<int>(rng.Below(4)), rng);
    bool tree = IsTreeSchema(d);
    GyoResult r = GyoReduce(d);
    // Replay the trace one step at a time.
    std::vector<RelationSchema> rels = d.Relations();
    std::vector<bool> alive(rels.size(), true);
    for (const GyoStep& s : r.trace) {
      if (s.kind == GyoStep::Kind::kAttributeDeletion) {
        rels[static_cast<size_t>(s.relation)].Erase(s.attribute);
      } else {
        alive[static_cast<size_t>(s.relation)] = false;
      }
      DatabaseSchema current;
      for (size_t i = 0; i < rels.size(); ++i) {
        if (alive[i]) current.Add(rels[i]);
      }
      EXPECT_EQ(IsTreeSchema(current), tree) << "trial " << trial;
    }
  }
}

TEST_F(GyoTest, DuplicateRelationsCollapse) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,ab,ab");
  GyoResult r = GyoReduce(d, d.Universe());
  EXPECT_EQ(r.reduced.NumRelations(), 1);
  EXPECT_EQ(r.survivors, (std::vector<int>{0}));
}

TEST_F(GyoTest, SingleRelationReducesToEmpty) {
  DatabaseSchema d = ParseSchema(catalog_, "abc");
  GyoResult r = GyoReduce(d);
  EXPECT_TRUE(r.FullyReduced());
}

TEST_F(GyoTest, EmptySchemaIsFullyReduced) {
  DatabaseSchema d;
  EXPECT_TRUE(GyoReduce(d).FullyReduced());
}

TEST_F(GyoTest, AringIsItsOwnReduction) {
  DatabaseSchema d = Aring(6);
  GyoResult r = GyoReduce(d);
  EXPECT_TRUE(r.reduced.EqualsAsMultiset(d));
}

TEST_F(GyoTest, FattenedRingReducesToRingCore) {
  // Extra attributes are isolated and get deleted; the ring edges remain.
  DatabaseSchema d = FattenedRing(5, 2);
  GyoResult r = GyoReduce(d);
  EXPECT_TRUE(r.reduced.EqualsAsMultiset(Aring(5)));
}

}  // namespace
}  // namespace gyo
