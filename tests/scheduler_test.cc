// TaskScheduler / TaskGraph: dependency ordering, fan-in/fan-out DAGs, the
// morsel-style ParallelFor, and a many-tiny-tasks stress run. These are the
// concurrency-sensitive tests the CI ThreadSanitizer job focuses on.

#include "exec/task_scheduler.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace gyo {
namespace exec {
namespace {

TEST(TaskSchedulerTest, EmptyGraphRuns) {
  TaskScheduler pool(4);
  TaskGraph g;
  pool.RunGraph(g);  // must not hang
  EXPECT_EQ(g.NumTasks(), 0);
  EXPECT_EQ(g.CriticalPathLength(), 0);
}

TEST(TaskSchedulerTest, SingleThreadRunsInline) {
  TaskScheduler pool(1);
  EXPECT_EQ(pool.threads(), 1);
  TaskGraph g;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    g.AddTask([&order, i] { order.push_back(i); });
  }
  pool.RunGraph(g);
  // Independent tasks seeded in id order drain FIFO on one thread.
  std::vector<int> want(8);
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(order, want);
}

TEST(TaskSchedulerTest, DependenciesAreRespected) {
  for (int threads : {1, 2, 4, 8}) {
    TaskScheduler pool(threads);
    TaskGraph g;
    constexpr int kTasks = 200;
    std::vector<std::atomic<bool>> done(kTasks);
    std::vector<std::vector<int>> deps(kTasks);
    std::atomic<bool> violation{false};
    Rng rng(7);
    for (int i = 0; i < kTasks; ++i) {
      // Random fan-in from up to 3 earlier tasks.
      for (int k = 0; k < 3 && i > 0; ++k) {
        if (rng.Chance(0.5)) {
          deps[static_cast<size_t>(i)].push_back(
              static_cast<int>(rng.Below(static_cast<uint64_t>(i))));
        }
      }
      g.AddTask([&, i] {
        for (int d : deps[static_cast<size_t>(i)]) {
          if (!done[static_cast<size_t>(d)].load(std::memory_order_acquire)) {
            violation.store(true, std::memory_order_relaxed);
          }
        }
        done[static_cast<size_t>(i)].store(true, std::memory_order_release);
      });
    }
    for (int i = 0; i < kTasks; ++i) {
      for (int d : deps[static_cast<size_t>(i)]) g.AddDependency(i, d);
    }
    pool.RunGraph(g);
    EXPECT_FALSE(violation.load()) << "threads=" << threads;
    for (int i = 0; i < kTasks; ++i) {
      EXPECT_TRUE(done[static_cast<size_t>(i)].load());
    }
  }
}

TEST(TaskSchedulerTest, FanOutFanIn) {
  // Diamond: 1 source -> 500 middle -> 1 sink, a scheduler-bound shape.
  for (int threads : {1, 4}) {
    TaskScheduler pool(threads);
    TaskGraph g;
    std::atomic<int> middles_done{0};
    std::atomic<bool> source_done{false};
    std::atomic<int> sink_saw{-1};
    int source = g.AddTask([&] { source_done.store(true); });
    std::vector<int> middle;
    constexpr int kMiddle = 500;
    for (int i = 0; i < kMiddle; ++i) {
      middle.push_back(g.AddTask([&] {
        EXPECT_TRUE(source_done.load());
        middles_done.fetch_add(1, std::memory_order_acq_rel);
      }));
    }
    int sink = g.AddTask([&] { sink_saw.store(middles_done.load()); });
    for (int m : middle) {
      g.AddDependency(m, source);
      g.AddDependency(sink, m);
    }
    EXPECT_EQ(g.CriticalPathLength(), 3);
    pool.RunGraph(g);
    EXPECT_EQ(sink_saw.load(), kMiddle) << "threads=" << threads;
  }
}

TEST(TaskSchedulerTest, ManyTinyTasksStress) {
  // Scheduler-overhead stress: thousands of near-empty tasks in a layered
  // DAG (each layer depends on a few tasks of the previous one).
  for (int threads : {2, 8}) {
    TaskScheduler pool(threads);
    TaskGraph g;
    constexpr int kLayers = 50;
    constexpr int kWidth = 60;
    std::atomic<int> ran{0};
    std::vector<int> prev_layer;
    Rng rng(13);
    for (int layer = 0; layer < kLayers; ++layer) {
      std::vector<int> this_layer;
      for (int i = 0; i < kWidth; ++i) {
        this_layer.push_back(
            g.AddTask([&ran] { ran.fetch_add(1, std::memory_order_relaxed); }));
      }
      if (!prev_layer.empty()) {
        for (int t : this_layer) {
          g.AddDependency(
              t, prev_layer[rng.Below(static_cast<uint64_t>(kWidth))]);
          g.AddDependency(
              t, prev_layer[rng.Below(static_cast<uint64_t>(kWidth))]);
        }
      }
      prev_layer = std::move(this_layer);
    }
    pool.RunGraph(g);
    EXPECT_EQ(ran.load(), kLayers * kWidth) << "threads=" << threads;
    EXPECT_EQ(g.CriticalPathLength(), kLayers);
  }
}

TEST(TaskSchedulerTest, DuplicateDependenciesCountOnce) {
  TaskScheduler pool(2);
  TaskGraph g;
  std::atomic<int> ran{0};
  int a = g.AddTask([&] { ran.fetch_add(1); });
  int b = g.AddTask([&] { ran.fetch_add(1); });
  g.AddDependency(b, a);
  g.AddDependency(b, a);  // duplicate edge must not deadlock b
  pool.RunGraph(g);
  EXPECT_EQ(ran.load(), 2);
}

TEST(TaskSchedulerTest, ParallelForCoversEveryChunkExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    TaskScheduler pool(threads);
    constexpr int64_t kChunks = 1000;
    std::vector<std::atomic<int>> hits(kChunks);
    pool.ParallelFor(kChunks, [&](int64_t c) {
      hits[static_cast<size_t>(c)].fetch_add(1, std::memory_order_relaxed);
    });
    for (int64_t c = 0; c < kChunks; ++c) {
      ASSERT_EQ(hits[static_cast<size_t>(c)].load(), 1)
          << "chunk " << c << " threads " << threads;
    }
  }
}

TEST(TaskSchedulerTest, ParallelForInsideGraphTask) {
  // The morsel pattern: operator tasks in a DAG fan their inner loop out on
  // the same pool. Two independent tasks each run a ParallelFor.
  for (int threads : {1, 4}) {
    TaskScheduler pool(threads);
    TaskGraph g;
    std::atomic<int64_t> sum{0};
    for (int t = 0; t < 2; ++t) {
      g.AddTask([&] {
        pool.ParallelFor(64, [&](int64_t c) {
          sum.fetch_add(c, std::memory_order_relaxed);
        });
      });
    }
    pool.RunGraph(g);
    EXPECT_EQ(sum.load(), 2 * (64 * 63 / 2)) << "threads=" << threads;
  }
}

TEST(TaskSchedulerTest, ParallelForZeroAndOneChunk) {
  TaskScheduler pool(4);
  int ran = 0;
  pool.ParallelFor(0, [&](int64_t) { ++ran; });
  EXPECT_EQ(ran, 0);
  pool.ParallelFor(1, [&](int64_t c) {
    EXPECT_EQ(c, 0);
    ++ran;
  });
  EXPECT_EQ(ran, 1);
}

TEST(TaskSchedulerTest, HigherPriorityTasksDispatchFirst) {
  // One thread, all tasks independent: the drain order is priority buckets
  // (highest first), FIFO within a bucket — the plan-level scheduling
  // contract (critical-path statements run before off-path ones).
  TaskScheduler pool(1);
  TaskGraph g;
  std::vector<int> order;
  g.AddTask([&order] { order.push_back(0); }, 0);
  g.AddTask([&order] { order.push_back(1); }, 5);
  g.AddTask([&order] { order.push_back(2); }, 1);
  g.AddTask([&order] { order.push_back(3); }, 5);
  pool.RunGraph(g);
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2, 0}));
}

TEST(TaskSchedulerTest, PriorityNeverOverridesDependencies) {
  // A low-priority task gates a high-priority one; the gate must still run
  // first at every thread count.
  for (int threads : {1, 4}) {
    TaskScheduler pool(threads);
    TaskGraph g;
    std::atomic<bool> gate_done{false};
    std::atomic<bool> violation{false};
    int gate = g.AddTask([&] { gate_done.store(true); }, 0);
    int urgent = g.AddTask(
        [&] {
          if (!gate_done.load()) violation.store(true);
        },
        100);
    g.AddDependency(urgent, gate);
    pool.RunGraph(g);
    EXPECT_FALSE(violation.load()) << "threads=" << threads;
  }
}

TEST(TaskSchedulerTest, IndependentGraphsRunConcurrently) {
  // Two external threads run separate graphs on one scheduler at the same
  // time — the multi-query shape the ExecutorPool drives. Graph-scoped
  // dependency counting must keep them independent and both must finish.
  TaskScheduler pool(4);
  constexpr int kRounds = 10;
  constexpr int kTasksPerGraph = 100;
  for (int round = 0; round < kRounds; ++round) {
    std::atomic<int> ran_a{0};
    std::atomic<int> ran_b{0};
    auto run_chain = [&pool](std::atomic<int>& ran) {
      TaskGraph g;
      int prev = -1;
      for (int i = 0; i < kTasksPerGraph; ++i) {
        int t = g.AddTask([&ran] { ran.fetch_add(1); }, i % 3);
        if (prev >= 0) g.AddDependency(t, prev);
        prev = t;
      }
      pool.RunGraph(g);
    };
    std::thread other([&] { run_chain(ran_b); });
    run_chain(ran_a);
    other.join();
    ASSERT_EQ(ran_a.load(), kTasksPerGraph) << "round " << round;
    ASSERT_EQ(ran_b.load(), kTasksPerGraph) << "round " << round;
  }
}

TEST(TaskSchedulerTest, GraphsRunBackToBack) {
  TaskScheduler pool(4);
  for (int round = 0; round < 20; ++round) {
    TaskGraph g;
    std::atomic<int> ran{0};
    int a = g.AddTask([&] { ran.fetch_add(1); });
    int b = g.AddTask([&] { ran.fetch_add(1); });
    g.AddDependency(b, a);
    pool.RunGraph(g);
    ASSERT_EQ(ran.load(), 2) << "round " << round;
  }
}

TEST(TaskSchedulerTest, CurrentWorkerIndexIdentifiesThreads) {
  TaskScheduler pool(4);
  EXPECT_EQ(pool.num_workers(), 3);
  // The external calling thread is never a pool worker.
  EXPECT_EQ(pool.CurrentWorkerIndex(), -1);
  // Inside chunks, the executing thread is either the caller (-1) or a
  // worker in [0, num_workers()); every index must be in range.
  std::atomic<bool> bad_index{false};
  pool.ParallelFor(256, [&](int64_t) {
    const int w = pool.CurrentWorkerIndex();
    if (w < -1 || w >= pool.num_workers()) bad_index.store(true);
  });
  EXPECT_FALSE(bad_index.load());
  // A different pool never claims this pool's threads.
  TaskScheduler other(2);
  pool.ParallelFor(8, [&](int64_t) {
    if (other.CurrentWorkerIndex() != -1) bad_index.store(true);
  });
  EXPECT_FALSE(bad_index.load());
}

TEST(TaskSchedulerTest, ParallelForAffineCoversEveryChunkExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    TaskScheduler pool(threads);
    constexpr int64_t kChunks = 500;
    // Mixed placement: real worker targets, the no-preference -1, and
    // out-of-range values (both must route to the shared overflow queue).
    std::vector<int> affinity(kChunks);
    for (int64_t c = 0; c < kChunks; ++c) {
      affinity[static_cast<size_t>(c)] =
          static_cast<int>(c % (pool.num_workers() + 3)) - 2;
    }
    std::vector<std::atomic<int>> hits(kChunks);
    auto stats = std::make_shared<StealStats>();
    pool.ParallelForAffine(
        kChunks,
        [&](int64_t c) {
          hits[static_cast<size_t>(c)].fetch_add(1, std::memory_order_relaxed);
        },
        affinity, stats);
    int64_t tagged = 0;
    for (int64_t c = 0; c < kChunks; ++c) {
      ASSERT_EQ(hits[static_cast<size_t>(c)].load(), 1)
          << "chunk " << c << " threads " << threads;
      if (affinity[static_cast<size_t>(c)] >= 0 &&
          affinity[static_cast<size_t>(c)] < pool.num_workers()) {
        ++tagged;
      }
    }
    // Every affinity-tagged chunk is accounted as exactly one hit or miss.
    EXPECT_EQ(stats->affinity_hits.load() + stats->affinity_misses.load(),
              tagged)
        << "threads=" << threads;
  }
}

TEST(TaskSchedulerTest, ParallelForAffineZeroAndOneChunk) {
  TaskScheduler pool(4);
  int ran = 0;
  auto stats = std::make_shared<StealStats>();
  pool.ParallelForAffine(0, [&](int64_t) { ++ran; }, {}, stats);
  EXPECT_EQ(ran, 0);
  pool.ParallelForAffine(
      1,
      [&](int64_t c) {
        EXPECT_EQ(c, 0);
        ++ran;
      },
      {0}, stats);
  EXPECT_EQ(ran, 1);
}

TEST(TaskSchedulerTest, AffinityHitsAccrueWhenOwnersRunTheirChunks) {
  // All chunks prefer worker 0 and each body sleeps ~1ms: worker 0 pops its
  // own deque LIFO, so at least one chunk must run on its preferred worker.
  TaskScheduler pool(2);
  constexpr int64_t kChunks = 32;
  std::vector<int> affinity(kChunks, 0);
  auto stats = std::make_shared<StealStats>();
  pool.ParallelForAffine(
      kChunks,
      [&](int64_t) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      },
      affinity, stats);
  EXPECT_GT(stats->affinity_hits.load(), 0);
  EXPECT_EQ(stats->affinity_hits.load() + stats->affinity_misses.load(),
            kChunks);
}

TEST(TaskSchedulerTest, StealStatsCountStolenTasks) {
  // Steal-storm hook: worker 0 parks 50ms while every chunk lands on its
  // deque. The other workers are idle with real work visible only on worker
  // 0's deque, so they must steal it (the participating caller claims some
  // chunks too — those count as affinity misses, not steals).
  TaskScheduler::Options options;
  options.threads = 4;
  options.worker0_start_delay_ms = 50;
  TaskScheduler pool(options);
  constexpr int64_t kChunks = 64;
  std::vector<int> affinity(kChunks, 0);
  auto stats = std::make_shared<StealStats>();
  pool.ParallelForAffine(
      kChunks,
      [&](int64_t) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      },
      affinity, stats);
  EXPECT_GT(stats->tasks_stolen.load(), 0);
  EXPECT_EQ(stats->affinity_hits.load() + stats->affinity_misses.load(),
            kChunks);
}

TEST(TaskSchedulerTest, AgingBoostFormula) {
  EXPECT_EQ(TaskScheduler::AgingBoost(0.0), 0);
  EXPECT_EQ(TaskScheduler::AgingBoost(-1.0), 0);
  // Below one quantum: no boost.
  EXPECT_EQ(TaskScheduler::AgingBoost(TaskScheduler::kAgingQuantumSeconds / 2),
            0);
  // One level per quantum of admission-queue wait.
  EXPECT_EQ(TaskScheduler::AgingBoost(TaskScheduler::kAgingQuantumSeconds), 1);
  EXPECT_EQ(
      TaskScheduler::AgingBoost(3.5 * TaskScheduler::kAgingQuantumSeconds), 3);
  // Capped: a very stale query cannot outrank morsels or leapfrog forever.
  EXPECT_EQ(TaskScheduler::AgingBoost(1e9), TaskScheduler::kMaxAgingBoost);
  EXPECT_EQ(TaskScheduler::AgedPriority(5, 1e9),
            5 + TaskScheduler::kMaxAgingBoost);
  EXPECT_EQ(TaskScheduler::AgedPriority(5, 0.0), 5);
}

}  // namespace
}  // namespace exec
}  // namespace gyo
