#include "rel/universal.h"

#include <gtest/gtest.h>

#include "rel/ops.h"
#include "schema/generators.h"
#include "schema/parse.h"

namespace gyo {
namespace {

class UniversalTest : public ::testing::Test {
 protected:
  Catalog catalog_;
};

TEST_F(UniversalTest, RandomUniversalShape) {
  Rng rng(233);
  AttrSet u = ParseAttrSet(catalog_, "abcd");
  Relation i = RandomUniversal(u, 50, 4, rng);
  EXPECT_EQ(i.Schema(), u);
  EXPECT_LE(i.NumRows(), 50);  // duplicates removed
  EXPECT_GT(i.NumRows(), 0);
  for (int r = 0; r < i.NumRows(); ++r) {
    for (Value v : i.Row(r)) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 4);
    }
  }
}

TEST_F(UniversalTest, DeterministicInSeed) {
  AttrSet u = ParseAttrSet(catalog_, "ab");
  Rng r1(5);
  Rng r2(5);
  EXPECT_TRUE(RandomUniversal(u, 20, 3, r1)
                  .EqualsAsSet(RandomUniversal(u, 20, 3, r2)));
}

TEST_F(UniversalTest, ProjectDatabaseParallelsSchema) {
  Rng rng(239);
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,cd");
  Relation i = RandomUniversal(d.Universe(), 20, 3, rng);
  std::vector<Relation> states = ProjectDatabase(i, d);
  ASSERT_EQ(states.size(), 3u);
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(states[static_cast<size_t>(k)].Schema(), d[k]);
  }
}

TEST_F(UniversalTest, URDatabaseJoinContainsUniversal) {
  // ⋈ of projections always contains the original (the join dependency may
  // add tuples but never removes).
  Rng rng(241);
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc");
  Relation i = RandomUniversal(d.Universe(), 15, 3, rng);
  Relation joined = JoinAll(ProjectDatabase(i, d));
  Relation both = NaturalJoin(joined, i);
  EXPECT_TRUE(both.EqualsAsSet(i));  // i ⊆ joined
}

TEST_F(UniversalTest, JdHoldsOnSingleRelationSchema) {
  Rng rng(251);
  DatabaseSchema d = ParseSchema(catalog_, "abc");
  Relation i = RandomUniversal(d.Universe(), 10, 3, rng);
  EXPECT_TRUE(JdHolds(i, d));
}

TEST_F(UniversalTest, JdCanFailOnDecompositions) {
  // For D = (ab, bc) some universal relation violates ⋈D.
  Catalog c;
  DatabaseSchema d = ParseSchema(c, "ab,bc");
  Relation i(d.Universe());
  // {(0,0,0), (1,0,1)}: the projections join to also produce (0,0,1),(1,0,0).
  i.AddRow({0, 0, 0});
  i.AddRow({1, 0, 1});
  i.Canonicalize();
  EXPECT_FALSE(JdHolds(i, d));
}

TEST_F(UniversalTest, RandomModelOfJdSatisfiesJd) {
  Rng rng(257);
  for (int trial = 0; trial < 40; ++trial) {
    DatabaseSchema d = RandomSchema(2 + static_cast<int>(rng.Below(4)),
                                    2 + static_cast<int>(rng.Below(4)),
                                    1 + static_cast<int>(rng.Below(3)), rng);
    Relation model = RandomModelOfJd(d, 8, 3, rng);
    EXPECT_TRUE(JdHolds(model, d)) << "trial " << trial;
  }
}

TEST_F(UniversalTest, EvaluateJoinQueryMatchesManualPipeline) {
  Rng rng(263);
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc");
  AttrSet x = ParseAttrSet(catalog_, "ac");
  Relation i = RandomUniversal(d.Universe(), 20, 3, rng);
  std::vector<Relation> states = ProjectDatabase(i, d);
  Relation expected = Project(NaturalJoin(states[0], states[1]), x);
  EXPECT_TRUE(EvaluateJoinQuery(d, x, states).EqualsAsSet(expected));
}

TEST_F(UniversalTest, EmbeddedJdOverLargerUniverse) {
  // JdHolds with U(D) strictly inside the universal schema (embedded jd).
  Rng rng(269);
  Catalog c;
  DatabaseSchema d = ParseSchema(c, "ab");
  AttrSet wide = ParseAttrSet(c, "abz");
  Relation i = RandomUniversal(wide, 10, 3, rng);
  EXPECT_TRUE(JdHolds(i, d));  // single-relation jd is trivial
}

}  // namespace
}  // namespace gyo
