// Every worked example and figure of the paper, regenerated as assertions.
// The E-numbers refer to the per-experiment index in DESIGN.md/EXPERIMENTS.md.

#include <gtest/gtest.h>

#include "gyo/acyclic.h"
#include "gyo/gamma.h"
#include "gyo/gyo.h"
#include "gyo/qual_graph.h"
#include "query/lossless.h"
#include "query/query.h"
#include "query/tree_projection.h"
#include "rel/solver.h"
#include "rel/universal.h"
#include "schema/fixtures.h"
#include "schema/parse.h"
#include "tableau/canonical.h"
#include "tableau/containment.h"
#include "tableau/minimize.h"

namespace gyo {
namespace {

class PaperExamplesTest : public ::testing::Test {
 protected:
  Catalog catalog_;
};

// ---------------------------------------------------------------- E1: Fig. 1

TEST_F(PaperExamplesTest, Fig1PathIsTreeWithPathQualGraph) {
  DatabaseSchema d = fixtures::Fig1Path(catalog_);
  EXPECT_TRUE(IsTreeSchema(d));
  // The figure's qual graph ab - bc - cd.
  QualGraph g;
  g.num_nodes = 3;
  g.edges = {{0, 1}, {1, 2}};
  EXPECT_TRUE(IsQualTree(d, g));
}

TEST_F(PaperExamplesTest, Fig1TriangleOnlyQualGraphIsTheCycle) {
  DatabaseSchema d = fixtures::Fig1Triangle(catalog_);
  EXPECT_TRUE(IsCyclicSchema(d));
  // "this is the only qual graph for C": no spanning tree works, but the
  // 3-cycle does.
  EXPECT_TRUE(EnumerateQualTrees(d).empty());
  QualGraph cycle;
  cycle.num_nodes = 3;
  cycle.edges = {{0, 1}, {1, 2}, {2, 0}};
  EXPECT_TRUE(IsQualGraph(d, cycle));
}

TEST_F(PaperExamplesTest, Fig1FourRelationExampleHasBothQualGraphs) {
  // (abc, cde, ace, afe): the figure shows a non-tree qual graph
  // abc - ace - afe with cde adjacent to both ace and cde... and the tree
  // abc - ace - afe with cde hanging off ace. D is a tree schema.
  DatabaseSchema d = fixtures::Fig1Tree(catalog_);
  EXPECT_TRUE(IsTreeSchema(d));
  QualGraph tree;
  tree.num_nodes = 4;
  tree.edges = {{0, 2}, {1, 2}, {3, 2}};  // star around ace
  EXPECT_TRUE(IsQualTree(d, tree));
  // A qual graph that is NOT a tree also exists (the figure's first one,
  // with cde connected to both abc-side and ace): add a redundant edge.
  QualGraph graph = tree;
  graph.edges.emplace_back(0, 1);
  EXPECT_TRUE(IsQualGraph(d, graph));
  EXPECT_FALSE(graph.IsTree());
}

// ---------------------------------------------------- E2: Fig. 2 / Lemma 3.1

TEST_F(PaperExamplesTest, Fig2aAringOfSize4) {
  DatabaseSchema d = fixtures::Fig2Aring(catalog_);
  EXPECT_TRUE(IsAring(d));
  EXPECT_TRUE(IsCyclicSchema(d));
  // Qual graph: ab - bc - cd - da - (ab), the 4-cycle.
  QualGraph cycle;
  cycle.num_nodes = 4;
  cycle.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  EXPECT_TRUE(IsQualGraph(d, cycle));
}

TEST_F(PaperExamplesTest, Fig2bAcliqueOfSize4) {
  DatabaseSchema d = fixtures::Fig2Aclique(catalog_);
  EXPECT_TRUE(IsAclique(d));
  EXPECT_TRUE(IsCyclicSchema(d));
}

TEST_F(PaperExamplesTest, Fig2cReductionToAring) {
  AttrSet deleted;
  DatabaseSchema d = fixtures::Fig2RingBased(catalog_, &deleted);
  EXPECT_TRUE(IsCyclicSchema(d));
  auto core = FindCyclicCore(d);
  ASSERT_TRUE(core.has_value());
  EXPECT_TRUE(core->is_aring || core->is_aclique);
}

TEST_F(PaperExamplesTest, Fig2cReductionToAclique) {
  AttrSet deleted;
  DatabaseSchema d = fixtures::Fig2CliqueBased(catalog_, &deleted);
  EXPECT_TRUE(IsCyclicSchema(d));
  DatabaseSchema cut = d.DeleteAttributes(deleted).Reduction();
  DatabaseSchema cleaned;
  for (const RelationSchema& r : cut.Relations()) {
    if (!r.Empty()) cleaned.Add(r);
  }
  EXPECT_TRUE(IsAclique(cleaned));
  EXPECT_EQ(cleaned.NumRelations(), 4);
}

// ------------------------------------------------------- E3: §3.2's example

TEST_F(PaperExamplesTest, Sec32TreeProjectionExample) {
  DatabaseSchema d = fixtures::Sec32D(catalog_);
  DatabaseSchema dpp = fixtures::Sec32Dpp(catalog_);
  DatabaseSchema dp = fixtures::Sec32Dp(catalog_);
  // "Clearly, D ≤ D'' ≤ D'."
  EXPECT_TRUE(d.CoveredBy(dpp));
  EXPECT_TRUE(dpp.CoveredBy(dp));
  // "D'' is a tree schema, viz., ab - abch - cdgh - defg - ef."
  QualGraph chain;
  chain.num_nodes = 5;
  chain.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}};
  EXPECT_TRUE(IsQualTree(dpp, chain));
  EXPECT_TRUE(IsTreeProjection(dpp, dp, d));
  // "One can show that both D and D' are cyclic schemas."
  EXPECT_TRUE(IsCyclicSchema(d));
  EXPECT_TRUE(IsCyclicSchema(dp));
}

// -------------------------------------------- E5: Corollaries 3.1, 3.2 demos

TEST_F(PaperExamplesTest, Corollary31OnFig1Schemas) {
  EXPECT_TRUE(GyoReduce(fixtures::Fig1Path(catalog_)).FullyReduced());
  EXPECT_FALSE(GyoReduce(fixtures::Fig1Triangle(catalog_)).FullyReduced());
  EXPECT_TRUE(GyoReduce(fixtures::Fig1Tree(catalog_)).FullyReduced());
}

TEST_F(PaperExamplesTest, Corollary32OnTheTriangle) {
  DatabaseSchema d = fixtures::Fig1Triangle(catalog_);
  EXPECT_EQ(TreefyingRelation(d), ParseAttrSet(catalog_, "abc"));
}

// --------------------------------------------------- E10: §5.1's two schemas

TEST_F(PaperExamplesTest, Sec51LosslessCounterexample) {
  DatabaseSchema d = fixtures::Sec51D(catalog_);
  DatabaseSchema dprime = fixtures::Sec51Dp(catalog_);
  // "It is easy to see that ⋈D ⊭ ⋈D' and D' is not a subtree of D."
  EXPECT_FALSE(JoinDependencyImplies(d, dprime));
  EXPECT_FALSE(IsSubtree(d, {1, 2}));
  // D is a tree schema nevertheless.
  EXPECT_TRUE(IsTreeSchema(d));
}

// ---------------------------------------------------------- E12: Figs. 4 – 7

TEST_F(PaperExamplesTest, Fig5GammaCycleExample) {
  // Fig. 5 contracts the γ-cycle of D = (ab, bcd, dc?, ce, acf...): we use
  // the figure's pre-contraction shape: R1=ab, R2=bcd, R3=dc, R4=ce, with
  // the cycle closing through acf. Reconstructed: the schema below has a
  // weak γ-cycle.
  DatabaseSchema d = ParseSchema(catalog_, "ab,bcd,dce,cef,afg");
  auto cycle = FindWeakGammaCycle(d);
  EXPECT_TRUE(cycle.has_value());
  EXPECT_FALSE(IsGammaAcyclic(d));
}

TEST_F(PaperExamplesTest, Fig7ArindDeletionKeepsConnectivity) {
  // Fig. 7(a): in the Aring (ab, bc, cd, da) fattened to supersets, deleting
  // the intersection of two supersets does not disconnect them — the
  // Theorem 5.3(ii) test fails for cyclic schemas. We check directly on the
  // Aring of size 4: R = cd and S = da share d; deleting d leaves c...a
  // connected through bc and ab.
  DatabaseSchema d = fixtures::Fig2Aring(catalog_);
  EXPECT_FALSE(IsGammaAcyclic(d));
}

TEST_F(PaperExamplesTest, Theorem53OnPaperSchemas) {
  // γ-acyclic: the path. Not γ-acyclic: (abc, ab, bc) (tree, but the
  // connected D' = (ab, bc) is not a subtree).
  EXPECT_TRUE(IsGammaAcyclic(fixtures::Fig1Path(catalog_)));
  DatabaseSchema d = fixtures::Sec51D(catalog_);
  EXPECT_FALSE(IsGammaAcyclic(d));
  EXPECT_FALSE(IsGammaAcyclicBySubtrees(d));
  EXPECT_TRUE(FindWeakGammaCycle(d).has_value());
}

// ------------------------------------------------------------ E14: §6 example

TEST_F(PaperExamplesTest, Sec6IrrelevantRelations) {
  // "Clearly, to solve Q, R4, R5, and R6 are irrelevant, as is the f column
  // in R3. Hence ... D' = (R1, R2, π_ac R3)."
  DatabaseSchema d = fixtures::Sec6D(catalog_);
  AttrSet x = fixtures::Sec6X(catalog_);
  CanonicalResult cc = CanonicalConnection(d, x);
  EXPECT_TRUE(cc.schema.EqualsAsMultiset(fixtures::Sec6CC(catalog_)));
  // Relations 3, 4, 5 (ad, de, ea) appear in no source.
  for (int src : cc.sources) EXPECT_LE(src, 2);
}

TEST_F(PaperExamplesTest, Sec6TableauMinimization) {
  DatabaseSchema d = fixtures::Sec6D(catalog_);
  AttrSet x = fixtures::Sec6X(catalog_);
  Tableau t = Tableau::Standard(d, x);
  EXPECT_EQ(t.NumRows(), 6);
  Tableau m = Minimize(t);
  EXPECT_EQ(m.NumRows(), 3);
}

TEST_F(PaperExamplesTest, Sec6SolvedByCCPrunedProgram) {
  DatabaseSchema d = fixtures::Sec6D(catalog_);
  AttrSet x = fixtures::Sec6X(catalog_);
  Program p = CCPrunedProgram(d, x);
  Rng rng(331);
  EXPECT_TRUE(SolvesQueryEmpirically(p, d, x, 25, rng));
}

// ---------------------------------------------- Lemma 3.2/3.5 sanity checks

TEST_F(PaperExamplesTest, Lemma32EquivalenceIffTableauEquivalence) {
  DatabaseSchema d1 = ParseSchema(catalog_, "abc,ab,bc");
  DatabaseSchema d2 = ParseSchema(catalog_, "abc");
  AttrSet x = ParseAttrSet(catalog_, "ac");
  Tableau t1 = Tableau::Standard(d1, x);
  Tableau t2 = Tableau::Standard(d2, x);
  EXPECT_TRUE(AreEquivalent(t1, t2));
  EXPECT_TRUE(WeaklyEquivalent(d1, d2, x));
}

TEST_F(PaperExamplesTest, Lemma35CCCharacterizesEquivalence) {
  DatabaseSchema d1 = ParseSchema(catalog_, "ab,bc");
  DatabaseSchema d2 = ParseSchema(catalog_, "ab,bc,abc");
  AttrSet x = ParseAttrSet(catalog_, "ac");
  // Adding abc changes the query (it enforces a joint constraint).
  EXPECT_FALSE(WeaklyEquivalent(d1, d2, x));
  CanonicalResult c1 = CanonicalConnection(d1, x);
  CanonicalResult c2 = CanonicalConnection(d2, x);
  EXPECT_FALSE(c1.schema.EqualsAsMultiset(c2.schema));
}

}  // namespace
}  // namespace gyo
