#include "query/lossless.h"

#include <gtest/gtest.h>

#include "gyo/acyclic.h"
#include "gyo/qual_graph.h"
#include "rel/ops.h"
#include "rel/universal.h"
#include "schema/fixtures.h"
#include "schema/generators.h"
#include "schema/parse.h"
#include "tableau/canonical.h"
#include "util/rng.h"

namespace gyo {
namespace {

class LosslessTest : public ::testing::Test {
 protected:
  Catalog catalog_;
};

TEST_F(LosslessTest, PaperCounterexample) {
  // §5.1: D = (abc, ab, bc), D' = (ab, bc): ⋈D ⊭ ⋈D'.
  DatabaseSchema d = fixtures::Sec51D(catalog_);
  DatabaseSchema dprime = fixtures::Sec51Dp(catalog_);
  EXPECT_FALSE(JoinDependencyImplies(d, dprime));
}

TEST_F(LosslessTest, PaperCounterexampleWitnessedByData) {
  // Find a universal relation satisfying ⋈D but not ⋈D'.
  DatabaseSchema d = fixtures::Sec51D(catalog_);
  DatabaseSchema dprime = fixtures::Sec51Dp(catalog_);
  Rng rng(173);
  bool witnessed = false;
  for (int rep = 0; rep < 100 && !witnessed; ++rep) {
    Relation model = RandomModelOfJd(d, 5, 2, rng);
    ASSERT_TRUE(JdHolds(model, d));
    if (!JdHolds(model, dprime)) witnessed = true;
  }
  EXPECT_TRUE(witnessed);
}

TEST_F(LosslessTest, SubtreesOfTreesAreLossless) {
  // Corollary 5.2, forward direction on a path.
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,cd");
  EXPECT_TRUE(JoinDependencyImplies(d, ParseSchema(catalog_, "ab,bc")));
  EXPECT_TRUE(JoinDependencyImplies(d, ParseSchema(catalog_, "bc,cd")));
  EXPECT_TRUE(JoinDependencyImplies(d, d));
  EXPECT_FALSE(JoinDependencyImplies(d, ParseSchema(catalog_, "ab,cd")));
}

TEST_F(LosslessTest, WholeSchemaAlwaysLossless) {
  Rng rng(179);
  for (int trial = 0; trial < 50; ++trial) {
    DatabaseSchema d = RandomSchema(2 + static_cast<int>(rng.Below(5)),
                                    2 + static_cast<int>(rng.Below(5)),
                                    1 + static_cast<int>(rng.Below(4)), rng);
    EXPECT_TRUE(JoinDependencyImplies(d, d)) << "trial " << trial;
  }
}

TEST_F(LosslessTest, Corollary52MatchesSubtreeTest) {
  // For tree schemas: ⋈D ⊨ ⋈D' iff D' is a subtree of D.
  Rng rng(181);
  int checked = 0;
  for (int trial = 0; trial < 200 && checked < 50; ++trial) {
    DatabaseSchema d = RandomSchema(2 + static_cast<int>(rng.Below(4)),
                                    2 + static_cast<int>(rng.Below(5)),
                                    1 + static_cast<int>(rng.Below(4)), rng);
    if (!IsTreeSchema(d)) continue;
    ++checked;
    const int n = d.NumRelations();
    for (uint32_t mask = 1; mask < (uint32_t{1} << n); ++mask) {
      std::vector<int> indices;
      for (int i = 0; i < n; ++i) {
        if ((mask >> i) & 1) indices.push_back(i);
      }
      DatabaseSchema dprime = d.Select(indices);
      EXPECT_EQ(JoinDependencyImplies(d, dprime),
                LosslessInTreeSchema(d, indices))
          << "trial " << trial << " mask " << mask;
    }
  }
  EXPECT_GE(checked, 30);
}

TEST_F(LosslessTest, DecisionMatchesEmpiricalModels) {
  // If ⋈D ⊨ ⋈D' holds, every random model of ⋈D satisfies ⋈D'.
  Rng rng(191);
  int positive = 0;
  int negative_confirmed = 0;
  for (int trial = 0; trial < 120; ++trial) {
    DatabaseSchema d = RandomSchema(2 + static_cast<int>(rng.Below(4)),
                                    2 + static_cast<int>(rng.Below(4)),
                                    1 + static_cast<int>(rng.Below(3)), rng);
    std::vector<int> indices;
    for (int i = 0; i < d.NumRelations(); ++i) {
      if (rng.Chance(0.7)) indices.push_back(i);
    }
    if (indices.empty()) continue;
    DatabaseSchema dprime = d.Select(indices);
    bool implied = JoinDependencyImplies(d, dprime);
    bool all_models_ok = true;
    for (int rep = 0; rep < 6; ++rep) {
      Relation model =
          RandomModelOfJd(d, 2 + static_cast<int>(rng.Below(12)),
                          2 + static_cast<int>(rng.Below(3)), rng);
      if (!JdHolds(model, dprime)) all_models_ok = false;
    }
    if (implied) {
      EXPECT_TRUE(all_models_ok) << "trial " << trial;
      ++positive;
    } else if (!all_models_ok) {
      ++negative_confirmed;  // random data found the paper-predicted gap
    }
  }
  EXPECT_GE(positive, 10);
  EXPECT_GE(negative_confirmed, 5);
}

TEST_F(LosslessTest, Theorem51EqualityForReducedSubschemas) {
  // Thm 5.1 parenthetical: CC(D, U(D')) = D' (as sets of schemas) iff D' is
  // reduced, for implied D'.
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,cd");
  DatabaseSchema dprime = ParseSchema(catalog_, "ab,bc");
  ASSERT_TRUE(JoinDependencyImplies(d, dprime));
  ASSERT_TRUE(dprime.IsReduced());
  CanonicalResult cc = CanonicalConnection(d, dprime.Universe());
  EXPECT_TRUE(cc.schema.EqualsAsMultiset(dprime));
}

TEST_F(LosslessTest, RingHasNoLosslessProperSubset) {
  // Any proper connected subset of an Aring loses the cycle constraint.
  DatabaseSchema d = Aring(5);
  for (int drop = 0; drop < 5; ++drop) {
    std::vector<int> indices;
    for (int i = 0; i < 5; ++i) {
      if (i != drop) indices.push_back(i);
    }
    EXPECT_FALSE(JoinDependencyImplies(d, d.Select(indices)));
  }
}

TEST_F(LosslessTest, SingletonSubschemaAlwaysLossless) {
  // ⋈D ⊨ ⋈(R) trivially for R ∈ D: π_R(I) = π_R(I).
  Rng rng(193);
  for (int trial = 0; trial < 50; ++trial) {
    DatabaseSchema d = RandomSchema(2 + static_cast<int>(rng.Below(5)),
                                    2 + static_cast<int>(rng.Below(5)),
                                    1 + static_cast<int>(rng.Below(4)), rng);
    int pick = static_cast<int>(rng.Below(static_cast<uint64_t>(d.NumRelations())));
    EXPECT_TRUE(JoinDependencyImplies(d, d.Select({pick})))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace gyo
