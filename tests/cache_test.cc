// src/cache/ unit + property tests: canonical fingerprinting (isomorphism
// invariance, collision guards), plan-cache hit/LRU/concurrency semantics,
// the delta-round incremental reducer's bit-identity to batch re-reduction
// after randomized appends (including revivals) at several thread counts in
// both determinism modes, the reduced-state cache's exact-hit / delta /
// eviction paths, and the serve result cache.

#include <gtest/gtest.h>

#include <optional>
#include <thread>
#include <vector>

#include "cache/fingerprint.h"
#include "cache/plan_cache.h"
#include "cache/result_cache.h"
#include "cache/state_cache.h"
#include "exec/executor_pool.h"
#include "exec/physical_plan.h"
#include "rel/reducer.h"
#include "rel/solver.h"
#include "rel/universal.h"
#include "schema/generators.h"
#include "schema/parse.h"
#include "util/rng.h"

namespace gyo {
namespace cache {
namespace {

// ---------------------------------------------------------------------------
// Fingerprint / canonicalization

TEST(CacheFingerprintTest, FirstAppearanceSchemasCanonicalizeToThemselves) {
  // The gyo_serve request path: a fresh Catalog interns attributes in first
  // appearance order, which IS the canonical labeling — the relabeling must
  // be the identity, so cached programs transfer byte for byte.
  Catalog catalog;
  DatabaseSchema d = ParseSchema(catalog, "ab,bc,cd");
  AttrSet target = ParseAttrSet(catalog, "ad");
  CanonicalQuery canon = CanonicalizeQuery(d, target);
  EXPECT_TRUE(canon.SameShape(d, target));
  for (size_t c = 0; c < canon.canonical_to_caller.size(); ++c) {
    EXPECT_EQ(canon.canonical_to_caller[c], static_cast<AttrId>(c));
  }
}

TEST(CacheFingerprintTest, OrderPreservingRenamingsShareAFingerprint) {
  // Same hypergraph over attribute ids 0..3 and over 10,20,30,40.
  DatabaseSchema a({AttrSet({0, 1}), AttrSet({1, 2}), AttrSet({2, 3})});
  DatabaseSchema b(
      {AttrSet({10, 20}), AttrSet({20, 30}), AttrSet({30, 40})});
  CanonicalQuery ca = CanonicalizeQuery(a, AttrSet({0, 3}));
  CanonicalQuery cb = CanonicalizeQuery(b, AttrSet({10, 40}));
  EXPECT_EQ(ca.fingerprint, cb.fingerprint);
  EXPECT_TRUE(ca.SameShape(cb.schema, cb.target));
  // The inverse relabeling reaches back into each caller's space.
  EXPECT_EQ(cb.canonical_to_caller[0], 10);
  EXPECT_EQ(cb.canonical_to_caller[3], 40);
}

TEST(CacheFingerprintTest, TargetAndShapeChangesChangeTheFingerprint) {
  DatabaseSchema d({AttrSet({0, 1}), AttrSet({1, 2})});
  const Fingerprint base = CanonicalizeQuery(d, AttrSet({0, 2})).fingerprint;
  EXPECT_NE(base, CanonicalizeQuery(d, AttrSet({0, 1})).fingerprint);
  DatabaseSchema e({AttrSet({0, 1}), AttrSet({1, 2}), AttrSet({2, 3})});
  EXPECT_NE(base, CanonicalizeQuery(e, AttrSet({0, 2})).fingerprint);
}

TEST(CacheFingerprintTest, DatabaseFingerprintSeesDataAndSeed) {
  Catalog catalog;
  DatabaseSchema d = ParseSchema(catalog, "ab,bc");
  AttrSet target = ParseAttrSet(catalog, "ac");
  Rng rng(7);
  std::vector<Relation> states = RandomStates(d, 20, 8, rng);
  const Fingerprint f1 = FingerprintDatabase(d, target, states, 1);
  EXPECT_EQ(f1, FingerprintDatabase(d, target, states, 1));
  EXPECT_NE(f1, FingerprintDatabase(d, target, states, 2));
  states[0].AddRow({99, 99});
  EXPECT_NE(f1, FingerprintDatabase(d, target, states, 1));
}

// ---------------------------------------------------------------------------
// Plan cache

TEST(PlanCacheTest, RepeatQueryHitsAndReturnsTheIdenticalProgram) {
  Catalog catalog;
  DatabaseSchema d = ParseSchema(catalog, "ab,bc,cd");
  AttrSet target = ParseAttrSet(catalog, "ad");
  PlanCache pc;
  std::optional<PlanCache::Result> first =
      pc.GetOrBuild(d, target, PlanStrategy::kAuto);
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(first->hit);
  EXPECT_TRUE(first->acyclic);
  EXPECT_EQ(first->resolved, PlanStrategy::kYannakakis);
  std::optional<PlanCache::Result> second =
      pc.GetOrBuild(d, target, PlanStrategy::kAuto);
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->hit);
  EXPECT_EQ(second->resolved, PlanStrategy::kYannakakis);
  EXPECT_EQ(first->program.Format(catalog), second->program.Format(catalog));
  // And both match a direct solver build.
  std::optional<Program> direct = YannakakisProgram(d, target);
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(first->program.Format(catalog), direct->Format(catalog));
  const PlanCacheStats stats = pc.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(PlanCacheTest, CachedPlanExecutesBitIdenticallyToADirectBuild) {
  Catalog catalog;
  DatabaseSchema d = ParseSchema(catalog, "ab,bc,cd");
  AttrSet target = ParseAttrSet(catalog, "ad");
  Rng rng(11);
  std::vector<Relation> states =
      ProjectDatabase(RandomUniversal(d.Universe(), 150, 10, rng), d);
  PlanCache pc;
  pc.GetOrBuild(d, target, PlanStrategy::kAuto);  // warm
  std::optional<PlanCache::Result> hit =
      pc.GetOrBuild(d, target, PlanStrategy::kAuto);
  ASSERT_TRUE(hit.has_value() && hit->hit);
  std::optional<Program> direct = YannakakisProgram(d, target);
  ASSERT_TRUE(direct.has_value());
  exec::ExecContext ctx;
  std::vector<Relation> want = exec::Execute(*direct, states, ctx);
  std::vector<Relation> via_program = exec::Execute(hit->program, states, ctx);
  std::vector<Relation> via_plan = hit->plan.Execute(states, ctx);
  ASSERT_EQ(want.size(), via_program.size());
  ASSERT_EQ(want.size(), via_plan.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_TRUE(want[i].IdenticalTo(via_program[i])) << "state " << i;
    EXPECT_TRUE(want[i].IdenticalTo(via_plan[i])) << "state " << i;
  }
}

TEST(PlanCacheTest, IsomorphicQueryIsAHitAndRemapsIntoCallerSpace) {
  // Warm with attrs a..d, then ask the isomorphic query over w..z. The hit
  // entry's program must come back in the *second* query's attribute space
  // and execute exactly like a direct build for it.
  Catalog catalog;
  DatabaseSchema d1 = ParseSchema(catalog, "ab,bc,cd");
  AttrSet t1 = ParseAttrSet(catalog, "ad");
  DatabaseSchema d2 = ParseSchema(catalog, "wx,xy,yz");
  AttrSet t2 = ParseAttrSet(catalog, "wz");
  PlanCache pc;
  ASSERT_TRUE(pc.GetOrBuild(d1, t1, PlanStrategy::kAuto).has_value());
  std::optional<PlanCache::Result> hit =
      pc.GetOrBuild(d2, t2, PlanStrategy::kAuto);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->hit);
  std::optional<Program> direct = YannakakisProgram(d2, t2);
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(hit->program.Format(catalog), direct->Format(catalog));
}

TEST(PlanCacheTest, CyclicYannakakisVerdictIsMemoized) {
  DatabaseSchema d = Aring(3);
  AttrSet target = d.Universe();
  PlanCache pc;
  EXPECT_FALSE(pc.GetOrBuild(d, target, PlanStrategy::kYannakakis));
  EXPECT_FALSE(pc.GetOrBuild(d, target, PlanStrategy::kYannakakis));
  const PlanCacheStats stats = pc.stats();
  EXPECT_EQ(stats.hits, 1u);  // the second rejection came from the cache
  EXPECT_EQ(stats.misses, 1u);
  // kAuto on the same schema still plans (CC-pruned fallback) — a distinct
  // key, so the cyclic verdict entry cannot shadow it.
  std::optional<PlanCache::Result> fallback =
      pc.GetOrBuild(d, target, PlanStrategy::kAuto);
  ASSERT_TRUE(fallback.has_value());
  EXPECT_FALSE(fallback->acyclic);
  EXPECT_EQ(fallback->resolved, PlanStrategy::kCcPruned);
}

TEST(PlanCacheTest, ExplicitStrategiesAreCachedSeparatelyAndClearResets) {
  // Full-join and CC-pruned builds are memoized under their own keys (the
  // requested strategy is part of the cache key, so asking for a different
  // plan over the same schema never returns the wrong program).
  Catalog catalog;
  DatabaseSchema d = ParseSchema(catalog, "ab,bc");
  AttrSet target = ParseAttrSet(catalog, "ac");
  PlanCache pc;
  std::optional<PlanCache::Result> full =
      pc.GetOrBuild(d, target, PlanStrategy::kFullJoin);
  ASSERT_TRUE(full.has_value());
  EXPECT_FALSE(full->hit);
  EXPECT_EQ(full->resolved, PlanStrategy::kFullJoin);
  std::optional<PlanCache::Result> pruned =
      pc.GetOrBuild(d, target, PlanStrategy::kCcPruned);
  ASSERT_TRUE(pruned.has_value());
  EXPECT_FALSE(pruned->hit);  // distinct key, not the full-join entry
  EXPECT_EQ(pruned->resolved, PlanStrategy::kCcPruned);
  EXPECT_TRUE(pc.GetOrBuild(d, target, PlanStrategy::kFullJoin)->hit);
  EXPECT_TRUE(pc.GetOrBuild(d, target, PlanStrategy::kCcPruned)->hit);
  EXPECT_EQ(pc.stats().entries, 2u);
  pc.Clear();
  const PlanCacheStats cleared = pc.stats();
  EXPECT_EQ(cleared.entries, 0u);
  EXPECT_EQ(cleared.hits, 0u);
  EXPECT_FALSE(pc.GetOrBuild(d, target, PlanStrategy::kFullJoin)->hit);
}

TEST(PlanCacheTest, GlobalIsOneProcessWideInstance) {
  EXPECT_EQ(&PlanCache::Global(), &PlanCache::Global());
}

TEST(PlanCacheTest, LruEvictsTheColdestEntry) {
  PlanCache::Options options;
  options.max_entries = 2;
  PlanCache pc(options);
  std::vector<DatabaseSchema> schemas;
  for (int n = 2; n <= 4; ++n) schemas.push_back(PathSchema(n + 1));
  // Distinct targets keep the three queries non-isomorphic.
  for (const DatabaseSchema& d : schemas) {
    ASSERT_TRUE(pc.GetOrBuild(d, d.Universe(), PlanStrategy::kAuto));
  }
  PlanCacheStats stats = pc.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  // The first (evicted) query misses again; the last hits.
  pc.GetOrBuild(schemas[0], schemas[0].Universe(), PlanStrategy::kAuto);
  pc.GetOrBuild(schemas[2], schemas[2].Universe(), PlanStrategy::kAuto);
  stats = pc.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 4u);
}

TEST(PlanCacheTest, ConcurrentLookupsAreSafeAndCoherent) {
  Catalog catalog;
  DatabaseSchema d = ParseSchema(catalog, "ab,bc,cd,de");
  AttrSet target = ParseAttrSet(catalog, "ae");
  PlanCache pc;
  constexpr int kThreads = 8;
  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int iter = 0; iter < 50; ++iter) {
        std::optional<PlanCache::Result> r =
            pc.GetOrBuild(d, target, PlanStrategy::kAuto);
        if (!r.has_value() || r->resolved != PlanStrategy::kYannakakis ||
            r->program.NumStatements() == 0) {
          failures[t] = "bad plan-cache result under concurrency";
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], "");
  const PlanCacheStats stats = pc.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.hits + stats.misses, 8u * 50u);
}

// ---------------------------------------------------------------------------
// Delta-round incremental maintenance

// Appends `count` random rows to relation `rel` of `db`.
void AppendRandom(VersionedDatabase* db, int rel, int count, int domain,
                  Rng& rng) {
  const AttrSet& schema = db->schema()[rel];
  Relation extra(schema);
  for (int i = 0; i < count; ++i) {
    std::vector<Value> row;
    for (int c = 0; c < schema.Size(); ++c) {
      row.push_back(static_cast<Value>(rng.Below(
          static_cast<uint64_t>(domain))));
    }
    extra.AddRow(row);
  }
  db->Append(rel, extra);
}

TEST(DeltaReduceTest, MatchesBatchBitIdenticallyAfterRandomizedAppends) {
  // The tentpole property: across random tree schemas, random initial
  // states, randomized appends, thread counts, and both determinism modes,
  // the incrementally maintained fixpoint is IdenticalTo (row order and
  // canonical flags included) a from-scratch batch re-reduction.
  for (const int threads : {1, 2, 4, 8}) {
    exec::ExecutorPool pool(exec::ExecutorPool::Options{});
    for (const bool deterministic : {true, false}) {
      Rng rng(1000 + static_cast<uint64_t>(threads) +
              (deterministic ? 0 : 17));
      for (int trial = 0; trial < 12; ++trial) {
        DatabaseSchema d =
            RandomTreeSchema(2 + static_cast<int>(rng.Below(5)), 3, rng)
                .schema;
        std::vector<Relation> initial = RandomStates(d, 10, 4, rng);
        exec::ExecContext ctx;
        ctx.threads = threads;
        ctx.deterministic = deterministic;
        ctx.pool = threads > 1 ? &pool : nullptr;

        std::vector<int64_t> prev_rows;
        for (const Relation& r : initial) prev_rows.push_back(r.NumRows());
        std::vector<Relation> prev_reduced = SemijoinFixpoint(d, initial, ctx);

        // Append to a random subset of relations (sometimes none).
        std::vector<Relation> now = initial;
        for (int i = 0; i < d.NumRelations(); ++i) {
          if (rng.Below(3) == 0) continue;
          const int extra = 1 + static_cast<int>(rng.Below(4));
          Relation rows(d[i]);
          for (int k = 0; k < extra; ++k) {
            std::vector<Value> row;
            for (int c = 0; c < d[i].Size(); ++c) {
              row.push_back(static_cast<Value>(rng.Below(4)));
            }
            rows.AddRow(row);
          }
          const int64_t base = now[i].AppendRows(rows.NumRows());
          for (int c = 0; c < now[i].Arity(); ++c) {
            const Value* src = rows.ColData(c);
            for (int64_t k = 0; k < rows.NumRows(); ++k) {
              now[i].ColData(c)[base + k] = src[k];
            }
          }
        }

        int batch_steps = -1, delta_steps = -1;
        std::vector<Relation> batch =
            SemijoinFixpoint(d, now, ctx, &batch_steps);
        DeltaStats dstats;
        std::vector<Relation> delta = DeltaReduce(
            d, now, prev_rows, prev_reduced, ctx, &delta_steps, &dstats);
        ASSERT_EQ(batch.size(), delta.size());
        for (size_t i = 0; i < batch.size(); ++i) {
          EXPECT_TRUE(batch[i].IdenticalTo(delta[i]))
              << "threads " << threads << " det " << deterministic
              << " trial " << trial << " relation " << i;
        }
        // Effective semijoins are a fixpoint invariant only for the full
        // schedule; the delta run may skip (never add) effective work.
        EXPECT_LE(delta_steps, batch_steps);
      }
    }
  }
}

TEST(DeltaReduceTest, AppendRevivesAPreviouslyDanglingRow) {
  // R0 = {(1,2)} over ab, R1 = {} over bc: the old fixpoint removed (1,2).
  // Appending (2,5) to R1 must revive it — the grow phase's whole point.
  DatabaseSchema d = PathSchema(3);  // ab, bc
  std::vector<Relation> initial;
  Relation r0(d[0]);
  r0.AddRow({1, 2});
  r0.Canonicalize();
  initial.push_back(r0);
  initial.push_back(Relation(d[1]));
  exec::ExecContext ctx;
  std::vector<Relation> prev = SemijoinFixpoint(d, initial, ctx);
  EXPECT_EQ(prev[0].NumRows(), 0);

  std::vector<Relation> now = initial;
  now[1].AddRow({2, 5});
  DeltaStats dstats;
  std::vector<Relation> delta =
      DeltaReduce(d, now, {1, 0}, prev, ctx, nullptr, &dstats);
  std::vector<Relation> batch = SemijoinFixpoint(d, now, ctx);
  ASSERT_EQ(delta.size(), 2u);
  EXPECT_EQ(delta[0].NumRows(), 1);
  EXPECT_TRUE(delta[0].IdenticalTo(batch[0]));
  EXPECT_TRUE(delta[1].IdenticalTo(batch[1]));
  EXPECT_GE(dstats.grow_rounds, 1);
  EXPECT_EQ(dstats.revived_candidates, 1);
  EXPECT_EQ(dstats.appended_rows, 1);
}

TEST(DeltaReduceTest, ReportsDeltaCountersInQueryStats) {
  Rng rng(23);
  DatabaseSchema d = PathSchema(5);
  std::vector<Relation> initial = RandomStates(d, 30, 6, rng);
  exec::ExecContext ctx;
  std::vector<int64_t> prev_rows;
  for (const Relation& r : initial) prev_rows.push_back(r.NumRows());
  std::vector<Relation> prev = SemijoinFixpoint(d, initial, ctx);

  std::vector<Relation> now = initial;
  now[0].AddRow({1, 2});
  exec::QueryStats stats;
  exec::ExecContext counted = ctx;
  counted.query_stats = &stats;
  DeltaReduce(d, now, prev_rows, prev, counted);
  EXPECT_GT(stats.rows_rescanned, 0);
  EXPECT_GE(stats.delta_rounds, 1);
}

// ---------------------------------------------------------------------------
// VersionedDatabase + StateCache

TEST(StateCacheTest, VersionsTrackAppendsIncludingEmptyOnes) {
  Catalog catalog;
  DatabaseSchema d = ParseSchema(catalog, "ab,bc");
  Rng rng(5);
  VersionedDatabase db(d, RandomStates(d, 5, 4, rng));
  EXPECT_EQ(db.versions(), (std::vector<uint64_t>{0, 0}));
  AppendRandom(&db, 1, 2, 4, rng);
  EXPECT_EQ(db.versions(), (std::vector<uint64_t>{0, 1}));
  db.Append(0, Relation(d[0]));  // zero rows still bumps
  EXPECT_EQ(db.versions(), (std::vector<uint64_t>{1, 1}));
}

TEST(StateCacheTest, ExactHitReturnsCachedStatesWithoutRecomputing) {
  Catalog catalog;
  DatabaseSchema d = ParseSchema(catalog, "ab,bc,cd");
  Rng rng(31);
  VersionedDatabase db(d, RandomStates(d, 25, 5, rng));
  StateCache cache;
  exec::QueryStats stats;
  exec::ExecContext ctx;
  ctx.query_stats = &stats;
  int steps = -1;
  std::vector<Relation> first = cache.GetReduced(db, ctx, &steps);
  EXPECT_EQ(stats.state_cache_hits, 0);
  std::vector<Relation> second = cache.GetReduced(db, ctx, &steps);
  EXPECT_EQ(stats.state_cache_hits, 1);
  EXPECT_EQ(steps, 0);  // nothing ran
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(first[i].IdenticalTo(second[i]));
  }
  const StateCacheStats cs = cache.stats();
  EXPECT_EQ(cs.hits, 1u);
  EXPECT_EQ(cs.misses, 1u);
  EXPECT_EQ(cs.delta_refreshes, 0u);
}

TEST(StateCacheTest, AppendTriggersDeltaRefreshIdenticalToBatch) {
  Catalog catalog;
  DatabaseSchema d = ParseSchema(catalog, "ab,bc,cd,de");
  Rng rng(37);
  VersionedDatabase db(d, RandomStates(d, 40, 6, rng));
  StateCache cache;
  exec::ExecContext ctx;
  cache.GetReduced(db, ctx);  // warm
  for (int round = 0; round < 4; ++round) {
    AppendRandom(&db, round % d.NumRelations(), 3, 6, rng);
    exec::QueryStats stats;
    exec::ExecContext counted;
    counted.query_stats = &stats;
    std::vector<Relation> cached = cache.GetReduced(db, counted);
    EXPECT_EQ(stats.state_cache_hits, 1) << "round " << round;
    std::vector<Relation> batch = SemijoinFixpoint(d, db.states(), ctx);
    ASSERT_EQ(cached.size(), batch.size());
    for (size_t i = 0; i < cached.size(); ++i) {
      EXPECT_TRUE(cached[i].IdenticalTo(batch[i]))
          << "round " << round << " relation " << i;
    }
  }
  const StateCacheStats cs = cache.stats();
  EXPECT_EQ(cs.delta_refreshes, 4u);
  EXPECT_EQ(cs.misses, 1u);
}

TEST(StateCacheTest, ByteBoundEvictsLeastRecentlyUsedDatabase) {
  Catalog catalog;
  DatabaseSchema d = ParseSchema(catalog, "ab,bc");
  Rng rng(41);
  StateCache::Options options;
  options.max_bytes = 1;  // one entry always fits; a second always evicts
  StateCache cache(options);
  exec::ExecContext ctx;
  VersionedDatabase db1(d, RandomStates(d, 20, 4, rng));
  VersionedDatabase db2(d, RandomStates(d, 20, 4, rng));
  cache.GetReduced(db1, ctx);
  cache.GetReduced(db2, ctx);  // evicts db1
  cache.GetReduced(db1, ctx);  // miss again
  const StateCacheStats cs = cache.stats();
  EXPECT_EQ(cs.entries, 1u);
  EXPECT_GE(cs.evictions, 2u);
  EXPECT_EQ(cs.hits, 0u);
  EXPECT_EQ(cs.misses, 3u);
}

TEST(StateCacheTest, ConcurrentTenantsShareOneCacheSafely) {
  Catalog catalog;
  DatabaseSchema d = ParseSchema(catalog, "ab,bc,cd");
  StateCache cache;
  constexpr int kThreads = 6;
  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + static_cast<uint64_t>(t));
      VersionedDatabase db(d, RandomStates(d, 15, 5, rng));
      exec::ExecContext ctx;
      for (int iter = 0; iter < 10; ++iter) {
        std::vector<Relation> cached = cache.GetReduced(db, ctx);
        std::vector<Relation> batch = SemijoinFixpoint(d, db.states(), ctx);
        for (size_t i = 0; i < cached.size(); ++i) {
          if (!cached[i].IdenticalTo(batch[i])) {
            failures[t] = "cached states diverged from batch";
            return;
          }
        }
        AppendRandom(&db, iter % d.NumRelations(), 1, 5, rng);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], "");
}

// ---------------------------------------------------------------------------
// Result cache

TEST(ResultCacheTest, RoundTripsBitIdenticalValues) {
  Catalog catalog;
  DatabaseSchema d = ParseSchema(catalog, "ab,bc");
  AttrSet target = ParseAttrSet(catalog, "ac");
  Rng rng(47);
  std::vector<Relation> states = RandomStates(d, 10, 4, rng);
  const ResultKey key = MakeResultKey(d, target, states, 1);
  Relation result(target);
  result.AddRow({1, 2});
  result.Canonicalize();
  Program::Stats stats;
  stats.result_rows = 1;
  ResultCache rc;
  EXPECT_FALSE(rc.Get(key).has_value());
  rc.Put(key, ResultCache::Value{result, stats});
  std::optional<ResultCache::Value> got = rc.Get(key);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->result.IdenticalTo(result));
  EXPECT_EQ(got->stats.result_rows, 1);
  // The key sees the variant word and the data.
  EXPECT_NE(key, MakeResultKey(d, target, states, 2));
  states[0].AddRow({7, 7});
  EXPECT_NE(key, MakeResultKey(d, target, states, 1));
}

TEST(ResultCacheTest, ByteBoundEvictsLru) {
  ResultCache::Options options;
  options.max_bytes = 1;
  ResultCache rc(options);
  AttrSet schema({0});
  for (int i = 0; i < 3; ++i) {
    Relation r(schema);
    r.AddRow({i});
    ResultKey key;
    key.a = Fingerprint{static_cast<uint64_t>(i), 0};
    key.b = Fingerprint{0, static_cast<uint64_t>(i)};
    rc.Put(key, ResultCache::Value{r, Program::Stats{}});
  }
  const ResultCacheStats stats = rc.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 2u);
}

TEST(ResultCacheTest, DuplicatePutKeepsTheIncumbentAndClearResets) {
  // Two racing misses may both compute and Put the same key; the second
  // insert only refreshes recency (both values are bit-identical by
  // construction, so keeping the incumbent is free and never grows bytes).
  ResultCache rc;
  AttrSet schema({0});
  ResultKey key;
  key.a = Fingerprint{1, 2};
  key.b = Fingerprint{3, 4};
  Relation first(schema);
  first.AddRow({7});
  Program::Stats stats;
  stats.result_rows = 1;
  rc.Put(key, ResultCache::Value{first, stats});
  Relation second(schema);
  second.AddRow({7});
  rc.Put(key, ResultCache::Value{second, stats});
  EXPECT_EQ(rc.stats().entries, 1u);
  std::optional<ResultCache::Value> got = rc.Get(key);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->result.IdenticalTo(first));
  rc.Clear();
  EXPECT_EQ(rc.stats().entries, 0u);
  EXPECT_FALSE(rc.Get(key).has_value());
}

TEST(ResultCacheTest, GlobalIsOneProcessWideInstance) {
  EXPECT_EQ(&ResultCache::Global(), &ResultCache::Global());
}

}  // namespace
}  // namespace cache
}  // namespace gyo
