#include "tableau/minimize.h"

#include <gtest/gtest.h>

#include "gyo/acyclic.h"
#include "schema/generators.h"
#include "schema/parse.h"
#include "tableau/containment.h"
#include "util/rng.h"

namespace gyo {
namespace {

class MinimizeTest : public ::testing::Test {
 protected:
  Catalog catalog_;
};

TEST_F(MinimizeTest, TriangleIsAlreadyMinimal) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,ca");
  Tableau t = Tableau::Standard(d, d.Universe());
  Tableau m = Minimize(t);
  EXPECT_EQ(m.NumRows(), 3);
}

TEST_F(MinimizeTest, SubsetRowsFold) {
  DatabaseSchema d = ParseSchema(catalog_, "abc,ab,bc");
  Tableau t = Tableau::Standard(d, ParseAttrSet(catalog_, "abc"));
  Tableau m = Minimize(t);
  EXPECT_EQ(m.NumRows(), 1);
  EXPECT_EQ(m.RowOrigin(0), 0);  // the abc row survives
}

TEST_F(MinimizeTest, Sec6ExampleMinimizesToThreeRows) {
  DatabaseSchema d = ParseSchema(catalog_, "abg,bcg,acf,ad,de,ea");
  Tableau t = Tableau::Standard(d, ParseAttrSet(catalog_, "abc"));
  Tableau m = Minimize(t);
  EXPECT_EQ(m.NumRows(), 3);
  // The survivors are the rows of abg, bcg, acf.
  std::vector<int> origins = m.RowOrigins();
  std::sort(origins.begin(), origins.end());
  EXPECT_EQ(origins, (std::vector<int>{0, 1, 2}));
}

TEST_F(MinimizeTest, ResultIsEquivalentToInput) {
  Rng rng(131);
  for (int trial = 0; trial < 60; ++trial) {
    DatabaseSchema d = RandomSchema(2 + static_cast<int>(rng.Below(5)),
                                    2 + static_cast<int>(rng.Below(6)),
                                    1 + static_cast<int>(rng.Below(4)), rng);
    AttrSet x;
    d.Universe().ForEach([&](AttrId a) {
      if (rng.Chance(0.4)) x.Insert(a);
    });
    Tableau t = Tableau::Standard(d, x);
    Tableau m = Minimize(t);
    EXPECT_LE(m.NumRows(), t.NumRows());
    EXPECT_TRUE(AreEquivalent(t, m)) << "trial " << trial;
  }
}

TEST_F(MinimizeTest, MinimizationIsIdempotent) {
  Rng rng(137);
  for (int trial = 0; trial < 40; ++trial) {
    DatabaseSchema d = RandomSchema(2 + static_cast<int>(rng.Below(5)),
                                    2 + static_cast<int>(rng.Below(6)),
                                    1 + static_cast<int>(rng.Below(3)), rng);
    Tableau m = Minimize(Tableau::Standard(d, AttrSet()));
    Tableau mm = Minimize(m);
    EXPECT_EQ(m.NumRows(), mm.NumRows()) << "trial " << trial;
  }
}

TEST_F(MinimizeTest, MinimalTableauxAreIsomorphicAcrossRowOrders) {
  // Lemma 3.4: any two minimal tableaux for the same query are isomorphic.
  // We minimize the same tableau with rows presented in different orders.
  DatabaseSchema d = ParseSchema(catalog_, "abg,bcg,acf,ad,de,ea");
  AttrSet x = ParseAttrSet(catalog_, "abc");
  Tableau t = Tableau::Standard(d, x);
  Tableau m1 = Minimize(t);
  Tableau m2 = Minimize(t.SelectRows({5, 4, 3, 2, 1, 0}));
  EXPECT_TRUE(AreIsomorphic(m1, m2));
}

TEST_F(MinimizeTest, EmptyTargetAlwaysMinimizesToOneRow) {
  // With X = ∅ there are no distinguished variables, so the constant map
  // onto any single row is a containment mapping: every Tab(D, ∅) folds to
  // one row — even for cyclic schemas.
  for (const DatabaseSchema& d : {PathSchema(5), Aring(4), Aclique(4)}) {
    Tableau m = Minimize(Tableau::Standard(d, AttrSet()));
    EXPECT_EQ(m.NumRows(), 1);
  }
}

TEST_F(MinimizeTest, RingWithFullTargetStaysWhole) {
  // With X = U every variable is distinguished; an Aring row can only map to
  // itself, so nothing folds.
  DatabaseSchema d = Aring(4);
  Tableau m = Minimize(Tableau::Standard(d, d.Universe()));
  EXPECT_EQ(m.NumRows(), 4);
}

TEST_F(MinimizeTest, SingleRowTableauUntouched) {
  DatabaseSchema d = ParseSchema(catalog_, "abc");
  Tableau t = Tableau::Standard(d, ParseAttrSet(catalog_, "ab"));
  EXPECT_EQ(Minimize(t).NumRows(), 1);
}

}  // namespace
}  // namespace gyo
