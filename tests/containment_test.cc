#include "tableau/containment.h"

#include <gtest/gtest.h>

#include "schema/parse.h"
#include "tableau/tableau.h"

namespace gyo {
namespace {

class ContainmentTest : public ::testing::Test {
 protected:
  Catalog catalog_;
};

TEST_F(ContainmentTest, IdentityMappingAlwaysExists) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,ca");
  Tableau t = Tableau::Standard(d, ParseAttrSet(catalog_, "ab"));
  auto m = FindContainmentMapping(t, t);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->size(), 3u);
}

TEST_F(ContainmentTest, SubtableauMapsIntoFullTableau) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,cd");
  Tableau t = Tableau::Standard(d, ParseAttrSet(catalog_, "ab"));
  Tableau sub = t.SelectRows({0, 1});
  EXPECT_TRUE(FindContainmentMapping(sub, t).has_value());
}

TEST_F(ContainmentTest, RedundantSubsetRowFolds) {
  // D = (abc, ab): the ab-row maps into the abc-row (its cells are the
  // shared/distinguished symbols of abc's row where they overlap).
  DatabaseSchema d = ParseSchema(catalog_, "abc,ab");
  Tableau t = Tableau::Standard(d, ParseAttrSet(catalog_, "abc"));
  Tableau just_abc = t.SelectRows({0});
  EXPECT_TRUE(FindContainmentMapping(t, just_abc).has_value());
}

TEST_F(ContainmentTest, DistinguishedMustBePreserved) {
  // D = (ab), D' = (b): the a-distinguished cell cannot map anywhere.
  DatabaseSchema d = ParseSchema(catalog_, "ab,b");
  Tableau t = Tableau::Standard(d, ParseAttrSet(catalog_, "ab"));
  Tableau only_b = t.SelectRows({1});
  EXPECT_FALSE(FindContainmentMapping(t, only_b).has_value());
}

TEST_F(ContainmentTest, SharedSymbolForcesConsistentTargets) {
  // D = (ab, bc) with X = ac: rows share the b-variable. Mapping row 0
  // somewhere fixes where row 1's b must go.
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,abc");
  AttrSet x = ParseAttrSet(catalog_, "ac");
  Tableau t = Tableau::Standard(d, x);
  // Rows {ab, bc} fold into row {abc}: b'-symbol maps to abc's b-symbol
  // consistently, a and c distinguished match.
  Tableau target = t.SelectRows({2});
  Tableau source = t.SelectRows({0, 1});
  EXPECT_TRUE(FindContainmentMapping(source, target).has_value());
}

TEST_F(ContainmentTest, TriangleDoesNotFoldToTwoRows) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,ca");
  Tableau t = Tableau::Standard(d, d.Universe());
  for (int drop = 0; drop < 3; ++drop) {
    std::vector<int> keep;
    for (int i = 0; i < 3; ++i) {
      if (i != drop) keep.push_back(i);
    }
    EXPECT_FALSE(FindContainmentMapping(t, t.SelectRows(keep)).has_value());
  }
}

TEST_F(ContainmentTest, EquivalenceAcrossDifferentSchemas) {
  // (abc, ab, bc) with target abc is equivalent to (abc) alone: the subset
  // rows fold away (Lemma 3.2 direction).
  DatabaseSchema d1 = ParseSchema(catalog_, "abc,ab,bc");
  DatabaseSchema d2 = ParseSchema(catalog_, "abc");
  AttrSet x = ParseAttrSet(catalog_, "abc");
  Tableau t1 = Tableau::Standard(d1, x);
  Tableau t2 = Tableau::Standard(d2, x);
  EXPECT_TRUE(AreEquivalent(t1, t2));
}

TEST_F(ContainmentTest, NonEquivalentQueries) {
  // (ab, bc) vs (abc) with target abc: (ab, bc) cannot reproduce abc's
  // constraint over universal databases... it CAN be mapped into, but not
  // back: Tab((abc)) has one row all-distinguished; Tab((ab,bc)) has no row
  // with a, b, c all distinguished.
  DatabaseSchema d1 = ParseSchema(catalog_, "ab,bc");
  DatabaseSchema d2 = ParseSchema(catalog_, "abc");
  AttrSet x = ParseAttrSet(catalog_, "abc");
  Tableau t1 = Tableau::Standard(d1, x);
  Tableau t2 = Tableau::Standard(d2, x);
  EXPECT_FALSE(AreEquivalent(t1, t2));
  // One direction does exist: t2's row maps... it cannot (no target row has
  // all three distinguished), while each t1 row maps into t2's row.
  Tableau a = t1;
  Tableau b = t2;
  Tableau::Align(a, b);
  EXPECT_TRUE(FindContainmentMapping(a, b).has_value());
  EXPECT_FALSE(FindContainmentMapping(b, a).has_value());
}

TEST_F(ContainmentTest, IsomorphismReflexive) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,ca");
  Tableau t = Tableau::Standard(d, ParseAttrSet(catalog_, "ab"));
  EXPECT_TRUE(AreIsomorphic(t, t));
}

TEST_F(ContainmentTest, IsomorphismUnderRowPermutation) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc,cd");
  Tableau t = Tableau::Standard(d, ParseAttrSet(catalog_, "ad"));
  Tableau p = t.SelectRows({2, 0, 1});
  EXPECT_TRUE(AreIsomorphic(t, p));
}

TEST_F(ContainmentTest, DifferentRowCountsNotIsomorphic) {
  DatabaseSchema d = ParseSchema(catalog_, "ab,bc");
  Tableau t = Tableau::Standard(d, ParseAttrSet(catalog_, "ab"));
  EXPECT_FALSE(AreIsomorphic(t, t.SelectRows({0})));
}

TEST_F(ContainmentTest, EquivalentButNotIsomorphic) {
  // (abc, ab) vs (abc): equivalent (the ab row folds), but not isomorphic
  // (different row counts).
  DatabaseSchema d1 = ParseSchema(catalog_, "abc,ab");
  DatabaseSchema d2 = ParseSchema(catalog_, "abc");
  AttrSet x = ParseAttrSet(catalog_, "a");
  Tableau t1 = Tableau::Standard(d1, x);
  Tableau t2 = Tableau::Standard(d2, x);
  EXPECT_TRUE(AreEquivalent(t1, t2));
  EXPECT_FALSE(AreIsomorphic(t1, t2));
}

TEST_F(ContainmentTest, EmptyTableauMapsAnywhere) {
  DatabaseSchema d = ParseSchema(catalog_, "ab");
  Tableau t = Tableau::Standard(d, ParseAttrSet(catalog_, "a"));
  Tableau empty = t.SelectRows({});
  EXPECT_TRUE(FindContainmentMapping(empty, t).has_value());
  EXPECT_FALSE(FindContainmentMapping(t, empty).has_value());
}

}  // namespace
}  // namespace gyo
