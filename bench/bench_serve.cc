// Query service (serve/): end-to-end latency through gyo_serve's full stack
// — framing, the IO thread, admission, pool execution, response flush —
// over loopback TCP, as a function of offered load.
//
//   * MultiClient: Arg(0) concurrent connections, each a persistent client
//     issuing Yannakakis path queries back-to-back against one
//     2-thread/2-slot pool. p50_ms / p99_ms are per-request wall latencies
//     (computed from the recorded per-query samples, not the iteration
//     mean), so the p99-vs-load curve reads directly off the report. The
//     `queries` and `result_rows` counters are seeded, deterministic
//     cardinalities — pinned by check_bench_counters.py, so a drift in
//     served results fails the bench gate exactly like a direct-execution
//     drift.
//   * Overload: 8 connections hammer a deliberately tiny pool (1 slot,
//     backlog bound 2, shared submitter, 1 ms deadlines). requests_shed
//     counts the typed kDeadlineExceeded / kBacklogFull replies; the
//     counter check pins its sign — an overloaded server that stops
//     shedding has lost its backpressure, which is the regression this
//     bench exists to catch. requests_ok + requests_shed always equals
//     requests_offered: overload must never produce a hang, a crash, or an
//     untyped failure.
//
// Times are wall-clock (UseRealTime): the work happens on server workers
// and pool threads, not the benchmark thread.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/executor_pool.h"
#include "rel/universal.h"
#include "schema/parse.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/rng.h"

namespace gyo {
namespace serve {
namespace {

constexpr const char* kSchemaSpec = "ab,bc,cd";
constexpr const char* kTargetSpec = "ad";

// Key-like data (domain ≫ rows), matching the bench_exec methodology.
QueryRequest MakeRequest(int rows, uint64_t seed) {
  Catalog catalog;
  DatabaseSchema d = ParseSchema(catalog, kSchemaSpec);
  Rng rng(seed);
  QueryRequest request;
  request.schema_spec = kSchemaSpec;
  request.target_spec = kTargetSpec;
  request.states = ProjectDatabase(
      RandomUniversal(d.Universe(), rows, 16 * rows, rng), d);
  return request;
}

double PercentileMs(std::vector<double>& samples_ms, double p) {
  if (samples_ms.empty()) return 0.0;
  std::sort(samples_ms.begin(), samples_ms.end());
  const double index = p * static_cast<double>(samples_ms.size() - 1);
  return samples_ms[static_cast<size_t>(std::lround(index))];
}

// An in-process daemon on its own pool, plus one persistent connection per
// simulated client. Connections outlive the timing loop, so the measured
// path is request -> response, not connect().
struct BenchServer {
  BenchServer(int pool_threads, int max_concurrent, int backlog_bound,
              int num_clients) {
    exec::ExecutorPool::Options pool_options;
    pool_options.threads = pool_threads;
    pool_options.max_concurrent_queries = max_concurrent;
    pool_options.max_waiting_per_submitter = backlog_bound;
    pool = std::make_unique<exec::ExecutorPool>(pool_options);
    ServerOptions options;
    options.pool = pool.get();
    server = std::make_unique<Server>(options);
    std::string error;
    if (!server->Start(&error)) {
      std::fprintf(stderr, "bench server failed to start: %s\n",
                   error.c_str());
      std::abort();
    }
    clients.resize(static_cast<size_t>(num_clients));
    for (auto& client : clients) {
      if (!client.Connect("127.0.0.1", server->port())) {
        std::fprintf(stderr, "bench client failed to connect: %s\n",
                     client.io_error().c_str());
        std::abort();
      }
    }
  }

  ~BenchServer() {
    clients.clear();  // close before the drain so the server exits promptly
    server->RequestDrain();
    server->Wait();
  }

  std::unique_ptr<exec::ExecutorPool> pool;
  std::unique_ptr<Server> server;
  std::vector<Client> clients;
};

// Arg(0) concurrent connections; every client sends kQueriesPerClient
// queries per iteration, each timed individually.
void BM_Serve_MultiClient(benchmark::State& state) {
  constexpr int kQueriesPerClient = 2;
  constexpr int kRows = 400;
  const int num_clients = static_cast<int>(state.range(0));
  BenchServer bench(/*pool_threads=*/2, /*max_concurrent=*/2,
                    /*backlog_bound=*/0, num_clients);
  const QueryRequest request = MakeRequest(kRows, /*seed=*/17);

  int64_t result_rows = -1;
  std::vector<double> latencies_ms;
  std::mutex mu;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    for (int c = 0; c < num_clients; ++c) {
      threads.emplace_back([&, c] {
        std::vector<double> local_ms;
        int64_t local_rows = -1;
        for (int q = 0; q < kQueriesPerClient; ++q) {
          const auto start = std::chrono::steady_clock::now();
          QueryResponse response;
          if (bench.clients[static_cast<size_t>(c)].Query(
                  request, &response) != Client::Outcome::kOk) {
            std::fprintf(stderr, "bench query failed\n");
            std::abort();
          }
          local_ms.push_back(std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - start)
                                 .count());
          local_rows = response.stats.result_rows;
        }
        std::lock_guard<std::mutex> lock(mu);
        latencies_ms.insert(latencies_ms.end(), local_ms.begin(),
                            local_ms.end());
        result_rows = local_rows;
      });
    }
    for (std::thread& t : threads) t.join();
  }

  state.counters["queries"] =
      static_cast<double>(num_clients * kQueriesPerClient);
  state.counters["result_rows"] = static_cast<double>(result_rows);
  state.counters["p50_ms"] = PercentileMs(latencies_ms, 0.50);
  state.counters["p99_ms"] = PercentileMs(latencies_ms, 0.99);
}
BENCHMARK(BM_Serve_MultiClient)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Offered load far beyond capacity: every request either completes or comes
// back as a typed shed, and under this geometry (8 clients, 1 slot, shared
// submitter with backlog 2, 1 ms deadline) sheds must occur.
void BM_Serve_Overload(benchmark::State& state) {
  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 2;
  constexpr int kRows = 1500;
  BenchServer bench(/*pool_threads=*/1, /*max_concurrent=*/1,
                    /*backlog_bound=*/2, kClients);
  QueryRequest request = MakeRequest(kRows, /*seed=*/23);
  request.deadline_ms = 1;
  request.submitter = 777;  // one shared fairness class saturates its quota

  int64_t offered = 0, ok = 0, shed = 0, other = 0;
  std::vector<double> latencies_ms;
  std::mutex mu;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        int64_t local_ok = 0, local_shed = 0, local_other = 0;
        std::vector<double> local_ms;
        for (int q = 0; q < kQueriesPerClient; ++q) {
          const auto start = std::chrono::steady_clock::now();
          QueryResponse response;
          const Client::Outcome outcome =
              bench.clients[static_cast<size_t>(c)].Query(request, &response);
          local_ms.push_back(std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - start)
                                 .count());
          if (outcome == Client::Outcome::kOk) {
            ++local_ok;
          } else if (outcome == Client::Outcome::kServerError &&
                     (bench.clients[static_cast<size_t>(c)]
                              .server_error()
                              .code == ErrorCode::kDeadlineExceeded ||
                      bench.clients[static_cast<size_t>(c)]
                              .server_error()
                              .code == ErrorCode::kBacklogFull)) {
            ++local_shed;
          } else {
            ++local_other;  // would make ok+shed != offered below
          }
        }
        std::lock_guard<std::mutex> lock(mu);
        ok += local_ok;
        shed += local_shed;
        other += local_other;
        offered += kQueriesPerClient;
        latencies_ms.insert(latencies_ms.end(), local_ms.begin(),
                            local_ms.end());
      });
    }
    for (std::thread& t : threads) t.join();
  }

  state.counters["requests_offered"] = static_cast<double>(offered);
  state.counters["requests_ok"] = static_cast<double>(ok);
  state.counters["requests_shed"] = static_cast<double>(shed);
  state.counters["requests_failed"] = static_cast<double>(other);
  state.counters["p50_ms"] = PercentileMs(latencies_ms, 0.50);
  state.counters["p99_ms"] = PercentileMs(latencies_ms, 0.99);
}
BENCHMARK(BM_Serve_Overload)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace serve
}  // namespace gyo
