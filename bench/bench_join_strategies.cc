// P6 / E7 / E14 / E15 — query evaluation strategies on UR databases:
//   * full join then project (§4 baseline),
//   * CC-pruned join (§6: drop irrelevant relations / useless columns),
//   * Yannakakis semijoin evaluation (tree schemas),
//   * tree-projection evaluation (cyclic schemas, Thms 6.1/6.2).
// The expected shape: CC-pruning wins when irrelevant appendages exist;
// Yannakakis wins when intermediate joins would blow up; the TP program
// makes cyclic queries tractable at the cost of building arc hosts.

#include <benchmark/benchmark.h>

#include "rel/ops.h"
#include "rel/solver.h"
#include "rel/universal.h"
#include "schema/fixtures.h"
#include "schema/generators.h"
#include "util/rng.h"

namespace gyo {
namespace {

// Key-like data (domain ≫ rows) keeps the full-join baseline feasible even
// over long join chains — the per-join growth factor is 1 + rows/domain; the
// strategy gaps come from the number of joins and the width/count of
// intermediate results, not from a deliberately exploding join.
std::vector<Relation> MakeUR(const DatabaseSchema& d, int rows,
                             uint64_t seed) {
  Rng rng(seed);
  Relation universal = RandomUniversal(d.Universe(), rows, 16 * rows, rng);
  return ProjectDatabase(universal, d);
}


// Attaches the program's intermediate-size statistics as benchmark counters
// (machine-independent evidence for the strategy comparisons).
void ReportStats(benchmark::State& state, const Program& p,
                 const std::vector<Relation>& states) {
  Program::Stats stats;
  p.ExecuteWithStats(states, &stats);
  state.counters["max_intermediate"] =
      static_cast<double>(stats.max_intermediate_rows);
  state.counters["result_rows"] = static_cast<double>(stats.result_rows);
}

// --- Workload A: §6-style — small core + irrelevant appendage chain. ---

DatabaseSchema AppendageSchema(int appendage) {
  DatabaseSchema d;
  d.Add(AttrSet{0, 1});
  d.Add(AttrSet{1, 2});
  for (int i = 0; i < appendage; ++i) d.Add(AttrSet{2 + i, 3 + i});
  return d;
}

void BM_Appendage_FullJoin(benchmark::State& state) {
  DatabaseSchema d = AppendageSchema(static_cast<int>(state.range(0)));
  AttrSet x{0, 2};
  Program p = FullJoinProgram(d, x);
  std::vector<Relation> states = MakeUR(d, 256, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.Run(states));
  }
  ReportStats(state, p, states);
}
BENCHMARK(BM_Appendage_FullJoin)->RangeMultiplier(2)->Range(2, 32);

void BM_Appendage_CCPruned(benchmark::State& state) {
  DatabaseSchema d = AppendageSchema(static_cast<int>(state.range(0)));
  AttrSet x{0, 2};
  Program p = CCPrunedProgram(d, x);
  std::vector<Relation> states = MakeUR(d, 256, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.Run(states));
  }
  ReportStats(state, p, states);
}
BENCHMARK(BM_Appendage_CCPruned)->RangeMultiplier(2)->Range(2, 32);

// --- Workload B: star schema, selective target — Yannakakis vs full join. ---

void BM_Star_FullJoin(benchmark::State& state) {
  int leaves = static_cast<int>(state.range(0));
  DatabaseSchema d = StarSchema(leaves);
  AttrSet x{0, 1};
  Program p = FullJoinProgram(d, x);
  std::vector<Relation> states = MakeUR(d, 128, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.Run(states));
  }
  ReportStats(state, p, states);
}
BENCHMARK(BM_Star_FullJoin)->RangeMultiplier(2)->Range(2, 16);

void BM_Star_Yannakakis(benchmark::State& state) {
  int leaves = static_cast<int>(state.range(0));
  DatabaseSchema d = StarSchema(leaves);
  AttrSet x{0, 1};
  Program p = *YannakakisProgram(d, x);
  std::vector<Relation> states = MakeUR(d, 128, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.Run(states));
  }
  ReportStats(state, p, states);
}
BENCHMARK(BM_Star_Yannakakis)->RangeMultiplier(2)->Range(2, 16);

// --- Workload C: path schema, endpoints target. ---

void BM_Path_FullJoin(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  DatabaseSchema d = PathSchema(n + 1);
  AttrSet x{0, n};
  Program p = FullJoinProgram(d, x);
  std::vector<Relation> states = MakeUR(d, 256, 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.Run(states));
  }
  ReportStats(state, p, states);
}
BENCHMARK(BM_Path_FullJoin)->RangeMultiplier(2)->Range(2, 16);

void BM_Path_Yannakakis(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  DatabaseSchema d = PathSchema(n + 1);
  AttrSet x{0, n};
  Program p = *YannakakisProgram(d, x);
  std::vector<Relation> states = MakeUR(d, 256, 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.Run(states));
  }
  ReportStats(state, p, states);
}
BENCHMARK(BM_Path_Yannakakis)->RangeMultiplier(2)->Range(2, 16);

// --- Workload D: the 8-ring through the §3.2 arc hosts (E3/E15). ---

void BM_Ring8_FullJoin(benchmark::State& state) {
  Catalog catalog;
  DatabaseSchema d = fixtures::Sec32D(catalog);
  AttrSet x = d[0].Union(d[4]);  // attributes of two opposite edges
  Program p = FullJoinProgram(d, x);
  std::vector<Relation> states =
      MakeUR(d, static_cast<int>(state.range(0)), 19);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.Run(states));
  }
  ReportStats(state, p, states);
}
BENCHMARK(BM_Ring8_FullJoin)->RangeMultiplier(4)->Range(16, 256);

void BM_Ring8_TreeProjection(benchmark::State& state) {
  Catalog catalog;
  DatabaseSchema d = fixtures::Sec32D(catalog);
  AttrSet x = d[0].Union(d[4]);
  DatabaseSchema bags;
  AttrSet arc1;
  AttrSet arc2;
  for (int i = 0; i <= 4; ++i) arc1.Insert(i);
  for (int i = 4; i <= 8; ++i) arc2.Insert(i % 8);
  bags.Add(arc1.Union(x));
  bags.Add(arc2.Union(x));
  Program p = *TreeProjectionProgram(d, x, bags);
  std::vector<Relation> states =
      MakeUR(d, static_cast<int>(state.range(0)), 19);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.Run(states));
  }
  ReportStats(state, p, states);
}
BENCHMARK(BM_Ring8_TreeProjection)->RangeMultiplier(4)->Range(16, 256);

}  // namespace
}  // namespace gyo
