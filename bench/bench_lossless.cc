// P5 / E9–E11 — lossless-join decisions: the Theorem 5.1 CC-based test and
// the Corollary 5.2 subtree fast path, against the cost of empirical
// validation on data (which the theorems make unnecessary).

#include <benchmark/benchmark.h>

#include "gyo/qual_graph.h"
#include "query/lossless.h"
#include "rel/universal.h"
#include "schema/generators.h"
#include "util/rng.h"

namespace gyo {
namespace {

// D' = a contiguous half of a path schema.
std::vector<int> HalfIndices(int n) {
  std::vector<int> idx;
  for (int i = 0; i < n / 2; ++i) idx.push_back(i);
  return idx;
}

void BM_Lossless_CCDecision_Path(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  DatabaseSchema d = PathSchema(n + 1);
  DatabaseSchema dprime = d.Select(HalfIndices(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(JoinDependencyImplies(d, dprime));
  }
}
BENCHMARK(BM_Lossless_CCDecision_Path)->RangeMultiplier(4)->Range(8, 512);

void BM_Lossless_SubtreeFastPath_Path(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  DatabaseSchema d = PathSchema(n + 1);
  std::vector<int> idx = HalfIndices(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LosslessInTreeSchema(d, idx));
  }
}
BENCHMARK(BM_Lossless_SubtreeFastPath_Path)->RangeMultiplier(4)->Range(8, 512);

void BM_Lossless_CCDecision_RandomTree(benchmark::State& state) {
  Rng rng(static_cast<uint64_t>(state.range(0)) + 29);
  int n = static_cast<int>(state.range(0));
  DatabaseSchema d = RandomTreeSchema(n, 4, rng).schema;
  std::vector<int> idx;
  for (int i = 0; i < n; i += 2) idx.push_back(i);
  DatabaseSchema dprime = d.Select(idx);
  for (auto _ : state) {
    benchmark::DoNotOptimize(JoinDependencyImplies(d, dprime));
  }
}
BENCHMARK(BM_Lossless_CCDecision_RandomTree)->RangeMultiplier(4)->Range(8, 256);

// What the theorems buy: checking losslessness on a single random model is
// already far costlier than the syntactic decision, and proves nothing.
void BM_Lossless_EmpiricalOneModel_Path(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  DatabaseSchema d = PathSchema(n + 1);
  DatabaseSchema dprime = d.Select(HalfIndices(n));
  Rng rng(31);
  // Key-like data (large domain) keeps the jd closure from exploding; the
  // point is the per-model cost, which already dwarfs the syntactic test.
  Relation model = RandomModelOfJd(d, 256, 16384, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(JdHolds(model, dprime));
  }
}
BENCHMARK(BM_Lossless_EmpiricalOneModel_Path)->RangeMultiplier(2)->Range(8, 64);

void BM_Lossless_CCDecision_RingSubset(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  DatabaseSchema d = Aring(n);
  std::vector<int> idx;
  for (int i = 0; i + 1 < n; ++i) idx.push_back(i);  // ring minus one edge
  DatabaseSchema dprime = d.Select(idx);
  for (auto _ : state) {
    benchmark::DoNotOptimize(JoinDependencyImplies(d, dprime));
  }
}
BENCHMARK(BM_Lossless_CCDecision_RingSubset)->DenseRange(4, 10, 2);

}  // namespace
}  // namespace gyo
