// P8 / E3 — tree-projection search: cost of finding D'' ∈ TP(D', D) on
// n-rings with arc hosts (the §3.2 example generalized), and verification
// cost.

#include <benchmark/benchmark.h>

#include "query/tree_projection.h"
#include "schema/generators.h"

namespace gyo {
namespace {

// An n-ring with two overlapping arc hosts (always admits a projection).
struct RingInstance {
  DatabaseSchema d;
  DatabaseSchema dp;
};

RingInstance TwoArcRing(int n) {
  RingInstance out;
  out.d = Aring(n);
  AttrSet arc1;
  AttrSet arc2;
  for (int i = 0; i <= n / 2; ++i) arc1.Insert(i);
  for (int i = n / 2; i <= n; ++i) arc2.Insert(i % n);
  out.dp.Add(arc1);
  out.dp.Add(arc2);
  return out;
}

// An n-ring hosted only by itself (no projection exists).
void BM_TP_Search_TwoArcRing(benchmark::State& state) {
  RingInstance inst = TwoArcRing(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindTreeProjection(inst.dp, inst.d));
  }
}
BENCHMARK(BM_TP_Search_TwoArcRing)->DenseRange(4, 12, 2);

void BM_TP_Search_RingNoProjection(benchmark::State& state) {
  DatabaseSchema d = Aring(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindTreeProjection(d, d));
  }
}
BENCHMARK(BM_TP_Search_RingNoProjection)->DenseRange(4, 12, 2);

// Four arc hosts: a larger pool and deeper cover search.
void BM_TP_Search_FourArcRing(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  DatabaseSchema d = Aring(n);
  DatabaseSchema dp;
  int quarter = n / 4;
  for (int q = 0; q < 4; ++q) {
    AttrSet arc;
    for (int i = q * quarter; i <= (q + 1) * quarter; ++i) {
      arc.Insert(i % n);
    }
    // Close the last arc back to 0.
    if (q == 3) {
      for (int i = 3 * quarter; i <= n; ++i) arc.Insert(i % n);
    }
    dp.Add(arc);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindTreeProjection(dp, d));
  }
}
BENCHMARK(BM_TP_Search_FourArcRing)->DenseRange(8, 12, 4);

void BM_TP_Verify(benchmark::State& state) {
  RingInstance inst = TwoArcRing(static_cast<int>(state.range(0)));
  TreeProjectionResult r = FindTreeProjection(inst.dp, inst.d);
  DatabaseSchema dpp = *r.projection;
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsTreeProjection(dpp, inst.dp, inst.d));
  }
}
BENCHMARK(BM_TP_Verify)->DenseRange(4, 12, 4);

}  // namespace
}  // namespace gyo
