// E15b / P6 companion — semijoin reduction on non-UR databases: the tree
// full reducer (2(n−1) semijoins) vs the generic pairwise semijoin fixpoint,
// plus the global-consistency check they are measured against.

#include <benchmark/benchmark.h>

#include "rel/reducer.h"
#include "rel/universal.h"
#include "schema/generators.h"
#include "util/rng.h"

namespace gyo {
namespace {

// Independent random edge states (dangle-heavy, non-UR).
std::vector<Relation> DanglingStates(const DatabaseSchema& d, int rows,
                                     uint64_t seed) {
  Rng rng(seed);
  return RandomStates(d, rows, 64, rng);
}

void BM_FullReducer_Path(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  DatabaseSchema d = PathSchema(n + 1);
  std::vector<Relation> states = DanglingStates(d, 256, 37);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApplyFullReducer(d, states));
  }
}
BENCHMARK(BM_FullReducer_Path)->RangeMultiplier(2)->Range(4, 64);

void BM_SemijoinFixpoint_Path(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  DatabaseSchema d = PathSchema(n + 1);
  std::vector<Relation> states = DanglingStates(d, 256, 37);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SemijoinFixpoint(d, states));
  }
}
BENCHMARK(BM_SemijoinFixpoint_Path)->RangeMultiplier(2)->Range(4, 64);

void BM_ConsistencyCheck_Path(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  DatabaseSchema d = PathSchema(n + 1);
  std::vector<Relation> states = DanglingStates(d, 64, 41);
  auto reduced = ApplyFullReducer(d, states);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsGloballyConsistent(d, *reduced));
  }
}
BENCHMARK(BM_ConsistencyCheck_Path)->RangeMultiplier(2)->Range(4, 16);

void BM_SemijoinFixpoint_Ring(benchmark::State& state) {
  // Cyclic schemas: the fixpoint may loop several sweeps without ever
  // reaching consistency.
  int n = static_cast<int>(state.range(0));
  DatabaseSchema d = Aring(n);
  std::vector<Relation> states = DanglingStates(d, 256, 43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SemijoinFixpoint(d, states));
  }
}
BENCHMARK(BM_SemijoinFixpoint_Ring)->RangeMultiplier(2)->Range(4, 32);

}  // namespace
}  // namespace gyo
