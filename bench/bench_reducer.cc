// E15b / P6 companion — semijoin reduction on non-UR databases: the tree
// full reducer (2(n−1) semijoins) vs the generic pairwise semijoin fixpoint,
// plus the global-consistency check they are measured against.

#include <benchmark/benchmark.h>

#include "rel/reducer.h"
#include "schema/generators.h"
#include "util/rng.h"

namespace gyo {
namespace {

// Independent random edge states over a path (dangle-heavy, non-UR).
std::vector<Relation> RandomPathStates(int n, int rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<Relation> states;
  for (int i = 0; i < n; ++i) {
    Relation rel(AttrSet{i, i + 1});
    for (int k = 0; k < rows; ++k) {
      rel.AddRow({static_cast<Value>(rng.Below(64)),
                  static_cast<Value>(rng.Below(64))});
    }
    rel.Canonicalize();
    states.push_back(std::move(rel));
  }
  return states;
}

void BM_FullReducer_Path(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  DatabaseSchema d = PathSchema(n + 1);
  std::vector<Relation> states = RandomPathStates(n, 256, 37);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApplyFullReducer(d, states));
  }
}
BENCHMARK(BM_FullReducer_Path)->RangeMultiplier(2)->Range(4, 64);

void BM_SemijoinFixpoint_Path(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  DatabaseSchema d = PathSchema(n + 1);
  std::vector<Relation> states = RandomPathStates(n, 256, 37);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SemijoinFixpoint(d, states));
  }
}
BENCHMARK(BM_SemijoinFixpoint_Path)->RangeMultiplier(2)->Range(4, 64);

void BM_ConsistencyCheck_Path(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  DatabaseSchema d = PathSchema(n + 1);
  std::vector<Relation> states = RandomPathStates(n, 64, 41);
  auto reduced = ApplyFullReducer(d, states);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsGloballyConsistent(d, *reduced));
  }
}
BENCHMARK(BM_ConsistencyCheck_Path)->RangeMultiplier(2)->Range(4, 16);

void BM_SemijoinFixpoint_Ring(benchmark::State& state) {
  // Cyclic schemas: the fixpoint may loop several sweeps without ever
  // reaching consistency.
  int n = static_cast<int>(state.range(0));
  DatabaseSchema d = Aring(n);
  Rng rng(43);
  std::vector<Relation> states;
  for (int i = 0; i < n; ++i) {
    Relation rel(d[i]);
    for (int k = 0; k < 256; ++k) {
      rel.AddRow({static_cast<Value>(rng.Below(64)),
                  static_cast<Value>(rng.Below(64))});
    }
    rel.Canonicalize();
    states.push_back(std::move(rel));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SemijoinFixpoint(d, states));
  }
}
BENCHMARK(BM_SemijoinFixpoint_Ring)->RangeMultiplier(2)->Range(4, 32);

}  // namespace
}  // namespace gyo
