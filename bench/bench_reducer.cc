// E15b / P6 companion — semijoin reduction on non-UR databases: the tree
// full reducer (2(n−1) semijoins) vs the generic pairwise semijoin fixpoint,
// plus the global-consistency check they are measured against.
//
// Correctness counters (pinned by scripts/check_bench_counters.py):
// reduced_rows_r0 / fixpoint_rows_r0 are seeded result cardinalities,
// effective_steps the fixpoint's shrinking-semijoin count, retired_states
// the reducer's dataflow retirement count — all machine- and
// thread-count-independent. peak_state_bytes / peak_rss_mb are memory
// trend counters (unpinned): the retirement A/B reads directly off
// BM_FullReducerMemory_Path's two peak_state_bytes values.

#include <benchmark/benchmark.h>

#include <memory>

#include "exec/executor_pool.h"
#include "exec/physical_plan.h"
#include "mem_counters.h"
#include "rel/reducer.h"
#include "rel/solver.h"
#include "rel/universal.h"
#include "schema/generators.h"
#include "util/check.h"
#include "util/rng.h"

namespace gyo {
namespace {

// Independent random edge states (dangle-heavy, non-UR).
std::vector<Relation> DanglingStates(const DatabaseSchema& d, int rows,
                                     uint64_t seed) {
  Rng rng(seed);
  return RandomStates(d, rows, 64, rng);
}

void BM_FullReducer_Path(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  DatabaseSchema d = PathSchema(n + 1);
  // Fork-isolated RSS sample: one full workload pass in a child process,
  // before any loop iterations, so the counter reflects this family alone.
  const double peak_rss_mb = gyo_bench::ForkIsolatedPeakRssMb([&] {
    std::vector<Relation> child_states = DanglingStates(d, 256, 37);
    auto out = ApplyFullReducer(d, child_states);
    benchmark::DoNotOptimize(out);
  });
  std::vector<Relation> states = DanglingStates(d, 256, 37);
  exec::QueryStats query_stats;
  exec::ExecContext ctx;
  ctx.query_stats = &query_stats;
  int64_t reduced_rows = 0;
  for (auto _ : state) {
    auto out = ApplyFullReducer(d, states, ctx);
    reduced_rows = (*out)[0].NumRows();
    benchmark::DoNotOptimize(out);
  }
  state.counters["reduced_rows_r0"] = static_cast<double>(reduced_rows);
  gyo_bench::ReportMemCounters(state, query_stats, peak_rss_mb);
}
BENCHMARK(BM_FullReducer_Path)->RangeMultiplier(2)->Range(4, 64);

void BM_FullReducerMemory_Path(benchmark::State& state) {
  // The state-retirement A/B: the compiled full-reducer program executed
  // with retirement off (Arg 0: all 2(n−1) intermediate states stay alive
  // until the DAG drains) vs on (Arg 1: ApplyFullReducer's configuration —
  // states freed as their final consumer task retires). Compare the two
  // peak_state_bytes counters; rows are identical by construction.
  const bool retire = state.range(0) != 0;
  DatabaseSchema d = PathSchema(33);
  auto plan = FullReducerProgram(d);
  GYO_CHECK(plan.has_value());  // a path schema is a tree
  // Per-variant fork-isolated RSS: with the retirement A/B now sampled in
  // separate children, the Arg(1) row's peak_rss_mb can actually read lower
  // than Arg(0)'s (RUSAGE_SELF monotonicity used to forbid that).
  const double peak_rss_mb = gyo_bench::ForkIsolatedPeakRssMb([&] {
    std::vector<Relation> child_states = DanglingStates(d, 2048, 37);
    exec::ExecContext child_ctx;
    child_ctx.retire_consumed = retire;
    child_ctx.retain_states = retire ? &plan->final_ids : nullptr;
    std::vector<Relation> all =
        exec::Execute(plan->program, child_states, child_ctx);
    benchmark::DoNotOptimize(all);
  });
  std::vector<Relation> states = DanglingStates(d, 2048, 37);
  exec::QueryStats query_stats;
  exec::ExecContext ctx;
  ctx.query_stats = &query_stats;
  ctx.retire_consumed = retire;
  ctx.retain_states = retire ? &plan->final_ids : nullptr;
  int64_t reduced_rows = 0;
  for (auto _ : state) {
    std::vector<Relation> all = exec::Execute(plan->program, states, ctx);
    reduced_rows = all[static_cast<size_t>(plan->final_ids[0])].NumRows();
    benchmark::DoNotOptimize(all);
  }
  state.counters["reduced_rows_r0"] = static_cast<double>(reduced_rows);
  gyo_bench::ReportMemCounters(state, query_stats, peak_rss_mb);
}
BENCHMARK(BM_FullReducerMemory_Path)->Arg(0)->Arg(1);

void BM_SemijoinFixpoint_Path(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  DatabaseSchema d = PathSchema(n + 1);
  std::vector<Relation> states = DanglingStates(d, 256, 37);
  int steps = 0;
  int64_t rows = 0;
  for (auto _ : state) {
    std::vector<Relation> fix = SemijoinFixpoint(d, states, &steps);
    rows = fix[0].NumRows();
    benchmark::DoNotOptimize(fix);
  }
  state.counters["effective_steps"] = static_cast<double>(steps);
  state.counters["fixpoint_rows_r0"] = static_cast<double>(rows);
}
BENCHMARK(BM_SemijoinFixpoint_Path)->RangeMultiplier(2)->Range(4, 64);

void BM_SemijoinFixpointParallel_Path(benchmark::State& state) {
  // The task-wave fixpoint at 1/2/4/8 threads on one path shape: every
  // round's independent per-relation semijoin chains run as one wave
  // through the shared PhysicalPlan/scheduler path. Deterministic mode, so
  // the counters are identical at every width (and pinned).
  const int threads = static_cast<int>(state.range(0));
  DatabaseSchema d = PathSchema(17);
  // Key-like domain (≫ rows): at domain 64 the 4096-row states saturate the
  // value space and every semijoin is an identity (0 rounds); a sparse
  // domain keeps them dangle-heavy so the wave actually iterates.
  Rng rng(37);
  std::vector<Relation> states = RandomStates(d, 4096, 16 * 4096, rng);
  exec::ExecutorPool::Options options;
  options.threads = threads;
  exec::ExecutorPool pool(options);
  exec::QueryStats query_stats;
  exec::ExecContext ctx;
  ctx.threads = threads;
  ctx.pool = &pool;
  ctx.query_stats = &query_stats;
  // Below AutoMorselRows for 4096-row arity-2 states, so the kernels
  // actually split and the partitioned (Bloom-guarded) probe path engages
  // at threads > 1. The sparse domain makes most probe keys absent, so this
  // is the bench that demonstrates nonzero bloom_partition_skips.
  ctx.morsel_rows = 1024;
  int steps = 0;
  int64_t rows = 0;
  for (auto _ : state) {
    std::vector<Relation> fix = SemijoinFixpoint(d, states, ctx, &steps);
    rows = fix[0].NumRows();
    benchmark::DoNotOptimize(fix);
  }
  state.counters["effective_steps"] = static_cast<double>(steps);
  state.counters["fixpoint_rows_r0"] = static_cast<double>(rows);
  // SemijoinFixpoint rewrites query_stats each call, so these are one full
  // fixpoint's totals — iteration-count independent, hence pinnable.
  state.counters["bloom_partition_skips"] =
      static_cast<double>(query_stats.bloom_partition_skips);
  state.counters["probe_rows_pruned"] =
      static_cast<double>(query_stats.probe_rows_pruned);
}
BENCHMARK(BM_SemijoinFixpointParallel_Path)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_ConsistencyCheck_Path(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  DatabaseSchema d = PathSchema(n + 1);
  std::vector<Relation> states = DanglingStates(d, 64, 41);
  auto reduced = ApplyFullReducer(d, states);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsGloballyConsistent(d, *reduced));
  }
}
BENCHMARK(BM_ConsistencyCheck_Path)->RangeMultiplier(2)->Range(4, 16);

void BM_SemijoinFixpoint_Ring(benchmark::State& state) {
  // Cyclic schemas: the fixpoint may loop several rounds without ever
  // reaching consistency.
  int n = static_cast<int>(state.range(0));
  DatabaseSchema d = Aring(n);
  std::vector<Relation> states = DanglingStates(d, 256, 43);
  int steps = 0;
  int64_t rows = 0;
  for (auto _ : state) {
    std::vector<Relation> fix = SemijoinFixpoint(d, states, &steps);
    rows = fix[0].NumRows();
    benchmark::DoNotOptimize(fix);
  }
  state.counters["effective_steps"] = static_cast<double>(steps);
  state.counters["fixpoint_rows_r0"] = static_cast<double>(rows);
}
BENCHMARK(BM_SemijoinFixpoint_Ring)->RangeMultiplier(2)->Range(4, 32);

}  // namespace
}  // namespace gyo
