// P4 / E12 — γ-acyclicity testing: the polynomial Theorem 5.3(ii) pairwise
// test across schema families, against the exponential direct γ-cycle search
// and the doubly-exponential subtree characterization (small sizes only).

#include <benchmark/benchmark.h>

#include "gyo/gamma.h"
#include "schema/generators.h"
#include "util/rng.h"

namespace gyo {
namespace {

void BM_GammaPairs_Path(benchmark::State& state) {
  DatabaseSchema d = PathSchema(static_cast<int>(state.range(0)) + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsGammaAcyclic(d));
  }
}
BENCHMARK(BM_GammaPairs_Path)->RangeMultiplier(4)->Range(8, 512);

void BM_GammaPairs_Star(benchmark::State& state) {
  DatabaseSchema d = StarSchema(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsGammaAcyclic(d));
  }
}
BENCHMARK(BM_GammaPairs_Star)->RangeMultiplier(4)->Range(8, 512);

void BM_GammaPairs_RandomTree(benchmark::State& state) {
  Rng rng(static_cast<uint64_t>(state.range(0)) + 3);
  DatabaseSchema d =
      RandomTreeSchema(static_cast<int>(state.range(0)), 4, rng).schema;
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsGammaAcyclic(d));
  }
}
BENCHMARK(BM_GammaPairs_RandomTree)->RangeMultiplier(4)->Range(8, 256);

void BM_GammaPairs_Ring(benchmark::State& state) {
  DatabaseSchema d = Aring(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsGammaAcyclic(d));
  }
}
BENCHMARK(BM_GammaPairs_Ring)->RangeMultiplier(4)->Range(8, 512);

void BM_GammaCycleSearch_Path(benchmark::State& state) {
  DatabaseSchema d = PathSchema(static_cast<int>(state.range(0)) + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindWeakGammaCycle(d));
  }
}
BENCHMARK(BM_GammaCycleSearch_Path)->RangeMultiplier(2)->Range(4, 64);

void BM_GammaCycleSearch_Ring(benchmark::State& state) {
  DatabaseSchema d = Aring(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindWeakGammaCycle(d));
  }
}
BENCHMARK(BM_GammaCycleSearch_Ring)->RangeMultiplier(2)->Range(4, 64);

void BM_GammaSubtrees_Path(benchmark::State& state) {
  DatabaseSchema d = PathSchema(static_cast<int>(state.range(0)) + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsGammaAcyclicBySubtrees(d));
  }
}
BENCHMARK(BM_GammaSubtrees_Path)->DenseRange(4, 12, 2);

}  // namespace
}  // namespace gyo
