// P2 / E1 — tree-vs-cyclic classification and join-tree construction: GYO
// ear decomposition vs Maier's maximum-weight spanning tree, on tree and
// cyclic schema families (Fig. 1 at scale).

#include <benchmark/benchmark.h>

#include "gyo/acyclic.h"
#include "gyo/chordal.h"
#include "gyo/qual_graph.h"
#include "schema/generators.h"
#include "util/rng.h"

namespace gyo {
namespace {

void BM_IsTree_RandomTree(benchmark::State& state) {
  Rng rng(static_cast<uint64_t>(state.range(0)));
  DatabaseSchema d =
      RandomTreeSchema(static_cast<int>(state.range(0)), 5, rng).schema;
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsTreeSchema(d));
  }
}
BENCHMARK(BM_IsTree_RandomTree)->RangeMultiplier(4)->Range(8, 512);

void BM_IsTree_Ring(benchmark::State& state) {
  DatabaseSchema d = Aring(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsTreeSchema(d));
  }
}
BENCHMARK(BM_IsTree_Ring)->RangeMultiplier(4)->Range(8, 512);

void BM_IsTree_Chordality_RandomTree(benchmark::State& state) {
  Rng rng(static_cast<uint64_t>(state.range(0)));
  DatabaseSchema d =
      RandomTreeSchema(static_cast<int>(state.range(0)), 5, rng).schema;
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsTreeSchemaViaChordality(d));
  }
}
BENCHMARK(BM_IsTree_Chordality_RandomTree)->RangeMultiplier(4)->Range(8, 512);

void BM_JoinTree_Ear(benchmark::State& state) {
  Rng rng(static_cast<uint64_t>(state.range(0)));
  DatabaseSchema d =
      RandomTreeSchema(static_cast<int>(state.range(0)), 5, rng).schema;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildJoinTree(d));
  }
}
BENCHMARK(BM_JoinTree_Ear)->RangeMultiplier(4)->Range(8, 512);

void BM_JoinTree_Maier(benchmark::State& state) {
  Rng rng(static_cast<uint64_t>(state.range(0)));
  DatabaseSchema d =
      RandomTreeSchema(static_cast<int>(state.range(0)), 5, rng).schema;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildJoinTreeMaier(d));
  }
}
BENCHMARK(BM_JoinTree_Maier)->RangeMultiplier(4)->Range(8, 512);

// Lemma 3.1 witness search (E2): exponential in |U|, so tiny sizes only.
void BM_CyclicCore_Ring(benchmark::State& state) {
  DatabaseSchema d = Aring(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindCyclicCore(d));
  }
}
BENCHMARK(BM_CyclicCore_Ring)->DenseRange(4, 8, 2);

void BM_CyclicCore_FattenedRing(benchmark::State& state) {
  DatabaseSchema d = FattenedRing(4, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindCyclicCore(d));
  }
}
BENCHMARK(BM_CyclicCore_FattenedRing)->DenseRange(1, 3, 1);

// Corollary 3.2: least treefying relation.
void BM_TreefyingRelation_Grid(benchmark::State& state) {
  int side = static_cast<int>(state.range(0));
  DatabaseSchema d = GridSchema(side, side);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TreefyingRelation(d));
  }
}
BENCHMARK(BM_TreefyingRelation_Grid)->DenseRange(2, 10, 2);

}  // namespace
}  // namespace gyo
