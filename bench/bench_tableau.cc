// P3 (tableau layer) — containment-mapping search and tableau minimization
// cost as functions of row count and schema shape (Lemmas 3.2–3.5 machinery).

#include <benchmark/benchmark.h>

#include "schema/generators.h"
#include "tableau/containment.h"
#include "tableau/minimize.h"
#include "tableau/tableau.h"
#include "util/rng.h"

namespace gyo {
namespace {

void BM_TableauConstruction(benchmark::State& state) {
  Rng rng(static_cast<uint64_t>(state.range(0)));
  DatabaseSchema d =
      RandomTreeSchema(static_cast<int>(state.range(0)), 4, rng).schema;
  AttrSet x;
  int k = 0;
  d.Universe().ForEach([&](AttrId a) {
    if (k++ % 3 == 0) x.Insert(a);
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(Tableau::Standard(d, x));
  }
}
BENCHMARK(BM_TableauConstruction)->RangeMultiplier(4)->Range(8, 512);

void BM_SelfContainmentMapping_Path(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  DatabaseSchema d = PathSchema(n + 1);
  Tableau t = Tableau::Standard(d, AttrSet{0, n});
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindContainmentMapping(t, t));
  }
}
BENCHMARK(BM_SelfContainmentMapping_Path)->RangeMultiplier(2)->Range(4, 64);

void BM_SelfContainmentMapping_Ring(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  DatabaseSchema d = Aring(n);
  Tableau t = Tableau::Standard(d, d.Universe());
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindContainmentMapping(t, t));
  }
}
BENCHMARK(BM_SelfContainmentMapping_Ring)->RangeMultiplier(2)->Range(4, 64);

void BM_Minimize_Path(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  DatabaseSchema d = PathSchema(n + 1);
  Tableau t = Tableau::Standard(d, AttrSet{0, n});
  for (auto _ : state) {
    benchmark::DoNotOptimize(Minimize(t));
  }
}
BENCHMARK(BM_Minimize_Path)->RangeMultiplier(2)->Range(4, 32);

void BM_Minimize_FoldablePath(benchmark::State& state) {
  // X = one endpoint: the whole path folds row by row — the worst case for
  // the greedy rescan.
  int n = static_cast<int>(state.range(0));
  DatabaseSchema d = PathSchema(n + 1);
  Tableau t = Tableau::Standard(d, AttrSet{0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(Minimize(t));
  }
}
BENCHMARK(BM_Minimize_FoldablePath)->RangeMultiplier(2)->Range(4, 32);

void BM_Minimize_Sec6Style(benchmark::State& state) {
  // The §6 example scaled: a 3-relation core plus `n` irrelevant chain
  // relations that all fold away.
  int n = static_cast<int>(state.range(0));
  DatabaseSchema d;
  d.Add(AttrSet{0, 1, 6});  // abg
  d.Add(AttrSet{1, 2, 6});  // bcg
  d.Add(AttrSet{0, 2, 7});  // acf
  for (int i = 0; i < n; ++i) {
    d.Add(AttrSet{0, 8 + i});  // chains hanging off a
  }
  AttrSet x{0, 1, 2};
  Tableau t = Tableau::Standard(d, x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Minimize(t));
  }
}
BENCHMARK(BM_Minimize_Sec6Style)->RangeMultiplier(2)->Range(2, 16);

void BM_Isomorphism_MinimalRings(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  DatabaseSchema d = Aring(n);
  Tableau t = Tableau::Standard(d, d.Universe());
  std::vector<int> rev;
  for (int r = n - 1; r >= 0; --r) rev.push_back(r);
  Tableau p = t.SelectRows(rev);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AreIsomorphic(t, p));
  }
}
BENCHMARK(BM_Isomorphism_MinimalRings)->RangeMultiplier(2)->Range(4, 32);

}  // namespace
}  // namespace gyo
