// P6 ablation — Yannakakis options: full reducer on/off × early projection
// on/off.
//
// Three workloads isolate the effects:
//  * Star/payload: early projection is decisive (it drops payload columns
//    before they multiply); the reducer alone cannot help.
//  * Dead-end path with X = U(D): projection is a no-op, and the reducer is
//    decisive — it propagates an empty relation across the tree before any
//    join is attempted.
//  * UR path: on UR (globally consistent) data semijoins never prune, so the
//    reducer is pure overhead — the §4 point that full reduction is a
//    *non-UR* tool.

#include <benchmark/benchmark.h>

#include "rel/ops.h"
#include "rel/solver.h"
#include "rel/universal.h"
#include "schema/generators.h"
#include "util/rng.h"

namespace gyo {
namespace {

// --- Workload 1: star with payload columns (projection matters). ---

std::vector<Relation> PayloadStarData(int leaves, int rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<Relation> states;
  for (int leaf = 1; leaf <= leaves; ++leaf) {
    Relation rel(AttrSet{0, leaf});
    const int64_t first = rel.AppendRows(rows);
    for (int k = 0; k < rows; ++k) {
      rel.ColData(0)[first + k] = static_cast<Value>(rng.Below(64));
      rel.ColData(1)[first + k] = static_cast<Value>(rng.Below(1 << 20));
    }
    rel.Canonicalize();
    states.push_back(std::move(rel));
  }
  return states;
}

void RunStar(benchmark::State& state, bool reduce, bool project) {
  int leaves = static_cast<int>(state.range(0));
  DatabaseSchema d = StarSchema(leaves);
  AttrSet x{0};
  Program p = *YannakakisProgram(d, x, YannakakisOptions{reduce, project});
  std::vector<Relation> states = PayloadStarData(leaves, 512, 23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.Run(states));
  }
}

void BM_Star_NoReduce_NoProject(benchmark::State& s) { RunStar(s, false, false); }
void BM_Star_Reduce_NoProject(benchmark::State& s) { RunStar(s, true, false); }
void BM_Star_NoReduce_Project(benchmark::State& s) { RunStar(s, false, true); }
void BM_Star_Reduce_Project(benchmark::State& s) { RunStar(s, true, true); }

// Without projection the payload fanout multiplies per leaf (reduced or
// not): keep those ranges small.
BENCHMARK(BM_Star_NoReduce_NoProject)->DenseRange(2, 4, 1);
BENCHMARK(BM_Star_Reduce_NoProject)->DenseRange(2, 4, 1);
BENCHMARK(BM_Star_NoReduce_Project)->RangeMultiplier(2)->Range(2, 16);
BENCHMARK(BM_Star_Reduce_Project)->RangeMultiplier(2)->Range(2, 16);

// --- Workload 2: dead-end path, X = U(D) (reduction matters). ---

// Dense edge relations except the first, which is empty (the join order
// starts from the far end of the path): the join result is empty, but an
// unreduced join walks into a growing intermediate before discovering that.
std::vector<Relation> DeadEndPathData(int n, int rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<Relation> states;
  for (int i = 0; i < n; ++i) {
    Relation rel(AttrSet{i, i + 1});
    if (i > 0) {
      const int64_t first = rel.AppendRows(rows);
      for (int k = 0; k < rows; ++k) {
        rel.ColData(0)[first + k] = static_cast<Value>(rng.Below(16));
        rel.ColData(1)[first + k] = static_cast<Value>(rng.Below(16));
      }
    }
    rel.Canonicalize();
    states.push_back(std::move(rel));
  }
  return states;
}

void RunDeadEnd(benchmark::State& state, bool reduce) {
  int n = static_cast<int>(state.range(0));
  DatabaseSchema d = PathSchema(n + 1);
  AttrSet x = d.Universe();  // projection cannot drop anything
  Program p = *YannakakisProgram(d, x, YannakakisOptions{reduce, true});
  std::vector<Relation> states = DeadEndPathData(n, 128, 31);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.Run(states));
  }
}

void BM_DeadEndPath_NoReduce(benchmark::State& s) { RunDeadEnd(s, false); }
void BM_DeadEndPath_Reduce(benchmark::State& s) { RunDeadEnd(s, true); }

BENCHMARK(BM_DeadEndPath_NoReduce)->DenseRange(2, 5, 1);
BENCHMARK(BM_DeadEndPath_Reduce)->RangeMultiplier(2)->Range(2, 16);

// --- Workload 3: UR path (reduction is pure overhead on consistent data). ---

void RunURPath(benchmark::State& state, bool reduce, bool project) {
  int n = static_cast<int>(state.range(0));
  DatabaseSchema d = PathSchema(n + 1);
  AttrSet x{0, n};
  Program p = *YannakakisProgram(d, x, YannakakisOptions{reduce, project});
  Rng rng(29);
  Relation universal = RandomUniversal(d.Universe(), 256, 4096, rng);
  std::vector<Relation> states = ProjectDatabase(universal, d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.Run(states));
  }
}

void BM_URPath_NoReduce_Project(benchmark::State& s) { RunURPath(s, false, true); }
void BM_URPath_Reduce_Project(benchmark::State& s) { RunURPath(s, true, true); }

BENCHMARK(BM_URPath_NoReduce_Project)->RangeMultiplier(2)->Range(2, 16);
BENCHMARK(BM_URPath_Reduce_Project)->RangeMultiplier(2)->Range(2, 16);

// Plan construction cost itself (schema-level work only).
void BM_PlanConstruction_Yannakakis(benchmark::State& state) {
  Rng rng(static_cast<uint64_t>(state.range(0)) + 41);
  DatabaseSchema d =
      RandomTreeSchema(static_cast<int>(state.range(0)), 4, rng).schema;
  AttrSet x;
  int k = 0;
  d.Universe().ForEach([&](AttrId a) {
    if (k++ % 4 == 0) x.Insert(a);
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(YannakakisProgram(d, x));
  }
}
BENCHMARK(BM_PlanConstruction_Yannakakis)->RangeMultiplier(4)->Range(8, 512);

}  // namespace
}  // namespace gyo
