// Incremental maintenance vs batch re-reduction, and the cache fast paths.
//
// The headline A/B: after a small append (Arg = appended rows per relation,
// in tenths of a percent of the planted base), re-running the full pairwise
// semijoin fixpoint (BM_BatchReduce_PathAppend) against delta-maintaining
// the previous fixpoint (BM_DeltaReduce_PathAppend). Both produce
// bit-identical states; the counters quantify the work gap — at a 1% append
// the batch run re-removes every noise row in every round while the delta
// path re-examines only what the appends can have changed.
//
// The data is planted-consistent-plus-noise: rows projected from one
// universal relation (they all survive reduction) mixed with random rows
// over a disjoint value range (they dangle and are removed again on every
// batch re-reduce). Purely independent random states are the wrong fixture
// here — on a 16-relation path they reduce to empty, which makes the
// "previous fixpoint" trivial and the comparison meaningless.
//
// Correctness counters (pinned by scripts/check_bench_counters.py):
// effective_steps / fixpoint_rows_r0 / delta_rounds / rows_rescanned are
// seeded, deterministic-mode quantities — identical on every host.
// plan_cache_hits / state_cache_hits are sign-pinned (POSITIVE_RULES): the
// repeat-lookup benches exist to demonstrate the hit path, so a family-wide
// zero means the cache stopped hitting.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "cache/plan_cache.h"
#include "cache/state_cache.h"
#include "exec/exec_context.h"
#include "rel/reducer.h"
#include "rel/universal.h"
#include "schema/generators.h"
#include "util/attr_set.h"
#include "util/check.h"
#include "util/rng.h"

namespace gyo {
namespace {

constexpr int kPathRelations = 16;  // PathSchema(17)
constexpr int kPlantedRows = 2048;  // universal-relation rows (all survive)
constexpr int64_t kNoiseRows = 2048;  // dangling rows per relation
constexpr int64_t kDomain = 4096;     // planted values in [0, kDomain)

// Planted-consistent base plus dangling noise: rows projected from one
// universal relation all survive reduction, while the appended noise rows —
// drawn from the disjoint range [kDomain, 2*kDomain) — form no full-path
// chains and are removed by the fixpoint.
std::vector<Relation> PlantedNoisyStates(const DatabaseSchema& d,
                                         uint64_t seed) {
  Rng rng(seed);
  std::vector<Relation> base = ProjectDatabase(
      RandomUniversal(d.Universe(), kPlantedRows, kDomain, rng), d);
  for (Relation& rel : base) {
    const int64_t first = rel.AppendRows(kNoiseRows);
    for (int c = 0; c < rel.Arity(); ++c) {
      Value* col = rel.ColData(c);
      for (int64_t i = 0; i < kNoiseRows; ++i) {
        col[first + i] = static_cast<Value>(kDomain + rng.Below(kDomain));
      }
    }
  }
  return base;
}

// Appends `count` random rows to every relation — the VersionedDatabase
// evolution step. Values land in the planted band [0, kDomain) (joining the
// consistent core) or a fresh band [2*kDomain, 3*kDomain) (new dangles),
// never in the old noise band: an append drawn from the noise band would
// nominate the entire removed noise mass as revival candidates, turning the
// delta run back into a batch run. (The revival path itself is exercised by
// the DeltaReduceTest suite's randomized and planted revival scenarios.)
void AppendRandomRows(std::vector<Relation>* states, int64_t count,
                      uint64_t seed) {
  Rng rng(seed);
  for (Relation& rel : *states) {
    const int64_t first = rel.AppendRows(count);
    for (int c = 0; c < rel.Arity(); ++c) {
      Value* col = rel.ColData(c);
      for (int64_t i = 0; i < count; ++i) {
        const uint64_t v = rng.Below(2 * kDomain);
        col[first + i] = static_cast<Value>(v < kDomain ? v : v + kDomain);
      }
    }
  }
}

int64_t AppendedRowsFor(const benchmark::State& state) {
  // Arg is tenths of a percent of the planted+noise base: Arg(10) = 1%.
  return (kPlantedRows + kNoiseRows) * state.range(0) / 1000;
}

void BM_BatchReduce_PathAppend(benchmark::State& state) {
  // The non-incremental contender: throw the previous fixpoint away and
  // re-reduce all of `now` from scratch after the append.
  DatabaseSchema d = PathSchema(kPathRelations + 1);
  std::vector<Relation> now = PlantedNoisyStates(d, 37);
  AppendRandomRows(&now, AppendedRowsFor(state), 101);
  exec::QueryStats query_stats;
  exec::ExecContext ctx;
  ctx.query_stats = &query_stats;
  int steps = 0;
  int64_t rows = 0;
  for (auto _ : state) {
    std::vector<Relation> fix = SemijoinFixpoint(d, now, ctx, &steps);
    rows = fix[0].NumRows();
    benchmark::DoNotOptimize(fix);
  }
  state.counters["effective_steps"] = static_cast<double>(steps);
  state.counters["fixpoint_rows_r0"] = static_cast<double>(rows);
  // SemijoinFixpoint rewrites query_stats per call: one full run's totals.
  state.counters["delta_rounds"] =
      static_cast<double>(query_stats.delta_rounds);
  state.counters["rows_rescanned"] =
      static_cast<double>(query_stats.rows_rescanned);
}
BENCHMARK(BM_BatchReduce_PathAppend)->Arg(10)->Arg(100);

void BM_DeltaReduce_PathAppend(benchmark::State& state) {
  // The incremental path: grow-phase revival from the appended rows, then
  // delta shrink rounds seeded with only the grown relations. Bit-identical
  // output to the batch run above, at a fraction of the rescanned rows.
  DatabaseSchema d = PathSchema(kPathRelations + 1);
  std::vector<Relation> base = PlantedNoisyStates(d, 37);
  std::vector<Relation> prev_reduced = SemijoinFixpoint(d, base);
  std::vector<int64_t> prev_num_rows;
  for (const Relation& rel : base) prev_num_rows.push_back(rel.NumRows());
  std::vector<Relation> now = std::move(base);
  AppendRandomRows(&now, AppendedRowsFor(state), 101);
  exec::QueryStats query_stats;
  exec::ExecContext ctx;
  ctx.query_stats = &query_stats;
  int steps = 0;
  int64_t rows = 0;
  for (auto _ : state) {
    cache::DeltaStats delta;
    std::vector<Relation> fix = cache::DeltaReduce(
        d, now, prev_num_rows, prev_reduced, ctx, &steps, &delta);
    rows = fix[0].NumRows();
    benchmark::DoNotOptimize(fix);
  }
  state.counters["effective_steps"] = static_cast<double>(steps);
  state.counters["fixpoint_rows_r0"] = static_cast<double>(rows);
  state.counters["delta_rounds"] =
      static_cast<double>(query_stats.delta_rounds);
  state.counters["rows_rescanned"] =
      static_cast<double>(query_stats.rows_rescanned);
}
BENCHMARK(BM_DeltaReduce_PathAppend)->Arg(10)->Arg(100);

void BM_StateCacheExactHit_Repeat(benchmark::State& state) {
  // The version-exact fast path: an unchanged database answers from the
  // cache with a copy — no semijoins at all (steps == 0 per lookup).
  DatabaseSchema d = PathSchema(kPathRelations + 1);
  cache::VersionedDatabase db(d, PlantedNoisyStates(d, 37));
  cache::StateCache cache;
  exec::QueryStats query_stats;
  exec::ExecContext ctx;
  ctx.query_stats = &query_stats;
  cache.GetReduced(db, ctx);  // warm: the one batch reduction
  int64_t rows = 0;
  for (auto _ : state) {
    std::vector<Relation> reduced = cache.GetReduced(db, ctx);
    rows = reduced[0].NumRows();
    benchmark::DoNotOptimize(reduced);
  }
  GYO_CHECK(cache.stats().hits > 0);
  state.counters["fixpoint_rows_r0"] = static_cast<double>(rows);
  state.counters["state_cache_hits"] =
      static_cast<double>(query_stats.state_cache_hits);
}
BENCHMARK(BM_StateCacheExactHit_Repeat);

void BM_StateCacheDeltaRefresh_Append(benchmark::State& state) {
  // End-to-end cache delta path: each (paused) setup rebuilds a fresh
  // database + cache and warms it, then the timed lookup sees newer
  // versions and delta-refreshes. Fresh state every iteration keeps the
  // counters iteration-count independent, hence pinnable.
  DatabaseSchema d = PathSchema(9);
  const std::vector<Relation> base = PlantedNoisyStates(d, 37);
  std::vector<Relation> appends;
  {
    std::vector<Relation> appended = base;
    AppendRandomRows(&appended, 32, 101);
    // Keep only the appended suffix of each relation as the Append() batch.
    for (size_t rel = 0; rel < appended.size(); ++rel) {
      Relation suffix(d[static_cast<int>(rel)]);
      const int64_t from = base[rel].NumRows();
      const int64_t first = suffix.AppendRows(appended[rel].NumRows() - from);
      for (int c = 0; c < suffix.Arity(); ++c) {
        Value* col = suffix.ColData(c);
        const Value* src = appended[rel].ColData(c);
        for (int64_t i = from; i < appended[rel].NumRows(); ++i) {
          col[first + (i - from)] = src[i];
        }
      }
      appends.push_back(std::move(suffix));
    }
  }
  exec::QueryStats query_stats;
  exec::ExecContext ctx;
  ctx.query_stats = &query_stats;
  int64_t rows = 0;
  for (auto _ : state) {
    state.PauseTiming();
    cache::VersionedDatabase db(d, base);
    cache::StateCache cache;
    cache.GetReduced(db, ctx);  // warm with the pre-append fixpoint
    for (size_t rel = 0; rel < appends.size(); ++rel) {
      db.Append(static_cast<int>(rel), appends[rel]);
    }
    state.ResumeTiming();
    std::vector<Relation> reduced = cache.GetReduced(db, ctx);
    rows = reduced[0].NumRows();
    benchmark::DoNotOptimize(reduced);
    GYO_CHECK(cache.stats().delta_refreshes == 1);
  }
  state.counters["fixpoint_rows_r0"] = static_cast<double>(rows);
  state.counters["state_cache_hits"] =
      static_cast<double>(query_stats.state_cache_hits);
  state.counters["delta_rounds"] =
      static_cast<double>(query_stats.delta_rounds);
  state.counters["rows_rescanned"] =
      static_cast<double>(query_stats.rows_rescanned);
}
BENCHMARK(BM_StateCacheDeltaRefresh_Append);

void BM_PlanCacheHit_Repeat(benchmark::State& state) {
  // Repeat-query planning: one fingerprint + exact canonical compare + a
  // caller-space remap per lookup, against re-running GYO / join-tree
  // construction on every query.
  DatabaseSchema d = PathSchema(kPathRelations + 1);
  AttrSet target = d[0].Union(d[kPathRelations - 1]);
  cache::PlanCache cache;
  GYO_CHECK(
      cache.GetOrBuild(d, target, cache::PlanStrategy::kAuto).has_value());
  uint64_t hit = 0;
  for (auto _ : state) {
    std::optional<cache::PlanCache::Result> result =
        cache.GetOrBuild(d, target, cache::PlanStrategy::kAuto);
    hit = result.has_value() && result->hit ? 1 : 0;
    benchmark::DoNotOptimize(result);
  }
  state.counters["plan_cache_hits"] = static_cast<double>(hit);
}
BENCHMARK(BM_PlanCacheHit_Repeat);

void BM_PlanCacheMiss_Rebuild(benchmark::State& state) {
  // The contrast row: Clear() before every lookup so each one pays the full
  // schema-level build the hit path memoizes.
  DatabaseSchema d = PathSchema(kPathRelations + 1);
  AttrSet target = d[0].Union(d[kPathRelations - 1]);
  cache::PlanCache cache;
  for (auto _ : state) {
    cache.Clear();
    std::optional<cache::PlanCache::Result> result =
        cache.GetOrBuild(d, target, cache::PlanStrategy::kAuto);
    benchmark::DoNotOptimize(result);
  }
  state.counters["plan_cache_hits"] = 0.0;
}
BENCHMARK(BM_PlanCacheMiss_Rebuild);

}  // namespace
}  // namespace gyo
