// P3 / E6 — canonical connection computation: the Theorem 3.3 GYO fast path
// vs generic tableau minimization. The headline shape: on tree schemas the
// fast path is polynomial and orders of magnitude cheaper; the exact path's
// cost explodes with cyclic core size.

#include <benchmark/benchmark.h>

#include "schema/generators.h"
#include "tableau/canonical.h"
#include "util/rng.h"

namespace gyo {
namespace {

AttrSet EveryOtherAttr(const DatabaseSchema& d) {
  AttrSet x;
  int k = 0;
  d.Universe().ForEach([&](AttrId a) {
    if (k++ % 2 == 0) x.Insert(a);
  });
  return x;
}

void BM_CC_FastPath_RandomTree(benchmark::State& state) {
  Rng rng(static_cast<uint64_t>(state.range(0)) + 17);
  DatabaseSchema d =
      RandomTreeSchema(static_cast<int>(state.range(0)), 4, rng).schema;
  AttrSet x = EveryOtherAttr(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CanonicalConnection(d, x));
  }
}
BENCHMARK(BM_CC_FastPath_RandomTree)->RangeMultiplier(2)->Range(4, 256);

void BM_CC_Exact_RandomTree(benchmark::State& state) {
  Rng rng(static_cast<uint64_t>(state.range(0)) + 17);
  DatabaseSchema d =
      RandomTreeSchema(static_cast<int>(state.range(0)), 4, rng).schema;
  AttrSet x = EveryOtherAttr(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CanonicalConnectionExact(d, x));
  }
}
// Tableau minimization is exponential in the worst case; keep sizes modest.
BENCHMARK(BM_CC_Exact_RandomTree)->RangeMultiplier(2)->Range(4, 32);

void BM_CC_Exact_Ring(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  DatabaseSchema d = Aring(n);
  AttrSet x{0, n / 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(CanonicalConnectionExact(d, x));
  }
}
BENCHMARK(BM_CC_Exact_Ring)->DenseRange(4, 10, 2);

// The §6 workload at scale: a relevant core of fixed size plus a growing
// irrelevant appendage. CC computation must stay cheap and its output size
// constant — the "benefit of the UR property" the paper's §6 closes with.
void BM_CC_IrrelevantAppendage(benchmark::State& state) {
  int appendage = static_cast<int>(state.range(0));
  // Core: (ab, bc) with target {a, c}; appendage: a path hanging off c.
  DatabaseSchema d;
  d.Add(AttrSet{0, 1});
  d.Add(AttrSet{1, 2});
  for (int i = 0; i < appendage; ++i) {
    d.Add(AttrSet{2 + i, 3 + i});
  }
  AttrSet x{0, 2};
  for (auto _ : state) {
    CanonicalResult cc = CanonicalConnection(d, x);
    benchmark::DoNotOptimize(cc);
  }
  CanonicalResult cc = CanonicalConnection(d, x);
  state.counters["cc_relations"] =
      static_cast<double>(cc.schema.NumRelations());
}
BENCHMARK(BM_CC_IrrelevantAppendage)->RangeMultiplier(4)->Range(4, 256);

}  // namespace
}  // namespace gyo
