#ifndef GYO_BENCH_MEM_COUNTERS_H_
#define GYO_BENCH_MEM_COUNTERS_H_

#include <benchmark/benchmark.h>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "exec/exec_context.h"

namespace gyo_bench {

/// Process peak RSS in MiB (0 where getrusage is unavailable). Monotone
/// over the process lifetime — it upper-bounds, not isolates, one
/// benchmark's footprint. Kept as the fallback for platforms (or fork
/// failures) where ForkIsolatedPeakRssMb below cannot sample.
inline double PeakRssMb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB
#endif
#else
  return 0.0;
#endif
}

/// Runs `workload` once in a forked child and returns the CHILD's peak RSS
/// in MiB — a per-bench-family sample, isolated from every other benchmark
/// in the binary (RUSAGE_SELF is monotone over the whole process, so in a
/// multi-bench binary it only ever reports the largest family seen so far).
///
/// Call it BEFORE constructing any thread pool in the bench function, and
/// let the workload construct its own pool/data inside the child: forking a
/// single-threaded parent sidesteps multithreaded-fork hazards, and pages
/// the child allocates itself are charged to it exactly once. Pages
/// inherited copy-on-write from the parent (the input states, the binary)
/// still count toward the child once touched — the sample isolates
/// *between* families, not from the shared inputs. Falls back to the
/// monotone PeakRssMb() where fork is unavailable or fails.
template <typename Workload>
inline double ForkIsolatedPeakRssMb(Workload&& workload) {
#if defined(__unix__) || defined(__APPLE__)
  pid_t pid = fork();
  if (pid < 0) return PeakRssMb();
  if (pid == 0) {
    workload();
    _exit(0);
  }
  int status = 0;
  struct rusage usage;
  if (wait4(pid, &status, 0, &usage) != pid || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    return PeakRssMb();
  }
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB
#endif
#else
  (void)workload;
  return PeakRssMb();
#endif
}

/// Attaches the memory and pruning counters to `state`: the query's exact
/// peak of live relation-state bytes, the retired-state count, the Bloom
/// prune tallies (all from QueryStats), plus the caller's fork-isolated
/// peak RSS sample. peak_state_bytes and peak_rss_mb are machine/
/// schedule-dependent and deliberately NOT pinned by
/// scripts/check_bench_counters.py — they are for reading trends.
/// retired_states, bloom_partition_skips and probe_rows_pruned are pure
/// dataflow/data functions at a fixed thread count, so the bench-check pins
/// them.
inline void ReportMemCounters(benchmark::State& state,
                              const gyo::exec::QueryStats& query_stats,
                              double peak_rss_mb) {
  state.counters["peak_state_bytes"] =
      static_cast<double>(query_stats.peak_state_bytes);
  state.counters["retired_states"] =
      static_cast<double>(query_stats.retired_states);
  state.counters["bloom_partition_skips"] =
      static_cast<double>(query_stats.bloom_partition_skips);
  state.counters["probe_rows_pruned"] =
      static_cast<double>(query_stats.probe_rows_pruned);
  // Cross-statement pruning: probe rows rejected by sideways-information-
  // passing filters and probe rows skipped by zone-map disjointness proofs.
  // Both are pure functions of the seeded data and the plan, but the
  // bench-check sign-pins rather than value-pins them (on the SipStar and
  // ZoneMap families respectively) so the benches stay free to re-balance
  // their fixtures without a baseline churn on every unrelated family.
  state.counters["sip_rows_pruned"] =
      static_cast<double>(query_stats.sip_rows_pruned);
  state.counters["zone_map_skips"] =
      static_cast<double>(query_stats.zone_map_skips);
  state.counters["peak_rss_mb"] = peak_rss_mb;
  // Work-stealing scheduler counters. Placement is timing-dependent, so
  // none of these are pinned exactly; the bench-check only requires
  // tasks_stolen, summed across the StealImbalance family's thread widths,
  // to stay positive when the recorded baseline shows stealing (a family-
  // wide regression to zero would mean the imbalanced partition serialized
  // on one thread).
  state.counters["tasks_stolen"] =
      static_cast<double>(query_stats.tasks_stolen);
  state.counters["affinity_hits"] =
      static_cast<double>(query_stats.affinity_hits);
  state.counters["affinity_misses"] =
      static_cast<double>(query_stats.affinity_misses);
}

}  // namespace gyo_bench

#endif  // GYO_BENCH_MEM_COUNTERS_H_
