#ifndef GYO_BENCH_MEM_COUNTERS_H_
#define GYO_BENCH_MEM_COUNTERS_H_

#include <benchmark/benchmark.h>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "exec/exec_context.h"

namespace gyo_bench {

/// Process peak RSS in MiB (0 where getrusage is unavailable). Monotone
/// over the process lifetime, so it upper-bounds — not isolates — one
/// benchmark's footprint; useful as a coarse leak/regression tripwire next
/// to the exact per-query peak_state_bytes counter.
inline double PeakRssMb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB
#endif
#else
  return 0.0;
#endif
}

/// Attaches the memory counters to `state`: the query's exact peak of live
/// relation-state bytes and the retired-state count (from QueryStats), plus
/// the process peak RSS. peak_state_bytes and peak_rss_mb are
/// machine/schedule-dependent and deliberately NOT pinned by
/// scripts/check_bench_counters.py — they are for reading trends.
/// retired_states is pure dataflow structure (every consumed, non-retained
/// state is freed exactly once), so the bench-check pins it.
inline void ReportMemCounters(benchmark::State& state,
                              const gyo::exec::QueryStats& query_stats) {
  state.counters["peak_state_bytes"] =
      static_cast<double>(query_stats.peak_state_bytes);
  state.counters["retired_states"] =
      static_cast<double>(query_stats.retired_states);
  state.counters["peak_rss_mb"] = PeakRssMb();
}

}  // namespace gyo_bench

#endif  // GYO_BENCH_MEM_COUNTERS_H_
