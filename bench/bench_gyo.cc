// P1 — GYO reduction scaling: naive fixpoint vs incremental worklist
// implementation, across the paper's schema families (paths, stars, random
// tree schemas, Arings, grids). Regenerates the ablation called out in
// DESIGN.md §5 ("Incremental vs naive GYO").

#include <benchmark/benchmark.h>

#include "gyo/gyo.h"
#include "schema/generators.h"
#include "util/rng.h"

namespace gyo {
namespace {

DatabaseSchema MakeFamily(const std::string& family, int n) {
  if (family == "path") return PathSchema(n + 1);
  if (family == "star") return StarSchema(n);
  if (family == "ring") return Aring(n);
  if (family == "grid") {
    int side = 1;
    while ((side + 1) * (side + 1) <= n) ++side;
    return GridSchema(side + 1, side + 1);
  }
  Rng rng(static_cast<uint64_t>(n) * 7919);
  return RandomTreeSchema(n, 5, rng).schema;
}

void BM_GyoNaive(benchmark::State& state, const std::string& family) {
  DatabaseSchema d = MakeFamily(family, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(GyoReduce(d));
  }
  state.SetComplexityN(state.range(0));
}

void BM_GyoFast(benchmark::State& state, const std::string& family) {
  DatabaseSchema d = MakeFamily(family, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(GyoReduceFast(d));
  }
  state.SetComplexityN(state.range(0));
}

void BM_GyoNaive_Path(benchmark::State& s) { BM_GyoNaive(s, "path"); }
void BM_GyoFast_Path(benchmark::State& s) { BM_GyoFast(s, "path"); }
void BM_GyoNaive_Star(benchmark::State& s) { BM_GyoNaive(s, "star"); }
void BM_GyoFast_Star(benchmark::State& s) { BM_GyoFast(s, "star"); }
void BM_GyoNaive_RandomTree(benchmark::State& s) { BM_GyoNaive(s, "tree"); }
void BM_GyoFast_RandomTree(benchmark::State& s) { BM_GyoFast(s, "tree"); }
void BM_GyoNaive_Ring(benchmark::State& s) { BM_GyoNaive(s, "ring"); }
void BM_GyoFast_Ring(benchmark::State& s) { BM_GyoFast(s, "ring"); }
void BM_GyoNaive_Grid(benchmark::State& s) { BM_GyoNaive(s, "grid"); }
void BM_GyoFast_Grid(benchmark::State& s) { BM_GyoFast(s, "grid"); }

BENCHMARK(BM_GyoNaive_Path)->RangeMultiplier(4)->Range(8, 512)->Complexity();
BENCHMARK(BM_GyoFast_Path)->RangeMultiplier(4)->Range(8, 512)->Complexity();
BENCHMARK(BM_GyoNaive_Star)->RangeMultiplier(4)->Range(8, 512)->Complexity();
BENCHMARK(BM_GyoFast_Star)->RangeMultiplier(4)->Range(8, 512)->Complexity();
BENCHMARK(BM_GyoNaive_RandomTree)->RangeMultiplier(4)->Range(8, 512)->Complexity();
BENCHMARK(BM_GyoFast_RandomTree)->RangeMultiplier(4)->Range(8, 512)->Complexity();
BENCHMARK(BM_GyoNaive_Ring)->RangeMultiplier(4)->Range(8, 512);
BENCHMARK(BM_GyoFast_Ring)->RangeMultiplier(4)->Range(8, 512);
BENCHMARK(BM_GyoNaive_Grid)->RangeMultiplier(4)->Range(16, 256);
BENCHMARK(BM_GyoFast_Grid)->RangeMultiplier(4)->Range(16, 256);

// GR with sacred attributes (the CC fast-path workload, Thm 3.3).
void BM_GyoFast_PathWithTarget(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  DatabaseSchema d = PathSchema(n + 1);
  AttrSet x{0, n};  // endpoints sacred: nothing collapses between them
  for (auto _ : state) {
    benchmark::DoNotOptimize(GyoReduceFast(d, x));
  }
}
BENCHMARK(BM_GyoFast_PathWithTarget)->RangeMultiplier(4)->Range(8, 512);

}  // namespace
}  // namespace gyo
