// Parallel execution runtime (exec/): parallel vs serial evaluation at
// 1/2/4/8 threads. Arg(0) = thread count, so .../1 rows are the serial
// engine and the speedup curve reads directly off the report.
//
//   * Path_Yannakakis-class workload: a 16-hop path query evaluated by the
//     Yannakakis program — statement-level parallelism (independent subtree
//     semijoins) plus morsel-level parallelism in each operator.
//   * Star_Yannakakis: wide fan-out, scheduler-bound shape.
//   * FullReducer: the 2(n−1)-semijoin reducer over a random tree schema.
//   * FullJoin_Morsels: a join-dominated plan where intra-operator morsel
//     parallelism is the only lever (the statement chain is serial).
//
// Times are wall-clock (UseRealTime): with worker threads, per-thread CPU
// time would hide the speedup being measured.

#include <benchmark/benchmark.h>

#include "exec/physical_plan.h"
#include "rel/reducer.h"
#include "rel/solver.h"
#include "rel/universal.h"
#include "schema/generators.h"
#include "util/rng.h"

namespace gyo {
namespace {

// Key-like data (domain ≫ rows) keeps join growth factors near 1, matching
// the bench_join_strategies methodology.
std::vector<Relation> MakeUR(const DatabaseSchema& d, int rows,
                             uint64_t seed) {
  Rng rng(seed);
  Relation universal = RandomUniversal(d.Universe(), rows, 16 * rows, rng);
  return ProjectDatabase(universal, d);
}

exec::ExecContext Ctx(benchmark::State& state) {
  exec::ExecContext ctx;
  ctx.threads = static_cast<int>(state.range(0));
  return ctx;
}

void ReportStats(benchmark::State& state, const Program& p,
                 const std::vector<Relation>& states,
                 const exec::ExecContext& ctx) {
  Program::Stats stats;
  exec::Execute(p, states, ctx, &stats);
  state.counters["max_intermediate"] =
      static_cast<double>(stats.max_intermediate_rows);
  state.counters["result_rows"] = static_cast<double>(stats.result_rows);
}

void BM_Exec_PathYannakakis(benchmark::State& state) {
  DatabaseSchema d = PathSchema(17);
  AttrSet x{0, 16};
  Program p = *YannakakisProgram(d, x);
  std::vector<Relation> states = MakeUR(d, 8192, 17);
  exec::ExecContext ctx = Ctx(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::Run(p, states, ctx));
  }
  ReportStats(state, p, states, ctx);
}
BENCHMARK(BM_Exec_PathYannakakis)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_Exec_StarYannakakis(benchmark::State& state) {
  DatabaseSchema d = StarSchema(12);
  AttrSet x{0, 1};
  Program p = *YannakakisProgram(d, x);
  std::vector<Relation> states = MakeUR(d, 8192, 13);
  exec::ExecContext ctx = Ctx(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::Run(p, states, ctx));
  }
  ReportStats(state, p, states, ctx);
}
BENCHMARK(BM_Exec_StarYannakakis)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_Exec_FullReducer(benchmark::State& state) {
  Rng schema_rng(5);
  RandomTreeResult t = RandomTreeSchema(24, 4, schema_rng);
  Rng state_rng(6);
  std::vector<Relation> states = RandomStates(t.schema, 8192, 24, state_rng);
  exec::ExecContext ctx = Ctx(state);
  int64_t reduced_rows = 0;
  for (auto _ : state) {
    auto out = ApplyFullReducer(t.schema, states, ctx);
    reduced_rows = (*out)[0].NumRows();
    benchmark::DoNotOptimize(out);
  }
  state.counters["reduced_rows_r0"] = static_cast<double>(reduced_rows);
}
BENCHMARK(BM_Exec_FullReducer)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_Exec_FullJoin_Morsels(benchmark::State& state) {
  DatabaseSchema d = PathSchema(4);
  AttrSet x{0, 3};
  Program p = FullJoinProgram(d, x);
  std::vector<Relation> states = MakeUR(d, 32768, 19);
  exec::ExecContext ctx = Ctx(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::Run(p, states, ctx));
  }
  ReportStats(state, p, states, ctx);
}
BENCHMARK(BM_Exec_FullJoin_Morsels)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

}  // namespace
}  // namespace gyo
