// Parallel execution runtime (exec/): parallel vs serial evaluation at
// 1/2/4/8 threads. Arg(0) = thread count, so .../1 rows are the serial
// engine and the speedup curve reads directly off the report. Each
// benchmark owns an ExecutorPool of exactly Arg(0) threads (rather than
// borrowing the process-wide pool) so the curve measures pool width, not
// the host's core count.
//
//   * Path_Yannakakis-class workload: a 16-hop path query evaluated by the
//     Yannakakis program — statement-level parallelism (independent subtree
//     semijoins) plus morsel-level parallelism in each operator.
//   * Star_Yannakakis: wide fan-out, scheduler-bound shape.
//   * FullReducer: the 2(n−1)-semijoin reducer over a random tree schema.
//   * FullJoin_Morsels: a join-dominated plan where intra-operator morsel
//     parallelism is the only lever (the statement chain is serial).
//   * MultiClient: Arg(0) concurrent client threads pushing Yannakakis
//     queries through ONE shared admission-controlled pool — the
//     multi-tenant story. Counters report the (identical) per-query result
//     cardinality plus the aggregate morsel count observed by QueryStats.
//
// Times are wall-clock (UseRealTime): with worker threads, per-thread CPU
// time would hide the speedup being measured.

#include <benchmark/benchmark.h>

#include <memory>
#include <thread>
#include <vector>

#include "exec/executor_pool.h"
#include "exec/physical_plan.h"
#include "mem_counters.h"
#include "rel/reducer.h"
#include "rel/solver.h"
#include "rel/universal.h"
#include "schema/generators.h"
#include "util/rng.h"

namespace gyo {
namespace {

// Key-like data (domain ≫ rows) keeps join growth factors near 1, matching
// the bench_join_strategies methodology.
std::vector<Relation> MakeUR(const DatabaseSchema& d, int rows,
                             uint64_t seed) {
  Rng rng(seed);
  Relation universal = RandomUniversal(d.Universe(), rows, 16 * rows, rng);
  return ProjectDatabase(universal, d);
}

// A private pool of exactly state.range(0) threads plus the context that
// routes queries onto it.
struct BenchPool {
  explicit BenchPool(benchmark::State& state) {
    exec::ExecutorPool::Options options;
    options.threads = static_cast<int>(state.range(0));
    pool = std::make_unique<exec::ExecutorPool>(options);
    ctx.threads = options.threads;
    ctx.pool = pool.get();
  }
  std::unique_ptr<exec::ExecutorPool> pool;
  exec::ExecContext ctx;
};

void ReportStats(benchmark::State& state, const Program& p,
                 const std::vector<Relation>& states,
                 const exec::ExecContext& caller_ctx, double peak_rss_mb) {
  Program::Stats stats;
  exec::QueryStats query_stats;
  exec::ExecContext ctx = caller_ctx;
  ctx.query_stats = &query_stats;
  exec::Execute(p, states, ctx, &stats);
  state.counters["max_intermediate"] =
      static_cast<double>(stats.max_intermediate_rows);
  state.counters["result_rows"] = static_cast<double>(stats.result_rows);
  gyo_bench::ReportMemCounters(state, query_stats, peak_rss_mb);
}

// One fork-isolated RSS sample of a full query at this Arg's thread width.
// Must run BEFORE the parent constructs its BenchPool: the child builds its
// own pool, so the fork happens while the parent is still single-threaded.
double SampleRss(benchmark::State& state, const Program& p,
                 const std::vector<Relation>& states) {
  return gyo_bench::ForkIsolatedPeakRssMb([&] {
    BenchPool child(state);
    benchmark::DoNotOptimize(exec::Run(p, states, child.ctx));
  });
}

void BM_Exec_PathYannakakis(benchmark::State& state) {
  DatabaseSchema d = PathSchema(17);
  AttrSet x{0, 16};
  Program p = *YannakakisProgram(d, x);
  std::vector<Relation> states = MakeUR(d, 8192, 17);
  const double peak_rss_mb = SampleRss(state, p, states);
  BenchPool bench(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::Run(p, states, bench.ctx));
  }
  ReportStats(state, p, states, bench.ctx, peak_rss_mb);
}
BENCHMARK(BM_Exec_PathYannakakis)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_Exec_StarYannakakis(benchmark::State& state) {
  DatabaseSchema d = StarSchema(12);
  AttrSet x{0, 1};
  Program p = *YannakakisProgram(d, x);
  std::vector<Relation> states = MakeUR(d, 8192, 13);
  const double peak_rss_mb = SampleRss(state, p, states);
  BenchPool bench(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::Run(p, states, bench.ctx));
  }
  ReportStats(state, p, states, bench.ctx, peak_rss_mb);
}
BENCHMARK(BM_Exec_StarYannakakis)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_Exec_FullReducer(benchmark::State& state) {
  Rng schema_rng(5);
  RandomTreeResult t = RandomTreeSchema(24, 4, schema_rng);
  Rng state_rng(6);
  std::vector<Relation> states = RandomStates(t.schema, 8192, 24, state_rng);
  const double peak_rss_mb = gyo_bench::ForkIsolatedPeakRssMb([&] {
    BenchPool child(state);
    auto out = ApplyFullReducer(t.schema, states, child.ctx);
    benchmark::DoNotOptimize(out);
  });
  BenchPool bench(state);
  exec::QueryStats query_stats;
  bench.ctx.query_stats = &query_stats;
  int64_t reduced_rows = 0;
  for (auto _ : state) {
    auto out = ApplyFullReducer(t.schema, states, bench.ctx);
    reduced_rows = (*out)[0].NumRows();
    benchmark::DoNotOptimize(out);
  }
  state.counters["reduced_rows_r0"] = static_cast<double>(reduced_rows);
  gyo_bench::ReportMemCounters(state, query_stats, peak_rss_mb);
}
BENCHMARK(BM_Exec_FullReducer)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_Exec_FullJoin_Morsels(benchmark::State& state) {
  DatabaseSchema d = PathSchema(4);
  AttrSet x{0, 3};
  Program p = FullJoinProgram(d, x);
  std::vector<Relation> states = MakeUR(d, 32768, 19);
  const double peak_rss_mb = SampleRss(state, p, states);
  BenchPool bench(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::Run(p, states, bench.ctx));
  }
  ReportStats(state, p, states, bench.ctx, peak_rss_mb);
}
BENCHMARK(BM_Exec_FullJoin_Morsels)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_Exec_StealImbalance(benchmark::State& state) {
  // Deliberately skewed semijoin: 75% of the probe side shares one hot key,
  // so one hash partition owns ~6x its fair share of probe chunks — and
  // every one of those chunks carries the same builder affinity. Without
  // stealing that partition serializes on one deque; with it the idle
  // workers drain the hot deque FIFO. The trailing projection gives the
  // graph a second statement, so the caller's drain loop runs inside the
  // measured region and leftover affinity-tagged morsels are consumed (and
  // counted) before the query finishes even on a single-core host.
  constexpr int64_t kProbeRows = 1 << 18;
  constexpr int64_t kBuildRows = 1 << 16;
  constexpr Value kHotKey = 42;
  Relation r(AttrSet{0, 1});
  r.Reserve(kProbeRows);
  for (int64_t i = 0; i < kProbeRows; ++i) {
    const Value key = (i % 4 == 0) ? static_cast<Value>(i % kBuildRows)
                                   : kHotKey;
    r.AddRow({key, static_cast<Value>(i)});
  }
  r.Canonicalize();
  Relation s(AttrSet{0, 2});
  s.Reserve(kBuildRows);
  for (int64_t k = 0; k < kBuildRows; ++k) {
    s.AddRow({static_cast<Value>(k), static_cast<Value>(k)});
  }
  s.Canonicalize();
  Program p(2);
  const int sj = p.AddSemijoin(0, 1);
  p.AddProject(sj, AttrSet{0});
  std::vector<Relation> states = {r, s};
  const double peak_rss_mb = SampleRss(state, p, states);
  BenchPool bench(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::Run(p, states, bench.ctx));
  }
  ReportStats(state, p, states, bench.ctx, peak_rss_mb);
}
BENCHMARK(BM_Exec_StealImbalance)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_Exec_SipStar(benchmark::State& state) {
  // Sideways information passing on a star-schema semijoin chain. All
  // satellites of a star share the center attribute, so the reduction is a
  // chain s_i = s_{i-1} ⋉ R_i with key {0} throughout — and every later
  // satellite is a base-slot eliminator for the chain head. The satellite
  // key domains shrink down the chain (the last one is tiny), so without
  // SIP every statement re-probes the rows the tail would have killed,
  // while with SIP the head consults the tail satellites' Bloom filters
  // and drops ~97% of the fact rows before the first hash build's probes.
  // Arg(0) = threads, Arg(1) = SIP on/off — the A/B reads directly off the
  // report, and sip_rows_pruned is sign-pinned on the sip:1 half.
  constexpr int kSatellites = 7;
  constexpr int64_t kFactRows = 1 << 16;
  constexpr int64_t kSatRows = 1 << 12;
  Program p(1 + kSatellites);
  int chain = 0;
  for (int i = 1; i <= kSatellites; ++i) chain = p.AddSemijoin(chain, i);
  Rng rng(23);
  std::vector<Relation> states;
  Relation fact(AttrSet{0, 1});
  fact.Reserve(kFactRows);
  for (int64_t i = 0; i < kFactRows; ++i) {
    fact.AddRow({static_cast<Value>(rng.Below(1 << 14)),
                 static_cast<Value>(i)});
  }
  fact.Canonicalize();
  states.push_back(std::move(fact));
  for (int i = 1; i <= kSatellites; ++i) {
    // Satellite i's keys cover [0, 4096 >> (i-1)) densely (k mod domain),
    // down to [0, 64) at i = 7 — so the chain's survivors are exactly the
    // fact rows with keys under the smallest domain, a nonzero pinned
    // cardinality, and the tail filters do the heavy pruning.
    const int64_t domain = kSatRows >> (i - 1);
    Relation sat(AttrSet{0, static_cast<AttrId>(i + 1)});
    sat.Reserve(kSatRows);
    for (int64_t k = 0; k < kSatRows; ++k) {
      sat.AddRow({static_cast<Value>(k % domain), static_cast<Value>(k)});
    }
    sat.Canonicalize();
    states.push_back(std::move(sat));
  }
  const double peak_rss_mb = SampleRss(state, p, states);
  BenchPool bench(state);
  bench.ctx.enable_sip = state.range(1) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::Run(p, states, bench.ctx));
  }
  ReportStats(state, p, states, bench.ctx, peak_rss_mb);
}
BENCHMARK(BM_Exec_SipStar)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({8, 0})
    ->Args({8, 1})
    ->UseRealTime();

void BM_Exec_JoinScatter(benchmark::State& state) {
  // NaturalJoin's probe-side radix scatter under skew: the build side is
  // unique on the join key (output growth ≤ 1), the probe side puts half
  // its rows on 8 hot keys — so a handful of partitions own most of the
  // probe traffic and the scatter + sticky affinity + stealing interplay
  // is what the thread curve measures. Arg(0) = threads, Arg(1) =
  // deterministic: the 1-half pays the k-way morsel merge that restores
  // serial output order, the 0-half concatenates in completion order, so
  // the merge's cost is the gap between the halves at each width.
  constexpr int64_t kProbeRows = 1 << 18;
  constexpr int64_t kBuildRows = 1 << 16;
  Rng rng(29);
  Relation r(AttrSet{0, 1});
  r.Reserve(kProbeRows);
  for (int64_t i = 0; i < kProbeRows; ++i) {
    const Value key = (i % 2 == 0) ? static_cast<Value>(rng.Below(8))
                                   : static_cast<Value>(rng.Below(kBuildRows));
    r.AddRow({static_cast<Value>(i), key});
  }
  r.Canonicalize();
  Relation s(AttrSet{1, 2});
  s.Reserve(kBuildRows);
  for (int64_t k = 0; k < kBuildRows; ++k) {
    s.AddRow({static_cast<Value>(k), static_cast<Value>(k % 97)});
  }
  s.Canonicalize();
  Program p(2);
  p.AddJoin(0, 1);
  std::vector<Relation> states = {std::move(r), std::move(s)};
  const double peak_rss_mb = SampleRss(state, p, states);
  BenchPool bench(state);
  bench.ctx.deterministic = state.range(1) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::Run(p, states, bench.ctx));
  }
  ReportStats(state, p, states, bench.ctx, peak_rss_mb);
}
BENCHMARK(BM_Exec_JoinScatter)
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({8, 0})
    ->UseRealTime();

void BM_Exec_ZoneMap(benchmark::State& state) {
  // Zone-map disjointness in Semijoin: Arg(1) = 1 puts the build side's
  // key range entirely above the probe side's, so ZoneRange proves the
  // semijoin empty and the whole probe pass is skipped (zone_map_skips =
  // probe rows, sign-pinned); Arg(1) = 0 overlaps the ranges and pays the
  // full hash build + probe over the same cardinalities — the gap between
  // the two halves is what the maps save. Arg(0) = threads, as everywhere.
  constexpr int64_t kProbeRows = 1 << 18;
  constexpr int64_t kBuildRows = 1 << 16;
  const bool disjoint = state.range(1) != 0;
  Rng rng(31);
  Relation r(AttrSet{0, 1});
  r.Reserve(kProbeRows);
  for (int64_t i = 0; i < kProbeRows; ++i) {
    r.AddRow({static_cast<Value>(rng.Below(kBuildRows)),
              static_cast<Value>(i)});
  }
  r.Canonicalize();
  const Value build_base = disjoint ? static_cast<Value>(kBuildRows) : 0;
  Relation s(AttrSet{0, 2});
  s.Reserve(kBuildRows);
  for (int64_t k = 0; k < kBuildRows; ++k) {
    s.AddRow({build_base + static_cast<Value>(k), static_cast<Value>(k)});
  }
  s.Canonicalize();
  Program p(2);
  p.AddSemijoin(0, 1);
  std::vector<Relation> states = {std::move(r), std::move(s)};
  const double peak_rss_mb = SampleRss(state, p, states);
  BenchPool bench(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec::Run(p, states, bench.ctx));
  }
  ReportStats(state, p, states, bench.ctx, peak_rss_mb);
}
BENCHMARK(BM_Exec_ZoneMap)->Args({4, 0})->Args({4, 1})->UseRealTime();

void BM_Exec_MultiClient(benchmark::State& state) {
  // Arg(0) client threads share one 4-thread pool that admits at most 2
  // queries at a time; each client runs 2 deterministic Yannakakis queries
  // per iteration under its own submitter id. Wall time therefore measures
  // admission + shared-pool throughput, not per-query latency. The result
  // cardinality is identical for every client and every concurrency level
  // (deterministic mode), which is what the CI bench-check pins.
  const int clients = static_cast<int>(state.range(0));
  constexpr int kQueriesPerClient = 2;
  DatabaseSchema d = PathSchema(17);
  AttrSet x{0, 16};
  Program p = *YannakakisProgram(d, x);
  std::vector<Relation> states = MakeUR(d, 8192, 17);

  exec::ExecutorPool::Options options;
  options.threads = 4;
  options.max_concurrent_queries = 2;
  exec::ExecutorPool pool(options);

  int64_t result_rows = 0;
  int64_t total_morsels = 0;
  for (auto _ : state) {
    std::vector<int64_t> client_rows(static_cast<size_t>(clients), 0);
    std::vector<int64_t> client_morsels(static_cast<size_t>(clients), 0);
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        exec::ExecContext ctx;
        ctx.threads = pool.threads();
        ctx.pool = &pool;
        ctx.submitter = static_cast<uint64_t>(c);
        for (int q = 0; q < kQueriesPerClient; ++q) {
          exec::QueryStats query_stats;
          ctx.query_stats = &query_stats;
          Relation result = exec::Run(p, states, ctx);
          client_rows[static_cast<size_t>(c)] = result.NumRows();
          client_morsels[static_cast<size_t>(c)] += query_stats.morsels;
        }
      });
    }
    for (std::thread& w : workers) w.join();
    result_rows = client_rows[0];
    total_morsels = 0;
    for (int64_t m : client_morsels) total_morsels += m;
  }
  state.counters["result_rows"] = static_cast<double>(result_rows);
  state.counters["queries"] =
      static_cast<double>(clients * kQueriesPerClient);
  state.counters["morsels_per_iter"] = static_cast<double>(total_morsels);
}
BENCHMARK(BM_Exec_MultiClient)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace
}  // namespace gyo
