// P7 / E8 — fixed treefication (NP-complete, Theorem 4.2): the exact solver
// vs the first-fit-decreasing heuristic on Bin-Packing-derived Aclique
// schemas, plus the bin-packing oracle itself.

#include <benchmark/benchmark.h>

#include "query/treefication.h"
#include "schema/generators.h"

namespace gyo {
namespace {

// items × size-3 Acliques, capacity fits two items per bin.
BinPackingInstance TwoPerBin(int items) {
  BinPackingInstance inst;
  for (int i = 0; i < items; ++i) inst.sizes.push_back(3);
  inst.capacity = 6;
  inst.bins = (items + 1) / 2;
  return inst;
}

void BM_Treefication_FFD(benchmark::State& state) {
  BinPackingInstance inst = TwoPerBin(static_cast<int>(state.range(0)));
  DatabaseSchema d = BinPackingToSchema(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        FixedTreeficationFFD(d, inst.bins, inst.capacity));
  }
}
BENCHMARK(BM_Treefication_FFD)->DenseRange(2, 10, 2);

void BM_Treefication_ExactFeasible(benchmark::State& state) {
  // Feasible instances: FFD short-circuits, so this measures the fast path
  // of the exact API.
  BinPackingInstance inst = TwoPerBin(static_cast<int>(state.range(0)));
  DatabaseSchema d = BinPackingToSchema(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FixedTreefication(d, inst.bins, inst.capacity));
  }
}
BENCHMARK(BM_Treefication_ExactFeasible)->DenseRange(2, 6, 2);

void BM_Treefication_ExactInfeasible(benchmark::State& state) {
  // Infeasible: one bin too few — forces the full exponential search.
  int items = static_cast<int>(state.range(0));
  BinPackingInstance inst = TwoPerBin(items);
  inst.bins -= 1;
  DatabaseSchema d = BinPackingToSchema(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FixedTreefication(d, inst.bins, inst.capacity));
  }
}
BENCHMARK(BM_Treefication_ExactInfeasible)->DenseRange(2, 3, 1);

void BM_Treefication_ExactRing(benchmark::State& state) {
  // The 6-ring split across two size-4 relations: FFD cannot find it (the
  // ring is one component of size 6 > 4), so the exact search runs.
  DatabaseSchema d = Aring(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FixedTreefication(d, 2, 4));
  }
}
BENCHMARK(BM_Treefication_ExactRing)->DenseRange(4, 7, 1);

void BM_BinPackingOracle(benchmark::State& state) {
  BinPackingInstance inst = TwoPerBin(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveBinPackingExact(inst));
  }
}
BENCHMARK(BM_BinPackingOracle)->DenseRange(2, 12, 2);

}  // namespace
}  // namespace gyo
