#!/usr/bin/env bash
# End-to-end smoke of the query service over real loopback TCP, exercising
# the daemon exactly the way an operator does: start gyo_serve on an
# ephemeral port, run scripted gyo_client queries (acyclic + cyclic + a
# STATUS probe), then SIGTERM the daemon and require a clean drain (exit 0
# and the "drained:" report on stdout).
#
# Usage: serve_smoke.sh [BUILD_DIR]
#   BUILD_DIR  directory with examples/gyo_serve and examples/gyo_client
#              (default build/release)
#
# The script fails on: either binary missing, the daemon not reporting its
# port within 10s, any client exiting nonzero, a result-cardinality mismatch
# against the pinned seeds, STATUS not reflecting the served queries, or the
# daemon surviving SIGTERM / exiting nonzero / leaving no drain report.
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build/release}"
serve_bin="${build_dir}/examples/gyo_serve"
client_bin="${build_dir}/examples/gyo_client"
for bin in "${serve_bin}" "${client_bin}"; do
  [[ -x "${bin}" ]] || { echo "error: ${bin} not built" >&2; exit 1; }
done

log="$(mktemp)"
server_pid=""
cleanup() {
  if [[ -n "${server_pid}" ]] && kill -0 "${server_pid}" 2>/dev/null; then
    kill -KILL "${server_pid}" 2>/dev/null || true
  fi
  rm -f "${log}"
}
trap cleanup EXIT

"${serve_bin}" --port 0 --threads 2 --max-concurrent-queries 2 \
  > "${log}" 2>&1 &
server_pid=$!

# The daemon prints "listening on HOST:PORT" once the socket is bound.
port=""
for _ in $(seq 1 100); do
  port="$(sed -n 's/^listening on [^:]*:\([0-9][0-9]*\)$/\1/p' "${log}")"
  [[ -n "${port}" ]] && break
  kill -0 "${server_pid}" 2>/dev/null \
    || { echo "error: gyo_serve died at startup:" >&2; cat "${log}" >&2
         exit 1; }
  sleep 0.1
done
[[ -n "${port}" ]] || { echo "error: no port within 10s" >&2; exit 1; }
echo "== gyo_serve (pid ${server_pid}) on port ${port}"

run_query() {  # run_query LABEL EXPECTED_ROWS ARGS...
  local label="$1" expected="$2"; shift 2
  local out
  out="$("${client_bin}" --port "${port}" "$@")"
  echo "${out}" | sed "s/^/  [${label}] /"
  echo "${out}" | grep -q "^result: ${expected} rows" \
    || { echo "error: ${label}: expected ${expected} rows" >&2; exit 1; }
}

# Acyclic chain (Yannakakis), a 4-cycle (CC-pruned fallback; target ac is
# covered by no single relation, so it really joins), and a re-used seed to
# pin cardinalities; --plan checks plan shipping end to end. tree2 repeats
# tree byte for byte, so it must be answered from the caches — the same 455
# rows, with the STATUS hit counters advanced.
run_query tree   455 --rows 400 --domain 6400 --seed 17 --plan ab,bc,cd ad
run_query cycle  200 --rows 200 --domain 3200 --seed 9 \
  ab,bc,cd,da ac
run_query tree2  455 --rows 400 --domain 6400 --seed 17 ab,bc,cd ad

echo "== STATUS"
status="$("${client_bin}" --port "${port}" --status)"
echo "${status}" | sed 's/^/  /'
echo "${status}" | grep -q "3 served" \
  || { echo "error: STATUS does not show 3 served queries" >&2; exit 1; }
echo "${status}" | grep -Eq "caches: plan [1-9][0-9]* hits" \
  || { echo "error: STATUS shows no plan-cache hit for the repeat" >&2
       exit 1; }
echo "${status}" | grep -Eq "result [1-9][0-9]* hits" \
  || { echo "error: STATUS shows no result-cache hit for the repeat" >&2
       exit 1; }

echo "== SIGTERM drain"
kill -TERM "${server_pid}"
for _ in $(seq 1 100); do
  kill -0 "${server_pid}" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "${server_pid}" 2>/dev/null; then
  echo "error: gyo_serve did not exit within 10s of SIGTERM" >&2
  exit 1
fi
rc=0
wait "${server_pid}" || rc=$?
server_pid=""
[[ "${rc}" -eq 0 ]] || { echo "error: gyo_serve exited ${rc}" >&2
                         cat "${log}" >&2; exit 1; }
grep -q "^drained:" "${log}" \
  || { echo "error: no drain report:" >&2; cat "${log}" >&2; exit 1; }
sed -n 's/^drained:/  drained:/p' "${log}"
echo "serve-smoke: OK"
